package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestReadTraceV2RoundTrip writes a full v2 trace — counters, events, job
// ledger rows, control series — and reads it back, pinning the fields a
// post-processor depends on.
func TestReadTraceV2RoundTrip(t *testing.T) {
	r := New(Config{Workers: 2, SampleEvery: 1})
	r.TaskProcessed(0, 9, 1, 4)
	r.Add(1, COverflowSpills, 1)
	r.Event(1, EvSpill, 3, 0, 0)

	jobs := []JobRow{
		{Job: 0, Name: "keeper", Weight: 4, Submitted: 10, Spawned: 90,
			Processed: 95, BagsRetired: 5, RankSamples: 12},
		{Job: 1, Name: "victim", Weight: 1, Cancelled: true, Submitted: 3,
			Spawned: 7, Processed: 4, CancelledTasks: 6, QuotaRejected: 2},
	}
	ctrl := ControlSeries([]float64{1.5, 2.5}, []int64{10, 11}, []int{50, 60})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := WriteJobsJSONL(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	if err := WriteControlJSONL(&buf, ctrl); err != nil {
		t.Fatal(err)
	}

	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Schema != TraceSchema {
		t.Errorf("schema %q, want %q", tr.Meta.Schema, TraceSchema)
	}
	if tr.Meta.Workers != 2 {
		t.Errorf("workers %d, want 2", tr.Meta.Workers)
	}
	if len(tr.Counters) != 3 { // 2 workers + the external row
		t.Errorf("%d counter rows, want 3", len(tr.Counters))
	}
	// SampleEvery:1 makes TaskProcessed emit a task event too.
	if len(tr.Events) != 2 || tr.Events[1].Kind != "spill" {
		t.Errorf("events = %+v, want [task, spill]", tr.Events)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("%d job rows, want 2", len(tr.Jobs))
	}
	if tr.Jobs[0] != jobs[0] || tr.Jobs[1] != jobs[1] {
		t.Errorf("job rows did not round-trip:\ngot  %+v\nwant %+v", tr.Jobs, jobs)
	}
	if len(tr.Control) != 2 || tr.Control[1].TDF != 60 {
		t.Errorf("control = %+v, want the 2-point series back", tr.Control)
	}
}

// TestReadTraceV1Compat pins backward compatibility: a literal hdcps-obs/v1
// trace (the schema every pre-multi-tenant release wrote — no job lines, no
// per-job fields) must still decode, with Jobs simply empty. This fixture is
// frozen text on purpose: it must keep decoding even after the writer moves
// on, so do not regenerate it from the current writer.
func TestReadTraceV1Compat(t *testing.T) {
	const v1 = `{"type":"meta","schema":"hdcps-obs/v1","workers":2,"ring_size":1024,"sample_every":1,"events_total":1}
{"type":"counters","worker":0,"tasks_processed":9,"edges_examined":4}
{"type":"counters","worker":1,"overflow_spills":1}
{"type":"event","ts_ns":123,"worker":1,"kind":"spill","n":3}
{"type":"control","interval":0,"drift":1.5,"ref":10,"tdf":50}
`
	tr, err := ReadTrace(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Schema != TraceSchemaV1 {
		t.Errorf("schema %q, want %q", tr.Meta.Schema, TraceSchemaV1)
	}
	if len(tr.Jobs) != 0 {
		t.Errorf("v1 trace decoded %d job rows, want 0", len(tr.Jobs))
	}
	if len(tr.Counters) != 2 || tr.Counters[0]["tasks_processed"] != 9 {
		t.Errorf("counters = %+v", tr.Counters)
	}
	if len(tr.Events) != 1 || tr.Events[0].Kind != "spill" || tr.Events[0].TS != 123 {
		t.Errorf("events = %+v", tr.Events)
	}
	if len(tr.Control) != 1 || tr.Control[0].Drift != 1.5 {
		t.Errorf("control = %+v", tr.Control)
	}
}

// TestReadTraceRejectsUnknownSchema: versioning has teeth — a trace from a
// future incompatible layout fails loudly instead of decoding garbage.
func TestReadTraceRejectsUnknownSchema(t *testing.T) {
	const future = `{"type":"meta","schema":"hdcps-obs/v99","workers":1}` + "\n"
	if _, err := ReadTrace(strings.NewReader(future)); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
}
