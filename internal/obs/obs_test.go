package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCountersAddStoreTotal(t *testing.T) {
	r := New(Config{Workers: 3})
	r.Add(0, CBagsCreated, 2)
	r.Add(1, CBagsCreated, 3)
	r.Store(2, CTasksProcessed, 41)
	r.Store(2, CTasksProcessed, 42) // Store is absolute, not cumulative
	r.Add(External, CTasksSubmitted, 7)

	if got := r.Total(CBagsCreated); got != 5 {
		t.Errorf("Total(bags) = %d, want 5", got)
	}
	if got := r.Value(2, CTasksProcessed); got != 42 {
		t.Errorf("Value(2, processed) = %d, want 42", got)
	}
	if got := r.Total(CTasksSubmitted); got != 7 {
		t.Errorf("Total(submitted) = %d, want 7", got)
	}
	rows := r.Counters()
	if len(rows) != 4 { // 3 workers + external
		t.Fatalf("Counters() returned %d rows, want 4", len(rows))
	}
	if rows[3].Worker != External || rows[3].Values[CTasksSubmitted] != 7 {
		t.Errorf("external row = %+v", rows[3])
	}
}

// Out-of-range worker indices must fold into the shared row, never panic.
func TestOutOfRangeWorkerFolds(t *testing.T) {
	r := New(Config{Workers: 2})
	r.Add(99, CIdleParks, 1)
	r.Add(-5, CIdleParks, 1)
	r.Event(99, EvPark, 0, 0, 0)
	if got := r.Total(CIdleParks); got != 2 {
		t.Errorf("Total(parks) = %d, want 2", got)
	}
}

func TestEventRingOverwritesOldest(t *testing.T) {
	r := New(Config{Workers: 1, RingSize: 8})
	for i := int64(0); i < 20; i++ {
		r.Event(0, EvSubmit, i, 0, 0)
	}
	if got := r.EventCount(); got != 20 {
		t.Errorf("EventCount = %d, want 20", got)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring size 8", len(evs))
	}
	// The ring keeps the newest entries: A values 12..19.
	for i, ev := range evs {
		if want := int64(12 + i); ev.A != want {
			t.Errorf("event %d: A = %d, want %d", i, ev.A, want)
		}
	}
}

func TestEventsMergedSorted(t *testing.T) {
	r := New(Config{Workers: 4})
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			r.Event(i, EvDriftReport, int64(j), 0, 0)
		}
	}
	evs := r.Events()
	if len(evs) != 20 {
		t.Fatalf("got %d events, want 20", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events out of order at %d: %d < %d", i, evs[i].TS, evs[i-1].TS)
		}
	}
}

func TestTaskProcessedSampling(t *testing.T) {
	r := New(Config{Workers: 1, SampleEvery: 4})
	for i := int64(1); i <= 64; i++ {
		r.TaskProcessed(0, 100-i, i, i*3)
	}
	if got := r.Value(0, CTasksProcessed); got != 64 {
		t.Errorf("processed = %d, want 64 (Store semantics)", got)
	}
	if got := r.Value(0, CEdgesExamined); got != 192 {
		t.Errorf("edges = %d, want 192", got)
	}
	evs := r.Events()
	if len(evs) != 16 { // every 4th of 64
		t.Errorf("sampled %d task events, want 16", len(evs))
	}
	// Negative SampleEvery disables task events but keeps counters exact.
	r2 := New(Config{Workers: 1, SampleEvery: -1})
	for i := int64(1); i <= 64; i++ {
		r2.TaskProcessed(0, 0, i, 0)
	}
	if got := len(r2.Events()); got != 0 {
		t.Errorf("disabled sampling still recorded %d events", got)
	}
	if got := r2.Value(0, CTasksProcessed); got != 64 {
		t.Errorf("disabled sampling lost counters: %d", got)
	}
}

func TestSampleEveryRoundsToPow2(t *testing.T) {
	r := New(Config{Workers: 1, SampleEvery: 100})
	if r.cfg.SampleEvery != 128 {
		t.Errorf("SampleEvery 100 rounded to %d, want 128", r.cfg.SampleEvery)
	}
}

// Concurrent writers across counters and rings must be race-clean (run
// under -race in the race tier).
func TestConcurrentWriters(t *testing.T) {
	r := New(Config{Workers: 4, RingSize: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 500; i++ {
				r.Add(w%4, CBagsCreated, 1)
				r.Event(w%4, EvBagCreated, i, 2, 0)
				if i%50 == 0 {
					_ = r.Events()
					_ = r.Counters()
					_ = r.Total(CBagsCreated)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Total(CBagsCreated); got != 8*500 {
		t.Errorf("Total = %d, want %d", got, 8*500)
	}
}

func TestWriteJSONL(t *testing.T) {
	r := New(Config{Workers: 2, SampleEvery: 1})
	r.TaskProcessed(0, 9, 1, 4)
	r.Add(1, COverflowSpills, 1)
	r.Event(1, EvSpill, 3, 0, 0)
	r.Event(0, EvTDFStep, 60, int64(floatBits(12.5)), 7)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 1 meta + 3 counter rows (2 workers + external) + 3 events.
	if len(lines) != 7 {
		t.Fatalf("got %d JSONL lines, want 7:\n%s", len(lines), buf.String())
	}
	var meta map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatalf("meta line: %v", err)
	}
	if meta["schema"] != TraceSchema || meta["type"] != "meta" {
		t.Errorf("meta = %v", meta)
	}
	for _, line := range lines[1:] {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if m["type"] != "counters" && m["type"] != "event" {
			t.Errorf("unexpected line type %v", m["type"])
		}
	}
	if !strings.Contains(buf.String(), `"kind":"tdf-step"`) {
		t.Error("tdf-step event missing from trace")
	}
	if !strings.Contains(buf.String(), `"drift":12.5`) {
		t.Error("tdf-step drift not decoded to float")
	}
}

func TestWriteControlJSONL(t *testing.T) {
	pts := ControlSeries([]float64{1.5, 2.5}, []int64{10, 11}, []int{50, 60})
	var buf bytes.Buffer
	if err := WriteControlJSONL(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d control lines, want 2", len(lines))
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatal(err)
	}
	if m["type"] != "control" || m["tdf"] != float64(60) || m["ref"] != float64(11) {
		t.Errorf("control line = %v", m)
	}
}

func TestControlSeriesRagged(t *testing.T) {
	pts := ControlSeries([]float64{1}, nil, []int{50, 60, 70})
	if len(pts) != 3 {
		t.Fatalf("len = %d, want 3 (longest input)", len(pts))
	}
	if pts[0].Drift != 1 || pts[2].TDF != 70 || pts[2].Drift != 0 {
		t.Errorf("pts = %+v", pts)
	}
}

func TestHandler(t *testing.T) {
	r := New(Config{Workers: 1})
	r.Add(0, CIdleParks, 3)
	r.Event(0, EvPark, 0, 0, 0)

	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/obs", nil))
	var snap map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	totals := snap["totals"].(map[string]any)
	if totals["idle_parks"] != float64(3) {
		t.Errorf("totals = %v", totals)
	}

	rr = httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/obs?trace=1", nil))
	if !strings.Contains(rr.Body.String(), `"type":"meta"`) {
		t.Error("?trace=1 did not stream JSONL")
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
