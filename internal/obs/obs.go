// Package obs is the native runtime's observability layer: low-overhead
// per-worker metrics counters and ring-buffered event traces that let the
// drift/TDF feedback loop — the paper's whole contribution — be watched
// converging over time instead of inferred from a one-shot snapshot.
//
// The design follows the constraints of the engine's hot path:
//
//   - Counters are per-worker rows of padded atomics. A worker only ever
//     touches its own row, so every update is an uncontended atomic on a
//     cache line nothing else writes: lock-free, race-clean, and cheap
//     enough to sit on the task-retirement path. Readers aggregate rows
//     with plain atomic loads at any time.
//   - Events land in a per-worker ring buffer guarded by a per-worker
//     mutex. Events are orders of magnitude rarer than tasks (task events
//     are sampled, the rest mark bag/spill/park/control transitions), so an
//     uncontended lock per event is noise; the ring overwrites the oldest
//     entries, bounding memory for arbitrarily long runs.
//   - The whole layer hangs off a nil-able *Recorder. A disabled engine
//     pays exactly one predictable branch per recording site and allocates
//     nothing.
//
// Export paths: WriteJSONL streams the trace as one JSON object per line
// (schema documented in the README), Handler serves a JSON snapshot over
// HTTP, and Vars plugs the counter totals into expvar.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one per-worker metric.
type Counter uint8

// The counter set. CTasksProcessed and CEdgesExamined are gauges mirrored
// from the worker's run-local totals (stored, not added, so they are exact
// at quiescence); the rest are monotone event counts.
const (
	CTasksProcessed Counter = iota // tasks retired (bag payloads included)
	CTasksSubmitted                // tasks injected via Submit (external row)
	CEdgesExamined                 // edges touched while processing
	CBagsCreated                   // bags partitioned out of child batches
	CBagsOpened                    // bag payloads unpacked for execution
	COverflowSpills                // full-ring spills landing at this worker
	CIdleParks                     // parks on a quiescent fleet
	CDriftReports                  // Algorithm 3 priority reports sent
	CTDFSteps                      // Algorithm 2 controller updates applied

	// Fault-tolerance counters (the engine's conservation ledger and the
	// failure paths a chaos run exercises).
	CTasksSpawned      // children + bag units added by task processing
	CBagsRetired       // bag units fully unpacked and retired
	CTaskPanics        // task handler panics caught by the isolation layer
	CTaskRetries       // panicked tasks re-queued under Config.Retry
	CTasksQuarantined  // tasks that exhausted retries and were quarantined
	COverflowRedirects // remote sends bounced back local by flow control
	CDriftClamped      // out-of-range priority reports clamped by control
	CWorkerRestarts    // worker loops restarted after an engine-level panic

	// Two-level local-queue counters (PR 5): how often the hot buffer
	// spilled to the cold store, and whether a worker's queue abandoned the
	// monotone bucket store for the comparison heap (non-monotone priority
	// stream detected at runtime).
	CHotSpills      // hot-buffer demotions/bounces into the cold store
	CQueueFallbacks // bucket-store → heap migrations (0 or 1 per worker)

	// Scheduling-quality counters (PR 6): how far the popped task strayed
	// from the global minimum. Strict queue kinds (heap/dheap/twolevel) must
	// report zero inversions — the bench gate's structural canary — while
	// the relaxed multiqueue reports its bounded rank error. Sampled on the
	// engine's pop path at the same stride as task events; zero cost when
	// obs is disabled.
	CRankSamples    // pops whose rank error was sampled
	CPrioInversions // sampled pops that were not the observable global min
	CRankErrSum     // sum of sampled rank errors (mean = sum / samples)
	CRankErrMax     // max sampled rank error (gauge, not a sum)

	// Multi-tenant counters (PR 7): the job layer's cancellation sink and
	// admission control. CTasksCancelled is a gauge mirrored from each
	// worker's cancellation total; CQuotaRejects counts tasks refused by a
	// job's MaxOutstanding quota (external row — rejection happens at Submit).
	CTasksCancelled // tasks discarded by job-scoped Cancel
	CQuotaRejects   // tasks refused by per-job admission quotas

	// Network-boundary resilience counters (PR 9): the serving front-end's
	// shed / deadline / abort / resume decisions, recorded on the external
	// row (they originate in HTTP handlers, not in any worker).
	CServeShed         // submits/creates refused while draining or over the global limit
	CServeDeadlineHits // requests cut by their propagated X-Request-Deadline-Ms
	CServeConnAborts   // submit streams aborted mid-body (stall detector, client reset)
	CServeResumes      // submit requests resuming an interrupted stream (offset > 0)

	numCounters
)

var counterNames = [numCounters]string{
	"tasks_processed", "tasks_submitted", "edges_examined", "bags_created",
	"bags_opened", "overflow_spills", "idle_parks", "drift_reports",
	"tdf_steps", "tasks_spawned", "bags_retired", "task_panics",
	"task_retries", "tasks_quarantined", "overflow_redirects",
	"drift_clamped", "worker_restarts", "hot_spills", "queue_fallbacks",
	"rank_samples", "prio_inversions", "rank_err_sum", "rank_err_max",
	"tasks_cancelled", "quota_rejects",
	"serve_shed", "serve_deadline_hits", "serve_conn_aborts", "serve_resumes",
}

// String returns the counter's snake_case export name.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// EventKind tags one trace event.
type EventKind uint8

// The event vocabulary of the runtime's layers.
const (
	EvTask          EventKind = iota // sampled task retirement: A=prio, B=worker total
	EvSubmit                         // external injection: A=task count, B=job
	EvBagCreated                     // A=bag prio, B=payload size
	EvBagOpened                      // A=payload size
	EvSpill                          // ring-full overflow spill: A=tasks spilled
	EvPark                           // worker parked on a quiescent fleet
	EvWake                           // worker woke from a park
	EvDriftReport                    // Algorithm 3 report: A=reported prio, B=job
	EvTDFStep                        // Algorithm 2 update: A=new TDF, B=drift bits, C=ref prio
	EvPanic                          // caught handler panic: A=prio, B=attempt
	EvQuarantine                     // task quarantined: A=prio, B=attempts
	EvRedirect                       // flow-control bounce kept local: A=task count
	EvWorkerRestart                  // worker loop restarted after an internal panic
	EvRankSample                     // sampled pop rank error: A=rank, B=popped prio, C=job
	EvCancel                         // cancelled-job sweep: A=tasks discarded, B=job
	EvQuotaReject                    // admission rejection: A=tasks refused, B=job

	numEventKinds
)

var eventNames = [numEventKinds]string{
	"task", "submit", "bag-created", "bag-opened", "spill", "park", "wake",
	"drift-report", "tdf-step", "panic", "quarantine", "redirect",
	"worker-restart", "rank-sample", "cancel", "quota-reject",
}

// String returns the kind's export name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one trace entry. A, B, C are kind-specific payloads (see the
// EventKind constants); TS is nanoseconds since the recorder was created.
type Event struct {
	TS      int64
	Worker  int32 // worker index, or External
	Kind    EventKind
	A, B, C int64
}

// External is the worker index recorded for events and counters that
// originate outside the fleet (Engine.Submit, injected work).
const External = -1

// Config sizes a Recorder.
type Config struct {
	// Workers is the fleet size the recorder serves. Out-of-range worker
	// indices (including External) fold into one extra shared row, so a
	// recorder never rejects a write.
	Workers int
	// RingSize is the per-worker event-trace capacity; the ring overwrites
	// its oldest entries and is allocated lazily on a row's first event.
	// 0 defaults to 1024.
	RingSize int
	// SampleEvery records every Nth task-retirement event per worker and
	// refreshes the CEdgesExamined counter on the same boundaries (the
	// CTasksProcessed counter is exact at every task; edges lag by at most
	// one sample stride until the worker next parks). 0 defaults to 64;
	// values are rounded up to a power of two. Negative disables task
	// events entirely.
	SampleEvery int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.RingSize <= 0 {
		c.RingSize = 1024
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 64
	}
	if c.SampleEvery > 0 {
		p := 1
		for p < c.SampleEvery {
			p <<= 1
		}
		c.SampleEvery = p
	}
	return c
}

// row is one worker's slice of the recorder: a padded block of counter
// atomics plus the event ring. Workers write only their own row, so the
// atomics are uncontended; the pad keeps adjacent rows off one cache line.
type row struct {
	c [numCounters]atomic.Int64
	_ [8]int64

	mu   sync.Mutex
	buf  []Event
	next uint64 // total events appended (ring head = next % len(buf))
}

// Recorder collects metrics and traces for one engine. All methods are safe
// for concurrent use; a nil *Recorder must be guarded by the caller (the
// engine's one-branch contract).
type Recorder struct {
	cfg        Config
	sampleMask int64 // SampleEvery-1 when sampling, -1 when disabled
	start      time.Time
	rows       []row // cfg.Workers rows + one shared external row
}

// New builds a recorder for cfg.Workers workers.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:   cfg,
		start: time.Now(),
		rows:  make([]row, cfg.Workers+1),
	}
	if cfg.SampleEvery > 0 {
		r.sampleMask = int64(cfg.SampleEvery) - 1
	} else {
		r.sampleMask = -1
	}
	// Event rings are allocated lazily on each row's first event, so a
	// recorder costs a few cache lines until something actually traces.
	return r
}

// Workers returns the fleet size the recorder was built for.
func (r *Recorder) Workers() int { return r.cfg.Workers }

// Start returns the recorder's creation time (the trace's TS zero point).
func (r *Recorder) Start() time.Time { return r.start }

// row maps a worker index to its row, folding External and out-of-range
// indices into the shared last row.
func (r *Recorder) row(worker int) *row {
	if worker >= 0 && worker < r.cfg.Workers {
		return &r.rows[worker]
	}
	return &r.rows[r.cfg.Workers]
}

// Add increments worker's counter by delta (lock-free).
func (r *Recorder) Add(worker int, c Counter, delta int64) {
	r.row(worker).c[c].Add(delta)
}

// Store sets worker's counter to an absolute value (lock-free). The engine
// uses it to mirror run-local totals so quiescent reads are exact.
func (r *Recorder) Store(worker int, c Counter, v int64) {
	r.row(worker).c[c].Store(v)
}

// Value reads one worker's counter.
func (r *Recorder) Value(worker int, c Counter) int64 {
	return r.row(worker).c[c].Load()
}

// Total sums a counter across all rows (workers + external).
func (r *Recorder) Total(c Counter) int64 {
	var sum int64
	for i := range r.rows {
		sum += r.rows[i].c[c].Load()
	}
	return sum
}

// CounterRow is one row of a counter snapshot.
type CounterRow struct {
	Worker int // worker index, or External for the shared row
	Values [int(numCounters)]int64
}

// Counters snapshots every row's counters. The rows are internally
// consistent per counter (atomic loads) but not across counters.
func (r *Recorder) Counters() []CounterRow {
	out := make([]CounterRow, len(r.rows))
	for i := range r.rows {
		w := i
		if i == r.cfg.Workers {
			w = External
		}
		out[i].Worker = w
		for c := Counter(0); c < numCounters; c++ {
			out[i].Values[c] = r.rows[i].c[c].Load()
		}
	}
	return out
}

// Event appends one trace entry to worker's ring.
func (r *Recorder) Event(worker int, k EventKind, a, b, c int64) {
	ev := Event{
		TS:     time.Since(r.start).Nanoseconds(),
		Worker: int32(worker),
		Kind:   k,
		A:      a,
		B:      b,
		C:      c,
	}
	rw := r.row(worker)
	rw.mu.Lock()
	if rw.buf == nil {
		rw.buf = make([]Event, r.cfg.RingSize)
	}
	rw.buf[rw.next%uint64(len(rw.buf))] = ev
	rw.next++
	rw.mu.Unlock()
}

// TaskProcessed is the engine's per-task recording site. The processed
// total is mirrored into the counter row on every call (one uncontended
// atomic store — the whole per-task cost when nothing samples); the edge
// total and a task event are recorded only on sample boundaries, so
// CEdgesExamined lags by at most one sample stride until the worker next
// parks (the engine flushes it there). processed is the worker's task
// total after this task, edges its running edge total.
func (r *Recorder) TaskProcessed(worker int, prio, processed, edges int64) {
	rw := r.row(worker)
	rw.c[CTasksProcessed].Store(processed)
	if m := r.sampleMask; m >= 0 && processed&m == 0 {
		r.TaskSample(worker, prio, processed, edges)
	}
}

// TaskSample records one sampled task retirement: it refreshes the edge
// counter and appends a task event. Writers that own their counter slots
// directly (see CounterSlot) call this on sample boundaries only — the
// SampleMask tells them which — instead of going through TaskProcessed.
func (r *Recorder) TaskSample(worker int, prio, processed, edges int64) {
	r.row(worker).c[CEdgesExamined].Store(edges)
	r.Event(worker, EvTask, prio, processed, edges)
}

// SampleMask returns the task-sampling bitmask: sample when
// processed&mask == 0. A negative mask means task events are disabled.
func (r *Recorder) SampleMask() int64 { return r.sampleMask }

// CounterSlot exposes one counter's backing atomic so a single-writer
// owner (the engine's worker loop) can publish straight into the
// recorder's row — its own mirror and the recorder's then share one slot,
// making an attached recorder cost no additional per-task atomics. The
// caller must be the slot's only writer.
func (r *Recorder) CounterSlot(worker int, c Counter) *atomic.Int64 {
	return &r.row(worker).c[c]
}

// EventCount returns how many events have ever been appended (including
// entries the rings have since overwritten).
func (r *Recorder) EventCount() uint64 {
	var n uint64
	for i := range r.rows {
		rw := &r.rows[i]
		rw.mu.Lock()
		n += rw.next
		rw.mu.Unlock()
	}
	return n
}

// Events returns every retained trace entry, merged across workers and
// sorted by timestamp.
func (r *Recorder) Events() []Event {
	var out []Event
	for i := range r.rows {
		rw := &r.rows[i]
		rw.mu.Lock()
		n := rw.next
		cap64 := uint64(len(rw.buf))
		first := uint64(0)
		if n > cap64 {
			first = n - cap64
		}
		for s := first; s < n; s++ {
			out = append(out, rw.buf[s%cap64])
		}
		rw.mu.Unlock()
	}
	// Rings are individually time-ordered; SliceStable keeps a worker's
	// append order on timestamp ties.
	sort.SliceStable(out, func(a, b int) bool { return out[a].TS < out[b].TS })
	return out
}

// ControlPoint is one interval of the control plane's time series: the
// measured drift (Eq. 1), the reference priority it was computed against,
// and the TDF the controller chose for the next interval.
type ControlPoint struct {
	Interval int     `json:"interval"`
	Drift    float64 `json:"drift"`
	Ref      int64   `json:"ref"`
	TDF      int     `json:"tdf"`
}

// ControlSeries zips parallel drift/ref/TDF traces (the shape stats.Run and
// runtime.Result carry) into control points. Shorter slices are ragged-safe:
// missing values stay zero.
func ControlSeries(drift []float64, ref []int64, tdf []int) []ControlPoint {
	n := len(drift)
	if len(tdf) > n {
		n = len(tdf)
	}
	if len(ref) > n {
		n = len(ref)
	}
	pts := make([]ControlPoint, n)
	for i := range pts {
		pts[i].Interval = i
		if i < len(drift) {
			pts[i].Drift = drift[i]
		}
		if i < len(ref) {
			pts[i].Ref = ref[i]
		}
		if i < len(tdf) {
			pts[i].TDF = tdf[i]
		}
	}
	return pts
}
