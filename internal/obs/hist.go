package obs

// Histogram is a concurrent log-bucketed latency histogram: the recording
// side is one atomic add on a bucket chosen with shift/mask arithmetic (no
// floating point, no locks), and the read side reconstructs quantiles from
// the bucket boundaries. Buckets are exact below histLinear and then use
// histSub linear sub-buckets per power of two, which bounds the relative
// quantile error at 1/histSub (6.25%) — plenty for p50/p99/p99.9 SLO
// reporting, where run-to-run noise dwarfs bucket width.
//
// The zero value is NOT ready; use NewHistogram. Values are int64 (the
// serving layer records nanoseconds); negative observations clamp to 0.

import (
	"encoding/json"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSubBits picks 2^histSubBits linear sub-buckets per octave.
	histSubBits = 4
	histSub     = 1 << histSubBits // 16
	// histBuckets covers the whole non-negative int64 range: the largest
	// exponent Len64 can produce is 63, so indexes stay below 64*histSub.
	histBuckets = 64 * histSub
)

// Histogram accumulates int64 observations into log-spaced buckets. All
// methods are safe for concurrent use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histBucket maps a value to its bucket index: identity below histSub,
// then (exponent, sub-bucket) pairs laid out contiguously.
func histBucket(v int64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - histSubBits - 1
	return exp*histSub + int(v>>uint(exp))
}

// histLower returns the smallest value that lands in bucket idx — the
// conservative (never over-reporting) quantile estimate.
func histLower(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	exp := idx/histSub - 1
	return int64(histSub+idx%histSub) << uint(exp)
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the q-quantile (q in [0,1]) as the lower bound of the
// bucket holding that rank — a conservative estimate within 1/histSub of
// the true value. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank on the cumulative counts; rank is 1-based.
	rank := int64(q*float64(n-1)) + 1
	var cum int64
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			cum += c
			if cum >= rank {
				return histLower(i)
			}
		}
	}
	return h.max.Load()
}

// Merge adds every observation of o into h (bucket-wise; max and sum are
// folded too). o is read atomically but should be quiescent for an exact
// merge.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(o.total.Load())
	h.sum.Add(o.sum.Load())
	m := o.max.Load()
	for {
		cur := h.max.Load()
		if m <= cur || h.max.CompareAndSwap(cur, m) {
			break
		}
	}
}

// HistSummary is the JSON-friendly view of a histogram of nanosecond
// latencies: counts plus the SLO quantiles in milliseconds.
type HistSummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summary computes the SLO quantiles, interpreting observations as
// nanoseconds.
func (h *Histogram) Summary() HistSummary {
	const ms = 1e6
	return HistSummary{
		Count:  h.Count(),
		MeanMs: h.Mean() / ms,
		P50Ms:  float64(h.Quantile(0.50)) / ms,
		P90Ms:  float64(h.Quantile(0.90)) / ms,
		P99Ms:  float64(h.Quantile(0.99)) / ms,
		P999Ms: float64(h.Quantile(0.999)) / ms,
		MaxMs:  float64(h.Max()) / ms,
	}
}

// histDump is the full-fidelity JSON form: the summary plus every
// non-empty bucket (lower bound in ns → count), so a failure artifact
// carries the whole distribution, not just the quantiles.
type histDump struct {
	HistSummary
	Buckets []histBucketJSON `json:"buckets"`
}

type histBucketJSON struct {
	LoNs  int64 `json:"lo_ns"`
	Count int64 `json:"count"`
}

// MarshalJSON renders the summary plus the non-empty buckets.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	d := histDump{HistSummary: h.Summary()}
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			d.Buckets = append(d.Buckets, histBucketJSON{LoNs: histLower(i), Count: c})
		}
	}
	return json.Marshal(d)
}
