package obs

// Export paths for the recorder: a JSONL trace stream (one self-describing
// JSON object per line, schema "hdcps-obs/v2"), an expvar.Func for the
// /debug/vars ecosystem, and an http.Handler serving a point-in-time JSON
// snapshot. The JSONL layout is deliberately grep/jq-friendly:
//
//	{"type":"meta","schema":"hdcps-obs/v2","workers":4,...}
//	{"type":"counters","worker":0,"tasks_processed":123,...}
//	{"type":"job","job":0,"name":"job-0","weight":1,"processed":123,...}
//	{"type":"event","ts_ns":52100,"worker":1,"kind":"tdf-step","tdf":60,...}
//	{"type":"control","interval":3,"drift":41.5,"ref":12,"tdf":70}
//
// v2 extends v1 with the per-job ledger rows ("job" lines), two counters
// (tasks_cancelled, quota_rejects), and the cancel/quota-reject event kinds.
// v3 extends v2 with the serving front-end's resilience counters
// (serve_shed, serve_deadline_hits, serve_conn_aborts, serve_resumes) on the
// counter lines. Every older line is still a valid newer line, and ReadTrace
// (trace_read.go) accepts all versions.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"
)

// TraceSchema identifies the JSONL trace layout. TraceSchemaV1 and
// TraceSchemaV2 are prior layouts (v1: no job rows or cancellation counters;
// v2: no serve resilience counters) that readers still accept.
const (
	TraceSchema   = "hdcps-obs/v3"
	TraceSchemaV2 = "hdcps-obs/v2"
	TraceSchemaV1 = "hdcps-obs/v1"
)

// jsonFields renders an event's kind-specific payload. Keeping the mapping
// here (not on Event) makes the wire names the single source of truth.
func (e Event) jsonFields() map[string]any {
	switch e.Kind {
	case EvTask:
		return map[string]any{"prio": e.A, "processed": e.B, "edges": e.C}
	case EvSubmit:
		return map[string]any{"count": e.A, "job": e.B}
	case EvBagCreated:
		return map[string]any{"prio": e.A, "size": e.B}
	case EvBagOpened:
		return map[string]any{"size": e.A}
	case EvSpill:
		return map[string]any{"tasks": e.A}
	case EvDriftReport:
		return map[string]any{"prio": e.A, "job": e.B}
	case EvTDFStep:
		return map[string]any{"tdf": e.A, "drift": math.Float64frombits(uint64(e.B)), "ref": e.C}
	case EvPanic:
		return map[string]any{"prio": e.A, "attempt": e.B}
	case EvQuarantine:
		return map[string]any{"prio": e.A, "attempts": e.B}
	case EvRedirect:
		return map[string]any{"tasks": e.A}
	case EvRankSample:
		return map[string]any{"rank": e.A, "prio": e.B, "job": e.C}
	case EvCancel:
		return map[string]any{"tasks": e.A, "job": e.B}
	case EvQuotaReject:
		return map[string]any{"tasks": e.A, "job": e.B}
	default: // park, wake, worker-restart: no payload
		return nil
	}
}

// MarshalJSON renders the event with its kind-specific field names.
func (e Event) MarshalJSON() ([]byte, error) {
	m := map[string]any{
		"ts_ns":  e.TS,
		"worker": e.Worker,
		"kind":   e.Kind.String(),
	}
	for k, v := range e.jsonFields() {
		m[k] = v
	}
	return json.Marshal(m)
}

// WriteJSONL streams the recorder's state as JSONL: one meta line, one
// counters line per row, then every retained event in timestamp order.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta := map[string]any{
		"type":         "meta",
		"schema":       TraceSchema,
		"workers":      r.cfg.Workers,
		"ring_size":    r.cfg.RingSize,
		"sample_every": r.cfg.SampleEvery,
		"start":        r.start.Format(time.RFC3339Nano),
		"elapsed_ns":   time.Since(r.start).Nanoseconds(),
		"events_total": r.EventCount(),
	}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, row := range r.Counters() {
		line := map[string]any{"type": "counters", "worker": row.Worker}
		for c := Counter(0); c < numCounters; c++ {
			line[c.String()] = row.Values[c]
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, ev := range r.Events() {
		buf, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, `{"type":"event",%s`+"\n", buf[1:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// JobRow is one job's ledger line in a v2 trace: the per-tenant conservation
// equation (submitted+spawned == processed+bags_retired+quarantined+
// cancelled_tasks+outstanding) plus scheduling-quality counters. The obs
// layer does not depend on the runtime, so the engine maps its JobStats into
// this wire shape when writing a trace.
type JobRow struct {
	Job       uint32 `json:"job"`
	Name      string `json:"name"`
	Weight    int    `json:"weight"`
	Cancelled bool   `json:"cancelled"`

	Outstanding    int64 `json:"outstanding"`
	Submitted      int64 `json:"submitted"`
	Spawned        int64 `json:"spawned"`
	Processed      int64 `json:"processed"`
	BagsRetired    int64 `json:"bags_retired"`
	Quarantined    int64 `json:"quarantined"`
	CancelledTasks int64 `json:"cancelled_tasks"`
	QuotaRejected  int64 `json:"quota_rejected"`

	RankSamples    int64 `json:"rank_samples"`
	PrioInversions int64 `json:"prio_inversions"`
	RankErrorSum   int64 `json:"rank_err_sum"`
	RankErrorMax   int64 `json:"rank_err_max"`
}

// WriteJobsJSONL appends per-job ledger rows to a JSONL trace: one
// {"type":"job",...} line per tenant (the v2 schema addition).
func WriteJobsJSONL(w io.Writer, rows []JobRow) error {
	bw := bufio.NewWriter(w)
	for _, r := range rows {
		buf, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, `{"type":"job",%s`+"\n", buf[1:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteControlJSONL appends the control plane's time series to a JSONL
// trace: one {"type":"control",...} line per interval.
func WriteControlJSONL(w io.Writer, pts []ControlPoint) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		buf, err := json.Marshal(p)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, `{"type":"control",%s`+"\n", buf[1:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// snapshot is the structure Handler and Vars serve.
type snapshot struct {
	Schema  string           `json:"schema"`
	Workers int              `json:"workers"`
	Totals  map[string]int64 `json:"totals"`
	Rows    []map[string]any `json:"rows"`
	Events  uint64           `json:"events_total"`
}

func (r *Recorder) snapshot() snapshot {
	s := snapshot{
		Schema:  TraceSchema,
		Workers: r.cfg.Workers,
		Totals:  make(map[string]int64, int(numCounters)),
		Events:  r.EventCount(),
	}
	for _, row := range r.Counters() {
		line := map[string]any{"worker": row.Worker}
		for c := Counter(0); c < numCounters; c++ {
			line[c.String()] = row.Values[c]
			s.Totals[c.String()] += row.Values[c]
		}
		s.Rows = append(s.Rows, line)
	}
	return s
}

// Vars returns a function suitable for expvar.Publish(name, expvar.Func(...)):
// the live counter snapshot as a JSON-encodable value.
func (r *Recorder) Vars() func() any {
	return func() any { return r.snapshot() }
}

// Handler serves the recorder over HTTP: a JSON counter snapshot by
// default, or the full JSONL trace with ?trace=1.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("trace") != "" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = r.WriteJSONL(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.snapshot())
	})
}
