package obs

// Trace read-back: the inverse of WriteJSONL for consumers that post-process
// a trace (the experiment harness, offline fairness analysis, CI schema
// checks). The reader is deliberately tolerant — JSONL is append-oriented
// and versions only add line types and fields — so it accepts every schema
// the repo has ever written: hdcps-obs/v1 traces simply come back with no
// job rows and zeroes for the v2 counters.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceMeta is the decoded {"type":"meta"} line.
type TraceMeta struct {
	Schema      string `json:"schema"`
	Workers     int    `json:"workers"`
	RingSize    int    `json:"ring_size"`
	SampleEvery int    `json:"sample_every"`
	EventsTotal uint64 `json:"events_total"`
}

// TraceEvent is one decoded {"type":"event"} line. The kind-specific payload
// stays in Fields (the writer flattens it into the object), so the reader
// does not need the full event vocabulary to round-trip a trace.
type TraceEvent struct {
	TS     int64
	Worker int
	Kind   string
	Fields map[string]any
}

// Trace is a fully decoded JSONL trace.
type Trace struct {
	Meta     TraceMeta
	Counters []map[string]int64 // one map per counters line, "worker" included
	Jobs     []JobRow           // empty for v1 traces
	Events   []TraceEvent
	Control  []ControlPoint
}

// traceSchemas lists every schema version ReadTrace accepts.
var traceSchemas = map[string]bool{
	TraceSchemaV1: true,
	TraceSchemaV2: true,
	TraceSchema:   true,
}

// ReadTrace decodes a JSONL trace written by WriteJSONL (plus the job and
// control appendices). It accepts every schema from hdcps-obs/v1 through v3
// and rejects unknown ones; unknown line types and fields are skipped, which
// is what lets readers and writers of adjacent versions coexist.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	sawMeta := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		switch head.Type {
		case "meta":
			if err := json.Unmarshal(raw, &tr.Meta); err != nil {
				return nil, fmt.Errorf("obs: trace line %d (meta): %w", line, err)
			}
			if !traceSchemas[tr.Meta.Schema] {
				return nil, fmt.Errorf("obs: unknown trace schema %q", tr.Meta.Schema)
			}
			sawMeta = true
		case "counters":
			var m map[string]any
			if err := json.Unmarshal(raw, &m); err != nil {
				return nil, fmt.Errorf("obs: trace line %d (counters): %w", line, err)
			}
			row := make(map[string]int64, len(m))
			for k, v := range m {
				if f, ok := v.(float64); ok {
					row[k] = int64(f)
				}
			}
			tr.Counters = append(tr.Counters, row)
		case "job":
			var jr JobRow
			if err := json.Unmarshal(raw, &jr); err != nil {
				return nil, fmt.Errorf("obs: trace line %d (job): %w", line, err)
			}
			tr.Jobs = append(tr.Jobs, jr)
		case "event":
			var m map[string]any
			if err := json.Unmarshal(raw, &m); err != nil {
				return nil, fmt.Errorf("obs: trace line %d (event): %w", line, err)
			}
			ev := TraceEvent{Fields: m}
			if v, ok := m["ts_ns"].(float64); ok {
				ev.TS = int64(v)
			}
			if v, ok := m["worker"].(float64); ok {
				ev.Worker = int(v)
			}
			if v, ok := m["kind"].(string); ok {
				ev.Kind = v
			}
			delete(m, "type")
			delete(m, "ts_ns")
			delete(m, "worker")
			delete(m, "kind")
			tr.Events = append(tr.Events, ev)
		case "control":
			var p ControlPoint
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("obs: trace line %d (control): %w", line, err)
			}
			tr.Control = append(tr.Control, p)
		default:
			// Forward compatibility: later schemas add line types; a reader
			// that chokes on them would defeat the append-only design.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawMeta && len(tr.Counters) == 0 && len(tr.Control) == 0 &&
		len(tr.Events) == 0 && len(tr.Jobs) == 0 {
		return nil, fmt.Errorf("obs: empty trace")
	}
	return tr, nil
}
