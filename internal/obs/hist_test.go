package obs

import (
	"encoding/json"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHistBucketMonotoneAndContiguous(t *testing.T) {
	// Bucket index must be non-decreasing in the value, and the lower
	// bound of a value's bucket must never exceed the value.
	prev := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 63, 64, 1000, 1 << 20, 1<<40 + 12345, 1 << 62} {
		idx := histBucket(v)
		if idx < prev {
			t.Fatalf("bucket index regressed at v=%d: %d < %d", v, idx, prev)
		}
		prev = idx
		if lo := histLower(idx); lo > v {
			t.Fatalf("histLower(%d)=%d > value %d", idx, lo, v)
		}
	}
	// Exhaustive round-trip over a dense small range: every bucket's lower
	// bound must map back to the same bucket.
	for v := int64(0); v < 1<<12; v++ {
		idx := histBucket(v)
		if histBucket(histLower(idx)) != idx {
			t.Fatalf("histLower(%d) does not round-trip for v=%d", idx, v)
		}
	}
}

func TestHistogramQuantilesWithinBucketError(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform values spanning 1us..1s in ns.
		v := int64(1000 * (1 << uint(rng.Intn(20))))
		v += rng.Int63n(v)
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		// Conservative lower-bound estimate within one bucket (6.25% down,
		// never above the next bucket boundary).
		if got > exact {
			t.Fatalf("q%.3f: estimate %d above exact %d", q, got, exact)
		}
		if float64(got) < float64(exact)*(1-2.0/histSub) {
			t.Fatalf("q%.3f: estimate %d more than one bucket below exact %d", q, got, exact)
		}
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count %d != %d", h.Count(), len(vals))
	}
	if h.Max() != vals[len(vals)-1] {
		t.Fatalf("max %d != %d", h.Max(), vals[len(vals)-1])
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-5)
	if h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Fatal("negative observation must clamp to zero")
	}
}

func TestHistogramMergeAndConcurrency(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				a.Observe(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	wg.Wait()
	b.Observe(1 << 40) // force merge to carry the max across
	b.Merge(a)
	if b.Count() != 20001 {
		t.Fatalf("merged count %d != 20001", b.Count())
	}
	if b.Max() != 1<<40 {
		t.Fatalf("merged max %d != %d", b.Max(), int64(1)<<40)
	}
	if b.Quantile(0.999) == 0 {
		t.Fatal("merged quantile should be nonzero")
	}
}

func TestHistogramJSON(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(int64(i) * 1e6)
	}
	buf, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Count   int64 `json:"count"`
		Buckets []struct {
			LoNs  int64 `json:"lo_ns"`
			Count int64 `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != 100 || len(back.Buckets) == 0 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
	var sum int64
	for _, b := range back.Buckets {
		sum += b.Count
	}
	if sum != 100 {
		t.Fatalf("bucket counts sum to %d, want 100", sum)
	}
}
