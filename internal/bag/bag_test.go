package bag

import (
	"testing"
	"testing/quick"

	"hdcps/internal/task"
)

func mkTasks(prios ...int64) []task.Task {
	ts := make([]task.Task, len(prios))
	for i, p := range prios {
		ts[i] = task.Task{Node: uint32(i), Prio: p}
	}
	return ts
}

func TestPartitionNever(t *testing.T) {
	var c Counter
	children := mkTasks(1, 1, 1, 1, 2)
	bags, singles := Partition(children, Policy{Mode: Never}, c.Next)
	if len(bags) != 0 || len(singles) != 5 {
		t.Fatalf("Never mode bagged: %d bags %d singles", len(bags), len(singles))
	}
}

func TestPartitionSelective(t *testing.T) {
	var c Counter
	p := DefaultPolicy() // min 3, max 10
	p.QuantShift = 0     // exact grouping for a hand-checkable case
	// 4 tasks at prio 1 (bag), 2 at prio 2 (singles), 1 at prio 3 (single).
	children := mkTasks(1, 1, 2, 1, 3, 2, 1)
	bags, singles := Partition(children, p, c.Next)
	if len(bags) != 1 {
		t.Fatalf("got %d bags, want 1", len(bags))
	}
	if bags[0].Prio != 1 || len(bags[0].Tasks) != 4 {
		t.Fatalf("bag = prio %d size %d", bags[0].Prio, len(bags[0].Tasks))
	}
	if len(singles) != 3 {
		t.Fatalf("got %d singles, want 3", len(singles))
	}
	for _, s := range singles {
		if s.Prio == 1 {
			t.Fatalf("prio-1 task leaked into singles: %v", s)
		}
	}
}

func TestPartitionAlways(t *testing.T) {
	var c Counter
	p := DefaultPolicy()
	p.Mode = Always
	p.QuantShift = 0
	children := mkTasks(1, 2, 2, 3)
	bags, singles := Partition(children, p, c.Next)
	if len(singles) != 0 {
		t.Fatalf("Always mode left %d singles", len(singles))
	}
	if len(bags) != 3 {
		t.Fatalf("got %d bags, want 3 (one per priority)", len(bags))
	}
}

func TestPartitionMaxSizeSplit(t *testing.T) {
	var c Counter
	p := Policy{Mode: Selective, MinSize: 3, MaxSize: 10}
	children := make([]task.Task, 25) // all prio 0
	bags, singles := Partition(children, p, c.Next)
	// 25 = 10 + 10 + 5(>=3, so a third bag).
	if len(bags) != 3 || len(singles) != 0 {
		t.Fatalf("got %d bags %d singles", len(bags), len(singles))
	}
	if len(bags[0].Tasks) != 10 || len(bags[1].Tasks) != 10 || len(bags[2].Tasks) != 5 {
		t.Fatalf("split sizes: %d %d %d", len(bags[0].Tasks), len(bags[1].Tasks), len(bags[2].Tasks))
	}
}

func TestPartitionRemainderBelowMin(t *testing.T) {
	var c Counter
	p := Policy{Mode: Selective, MinSize: 3, MaxSize: 10}
	children := make([]task.Task, 12) // 10 + 2: remainder below MinSize
	bags, singles := Partition(children, p, c.Next)
	if len(bags) != 1 || len(bags[0].Tasks) != 10 {
		t.Fatalf("got %d bags", len(bags))
	}
	if len(singles) != 2 {
		t.Fatalf("remainder should ship individually, got %d singles", len(singles))
	}
}

func TestPartitionQuantized(t *testing.T) {
	// With the default 2-bit quantization, priorities 4..7 share a bag and
	// the bag carries the group's best priority.
	var c Counter
	bags, singles := Partition(mkTasks(7, 4, 5, 20, 6), DefaultPolicy(), c.Next)
	if len(bags) != 1 || len(singles) != 1 {
		t.Fatalf("got %d bags %d singles, want 1/1", len(bags), len(singles))
	}
	if bags[0].Prio != 4 || len(bags[0].Tasks) != 4 {
		t.Fatalf("bag prio=%d size=%d, want 4/4", bags[0].Prio, len(bags[0].Tasks))
	}
	if singles[0].Prio != 20 {
		t.Fatalf("single prio=%d, want 20", singles[0].Prio)
	}
}

func TestPartitionUniqueIDs(t *testing.T) {
	var c Counter
	p := DefaultPolicy()
	p.Mode = Always
	children := mkTasks(1, 1, 2, 2, 3, 3)
	bags, _ := Partition(children, p, c.Next)
	seen := map[uint64]bool{}
	for _, b := range bags {
		if seen[b.ID] {
			t.Fatalf("duplicate bag ID %d", b.ID)
		}
		seen[b.ID] = true
	}
}

func TestPartitionEmpty(t *testing.T) {
	var c Counter
	bags, singles := Partition(nil, DefaultPolicy(), c.Next)
	if bags != nil || singles != nil {
		t.Fatalf("empty input produced output: %v %v", bags, singles)
	}
}

// TestPartitionConservation: every child ends up in exactly one bag or in
// singles, bags are homogeneous in priority and within policy bounds.
func TestPartitionConservation(t *testing.T) {
	err := quick.Check(func(raw []uint8, mode uint8) bool {
		var c Counter
		p := DefaultPolicy()
		p.Mode = Mode(mode % 3)
		children := make([]task.Task, len(raw))
		for i, r := range raw {
			children[i] = task.Task{Node: uint32(i), Prio: int64(r % 7)}
		}
		bags, singles := Partition(children, p, c.Next)
		total := len(singles)
		for _, b := range bags {
			total += len(b.Tasks)
			if len(b.Tasks) > p.MaxSize && p.Mode != Always {
				return false
			}
			for _, tk := range b.Tasks {
				if tk.Prio>>p.QuantShift != b.Tasks[0].Prio>>p.QuantShift {
					return false // bag spans quantization buckets
				}
				if tk.Prio < b.Prio {
					return false // bag priority must be its best task's
				}
			}
			if p.Mode == Selective && len(b.Tasks) < p.MinSize {
				return false
			}
		}
		if total != len(children) {
			return false // lost or duplicated a task
		}
		// Node IDs (unique here) must be conserved as a set.
		seen := make(map[uint32]bool, len(children))
		mark := func(tk task.Task) bool {
			if seen[tk.Node] {
				return false
			}
			seen[tk.Node] = true
			return true
		}
		for _, s := range singles {
			if !mark(s) {
				return false
			}
		}
		for _, b := range bags {
			for _, tk := range b.Tasks {
				if !mark(tk) {
					return false
				}
			}
		}
		return len(seen) == len(children)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// TestPartitionerMatchesPartition is the equivalence property: for any
// children list and policy shape, the reusable-scratch Partitioner must
// produce exactly the bags and singles of the allocating Partition,
// including bag boundaries, IDs, priorities, and ordering — and it must
// keep doing so across reuse of the same Partitioner.
func TestPartitionerMatchesPartition(t *testing.T) {
	var pt Partitioner
	err := quick.Check(func(raw []int8, mode uint8, minSize, maxSize uint8, shift uint8) bool {
		children := make([]task.Task, len(raw))
		for i, p := range raw {
			children[i] = task.Task{Node: uint32(i), Prio: int64(p)}
		}
		pol := Policy{
			Mode:       Mode(mode % 3),
			MinSize:    int(minSize % 6),
			MaxSize:    int(maxSize % 12),
			QuantShift: uint(shift % 5),
		}
		var c1, c2 Counter
		wantBags, wantSingles := Partition(children, pol, c1.Next)
		gotBags, gotSingles := pt.Partition(children, pol, c2.Next)
		if len(wantBags) != len(gotBags) || len(wantSingles) != len(gotSingles) {
			t.Logf("shape mismatch: %d/%d bags, %d/%d singles",
				len(gotBags), len(wantBags), len(gotSingles), len(wantSingles))
			return false
		}
		for i := range wantBags {
			w, g := wantBags[i], gotBags[i]
			if w.ID != g.ID || w.Prio != g.Prio || len(w.Tasks) != len(g.Tasks) {
				return false
			}
			for j := range w.Tasks {
				if w.Tasks[j] != g.Tasks[j] {
					return false
				}
			}
		}
		for i := range wantSingles {
			if wantSingles[i] != gotSingles[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkPartition(b *testing.B) {
	children := mkTasks(4, 4, 4, 4, 5, 5, 8, 9, 4, 5, 5, 4)
	pol := DefaultPolicy()
	b.Run("map", func(b *testing.B) {
		var c Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Partition(children, pol, c.Next)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var c Counter
		var pt Partitioner
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pt.Partition(children, pol, c.Next)
		}
	})
}

func TestTransportString(t *testing.T) {
	if Pull.String() != "pull" || Push.String() != "push" {
		t.Fatal("transport names wrong")
	}
	if Never.String() != "never" || Always.String() != "AC" || Selective.String() != "SC" {
		t.Fatal("mode names wrong")
	}
}
