// Package bag implements HD-CPS's adaptive bags of tasks (§III-B,
// Algorithm 1). Children tasks generated with the same priority are bundled
// into a bag; only the bag's metadata travels through a core's priority
// queue, which cuts the number of PQ operations. A runtime heuristic decides
// per priority group whether bagging pays off: groups smaller than a minimum
// threshold ship as individual tasks, and bags are capped so a huge bag
// cannot bind a core while higher-priority work waits.
package bag

import "hdcps/internal/task"

// Transport selects how a bag's payload reaches the consuming core (§III-B,
// Fig. 14).
type Transport int

const (
	// Pull stores the payload at the sender; the consumer fetches it with
	// coherent loads when the bag's metadata is dequeued. This is HD-CPS's
	// default: payload moves on demand and exploits locality.
	Pull Transport = iota
	// Push ships the payload together with the metadata at creation time.
	Push
)

// String returns "pull" or "push".
func (t Transport) String() string {
	if t == Push {
		return "push"
	}
	return "pull"
}

// Mode selects the bag-creation policy of a scheduler configuration.
type Mode int

const (
	// Never disables bags entirely (the sRQ and sRQ+TDF configurations).
	Never Mode = iota
	// Always creates a bag for every priority group regardless of size
	// (the paper's AC configuration).
	Always
	// Selective applies Algorithm 1's threshold test (the SC configuration,
	// used by HD-CPS proper).
	Selective
)

// String returns the configuration label used in the paper.
func (m Mode) String() string {
	switch m {
	case Always:
		return "AC"
	case Selective:
		return "SC"
	default:
		return "never"
	}
}

// Policy holds the bag-creation thresholds.
type Policy struct {
	Mode Mode
	// MinSize is the smallest priority group worth bagging (paper: 3).
	// Groups below it ship as individual tasks.
	MinSize int
	// MaxSize caps a single bag (paper: <10) so a core is never bound to a
	// huge bag while higher-priority work waits; larger groups split.
	MaxSize int
	// QuantShift widens the grouping: children whose priorities match in
	// prio >> QuantShift go into the same bag (the paper bundles tasks
	// "with approximate priorities"). 0 groups by exact priority.
	QuantShift uint
	// Transport selects pull or push payload delivery.
	Transport Transport
}

// DefaultPolicy returns the paper's tuned configuration: selective creation
// with group threshold 3, bag cap 10, two-bit priority quantization, pull
// transport.
func DefaultPolicy() Policy {
	return Policy{Mode: Selective, MinSize: 3, MaxSize: 10, QuantShift: 2, Transport: Pull}
}

// Bag is a bundle of proximate-priority tasks. Only ID and Prio (the
// metadata, one 128-bit hardware entry) enter a priority queue; Tasks is
// the payload, held at the producer (Pull) or carried along (Push). Prio is
// the best (smallest) priority in the bag.
type Bag struct {
	ID    uint64
	Prio  int64
	Tasks []task.Task
}

// Partition implements Algorithm 1's COUNT_PRIORITY + CREATE_BAG step: it
// groups children by priority (preserving generation order within a group)
// and splits them into bags and individual tasks according to the policy.
// nextID supplies fresh bag identifiers. The returned slices do not alias
// children, so the caller may reuse its children buffer.
func Partition(children []task.Task, p Policy, nextID func() uint64) (bags []Bag, singles []task.Task) {
	if p.Mode == Never || len(children) == 0 {
		return nil, children
	}
	minSize, maxSize := p.MinSize, p.MaxSize
	if p.Mode == Always {
		minSize = 1
	}
	if minSize < 1 {
		minSize = 1
	}
	if maxSize < minSize {
		maxSize = minSize
	}
	// Group by quantized priority, preserving order within a group.
	// Children lists are tiny (bounded by node degree), so a simple map of
	// slices is fine.
	groups := make(map[int64][]task.Task, 8)
	order := make([]int64, 0, 8) // deterministic iteration order
	for _, c := range children {
		k := c.Prio >> p.QuantShift
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, key := range order {
		g := groups[key]
		if len(g) < minSize {
			singles = append(singles, g...)
			continue
		}
		for len(g) > 0 {
			n := len(g)
			if n > maxSize {
				n = maxSize
			}
			if n < minSize {
				// Remainder smaller than the threshold: ship individually,
				// matching Algorithm 1's "else SEND(task)" branch.
				singles = append(singles, g...)
				break
			}
			bags = append(bags, Bag{ID: nextID(), Prio: minPrio(g[:n]), Tasks: g[:n]})
			g = g[n:]
		}
	}
	return bags, singles
}

// Partitioner is an allocation-free Partition for hot paths: all scratch
// (the group index, the returned bags and singles) is reused across calls.
// The returned slices — including every Bag's Tasks — are valid only until
// the next Partition call on the same Partitioner and must be copied if
// retained. Semantics are identical to the package-level Partition, which
// the tests assert.
//
// Children lists are bounded by node degree, so grouping uses a linear key
// scan instead of a map: for the handful of distinct quantized priorities a
// task emits, the scan is both faster and free of per-call map allocation
// (which dominated the native runtime's allocation profile).
type Partitioner struct {
	keys    []int64
	groups  [][]task.Task
	bags    []Bag
	singles []task.Task
}

// Partition groups children exactly like the package-level Partition but
// into reused scratch. See the type comment for the aliasing contract.
func (pt *Partitioner) Partition(children []task.Task, p Policy, nextID func() uint64) (bags []Bag, singles []task.Task) {
	if p.Mode == Never || len(children) == 0 {
		return nil, children
	}
	minSize, maxSize := p.MinSize, p.MaxSize
	if p.Mode == Always {
		minSize = 1
	}
	if minSize < 1 {
		minSize = 1
	}
	if maxSize < minSize {
		maxSize = minSize
	}
	pt.keys = pt.keys[:0]
	pt.bags = pt.bags[:0]
	pt.singles = pt.singles[:0]
	for _, c := range children {
		k := c.Prio >> p.QuantShift
		found := -1
		for i, key := range pt.keys {
			if key == k {
				found = i
				break
			}
		}
		if found < 0 {
			pt.keys = append(pt.keys, k)
			found = len(pt.keys) - 1
			if found == len(pt.groups) {
				pt.groups = append(pt.groups, nil)
			}
			pt.groups[found] = pt.groups[found][:0]
		}
		pt.groups[found] = append(pt.groups[found], c)
	}
	for i := range pt.keys {
		g := pt.groups[i]
		if len(g) < minSize {
			pt.singles = append(pt.singles, g...)
			continue
		}
		for len(g) > 0 {
			n := len(g)
			if n > maxSize {
				n = maxSize
			}
			if n < minSize {
				pt.singles = append(pt.singles, g...)
				break
			}
			pt.bags = append(pt.bags, Bag{ID: nextID(), Prio: minPrio(g[:n]), Tasks: g[:n]})
			g = g[n:]
		}
	}
	return pt.bags, pt.singles
}

func minPrio(ts []task.Task) int64 {
	m := ts[0].Prio
	for _, t := range ts[1:] {
		if t.Prio < m {
			m = t.Prio
		}
	}
	return m
}

// Counter is a trivial bag-ID allocator for single-threaded contexts such
// as the simulator.
type Counter uint64

// Next returns a fresh ID.
func (c *Counter) Next() uint64 {
	*c++
	return uint64(*c)
}
