package runtime

// Engine is the long-lived form of the native runtime: a worker fleet that
// accepts externally submitted work while running, quiesces without dying,
// and only exits on Stop. The one-shot Run keeps its historical signature
// as a thin wrapper (Start → Submit(InitialTasks) → Drain → Stop).
//
// Layering: the engine owns the worker loop and the outstanding-task
// accounting; inter-worker transfer lives behind Transport (transport.go),
// the private priority queue behind LocalQueue (localq.go), bag payloads in
// payloadStore (payload.go), and drift/TDF policy in controlPlane
// (control.go).
//
// Termination protocol (epoch-aware): every task in the system is counted
// in `outstanding`, and the count for a task's children is added before any
// child becomes visible to another worker, so outstanding can never dip to
// zero while work exists. A worker that finds outstanding == 0 does not
// exit — it parks on the fleet's condition variable. Submit increments
// outstanding, publishes the tasks through the transport, advances the
// submission epoch, and broadcasts; because the parked worker re-checks
// outstanding under the same lock the broadcast takes, a Submit can never
// slip between the check and the wait (no lost wakeup). Stop sets the stop
// flag and broadcasts, which is the only way a parked worker exits.

import (
	"context"
	"errors"
	"io"
	stdruntime "runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hdcps/internal/bag"
	"hdcps/internal/graph"
	"hdcps/internal/obs"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// ErrStopped is returned by Submit and Drain once Stop has been requested.
var ErrStopped = errors.New("runtime: engine stopped")

// Engine lifecycle states.
const (
	stateNew int32 = iota
	stateRunning
	stateStopping
	stateStopped
)

// bagMarker tags a ring task as bag metadata (node IDs never reach 2^32-1).
const bagMarker = ^graph.NodeID(0)

// Engine is a running instance of the native HD-CPS scheduler. Construct
// with NewEngine, then Start; Submit/Drain/Snapshot may be called from any
// goroutine while it runs. A single workload instance must not be shared
// across simultaneous engines.
type Engine struct {
	cfg       Config
	w         workload.Workload
	transport Transport
	// rt is the devirtualized view of the default transport: non-nil when
	// transport is the stock ringTransport, letting the worker loop make
	// direct (inlinable) calls instead of paying interface dispatch on
	// every iteration. Custom transports take the interface path.
	rt      *ringTransport
	control *controlPlane
	workers []worker
	// obs is the optional observability recorder (Config.Obs). Every
	// recording site is guarded by one nil check, so a disabled engine pays
	// a single predictable branch and allocates nothing.
	obs *obs.Recorder
	// obsMask caches obs.SampleMask() (-1 when obs is nil or task events
	// are disabled) so the per-task sampling test is one load and branch.
	obsMask int64

	sampleInterval int64

	// outstanding counts every task (and bag) emitted but not yet fully
	// processed; zero means the system is quiescent.
	outstanding atomic.Int64
	// epoch counts Submit calls; parked workers wake when it advances.
	epoch atomic.Uint64
	stop  atomic.Bool
	state atomic.Int32

	mu   sync.Mutex // guards the park/wake handshake
	cond *sync.Cond

	quiet chan struct{} // signaled when outstanding reaches zero
	done  chan struct{} // closed when every worker has exited
	wg    sync.WaitGroup

	startedAt time.Time
	elapsed   time.Duration // set by the monitor before done closes
}

type worker struct {
	id    int
	queue LocalQueue
	rng   *graph.RNG

	// store holds this worker's outgoing bag payloads (pull transport): the
	// consumer resolves the metadata's Data field against it and releases
	// the slot when done.
	store payloadStore

	// children is the per-task scratch emit buffer; emit is the one
	// allocation-free closure appending to it, and part the reusable-scratch
	// bag partitioner (its output is consumed before the next task).
	children []task.Task
	emit     func(task.Task)
	newBagID func() uint64
	part     bag.Partitioner

	// Run-local counters: plain fields on the hot path, mirrored into the
	// pub* atomics at flush/park/exit boundaries so Snapshot can read them
	// race-free while the worker runs.
	processed   int64
	bags        int64
	edges       int64
	idleParks   int64
	sinceReport int64
	sinceFlush  int

	// The pub* pointers are the atomic shadows the loop publishes into:
	// the worker's own pubLocal slots normally, or the attached recorder's
	// counter row when observability is on. Sharing the slot means an
	// enabled recorder costs the per-task path no atomics beyond the ones
	// the engine already pays.
	pubProcessed *atomic.Int64
	pubBags      *atomic.Int64
	pubEdges     *atomic.Int64
	pubIdleParks *atomic.Int64
	pubLocal     [4]atomic.Int64

	_pad [4]int64 // reduce false sharing between workers
}

// publish mirrors the worker-local counters into their atomic shadows.
func (me *worker) publish() {
	me.pubProcessed.Store(me.processed)
	me.pubBags.Store(me.bags)
	me.pubEdges.Store(me.edges)
	me.pubIdleParks.Store(me.idleParks)
}

// NewEngine builds an engine over w (which is Reset) with cfg defaults
// applied. The engine is inert until Start.
func NewEngine(w workload.Workload, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	w.Reset()
	e := &Engine{
		cfg:     cfg,
		w:       w,
		workers: make([]worker, cfg.Workers),
		control: newControlPlane(cfg),
		obs:     cfg.Obs,
		quiet:   make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	e.sampleInterval = e.control.SampleInterval()
	if cfg.NewTransport != nil {
		e.transport = cfg.NewTransport(cfg)
	} else {
		e.transport = newRingTransport(cfg.Workers, cfg.RingSize, cfg.BatchSize, cfg.Obs)
	}
	e.rt, _ = e.transport.(*ringTransport)
	for i := range e.workers {
		me := &e.workers[i]
		me.id = i
		me.queue = newLocalQueue(cfg)
		me.rng = graph.NewRNG(cfg.Seed + uint64(i)*0x9e3779b9)
		me.children = make([]task.Task, 0, 16)
		// One closure for the whole engine, so Process calls do not allocate
		// a fresh emit callback per task.
		me.emit = func(c task.Task) { me.children = append(me.children, c) }
		me.newBagID = func() uint64 {
			return uint64(me.id)<<32 | uint64(me.store.alloc().idx)
		}
		if rec := cfg.Obs; rec != nil {
			// Publish straight into the recorder's row: the worker remains
			// the slot's only writer, and the recorder's view of these
			// counters is exactly the engine's.
			me.pubProcessed = rec.CounterSlot(i, obs.CTasksProcessed)
			me.pubBags = rec.CounterSlot(i, obs.CBagsCreated)
			me.pubEdges = rec.CounterSlot(i, obs.CEdgesExamined)
			me.pubIdleParks = rec.CounterSlot(i, obs.CIdleParks)
		} else {
			me.pubProcessed = &me.pubLocal[0]
			me.pubBags = &me.pubLocal[1]
			me.pubEdges = &me.pubLocal[2]
			me.pubIdleParks = &me.pubLocal[3]
		}
	}
	if cfg.Obs != nil {
		e.obsMask = cfg.Obs.SampleMask()
	} else {
		e.obsMask = -1
	}
	return e
}

// Start launches the worker fleet. It returns an error if the engine was
// already started.
func (e *Engine) Start() error {
	// The state transition happens under the fleet lock so a pre-start
	// Submit (which seeds worker queues directly) cannot interleave with
	// worker launch.
	e.mu.Lock()
	ok := e.state.CompareAndSwap(stateNew, stateRunning)
	e.mu.Unlock()
	if !ok {
		return errors.New("runtime: engine already started")
	}
	e.startedAt = time.Now()
	for i := range e.workers {
		e.wg.Add(1)
		go func(id int) {
			defer e.wg.Done()
			// Label the goroutine so CPU/goroutine profiles attribute samples
			// per worker (pprof labels cost nothing off the profiling path).
			pprof.Do(context.Background(),
				pprof.Labels("hdcps_worker", strconv.Itoa(id)),
				func(context.Context) { e.runWorker(id) })
		}(i)
	}
	go func() {
		e.wg.Wait()
		e.elapsed = time.Since(e.startedAt)
		close(e.done)
	}()
	return nil
}

// Submit injects tasks into the engine, waking any parked workers. It is
// safe to call from any number of goroutines, before or while the fleet
// runs. Tasks are spread round-robin across workers through the transport.
// Submitting to a stopped engine returns ErrStopped (tasks racing a
// concurrent Stop may be abandoned unprocessed, like all in-flight work).
func (e *Engine) Submit(ts ...task.Task) error {
	if len(ts) == 0 {
		return nil
	}
	if e.stop.Load() {
		return ErrStopped
	}
	if e.state.Load() == stateNew && e.submitIdle(ts) {
		return nil
	}
	// The count lands before any task is published, preserving the
	// outstanding-never-falsely-zero invariant.
	e.outstanding.Add(int64(len(ts)))
	if rec := e.obs; rec != nil {
		rec.Add(obs.External, obs.CTasksSubmitted, int64(len(ts)))
		rec.Event(obs.External, obs.EvSubmit, int64(len(ts)), 0, 0)
	}
	if n := len(e.workers); n == 1 {
		e.transport.Inject(0, ts)
	} else {
		buckets := make([][]task.Task, n)
		for i, t := range ts {
			d := i % n
			buckets[d] = append(buckets[d], t)
		}
		for d, b := range buckets {
			if len(b) > 0 {
				e.transport.Inject(d, b)
			}
		}
	}
	e.epoch.Add(1)
	e.wakeAll()
	return nil
}

// submitIdle seeds ts straight into the worker queues while no worker is
// running yet (Submit before Start), skipping the transport round-trip the
// rings would charge. It re-checks the state under the fleet lock — Start
// transitions out of stateNew under the same lock — so a racing Start either
// sees the tasks already queued or makes this report false and the caller
// falls back to the transport path.
func (e *Engine) submitIdle(ts []task.Task) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state.Load() != stateNew {
		return false
	}
	e.outstanding.Add(int64(len(ts)))
	if rec := e.obs; rec != nil {
		rec.Add(obs.External, obs.CTasksSubmitted, int64(len(ts)))
		rec.Event(obs.External, obs.EvSubmit, int64(len(ts)), 0, 0)
	}
	n := len(e.workers)
	for i, t := range ts {
		e.workers[i%n].queue.Push(t)
	}
	e.epoch.Add(1)
	return true
}

// Drain blocks until the engine is quiescent — every submitted task and all
// transitively generated work fully processed — or ctx is cancelled. The
// fleet stays running (parked) afterwards; more work may be Submitted.
func (e *Engine) Drain(ctx context.Context) error {
	// Hot phase: quiescence usually lands within microseconds of the last
	// retired task, so poll briefly before arming timers.
	for spin := 0; spin < 256; spin++ {
		if e.outstanding.Load() == 0 {
			return nil
		}
		if e.stop.Load() {
			return ErrStopped
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		stdruntime.Gosched()
	}
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
	for {
		if e.outstanding.Load() == 0 {
			return nil
		}
		if e.stop.Load() {
			return ErrStopped
		}
		select {
		case <-e.quiet:
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Stop asks the fleet to exit — parked workers wake and return, busy
// workers stop after their current task, abandoning unprocessed work (Drain
// first for a clean finish) — and waits for every worker to exit or ctx to
// be cancelled. A cancelled ctx makes Stop return promptly with ctx.Err()
// while workers keep winding down in the background; calling Stop again
// waits for them.
func (e *Engine) Stop(ctx context.Context) error {
	if e.state.CompareAndSwap(stateNew, stateStopped) {
		e.stop.Store(true)
		close(e.done) // never started: nothing to join
		return nil
	}
	e.state.CompareAndSwap(stateRunning, stateStopping)
	e.stop.Store(true)
	e.wakeAll()
	select {
	case <-e.done:
		e.state.Store(stateStopped)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wakeAll broadcasts to parked workers. Taking the lock orders the
// broadcast after any in-flight park decision, closing the lost-wakeup
// window.
func (e *Engine) wakeAll() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// park blocks the worker until work is submitted or the engine stops, and
// reports whether the worker should keep running.
func (e *Engine) park(me *worker) bool {
	me.idleParks++
	// publish() flushes every shared counter slot (parks, edges, bags), so
	// the recorder is fully caught up whenever the worker idles.
	me.publish()
	if rec := e.obs; rec != nil {
		rec.Event(me.id, obs.EvPark, 0, 0, 0)
	}
	e.mu.Lock()
	for e.outstanding.Load() == 0 && !e.stop.Load() {
		e.cond.Wait()
	}
	e.mu.Unlock()
	if rec := e.obs; rec != nil {
		rec.Event(me.id, obs.EvWake, 0, 0, 0)
	}
	return !e.stop.Load()
}

// account adjusts the outstanding-task count and signals quiescence when it
// reaches zero. Positive deltas (new children) are added before the tasks
// are published, so a zero here always means a truly quiescent system.
func (e *Engine) account(delta int64) {
	if e.outstanding.Add(delta) == 0 {
		select {
		case e.quiet <- struct{}{}:
		default:
		}
	}
}

// recv, send, pending, and flush route the worker loop's per-iteration
// transport calls through the devirtualized rt when the stock transport is
// in use; a custom Transport pays the interface dispatch instead.
func (e *Engine) recv(id int, buf []task.Task) []task.Task {
	if e.rt != nil {
		return e.rt.Recv(id, buf)
	}
	return e.transport.Recv(id, buf)
}

func (e *Engine) send(src, dst int, t task.Task) {
	if e.rt != nil {
		e.rt.Send(src, dst, t)
		return
	}
	e.transport.Send(src, dst, t)
}

func (e *Engine) pending(id int) int {
	if e.rt != nil {
		return e.rt.Pending(id)
	}
	return e.transport.Pending(id)
}

func (e *Engine) flush(id int) {
	if e.rt != nil {
		e.rt.Flush(id)
		return
	}
	e.transport.Flush(id)
}

func (e *Engine) runWorker(id int) {
	me := &e.workers[id]
	defer me.publish()
	buf := make([]task.Task, 0, 64)
	idle := 0
	for {
		if e.stop.Load() {
			return
		}
		// Drain the receive side (ring + spilled batches) into the queue.
		buf = e.recv(id, buf[:0])
		for _, t := range buf {
			me.queue.Push(t)
		}

		t, ok := me.queue.Pop()
		if !ok {
			if e.pending(id) > 0 {
				// Out of local work: ship every partial batch before idling
				// so no task waits on this worker's buffers.
				e.flush(id)
				me.sinceFlush = 0
				continue
			}
			if e.outstanding.Load() == 0 {
				// Quiescent fleet: park until Submit or Stop.
				if !e.park(me) {
					return
				}
				idle = 0
				continue
			}
			// Publish on the idle path so a worker waiting out another
			// worker's tail never holds counters stale for long (the hot
			// loop only republishes at flush boundaries).
			me.publish()
			// Adaptive backoff: re-poll hot for a moment (work often lands
			// within a few hundred ns), then yield the P so the workers
			// holding tasks can run, then park briefly so an idle worker
			// stops costing the scheduler anything.
			idle++
			switch {
			case idle <= e.cfg.IdleSpin:
			case idle <= 2*e.cfg.IdleSpin:
				stdruntime.Gosched()
			default:
				time.Sleep(e.cfg.IdleSleep)
			}
			continue
		}
		idle = 0

		if t.Node == bagMarker {
			owner, idx := int(t.Data>>32), uint32(t.Data)
			st := &e.workers[owner].store
			s := st.get(idx)
			if rec := e.obs; rec != nil {
				rec.Add(id, obs.CBagsOpened, 1)
				rec.Event(id, obs.EvBagOpened, int64(len(s.tasks)), 0, 0)
			}
			for _, bt := range s.tasks {
				e.processOne(id, me, bt)
			}
			st.release(s)
			e.account(-1) // the bag itself
		} else {
			e.processOne(id, me, t)
		}

		if me.sinceFlush >= e.cfg.FlushInterval && e.pending(id) > 0 {
			e.flush(id)
			me.sinceFlush = 0
			me.publish()
		}
	}
}

// processOne executes one task and distributes its children.
func (e *Engine) processOne(id int, me *worker, t task.Task) {
	me.children = me.children[:0]
	me.edges += int64(e.w.Process(t, me.emit))
	me.processed++
	// Publish the processed total BEFORE this task can leave `outstanding`
	// (the account calls below): any reader that sees the retirement also
	// sees the count, which is the ordering Snapshot's coherence contract
	// relies on. An uncontended atomic store on the worker's own line.
	me.pubProcessed.Store(me.processed)
	// With a recorder attached pubProcessed IS the recorder's counter slot,
	// so only the sampled trace path remains to record here.
	if m := e.obsMask; m >= 0 && me.processed&m == 0 {
		e.obs.TaskSample(id, t.Prio, me.processed, me.edges)
	}

	// Account all new work and retire this task in one shared atomic; the
	// increment lands before any child becomes visible, so outstanding can
	// never dip to zero while work exists.
	if len(me.children) > 0 {
		bags, singles := me.part.Partition(me.children, e.cfg.Bags, me.newBagID)
		e.account(int64(len(bags)) + int64(countTasks(bags)) + int64(len(singles)) - 1)
		for _, b := range bags {
			me.bags++
			s := me.store.get(uint32(b.ID))
			s.tasks = append(s.tasks[:0], b.Tasks...)
			if rec := e.obs; rec != nil {
				// The bags counter flows through the shared pubBags slot at
				// publish points; only the trace event is recorded here.
				rec.Event(id, obs.EvBagCreated, b.Prio, int64(len(b.Tasks)), 0)
			}
			e.dispatch(id, me, task.Task{Node: bagMarker, Prio: b.Prio, Data: b.ID})
		}
		for _, c := range singles {
			e.dispatch(id, me, c)
		}
	} else {
		e.account(-1)
	}

	// Drift reporting (Algorithm 3's send threshold).
	me.sinceFlush++
	me.sinceReport++
	if me.sinceReport >= e.sampleInterval {
		me.sinceReport = 0
		e.control.Report(id, t.Prio)
	}
}

func countTasks(bags []bag.Bag) int {
	n := 0
	for _, b := range bags {
		n += len(b.Tasks)
	}
	return n
}

// dispatch routes one unit (task or bag metadata) to a destination chosen
// by the current TDF. Remote units go through the transport's batching;
// local units go straight to the private queue.
func (e *Engine) dispatch(id int, me *worker, t task.Task) {
	dst := id
	if n := len(e.workers); n > 1 && int64(me.rng.Uint32n(100)) < e.control.TDF() {
		d := int(me.rng.Uint32n(uint32(n - 1)))
		if d >= id {
			d++
		}
		dst = d
	}
	if dst == id {
		me.queue.Push(t)
		return
	}
	e.send(id, dst, t)
}

// WorkerStats is one worker's Snapshot row.
type WorkerStats struct {
	Processed      int64 // tasks executed (bag payloads included)
	Bags           int64 // bags created by this worker
	OverflowSpills int64 // full-ring spills that landed at this worker
	IdleParks      int64 // times the worker parked on a quiescent fleet
}

// Snapshot is a cheap point-in-time view of a running engine: per-worker
// counters plus the live control-plane state.
//
// Coherence contract: TasksProcessed is published before a task's
// retirement can be observed in Outstanding, and Snapshot reads Outstanding
// before the counters, so for any snapshot
//
//	TasksProcessed + Outstanding >= tasks submitted before the call
//
// and once Drain has returned (Outstanding == 0 with no concurrent Submit),
// TasksProcessed is exact — a mid-drain snapshot can no longer under-count
// retired work. The remaining counters (Bags, EdgesExamined, spills, parks)
// are published at flush/park/idle boundaries and may lag by at most one
// flush interval.
type Snapshot struct {
	Epoch       uint64 // Submit calls so far
	Outstanding int64  // tasks submitted or spawned but not yet retired
	TDF         int    // current task-distribution factor (percent)

	TasksProcessed int64
	BagsCreated    int64
	EdgesExamined  int64

	Workers []WorkerStats
}

// Snapshot reads the engine's counters without disturbing the workers.
// Safe from any goroutine at any lifecycle stage.
func (e *Engine) Snapshot() Snapshot {
	// Read order matters for the coherence contract: Outstanding first,
	// then the per-worker processed counters. A task retiring between the
	// two reads inflates TasksProcessed, never loses the task — each
	// worker stores its processed total before decrementing outstanding,
	// and sync/atomic's total order makes that store visible to any reader
	// that observed the decrement.
	s := Snapshot{
		Epoch:       e.epoch.Load(),
		Outstanding: e.outstanding.Load(),
		TDF:         int(e.control.TDF()),
		Workers:     make([]WorkerStats, len(e.workers)),
	}
	for i := range e.workers {
		me := &e.workers[i]
		ws := WorkerStats{
			Processed:      me.pubProcessed.Load(),
			Bags:           me.pubBags.Load(),
			OverflowSpills: e.transport.Spills(i),
			IdleParks:      me.pubIdleParks.Load(),
		}
		s.Workers[i] = ws
		s.TasksProcessed += ws.Processed
		s.BagsCreated += ws.Bags
		s.EdgesExamined += me.pubEdges.Load()
	}
	return s
}

// Result returns the engine's cumulative metrics. It is exact once Stop has
// returned nil (every worker has flushed its counters); on a running engine
// it is the same lagged view Snapshot provides.
func (e *Engine) Result() Result {
	var res Result
	select {
	case <-e.done:
		res.Elapsed = e.elapsed
	default:
		if e.state.Load() != stateNew {
			res.Elapsed = time.Since(e.startedAt)
		}
	}
	for i := range e.workers {
		me := &e.workers[i]
		res.TasksProcessed += me.pubProcessed.Load()
		res.BagsCreated += me.pubBags.Load()
		res.EdgesExamined += me.pubEdges.Load()
	}
	for _, rec := range e.control.History() {
		res.DriftTrace = append(res.DriftTrace, rec.Drift)
		res.RefTrace = append(res.RefTrace, rec.Ref)
		res.TDFTrace = append(res.TDFTrace, rec.TDF)
	}
	return res
}

// Obs returns the engine's observability recorder (nil when Config.Obs was
// unset).
func (e *Engine) Obs() *obs.Recorder { return e.obs }

// ControlTrace returns the control plane's time series so far: one point
// per controller interval with the measured drift, the reference priority,
// and the TDF chosen for the next interval. Safe to call while the fleet
// runs; this is the time-series replacement for reading Snapshot.TDF in a
// loop.
func (e *Engine) ControlTrace() []obs.ControlPoint { return e.control.Series() }

// WriteTrace streams the engine's full observability state as JSONL
// (schema obs.TraceSchema): recorder meta, per-worker counters, the
// retained event trace, and the control plane's drift/ref/TDF time series.
// Requires Config.Obs; without a recorder only the control series is
// written.
func (e *Engine) WriteTrace(w io.Writer) error {
	if e.obs != nil {
		if err := e.obs.WriteJSONL(w); err != nil {
			return err
		}
	}
	return obs.WriteControlJSONL(w, e.control.Series())
}
