package runtime

// Engine is the long-lived form of the native runtime: a worker fleet that
// accepts externally submitted work while running, quiesces without dying,
// and only exits on Stop. The one-shot Run keeps its historical signature
// as a thin wrapper (Start → Submit(InitialTasks) → Drain → Stop).
//
// Layering: the engine owns the worker loop and the outstanding-task
// accounting; inter-worker transfer lives behind Transport (transport.go),
// the private priority queue behind LocalQueue (localq.go), bag payloads in
// payloadStore (payload.go), and drift/TDF policy in controlPlane
// (control.go).
//
// Termination protocol (epoch-aware): every task in the system is counted
// in `outstanding`, and the count for a task's children is added before any
// child becomes visible to another worker, so outstanding can never dip to
// zero while work exists. A worker that finds outstanding == 0 does not
// exit — it parks on the fleet's condition variable. Submit increments
// outstanding, publishes the tasks through the transport, advances the
// submission epoch, and broadcasts; because the parked worker re-checks
// outstanding under the same lock the broadcast takes, a Submit can never
// slip between the check and the wait (no lost wakeup). Stop sets the stop
// flag and broadcasts, which is the only way a parked worker exits.

import (
	"context"
	"errors"
	"fmt"
	"io"
	stdruntime "runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hdcps/internal/bag"
	"hdcps/internal/graph"
	"hdcps/internal/obs"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// ErrStopped is returned by Submit and Drain once Stop has been requested.
var ErrStopped = errors.New("runtime: engine stopped")

// Engine lifecycle states.
const (
	stateNew int32 = iota
	stateRunning
	stateStopping
	stateStopped
)

// bagMarker tags a ring task as bag metadata (node IDs never reach 2^32-1).
const bagMarker = ^graph.NodeID(0)

// Engine is a running instance of the native HD-CPS scheduler. Construct
// with NewEngine, then Start; Submit/Drain/Snapshot may be called from any
// goroutine while it runs. A single workload instance must not be shared
// across simultaneous engines.
type Engine struct {
	cfg       Config
	w         workload.Workload
	transport Transport
	// rt is the devirtualized view of the default transport: non-nil when
	// transport is the stock ringTransport, letting the worker loop make
	// direct (inlinable) calls instead of paying interface dispatch on
	// every iteration. Custom transports take the interface path.
	rt      *ringTransport
	control *controlPlane
	workers []worker
	// obs is the optional observability recorder (Config.Obs). Every
	// recording site is guarded by one nil check, so a disabled engine pays
	// a single predictable branch and allocates nothing.
	obs *obs.Recorder
	// obsMask caches obs.SampleMask() (-1 when obs is nil or task events
	// are disabled) so the per-task sampling test is one load and branch.
	obsMask int64

	sampleInterval int64

	// jobs is the COW tenant table, indexed by task.JobID. Job 0 is the
	// workload the engine was constructed over; NewJob appends under jobMu
	// and publishes a fresh slice, so readers (every worker, every Submit)
	// pay one atomic pointer load and never lock. Jobs are never removed —
	// a JobID stays valid for the engine's lifetime.
	jobs  atomic.Pointer[[]*jobState]
	jobMu sync.Mutex

	// outstanding counts every task (and bag) emitted but not yet fully
	// processed; zero means the system is quiescent.
	outstanding atomic.Int64
	// submitted counts externally injected tasks — the left side of the
	// conservation ledger (see fault.go). Incremented before outstanding so
	// an observer that sees the work also sees its ledger entry.
	submitted atomic.Int64
	// epoch counts Submit calls; parked workers wake when it advances.
	epoch atomic.Uint64
	stop  atomic.Bool
	state atomic.Int32

	// faults is the panic-isolation ledger: retry attempts, the poison-task
	// quarantine, and worker-restart counts (fault.go).
	faults faultState

	mu   sync.Mutex // guards the park/wake handshake
	cond *sync.Cond

	quiet chan struct{} // signaled when outstanding reaches zero
	done  chan struct{} // closed when every worker has exited
	wg    sync.WaitGroup

	startedAt time.Time
	elapsed   time.Duration // set by the monitor before done closes
}

type worker struct {
	id  int
	eng *Engine // backref for the queue shims and the guarded restart path

	// jqs is the worker's per-job queue set, indexed by task.JobID and
	// materialized lazily on a job's first local task. act is the round-robin
	// ring of jobs with queued work; the batch fill rotates over it with a
	// deficit-round-robin balance per queue (workerJQ.deficit, deposited
	// weight*drrQuantum per visit, charged per retired task), which is the
	// job-level scheduling layer: weighted fair task shares across tenants,
	// task-priority order within each tenant's queue. Only this worker's
	// goroutine touches any of it (pre-start submits run under the fleet
	// lock before workers exist).
	jqs    []*workerJQ
	act    []*workerJQ
	actPos int
	cur    *workerJQ
	// dirtyJQ is the set of job queues holding unflushed ledger deltas,
	// drained at batch boundaries (flushBatchAccts).
	dirtyJQ []*workerJQ
	// nJobs is how many entries of the engine's job table this worker has
	// registered (multiqueue only: shared structures make job activation
	// non-local, so every known job stays active — see syncJobs).
	nJobs int
	// mqKind notes the multiqueue regime once, off the engine config.
	mqKind bool

	rng *graph.RNG

	// batch is the dequeue batch (Config.BatchK): the loop pops up to
	// len(batch) tasks and processes them back to back, prefetching the
	// next task's CSR row between items. batchPos/batchLen let a worker
	// restart (runWorkerGuarded) requeue the not-yet-started tail so a
	// mid-batch crash strands no tasks.
	batch    []task.Task
	batchPos int
	batchLen int

	// store holds this worker's outgoing bag payloads (pull transport): the
	// consumer resolves the metadata's Data field against it and releases
	// the slot when done.
	store payloadStore

	// children is the per-task scratch emit buffer; emit is the one
	// allocation-free closure appending to it, and part the reusable-scratch
	// bag partitioner (its output is consumed before the next task).
	children []task.Task
	emit     func(task.Task)
	newBagID func() uint64
	part     bag.Partitioner

	// Run-local counters: plain fields on the hot path, mirrored into the
	// pub* atomics at flush/park/exit boundaries so Snapshot can read them
	// race-free while the worker runs. spawned and bagsRetired are the
	// conservation ledger's add/retire sides and are additionally stored
	// before the outstanding-count transition that makes them observable,
	// so the ledger is exact at quiescence (fault.go).
	processed   int64
	bags        int64
	edges       int64
	idleParks   int64
	spawned     int64
	bagsRetired int64
	cancelled   int64 // tasks discarded into the cancellation ledger sink
	redirects   int64
	sinceReport int64
	sinceFlush  int

	// Scheduling-quality accounting (obs-gated: all five stay untouched
	// when no recorder is attached). popCount strides the sampler at the
	// recorder's task-sample mask; the rest accumulate the sampled rank
	// errors Snapshot and the bench gate read. For strict kinds the sample
	// is a Peek-after-pop structural canary (any inversion is a queue bug);
	// for multiqueue it is the sharded-witness rank estimate.
	popCount    int64
	rankSamples int64
	inversions  int64
	rankErrSum  int64
	rankErrMax  int64

	// acct accumulates this worker's pending retirement decrements (-1 per
	// childless task or unpacked bag) between batch boundaries, where they
	// flush into the shared outstanding count as one atomic add. Deferring
	// only the negative side keeps the termination invariant: outstanding
	// reads high, never falsely zero, while work exists. runWorker's exit
	// path flushes it, so a panic cannot strand the count.
	acct int64

	// parked is set while the worker blocks in the park/wake handshake
	// (StallError diagnostics read it).
	parked atomic.Bool

	// The pub* pointers are the atomic shadows the loop publishes into:
	// the worker's own pubLocal slots normally, or the attached recorder's
	// counter row when observability is on. Sharing the slot means an
	// enabled recorder costs the per-task path no atomics beyond the ones
	// the engine already pays.
	pubProcessed   *atomic.Int64
	pubBags        *atomic.Int64
	pubEdges       *atomic.Int64
	pubIdleParks   *atomic.Int64
	pubSpawned     *atomic.Int64
	pubBagsRetired *atomic.Int64
	pubCancelled   *atomic.Int64
	pubRedirects   *atomic.Int64
	pubHotSpills   *atomic.Int64
	pubFallbacks   *atomic.Int64
	pubRankSamples *atomic.Int64
	pubInversions  *atomic.Int64
	pubRankErrSum  *atomic.Int64
	pubRankErrMax  *atomic.Int64
	pubLocal       [14]atomic.Int64

	// prefetchSink receives the batched loop's CSR-offset loads; writing
	// them to a field keeps the loads from being dead-code-eliminated.
	prefetchSink uint32

	_pad [4]int64 // reduce false sharing between workers
}

// jobQueue returns this worker's queue for the given job, materializing it
// on first use. Only the owning worker (or a pre-start Submit under the
// fleet lock) calls it.
func (me *worker) jobQueue(js *jobState) *workerJQ {
	id := int(js.id)
	if id >= len(me.jqs) {
		grown := make([]*workerJQ, id+1)
		copy(grown, me.jqs)
		me.jqs = grown
	}
	if q := me.jqs[id]; q != nil {
		return q
	}
	q := newWorkerJQ(me.eng.cfg, js)
	me.jqs[id] = q
	return q
}

// activate adds a job queue to the round-robin ring; deactivate removes it
// (swap-delete: the ring is small and order across rounds is what matters).
func (me *worker) activate(q *workerJQ) {
	if !q.active {
		q.active = true
		me.act = append(me.act, q)
	}
}

func (me *worker) deactivate(q *workerJQ) {
	if !q.active {
		return
	}
	q.active = false
	for i, x := range me.act {
		if x == q {
			last := len(me.act) - 1
			me.act[i] = me.act[last]
			me.act[last] = nil
			me.act = me.act[:last]
			if me.actPos >= last && last > 0 {
				me.actPos = 0
			}
			break
		}
	}
	if me.cur == q {
		me.cur = nil
	}
}

// syncJobs registers every job the engine knows into this worker's active
// ring (multiqueue only). Shared structures make activation non-local —
// another worker's push is invisible to this worker's handle until a pop
// finds it — so under multiqueue every live job stays active and the batch
// fill's miss counter provides idle detection instead.
func (me *worker) syncJobs(e *Engine) {
	jobs := *e.jobs.Load()
	if me.nJobs == len(jobs) {
		return
	}
	for _, js := range jobs[me.nJobs:] {
		q := me.jobQueue(js)
		if !js.cancelled.Load() {
			me.activate(q)
		}
	}
	me.nJobs = len(jobs)
}

// markDirty queues a job queue's deferred ledger deltas for the next
// batch-boundary flush.
func (me *worker) markDirty(q *workerJQ) {
	if !q.dirty {
		q.dirty = true
		me.dirtyJQ = append(me.dirtyJQ, q)
	}
}

// qpush and qpop are the single-queue-era shims the restart-requeue path and
// white-box tests still use: push routes through the engine's job-aware push
// (cancellation check included), pop sweeps the job queues in table order
// ignoring fairness credit (tests only — the hot path batch fill is
// fillBatch).
func (me *worker) qpush(t task.Task) {
	me.eng.push(me, t)
}

func (me *worker) qpop() (task.Task, bool) {
	for _, q := range me.jqs {
		if q == nil {
			continue
		}
		if t, ok := q.pop(); ok {
			return t, ok
		}
	}
	return task.Task{}, false
}

// publish mirrors the worker-local counters into their atomic shadows.
func (me *worker) publish() {
	me.pubProcessed.Store(me.processed)
	me.pubBags.Store(me.bags)
	me.pubEdges.Store(me.edges)
	me.pubIdleParks.Store(me.idleParks)
	me.pubSpawned.Store(me.spawned)
	me.pubBagsRetired.Store(me.bagsRetired)
	me.pubCancelled.Store(me.cancelled)
	me.pubRedirects.Store(me.redirects)
	var spills, fallbacks int64
	for _, q := range me.jqs {
		if q != nil && q.tl != nil {
			st := q.tl.Stats()
			spills += st.Spills
			fallbacks += st.Fallbacks
		}
	}
	me.pubHotSpills.Store(spills)
	me.pubFallbacks.Store(fallbacks)
	me.pubRankSamples.Store(me.rankSamples)
	me.pubInversions.Store(me.inversions)
	me.pubRankErrSum.Store(me.rankErrSum)
	me.pubRankErrMax.Store(me.rankErrMax)
}

// NewEngine builds an engine over w (which is Reset) with cfg defaults
// applied; w becomes job 0, the engine's default tenant. Register further
// tenants with NewJob. The engine is inert until Start.
func NewEngine(w workload.Workload, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	w.Reset()
	e := &Engine{
		cfg:     cfg,
		w:       w,
		workers: make([]worker, cfg.Workers),
		control: newControlPlane(cfg),
		obs:     cfg.Obs,
		quiet:   make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	e.sampleInterval = e.control.SampleInterval()
	// w was already Reset above; NewJob would Reset it again, so seed the
	// table directly.
	jobs := []*jobState{newJobState(0, w, cfg.DefaultJob, cfg)}
	e.jobs.Store(&jobs)
	if cfg.NewTransport != nil {
		e.transport = cfg.NewTransport(cfg)
	} else {
		e.transport = newRingTransport(cfg.Workers, cfg.RingSize, cfg.BatchSize, cfg.OverflowCap, cfg.Obs)
	}
	e.rt, _ = e.transport.(*ringTransport)
	for i := range e.workers {
		me := &e.workers[i]
		me.id = i
		me.eng = e
		me.mqKind = cfg.Queue == nil && cfg.QueueKind == QueueMultiQueue
		me.rng = graph.NewRNG(cfg.Seed + uint64(i)*0x9e3779b9)
		me.batch = make([]task.Task, cfg.BatchK)
		me.children = make([]task.Task, 0, 16)
		// One closure for the whole engine, so Process calls do not allocate
		// a fresh emit callback per task.
		me.emit = func(c task.Task) { me.children = append(me.children, c) }
		me.newBagID = func() uint64 {
			return uint64(me.id)<<32 | uint64(me.store.alloc().idx)
		}
		if rec := cfg.Obs; rec != nil {
			// Publish straight into the recorder's row: the worker remains
			// the slot's only writer, and the recorder's view of these
			// counters is exactly the engine's.
			me.pubProcessed = rec.CounterSlot(i, obs.CTasksProcessed)
			me.pubBags = rec.CounterSlot(i, obs.CBagsCreated)
			me.pubEdges = rec.CounterSlot(i, obs.CEdgesExamined)
			me.pubIdleParks = rec.CounterSlot(i, obs.CIdleParks)
			me.pubSpawned = rec.CounterSlot(i, obs.CTasksSpawned)
			me.pubBagsRetired = rec.CounterSlot(i, obs.CBagsRetired)
			me.pubCancelled = rec.CounterSlot(i, obs.CTasksCancelled)
			me.pubRedirects = rec.CounterSlot(i, obs.COverflowRedirects)
			me.pubHotSpills = rec.CounterSlot(i, obs.CHotSpills)
			me.pubFallbacks = rec.CounterSlot(i, obs.CQueueFallbacks)
			me.pubRankSamples = rec.CounterSlot(i, obs.CRankSamples)
			me.pubInversions = rec.CounterSlot(i, obs.CPrioInversions)
			me.pubRankErrSum = rec.CounterSlot(i, obs.CRankErrSum)
			me.pubRankErrMax = rec.CounterSlot(i, obs.CRankErrMax)
		} else {
			me.pubProcessed = &me.pubLocal[0]
			me.pubBags = &me.pubLocal[1]
			me.pubEdges = &me.pubLocal[2]
			me.pubIdleParks = &me.pubLocal[3]
			me.pubSpawned = &me.pubLocal[4]
			me.pubBagsRetired = &me.pubLocal[5]
			me.pubCancelled = &me.pubLocal[6]
			me.pubRedirects = &me.pubLocal[7]
			me.pubHotSpills = &me.pubLocal[8]
			me.pubFallbacks = &me.pubLocal[9]
			me.pubRankSamples = &me.pubLocal[10]
			me.pubInversions = &me.pubLocal[11]
			me.pubRankErrSum = &me.pubLocal[12]
			me.pubRankErrMax = &me.pubLocal[13]
		}
	}
	if cfg.Obs != nil {
		e.obsMask = cfg.Obs.SampleMask()
	} else {
		e.obsMask = -1
	}
	return e
}

// Start launches the worker fleet. It returns an error if the engine was
// already started.
func (e *Engine) Start() error {
	// The state transition happens under the fleet lock so a pre-start
	// Submit (which seeds worker queues directly) cannot interleave with
	// worker launch.
	e.mu.Lock()
	ok := e.state.CompareAndSwap(stateNew, stateRunning)
	e.mu.Unlock()
	if !ok {
		return errors.New("runtime: engine already started")
	}
	e.startedAt = time.Now()
	for i := range e.workers {
		e.wg.Add(1)
		go func(id int) {
			defer e.wg.Done()
			// Label the goroutine so CPU/goroutine profiles attribute samples
			// per worker (pprof labels cost nothing off the profiling path).
			pprof.Do(context.Background(),
				pprof.Labels("hdcps_worker", strconv.Itoa(id)),
				func(context.Context) {
					// Last line of defense: a panic that escapes the per-task
					// recover (an engine or transport bug, not a task fn)
					// must not kill the worker — a dead worker strands its
					// queued tasks and wedges Drain. Restart the loop instead.
					for !e.runWorkerGuarded(id) {
					}
				})
		}(i)
	}
	go func() {
		e.wg.Wait()
		e.elapsed = time.Since(e.startedAt)
		close(e.done)
	}()
	return nil
}

// Submit injects tasks into the engine, waking any parked workers. It is
// safe to call from any number of goroutines, before or while the fleet
// runs. Tasks are spread round-robin across workers through the transport.
// Each task's Job field is honored (out-of-range IDs fold into job 0), so a
// resubmitted task stays billed to its tenant; per-job admission quotas and
// cancellation apply per job, all-or-nothing across the batch. Submitting to
// a stopped engine returns ErrStopped (tasks racing a concurrent Stop may be
// abandoned unprocessed, like all in-flight work).
func (e *Engine) Submit(ts ...task.Task) error {
	if len(ts) == 0 {
		return nil
	}
	if e.stop.Load() {
		return ErrStopped
	}
	jobs := *e.jobs.Load()
	// Fold bogus IDs into the default job in place, and detect the common
	// single-tenant batch so it pays no grouping.
	uniform := true
	for i := range ts {
		if int(ts[i].Job) >= len(jobs) {
			ts[i].Job = 0
		}
		if ts[i].Job != ts[0].Job {
			uniform = false
		}
	}
	if uniform {
		return e.submitJob(jobs[ts[0].Job], ts)
	}
	// Mixed batch: group per job, admission-check every group, then submit
	// group by group (all-or-nothing across the batch up to benign races
	// with concurrent submitters).
	groups := make(map[task.JobID][]task.Task)
	for _, t := range ts {
		groups[t.Job] = append(groups[t.Job], t)
	}
	for id, g := range groups {
		if err := e.admit(jobs[id], len(g)); err != nil {
			return err
		}
	}
	for id, g := range groups {
		if err := e.submitJob(jobs[id], g); err != nil {
			return err
		}
	}
	return nil
}

// admit runs a job's admission checks for a batch of n tasks without
// submitting anything.
func (e *Engine) admit(js *jobState, n int) error {
	if js.cancelled.Load() {
		return fmt.Errorf("runtime: job %d (%s): %w", js.id, js.name, ErrJobCancelled)
	}
	if q := js.quota; q > 0 {
		if out := js.outstanding.Load(); out+int64(n) > q {
			js.rejected.Add(int64(n))
			if rec := e.obs; rec != nil {
				rec.Add(obs.External, obs.CQuotaRejects, int64(n))
				rec.Event(obs.External, obs.EvQuotaReject, int64(n), int64(js.id), 0)
			}
			return &QuotaError{Job: js.id, Name: js.name, Limit: q, Outstanding: out, Tasks: n}
		}
	}
	return nil
}

// submitJob is the single-tenant submission path: admission, then the
// ledger entries (per-job and global, adds before visibility), then
// publication through the transport.
func (e *Engine) submitJob(js *jobState, ts []task.Task) error {
	if err := e.admit(js, len(ts)); err != nil {
		return err
	}
	if e.state.Load() == stateNew && e.submitIdle(js, ts) {
		return nil
	}
	// The ledger entries land first, then the counts, then the tasks are
	// published — preserving both the outstanding-never-falsely-zero
	// invariant and the conservation ledgers' at-quiescence exactness, per
	// job and globally.
	n := int64(len(ts))
	js.submitted.Add(n)
	js.outstanding.Add(n)
	e.submitted.Add(n)
	e.outstanding.Add(n)
	if rec := e.obs; rec != nil {
		rec.Add(obs.External, obs.CTasksSubmitted, n)
		rec.Event(obs.External, obs.EvSubmit, n, int64(js.id), 0)
	}
	if nw := len(e.workers); nw == 1 {
		e.transport.Inject(0, ts)
	} else {
		buckets := make([][]task.Task, nw)
		for i, t := range ts {
			d := i % nw
			buckets[d] = append(buckets[d], t)
		}
		for d, b := range buckets {
			if len(b) > 0 {
				e.transport.Inject(d, b)
			}
		}
	}
	e.epoch.Add(1)
	e.wakeAll()
	return nil
}

// submitIdle seeds ts straight into the worker queues while no worker is
// running yet (Submit before Start), skipping the transport round-trip the
// rings would charge. It re-checks the state under the fleet lock — Start
// transitions out of stateNew under the same lock — so a racing Start either
// sees the tasks already queued or makes this report false and the caller
// falls back to the transport path.
func (e *Engine) submitIdle(js *jobState, ts []task.Task) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state.Load() != stateNew {
		return false
	}
	n := int64(len(ts))
	js.submitted.Add(n)
	js.outstanding.Add(n)
	e.submitted.Add(n)
	e.outstanding.Add(n)
	if rec := e.obs; rec != nil {
		rec.Add(obs.External, obs.CTasksSubmitted, n)
		rec.Event(obs.External, obs.EvSubmit, n, int64(js.id), 0)
	}
	nw := len(e.workers)
	for i, t := range ts {
		me := &e.workers[i%nw]
		e.push(me, t)
	}
	e.epoch.Add(1)
	return true
}

// Drain blocks until the whole engine is quiescent — every task of every
// job, submitted or transitively generated, fully processed, quarantined, or
// cancelled — or ctx is cancelled, in which case it returns a *StallError
// wrapping ctx.Err() with per-worker diagnostics. With Config.StallTimeout
// set, a fleet that makes no progress for that long returns a *StallError
// wrapping ErrStalled even under a background context, so Drain can never
// block forever on a wedged engine. The fleet stays running (parked)
// afterwards; more work may be Submitted.
//
// This is the engine-wide wait: it spans all tenants, so one slow job holds
// it open. To wait on (or diagnose) a single tenant, use Job.Drain — its
// stall diagnostics carry the blocking job's ID and per-job ledger.
func (e *Engine) Drain(ctx context.Context) error {
	// Hot phase: quiescence usually lands within microseconds of the last
	// retired task, so poll briefly before arming timers.
	for spin := 0; spin < 256; spin++ {
		if e.outstanding.Load() == 0 {
			return nil
		}
		if e.stop.Load() {
			return ErrStopped
		}
		if err := ctx.Err(); err != nil {
			return e.stallError("drain", err)
		}
		stdruntime.Gosched()
	}
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
	// Liveness watchdog: progress is any ledger movement (a retirement, a
	// quarantine, a new submission). A long-running task is progress-free
	// but legitimate, which is why the watchdog is opt-in per Config.
	lastProgress := time.Now()
	lastLedger := e.ledgerMark()
	for {
		if e.outstanding.Load() == 0 {
			return nil
		}
		if e.stop.Load() {
			return ErrStopped
		}
		if d := e.cfg.StallTimeout; d > 0 {
			if mark := e.ledgerMark(); mark != lastLedger {
				lastLedger = mark
				lastProgress = time.Now()
			} else if time.Since(lastProgress) > d {
				return e.stallError("drain", ErrStalled)
			}
		}
		select {
		case <-e.quiet:
		case <-tick.C:
		case <-ctx.Done():
			return e.stallError("drain", ctx.Err())
		}
	}
}

// ledgerMark folds the conservation ledger's moving parts into one value
// that changes whenever the engine makes progress.
func (e *Engine) ledgerMark() int64 {
	m := e.submitted.Load() + e.faults.nQuarantined.Load() + e.faults.panics.Load()
	for i := range e.workers {
		m += e.workers[i].pubProcessed.Load() + e.workers[i].pubCancelled.Load()
	}
	return m
}

// Stop asks the fleet to exit — parked workers wake and return, busy
// workers stop after their current task, abandoning unprocessed work (Drain
// first for a clean finish) — and waits for every worker to exit or ctx to
// be cancelled. A cancelled ctx makes Stop return promptly with a
// *StallError wrapping ctx.Err() (per-worker diagnostics attached) while
// workers keep winding down in the background; calling Stop again waits
// for them.
func (e *Engine) Stop(ctx context.Context) error {
	if e.state.CompareAndSwap(stateNew, stateStopped) {
		e.stop.Store(true)
		close(e.done) // never started: nothing to join
		return nil
	}
	e.state.CompareAndSwap(stateRunning, stateStopping)
	e.stop.Store(true)
	e.wakeAll()
	select {
	case <-e.done:
		e.state.Store(stateStopped)
		return nil
	case <-ctx.Done():
		return e.stallError("stop", ctx.Err())
	}
}

// wakeAll broadcasts to parked workers. Taking the lock orders the
// broadcast after any in-flight park decision, closing the lost-wakeup
// window.
func (e *Engine) wakeAll() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// park blocks the worker until work is submitted or the engine stops, and
// reports whether the worker should keep running.
func (e *Engine) park(me *worker) bool {
	me.idleParks++
	// publish() flushes every shared counter slot (parks, edges, bags), so
	// the recorder is fully caught up whenever the worker idles.
	me.publish()
	if rec := e.obs; rec != nil {
		rec.Event(me.id, obs.EvPark, 0, 0, 0)
	}
	me.parked.Store(true)
	e.mu.Lock()
	for e.outstanding.Load() == 0 && !e.stop.Load() {
		e.cond.Wait()
	}
	e.mu.Unlock()
	me.parked.Store(false)
	if rec := e.obs; rec != nil {
		rec.Event(me.id, obs.EvWake, 0, 0, 0)
	}
	return !e.stop.Load()
}

// account adjusts the outstanding-task count and signals quiescence when it
// reaches zero. Positive deltas (new children) are added before the tasks
// are published, so a zero here always means a truly quiescent system.
func (e *Engine) account(delta int64) {
	if e.outstanding.Add(delta) == 0 {
		select {
		case e.quiet <- struct{}{}:
		default:
		}
	}
}

// recv, send, pending, and flush route the worker loop's per-iteration
// transport calls through the devirtualized rt when the stock transport is
// in use; a custom Transport pays the interface dispatch instead. send and
// flush absorb flow-control rejects: tasks a saturated destination bounced
// stay on the sending worker (spill-to-local).
func (e *Engine) recv(id int, buf []task.Task) []task.Task {
	if e.rt != nil {
		return e.rt.Recv(id, buf)
	}
	return e.transport.Recv(id, buf)
}

func (e *Engine) send(me *worker, dst int, t task.Task) {
	var rej []task.Task
	if e.rt != nil {
		rej = e.rt.Send(me.id, dst, t)
	} else {
		rej = e.transport.Send(me.id, dst, t)
	}
	if len(rej) > 0 {
		e.redirect(me, rej)
	}
}

func (e *Engine) pending(id int) int {
	if e.rt != nil {
		return e.rt.Pending(id)
	}
	return e.transport.Pending(id)
}

func (e *Engine) flush(me *worker) {
	var rej []task.Task
	if e.rt != nil {
		rej = e.rt.Flush(me.id)
	} else {
		rej = e.transport.Flush(me.id)
	}
	if len(rej) > 0 {
		e.redirect(me, rej)
	}
}

// redirect keeps flow-control-rejected tasks on the sending worker: they go
// into its own local queues instead of growing a saturated destination's
// overflow without bound. Outstanding accounting is untouched — the tasks
// were already counted when they were spawned (a cancelled job's bounce is
// discarded by push like any other arrival).
func (e *Engine) redirect(me *worker, ts []task.Task) {
	for _, t := range ts {
		e.push(me, t)
	}
	me.redirects += int64(len(ts))
	me.pubRedirects.Store(me.redirects)
	if rec := e.obs; rec != nil {
		rec.Event(me.id, obs.EvRedirect, int64(len(ts)), 0, 0)
	}
}

// push lands one arriving task (recv, redirect, requeue, local dispatch, or
// pre-start seed) in this worker's queue for the task's job — or, when the
// job is cancelled, discards it straight into the cancellation sink.
func (e *Engine) push(me *worker, t task.Task) {
	js := e.jobStateFor(t.Job)
	q := me.jobQueue(js)
	if js.cancelled.Load() {
		e.discard(me, q, t)
		return
	}
	q.push(t)
	if !me.mqKind {
		me.activate(q)
	}
}

// discard retires one unit of a cancelled job without executing it: a plain
// task counts one cancellation; a bag marker resolves its payload, counts
// every payload task as cancelled, and retires the bag itself. The ledger
// deltas are deferred to the batch boundary exactly like processing's
// (flushBatchAccts preserves the retirement-before-outstanding order).
func (e *Engine) discard(me *worker, q *workerJQ, t task.Task) {
	if t.Node == bagMarker {
		owner, idx := int(t.Data>>32), uint32(t.Data)
		st := &e.workers[owner].store
		s := st.get(idx)
		n := int64(len(s.tasks))
		st.release(s)
		me.cancelled += n
		me.bagsRetired++
		me.pubBagsRetired.Store(me.bagsRetired)
		q.dCancelled += n
		q.dBagsRetired++
		q.dOut -= n + 1
		me.acct -= n + 1
	} else {
		me.cancelled++
		q.dCancelled++
		q.dOut--
		me.acct--
	}
	me.markDirty(q)
}

// runWorkerGuarded runs the worker loop, recovering any panic that escapes
// the per-task isolation in processOne — an engine-internal bug, not a task
// handler fault. It reports true on a clean (stop-requested) exit and false
// when the loop died and should be restarted. Accounting already performed
// by the interrupted iteration is preserved (counters are monotone and the
// outstanding ledger is adjusted before work becomes visible), so a restart
// can at worst re-deliver the interrupted task's siblings, never lose the
// count that lets Drain terminate.
func (e *Engine) runWorkerGuarded(id int) (clean bool) {
	defer func() {
		if r := recover(); r != nil {
			clean = false
			e.faults.restarts.Add(1)
			if rec := e.obs; rec != nil {
				rec.Add(id, obs.CWorkerRestarts, 1)
				rec.Event(id, obs.EvWorkerRestart, 0, 0, 0)
			}
		}
	}()
	e.runWorker(id)
	return true
}

func (e *Engine) runWorker(id int) {
	me := &e.workers[id]
	defer func() {
		// Counters first, then the deferred retirements: a reader that sees
		// outstanding drop must already see the retirement totals behind it.
		me.publish()
		e.flushBatchAccts(me)
	}()
	// A restarted worker may have died mid-batch: requeue the popped but
	// not-yet-started tail so the crash strands no tasks. The task at
	// batchPos was in flight when the loop died; like the pre-batching
	// single-task loop, its accounting was already preserved by processOne's
	// ordering, so only the untouched tail needs to go back.
	if me.batchLen > 0 {
		for _, t := range me.batch[me.batchPos+1 : me.batchLen] {
			e.push(me, t)
		}
		me.batchPos, me.batchLen = 0, 0
	}
	buf := make([]task.Task, 0, 64)
	idle := 0
	for {
		if e.stop.Load() {
			return
		}
		// Drain the receive side (ring + spilled batches) into the queues.
		buf = e.recv(id, buf[:0])
		for _, t := range buf {
			e.push(me, t)
		}

		// Batched dequeue: the job-level scheduler fills up to BatchK tasks
		// across the active jobs (deficit round robin), then the tasks are
		// processed back to back. The batch amortizes the stop/recv/flush
		// checks and gives the loop a known next task whose CSR row it can
		// prefetch; the cost is bounded priority relaxation (a child of
		// batch[i] cannot preempt batch[i+1:], at most BatchK-1 tasks of it).
		n := e.fillBatch(me)
		if n == 0 {
			// Cancellation sweeps may have retired work with no batch to
			// process: settle those deltas before deciding the fleet is idle,
			// or the counts they hold back would stall quiescence.
			e.flushBatchAccts(me)
			if e.pending(id) > 0 {
				// Out of local work: ship every partial batch before idling
				// so no task waits on this worker's buffers.
				e.flush(me)
				me.sinceFlush = 0
				continue
			}
			if e.outstanding.Load() == 0 {
				// Quiescent fleet: park until Submit or Stop.
				if !e.park(me) {
					return
				}
				idle = 0
				continue
			}
			// Publish once on idle entry so a worker waiting out another
			// worker's tail never holds counters stale (the hot loop only
			// republishes at flush boundaries). Later idle iterations skip
			// the stores: an empty-queue spin cannot change any counter.
			if idle == 0 {
				me.publish()
			}
			// Adaptive backoff: re-poll hot for a moment (work often lands
			// within a few hundred ns), then yield the P so the workers
			// holding tasks can run, then park briefly so an idle worker
			// stops costing the scheduler anything.
			idle++
			switch {
			case idle <= e.cfg.IdleSpin:
			case idle <= 2*e.cfg.IdleSpin:
				stdruntime.Gosched()
			default:
				time.Sleep(e.cfg.IdleSleep)
			}
			continue
		}
		idle = 0

		me.batchLen = n
		for i := 0; i < n; i++ {
			me.batchPos = i
			if i+1 < n {
				e.prefetchRow(me, me.batch[i+1])
			}
			t := me.batch[i]
			q := me.jobQueue(e.jobStateFor(t.Job))
			if t.Node == bagMarker {
				owner, idx := int(t.Data>>32), uint32(t.Data)
				st := &e.workers[owner].store
				s := st.get(idx)
				if rec := e.obs; rec != nil {
					rec.Add(id, obs.CBagsOpened, 1)
					rec.Event(id, obs.EvBagOpened, int64(len(s.tasks)), 0, 0)
				}
				for _, bt := range s.tasks {
					e.processOne(id, me, q, bt)
				}
				// Charge the bag's contents to the job's fairness balance:
				// its pop charged one task, but len(s.tasks) were just
				// retired. The balance may go negative — debt the batch
				// fill's rotation collects before this job pops again.
				q.deficit -= int64(len(s.tasks)) - 1
				st.release(s)
				// Publish the bag's retirement before it leaves the
				// outstanding count, mirroring pubProcessed's ordering
				// (conservation ledger, global and per job).
				me.bagsRetired++
				me.pubBagsRetired.Store(me.bagsRetired)
				q.dBagsRetired++
				q.dOut--
				me.markDirty(q)
				me.acct-- // the bag itself; flushed at the batch boundary
			} else {
				e.processOne(id, me, q, t)
			}
		}
		me.batchLen = 0
		// Flush the batch's accumulated retirements in one shared atomic per
		// counter — the batched loop's other throughput lever besides the
		// prefetch: up to BatchK childless tasks retire for the price of one
		// outstanding.Add (and one pubProcessed store) instead of one each.
		e.flushBatchAccts(me)

		if me.sinceFlush >= e.cfg.FlushInterval && e.pending(id) > 0 {
			e.flush(me)
			me.sinceFlush = 0
			me.publish()
		}
	}
}

// drrQuantum is the deficit-round-robin deposit per unit of job weight, in
// tasks, made each time the batch fill visits a queue. It is the fairness
// granularity: shares converge to the weight ratios over windows much larger
// than weight*drrQuantum, and a large opened bag's debt is repaid in
// debt/(weight*drrQuantum) visits instead of one visit per task (which would
// make the rotation spin thousands of iterations after every big bag on a
// single-tenant engine).
const drrQuantum = 32

// fillBatch is the job-level scheduling layer's pop site: it fills the
// worker's batch by rotating over the active jobs under deficit round robin.
// Each visit deposits weight*drrQuantum into the job's balance; each retired
// task withdraws one — including the tasks inside an opened bag, which are
// charged when the bag opens and can drive the balance negative (debt the
// job repays over later visits). When every contending job is backlogged,
// the task shares therefore converge to the weight shares regardless of how
// each tenant's work is packaged (singles vs bags) or how expensive its
// tasks are; task priority still rules within each job's queue. A queue
// that goes empty forfeits its balance — an unbacklogged tenant banks
// nothing. Cancelled jobs met on the way are swept into the cancellation
// sink without consuming batch slots.
func (e *Engine) fillBatch(me *worker) int {
	if me.mqKind {
		me.syncJobs(e)
	}
	n := 0
	misses := 0
	for n < len(me.batch) {
		q := me.cur
		if q == nil || q.deficit <= 0 || !q.active {
			if len(me.act) == 0 {
				break
			}
			me.actPos++
			if me.actPos >= len(me.act) {
				me.actPos = 0
			}
			q = me.act[me.actPos]
			me.cur = q
			q.deficit += q.js.weight * drrQuantum
			if max := q.js.weight * drrQuantum; q.deficit > max {
				// No banking: a queue visited while already flush holds at
				// most one quantum, so a briefly-idle tenant cannot burst.
				q.deficit = max
			}
			if q.deficit <= 0 {
				// Still repaying bag debt: the visit's deposit is the
				// repayment installment. Move on to the next job.
				me.cur = nil
				continue
			}
		}
		if q.js.cancelled.Load() {
			e.drainCancelled(me, q)
			me.cur = nil
			if me.mqKind && (q.dOut != 0 || q.js.outstanding.Load() != 0) {
				// Another worker may still be pushing this job's tasks into
				// the shared structure: keep the queue active so later
				// rounds sweep the stragglers; once the job's ledger is
				// empty no new task can appear and it can leave the ring.
				misses++
				if misses > len(me.act) {
					break
				}
				continue
			}
			me.deactivate(q)
			continue
		}
		t, ok := q.pop()
		if !ok {
			me.cur = nil
			if q.deficit > 0 {
				// Forfeit unspent balance (no banking while unbacklogged)
				// but never forgive debt — a bag-heavy tenant whose queue
				// momentarily drains still repays before its next turn.
				q.deficit = 0
			}
			if me.mqKind {
				// A shared-structure job is never deactivated on an empty
				// pop — another worker's push may be in flight. The miss
				// counter bounds the scan so an idle fleet still parks.
				misses++
				if misses > len(me.act) {
					break
				}
				continue
			}
			me.deactivate(q)
			continue
		}
		misses = 0
		q.deficit--
		if e.obsMask >= 0 {
			e.sampleRank(me, q, t)
		}
		me.batch[n] = t
		n++
	}
	return n
}

// drainCancelled sweeps every queued task of a cancelled job into the
// cancellation sink. For the strict kinds this empties the worker's private
// queue for the job; for multiqueue it drains whatever the shared structure
// yields to this worker's handle (other workers sweep their share).
func (e *Engine) drainCancelled(me *worker, q *workerJQ) {
	swept := int64(0)
	for {
		t, ok := q.pop()
		if !ok {
			break
		}
		e.discard(me, q, t)
		swept++
	}
	if swept > 0 {
		if rec := e.obs; rec != nil {
			rec.Event(me.id, obs.EvCancel, swept, int64(q.js.id), 0)
		}
	}
}

// flushBatchAccts settles the batch's deferred retirement deltas: per-job
// ledger terms first (retirements before the job's outstanding drop), then
// the worker's published totals, then the global outstanding adjustment —
// so any reader that observes a count transition already sees every ledger
// term explaining it, per job and globally.
func (e *Engine) flushBatchAccts(me *worker) {
	if len(me.dirtyJQ) > 0 {
		me.pubProcessed.Store(me.processed)
		me.pubBagsRetired.Store(me.bagsRetired)
		me.pubCancelled.Store(me.cancelled)
		for _, q := range me.dirtyJQ {
			js := q.js
			if q.dProcessed != 0 {
				js.processed.Add(q.dProcessed)
				q.dProcessed = 0
			}
			if q.dBagsRetired != 0 {
				js.bagsRetired.Add(q.dBagsRetired)
				q.dBagsRetired = 0
			}
			if q.dCancelled != 0 {
				js.cancelledTasks.Add(q.dCancelled)
				q.dCancelled = 0
			}
			if q.dOut != 0 {
				js.outstanding.Add(q.dOut)
				q.dOut = 0
			}
			q.dirty = false
		}
		me.dirtyJQ = me.dirtyJQ[:0]
	}
	if me.acct != 0 {
		me.pubProcessed.Store(me.processed)
		e.account(me.acct)
		me.acct = 0
	}
}

// sampleRank measures how far a freshly popped task strayed from the best
// work this worker could observe, at the recorder's task-sample stride.
// Only called with obs enabled (obsMask >= 0) — a disabled engine pays one
// predictable branch at the pop site and nothing else.
//
// For the relaxed multiqueue the measure is the shared structure's
// RankEstimate: the number of shards whose lock-free cached top is strictly
// better than the popped priority — a lower bound on the true global rank
// error, zero exactly when no inversion was observable. For the strict
// kinds the local queue IS the worker's priority order, so the sample
// degrades to a Peek-after-pop canary: the queue's next task comparing
// better than the one just popped can only mean a structural bug, which is
// why the bench gate demands 0 inversions from heap/dheap/twolevel.
func (e *Engine) sampleRank(me *worker, q *workerJQ, t task.Task) {
	me.popCount++
	if me.popCount&e.obsMask != 0 {
		return
	}
	var rank int64
	if q.mq != nil {
		r, _ := q.mq.Queue().RankEstimate(t.Prio)
		rank = int64(r)
	} else if next, ok := q.peek(); ok && next.Prio < t.Prio {
		// Strictly-less on Prio, not task.Less: equal-priority tasks may
		// legally pop in any order (the bucket store is FIFO per bucket).
		rank = 1
	}
	me.rankSamples++
	js := q.js
	js.rankSamples.Add(1)
	if rank > 0 {
		me.inversions++
		me.rankErrSum += rank
		if rank > me.rankErrMax {
			me.rankErrMax = rank
		}
		js.inversions.Add(1)
		js.rankErrSum.Add(rank)
		for {
			cur := js.rankErrMax.Load()
			if rank <= cur || js.rankErrMax.CompareAndSwap(cur, rank) {
				break
			}
		}
	}
	me.pubRankSamples.Store(me.rankSamples)
	me.pubInversions.Store(me.inversions)
	me.pubRankErrSum.Store(me.rankErrSum)
	me.pubRankErrMax.Store(me.rankErrMax)
	e.obs.Event(me.id, obs.EvRankSample, rank, t.Prio, int64(js.id))
}

// prefetchRow touches the next batched task's CSR row bounds (in its job's
// graph) so the offset line is resident by the time processing reaches that
// task. The summed loads land in prefetchSink to keep them alive past the
// optimizer.
func (e *Engine) prefetchRow(me *worker, t task.Task) {
	if t.Node == bagMarker {
		return
	}
	off := e.jobStateFor(t.Job).off
	if i := int(t.Node); i+1 < len(off) {
		me.prefetchSink = off[i] + off[i+1]
	}
}

// runTask executes one task handler under the panic-isolation recover: a
// panicking handler yields its recover() value instead of killing the
// worker. The open-coded defer keeps the no-panic cost to a few
// nanoseconds, which is the whole fault layer's hot-path footprint.
func (e *Engine) runTask(me *worker, js *jobState, t task.Task) (edges int, pv any) {
	defer func() {
		if r := recover(); r != nil {
			pv = r
		}
	}()
	return js.w.Process(t, me.emit), nil
}

// handleFault routes one caught handler panic: retry under the job's retry
// policy (JobConfig.Retry, falling back to Config.Retry; the task stays
// outstanding and goes back into this worker's queue) or quarantine (the
// task retires into the poison list, keeping both conservation ledgers
// balanced so Drain still terminates). Children emitted before the panic
// are discarded — a task's effects land exactly once, on the attempt that
// completes.
func (e *Engine) handleFault(id int, me *worker, js *jobState, t task.Task, pv any) {
	me.children = me.children[:0]
	policy := js.retryPolicy(e.cfg.Retry)
	attempt, retry := e.faults.recordPanic(t, id, pv, policy)
	if rec := e.obs; rec != nil {
		rec.Add(id, obs.CTaskPanics, 1)
		rec.Event(id, obs.EvPanic, t.Prio, int64(attempt), 0)
	}
	if retry {
		if rec := e.obs; rec != nil {
			rec.Add(id, obs.CTaskRetries, 1)
		}
		if b := policy.Backoff; b > 0 {
			// Served on the failing worker: panics are exceptional, so a
			// brief stall here beats a timer wheel on the happy path.
			time.Sleep(time.Duration(attempt) * b)
		}
		e.push(me, t) // still outstanding; retried by this worker
		return
	}
	if rec := e.obs; rec != nil {
		rec.Add(id, obs.CTasksQuarantined, 1)
		rec.Event(id, obs.EvQuarantine, t.Prio, int64(attempt), 0)
	}
	// The quarantine record is in the ledger (recordPanic) before the task
	// leaves the outstanding count, mirroring pubProcessed's ordering —
	// per job first, then globally.
	js.quarantined.Add(1)
	js.outstanding.Add(-1)
	me.pubProcessed.Store(me.processed)
	e.account(-1)
}

// processOne executes one task and distributes its children. q is the
// worker's queue for the task's job (its ledger delta accumulator).
func (e *Engine) processOne(id int, me *worker, q *workerJQ, t task.Task) {
	js := q.js
	me.children = me.children[:0]
	edges, pv := e.runTask(me, js, t)
	if pv != nil {
		e.handleFault(id, me, js, t, pv)
		return
	}
	if e.faults.retrying.Load() > 0 {
		// A prior attempt of this task may have panicked; forget its count
		// so the retry map only holds tasks still cycling. One atomic load
		// (of a line that is zero outside fault windows) on the hot path.
		e.faults.clearRetry(t)
	}
	me.edges += int64(edges)
	me.processed++
	q.dProcessed++
	q.dOut--
	me.markDirty(q)
	// With a recorder attached pubProcessed IS the recorder's counter slot,
	// so only the sampled trace path remains to record here.
	if m := e.obsMask; m >= 0 && me.processed&m == 0 {
		e.obs.TaskSample(id, t.Prio, me.processed, me.edges)
	}

	// Account all new work, retire this task, and settle any batch-deferred
	// retirements in one shared atomic; the increment lands before any child
	// becomes visible, so outstanding can never dip to zero while work
	// exists (the deferred deltas are all negative, and the children being
	// added here keep the post-add count strictly positive). The spawned
	// total is published first so the conservation ledger's add side is
	// never behind the outstanding count it explains — per job first, then
	// globally. A childless task just deepens the batch deficit — no atomic
	// at all.
	if len(me.children) > 0 {
		// Children inherit the parent's tenant: identity flows with the
		// work, so every spawned task is billed to the job that created it.
		for i := range me.children {
			me.children[i].Job = t.Job
		}
		bags, singles := me.part.Partition(me.children, e.cfg.Bags, me.newBagID)
		spawned := int64(len(bags)) + int64(countTasks(bags)) + int64(len(singles))
		me.spawned += spawned
		me.pubSpawned.Store(me.spawned)
		js.spawned.Add(spawned)
		js.outstanding.Add(spawned)
		// Publish the processed total BEFORE any task can leave
		// `outstanding`: a reader that sees a retirement also sees the
		// count (Snapshot's coherence contract). Retirement is only
		// observable at account() calls, so the batched loop pays this
		// store once per spawning task and once per batch, not per task.
		me.pubProcessed.Store(me.processed)
		e.account(spawned - 1 + me.acct)
		me.acct = 0
		for _, b := range bags {
			me.bags++
			s := me.store.get(uint32(b.ID))
			s.tasks = append(s.tasks[:0], b.Tasks...)
			if rec := e.obs; rec != nil {
				// The bags counter flows through the shared pubBags slot at
				// publish points; only the trace event is recorded here.
				rec.Event(id, obs.EvBagCreated, b.Prio, int64(len(b.Tasks)), 0)
			}
			e.dispatch(id, me, js, task.Task{Node: bagMarker, Job: t.Job, Prio: b.Prio, Data: b.ID})
		}
		for _, c := range singles {
			e.dispatch(id, me, js, c)
		}
	} else {
		me.acct--
	}

	// Drift reporting (Algorithm 3's send threshold).
	me.sinceFlush++
	me.sinceReport++
	if me.sinceReport >= e.sampleInterval {
		me.sinceReport = 0
		e.control.Report(id, js.id, t.Prio)
	}
}

func countTasks(bags []bag.Bag) int {
	n := 0
	for _, b := range bags {
		n += len(b.Tasks)
	}
	return n
}

// dispatch routes one unit (task or bag metadata) to a destination chosen
// by the job's effective TDF: the drift controller's global signal scaled by
// the job's TDFBias (percent, capped at always-scatter). Remote units go
// through the transport's batching; local units go straight to the worker's
// queue for the job.
func (e *Engine) dispatch(id int, me *worker, js *jobState, t task.Task) {
	dst := id
	if n := len(e.workers); n > 1 {
		tdf := e.control.TDF()
		if b := js.tdfBias; b != 100 {
			tdf = tdf * b / 100
			if tdf > 100 {
				tdf = 100
			}
		}
		if int64(me.rng.Uint32n(100)) < tdf {
			d := int(me.rng.Uint32n(uint32(n - 1)))
			if d >= id {
				d++
			}
			dst = d
		}
	}
	if dst == id {
		e.push(me, t)
		return
	}
	e.send(me, dst, t)
}

// WorkerStats is one worker's Snapshot row.
type WorkerStats struct {
	Processed      int64 // tasks executed (bag payloads included)
	Bags           int64 // bags created by this worker
	OverflowSpills int64 // full-ring spills that landed at this worker
	IdleParks      int64 // times the worker parked on a quiescent fleet
	Redirects      int64 // flow-control bounces this worker kept local
}

// Snapshot is a cheap point-in-time view of a running engine: per-worker
// counters plus the live control-plane state.
//
// Coherence contract: TasksProcessed is published before a task's
// retirement can be observed in Outstanding, and Snapshot reads Outstanding
// before the counters, so for any snapshot
//
//	TasksProcessed + Outstanding >= tasks submitted before the call
//
// and once Drain has returned (Outstanding == 0 with no concurrent Submit),
// TasksProcessed is exact — a mid-drain snapshot can no longer under-count
// retired work. The remaining counters (Bags, EdgesExamined, spills, parks)
// are published at flush/park/idle boundaries and may lag by at most one
// flush interval.
type Snapshot struct {
	Epoch       uint64 // Submit calls so far
	Outstanding int64  // tasks submitted or spawned but not yet retired
	TDF         int    // current task-distribution factor (percent)

	TasksProcessed int64
	BagsCreated    int64
	EdgesExamined  int64

	// The conservation ledger (fault.go). At quiescence (Drain returned,
	// no concurrent Submit):
	//
	//	Submitted + Spawned == TasksProcessed + BagsRetired + Quarantined + Cancelled
	//
	// and Outstanding == 0 — the no-task-loss invariant the chaos harness
	// asserts at every checkpoint, globally and per job (Jobs).
	Submitted   int64 // tasks injected via Submit
	Spawned     int64 // children + bag units created by task processing
	BagsRetired int64 // bag units fully unpacked and retired
	Quarantined int64 // poison tasks retired into Engine.Quarantined
	Cancelled   int64 // tasks discarded by job-scoped Cancel (ledger sink)
	Redirects   int64 // flow-control bounces kept local (degradation signal)

	// Two-level local-queue health (zero when QueueKind is not twolevel):
	// HotSpills counts hot-buffer demotions into the cold store, and
	// QueueFallbacks counts workers whose bucket store migrated to the heap
	// because the priority stream proved non-monotone.
	HotSpills      int64
	QueueFallbacks int64

	// Scheduling quality (obs-gated: all zero when Config.Obs is nil). The
	// engine samples the pop path at the recorder's task-sample stride and
	// asks how far the popped task strayed from the best observable work:
	// RankSamples counts sampled pops, PrioInversions the samples that were
	// not the observable minimum, RankErrorSum the summed rank estimates
	// (mean = sum / samples), RankErrorMax the worst single sample. Strict
	// kinds must report 0 inversions (structural canary); multiqueue
	// reports its bounded relaxation.
	RankSamples    int64
	PrioInversions int64
	RankErrorSum   int64
	RankErrorMax   int64

	Workers []WorkerStats
	// Jobs holds one ledger row per registered tenant, indexed by JobID
	// (job 0 is the engine's default workload). Each row carries the per-job
	// conservation equation documented on JobStats.
	Jobs []JobStats
}

// Snapshot reads the engine's counters without disturbing the workers.
// Safe from any goroutine at any lifecycle stage.
func (e *Engine) Snapshot() Snapshot {
	// Read order matters for the coherence contract: Outstanding first,
	// then the per-worker processed counters. A task retiring between the
	// two reads inflates TasksProcessed, never loses the task — each
	// worker stores its processed total before decrementing outstanding,
	// and sync/atomic's total order makes that store visible to any reader
	// that observed the decrement.
	jobs := *e.jobs.Load()
	s := Snapshot{
		Epoch:       e.epoch.Load(),
		Outstanding: e.outstanding.Load(),
		TDF:         int(e.control.TDF()),
		Submitted:   e.submitted.Load(),
		Quarantined: e.faults.nQuarantined.Load(),
		Workers:     make([]WorkerStats, len(e.workers)),
		Jobs:        make([]JobStats, len(jobs)),
	}
	for i, js := range jobs {
		s.Jobs[i] = js.stats()
	}
	for i := range e.workers {
		me := &e.workers[i]
		ws := WorkerStats{
			Processed:      me.pubProcessed.Load(),
			Bags:           me.pubBags.Load(),
			OverflowSpills: e.transport.Spills(i),
			IdleParks:      me.pubIdleParks.Load(),
			Redirects:      me.pubRedirects.Load(),
		}
		s.Workers[i] = ws
		s.TasksProcessed += ws.Processed
		s.BagsCreated += ws.Bags
		s.EdgesExamined += me.pubEdges.Load()
		s.Spawned += me.pubSpawned.Load()
		s.BagsRetired += me.pubBagsRetired.Load()
		s.Cancelled += me.pubCancelled.Load()
		s.Redirects += ws.Redirects
		s.HotSpills += me.pubHotSpills.Load()
		s.QueueFallbacks += me.pubFallbacks.Load()
		s.RankSamples += me.pubRankSamples.Load()
		s.PrioInversions += me.pubInversions.Load()
		s.RankErrorSum += me.pubRankErrSum.Load()
		if m := me.pubRankErrMax.Load(); m > s.RankErrorMax {
			s.RankErrorMax = m
		}
	}
	return s
}

// Result returns the engine's cumulative metrics. It is exact once Stop has
// returned nil (every worker has flushed its counters); on a running engine
// it is the same lagged view Snapshot provides.
func (e *Engine) Result() Result {
	var res Result
	select {
	case <-e.done:
		res.Elapsed = e.elapsed
	default:
		if e.state.Load() != stateNew {
			res.Elapsed = time.Since(e.startedAt)
		}
	}
	for i := range e.workers {
		me := &e.workers[i]
		res.TasksProcessed += me.pubProcessed.Load()
		res.BagsCreated += me.pubBags.Load()
		res.EdgesExamined += me.pubEdges.Load()
	}
	if hist := e.control.History(); len(hist) > 0 {
		res.DriftTrace = make([]float64, 0, len(hist))
		res.RefTrace = make([]int64, 0, len(hist))
		res.TDFTrace = make([]int, 0, len(hist))
		for _, rec := range hist {
			res.DriftTrace = append(res.DriftTrace, rec.Drift)
			res.RefTrace = append(res.RefTrace, rec.Ref)
			res.TDFTrace = append(res.TDFTrace, rec.TDF)
		}
	}
	return res
}

// Obs returns the engine's observability recorder (nil when Config.Obs was
// unset).
func (e *Engine) Obs() *obs.Recorder { return e.obs }

// Outstanding returns the engine-wide count of tasks submitted or spawned
// but not yet retired — one atomic load, cheap enough for admission checks
// on every request (the serving front-end's global load shed keys off it).
func (e *Engine) Outstanding() int64 { return e.outstanding.Load() }

// ControlTrace returns the control plane's time series so far: one point
// per controller interval with the measured drift, the reference priority,
// and the TDF chosen for the next interval. Safe to call while the fleet
// runs; this is the time-series replacement for reading Snapshot.TDF in a
// loop.
func (e *Engine) ControlTrace() []obs.ControlPoint { return e.control.Series() }

// WriteTrace streams the engine's full observability state as JSONL
// (schema obs.TraceSchema): recorder meta, per-worker counters, per-job
// ledger rows, the retained event trace, and the control plane's
// drift/ref/TDF time series. Requires Config.Obs; without a recorder only
// the control series is written.
func (e *Engine) WriteTrace(w io.Writer) error {
	if e.obs != nil {
		if err := e.obs.WriteJSONL(w); err != nil {
			return err
		}
		jobs := *e.jobs.Load()
		stats := make([]JobStats, 0, len(jobs))
		for _, js := range jobs {
			stats = append(stats, js.stats())
		}
		if err := obs.WriteJobsJSONL(w, JobRows(stats)); err != nil {
			return err
		}
	}
	return obs.WriteControlJSONL(w, e.control.Series())
}

// JobRows adapts per-job ledger stats into the obs trace's job-row schema
// (one {"type":"job"} JSONL line per tenant; see obs.WriteJobsJSONL).
func JobRows(stats []JobStats) []obs.JobRow {
	rows := make([]obs.JobRow, 0, len(stats))
	for _, st := range stats {
		rows = append(rows, obs.JobRow{
			Job:            uint32(st.Job),
			Name:           st.Name,
			Weight:         st.Weight,
			Cancelled:      st.Cancelled,
			Outstanding:    st.Outstanding,
			Submitted:      st.Submitted,
			Spawned:        st.Spawned,
			Processed:      st.Processed,
			BagsRetired:    st.BagsRetired,
			Quarantined:    st.Quarantined,
			CancelledTasks: st.CancelledTasks,
			QuotaRejected:  st.QuotaRejected,
			RankSamples:    st.RankSamples,
			PrioInversions: st.PrioInversions,
			RankErrorSum:   st.RankErrorSum,
			RankErrorMax:   st.RankErrorMax,
		})
	}
	return rows
}
