package runtime

// The transport layer realizes §III-A's decoupling of inter-worker task
// transfer from task processing. It owns everything a task touches between
// the moment a worker (or an external Submit) decides the task belongs to
// somebody else and the moment the destination drains it into its private
// queue: the per-worker MPSC receive ring, the lock-free overflow stack a
// full ring spills into, and the per-destination send buffers that turn
// many remote children into one claim-CAS per batch (rq.TryPushBatch).
//
// Flow control: the overflow stack is bounded (Config.OverflowCap). A
// destination whose ring AND overflow are saturated rejects further worker
// sends, and the rejected tasks flow back to the sender, which keeps them
// in its own local queue (spill-to-local) — graceful degradation instead of
// unbounded Treiber growth when one worker falls behind. External Inject
// bypasses the cap: a Submit must always land somewhere, and the submitting
// goroutine has no local queue to fall back to.
//
// The engine talks to the layer only through the Transport interface, so a
// test (or an alternative fabric: NUMA-aware rings, a cross-process shim, a
// chaos-injection wrapper) can replace the whole mechanism without touching
// the worker loop.

import (
	"sync/atomic"

	"hdcps/internal/obs"
	"hdcps/internal/rq"
	"hdcps/internal/task"
)

// Transport is the engine's view of inter-worker task transfer. Worker
// identity is an index in [0, workers); Send/Pending/Flush/Recv carry the
// calling worker's own id and are single-caller per id, while Inject may be
// called by any number of goroutines concurrently (the Engine.Submit path).
type Transport interface {
	// Send queues t for delivery from worker src to worker dst (dst != src).
	// Delivery may be deferred until a batch fills or Flush runs. Tasks
	// rejected by destination flow control (bounded overflow) are returned
	// for the caller to keep local; nil means everything was accepted.
	Send(src, dst int, t task.Task) []task.Task
	// Pending reports how many tasks src has buffered but not yet shipped.
	Pending(src int) int
	// Flush ships every partial batch src has buffered, returning any tasks
	// rejected by destination flow control (as in Send).
	Flush(src int) []task.Task
	// Recv appends every task currently deliverable to worker id onto dst
	// and returns the extended slice. Owner-only, like a ring drain.
	Recv(id int, dst []task.Task) []task.Task
	// Inject delivers ts to worker id from outside the fleet, bypassing the
	// sender-side batching and the overflow cap (external work must always
	// land). Safe for concurrent use from any goroutine.
	Inject(id int, ts []task.Task)
	// Spills reports how many overflow spills have landed at worker id's
	// endpoint so far (full-ring flow-control events, for Snapshot).
	Spills(id int) int64
}

// ringTransport is the production Transport: one endpoint per worker, each
// a Vyukov-style MPSC ring plus a bounded Treiber overflow stack, with
// sender-side per-destination batching.
type ringTransport struct {
	batch       int
	overflowCap int64         // max tasks parked in one endpoint's overflow; <=0 unbounded
	rec         *obs.Recorder // nil when observability is disabled
	eps         []endpoint
}

// endpoint is one worker's transport state. The receive side (ring,
// overflow, spills) is written by remote senders and drained only by the
// owner; the send side (out, pending) is owned exclusively by the worker.
type endpoint struct {
	ring        *rq.Ring
	overflow    overflowStack
	overflowLen atomic.Int64 // tasks currently parked in overflow
	spills      atomic.Int64

	// out accumulates remote tasks per destination; a buffer ships via
	// TryPushBatch when it reaches the batch size or on Flush.
	out     [][]task.Task
	pending int

	_pad [4]int64 // reduce false sharing between adjacent endpoints
}

// newRingTransport builds the fabric for `workers` endpoints with rings of
// ringSize slots, per-destination batches of `batch` tasks, and at most
// overflowCap tasks parked in any endpoint's overflow (<=0: unbounded). A
// non-nil rec records overflow-spill events at the destination endpoint.
func newRingTransport(workers, ringSize, batch, overflowCap int, rec *obs.Recorder) *ringTransport {
	tr := &ringTransport{
		batch:       batch,
		overflowCap: int64(overflowCap),
		rec:         rec,
		eps:         make([]endpoint, workers),
	}
	// All per-peer batch buffers come out of one slab: they are fixed-cap
	// (flushTo empties them in place, Send never grows them past batch), so
	// carving full-capacity sub-slices costs one allocation instead of
	// workers*(workers-1).
	slab := make([]task.Task, workers*(workers-1)*batch)
	for i := range tr.eps {
		ep := &tr.eps[i]
		ep.ring = rq.NewRing(ringSize)
		ep.out = make([][]task.Task, workers)
		for j := range ep.out {
			if j != i {
				ep.out[j], slab = slab[:0:batch], slab[batch:]
			}
		}
	}
	return tr
}

// NewDefaultTransport builds the stock ring transport for a fully defaulted
// Config — the fabric an engine constructs when Config.NewTransport is nil.
// Wrappers (fault injection, instrumentation) use it as their inner layer.
func NewDefaultTransport(cfg Config) Transport {
	cfg = cfg.withDefaults()
	return newRingTransport(cfg.Workers, cfg.RingSize, cfg.BatchSize, cfg.OverflowCap, cfg.Obs)
}

func (tr *ringTransport) Send(src, dst int, t task.Task) []task.Task {
	ep := &tr.eps[src]
	ep.out[dst] = append(ep.out[dst], t)
	ep.pending++
	if len(ep.out[dst]) >= tr.batch {
		return tr.flushTo(src, dst)
	}
	return nil
}

func (tr *ringTransport) Pending(src int) int { return tr.eps[src].pending }

func (tr *ringTransport) Flush(src int) []task.Task {
	var rejected []task.Task
	for dst := range tr.eps[src].out {
		if rej := tr.flushTo(src, dst); len(rej) > 0 {
			rejected = append(rejected, rej...)
		}
	}
	return rejected
}

// flushTo ships one destination's buffered batch: as much as fits through
// the ring in claim-CAS batches, the remainder spilled to the destination's
// bounded overflow stack. Tasks the destination rejects (overflow at cap)
// are copied out and returned for the sender to keep local.
func (tr *ringTransport) flushTo(src, dst int) []task.Task {
	ep := &tr.eps[src]
	buf := ep.out[dst]
	if len(buf) == 0 {
		return nil
	}
	rejected := tr.deliver(dst, buf, true)
	ep.pending -= len(buf)
	ep.out[dst] = buf[:0]
	return rejected
}

// deliver pushes ts into dst's ring, spilling whatever does not fit onto
// dst's overflow stack. With bounded set and the overflow at capacity, the
// spill is refused and the remainder returned instead (copied — the
// caller's buffer is reused); an unbounded deliver (Inject) always accepts.
func (tr *ringTransport) deliver(dst int, ts []task.Task, bounded bool) []task.Task {
	w := &tr.eps[dst]
	pushed := 0
	for pushed < len(ts) {
		n := w.ring.TryPushBatch(ts[pushed:])
		if n == 0 {
			break
		}
		pushed += n
	}
	rest := ts[pushed:]
	if len(rest) == 0 {
		return nil
	}
	if bounded && tr.overflowCap > 0 && w.overflowLen.Load() >= tr.overflowCap {
		// Destination saturated: bounce the remainder back to the sender.
		// The cap check races concurrent spills, so it is a soft bound —
		// overshoot is at most one in-flight batch per sender.
		return append([]task.Task(nil), rest...)
	}
	// Ring full: park the remainder at the destination. The node copies
	// the tasks because the caller's buffer is reused.
	w.overflow.push(&overflowNode{tasks: append([]task.Task(nil), rest...)})
	w.overflowLen.Add(int64(len(rest)))
	w.spills.Add(1)
	if rec := tr.rec; rec != nil {
		rec.Add(dst, obs.COverflowSpills, 1)
		rec.Event(dst, obs.EvSpill, int64(len(rest)), 0, 0)
	}
	return nil
}

func (tr *ringTransport) Recv(id int, dst []task.Task) []task.Task {
	ep := &tr.eps[id]
	dst = ep.ring.Drain(dst, 0)
	// A plain load gates the detach: the swap is an RMW on a line remote
	// senders write, and this runs on every worker-loop iteration.
	if ep.overflow.head.Load() != nil {
		var drained int64
		for node := ep.overflow.takeAll(); node != nil; node = node.next {
			dst = append(dst, node.tasks...)
			drained += int64(len(node.tasks))
		}
		if drained > 0 {
			ep.overflowLen.Add(-drained)
		}
	}
	return dst
}

func (tr *ringTransport) Inject(id int, ts []task.Task) { tr.deliver(id, ts, false) }

func (tr *ringTransport) Spills(id int) int64 { return tr.eps[id].spills.Load() }

// overflowStack is the receive-side flow-control fallback: when a
// destination's ring is full, the rejected batch is parked on this
// lock-free MPSC Treiber stack (any sender pushes; only the owner drains,
// by swapping the whole list out), so a full ring never serializes its
// senders behind a lock.
type overflowStack struct {
	head atomic.Pointer[overflowNode]
}

type overflowNode struct {
	tasks []task.Task
	next  *overflowNode
}

func (s *overflowStack) push(n *overflowNode) {
	for {
		old := s.head.Load()
		n.next = old
		if s.head.CompareAndSwap(old, n) {
			return
		}
	}
}

// takeAll detaches the whole stack in one swap; popping everything at once
// sidesteps the ABA hazard of per-node pops.
func (s *overflowStack) takeAll() *overflowNode { return s.head.Swap(nil) }
