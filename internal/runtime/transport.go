package runtime

// The transport layer realizes §III-A's decoupling of inter-worker task
// transfer from task processing. It owns everything a task touches between
// the moment a worker (or an external Submit) decides the task belongs to
// somebody else and the moment the destination drains it into its private
// queue: the per-worker MPSC receive ring, the lock-free overflow stack a
// full ring spills into, and the per-destination send buffers that turn
// many remote children into one claim-CAS per batch (rq.TryPushBatch).
//
// The engine talks to the layer only through the Transport interface, so a
// test (or an alternative fabric: NUMA-aware rings, a cross-process shim)
// can replace the whole mechanism without touching the worker loop.

import (
	"sync/atomic"

	"hdcps/internal/obs"
	"hdcps/internal/rq"
	"hdcps/internal/task"
)

// Transport is the engine's view of inter-worker task transfer. Worker
// identity is an index in [0, workers); Send/Pending/Flush/Recv carry the
// calling worker's own id and are single-caller per id, while Inject may be
// called by any number of goroutines concurrently (the Engine.Submit path).
type Transport interface {
	// Send queues t for delivery from worker src to worker dst (dst != src).
	// Delivery may be deferred until a batch fills or Flush runs.
	Send(src, dst int, t task.Task)
	// Pending reports how many tasks src has buffered but not yet shipped.
	Pending(src int) int
	// Flush ships every partial batch src has buffered.
	Flush(src int)
	// Recv appends every task currently deliverable to worker id onto dst
	// and returns the extended slice. Owner-only, like a ring drain.
	Recv(id int, dst []task.Task) []task.Task
	// Inject delivers ts to worker id from outside the fleet, bypassing the
	// sender-side batching. Safe for concurrent use from any goroutine.
	Inject(id int, ts []task.Task)
	// Spills reports how many overflow spills have landed at worker id's
	// endpoint so far (full-ring flow-control events, for Snapshot).
	Spills(id int) int64
}

// ringTransport is the production Transport: one endpoint per worker, each
// a Vyukov-style MPSC ring plus a Treiber overflow stack, with sender-side
// per-destination batching.
type ringTransport struct {
	batch int
	rec   *obs.Recorder // nil when observability is disabled
	eps   []endpoint
}

// endpoint is one worker's transport state. The receive side (ring,
// overflow, spills) is written by remote senders and drained only by the
// owner; the send side (out, pending) is owned exclusively by the worker.
type endpoint struct {
	ring     *rq.Ring
	overflow overflowStack
	spills   atomic.Int64

	// out accumulates remote tasks per destination; a buffer ships via
	// TryPushBatch when it reaches the batch size or on Flush.
	out     [][]task.Task
	pending int

	_pad [4]int64 // reduce false sharing between adjacent endpoints
}

// newRingTransport builds the fabric for `workers` endpoints with rings of
// ringSize slots and per-destination batches of `batch` tasks. A non-nil
// rec records overflow-spill events at the destination endpoint.
func newRingTransport(workers, ringSize, batch int, rec *obs.Recorder) *ringTransport {
	tr := &ringTransport{batch: batch, rec: rec, eps: make([]endpoint, workers)}
	for i := range tr.eps {
		ep := &tr.eps[i]
		ep.ring = rq.NewRing(ringSize)
		ep.out = make([][]task.Task, workers)
		for j := range ep.out {
			if j != i {
				ep.out[j] = make([]task.Task, 0, batch)
			}
		}
	}
	return tr
}

func (tr *ringTransport) Send(src, dst int, t task.Task) {
	ep := &tr.eps[src]
	ep.out[dst] = append(ep.out[dst], t)
	ep.pending++
	if len(ep.out[dst]) >= tr.batch {
		tr.flushTo(src, dst)
	}
}

func (tr *ringTransport) Pending(src int) int { return tr.eps[src].pending }

func (tr *ringTransport) Flush(src int) {
	for dst := range tr.eps[src].out {
		tr.flushTo(src, dst)
	}
}

// flushTo ships one destination's buffered batch: as much as fits through
// the ring in claim-CAS batches, the remainder spilled to the destination's
// lock-free overflow stack.
func (tr *ringTransport) flushTo(src, dst int) {
	ep := &tr.eps[src]
	buf := ep.out[dst]
	if len(buf) == 0 {
		return
	}
	tr.deliver(dst, buf)
	ep.pending -= len(buf)
	ep.out[dst] = buf[:0]
}

// deliver pushes ts into dst's ring, spilling whatever does not fit onto
// dst's overflow stack. ts is copied (into ring slots or the overflow
// node), so the caller may reuse it immediately.
func (tr *ringTransport) deliver(dst int, ts []task.Task) {
	w := &tr.eps[dst]
	pushed := 0
	for pushed < len(ts) {
		n := w.ring.TryPushBatch(ts[pushed:])
		if n == 0 {
			break
		}
		pushed += n
	}
	if rest := ts[pushed:]; len(rest) > 0 {
		// Ring full: park the remainder at the destination. The node copies
		// the tasks because the caller's buffer is reused.
		w.overflow.push(&overflowNode{tasks: append([]task.Task(nil), rest...)})
		w.spills.Add(1)
		if rec := tr.rec; rec != nil {
			rec.Add(dst, obs.COverflowSpills, 1)
			rec.Event(dst, obs.EvSpill, int64(len(rest)), 0, 0)
		}
	}
}

func (tr *ringTransport) Recv(id int, dst []task.Task) []task.Task {
	ep := &tr.eps[id]
	dst = ep.ring.Drain(dst, 0)
	// A plain load gates the detach: the swap is an RMW on a line remote
	// senders write, and this runs on every worker-loop iteration.
	if ep.overflow.head.Load() != nil {
		for node := ep.overflow.takeAll(); node != nil; node = node.next {
			dst = append(dst, node.tasks...)
		}
	}
	return dst
}

func (tr *ringTransport) Inject(id int, ts []task.Task) { tr.deliver(id, ts) }

func (tr *ringTransport) Spills(id int) int64 { return tr.eps[id].spills.Load() }

// overflowStack is the receive-side flow-control fallback: when a
// destination's ring is full, the rejected batch is parked on this
// lock-free MPSC Treiber stack (any sender pushes; only the owner drains,
// by swapping the whole list out), so a full ring never serializes its
// senders behind a lock.
type overflowStack struct {
	head atomic.Pointer[overflowNode]
}

type overflowNode struct {
	tasks []task.Task
	next  *overflowNode
}

func (s *overflowStack) push(n *overflowNode) {
	for {
		old := s.head.Load()
		n.next = old
		if s.head.CompareAndSwap(old, n) {
			return
		}
	}
}

// takeAll detaches the whole stack in one swap; popping everything at once
// sidesteps the ABA hazard of per-node pops.
func (s *overflowStack) takeAll() *overflowNode { return s.head.Swap(nil) }
