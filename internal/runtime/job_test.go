package runtime

// Tests for the job layer (PR 7): weighted fair scheduling, admission
// quotas, job-scoped cancel/drain, per-job conservation ledgers, and the
// job-aware stall diagnostics. The fairness test is the load-bearing one —
// it pins the deficit-round-robin contract (task shares track weight shares
// for backlogged tenants) with synthetic tenants whose backlog is constant
// by construction, so any disproportion is the scheduler's fault, not the
// workload's supply.

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hdcps/internal/graph"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// steadyWorkload keeps a constant backlog: every processed task emits one
// child at the same priority until the job is told to stop. The live task
// population therefore never moves from its seeded size, which makes every
// tenant permanently backlogged — the regime where deficit round robin owes
// exact weight proportionality.
type steadyWorkload struct {
	stop atomic.Bool
}

func (w *steadyWorkload) Name() string              { return "steady" }
func (w *steadyWorkload) Graph() *graph.CSR         { return nil }
func (w *steadyWorkload) Reset()                    {}
func (w *steadyWorkload) InitialTasks() []task.Task { return nil }
func (w *steadyWorkload) Clone() workload.Workload  { return w }
func (w *steadyWorkload) Verify() error             { return nil }

func (w *steadyWorkload) Process(t task.Task, emit func(task.Task)) int {
	if !w.stop.Load() {
		emit(task.Task{Node: t.Node, Prio: t.Prio})
	}
	return 1
}

func seedTasks(n int) []task.Task {
	ts := make([]task.Task, n)
	for i := range ts {
		ts[i] = task.Task{Node: graph.NodeID(i), Prio: int64(i % 64)}
	}
	return ts
}

// TestJobWeightedFairness pins the deficit-round-robin contract: three
// tenants pre-seeded with deep open-loop backlogs and weights 4:2:1 must
// observe processed task shares within 10% of 4/7, 2/7, 1/7 over the
// measurement window. The backlog must be open-loop (independent tasks
// seeded up front): a closed loop whose tasks respawn themselves has a
// constant population, so throughput is arrival-limited and the
// work-conserving scheduler legitimately equalizes it regardless of
// weight — weights govern backlogged tenants only.
func TestJobWeightedFairness(t *testing.T) {
	weights := []int{4, 2, 1}
	leaf := func(tk task.Task, emit func(task.Task)) int { return 1 }
	const backlog = 300_000
	cfg := Config{Workers: 4, Seed: 7, DefaultJob: JobConfig{Weight: weights[0]}}
	e := NewEngine(&fnWorkload{fn: leaf}, cfg)
	jobs := []*Job{e.DefaultJob()}
	for i := 1; i < len(weights); i++ {
		j, err := e.NewJob(&fnWorkload{fn: leaf}, JobConfig{Weight: weights[i]})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if err := j.Submit(seedTasks(backlog)...); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	// Skip the ramp, then measure the contention window as a snapshot delta.
	// The window ends well before job 0 (the fastest) drains its backlog, so
	// every tenant is backlogged throughout.
	waitProcessed := func(job int, min int64) Snapshot {
		deadline := time.Now().Add(60 * time.Second)
		for {
			s := e.Snapshot()
			if s.Jobs[job].Processed >= min {
				return s
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d never reached %d processed (at %d)", job, min, s.Jobs[job].Processed)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	first := waitProcessed(0, 20_000)
	last := waitProcessed(0, 220_000)

	var total int64
	deltas := make([]int64, len(jobs))
	for i := range jobs {
		deltas[i] = last.Jobs[i].Processed - first.Jobs[i].Processed
		total += deltas[i]
	}
	var wsum int
	for _, w := range weights {
		wsum += w
	}
	for i, w := range weights {
		got := float64(deltas[i]) / float64(total)
		want := float64(w) / float64(wsum)
		if diff := got - want; diff > 0.1*want || diff < -0.1*want {
			t.Errorf("job %d share %.4f, want %.4f ±10%% (deltas %v)", i, got, want, deltas)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s := e.Snapshot()
	checkLedger(t, s)
	checkJobLedgers(t, s)
	if err := e.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// checkJobLedgers asserts every per-job conservation row and that the rows
// partition the global ledger.
func checkJobLedgers(t *testing.T, s Snapshot) {
	t.Helper()
	var sub, sp, pr, br, qu, ca int64
	for _, j := range s.Jobs {
		if j.Outstanding != 0 {
			t.Fatalf("job %d outstanding %d at quiescence", j.Job, j.Outstanding)
		}
		in := j.Submitted + j.Spawned
		out := j.Processed + j.BagsRetired + j.Quarantined + j.CancelledTasks
		if in != out {
			t.Fatalf("job %d ledger violated: in %d != out %d (%+v)", j.Job, in, out, j)
		}
		sub += j.Submitted
		sp += j.Spawned
		pr += j.Processed
		br += j.BagsRetired
		qu += j.Quarantined
		ca += j.CancelledTasks
	}
	if sub != s.Submitted || sp != s.Spawned || pr != s.TasksProcessed ||
		br != s.BagsRetired || qu != s.Quarantined || ca != s.Cancelled {
		t.Fatalf("job rows don't partition the global ledger: sums [%d %d %d %d %d %d] vs global [%d %d %d %d %d %d]",
			sub, sp, pr, br, qu, ca,
			s.Submitted, s.Spawned, s.TasksProcessed, s.BagsRetired, s.Quarantined, s.Cancelled)
	}
}

// TestJobQuota pins admission control: a job with MaxOutstanding rejects the
// batch that would exceed it, whole, with a *QuotaError, and the rejection
// is visible in the job's stats without touching its ledger.
func TestJobQuota(t *testing.T) {
	w := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int { return 1 }}
	e := NewEngine(w, Config{Workers: 2})
	j, err := e.NewJob(w, JobConfig{Name: "quoted", MaxOutstanding: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Submit(seedTasks(10)...); err != nil {
		t.Fatalf("submit within quota: %v", err)
	}
	err = j.Submit(seedTasks(1)...)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("submit past quota: got %v, want *QuotaError", err)
	}
	if qe.Job != j.ID() || qe.Limit != 10 {
		t.Errorf("QuotaError = %+v, want job %d limit 10", qe, j.ID())
	}
	stats := j.Snapshot()
	if stats.QuotaRejected != 1 {
		t.Errorf("QuotaRejected = %d, want 1", stats.QuotaRejected)
	}
	if stats.Submitted != 10 {
		t.Errorf("Submitted = %d, want 10 (rejected batch must not touch the ledger)", stats.Submitted)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Quota is on outstanding, not cumulative: once drained, room returns.
	if err := j.Submit(seedTasks(10)...); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkJobLedgers(t, e.Snapshot())
	_ = e.Stop(context.Background())
}

// TestJobCancel pins job-scoped cancellation: a cancelled tenant's queued
// tasks are swept into its Cancelled sink, its ledger still balances, other
// tenants are untouched, and further submits fail with ErrJobCancelled.
func TestJobCancel(t *testing.T) {
	var slow atomic.Int64
	keeper := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int {
		slow.Add(1)
		time.Sleep(10 * time.Microsecond)
		return 1
	}}
	victim := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int {
		time.Sleep(10 * time.Microsecond)
		return 1
	}}
	e := NewEngine(keeper, Config{Workers: 2})
	vj, err := e.NewJob(victim, JobConfig{Name: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(seedTasks(2000)...); err != nil {
		t.Fatal(err)
	}
	if err := vj.Submit(seedTasks(2000)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	cancelCtx, cancelDone := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelDone()
	if err := vj.Cancel(cancelCtx); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if !vj.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	if err := vj.Submit(seedTasks(1)...); !errors.Is(err, ErrJobCancelled) {
		t.Fatalf("submit after cancel: got %v, want ErrJobCancelled", err)
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s := e.Snapshot()
	checkLedger(t, s)
	checkJobLedgers(t, s)
	vs := vj.Snapshot()
	if vs.CancelledTasks+vs.Processed != 2000 {
		t.Errorf("victim cancelled %d + processed %d != 2000", vs.CancelledTasks, vs.Processed)
	}
	ks := s.Jobs[0]
	if ks.Processed != 2000 || ks.CancelledTasks != 0 {
		t.Errorf("keeper processed %d cancelled %d, want 2000/0 (other tenants must be untouched)",
			ks.Processed, ks.CancelledTasks)
	}
	_ = e.Stop(context.Background())
}

// TestJobScopedDrain pins that Job.Drain waits for ONE tenant's quiescence
// while another tenant still has work in flight.
func TestJobScopedDrain(t *testing.T) {
	storm := &steadyWorkload{}
	quick := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int { return 1 }}
	e := NewEngine(storm, Config{Workers: 2})
	qj, err := e.NewJob(quick, JobConfig{Name: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(seedTasks(256)...); err != nil {
		t.Fatal(err)
	}
	if err := qj.Submit(seedTasks(512)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := qj.Drain(ctx); err != nil {
		t.Fatalf("job-scoped drain: %v", err)
	}
	qs := qj.Snapshot()
	if qs.Outstanding != 0 || qs.Processed != 512 {
		t.Errorf("quick job after Drain: outstanding %d processed %d, want 0/512", qs.Outstanding, qs.Processed)
	}
	if s := e.Snapshot(); s.Jobs[0].Outstanding == 0 {
		t.Error("storm tenant quiesced during the other job's Drain — job scoping is leaking")
	}
	storm.stop.Store(true)
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkJobLedgers(t, e.Snapshot())
	_ = e.Stop(context.Background())
}

// TestJobStallErrorScoping pins the diagnostic split: a job-scoped drain
// timeout names the blocking job, the engine-wide one speaks for the fleet.
func TestJobStallErrorScoping(t *testing.T) {
	block := make(chan struct{})
	w := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int {
		<-block
		return 1
	}}
	e := NewEngine(w, Config{Workers: 1})
	j, err := e.NewJob(w, JobConfig{Name: "stuck"})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Submit(seedTasks(1)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = j.Drain(ctx)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("job drain on a stuck handler: got %v, want *StallError", err)
	}
	if !se.JobScoped || se.Job != j.ID() {
		t.Errorf("StallError = %+v, want JobScoped for job %d", se, j.ID())
	}
	if msg := se.Error(); !strings.Contains(msg, "stuck") {
		t.Errorf("job-scoped stall message %q does not name the blocking job", msg)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	err = e.Drain(ctx2)
	if !errors.As(err, &se) {
		t.Fatalf("engine drain: got %v, want *StallError", err)
	}
	if se.JobScoped {
		t.Errorf("engine-wide StallError marked JobScoped: %+v", se)
	}
	close(block)
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	_ = e.Stop(context.Background())
}
