// Package runtime is the native (goroutine-based) HD-CPS implementation:
// the same scheduler design the simulator models — per-worker receive rings
// (§III-A), a private priority queue per worker, adaptive bags (§III-B),
// and the drift-feedback TDF controller (§III-C) — running on real threads
// against real memory. It is the library a downstream Go user adopts, and
// it is the "real machine" side of the paper's simulator-correlation
// experiment (Fig. 10).
package runtime

import (
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"hdcps/internal/bag"
	"hdcps/internal/drift"
	"hdcps/internal/graph"
	"hdcps/internal/pq"
	"hdcps/internal/rq"
	"hdcps/internal/stats"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// Config configures a native run.
type Config struct {
	// Workers is the number of worker goroutines (default GOMAXPROCS-ish 4).
	Workers int
	// RingSize is the per-worker receive ring capacity (default 256).
	RingSize int
	// Bags selects the bag policy (default: the paper's selective policy).
	Bags bag.Policy
	// UseTDF enables the adaptive controller; FixedTDF applies otherwise.
	UseTDF   bool
	FixedTDF int
	// Drift configures the controller.
	Drift drift.Config
	// Seed makes destination selection reproducible per worker.
	Seed uint64
}

// DefaultConfig returns the paper-tuned native configuration.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:  workers,
		RingSize: 256,
		Bags:     bag.DefaultPolicy(),
		UseTDF:   true,
	}
}

// Result reports a native run's metrics.
type Result struct {
	Elapsed        time.Duration
	TasksProcessed int64
	BagsCreated    int64
	DriftTrace     []float64
	TDFTrace       []int
}

// Run executes w to completion with cfg and returns the run metrics. The
// workload is Reset first. It is safe to call concurrently with different
// workloads, but a single workload instance must not be shared across
// simultaneous runs.
func Run(w workload.Workload, cfg Config) Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.Bags.Mode != bag.Never && cfg.Bags.MaxSize == 0 {
		cfg.Bags = bag.DefaultPolicy()
	}
	w.Reset()

	e := &engine{
		cfg:     cfg,
		w:       w,
		workers: make([]worker, cfg.Workers),
		ctrl:    drift.NewController(cfg.Drift),
		reports: make([]int64, cfg.Workers),
	}
	if cfg.UseTDF {
		e.tdf.Store(int64(e.ctrl.TDF()))
	} else {
		tdf := int64(cfg.FixedTDF)
		if tdf <= 0 {
			tdf = 100
		}
		e.tdf.Store(tdf)
	}
	for i := range e.workers {
		e.workers[i] = worker{
			ring: rq.NewRing(cfg.RingSize),
			heap: pq.NewBinaryHeap(64),
			rng:  graph.NewRNG(cfg.Seed + uint64(i)*0x9e3779b9),
		}
	}

	initial := w.InitialTasks()
	e.outstanding.Store(int64(len(initial)))
	for i, t := range initial {
		e.workers[i%cfg.Workers].heap.Push(t)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e.run(id)
		}(i)
	}
	wg.Wait()

	res := Result{
		Elapsed:        time.Since(start),
		TasksProcessed: e.processed.Load(),
		BagsCreated:    e.bagsCreated.Load(),
	}
	for _, rec := range e.ctrl.History() {
		res.DriftTrace = append(res.DriftTrace, rec.Drift)
		res.TDFTrace = append(res.TDFTrace, rec.TDF)
	}
	return res
}

// RunAsStats adapts a native Result into the stats.Run vocabulary shared
// with the simulator (completion time in nanoseconds).
func RunAsStats(w workload.Workload, cfg Config) stats.Run {
	res := Run(w, cfg)
	return stats.Run{
		Scheduler:      "native-hdcps",
		Workload:       w.Name(),
		Input:          w.Graph().Name,
		Cores:          cfg.Workers,
		CompletionTime: res.Elapsed.Nanoseconds(),
		TasksProcessed: res.TasksProcessed,
		BagsCreated:    res.BagsCreated,
		DriftTrace:     res.DriftTrace,
		TDFTrace:       res.TDFTrace,
	}
}

type worker struct {
	ring *rq.Ring
	heap *pq.BinaryHeap
	rng  *graph.RNG

	// overflow catches pushes that found the ring full (the sender-side
	// flow-control fallback). overflowN mirrors len(overflow) so the owner
	// can skip the lock when the list is empty.
	mu        sync.Mutex
	overflow  []task.Task
	overflowN atomic.Int64

	sinceReport int64
	_pad        [4]int64 // reduce false sharing between workers
}

type engine struct {
	cfg     Config
	w       workload.Workload
	workers []worker

	outstanding atomic.Int64 // tasks emitted but not yet fully processed
	processed   atomic.Int64
	bagsCreated atomic.Int64
	bagSeq      atomic.Uint64
	tdf         atomic.Int64

	// Bag payload store: metadata travels through rings, payload stays
	// here until the consumer unpacks it (pull transport, the paper's
	// preferred scheme).
	bags sync.Map // uint64 -> []task.Task

	// Drift reporting (Alg. 2/3): workers write their latest priority,
	// the master consumes a full set.
	reports     []int64
	reportCount atomic.Int64
	ctrlMu      sync.Mutex
	ctrl        *drift.Controller
}

// bagMarker tags a ring task as bag metadata (node IDs never reach 2^32-1).
const bagMarker = ^graph.NodeID(0)

func (e *engine) run(id int) {
	me := &e.workers[id]
	buf := make([]task.Task, 0, 64)
	children := make([]task.Task, 0, 16)
	for {
		// Drain the receive ring (and any overflow) into the private heap.
		buf = me.ring.Drain(buf[:0], 0)
		if me.overflowN.Load() > 0 {
			me.mu.Lock()
			buf = append(buf, me.overflow...)
			me.overflowN.Add(-int64(len(me.overflow)))
			me.overflow = me.overflow[:0]
			me.mu.Unlock()
		}
		for _, t := range buf {
			me.heap.Push(t)
		}

		t, ok := me.heap.Pop()
		if !ok {
			if e.outstanding.Load() == 0 {
				return // global termination: no tasks anywhere
			}
			// Work exists elsewhere and may land in our ring; yield so the
			// workers holding it can run (matters on small GOMAXPROCS).
			stdruntime.Gosched()
			continue
		}

		if t.Node == bagMarker {
			if payload, found := e.bags.LoadAndDelete(t.Data); found {
				for _, bt := range payload.([]task.Task) {
					children = e.processOne(id, me, bt, children)
				}
			}
			e.outstanding.Add(-1) // the bag itself
		} else {
			children = e.processOne(id, me, t, children)
		}
	}
}

// processOne executes one task and distributes its children; it returns the
// (reused) children scratch buffer.
func (e *engine) processOne(id int, me *worker, t task.Task, children []task.Task) []task.Task {
	children = children[:0]
	edges := e.w.Process(t, func(c task.Task) { children = append(children, c) })
	_ = edges
	e.processed.Add(1)

	if len(children) > 0 {
		bags, singles := bag.Partition(children, e.cfg.Bags, func() uint64 {
			return e.bagSeq.Add(1)
		})
		// Account all new work before making any of it visible.
		e.outstanding.Add(int64(len(bags)) + int64(countTasks(bags)) + int64(len(singles)))
		for _, b := range bags {
			e.bagsCreated.Add(1)
			payload := append([]task.Task(nil), b.Tasks...)
			e.bags.Store(b.ID, payload)
			e.dispatch(id, me, task.Task{Node: bagMarker, Prio: b.Prio, Data: b.ID})
		}
		for _, s := range singles {
			e.dispatch(id, me, s)
		}
	}
	if t.Node != bagMarker {
		e.outstanding.Add(-1)
	}

	// Drift reporting.
	me.sinceReport++
	if me.sinceReport >= int64(e.ctrl.Config().SampleInterval) {
		me.sinceReport = 0
		e.report(id, t.Prio)
	}
	return children
}

func countTasks(bags []bag.Bag) int {
	n := 0
	for _, b := range bags {
		n += len(b.Tasks)
	}
	return n
}

// dispatch sends one unit (task or bag metadata) to a destination chosen by
// the current TDF.
func (e *engine) dispatch(id int, me *worker, t task.Task) {
	dst := id
	if n := len(e.workers); n > 1 && int64(me.rng.Uint32n(100)) < e.tdf.Load() {
		d := int(me.rng.Uint32n(uint32(n - 1)))
		if d >= id {
			d++
		}
		dst = d
	}
	if dst == id {
		me.heap.Push(t)
		return
	}
	w := &e.workers[dst]
	if !w.ring.TryPush(t) {
		// Flow control fallback: the destination's ring is full; park the
		// task in its overflow list.
		w.mu.Lock()
		w.overflow = append(w.overflow, t)
		w.overflowN.Add(1)
		w.mu.Unlock()
	}
}

// report implements Algorithm 3's send + the master-side Algorithm 2 step.
func (e *engine) report(id int, prio int64) {
	atomic.StoreInt64(&e.reports[id], prio)
	if e.reportCount.Add(1) < int64(len(e.workers)) {
		return
	}
	e.reportCount.Store(0)
	if !e.cfg.UseTDF {
		return
	}
	snapshot := make([]int64, len(e.reports))
	for i := range e.reports {
		snapshot[i] = atomic.LoadInt64(&e.reports[i])
	}
	e.ctrlMu.Lock()
	tdf := e.ctrl.Update(snapshot)
	e.ctrlMu.Unlock()
	e.tdf.Store(int64(tdf))
}
