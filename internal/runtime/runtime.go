// Package runtime is the native (goroutine-based) HD-CPS implementation:
// the same scheduler design the simulator models — per-worker receive rings
// (§III-A), a private priority queue per worker, adaptive bags (§III-B),
// and the drift-feedback TDF controller (§III-C) — running on real threads
// against real memory. It is the library a downstream Go user adopts, and
// it is the "real machine" side of the paper's simulator-correlation
// experiment (Fig. 10).
//
// The hot paths follow the levers that "Engineering MultiQueues" and
// Wimmer et al. identify for this scheduler shape: remote children are
// accumulated per destination and flushed with one CAS per batch
// (rq.TryPushBatch); a full ring spills to a lock-free Treiber stack
// instead of a mutex; bag payloads live in a per-worker store addressed by
// the metadata (no global hash map bouncing between cores); the private
// queue is a 4-ary heap by default; and idle workers back off
// spin → Gosched → sleep instead of burning the scheduler.
package runtime

import (
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"hdcps/internal/bag"
	"hdcps/internal/drift"
	"hdcps/internal/graph"
	"hdcps/internal/pq"
	"hdcps/internal/rq"
	"hdcps/internal/stats"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// Config configures a native run.
type Config struct {
	// Workers is the number of worker goroutines (default GOMAXPROCS-ish 4).
	Workers int
	// RingSize is the per-worker receive ring capacity (default 256).
	RingSize int
	// Bags selects the bag policy (default: the paper's selective policy).
	Bags bag.Policy
	// UseTDF enables the adaptive controller; FixedTDF applies otherwise.
	UseTDF   bool
	FixedTDF int
	// Drift configures the controller.
	Drift drift.Config
	// Seed makes destination selection reproducible per worker.
	Seed uint64

	// HeapArity selects the private priority queue: 2 is the classic binary
	// heap (what the simulator's cost model charges for), anything else is a
	// d-ary heap of that arity. 0 defaults to 4, the cache-friendly choice.
	HeapArity int
	// BatchSize is the per-destination dispatch buffer: remote children
	// accumulate until BatchSize are ready, then ship with a single
	// claim-CAS (rq.TryPushBatch). 0 defaults to 16.
	BatchSize int
	// FlushInterval bounds batching staleness: after this many processed
	// tasks all partial buffers are force-flushed (a worker that goes idle
	// always flushes immediately). 0 defaults to 32.
	FlushInterval int
	// IdleSpin is how many empty polls a worker performs before it starts
	// yielding, and how many yields before it sleeps. 0 defaults to 64.
	IdleSpin int
	// IdleSleep is the park duration once spinning and yielding found no
	// work. 0 defaults to 50µs.
	IdleSleep time.Duration
}

// DefaultConfig returns the paper-tuned native configuration.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:  workers,
		RingSize: 256,
		Bags:     bag.DefaultPolicy(),
		UseTDF:   true,
	}
}

// Result reports a native run's metrics.
type Result struct {
	Elapsed        time.Duration
	TasksProcessed int64
	BagsCreated    int64
	EdgesExamined  int64
	DriftTrace     []float64
	TDFTrace       []int
}

// Run executes w to completion with cfg and returns the run metrics. The
// workload is Reset first. It is safe to call concurrently with different
// workloads, but a single workload instance must not be shared across
// simultaneous runs.
func Run(w workload.Workload, cfg Config) Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.Bags.Mode != bag.Never && cfg.Bags.MaxSize == 0 {
		cfg.Bags = bag.DefaultPolicy()
	}
	if cfg.HeapArity <= 0 {
		cfg.HeapArity = 4
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 32
	}
	if cfg.IdleSpin <= 0 {
		cfg.IdleSpin = 64
	}
	if cfg.IdleSleep <= 0 {
		cfg.IdleSleep = 50 * time.Microsecond
	}
	w.Reset()

	e := &engine{
		cfg:     cfg,
		w:       w,
		workers: make([]worker, cfg.Workers),
		ctrl:    drift.NewController(cfg.Drift),
		reports: make([]int64, cfg.Workers),
	}
	if cfg.UseTDF {
		e.tdf.Store(int64(e.ctrl.TDF()))
	} else {
		tdf := int64(cfg.FixedTDF)
		if tdf <= 0 {
			tdf = 100
		}
		e.tdf.Store(tdf)
	}
	for i := range e.workers {
		me := &e.workers[i]
		me.id = i
		me.ring = rq.NewRing(cfg.RingSize)
		me.heap = newHeap(cfg.HeapArity, 64)
		me.rng = graph.NewRNG(cfg.Seed + uint64(i)*0x9e3779b9)
		me.out = make([][]task.Task, cfg.Workers)
		for j := range me.out {
			if j != i {
				me.out[j] = make([]task.Task, 0, cfg.BatchSize)
			}
		}
		me.children = make([]task.Task, 0, 16)
		// One closure for the whole run, so Process calls do not allocate a
		// fresh emit callback per task.
		me.emit = func(c task.Task) { me.children = append(me.children, c) }
		me.newBagID = func() uint64 {
			return uint64(me.id)<<32 | uint64(me.store.alloc().idx)
		}
	}

	initial := w.InitialTasks()
	e.outstanding.Store(int64(len(initial)))
	for i, t := range initial {
		e.workers[i%cfg.Workers].heap.Push(t)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e.run(id)
		}(i)
	}
	wg.Wait()

	res := Result{
		Elapsed:        time.Since(start),
		TasksProcessed: e.processed.Load(),
		BagsCreated:    e.bagsCreated.Load(),
		EdgesExamined:  e.edgesExamined.Load(),
	}
	for _, rec := range e.ctrl.History() {
		res.DriftTrace = append(res.DriftTrace, rec.Drift)
		res.TDFTrace = append(res.TDFTrace, rec.TDF)
	}
	return res
}

// newHeap builds the private per-worker priority queue for the configured
// arity (2 keeps the classic binary heap the simulator models).
func newHeap(arity, capacity int) pq.Queue {
	if arity == 2 {
		return pq.NewBinaryHeap(capacity)
	}
	return pq.NewDHeap(arity, capacity)
}

// RunAsStats adapts a native Result into the stats.Run vocabulary shared
// with the simulator (completion time in nanoseconds).
func RunAsStats(w workload.Workload, cfg Config) stats.Run {
	res := Run(w, cfg)
	return stats.Run{
		Scheduler:      "native-hdcps",
		Workload:       w.Name(),
		Input:          w.Graph().Name,
		Cores:          cfg.Workers,
		CompletionTime: res.Elapsed.Nanoseconds(),
		TasksProcessed: res.TasksProcessed,
		BagsCreated:    res.BagsCreated,
		DriftTrace:     res.DriftTrace,
		TDFTrace:       res.TDFTrace,
	}
}

type worker struct {
	id   int
	ring *rq.Ring
	heap pq.Queue
	rng  *graph.RNG

	// overflow catches batches that found the ring full (the sender-side
	// flow-control fallback): a lock-free MPSC Treiber stack remote senders
	// push onto and only the owner drains.
	overflow overflowStack

	// store holds this worker's outgoing bag payloads (pull transport): the
	// consumer resolves the metadata's Data field against it and releases
	// the slot when done.
	store payloadStore

	// out accumulates remote children per destination; a buffer ships via
	// TryPushBatch when it reaches BatchSize, when FlushInterval tasks have
	// passed, or when this worker runs out of local work.
	out        [][]task.Task
	outPending int
	sinceFlush int

	// children is the per-task scratch emit buffer; emit is the one
	// allocation-free closure appending to it, and part the reusable-scratch
	// bag partitioner (its output is consumed before the next task).
	children []task.Task
	emit     func(task.Task)
	newBagID func() uint64
	part     bag.Partitioner

	// Run-local counters, folded into the engine totals once at exit so the
	// per-task path performs a single shared atomic (outstanding).
	processed int64
	bags      int64
	edges     int64

	sinceReport int64
	_pad        [4]int64 // reduce false sharing between workers
}

type engine struct {
	cfg     Config
	w       workload.Workload
	workers []worker

	outstanding   atomic.Int64 // tasks emitted but not yet fully processed
	processed     atomic.Int64
	bagsCreated   atomic.Int64
	edgesExamined atomic.Int64
	tdf           atomic.Int64

	// Drift reporting (Alg. 2/3): workers write their latest priority,
	// the master consumes a full set.
	reports     []int64
	reportCount atomic.Int64
	ctrlMu      sync.Mutex
	ctrl        *drift.Controller
}

// bagMarker tags a ring task as bag metadata (node IDs never reach 2^32-1).
const bagMarker = ^graph.NodeID(0)

func (e *engine) run(id int) {
	me := &e.workers[id]
	defer func() {
		e.processed.Add(me.processed)
		e.bagsCreated.Add(me.bags)
		e.edgesExamined.Add(me.edges)
	}()
	buf := make([]task.Task, 0, 64)
	idle := 0
	for {
		// Drain the receive ring (and any spilled batches) into the heap.
		buf = me.ring.Drain(buf[:0], 0)
		for node := me.overflow.takeAll(); node != nil; node = node.next {
			buf = append(buf, node.tasks...)
		}
		for _, t := range buf {
			me.heap.Push(t)
		}

		t, ok := me.heap.Pop()
		if !ok {
			if me.outPending > 0 {
				// Out of local work: ship every partial batch before idling
				// so no task waits on this worker's buffers.
				e.flushAll(me)
				continue
			}
			if e.outstanding.Load() == 0 {
				return // global termination: no tasks anywhere
			}
			// Adaptive backoff: re-poll hot for a moment (work often lands
			// within a few hundred ns), then yield the P so the workers
			// holding tasks can run, then park briefly so an idle worker
			// stops costing the scheduler anything.
			idle++
			switch {
			case idle <= e.cfg.IdleSpin:
			case idle <= 2*e.cfg.IdleSpin:
				stdruntime.Gosched()
			default:
				time.Sleep(e.cfg.IdleSleep)
			}
			continue
		}
		idle = 0

		if t.Node == bagMarker {
			owner, idx := int(t.Data>>32), uint32(t.Data)
			st := &e.workers[owner].store
			s := st.get(idx)
			for _, bt := range s.tasks {
				e.processOne(id, me, bt)
			}
			st.release(s)
			e.outstanding.Add(-1) // the bag itself
		} else {
			e.processOne(id, me, t)
		}

		if me.sinceFlush >= e.cfg.FlushInterval && me.outPending > 0 {
			e.flushAll(me)
		}
	}
}

// processOne executes one task and distributes its children.
func (e *engine) processOne(id int, me *worker, t task.Task) {
	me.children = me.children[:0]
	me.edges += int64(e.w.Process(t, me.emit))
	me.processed++

	// Account all new work and retire this task in one shared atomic; the
	// increment lands before any child becomes visible, so outstanding can
	// never dip to zero while work exists.
	if len(me.children) > 0 {
		bags, singles := me.part.Partition(me.children, e.cfg.Bags, me.newBagID)
		e.outstanding.Add(int64(len(bags)) + int64(countTasks(bags)) + int64(len(singles)) - 1)
		for _, b := range bags {
			me.bags++
			s := me.store.get(uint32(b.ID))
			s.tasks = append(s.tasks[:0], b.Tasks...)
			e.dispatch(id, me, task.Task{Node: bagMarker, Prio: b.Prio, Data: b.ID})
		}
		for _, c := range singles {
			e.dispatch(id, me, c)
		}
	} else {
		e.outstanding.Add(-1)
	}

	// Drift reporting.
	me.sinceFlush++
	me.sinceReport++
	if me.sinceReport >= int64(e.ctrl.Config().SampleInterval) {
		me.sinceReport = 0
		e.report(id, t.Prio)
	}
}

func countTasks(bags []bag.Bag) int {
	n := 0
	for _, b := range bags {
		n += len(b.Tasks)
	}
	return n
}

// dispatch routes one unit (task or bag metadata) to a destination chosen
// by the current TDF. Remote units buffer per destination and ship in
// batches; local units go straight to the private heap.
func (e *engine) dispatch(id int, me *worker, t task.Task) {
	dst := id
	if n := len(e.workers); n > 1 && int64(me.rng.Uint32n(100)) < e.tdf.Load() {
		d := int(me.rng.Uint32n(uint32(n - 1)))
		if d >= id {
			d++
		}
		dst = d
	}
	if dst == id {
		me.heap.Push(t)
		return
	}
	me.out[dst] = append(me.out[dst], t)
	me.outPending++
	if len(me.out[dst]) >= e.cfg.BatchSize {
		e.flushTo(me, dst)
	}
}

// flushTo ships one destination's buffered batch: as much as fits through
// the ring in claim-CAS batches, the remainder spilled to the destination's
// lock-free overflow stack.
func (e *engine) flushTo(me *worker, dst int) {
	buf := me.out[dst]
	if len(buf) == 0 {
		return
	}
	w := &e.workers[dst]
	pushed := 0
	for pushed < len(buf) {
		n := w.ring.TryPushBatch(buf[pushed:])
		if n == 0 {
			break
		}
		pushed += n
	}
	if rest := buf[pushed:]; len(rest) > 0 {
		// Ring full: park the remainder at the destination. The node copies
		// the tasks because buf is reused for the next batch.
		w.overflow.push(&overflowNode{tasks: append([]task.Task(nil), rest...)})
	}
	me.outPending -= len(buf)
	me.out[dst] = buf[:0]
}

// flushAll ships every partial batch.
func (e *engine) flushAll(me *worker) {
	for dst := range me.out {
		e.flushTo(me, dst)
	}
	me.sinceFlush = 0
}

// report implements Algorithm 3's send + the master-side Algorithm 2 step.
func (e *engine) report(id int, prio int64) {
	atomic.StoreInt64(&e.reports[id], prio)
	if e.reportCount.Add(1) < int64(len(e.workers)) {
		return
	}
	e.reportCount.Store(0)
	if !e.cfg.UseTDF {
		return
	}
	snapshot := make([]int64, len(e.reports))
	for i := range e.reports {
		snapshot[i] = atomic.LoadInt64(&e.reports[i])
	}
	e.ctrlMu.Lock()
	tdf := e.ctrl.Update(snapshot)
	e.ctrlMu.Unlock()
	e.tdf.Store(int64(tdf))
}

// overflowStack is the sender-side flow-control fallback: when a
// destination's ring is full, the rejected batch is parked on this
// lock-free MPSC Treiber stack (any sender pushes; only the owner drains,
// by swapping the whole list out). It replaces the seed's mutex-guarded
// slice, so a full ring no longer serializes its senders.
type overflowStack struct {
	head atomic.Pointer[overflowNode]
}

type overflowNode struct {
	tasks []task.Task
	next  *overflowNode
}

func (s *overflowStack) push(n *overflowNode) {
	for {
		old := s.head.Load()
		n.next = old
		if s.head.CompareAndSwap(old, n) {
			return
		}
	}
}

// takeAll detaches the whole stack in one swap; popping everything at once
// sidesteps the ABA hazard of per-node pops.
func (s *overflowStack) takeAll() *overflowNode { return s.head.Swap(nil) }
