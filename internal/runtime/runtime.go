// Package runtime is the native (goroutine-based) HD-CPS implementation:
// the same scheduler design the simulator models — per-worker receive rings
// (§III-A), a private priority queue per worker, adaptive bags (§III-B),
// and the drift-feedback TDF controller (§III-C) — running on real threads
// against real memory. It is the library a downstream Go user adopts, and
// it is the "real machine" side of the paper's simulator-correlation
// experiment (Fig. 10).
//
// The runtime is layered, one file per layer, each behind a small
// interface so it can be tested and replaced independently:
//
//   - transport.go — Transport: the inter-worker task-transfer fabric
//     (MPSC ring + lock-free Treiber overflow + per-destination batching);
//   - localq.go — LocalQueue: the per-worker private priority queue;
//   - payload.go — payloadStore: the pull-transport bag-payload store;
//   - control.go — controlPlane: drift reporting and TDF propagation;
//   - engine.go — Engine: the long-lived worker fleet with the
//     Start / Submit / Drain / Stop lifecycle and epoch-aware termination.
//
// The hot paths follow the levers that "Engineering MultiQueues" and
// Wimmer et al. identify for this scheduler shape: remote children are
// accumulated per destination and flushed with one CAS per batch
// (rq.TryPushBatch); a full ring spills to a lock-free Treiber stack
// instead of a mutex; bag payloads live in a per-worker store addressed by
// the metadata (no global hash map bouncing between cores); the private
// queue is a 4-ary heap by default; and idle workers back off
// spin → Gosched → sleep instead of burning the scheduler.
package runtime

import (
	"context"
	stdruntime "runtime"
	"time"

	"hdcps/internal/bag"
	"hdcps/internal/drift"
	"hdcps/internal/obs"
	"hdcps/internal/stats"
	"hdcps/internal/workload"
)

// Config configures a native engine (and the one-shot Run wrapper).
type Config struct {
	// Workers is the number of worker goroutines (default GOMAXPROCS-ish 4).
	Workers int
	// RingSize is the per-worker receive ring capacity (default 256).
	RingSize int
	// Bags selects the bag policy (default: the paper's selective policy).
	Bags bag.Policy
	// UseTDF enables the adaptive controller; FixedTDF applies otherwise.
	UseTDF   bool
	FixedTDF int
	// Drift configures the controller.
	Drift drift.Config
	// Seed makes destination selection reproducible per worker.
	Seed uint64

	// QueueKind selects the per-worker local queue shape: QueueTwoLevel
	// (the default — the paper's hPQ-style hot buffer over a monotone
	// bucket cold store, with runtime fallback to a d-ary heap on
	// non-monotone priority streams), QueueDHeap (the PR-1 d-ary heap of
	// HeapArity), QueueHeap (a classic binary heap), or QueueMultiQueue
	// (the relaxed shared MultiQueue: c·P try-locked shards, pick-2
	// delete-min, bounded priority inversion). Unknown values select the
	// default.
	QueueKind string
	// HotBufferCap sizes the two-level queue's hot buffer (QueueTwoLevel
	// only). 0 defaults to 48, the paper's hPQ capacity (§III-D).
	HotBufferCap int
	// HeapArity selects the d-ary local queue's branching factor when
	// QueueKind is QueueDHeap (2 is the classic binary heap the simulator's
	// cost model charges for) and the two-level queue's fallback heap.
	// 0 defaults to 4, the cache-friendly choice.
	HeapArity int
	// MQFactor is the MultiQueue's c in the c·P shard count (QueueMultiQueue
	// only). 0 defaults to 4, the literature's sweet spot; larger values
	// lower contention but raise the expected rank error.
	MQFactor int
	// MQStickiness is how many consecutive operations a worker reuses its
	// chosen MultiQueue shard (pair) before re-randomizing (QueueMultiQueue
	// only). 0 defaults to 8; 1 disables stickiness. Higher values cut
	// coordination cost and multiply the rank-error bound by O(S).
	MQStickiness int
	// Queue, when non-nil, overrides HeapArity with a custom per-worker
	// local queue (the pluggable local-queue layer; called once per worker).
	Queue func() LocalQueue
	// NewTransport, when non-nil, replaces the ring fabric with a custom
	// transport layer. It receives the fully defaulted Config.
	NewTransport func(Config) Transport

	// Obs, when non-nil, enables the observability layer: per-worker
	// counters, sampled event traces, and spill/park/control events are
	// recorded into it by every runtime layer. A nil recorder costs the hot
	// path one predictable branch per recording site. Size it for at least
	// this engine's Workers (obs.New(obs.Config{Workers: n})); writes from
	// out-of-range worker indices fold into the recorder's shared row.
	Obs *obs.Recorder

	// Retry configures per-task panic handling: a task whose handler panics
	// is retried up to Retry.MaxAttempts times, then quarantined (see
	// Engine.Quarantined). The zero value disables retries — the first
	// panic quarantines — and costs the hot path nothing. Per-job overrides
	// live in JobConfig.Retry.
	Retry RetryPolicy
	// DefaultJob parameterizes job 0, the tenant the engine is constructed
	// over (name, fair-share weight, quota, TDF bias, retry override). The
	// zero value keeps the historical single-tenant behavior: weight 1, no
	// quota, neutral bias. Further tenants are registered with
	// Engine.NewJob.
	DefaultJob JobConfig
	// OverflowCap bounds each transport endpoint's overflow stack, in
	// tasks. A saturated destination (full ring AND full overflow) bounces
	// further worker sends back to the sender, which keeps them in its own
	// local queue (Snapshot.Redirects counts these). 0 defaults to 4096;
	// negative means unbounded (the pre-flow-control behavior).
	OverflowCap int
	// StallTimeout arms Drain's liveness watchdog: if the engine makes no
	// progress (no task retired, no quarantine, no new submission) for this
	// long while work is still outstanding, Drain returns a *StallError
	// with per-worker diagnostics instead of blocking forever. 0 disables
	// the watchdog (Drain then bounds its wait with ctx alone).
	StallTimeout time.Duration

	// BatchK is the worker loop's dequeue batch: up to this many tasks are
	// popped and processed back to back, letting the loop prefetch the next
	// task's CSR row and amortize the per-iteration stop/recv/flush checks.
	// The cost is bounded extra relaxation (a child of batch[i] cannot
	// preempt the rest of the batch). 0 defaults to 8; 1 restores the
	// pop-one semantics.
	BatchK int
	// BatchSize is the per-destination dispatch buffer: remote children
	// accumulate until BatchSize are ready, then ship with a single
	// claim-CAS (rq.TryPushBatch). 0 defaults to 16.
	BatchSize int
	// FlushInterval bounds batching staleness: after this many processed
	// tasks all partial buffers are force-flushed (a worker that goes idle
	// always flushes immediately). 0 defaults to 32.
	FlushInterval int
	// IdleSpin is how many empty polls a worker performs before it starts
	// yielding, and how many yields before it sleeps. 0 defaults to 64.
	IdleSpin int
	// IdleSleep is the park duration once spinning and yielding found no
	// work. 0 defaults to 50µs.
	IdleSleep time.Duration
}

// withDefaults fills unset knobs with the paper-tuned values.
func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.Bags.Mode != bag.Never && cfg.Bags.MaxSize == 0 {
		cfg.Bags = bag.DefaultPolicy()
	}
	if cfg.QueueKind == "" {
		cfg.QueueKind = QueueTwoLevel
	}
	if cfg.HotBufferCap <= 0 {
		cfg.HotBufferCap = 48
	}
	if cfg.HeapArity <= 0 {
		cfg.HeapArity = 4
	}
	if cfg.BatchK <= 0 {
		cfg.BatchK = 8
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.OverflowCap == 0 {
		cfg.OverflowCap = 4096
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 32
	}
	if cfg.IdleSpin <= 0 {
		cfg.IdleSpin = 64
		if stdruntime.GOMAXPROCS(0) == 1 {
			// Spinning only pays when a producer can run concurrently; on a
			// single P an idle worker's spin just steals the producer's CPU,
			// so yield almost immediately instead.
			cfg.IdleSpin = 4
		}
	}
	if cfg.IdleSleep <= 0 {
		cfg.IdleSleep = 50 * time.Microsecond
	}
	return cfg
}

// DefaultConfig returns the paper-tuned native configuration.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:  workers,
		RingSize: 256,
		Bags:     bag.DefaultPolicy(),
		UseTDF:   true,
	}
}

// Result reports a native run's metrics. DriftTrace, RefTrace, and TDFTrace
// are index-aligned per controller interval (the control plane's time
// series; obs.ControlSeries zips them into points).
type Result struct {
	Elapsed        time.Duration
	TasksProcessed int64
	BagsCreated    int64
	EdgesExamined  int64
	DriftTrace     []float64
	RefTrace       []int64
	TDFTrace       []int
}

// Run executes w to completion with cfg and returns the run metrics: the
// one-shot compatibility wrapper over the Engine lifecycle
// (Submit(InitialTasks) → Start → Drain → Stop). Submitting before Start
// seeds the worker queues directly — the transport never sees the initial
// tasks, and the fleet wakes up with work already in hand instead of
// spinning on empty rings. The workload is Reset first. Elapsed covers
// start-of-fleet to quiescence. It is safe to call concurrently with
// different workloads, but a single workload instance must not be shared
// across simultaneous runs.
func Run(w workload.Workload, cfg Config) Result {
	e := NewEngine(w, cfg)
	_ = e.Submit(w.InitialTasks()...)
	_ = e.Start()
	// Background contexts: neither call can fail on a running engine.
	_ = e.Drain(context.Background())
	elapsed := time.Since(e.startedAt)
	_ = e.Stop(context.Background())
	res := e.Result()
	res.Elapsed = elapsed
	return res
}

// RunAsStats adapts a native Result into the stats.Run vocabulary shared
// with the simulator (completion time in nanoseconds).
func RunAsStats(w workload.Workload, cfg Config) stats.Run {
	res := Run(w, cfg)
	return stats.Run{
		Scheduler:      "native-hdcps",
		Workload:       w.Name(),
		Input:          w.Graph().Name,
		Cores:          cfg.withDefaults().Workers,
		CompletionTime: res.Elapsed.Nanoseconds(),
		TasksProcessed: res.TasksProcessed,
		BagsCreated:    res.BagsCreated,
		EdgesExamined:  res.EdgesExamined,
		DriftTrace:     res.DriftTrace,
		RefTrace:       res.RefTrace,
		TDFTrace:       res.TDFTrace,
	}
}
