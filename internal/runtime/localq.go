package runtime

// The local-queue layer is each worker's private priority queue (§III-A):
// tasks drained from the transport land here, and the worker always
// processes its locally-highest-priority task next. The queue is private to
// one goroutine, so any pq.Queue implementation works without locks; the
// policy knob is which shape backs it.

import "hdcps/internal/pq"

// LocalQueue is the per-worker private priority queue contract. It is
// exactly pq.Queue — single-owner, no internal synchronization.
type LocalQueue = pq.Queue

// Local-queue kinds accepted by Config.QueueKind (see QueueKinds).
const (
	// QueueTwoLevel is the default: the paper's hPQ-style two-level queue —
	// a sorted hot buffer (Config.HotBufferCap entries) spilling into a
	// monotone bucket cold store, with automatic runtime fallback to a
	// d-ary heap when the priority stream turns out non-monotone.
	QueueTwoLevel = "twolevel"
	// QueueDHeap is the PR-1 flat d-ary heap of Config.HeapArity.
	QueueDHeap = "dheap"
	// QueueHeap is the classic binary heap (HeapArity 2 shorthand).
	QueueHeap = "heap"
	// QueueMultiQueue is the relaxed MultiQueue (PR 6): one shared pool of
	// c·P try-locked shards with pick-2 delete-min, accessed through a
	// per-worker pq.MQHandle. Unlike the strict kinds, the "local" queues of
	// a fleet are views of one structure, so work balances through the queue
	// itself at the cost of bounded priority inversion (tracked by the
	// engine's rank-error counters).
	QueueMultiQueue = "multiqueue"
)

// QueueKinds lists the valid Config.QueueKind values. The engine test
// matrix, the chaos soak, and the CLI flag validation all iterate this
// list, so a new kind registered here is automatically covered everywhere.
func QueueKinds() []string {
	return []string{QueueHeap, QueueDHeap, QueueTwoLevel, QueueMultiQueue}
}

// mqConfig maps the engine knobs onto the shared MultiQueue's sizing.
func mqConfig(cfg Config) pq.MultiQueueConfig {
	return pq.MultiQueueConfig{
		Workers:    cfg.Workers,
		Factor:     cfg.MQFactor,
		Stickiness: cfg.MQStickiness,
		Seed:       cfg.Seed,
	}
}

// newLocalQueue builds one worker's queue from the configured policy:
// Config.Queue when set (the pluggable hook), else the shape named by
// Config.QueueKind. The engine's hot path devirtualizes the two-level and
// multiqueue shapes (worker.tl / worker.mq), so the interface boxing here
// is paid once per worker. A multiqueue built here is a single-worker
// instance; fleets share one structure via newLocalQueues instead.
func newLocalQueue(cfg Config) LocalQueue {
	if cfg.Queue != nil {
		return cfg.Queue()
	}
	switch cfg.QueueKind {
	case QueueHeap:
		return pq.NewBinaryHeap(64)
	case QueueDHeap:
		if cfg.HeapArity == 2 {
			return pq.NewBinaryHeap(64)
		}
		return pq.NewDHeap(cfg.HeapArity, 64)
	case QueueMultiQueue:
		mc := mqConfig(cfg)
		mc.Workers = 1
		return pq.NewMultiQueue(mc).Handle()
	default:
		return pq.NewTwoLevel(pq.TwoLevelConfig{
			HotCap: cfg.HotBufferCap,
			Arity:  cfg.HeapArity,
		})
	}
}

// newLocalQueues builds the whole fleet's queues at once. For the strict
// per-worker kinds this is just newLocalQueue per worker; for multiqueue
// every worker gets a handle into ONE shared c·P-shard structure — the
// property that makes the kind a scalability play rather than P separate
// relaxed queues.
func newLocalQueues(cfg Config) []LocalQueue {
	qs := make([]LocalQueue, cfg.Workers)
	if cfg.Queue == nil && cfg.QueueKind == QueueMultiQueue {
		m := pq.NewMultiQueue(mqConfig(cfg))
		for i := range qs {
			qs[i] = m.Handle()
		}
		return qs
	}
	for i := range qs {
		qs[i] = newLocalQueue(cfg)
	}
	return qs
}
