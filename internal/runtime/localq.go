package runtime

// The local-queue layer is each worker's private priority queue (§III-A):
// tasks drained from the transport land here, and the worker always
// processes its locally-highest-priority task next. The queue is private to
// one goroutine, so any pq.Queue implementation works without locks; the
// policy knob is which shape backs it.

import "hdcps/internal/pq"

// LocalQueue is the per-worker private priority queue contract. It is
// exactly pq.Queue — single-owner, no internal synchronization.
type LocalQueue = pq.Queue

// Local-queue kinds accepted by Config.QueueKind (see QueueKinds).
const (
	// QueueTwoLevel is the default: the paper's hPQ-style two-level queue —
	// a sorted hot buffer (Config.HotBufferCap entries) spilling into a
	// monotone bucket cold store, with automatic runtime fallback to a
	// d-ary heap when the priority stream turns out non-monotone.
	QueueTwoLevel = "twolevel"
	// QueueDHeap is the PR-1 flat d-ary heap of Config.HeapArity.
	QueueDHeap = "dheap"
	// QueueHeap is the classic binary heap (HeapArity 2 shorthand).
	QueueHeap = "heap"
)

// QueueKinds lists the valid Config.QueueKind values.
func QueueKinds() []string {
	return []string{QueueHeap, QueueDHeap, QueueTwoLevel}
}

// newLocalQueue builds one worker's queue from the configured policy:
// Config.Queue when set (the pluggable hook), else the shape named by
// Config.QueueKind. The engine's hot path devirtualizes the two-level
// shape (worker.tl), so the interface boxing here is paid once per worker.
func newLocalQueue(cfg Config) LocalQueue {
	if cfg.Queue != nil {
		return cfg.Queue()
	}
	switch cfg.QueueKind {
	case QueueHeap:
		return pq.NewBinaryHeap(64)
	case QueueDHeap:
		if cfg.HeapArity == 2 {
			return pq.NewBinaryHeap(64)
		}
		return pq.NewDHeap(cfg.HeapArity, 64)
	default:
		return pq.NewTwoLevel(pq.TwoLevelConfig{
			HotCap: cfg.HotBufferCap,
			Arity:  cfg.HeapArity,
		})
	}
}
