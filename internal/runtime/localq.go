package runtime

// The local-queue layer is each worker's private priority queue (§III-A):
// tasks drained from the transport land here, and the worker always
// processes its locally-highest-priority task next. The queue is private to
// one goroutine, so any pq.Queue implementation works without locks; the
// policy knob is which heap shape backs it.

import "hdcps/internal/pq"

// LocalQueue is the per-worker private priority queue contract. It is
// exactly pq.Queue — single-owner, no internal synchronization.
type LocalQueue = pq.Queue

// newLocalQueue builds one worker's queue from the configured policy:
// Config.Queue when set (the pluggable hook), else a d-ary heap of
// Config.HeapArity (2 keeps the classic binary heap the simulator's cost
// model charges for; the default 4 is the cache-friendly choice).
func newLocalQueue(cfg Config) LocalQueue {
	if cfg.Queue != nil {
		return cfg.Queue()
	}
	if cfg.HeapArity == 2 {
		return pq.NewBinaryHeap(64)
	}
	return pq.NewDHeap(cfg.HeapArity, 64)
}
