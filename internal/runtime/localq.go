package runtime

// The local-queue layer is each worker's private priority queue (§III-A):
// tasks drained from the transport land here, and the worker always
// processes its locally-highest-priority task next. The queue is private to
// one goroutine, so any pq.Queue implementation works without locks; the
// policy knob is which shape backs it.

import (
	"hdcps/internal/pq"
	"hdcps/internal/task"
)

// LocalQueue is the per-worker private priority queue contract. It is
// exactly pq.Queue — single-owner, no internal synchronization.
type LocalQueue = pq.Queue

// Local-queue kinds accepted by Config.QueueKind (see QueueKinds).
const (
	// QueueTwoLevel is the default: the paper's hPQ-style two-level queue —
	// a sorted hot buffer (Config.HotBufferCap entries) spilling into a
	// monotone bucket cold store, with automatic runtime fallback to a
	// d-ary heap when the priority stream turns out non-monotone.
	QueueTwoLevel = "twolevel"
	// QueueDHeap is the PR-1 flat d-ary heap of Config.HeapArity.
	QueueDHeap = "dheap"
	// QueueHeap is the classic binary heap (HeapArity 2 shorthand).
	QueueHeap = "heap"
	// QueueMultiQueue is the relaxed MultiQueue (PR 6): one shared pool of
	// c·P try-locked shards with pick-2 delete-min, accessed through a
	// per-worker pq.MQHandle. Unlike the strict kinds, the "local" queues of
	// a fleet are views of one structure, so work balances through the queue
	// itself at the cost of bounded priority inversion (tracked by the
	// engine's rank-error counters).
	QueueMultiQueue = "multiqueue"
)

// QueueKinds lists the valid Config.QueueKind values. The engine test
// matrix, the chaos soak, and the CLI flag validation all iterate this
// list, so a new kind registered here is automatically covered everywhere.
func QueueKinds() []string {
	return []string{QueueHeap, QueueDHeap, QueueTwoLevel, QueueMultiQueue}
}

// mqConfig maps the engine knobs onto the shared MultiQueue's sizing.
func mqConfig(cfg Config) pq.MultiQueueConfig {
	return pq.MultiQueueConfig{
		Workers:    cfg.Workers,
		Factor:     cfg.MQFactor,
		Stickiness: cfg.MQStickiness,
		Seed:       cfg.Seed,
	}
}

// newLocalQueue builds one queue from the configured policy: Config.Queue
// when set (the pluggable hook), else the shape named by Config.QueueKind.
// The engine's hot path devirtualizes the two-level and multiqueue shapes
// (workerJQ.tl / workerJQ.mq), so the interface boxing here is paid once
// per worker per job. A multiqueue built here is a single-worker instance;
// fleets share one structure per job via jobState.mq (see newWorkerJQ).
func newLocalQueue(cfg Config) LocalQueue {
	if cfg.Queue != nil {
		return cfg.Queue()
	}
	switch cfg.QueueKind {
	case QueueHeap:
		return pq.NewBinaryHeap(64)
	case QueueDHeap:
		if cfg.HeapArity == 2 {
			return pq.NewBinaryHeap(64)
		}
		return pq.NewDHeap(cfg.HeapArity, 64)
	case QueueMultiQueue:
		mc := mqConfig(cfg)
		mc.Workers = 1
		return pq.NewMultiQueue(mc).Handle()
	default:
		return pq.NewTwoLevel(pq.TwoLevelConfig{
			HotCap: cfg.HotBufferCap,
			Arity:  cfg.HeapArity,
		})
	}
}

// workerJQ is one worker's queue for one job: the unit the job-level
// deficit-round-robin scheduler rotates over (engine.go). For the strict
// kinds the queue is private to the worker; for multiqueue it is a handle
// into the job's fleet-shared structure (jobState.mq), so relaxation and
// work balancing stay within the tenant. The d* fields are the worker's
// deferred per-job ledger deltas, flushed at batch boundaries in retirement-
// before-outstanding order so the per-job ledger obeys the same publication
// contract as the global one.
type workerJQ struct {
	js    *jobState
	queue LocalQueue
	// tl/mq devirtualize the stock shapes exactly like the worker's old
	// single queue did — push/pop stay direct calls on the hot path.
	tl *pq.TwoLevel
	mq *pq.MQHandle

	// active marks membership in the worker's round-robin ring (worker.act).
	active bool
	// deficit is the job's deficit-round-robin balance on this worker, in
	// tasks: each fillBatch visit deposits weight*drrQuantum, each retired
	// task (including every task inside an opened bag — charged when the
	// bag is opened, so it can push the balance negative) withdraws one.
	// Debt carries across rounds, which is what makes the long-run task
	// shares weight-proportional even though bag sizes are unknown at pop
	// time. Reset to zero whenever the queue goes empty (no banking while
	// unbacklogged). Only the owning worker touches it.
	deficit int64

	// dirty marks pending deltas (worker.dirtyJQ holds the dirty set).
	dirty        bool
	dProcessed   int64
	dBagsRetired int64
	dCancelled   int64
	dOut         int64
}

func (q *workerJQ) push(t task.Task) {
	if q.tl != nil {
		q.tl.Push(t)
		return
	}
	if q.mq != nil {
		q.mq.Push(t)
		return
	}
	q.queue.Push(t)
}

func (q *workerJQ) pop() (task.Task, bool) {
	if q.tl != nil {
		return q.tl.Pop()
	}
	if q.mq != nil {
		return q.mq.Pop()
	}
	return q.queue.Pop()
}

func (q *workerJQ) peek() (task.Task, bool) {
	if q.tl != nil {
		return q.tl.Peek()
	}
	return q.queue.Peek()
}

// newWorkerJQ builds one worker's queue for one job: a private queue of the
// configured shape, or a handle into the job's shared MultiQueue.
func newWorkerJQ(cfg Config, js *jobState) *workerJQ {
	q := &workerJQ{js: js}
	if js.mq != nil {
		q.queue = js.mq.Handle()
	} else {
		q.queue = newLocalQueue(cfg)
	}
	q.tl, _ = q.queue.(*pq.TwoLevel)
	q.mq, _ = q.queue.(*pq.MQHandle)
	return q
}
