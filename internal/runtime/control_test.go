package runtime

import (
	"testing"

	"hdcps/internal/drift"
)

// A fast worker completing a whole report interval alone must not drag the
// other workers' never-reported (zero-valued) slots into the drift
// snapshot: before the sentinel fix, three phantom zeros against priority
// 1000 fabricated a drift of 750 and steered the controller's first moves.
func TestControlPlaneExcludesNeverReported(t *testing.T) {
	cfg := Config{Workers: 4, UseTDF: true}.withDefaults()
	cp := newControlPlane(cfg)
	for i := 0; i < 4; i++ {
		cp.Report(0, 1000)
	}
	h := cp.History()
	if len(h) != 1 {
		t.Fatalf("controller updates %d, want 1 (interval completes at 4 reports)", len(h))
	}
	if h[0].Drift != 0 {
		t.Fatalf("drift %v, want 0: never-reported workers leaked into the snapshot", h[0].Drift)
	}
}

func TestControlPlaneFullSnapshotDrift(t *testing.T) {
	cfg := Config{Workers: 4, UseTDF: true}.withDefaults()
	cp := newControlPlane(cfg)
	for i, p := range []int64{100, 200, 300, 400} {
		cp.Report(i, p)
	}
	h := cp.History()
	if len(h) != 1 {
		t.Fatalf("controller updates %d, want 1", len(h))
	}
	// Eq. 1: mean |p - min| = (0 + 100 + 200 + 300) / 4.
	if h[0].Drift != 150 {
		t.Fatalf("drift %v, want 150", h[0].Drift)
	}
}

func TestControlPlaneFixedTDF(t *testing.T) {
	cfg := Config{Workers: 2, FixedTDF: 70}.withDefaults()
	cp := newControlPlane(cfg)
	if cp.TDF() != 70 {
		t.Fatalf("TDF %d, want 70", cp.TDF())
	}
	cp.Report(0, 5)
	cp.Report(1, 10)
	if cp.TDF() != 70 {
		t.Fatalf("fixed TDF moved to %d", cp.TDF())
	}
	if h := cp.History(); len(h) != 0 {
		t.Fatalf("fixed-TDF plane ran the controller: %v", h)
	}

	// Unset FixedTDF defaults to 100 (always distribute).
	cp2 := newControlPlane(Config{Workers: 2}.withDefaults())
	if cp2.TDF() != 100 {
		t.Fatalf("default fixed TDF %d, want 100", cp2.TDF())
	}
}

func TestControlPlaneAdaptive(t *testing.T) {
	cfg := Config{Workers: 2, UseTDF: true, Drift: drift.Config{InitialTDF: 50, Step: 10}}.withDefaults()
	cp := newControlPlane(cfg)
	if cp.TDF() != 50 {
		t.Fatalf("initial TDF %d, want 50", cp.TDF())
	}
	// First interval records a baseline, second (improving drift, default
	// OnImprove=Increase) raises the TDF.
	cp.Report(0, 100)
	cp.Report(1, 300) // drift 100
	cp.Report(0, 100)
	cp.Report(1, 150) // drift 25: improved
	if cp.TDF() != 60 {
		t.Fatalf("TDF %d after improving drift, want 60", cp.TDF())
	}
	if len(cp.History()) != 2 {
		t.Fatalf("history %d entries, want 2", len(cp.History()))
	}
}
