package runtime

import (
	"testing"

	"hdcps/internal/drift"
	"hdcps/internal/obs"
)

// A fast worker completing a whole report interval alone must not drag the
// other workers' never-reported (zero-valued) slots into the drift
// snapshot: before the sentinel fix, three phantom zeros against priority
// 1000 fabricated a drift of 750 and steered the controller's first moves.
func TestControlPlaneExcludesNeverReported(t *testing.T) {
	cfg := Config{Workers: 4, UseTDF: true}.withDefaults()
	cp := newControlPlane(cfg)
	for i := 0; i < 4; i++ {
		cp.Report(0, 0, 1000)
	}
	h := cp.History()
	if len(h) != 1 {
		t.Fatalf("controller updates %d, want 1 (interval completes at 4 reports)", len(h))
	}
	if h[0].Drift != 0 {
		t.Fatalf("drift %v, want 0: never-reported workers leaked into the snapshot", h[0].Drift)
	}
}

func TestControlPlaneFullSnapshotDrift(t *testing.T) {
	cfg := Config{Workers: 4, UseTDF: true}.withDefaults()
	cp := newControlPlane(cfg)
	for i, p := range []int64{100, 200, 300, 400} {
		cp.Report(i, 0, p)
	}
	h := cp.History()
	if len(h) != 1 {
		t.Fatalf("controller updates %d, want 1", len(h))
	}
	// Eq. 1: mean |p - min| = (0 + 100 + 200 + 300) / 4.
	if h[0].Drift != 150 {
		t.Fatalf("drift %v, want 150", h[0].Drift)
	}
}

func TestControlPlaneFixedTDF(t *testing.T) {
	cfg := Config{Workers: 2, FixedTDF: 70}.withDefaults()
	cp := newControlPlane(cfg)
	if cp.TDF() != 70 {
		t.Fatalf("TDF %d, want 70", cp.TDF())
	}
	cp.Report(0, 0, 5)
	cp.Report(1, 0, 10)
	if cp.TDF() != 70 {
		t.Fatalf("fixed TDF moved to %d", cp.TDF())
	}
	if h := cp.History(); len(h) != 0 {
		t.Fatalf("fixed-TDF plane ran the controller: %v", h)
	}

	// Unset FixedTDF defaults to 100 (always distribute).
	cp2 := newControlPlane(Config{Workers: 2}.withDefaults())
	if cp2.TDF() != 100 {
		t.Fatalf("default fixed TDF %d, want 100", cp2.TDF())
	}
}

// A handler that emits a negative priority, or one at or above the
// never-reported sentinel, used to flow straight into the drift snapshot:
// one -1<<40 report fabricated a drift term that walked the controller's
// TDF to its floor. Report must clamp such priorities at the boundary,
// count them, and keep the drift signal finite.
func TestControlPlaneClampsOutOfRangePriorities(t *testing.T) {
	rec := obs.New(obs.Config{Workers: 2})
	cfg := Config{Workers: 2, UseTDF: true, Obs: rec}.withDefaults()
	cp := newControlPlane(cfg)

	cp.Report(0, 0, -1<<40)          // negative: clamps to 0
	cp.Report(1, 0, neverReported+7) // sentinel collision: clamps to neverReported-1
	if got := cp.Clamped(); got != 2 {
		t.Fatalf("clamped = %d, want 2", got)
	}
	if got := rec.Total(obs.CDriftClamped); got != 2 {
		t.Fatalf("obs CDriftClamped = %d, want 2", got)
	}
	h := cp.History()
	if len(h) != 1 {
		t.Fatalf("controller updates %d, want 1", len(h))
	}
	// Snapshot is {0, neverReported-1}: drift is finite and the reference
	// is the clamped negative, not the raw garbage.
	if h[0].Ref != 0 {
		t.Fatalf("reference %d, want clamped 0", h[0].Ref)
	}
	if want := float64(neverReported-1) / 2; h[0].Drift != want {
		t.Fatalf("drift %v, want %v", h[0].Drift, want)
	}

	// In-range reports don't touch the counter.
	cp.Report(0, 0, 100)
	cp.Report(1, 0, 200)
	if got := cp.Clamped(); got != 2 {
		t.Fatalf("in-range report counted as clamped: %d", got)
	}
}

func TestControlPlaneAdaptive(t *testing.T) {
	cfg := Config{Workers: 2, UseTDF: true, Drift: drift.Config{InitialTDF: 50, Step: 10}}.withDefaults()
	cp := newControlPlane(cfg)
	if cp.TDF() != 50 {
		t.Fatalf("initial TDF %d, want 50", cp.TDF())
	}
	// First interval records a baseline, second (improving drift, default
	// OnImprove=Increase) raises the TDF.
	cp.Report(0, 0, 100)
	cp.Report(1, 0, 300) // drift 100
	cp.Report(0, 0, 100)
	cp.Report(1, 0, 150) // drift 25: improved
	if cp.TDF() != 60 {
		t.Fatalf("TDF %d after improving drift, want 60", cp.TDF())
	}
	if len(cp.History()) != 2 {
		t.Fatalf("history %d entries, want 2", len(cp.History()))
	}
}
