package runtime

// The fault layer is the engine's failure model, grown out of a concrete
// wedge: a panicking task handler used to kill its worker goroutine and
// leave Drain blocked forever on an outstanding count that could no longer
// reach zero. Now a handler panic is a per-task event — the worker
// survives, the task is retried under the job's retry policy (JobConfig.Retry
// falling back to Config.Retry) and quarantined when retries are exhausted,
// and every failure path stays inside the engine's conservation ledger:
//
//	Submitted + Spawned = Processed + BagsRetired + Quarantined + Cancelled + Outstanding
//
// exactly at quiescence (each term's publication is ordered before the
// outstanding-count transition that makes it observable). The Cancelled term
// is the job layer's sink: tasks of a cancelled tenant retire there without
// executing (job.go). The same equation holds per job, and the chaos harness
// (internal/chaos) asserts both ledgers at every drain checkpoint.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hdcps/internal/task"
)

// RetryPolicy configures how the engine handles a task whose handler
// panics. The zero value quarantines on the first panic.
type RetryPolicy struct {
	// MaxAttempts is the total number of times a panicking task is run
	// before quarantine. Values <= 1 mean no retries.
	MaxAttempts int
	// Backoff is the delay before retry attempt n, scaled linearly
	// (attempt * Backoff) and served on the failing worker — panics are
	// exceptional, so briefly stalling one worker is cheaper than a timer
	// wheel. 0 retries immediately.
	Backoff time.Duration
}

// QuarantinedTask is one poisoned task: it exhausted its retry budget (or
// panicked with retries disabled) and was retired into quarantine instead
// of processed. The task's priority, the panic value of the final attempt,
// and the worker that caught it are kept for diagnosis.
type QuarantinedTask struct {
	Task     task.Task
	Worker   int // worker that caught the final panic
	Attempts int // total handler invocations, including the first
	Panic    any // recover() value of the final attempt
	Time     time.Time
}

func (q QuarantinedTask) String() string {
	return fmt.Sprintf("task{node %d prio %d} worker %d after %d attempt(s): %v",
		q.Task.Node, q.Task.Prio, q.Worker, q.Attempts, q.Panic)
}

// faultState is the engine's mutex-guarded fault ledger. Everything here is
// off the hot path — it is touched only when a handler panics — except the
// lock-free quarantined count Snapshot reads.
type faultState struct {
	mu          sync.Mutex
	attempts    map[task.Task]int // panic count per retrying task value
	quarantined []QuarantinedTask

	nQuarantined atomic.Int64 // len(quarantined), readable without the lock
	retrying     atomic.Int64 // tasks currently holding a retry map entry
	panics       atomic.Int64
	retries      atomic.Int64
	restarts     atomic.Int64 // worker-loop restarts (engine-level panics)
}

// recordPanic registers one caught handler panic and decides the task's
// fate: retry (true, with the attempt number) or quarantine (false).
func (fs *faultState) recordPanic(t task.Task, worker int, pv any, policy RetryPolicy) (attempt int, retry bool) {
	fs.panics.Add(1)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.attempts == nil {
		fs.attempts = make(map[task.Task]int)
	}
	if _, ok := fs.attempts[t]; !ok {
		fs.retrying.Add(1)
	}
	fs.attempts[t]++
	attempt = fs.attempts[t]
	if attempt < policy.MaxAttempts {
		fs.retries.Add(1)
		return attempt, true
	}
	delete(fs.attempts, t)
	fs.retrying.Add(-1)
	fs.quarantined = append(fs.quarantined, QuarantinedTask{
		Task: t, Worker: worker, Attempts: attempt, Panic: pv, Time: time.Now(),
	})
	fs.nQuarantined.Add(1)
	return attempt, false
}

// clearRetry forgets a task's attempt count after it finally succeeded, so
// the map only holds tasks currently cycling through retries. The caller
// gates on fs.retrying, so the lock is only taken during fault windows.
func (fs *faultState) clearRetry(t task.Task) {
	fs.mu.Lock()
	if _, ok := fs.attempts[t]; ok {
		delete(fs.attempts, t)
		fs.retrying.Add(-1)
	}
	fs.mu.Unlock()
}

// snapshot copies the quarantine list.
func (fs *faultState) snapshot() []QuarantinedTask {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]QuarantinedTask(nil), fs.quarantined...)
}

// WorkerState is one worker's row in a StallError: the race-safe view of
// where the fleet was when the deadline hit.
type WorkerState struct {
	ID        int
	Processed int64 // tasks retired by this worker
	IdleParks int64 // park episodes so far
	Spills    int64 // overflow spills landed at this worker's endpoint
	Parked    bool  // currently blocked in the park/wake handshake
}

// StallError is the diagnostic Drain, Stop, and the job-scoped waits return
// instead of blocking forever: the deadline (or the liveness watchdog) fired
// while work was still outstanding. It wraps the triggering error
// (ctx.Err(), or ErrStalled for the watchdog) and carries enough engine
// state to tell a wedged fleet from a slow one — per-worker progress and
// park state, the conservation ledger, and the submission epoch.
//
// An engine-wide stall (Engine.Drain, Stop) reports the whole fleet's
// ledger: every tenant's work counts toward Outstanding. A job-scoped stall
// (Job.Drain, Job.Cancel) sets JobScoped and identifies the blocking tenant:
// Job/JobName name it and the ledger fields hold that job's terms only, so
// one stuck tenant is distinguishable from a wedged fleet.
type StallError struct {
	Op  string // "drain", "stop", or "drain-job"
	Err error  // ctx.Err() or ErrStalled

	// JobScoped marks a single-tenant wait; Job and JobName then identify
	// the blocking job, and the ledger fields below are its terms alone.
	JobScoped bool
	Job       task.JobID
	JobName   string

	Outstanding int64
	Submitted   int64
	Processed   int64
	Quarantined int64
	Cancelled   int64
	Epoch       uint64 // submission epochs so far (park/wake generations)
	Workers     []WorkerState
}

func (e *StallError) Error() string {
	parked := 0
	for _, w := range e.Workers {
		if w.Parked {
			parked++
		}
	}
	if e.JobScoped {
		return fmt.Sprintf(
			"runtime: %s stalled (%v): job %d (%s) blocking with outstanding %d, submitted %d, processed %d, quarantined %d, cancelled %d; %d/%d workers parked",
			e.Op, e.Err, e.Job, e.JobName, e.Outstanding, e.Submitted,
			e.Processed, e.Quarantined, e.Cancelled, parked, len(e.Workers))
	}
	return fmt.Sprintf(
		"runtime: %s stalled (%v): all jobs' outstanding %d, submitted %d, processed %d, quarantined %d, epoch %d, %d/%d workers parked",
		e.Op, e.Err, e.Outstanding, e.Submitted, e.Processed, e.Quarantined,
		e.Epoch, parked, len(e.Workers))
}

// Unwrap exposes the triggering error, so errors.Is(err, context.Canceled)
// and friends keep working on the wrapped diagnostic.
func (e *StallError) Unwrap() error { return e.Err }

// ErrStalled is the error a StallError wraps when Config.StallTimeout fired
// (no progress for the configured window), as opposed to ctx expiry.
var ErrStalled = fmt.Errorf("runtime: no progress within the stall timeout")

// stallError assembles the diagnostic from the engine's race-safe state.
func (e *Engine) stallError(op string, cause error) *StallError {
	se := &StallError{
		Op:          op,
		Err:         cause,
		Outstanding: e.outstanding.Load(),
		Submitted:   e.submitted.Load(),
		Quarantined: e.faults.nQuarantined.Load(),
		Epoch:       e.epoch.Load(),
		Workers:     make([]WorkerState, len(e.workers)),
	}
	for i := range e.workers {
		me := &e.workers[i]
		ws := WorkerState{
			ID:        i,
			Processed: me.pubProcessed.Load(),
			IdleParks: me.pubIdleParks.Load(),
			Spills:    e.transport.Spills(i),
			Parked:    me.parked.Load(),
		}
		se.Workers[i] = ws
		se.Processed += ws.Processed
		se.Cancelled += me.pubCancelled.Load()
	}
	return se
}

// stallJobError assembles the job-scoped diagnostic: the fleet's worker rows
// (the workers are shared) with the blocking job's own ledger terms.
func (e *Engine) stallJobError(op string, cause error, js *jobState) *StallError {
	se := e.stallError(op, cause)
	se.Op = op
	se.JobScoped = true
	se.Job = js.id
	se.JobName = js.name
	se.Outstanding = js.outstanding.Load()
	se.Submitted = js.submitted.Load()
	se.Processed = js.processed.Load()
	se.Quarantined = js.quarantined.Load()
	se.Cancelled = js.cancelledTasks.Load()
	return se
}

// Quarantined returns a copy of the poison-task list: every task that
// exhausted its retry budget. Safe from any goroutine at any lifecycle
// stage; the engine retires quarantined tasks from the outstanding count,
// so Drain completes even when tasks are poisoned.
func (e *Engine) Quarantined() []QuarantinedTask { return e.faults.snapshot() }
