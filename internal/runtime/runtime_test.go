package runtime

import (
	"testing"

	"hdcps/internal/bag"
	"hdcps/internal/drift"
	"hdcps/internal/graph"
	"hdcps/internal/workload"
)

func TestNativeAllWorkloads(t *testing.T) {
	g := graph.Road(16, 16, 3)
	for _, wname := range workload.Names() {
		w, err := workload.New(wname, g)
		if err != nil {
			t.Fatal(err)
		}
		res := Run(w, DefaultConfig(4))
		if res.TasksProcessed <= 0 {
			t.Errorf("%s: no tasks processed", wname)
		}
		if err := w.Verify(); err != nil {
			t.Errorf("%s: %v", wname, err)
		}
	}
}

func TestNativeDenseGraph(t *testing.T) {
	g := graph.Cage(600, 10, 24, 3)
	for _, wname := range []string{"sssp", "pagerank", "color"} {
		w, _ := workload.New(wname, g)
		res := Run(w, DefaultConfig(4))
		if err := w.Verify(); err != nil {
			t.Errorf("%s: %v", wname, err)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%s: no elapsed time", wname)
		}
	}
}

func TestNativeSingleWorker(t *testing.T) {
	g := graph.Road(12, 12, 3)
	w, _ := workload.New("sssp", g)
	res := Run(w, Config{Workers: 1})
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.TasksProcessed <= 0 {
		t.Fatal("no tasks")
	}
}

func TestNativeConfigVariants(t *testing.T) {
	g := graph.Road(14, 14, 9)
	variants := map[string]Config{
		"no-bags":    {Workers: 3, Bags: bag.Policy{Mode: bag.Never}, UseTDF: true},
		"always":     {Workers: 3, Bags: func() bag.Policy { p := bag.DefaultPolicy(); p.Mode = bag.Always; return p }(), UseTDF: true},
		"fixed-tdf":  {Workers: 3, FixedTDF: 100},
		"small-ring": {Workers: 3, RingSize: 4, UseTDF: true},
		"tiny-intvl": {Workers: 3, UseTDF: true, Drift: drift.Config{SampleInterval: 10}},
	}
	for name, cfg := range variants {
		w, _ := workload.New("sssp", g)
		res := Run(w, cfg)
		if err := w.Verify(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if name == "tiny-intvl" && len(res.TDFTrace) == 0 {
			t.Errorf("%s: controller never updated", name)
		}
	}
}

func TestNativeTDFAdaptation(t *testing.T) {
	g := graph.Cage(800, 12, 30, 7)
	w, _ := workload.New("sssp", g)
	cfg := DefaultConfig(4)
	cfg.Drift = drift.Config{SampleInterval: 25}
	res := Run(w, cfg)
	if len(res.TDFTrace) == 0 {
		t.Fatal("no TDF updates despite small sample interval")
	}
	if len(res.DriftTrace) != len(res.TDFTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(res.DriftTrace), len(res.TDFTrace))
	}
	for _, d := range res.DriftTrace {
		if d < 0 {
			t.Fatalf("negative drift %v", d)
		}
	}
}

func TestRunAsStats(t *testing.T) {
	g := graph.Road(10, 10, 1)
	w, _ := workload.New("bfs", g)
	r := RunAsStats(w, DefaultConfig(2))
	if r.Scheduler != "native-hdcps" || r.CompletionTime <= 0 || r.Cores != 2 {
		t.Fatalf("stats adaptation wrong: %+v", r)
	}
	if r.EdgesExamined <= 0 {
		t.Fatalf("EdgesExamined dropped in stats adaptation: %+v", r)
	}
}
