package runtime

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"hdcps/internal/graph"
	"hdcps/internal/obs"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// leafWorkload processes every task without emitting children, so the exact
// number of processed tasks equals the number submitted — the tightest
// workload for counter-consistency and snapshot-coherence assertions.
type leafWorkload struct {
	g *graph.CSR
}

func newLeafWorkload() *leafWorkload { return &leafWorkload{g: graph.Road(4, 4, 1)} }

func (w *leafWorkload) Name() string              { return "leaf" }
func (w *leafWorkload) Graph() *graph.CSR         { return w.g }
func (w *leafWorkload) Reset()                    {}
func (w *leafWorkload) InitialTasks() []task.Task { return []task.Task{{Node: 0, Prio: 0}} }
func (w *leafWorkload) Clone() workload.Workload  { return &leafWorkload{g: w.g} }
func (w *leafWorkload) Verify() error             { return nil }
func (w *leafWorkload) Process(t task.Task, emit func(task.Task)) int {
	return 1
}

// Concurrent-Submit hammer with a recorder attached: after Drain the
// recorder's processed total, the engine snapshot, and the number of tasks
// submitted must all agree exactly. Run under -race this also validates the
// recorder's hot-path memory accesses.
func TestEngineObsConcurrentSubmitCounts(t *testing.T) {
	w := newLeafWorkload()
	cfg := DefaultConfig(4)
	// SampleEvery 1: every task samples, so the edges counter (refreshed on
	// sample boundaries) is exact too, not just tasks-processed.
	rec := obs.New(obs.Config{Workers: cfg.Workers, RingSize: 128, SampleEvery: 1})
	cfg.Obs = rec
	e := NewEngine(w, cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)

	const submitters = 8
	const perSubmitter = 200
	const batch = 5
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ts := make([]task.Task, batch)
			for i := range ts {
				ts[i] = task.Task{Node: 0, Prio: int64(s*batch + i)}
			}
			for i := 0; i < perSubmitter; i++ {
				if err := e.Submit(ts...); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	const submitted = int64(submitters * perSubmitter * batch)

	if got := rec.Total(obs.CTasksSubmitted); got != submitted {
		t.Errorf("recorder submitted = %d, want %d", got, submitted)
	}
	if got := rec.Total(obs.CTasksProcessed); got != submitted {
		t.Errorf("recorder processed = %d, want %d (leaf workload: processed == submitted)", got, submitted)
	}
	snap := e.Snapshot()
	if snap.TasksProcessed != submitted {
		t.Errorf("snapshot processed = %d, want %d", snap.TasksProcessed, submitted)
	}
	if snap.Outstanding != 0 {
		t.Errorf("outstanding = %d after Drain", snap.Outstanding)
	}
	if got := rec.Total(obs.CEdgesExamined); got != submitted {
		t.Errorf("edges = %d, want %d (leaf examines 1 per task)", got, submitted)
	}
	if rec.EventCount() == 0 {
		t.Error("no events recorded across the hammer")
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}

// Snapshot's coherence contract: at any instant, TasksProcessed +
// Outstanding >= tasks submitted before the read. Before the pubProcessed
// publish was moved ahead of task retirement, a mid-drain Snapshot could
// observe the retirement (Outstanding down) without the processed count
// (stale until the next flush/park) and under-count — this pins the fix.
func TestEngineSnapshotCoherentMidDrain(t *testing.T) {
	w := newLeafWorkload()
	// One worker with a long flush interval maximizes the staleness window
	// the old code exposed: pubProcessed lagged by up to FlushInterval tasks.
	cfg := Config{Workers: 1, RingSize: 256, FlushInterval: 10000}
	rec := obs.New(obs.Config{Workers: 1, SampleEvery: -1})
	cfg.Obs = rec
	e := NewEngine(w, cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)

	ts := make([]task.Task, 64)
	var submitted int64
	for round := 0; round < 200; round++ {
		if err := e.Submit(ts...); err != nil {
			t.Fatal(err)
		}
		submitted += int64(len(ts))
		// Interleave reads with the worker mid-drain.
		for probe := 0; probe < 4; probe++ {
			snap := e.Snapshot()
			if sum := snap.TasksProcessed + snap.Outstanding; sum < submitted {
				t.Fatalf("round %d: processed(%d) + outstanding(%d) = %d < submitted(%d): snapshot lost tasks",
					round, snap.TasksProcessed, snap.Outstanding, sum, submitted)
			}
		}
	}
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.TasksProcessed != submitted || snap.Outstanding != 0 {
		t.Errorf("after Drain: processed=%d outstanding=%d, want processed=%d outstanding=0",
			snap.TasksProcessed, snap.Outstanding, submitted)
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}

// The disabled-observability fast path must stay allocation-free per task:
// with a nil recorder, Submit+process+Drain of a pre-built batch amortizes
// to (near) zero allocations per task.
func TestEngineNilRecorderZeroAllocPerTask(t *testing.T) {
	w := newLeafWorkload()
	// Single worker: Submit's multi-worker scatter path allocates buckets,
	// the 1-worker path injects directly.
	cfg := Config{Workers: 1, RingSize: 512}
	e := NewEngine(w, cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	batch := make([]task.Task, 256) // within ring capacity: no spill allocs

	// Warm up ring/overflow/queue capacity before measuring.
	for i := 0; i < 4; i++ {
		if err := e.Submit(batch...); err != nil {
			t.Fatal(err)
		}
		if err := e.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := e.Submit(batch...); err != nil {
			t.Fatal(err)
		}
		if err := e.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	// Drain's slow path may arm a ticker (a couple of allocations) on a
	// loaded machine; amortized per task anything near zero passes, and a
	// recorder accidentally wired into the nil path would cost far more.
	if perTask := allocs / float64(len(batch)); perTask > 0.2 {
		t.Errorf("nil-recorder path allocates %.3f objects/task (%.1f per batch), want ~0", perTask, allocs)
	}
}

// WriteTrace emits the full JSONL trace: recorder meta/counters/events plus
// the control plane's per-interval series.
func TestEngineWriteTrace(t *testing.T) {
	g := graph.Road(24, 24, 5)
	w, err := workload.New("sssp", g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.Drift.SampleInterval = 16
	rec := obs.New(obs.Config{Workers: cfg.Workers})
	cfg.Obs = rec
	e := NewEngine(w, cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	if err := e.Submit(w.InitialTasks()...); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if e.Obs() != rec {
		t.Fatal("Obs() did not return the attached recorder")
	}
	var buf bytes.Buffer
	if err := e.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"type":"meta"`, `"type":"counters"`, `"type":"control"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	if len(e.ControlTrace()) == 0 {
		t.Error("ControlTrace is empty despite a tight sample interval")
	}
}
