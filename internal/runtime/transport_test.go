package runtime

import (
	"sync"
	"testing"
	"time"

	"hdcps/internal/graph"
	"hdcps/internal/task"
)

func TestTransportBatchingAndFlush(t *testing.T) {
	tr := newRingTransport(2, 8, 4, 0, nil)
	for i := 0; i < 3; i++ {
		tr.Send(0, 1, task.Task{Node: graph.NodeID(i)})
	}
	if got := tr.Pending(0); got != 3 {
		t.Fatalf("pending %d, want 3", got)
	}
	if got := tr.Recv(1, nil); len(got) != 0 {
		t.Fatalf("partial batch delivered early: %v", got)
	}
	// The 4th send fills the batch and auto-ships it.
	tr.Send(0, 1, task.Task{Node: 3})
	if got := tr.Pending(0); got != 0 {
		t.Fatalf("pending %d after batch ship, want 0", got)
	}
	got := tr.Recv(1, nil)
	if len(got) != 4 {
		t.Fatalf("received %d tasks, want 4", len(got))
	}
	for i, tk := range got {
		if tk.Node != graph.NodeID(i) {
			t.Fatalf("task %d out of order: %v", i, tk.Node)
		}
	}

	// Partial batches ship on Flush.
	tr.Send(1, 0, task.Task{Node: 9})
	tr.Flush(1)
	if got := tr.Pending(1); got != 0 {
		t.Fatalf("pending %d after flush, want 0", got)
	}
	if got := tr.Recv(0, nil); len(got) != 1 || got[0].Node != 9 {
		t.Fatalf("flush delivery wrong: %v", got)
	}
}

func TestTransportOverflowSpill(t *testing.T) {
	tr := newRingTransport(2, 2, 64, 0, nil) // 2-slot ring
	ts := make([]task.Task, 10)
	for i := range ts {
		ts[i].Node = graph.NodeID(i)
	}
	tr.Inject(1, ts)
	if tr.Spills(1) == 0 {
		t.Fatal("10 tasks through a 2-slot ring must spill")
	}
	got := tr.Recv(1, nil)
	if len(got) != 10 {
		t.Fatalf("received %d tasks, want 10 (ring + overflow)", len(got))
	}
	seen := map[graph.NodeID]bool{}
	for _, tk := range got {
		seen[tk.Node] = true
	}
	if len(seen) != 10 {
		t.Fatalf("duplicate or lost tasks: %d unique of 10", len(seen))
	}
}

// Concurrent injectors racing the owning drainer: no task may be lost or
// duplicated (run under -race for the memory-model half of the claim).
func TestTransportConcurrentInject(t *testing.T) {
	tr := newRingTransport(2, 4, 8, 0, nil)
	const senders = 4
	const perSender = 500
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				tr.Inject(1, []task.Task{{Node: graph.NodeID(s*perSender + i)}})
			}
		}(s)
	}
	seen := map[graph.NodeID]bool{}
	deadline := time.Now().Add(30 * time.Second)
	var buf []task.Task
	for len(seen) < senders*perSender && time.Now().Before(deadline) {
		buf = tr.Recv(1, buf[:0])
		for _, tk := range buf {
			if seen[tk.Node] {
				t.Fatalf("task %v delivered twice", tk.Node)
			}
			seen[tk.Node] = true
		}
	}
	wg.Wait()
	if len(seen) != senders*perSender {
		t.Fatalf("received %d unique tasks, want %d", len(seen), senders*perSender)
	}
}
