package runtime

// PR-5 coverage: the two-level local queue behind the engine (QueueKind
// selection, spill/fallback counters) and the batched dequeue→process loop
// (restart-requeue of an interrupted batch, correctness across workloads
// and batch sizes).

import (
	"sync/atomic"
	"testing"

	"hdcps/internal/graph"
	"hdcps/internal/obs"
	"hdcps/internal/pq"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// TestQueueKindSelection pins the QueueKind → concrete queue mapping,
// including the devirtualized tl view the engine's hot path relies on.
func TestQueueKindSelection(t *testing.T) {
	cases := []struct {
		cfg      Config
		twoLevel bool
		multi    bool
	}{
		{Config{}, true, false},
		{Config{QueueKind: QueueTwoLevel, HotBufferCap: 16}, true, false},
		{Config{QueueKind: QueueHeap}, false, false},
		{Config{QueueKind: QueueDHeap}, false, false},
		{Config{QueueKind: QueueDHeap, HeapArity: 2}, false, false},
		{Config{QueueKind: QueueMultiQueue}, false, true},
		{Config{QueueKind: QueueMultiQueue, MQFactor: 2, MQStickiness: 4}, false, true},
		{Config{Queue: func() LocalQueue { return pq.NewBinaryHeap(8) }}, false, false},
	}
	for _, c := range cases {
		q := newLocalQueue(c.cfg.withDefaults())
		_, isTL := q.(*pq.TwoLevel)
		if isTL != c.twoLevel {
			t.Errorf("QueueKind %q: twolevel=%v, want %v", c.cfg.QueueKind, isTL, c.twoLevel)
		}
		_, isMQ := q.(*pq.MQHandle)
		if isMQ != c.multi {
			t.Errorf("QueueKind %q: multiqueue=%v, want %v", c.cfg.QueueKind, isMQ, c.multi)
		}
		// Whatever the shape, it must behave as a priority queue.
		q.Push(task.Task{Node: 2, Prio: 20})
		q.Push(task.Task{Node: 1, Prio: 10})
		if got, ok := q.Pop(); !ok || got.Node != 1 {
			t.Errorf("QueueKind %q: first pop = %+v/%v, want node 1", c.cfg.QueueKind, got, ok)
		}
	}
}

// TestEngineQueueKinds runs every workload to completion under each queue
// kind and a range of batch sizes: results must verify exactly and the
// conservation ledger must balance regardless of the queue shape.
func TestEngineQueueKinds(t *testing.T) {
	road := graph.Road(24, 24, 3)
	web := graph.Web(400, 5)
	cases := []struct {
		wl string
		g  *graph.CSR
	}{
		{"sssp", road}, {"bfs", road}, {"astar", road},
		{"color", web}, {"pagerank", web},
	}
	for _, kind := range QueueKinds() {
		for _, batchK := range []int{1, 8} {
			for _, c := range cases {
				w, err := workload.New(c.wl, c.g)
				if err != nil {
					t.Fatal(err)
				}
				cfg := DefaultConfig(4)
				cfg.QueueKind = kind
				cfg.BatchK = batchK
				res := Run(w, cfg)
				if err := w.Verify(); err != nil {
					t.Errorf("%s/%s/batch%d: %v", kind, c.wl, batchK, err)
				}
				if res.TasksProcessed <= 0 {
					t.Errorf("%s/%s/batch%d: no tasks processed", kind, c.wl, batchK)
				}
			}
		}
	}
}

// TestEngineQueueCounters checks the two-level health counters end to end:
// a monotone workload (sssp) must spill without falling back, while the
// negative-priority workloads (pagerank, color) must trip the fallback
// detector on at least one worker — and never lose work doing it.
func TestEngineQueueCounters(t *testing.T) {
	t.Run("monotone-spills", func(t *testing.T) {
		w, err := workload.New("sssp", graph.Road(48, 48, 3))
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(w, DefaultConfig(4))
		_ = e.Submit(w.InitialTasks()...)
		_ = e.Start()
		if err := e.Drain(testCtx(t)); err != nil {
			t.Fatal(err)
		}
		snap := e.Snapshot()
		_ = e.Stop(testCtx(t))
		if err := w.Verify(); err != nil {
			t.Fatal(err)
		}
		if snap.HotSpills == 0 {
			t.Error("sssp on a 48x48 grid never spilled a 48-entry hot buffer")
		}
	})
	t.Run("anti-monotone-fallback", func(t *testing.T) {
		// A strictly decreasing priority stream (every child below its
		// parent) is the bucket store's worst case: the rewind storm must
		// migrate the queue to the fallback heap — and lose nothing.
		w := &antiMonotoneWorkload{depth: 4096}
		cfg := Config{Workers: 1, HotBufferCap: 4}
		e := NewEngine(w, cfg)
		_ = e.Submit(w.InitialTasks()...)
		_ = e.Start()
		if err := e.Drain(testCtx(t)); err != nil {
			t.Fatal(err)
		}
		snap := e.Snapshot()
		_ = e.Stop(testCtx(t))
		if snap.QueueFallbacks == 0 {
			t.Error("a strictly decreasing stream never tripped the bucket-store fallback")
		}
		if got := w.processed.Load(); got != int64(w.depth)+1 {
			t.Errorf("processed %d tasks, want %d (no loss across the migration)", got, w.depth+1)
		}
		if snap.Outstanding != 0 {
			t.Errorf("outstanding %d after drain", snap.Outstanding)
		}
	})
}

// antiMonotoneWorkload spawns a wide frontier whose priorities strictly
// decrease with depth — the adversarial stream for a monotone bucket store.
// Node n at priority -n spawns children n+1..n+3 (capped at depth), so the
// queue holds many tasks while every push rewinds below the current front.
type antiMonotoneWorkload struct {
	depth     int
	processed atomic.Int64
	seen      []atomic.Bool
}

func (w *antiMonotoneWorkload) Name() string      { return "anti-monotone" }
func (w *antiMonotoneWorkload) Graph() *graph.CSR { return nil }
func (w *antiMonotoneWorkload) Reset() {
	w.processed.Store(0)
	w.seen = make([]atomic.Bool, w.depth+1)
}
func (w *antiMonotoneWorkload) InitialTasks() []task.Task {
	return []task.Task{{Node: 0, Prio: 0}}
}
func (w *antiMonotoneWorkload) Process(t task.Task, emit func(task.Task)) int {
	if w.seen[t.Node].Swap(true) {
		return 0 // duplicate: already expanded
	}
	w.processed.Add(1)
	for c := int(t.Node) + 1; c <= int(t.Node)+3 && c <= w.depth; c++ {
		emit(task.Task{Node: graph.NodeID(c), Prio: -int64(c)})
	}
	return 1
}
func (w *antiMonotoneWorkload) Clone() workload.Workload {
	return &antiMonotoneWorkload{depth: w.depth}
}
func (w *antiMonotoneWorkload) Verify() error { return nil }

// TestBatchRestartRequeue pins the restart-requeue contract directly: a
// worker that dies mid-batch must, on restart, put the popped but
// not-yet-started tail back into its queue — and not the in-flight task.
func TestBatchRestartRequeue(t *testing.T) {
	w, err := workload.New("sssp", graph.Road(4, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w, Config{Workers: 1, BatchK: 8})
	me := &e.workers[0]
	for i := 0; i < 4; i++ {
		me.batch[i] = task.Task{Node: graph.NodeID(i), Prio: int64(i)}
	}
	// Simulate a crash while processing batch[1]: 0 done, 1 in flight.
	me.batchPos, me.batchLen = 1, 4
	e.stop.Store(true) // the restarted loop must exit right after the requeue
	e.runWorker(0)
	if me.batchLen != 0 {
		t.Fatalf("batchLen = %d after restart, want 0", me.batchLen)
	}
	var got []graph.NodeID
	for {
		tk, ok := me.qpop()
		if !ok {
			break
		}
		got = append(got, tk.Node)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("requeued tail = %v, want [2 3]", got)
	}
}

// panicOnceTransport wraps the stock transport and panics out of one Recv
// call mid-run: an engine-internal fault (not a task panic), which must
// restart the worker loop, not kill it — and the run must still finish
// exactly.
type panicOnceTransport struct {
	Transport
	recvs    atomic.Int64
	panicked atomic.Bool
}

func (p *panicOnceTransport) Recv(id int, dst []task.Task) []task.Task {
	if p.recvs.Add(1) == 40 && p.panicked.CompareAndSwap(false, true) {
		panic("injected transport fault")
	}
	return p.Transport.Recv(id, dst)
}

// TestEngineRestartMidRun injects one engine-level panic into a running
// batched fleet: the worker restarts (Snapshot still coherent, restart
// counted) and the workload completes with an exact result.
func TestEngineRestartMidRun(t *testing.T) {
	w, err := workload.New("bfs", graph.Road(48, 48, 5))
	if err != nil {
		t.Fatal(err)
	}
	pt := &panicOnceTransport{}
	cfg := DefaultConfig(4)
	cfg.NewTransport = func(c Config) Transport {
		pt.Transport = newRingTransport(c.Workers, c.RingSize, c.BatchSize, c.OverflowCap, c.Obs)
		return pt
	}
	e := NewEngine(w, cfg)
	_ = e.Submit(w.InitialTasks()...)
	_ = e.Start()
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	_ = e.Stop(testCtx(t))
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if !pt.panicked.Load() {
		t.Skip("fleet drained before the fault window (timing-dependent)")
	}
	if got := e.faults.restarts.Load(); got != 1 {
		t.Errorf("worker restarts = %d, want 1", got)
	}
}

// TestEngineRankCounters runs every queue kind with observability on and
// checks the scheduling-quality counters end to end: each kind must sample
// its pops, the strict kinds must report exactly zero inversions (the bench
// gate's structural canary), multiqueue's rank error must stay bounded —
// and without a recorder the counters must stay untouched.
func TestEngineRankCounters(t *testing.T) {
	run := func(kind string, rec *obs.Recorder) Snapshot {
		w, err := workload.New("sssp", graph.Road(32, 32, 3))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(4)
		cfg.QueueKind = kind
		cfg.Obs = rec
		e := NewEngine(w, cfg)
		_ = e.Submit(w.InitialTasks()...)
		_ = e.Start()
		if err := e.Drain(testCtx(t)); err != nil {
			t.Fatal(err)
		}
		snap := e.Snapshot()
		_ = e.Stop(testCtx(t))
		if err := w.Verify(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		return snap
	}
	for _, kind := range QueueKinds() {
		t.Run(kind, func(t *testing.T) {
			rec := obs.New(obs.Config{Workers: 4, SampleEvery: 4})
			snap := run(kind, rec)
			if snap.RankSamples == 0 {
				t.Fatal("no pops were rank-sampled with obs enabled")
			}
			if rec.Total(obs.CRankSamples) != snap.RankSamples {
				t.Errorf("recorder rank_samples = %d, snapshot %d",
					rec.Total(obs.CRankSamples), snap.RankSamples)
			}
			if kind == QueueMultiQueue {
				if snap.PrioInversions > 0 && snap.RankErrorMax <= 0 {
					t.Error("inversions counted but max rank error never published")
				}
				// The witness rank is bounded by the shard count by construction.
				if max, shards := snap.RankErrorMax, int64(4*4); max > shards {
					t.Errorf("rank error %d exceeds the %d-shard witness bound", max, shards)
				}
				return
			}
			if snap.PrioInversions != 0 || snap.RankErrorSum != 0 {
				t.Errorf("strict kind %s reported %d inversions (sum %d): queue bug",
					kind, snap.PrioInversions, snap.RankErrorSum)
			}
		})
	}
	t.Run("disabled", func(t *testing.T) {
		snap := run(QueueMultiQueue, nil)
		if snap.RankSamples != 0 || snap.PrioInversions != 0 {
			t.Errorf("rank counters moved without a recorder: %+v", snap)
		}
	})
}
