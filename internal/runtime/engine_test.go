package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hdcps/internal/graph"
	"hdcps/internal/workload"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// Submit-while-running: a drained (parked) fleet must wake on Submit and
// reach quiescence again, every time — the lost-wakeup regression test for
// the park/wake handshake.
func TestEngineSubmitWhileRunning(t *testing.T) {
	g := graph.Road(16, 16, 3)
	w, err := workload.New("sssp", g)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w, DefaultConfig(4))
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	initial := w.InitialTasks()
	const rounds = 50
	for i := 0; i < rounds; i++ {
		if err := e.Submit(initial...); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if err := e.Drain(ctx); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	snap := e.Snapshot()
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != rounds {
		t.Errorf("epoch %d, want %d", snap.Epoch, rounds)
	}
	if snap.Outstanding != 0 {
		t.Errorf("outstanding %d after drain", snap.Outstanding)
	}
	res := e.Result()
	if res.TasksProcessed <= 0 {
		t.Fatal("no tasks processed")
	}
	var parks int64
	for _, ws := range e.Snapshot().Workers {
		parks += ws.IdleParks
	}
	if parks == 0 {
		t.Error("fleet never parked across 50 drain cycles")
	}
}

// A single-worker engine exercises the park/wake path hardest: every drain
// parks the only worker, and every submit must wake it.
func TestEngineSingleWorkerSubmitCycles(t *testing.T) {
	g := graph.Road(10, 10, 7)
	w, err := workload.New("bfs", g)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w, Config{Workers: 1})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	initial := w.InitialTasks()
	for i := 0; i < 200; i++ {
		if err := e.Submit(initial...); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if err := e.Drain(ctx); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Stop with an already-cancelled context must return promptly with the
// context's error while the fleet winds down in the background.
func TestEngineStopCancelledContext(t *testing.T) {
	g := graph.Road(64, 64, 7)
	w, err := workload.New("sssp", g)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w, DefaultConfig(2))
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(w.InitialTasks()...); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := e.Stop(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Stop(cancelled) = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Fatalf("Stop(cancelled) took %v, want prompt return", d)
	}
	// A second Stop with a live context joins the winding-down fleet.
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	// Work was abandoned mid-run: Submit and Drain must now refuse.
	if err := e.Submit(w.InitialTasks()...); err != ErrStopped {
		t.Fatalf("Submit after Stop = %v, want ErrStopped", err)
	}
}

// Concurrent Submit from many goroutines racing the draining workers; run
// under -race this is the lifecycle's data-race hammer.
func TestEngineConcurrentSubmit(t *testing.T) {
	g := graph.Road(12, 12, 5)
	w, err := workload.New("bfs", g)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w, DefaultConfig(3))
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	initial := w.InitialTasks()
	const submitters = 8
	const perSubmitter = 100
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				if err := e.Submit(initial...); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	ctx := testCtx(t)
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	res := e.Result()
	// Every submitted instance of the seed task must have been processed.
	if min := int64(submitters * perSubmitter * len(initial)); res.TasksProcessed < min {
		t.Fatalf("processed %d tasks, want >= %d", res.TasksProcessed, min)
	}
	if got := e.Snapshot().Epoch; got != submitters*perSubmitter {
		t.Fatalf("epoch %d, want %d", got, submitters*perSubmitter)
	}
}

// Snapshot must be readable while workers are mid-run and must agree with
// Result once the engine has stopped.
func TestEngineSnapshot(t *testing.T) {
	g := graph.Road(32, 32, 9)
	w, err := workload.New("pagerank", g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4)
	cfg.RingSize = 8 // force overflow spills so the counter moves
	e := NewEngine(w, cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(w.InitialTasks()...); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var live Snapshot
	for {
		live = e.Snapshot()
		if live.TasksProcessed > 0 || time.Now().After(deadline) {
			break
		}
	}
	if live.TasksProcessed <= 0 {
		t.Fatal("snapshot never observed progress")
	}
	if len(live.Workers) != 4 {
		t.Fatalf("snapshot has %d workers, want 4", len(live.Workers))
	}
	ctx := testCtx(t)
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	final := e.Snapshot()
	res := e.Result()
	if final.TasksProcessed != res.TasksProcessed {
		t.Errorf("snapshot tasks %d != result tasks %d", final.TasksProcessed, res.TasksProcessed)
	}
	if final.BagsCreated != res.BagsCreated {
		t.Errorf("snapshot bags %d != result bags %d", final.BagsCreated, res.BagsCreated)
	}
	if final.EdgesExamined != res.EdgesExamined || res.EdgesExamined <= 0 {
		t.Errorf("edges: snapshot %d, result %d", final.EdgesExamined, res.EdgesExamined)
	}
	var spills int64
	for _, ws := range final.Workers {
		spills += ws.OverflowSpills
	}
	if spills == 0 {
		t.Error("8-slot rings under pagerank never spilled to overflow")
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Drain must honor context cancellation when quiescence is not reached.
func TestEngineDrainCancelled(t *testing.T) {
	g := graph.Road(64, 64, 11)
	w, err := workload.New("sssp", g)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w, DefaultConfig(2))
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(w.InitialTasks()...); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	// The run may legitimately finish inside Drain's spin phase on a fast
	// machine (nil); anything other than that or Canceled is a bug.
	if err := e.Drain(cancelled); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain(cancelled) = %v", err)
	}
	ctx := testCtx(t)
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestEngineLifecycleErrors(t *testing.T) {
	g := graph.Road(8, 8, 1)
	w, err := workload.New("bfs", g)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w, Config{Workers: 2})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("second Start must error")
	}
	ctx := testCtx(t)
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatalf("repeated Stop must be idempotent, got %v", err)
	}

	// A never-started engine stops cleanly.
	e2 := NewEngine(w.Clone(), Config{Workers: 2})
	if err := e2.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e2.Submit(w.InitialTasks()...); err != ErrStopped {
		t.Fatalf("Submit on stopped engine = %v, want ErrStopped", err)
	}
}
