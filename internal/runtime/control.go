package runtime

// The control layer is the drift-feedback plane of §III-C: workers report
// the priority of their latest task (Algorithm 3's send side), the layer
// assembles per-interval snapshots, runs the Algorithm 2 controller, and
// publishes the resulting TDF for every dispatch decision to read with one
// atomic load. It is the only part of the runtime with any cross-worker
// policy state, which is why it gets its own file and tests.

import (
	"math"
	"sync"
	"sync/atomic"

	"hdcps/internal/drift"
	"hdcps/internal/obs"
	"hdcps/internal/task"
)

// neverReported is the sentinel a worker's report slot holds before its
// first report. It is excluded from drift snapshots: feeding the zero value
// of an idle slot into Equation 1 would fabricate a huge drift term (the
// reference is the minimum report) and skew the controller's first
// adjustments — exactly what happened when a fast worker reported twice
// before a slow one reported at all.
const neverReported = int64(1) << 62

// controlPlane owns drift reporting and TDF propagation for one engine.
type controlPlane struct {
	useTDF  bool
	workers int
	rec     *obs.Recorder // nil when observability is disabled

	// reports is the per-job report matrix: reports[job][worker] holds the
	// worker's latest priority within that job (atomic access), seeded with
	// neverReported. Jobs have independent priority domains (their own graphs
	// and scales), so drift must be measured within a job and only then
	// combined — one flat row would fabricate drift between tenants whose
	// priorities are merely on different scales. The matrix is COW: addJob
	// publishes a grown copy, readers pay one atomic pointer load.
	reports     atomic.Pointer[[][]int64]
	reportCount atomic.Int64
	// clamped counts out-of-range priority reports rejected at the
	// boundary (negative, or colliding with the never-reported sentinel)
	// before they could corrupt the drift signal.
	clamped atomic.Int64

	mu   sync.Mutex // serializes controller updates and history reads
	ctrl *drift.Controller

	// tdf is the propagated task-distribution factor in percent; every
	// dispatch reads it with one atomic load (the paper's non-blocking
	// propagation: workers keep using the previous value until the master's
	// update lands).
	tdf atomic.Int64
}

// newControlPlane builds the plane for cfg.Workers workers. With UseTDF off
// the TDF is pinned to FixedTDF (default 100: always distribute).
func newControlPlane(cfg Config) *controlPlane {
	cp := &controlPlane{
		useTDF:  cfg.UseTDF,
		workers: cfg.Workers,
		rec:     cfg.Obs,
		ctrl:    drift.NewController(cfg.Drift),
	}
	rows := [][]int64{cp.newRow()}
	cp.reports.Store(&rows)
	if cfg.UseTDF {
		cp.tdf.Store(int64(cp.ctrl.TDF()))
	} else {
		tdf := int64(cfg.FixedTDF)
		if tdf <= 0 {
			tdf = 100
		}
		cp.tdf.Store(tdf)
	}
	return cp
}

// TDF returns the current task-distribution factor in percent.
func (cp *controlPlane) TDF() int64 { return cp.tdf.Load() }

// newRow builds one job's report row, every slot at the sentinel.
func (cp *controlPlane) newRow() []int64 {
	row := make([]int64, cp.workers)
	for i := range row {
		row[i] = neverReported
	}
	return row
}

// addJob grows the report matrix by one job row. Called under the engine's
// jobMu before the job becomes visible in the job table, so no Report for
// the new JobID can precede its row.
func (cp *controlPlane) addJob() {
	cp.mu.Lock()
	rows := *cp.reports.Load()
	grown := make([][]int64, len(rows)+1)
	copy(grown, rows)
	grown[len(rows)] = cp.newRow()
	cp.reports.Store(&grown)
	cp.mu.Unlock()
}

// SampleInterval returns the per-worker report spacing in processed tasks.
func (cp *controlPlane) SampleInterval() int64 {
	return int64(cp.ctrl.Config().SampleInterval)
}

// Report implements Algorithm 3's send plus the master-side Algorithm 2
// step: the reporting worker stores its latest priority in its slot of the
// task's job row, and whichever report completes an interval (one report per
// worker's worth of sends) assembles the snapshot and runs the controller.
// Drift is measured within each job (priorities of different tenants live on
// unrelated scales) and the per-job drifts are combined weighted by how many
// workers reported for the job, so a tenant carrying most of the fleet's
// work dominates the feedback signal. The published reference is the
// dominant job's. Workers that have never reported for a job are excluded
// from that job's snapshot rather than contributing stale zeros.
func (cp *controlPlane) Report(id int, job task.JobID, prio int64) {
	// Validate at the boundary: a handler that emits a negative priority or
	// one colliding with the never-reported sentinel would fabricate a huge
	// drift term (Equation 1's reference is the minimum report) and walk
	// the controller's TDF off a corrupted signal. Clamp and count instead.
	if prio < 0 || prio >= neverReported {
		if prio < 0 {
			prio = 0
		} else {
			prio = neverReported - 1
		}
		cp.clamped.Add(1)
		if rec := cp.rec; rec != nil {
			rec.Add(id, obs.CDriftClamped, 1)
		}
	}
	rows := *cp.reports.Load()
	if int(job) >= len(rows) {
		job = 0
	}
	atomic.StoreInt64(&rows[job][id], prio)
	if rec := cp.rec; rec != nil {
		rec.Add(id, obs.CDriftReports, 1)
		rec.Event(id, obs.EvDriftReport, prio, int64(job), 0)
	}
	if cp.reportCount.Add(1) < int64(cp.workers) {
		return
	}
	cp.reportCount.Store(0)
	if !cp.useTDF {
		return
	}
	var (
		snapshot  = make([]int64, 0, cp.workers)
		driftSum  float64
		weightSum float64
		ref       int64
		refCount  int
	)
	for _, row := range rows {
		snapshot = snapshot[:0]
		for i := range row {
			if p := atomic.LoadInt64(&row[i]); p != neverReported {
				snapshot = append(snapshot, p)
			}
		}
		if len(snapshot) == 0 {
			continue
		}
		jref := drift.MinReference(snapshot)
		driftSum += drift.Drift(snapshot, jref) * float64(len(snapshot))
		weightSum += float64(len(snapshot))
		if len(snapshot) > refCount {
			refCount = len(snapshot)
			ref = jref
		}
	}
	if weightSum == 0 {
		return
	}
	pd := driftSum / weightSum
	cp.mu.Lock()
	tdf := cp.ctrl.UpdateWithRef(pd, ref)
	cp.mu.Unlock()
	cp.tdf.Store(int64(tdf))
	if rec := cp.rec; rec != nil {
		rec.Add(id, obs.CTDFSteps, 1)
		rec.Event(id, obs.EvTDFStep, int64(tdf), int64(math.Float64bits(pd)), ref)
	}
}

// Clamped reports how many out-of-range priority reports were clamped at
// the boundary so far.
func (cp *controlPlane) Clamped() int64 { return cp.clamped.Load() }

// History returns the controller's per-interval drift/TDF records. Safe to
// call while workers are still reporting.
func (cp *controlPlane) History() []drift.Record {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.ctrl.History()
}

// Series returns the control plane's time series — per-interval drift,
// reference priority, and TDF — the view that replaces eyeballing a
// point-in-time snapshot when studying the feedback loop. Safe to call
// while workers are still reporting.
func (cp *controlPlane) Series() []obs.ControlPoint {
	hist := cp.History()
	pts := make([]obs.ControlPoint, len(hist))
	for i, rec := range hist {
		pts[i] = obs.ControlPoint{Interval: i, Drift: rec.Drift, Ref: rec.Ref, TDF: rec.TDF}
	}
	return pts
}
