package runtime

// The control layer is the drift-feedback plane of §III-C: workers report
// the priority of their latest task (Algorithm 3's send side), the layer
// assembles per-interval snapshots, runs the Algorithm 2 controller, and
// publishes the resulting TDF for every dispatch decision to read with one
// atomic load. It is the only part of the runtime with any cross-worker
// policy state, which is why it gets its own file and tests.

import (
	"math"
	"sync"
	"sync/atomic"

	"hdcps/internal/drift"
	"hdcps/internal/obs"
)

// neverReported is the sentinel a worker's report slot holds before its
// first report. It is excluded from drift snapshots: feeding the zero value
// of an idle slot into Equation 1 would fabricate a huge drift term (the
// reference is the minimum report) and skew the controller's first
// adjustments — exactly what happened when a fast worker reported twice
// before a slow one reported at all.
const neverReported = int64(1) << 62

// controlPlane owns drift reporting and TDF propagation for one engine.
type controlPlane struct {
	useTDF bool
	rec    *obs.Recorder // nil when observability is disabled

	// reports holds each worker's latest priority (atomic access), seeded
	// with neverReported.
	reports     []int64
	reportCount atomic.Int64
	// clamped counts out-of-range priority reports rejected at the
	// boundary (negative, or colliding with the never-reported sentinel)
	// before they could corrupt the drift signal.
	clamped atomic.Int64

	mu   sync.Mutex // serializes controller updates and history reads
	ctrl *drift.Controller

	// tdf is the propagated task-distribution factor in percent; every
	// dispatch reads it with one atomic load (the paper's non-blocking
	// propagation: workers keep using the previous value until the master's
	// update lands).
	tdf atomic.Int64
}

// newControlPlane builds the plane for cfg.Workers workers. With UseTDF off
// the TDF is pinned to FixedTDF (default 100: always distribute).
func newControlPlane(cfg Config) *controlPlane {
	cp := &controlPlane{
		useTDF:  cfg.UseTDF,
		rec:     cfg.Obs,
		reports: make([]int64, cfg.Workers),
		ctrl:    drift.NewController(cfg.Drift),
	}
	for i := range cp.reports {
		cp.reports[i] = neverReported
	}
	if cfg.UseTDF {
		cp.tdf.Store(int64(cp.ctrl.TDF()))
	} else {
		tdf := int64(cfg.FixedTDF)
		if tdf <= 0 {
			tdf = 100
		}
		cp.tdf.Store(tdf)
	}
	return cp
}

// TDF returns the current task-distribution factor in percent.
func (cp *controlPlane) TDF() int64 { return cp.tdf.Load() }

// SampleInterval returns the per-worker report spacing in processed tasks.
func (cp *controlPlane) SampleInterval() int64 {
	return int64(cp.ctrl.Config().SampleInterval)
}

// Report implements Algorithm 3's send plus the master-side Algorithm 2
// step: the reporting worker stores its latest priority, and whichever
// report completes an interval (one report per worker's worth of sends)
// assembles the snapshot and runs the controller. Workers that have never
// reported are excluded from the snapshot rather than contributing stale
// zeros.
func (cp *controlPlane) Report(id int, prio int64) {
	// Validate at the boundary: a handler that emits a negative priority or
	// one colliding with the never-reported sentinel would fabricate a huge
	// drift term (Equation 1's reference is the minimum report) and walk
	// the controller's TDF off a corrupted signal. Clamp and count instead.
	if prio < 0 || prio >= neverReported {
		if prio < 0 {
			prio = 0
		} else {
			prio = neverReported - 1
		}
		cp.clamped.Add(1)
		if rec := cp.rec; rec != nil {
			rec.Add(id, obs.CDriftClamped, 1)
		}
	}
	atomic.StoreInt64(&cp.reports[id], prio)
	if rec := cp.rec; rec != nil {
		rec.Add(id, obs.CDriftReports, 1)
		rec.Event(id, obs.EvDriftReport, prio, 0, 0)
	}
	if cp.reportCount.Add(1) < int64(len(cp.reports)) {
		return
	}
	cp.reportCount.Store(0)
	if !cp.useTDF {
		return
	}
	snapshot := make([]int64, 0, len(cp.reports))
	for i := range cp.reports {
		if p := atomic.LoadInt64(&cp.reports[i]); p != neverReported {
			snapshot = append(snapshot, p)
		}
	}
	if len(snapshot) == 0 {
		return
	}
	ref := drift.MinReference(snapshot)
	pd := drift.Drift(snapshot, ref)
	cp.mu.Lock()
	tdf := cp.ctrl.UpdateWithRef(pd, ref)
	cp.mu.Unlock()
	cp.tdf.Store(int64(tdf))
	if rec := cp.rec; rec != nil {
		rec.Add(id, obs.CTDFSteps, 1)
		rec.Event(id, obs.EvTDFStep, int64(tdf), int64(math.Float64bits(pd)), ref)
	}
}

// Clamped reports how many out-of-range priority reports were clamped at
// the boundary so far.
func (cp *controlPlane) Clamped() int64 { return cp.clamped.Load() }

// History returns the controller's per-interval drift/TDF records. Safe to
// call while workers are still reporting.
func (cp *controlPlane) History() []drift.Record {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.ctrl.History()
}

// Series returns the control plane's time series — per-interval drift,
// reference priority, and TDF — the view that replaces eyeballing a
// point-in-time snapshot when studying the feedback loop. Safe to call
// while workers are still reporting.
func (cp *controlPlane) Series() []obs.ControlPoint {
	hist := cp.History()
	pts := make([]obs.ControlPoint, len(hist))
	for i, rec := range hist {
		pts[i] = obs.ControlPoint{Interval: i, Drift: rec.Drift, Ref: rec.Ref, TDF: rec.TDF}
	}
	return pts
}
