package runtime

// Tests for the fault layer: panic isolation, retry/quarantine, the Drain
// deadline and watchdog diagnostics, and overflow flow control. The pinned
// regression is TestEnginePanicDoesNotWedgeDrain — before the fault layer, a
// panicking handler killed its worker goroutine and Drain blocked forever.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdcps/internal/graph"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// fnWorkload adapts a process function to workload.Workload for engine-level
// fault tests (the engine never touches Graph/InitialTasks/Verify).
type fnWorkload struct {
	fn func(t task.Task, emit func(task.Task)) int
}

func (w *fnWorkload) Name() string              { return "fault-test" }
func (w *fnWorkload) Graph() *graph.CSR         { return nil }
func (w *fnWorkload) Reset()                    {}
func (w *fnWorkload) InitialTasks() []task.Task { return nil }
func (w *fnWorkload) Clone() workload.Workload  { return w }
func (w *fnWorkload) Verify() error             { return nil }

func (w *fnWorkload) Process(t task.Task, emit func(task.Task)) int {
	return w.fn(t, emit)
}

// checkLedger asserts the conservation invariant at quiescence:
// Submitted + Spawned == Processed + BagsRetired + Quarantined + Cancelled,
// Outstanding 0.
func checkLedger(t *testing.T, s Snapshot) {
	t.Helper()
	if s.Outstanding != 0 {
		t.Fatalf("outstanding %d at quiescence, want 0", s.Outstanding)
	}
	in := s.Submitted + s.Spawned
	out := s.TasksProcessed + s.BagsRetired + s.Quarantined + s.Cancelled
	if in != out {
		t.Fatalf("ledger violated: submitted %d + spawned %d = %d, processed %d + bagsRetired %d + quarantined %d + cancelled %d = %d",
			s.Submitted, s.Spawned, in, s.TasksProcessed, s.BagsRetired, s.Quarantined, s.Cancelled, out)
	}
}

// Pinned regression: a panicking task handler used to kill its worker
// goroutine, stranding the poison task's outstanding count and wedging Drain
// forever. Now the panic quarantines the task, the worker survives, and the
// engine keeps accepting and processing work.
func TestEnginePanicDoesNotWedgeDrain(t *testing.T) {
	const poison = graph.NodeID(13)
	var processed atomic.Int64
	w := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int {
		if tk.Node == poison {
			panic("poisoned task")
		}
		processed.Add(1)
		return 1
	}}
	e := NewEngine(w, Config{Workers: 2})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ts := make([]task.Task, 0, 16)
	for i := 0; i < 16; i++ {
		ts = append(ts, task.Task{Node: graph.NodeID(i), Prio: int64(i)})
	}
	if err := e.Submit(ts...); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatalf("Drain after handler panic = %v (the pre-fault-layer wedge)", err)
	}
	q := e.Quarantined()
	if len(q) != 1 || q[0].Task.Node != poison {
		t.Fatalf("quarantine = %v, want exactly the poison task", q)
	}
	if q[0].Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (zero-value policy: no retries)", q[0].Attempts)
	}
	if !strings.Contains(q[0].String(), "poisoned task") {
		t.Fatalf("quarantine record lost the panic value: %s", q[0].String())
	}
	if got := processed.Load(); got != 15 {
		t.Fatalf("processed %d healthy tasks, want 15", got)
	}
	// The worker that caught the panic must still be alive: more work after
	// the fault has to complete.
	processed.Store(0)
	if err := e.Submit(task.Task{Node: 100}, task.Task{Node: 101}); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatalf("Drain after fault = %v", err)
	}
	if got := processed.Load(); got != 2 {
		t.Fatalf("post-fault processed = %d, want 2 (worker died?)", got)
	}
	checkLedger(t, e.Snapshot())
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
}

// Retry: a task that panics on its first attempts but succeeds within the
// budget is processed normally and leaves no quarantine record.
func TestEngineRetrySucceeds(t *testing.T) {
	const flaky = graph.NodeID(7)
	var attempts, processed atomic.Int64
	w := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int {
		if tk.Node == flaky && attempts.Add(1) < 3 {
			panic("transient fault")
		}
		processed.Add(1)
		return 1
	}}
	e := NewEngine(w, Config{Workers: 2, Retry: RetryPolicy{MaxAttempts: 3}})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(task.Task{Node: flaky}, task.Task{Node: 1}, task.Task{Node: 2}); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if q := e.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantine = %v, want empty (task recovered on retry)", q)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("flaky task ran %d times, want 3 (2 panics + 1 success)", got)
	}
	if got := processed.Load(); got != 3 {
		t.Fatalf("processed %d, want 3", got)
	}
	// The retry map must be empty again after success (retrying gate closed).
	if got := e.faults.retrying.Load(); got != 0 {
		t.Fatalf("retrying = %d after success, want 0", got)
	}
	checkLedger(t, e.Snapshot())
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
}

// Exhausted retries quarantine with the full attempt history, and the ledger
// still balances with spawned children in flight.
func TestEngineQuarantineAfterRetries(t *testing.T) {
	const poison = graph.NodeID(99)
	w := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int {
		if tk.Node == poison {
			panic("permanent fault")
		}
		// Healthy tasks fan out two generations of children.
		if tk.Data > 0 {
			for i := uint64(0); i < 4; i++ {
				emit(task.Task{Node: tk.Node + 1000*graph.NodeID(i+1), Prio: tk.Prio + 1, Data: tk.Data - 1})
			}
		}
		return 1
	}}
	e := NewEngine(w, Config{Workers: 4, Retry: RetryPolicy{MaxAttempts: 2}})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ts := []task.Task{{Node: poison}}
	for i := 0; i < 8; i++ {
		ts = append(ts, task.Task{Node: graph.NodeID(i), Prio: int64(i), Data: 2})
	}
	if err := e.Submit(ts...); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	q := e.Quarantined()
	if len(q) != 1 || q[0].Attempts != 2 {
		t.Fatalf("quarantine = %v, want poison task after 2 attempts", q)
	}
	s := e.Snapshot()
	if s.Quarantined != 1 {
		t.Fatalf("Snapshot.Quarantined = %d, want 1", s.Quarantined)
	}
	// 8 roots with Data=2 → 32 children (Data=1) → 128 grandchildren: the
	// spawned side of the ledger must cover every generation.
	if s.Spawned < 160 {
		t.Fatalf("spawned = %d, want >= 160 (children + bag units)", s.Spawned)
	}
	checkLedger(t, s)
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
}

// Drain with an expired deadline returns a *StallError wrapping the ctx
// error, carrying per-worker diagnostics instead of blocking forever.
func TestEngineDrainDeadlineStallError(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	w := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int {
		started <- struct{}{}
		<-gate
		return 1
	}}
	e := NewEngine(w, Config{Workers: 2})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(task.Task{Node: 1}); err != nil {
		t.Fatal(err)
	}
	<-started // the task is definitely stuck in its handler
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := e.Drain(ctx)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("Drain = %v, want *StallError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("StallError must wrap the ctx error, got %v", se.Err)
	}
	if se.Op != "drain" || se.Outstanding != 1 || se.Submitted != 1 || len(se.Workers) != 2 {
		t.Fatalf("diagnostics wrong: %+v", se)
	}
	if !strings.Contains(se.Error(), "outstanding 1") {
		t.Fatalf("Error() lost the ledger: %s", se.Error())
	}
	close(gate) // release the handler; the engine must finish cleanly
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatalf("Drain after release = %v", err)
	}
	checkLedger(t, e.Snapshot())
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
}

// The liveness watchdog: with StallTimeout set, a fleet making no ledger
// progress turns Drain's infinite wait into a StallError wrapping ErrStalled
// even under a background context.
func TestEngineDrainWatchdogStall(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	w := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int {
		started <- struct{}{}
		<-gate
		return 1
	}}
	e := NewEngine(w, Config{Workers: 2, StallTimeout: 50 * time.Millisecond})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(task.Task{Node: 1}); err != nil {
		t.Fatal(err)
	}
	<-started
	err := e.Drain(context.Background())
	var se *StallError
	if !errors.As(err, &se) || !errors.Is(err, ErrStalled) {
		t.Fatalf("Drain = %v, want *StallError wrapping ErrStalled", err)
	}
	close(gate)
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatalf("Drain after release = %v", err)
	}
	checkLedger(t, e.Snapshot())
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
}

// Flow control: flooding a blocked worker saturates its ring and bounded
// overflow, and further sends bounce back to the sender's local queue
// (Snapshot.Redirects) instead of growing the overflow without bound. No
// task is lost: once the victim unblocks, everything processes.
func TestEngineOverflowRedirectsToSender(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	const fanout = 2000
	var processed atomic.Int64
	w := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int {
		switch tk.Data {
		case 1: // the victim's blocker
			started <- struct{}{}
			<-gate
		case 2: // the flood generator
			for i := 0; i < fanout; i++ {
				emit(task.Task{Node: graph.NodeID(1000 + i), Prio: 10})
			}
		}
		processed.Add(1)
		return 1
	}}
	e := NewEngine(w, Config{
		Workers:     2,
		RingSize:    8,
		OverflowCap: 16,
		FixedTDF:    100, // always distribute: every child targets the victim
		Seed:        1,
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// Round-robin lands index 0 on worker 0, index 1 on worker 1: block
	// worker 1 first, then flood from worker 0.
	if err := e.Submit(task.Task{Node: 1, Prio: 0, Data: 0}, task.Task{Node: 2, Prio: 0, Data: 1}); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := e.Submit(task.Task{Node: 3, Prio: 0, Data: 2}); err != nil {
		t.Fatal(err)
	}
	// Wait for the flow-control bounce to appear, then release the victim.
	deadline := time.Now().Add(10 * time.Second)
	for e.Snapshot().Redirects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no redirects despite a saturated destination")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.Redirects == 0 {
		t.Fatal("redirects lost")
	}
	if got := processed.Load(); got != fanout+3 {
		t.Fatalf("processed %d, want %d (flow control must not lose tasks)", got, fanout+3)
	}
	checkLedger(t, s)
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
}

// A panicking handler's partially emitted children are discarded: effects
// land exactly once, on the attempt that completes.
func TestEnginePanicDiscardsPartialChildren(t *testing.T) {
	const flaky = graph.NodeID(5)
	var attempts atomic.Int64
	var mu sync.Mutex
	children := map[graph.NodeID]int{}
	w := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int {
		if tk.Node == flaky {
			emit(task.Task{Node: 500, Prio: 1}) // emitted, then the panic hits
			if attempts.Add(1) < 2 {
				panic("mid-emit fault")
			}
			emit(task.Task{Node: 501, Prio: 1})
			return 1
		}
		mu.Lock()
		children[tk.Node]++
		mu.Unlock()
		return 1
	}}
	e := NewEngine(w, Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 2}})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(task.Task{Node: flaky}); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if children[500] != 1 || children[501] != 1 {
		t.Fatalf("children = %v, want exactly one of each (discard on panic, emit on success)", children)
	}
	checkLedger(t, e.Snapshot())
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
}

// Retry backoff is applied (linearly per attempt) without breaking ledger
// accounting.
func TestEngineRetryBackoff(t *testing.T) {
	var attempts atomic.Int64
	w := &fnWorkload{fn: func(tk task.Task, emit func(task.Task)) int {
		if attempts.Add(1) < 3 {
			panic("transient")
		}
		return 1
	}}
	e := NewEngine(w, Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 3, Backoff: 5 * time.Millisecond}})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := e.Submit(task.Task{Node: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	// attempt 1 backs off 5ms, attempt 2 backs off 10ms.
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("drain returned after %v, want >= 15ms of backoff", d)
	}
	if q := e.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantine = %v, want empty", q)
	}
	checkLedger(t, e.Snapshot())
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
}
