package runtime

import (
	"sync/atomic"

	"hdcps/internal/task"
)

// payloadStore implements the bag-payload side of the paper's pull
// transport (§III-B) without a global hash map: each worker owns one store;
// only the bag's metadata travels through rings, carrying the owner's id
// and a dense slot index in Task.Data; the consumer resolves the index
// against the owner's store, unpacks the tasks, and releases the slot.
//
// Concurrency contract:
//   - alloc is owner-only (the single worker that creates this store's
//     bags), so allocation needs no synchronization beyond publishing
//     chunk-directory growth.
//   - get may run on any worker. The directory pointer is replaced
//     wholesale when it grows (copy-on-write), and the growth store
//     happens before the metadata is published through a ring, so a
//     consumer that holds a bag id always observes the chunk behind it.
//   - release may run on any worker: consumed slots return through a
//     lock-free MPSC Treiber stack the owner drains on its next alloc
//     miss. The pop is a single swap of the whole list, which sidesteps
//     the ABA hazard of per-node pops.
//
// Slot contents need no atomics of their own: the owner's writes to a slot
// happen before the ring publish of its metadata, and the consumer's reads
// happen after the ring consume; the release-stack CAS orders the hand-back
// the same way.
type payloadStore struct {
	chunks   atomic.Pointer[[]*payloadChunk]
	released atomic.Pointer[payloadSlot] // consumers push, owner swaps out
	free     []*payloadSlot              // owner-local free cache
	next     uint32                      // next never-used slot index
}

const (
	payloadChunkShift = 8
	payloadChunkSize  = 1 << payloadChunkShift
	payloadChunkMask  = payloadChunkSize - 1
)

type payloadChunk struct {
	slots [payloadChunkSize]payloadSlot
}

type payloadSlot struct {
	tasks []task.Task
	idx   uint32
	next  *payloadSlot // freelist link, meaningful only on the released stack
}

// alloc returns a free slot, reusing consumer-released slots before growing
// the store. Owner-only.
func (ps *payloadStore) alloc() *payloadSlot {
	if n := len(ps.free); n > 0 {
		s := ps.free[n-1]
		ps.free = ps.free[:n-1]
		return s
	}
	if head := ps.released.Swap(nil); head != nil {
		for s := head.next; s != nil; {
			nx := s.next
			s.next = nil
			ps.free = append(ps.free, s)
			s = nx
		}
		head.next = nil
		return head
	}
	idx := ps.next
	ps.next++
	ci := int(idx >> payloadChunkShift)
	var dir []*payloadChunk
	if p := ps.chunks.Load(); p != nil {
		dir = *p
	}
	if ci >= len(dir) {
		grown := make([]*payloadChunk, ci+1)
		copy(grown, dir)
		grown[ci] = new(payloadChunk)
		// Publish the grown directory before the caller can ship any bag id
		// pointing into the new chunk.
		ps.chunks.Store(&grown)
		dir = grown
	}
	s := &dir[ci].slots[idx&payloadChunkMask]
	s.idx = idx
	return s
}

// get resolves a slot index carried in bag metadata. Any worker.
func (ps *payloadStore) get(idx uint32) *payloadSlot {
	dir := *ps.chunks.Load()
	return &dir[idx>>payloadChunkShift].slots[idx&payloadChunkMask]
}

// release hands a consumed slot back to the owner. Any worker.
func (ps *payloadStore) release(s *payloadSlot) {
	s.tasks = s.tasks[:0] // keep the backing array for the owner's reuse
	for {
		old := ps.released.Load()
		s.next = old
		if ps.released.CompareAndSwap(old, s) {
			return
		}
	}
}
