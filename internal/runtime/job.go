package runtime

// The job layer turns the single-workload engine into a multi-tenant fleet
// (DESIGN.md §14). A job is one tenant: its own workload instance, weight,
// admission quota, retry policy, and a full conservation ledger of its own —
// while every global invariant (termination, the engine-wide ledger, the
// publication-ordering contract) keeps holding across all jobs combined.
//
// Identity is carried by task.Task.Job, stamped at submission and inherited
// by every child a handler emits, so a task can always be billed to its
// tenant without any lookaside table. The per-worker queue set (workerJQ,
// engine.go) keeps each job's tasks in a queue of their own; the worker's
// batch fill walks the active jobs under deficit round robin — each visit
// deposits weight*drrQuantum into the job's balance, each retired task
// (bag contents included) withdraws one — which is what makes per-job task
// shares track weight shares independently of per-task cost or bagging.
//
// Per-job ledger. Each jobState carries the same conservation equation the
// engine proves globally, extended by the cancellation sink:
//
//	Submitted + Spawned == Processed + BagsRetired + Quarantined + Cancelled + Outstanding
//
// with the same publication ordering: every retirement term is stored before
// the job's outstanding count drops, and every addition lands before the
// work becomes visible, so at per-job quiescence (Outstanding == 0) the
// job's ledger is exact. The chaos Checker asserts both the per-job ledgers
// and that their sums equal the global ledger.

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync/atomic"
	"time"

	"hdcps/internal/pq"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// ErrJobCancelled is returned by Job.Submit once the job has been cancelled.
var ErrJobCancelled = errors.New("runtime: job cancelled")

// maxJobs bounds the job table; JobIDs index dense per-worker slices, so an
// unbounded table would let a runaway caller exhaust memory fleet-wide.
const maxJobs = 1 << 20

// JobConfig parameterizes one tenant of a multi-job engine.
type JobConfig struct {
	// Name labels the job in stats, traces, and stall diagnostics.
	// Empty defaults to "job-<id>".
	Name string
	// Weight is the job's fair-share weight: each worker's deficit-round-
	// robin rotation deposits weight*drrQuantum tasks of service per visit,
	// so a weight-2 job is offered twice the task throughput of a weight-1
	// job whenever both are backlogged. Values <= 0 default to 1.
	Weight int
	// MaxOutstanding is the admission quota: a Submit that would push the
	// job's outstanding task count past it is rejected whole with a
	// *QuotaError (no partial admission). 0 means unlimited. Spawned
	// children are not quota-checked — admission controls entry, not
	// amplification.
	MaxOutstanding int64
	// TDFBias scales the global TDF for this job's dispatch decisions, in
	// percent (100 = neutral, 50 = scatter half as often, 200 = twice as
	// often, capped at always). It composes the drift controller's global
	// signal with a per-tenant locality preference. Values <= 0 default
	// to 100.
	TDFBias int
	// Retry overrides the engine's RetryPolicy for this job's tasks
	// (nil inherits Config.Retry).
	Retry *RetryPolicy
}

// jobState is the engine-side record of one job. The atomic counters form
// the job's conservation ledger; everything else is immutable after NewJob.
type jobState struct {
	id      task.JobID
	name    string
	w       workload.Workload
	off     []uint32 // CSR row offsets of the job's graph (prefetch), or nil
	weight  int64
	quota   int64 // 0 = unlimited
	tdfBias int64 // percent, 100 = neutral
	retry   RetryPolicy
	// hasRetry marks an explicit per-job policy; false inherits the engine's.
	hasRetry bool
	// mq is the job's fleet-shared relaxed MultiQueue when the engine runs
	// QueueMultiQueue: one c·P-shard structure per job, each worker holding a
	// handle, so relaxation and work balancing stay within the tenant.
	mq *pq.MultiQueue

	cancelled atomic.Bool

	// The per-job conservation ledger. Outstanding follows the global
	// count's ordering contract: incremented before the work is visible,
	// decremented only after the matching retirement term is stored.
	submitted      atomic.Int64
	spawned        atomic.Int64
	processed      atomic.Int64
	bagsRetired    atomic.Int64
	quarantined    atomic.Int64
	cancelledTasks atomic.Int64
	outstanding    atomic.Int64
	rejected       atomic.Int64 // tasks refused by the admission quota

	// Per-job scheduling quality, fed by the engine's sampled pop path.
	rankSamples atomic.Int64
	inversions  atomic.Int64
	rankErrSum  atomic.Int64
	rankErrMax  atomic.Int64

	_ [4]int64 // keep adjacent jobs' hot counters off one line
}

// newJobState builds the record; cfg must already have defaults applied.
func newJobState(id task.JobID, w workload.Workload, jc JobConfig, cfg Config) *jobState {
	js := &jobState{
		id:      id,
		name:    jc.Name,
		w:       w,
		weight:  int64(jc.Weight),
		quota:   jc.MaxOutstanding,
		tdfBias: int64(jc.TDFBias),
	}
	if js.name == "" {
		js.name = fmt.Sprintf("job-%d", id)
	}
	if js.weight <= 0 {
		js.weight = 1
	}
	if js.quota < 0 {
		js.quota = 0
	}
	if js.tdfBias <= 0 {
		js.tdfBias = 100
	}
	if jc.Retry != nil {
		js.retry = *jc.Retry
		js.hasRetry = true
	}
	if g := w.Graph(); g != nil {
		js.off = g.Off
	}
	if cfg.Queue == nil && cfg.QueueKind == QueueMultiQueue {
		js.mq = pq.NewMultiQueue(mqConfig(cfg))
	}
	return js
}

// retryPolicy resolves the policy governing this job's panicking tasks.
func (js *jobState) retryPolicy(engineDefault RetryPolicy) RetryPolicy {
	if js.hasRetry {
		return js.retry
	}
	return engineDefault
}

// ledgerMark folds the job's ledger terms into one progress value for the
// job-scoped stall watchdog (any retirement, quarantine, cancellation, or
// new submission moves it).
func (js *jobState) ledgerMark() int64 {
	return js.submitted.Load() + js.processed.Load() + js.bagsRetired.Load() +
		js.quarantined.Load() + js.cancelledTasks.Load()
}

// stats snapshots the job's ledger. Outstanding is read first so the same
// coherence contract the global Snapshot documents holds per job: a task
// retiring between the reads inflates the retirement side, never hides work.
func (js *jobState) stats() JobStats {
	s := JobStats{
		Job:         js.id,
		Name:        js.name,
		Weight:      int(js.weight),
		Cancelled:   js.cancelled.Load(),
		Outstanding: js.outstanding.Load(),
	}
	s.Submitted = js.submitted.Load()
	s.Spawned = js.spawned.Load()
	s.Processed = js.processed.Load()
	s.BagsRetired = js.bagsRetired.Load()
	s.Quarantined = js.quarantined.Load()
	s.CancelledTasks = js.cancelledTasks.Load()
	s.QuotaRejected = js.rejected.Load()
	s.RankSamples = js.rankSamples.Load()
	s.PrioInversions = js.inversions.Load()
	s.RankErrorSum = js.rankErrSum.Load()
	s.RankErrorMax = js.rankErrMax.Load()
	return s
}

// JobStats is one job's row of Snapshot.Jobs: the per-tenant conservation
// ledger plus scheduling-quality counters. At per-job quiescence
// (Outstanding == 0 with no concurrent Submit to this job):
//
//	Submitted + Spawned == Processed + BagsRetired + Quarantined + CancelledTasks
type JobStats struct {
	Job       task.JobID
	Name      string
	Weight    int
	Cancelled bool // the job has been cancelled (terminal)

	Outstanding    int64 // this job's tasks submitted or spawned but not retired
	Submitted      int64 // tasks admitted via Submit
	Spawned        int64 // children + bag units created by this job's tasks
	Processed      int64 // tasks executed (bag payloads included)
	BagsRetired    int64 // bag units fully unpacked and retired
	Quarantined    int64 // poison tasks retired into quarantine
	CancelledTasks int64 // tasks (and bag payloads) discarded by Cancel
	QuotaRejected  int64 // tasks refused by the admission quota (not in the ledger)

	RankSamples    int64
	PrioInversions int64
	RankErrorSum   int64
	RankErrorMax   int64
}

// QuotaError is the admission-control rejection: a Submit would have pushed
// the job past its MaxOutstanding quota, so the whole batch was refused.
type QuotaError struct {
	Job         task.JobID
	Name        string
	Limit       int64 // the job's MaxOutstanding
	Outstanding int64 // the job's outstanding count at rejection
	Tasks       int   // size of the refused batch
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf(
		"runtime: job %d (%s) over quota: %d outstanding + %d submitted > limit %d",
		e.Job, e.Name, e.Outstanding, e.Tasks, e.Limit)
}

// Job is the tenant handle: a scoped view of one engine job with its own
// Submit/Drain/Cancel/Snapshot lifecycle. Handles are cheap, goroutine-safe,
// and remain valid for the engine's lifetime.
type Job struct {
	e  *Engine
	js *jobState
}

// NewJob registers a new tenant on the engine: its own workload instance
// (Reset here; it must not be shared with another engine or job), weight,
// quota, and retry policy. Jobs may be added before Start or while the
// fleet runs; they live until the engine stops — there is no job removal,
// only Cancel. Returns an error once Stop has been requested.
func (e *Engine) NewJob(w workload.Workload, jc JobConfig) (*Job, error) {
	if w == nil {
		return nil, errors.New("runtime: NewJob needs a workload")
	}
	if e.stop.Load() {
		return nil, ErrStopped
	}
	w.Reset()
	e.jobMu.Lock()
	cur := *e.jobs.Load()
	if len(cur) >= maxJobs {
		e.jobMu.Unlock()
		return nil, fmt.Errorf("runtime: job table full (%d jobs)", maxJobs)
	}
	js := newJobState(task.JobID(len(cur)), w, jc, e.cfg)
	grown := make([]*jobState, len(cur)+1)
	copy(grown, cur)
	grown[len(cur)] = js
	// The control plane's report row must exist before any task of the new
	// job can be processed, so it is grown before the table is published.
	e.control.addJob()
	e.jobs.Store(&grown)
	e.jobMu.Unlock()
	return &Job{e: e, js: js}, nil
}

// DefaultJob returns the handle for job 0: the workload the engine was
// constructed over. Single-tenant callers never need it — the Engine-level
// Submit/Drain already operate on the whole fleet.
func (e *Engine) DefaultJob() *Job {
	return &Job{e: e, js: (*e.jobs.Load())[0]}
}

// jobStateFor resolves a task's JobID against the live table, folding
// out-of-range IDs (a caller stamping a bogus value) into the default job.
func (e *Engine) jobStateFor(id task.JobID) *jobState {
	jobs := *e.jobs.Load()
	if int(id) < len(jobs) {
		return jobs[id]
	}
	return jobs[0]
}

// ID returns the job's identity — the value carried by its tasks' Job field.
func (j *Job) ID() task.JobID { return j.js.id }

// Name returns the job's label.
func (j *Job) Name() string { return j.js.name }

// Cancelled reports whether Cancel has been requested.
func (j *Job) Cancelled() bool { return j.js.cancelled.Load() }

// Snapshot returns the job's ledger row (see JobStats for the per-job
// conservation equation and its coherence contract).
func (j *Job) Snapshot() JobStats { return j.js.stats() }

// Submit injects tasks into this job: each task is stamped with the job's
// ID, admission-checked against the quota (all-or-nothing), and then follows
// the engine's normal submission path. Returns ErrJobCancelled after Cancel
// and *QuotaError past the quota.
func (j *Job) Submit(ts ...task.Task) error {
	if len(ts) == 0 {
		return nil
	}
	for i := range ts {
		ts[i].Job = j.js.id
	}
	if j.e.stop.Load() {
		return ErrStopped
	}
	return j.e.submitJob(j.js, ts)
}

// Drain blocks until this job alone is quiescent — every one of its
// submitted tasks and their transitive children processed, quarantined, or
// cancelled — without waiting on any other tenant's work. The same deadline
// and watchdog semantics as Engine.Drain apply, but scoped: the returned
// *StallError carries this job's ID and per-job ledger so the blocking
// tenant is identifiable, and the stall watchdog watches this job's ledger
// only (another tenant's progress does not reset it).
func (j *Job) Drain(ctx context.Context) error {
	e, js := j.e, j.js
	for spin := 0; spin < 256; spin++ {
		if js.outstanding.Load() == 0 {
			return nil
		}
		if e.stop.Load() {
			return ErrStopped
		}
		if err := ctx.Err(); err != nil {
			return e.stallJobError("drain-job", err, js)
		}
		stdruntime.Gosched()
	}
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
	lastProgress := time.Now()
	lastLedger := js.ledgerMark()
	for {
		if js.outstanding.Load() == 0 {
			return nil
		}
		if e.stop.Load() {
			return ErrStopped
		}
		if d := e.cfg.StallTimeout; d > 0 {
			if mark := js.ledgerMark(); mark != lastLedger {
				lastLedger = mark
				lastProgress = time.Now()
			} else if time.Since(lastProgress) > d {
				return e.stallJobError("drain-job", ErrStalled, js)
			}
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return e.stallJobError("drain-job", ctx.Err(), js)
		}
	}
}

// Cancel marks the job cancelled and waits for its tasks to leave the
// system. Cancellation is cooperative and terminal: new Submits are refused
// with ErrJobCancelled, every queued task of the job is discarded into the
// CancelledTasks ledger sink the next time a worker touches it, and tasks
// already inside a worker's dequeue batch (at most BatchK per worker) finish
// normally. Other tenants are untouched — their queues are never scanned.
// Cancel returns when the job's outstanding count reaches zero (its ledger
// is then exact) or ctx expires, with the same *StallError semantics as
// Drain. Requires a started engine: on a never-started engine nothing
// drains the queues, so Cancel would wait forever (bound it with ctx).
func (j *Job) Cancel(ctx context.Context) error {
	j.js.cancelled.Store(true)
	// Wake parked workers so an idle fleet sweeps the queues promptly; a
	// busy fleet discards on its next scheduling round anyway.
	j.e.wakeAll()
	return j.Drain(ctx)
}

// Quarantined returns the subset of the engine's poison-task list belonging
// to this job.
func (j *Job) Quarantined() []QuarantinedTask {
	all := j.e.faults.snapshot()
	out := all[:0]
	for _, q := range all {
		if q.Task.Job == j.js.id {
			out = append(out, q)
		}
	}
	return out
}
