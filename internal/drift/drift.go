// Package drift implements the paper's central signal and heuristic:
// priority drift (Equation 1) and the feedback-driven task-distribution-
// factor controller (Algorithms 2 and 3, §III-C), plus the dynamic-oracle
// TDF search used as the heuristic's upper bound (§III-C, Fig. 12).
package drift

import "math"

// Drift computes Equation 1 over one interval's per-core priority reports:
// the mean absolute difference between each core's latest task priority and
// the reference priority. ref should be the globally highest priority (the
// numerically smallest report); Reports' callers typically pass
// MinReference(reports).
func Drift(reports []int64, ref int64) float64 {
	if len(reports) == 0 {
		return 0
	}
	var sum float64
	for _, p := range reports {
		d := p - ref
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	return sum / float64(len(reports))
}

// MinReference returns the highest priority (smallest value) among the
// reports, the paper's P0. It returns 0 for an empty slice.
func MinReference(reports []int64) int64 {
	if len(reports) == 0 {
		return 0
	}
	ref := reports[0]
	for _, p := range reports[1:] {
		if p < ref {
			ref = p
		}
	}
	return ref
}

// Decision records whether the controller last moved the TDF up or down.
type Decision int

const (
	// Increase means the adjustment raised (or will raise) the TDF. It is
	// the zero value, making it Config.OnImprove's default.
	Increase Decision = iota
	// Decrease means the adjustment lowered (or will lower) the TDF.
	Decrease
)

// Config holds the controller's tunable parameters, with the paper's
// empirically chosen defaults (§V-E, Fig. 13).
type Config struct {
	// InitialTDF is the task distribution factor (percent of enqueues sent
	// to random remote cores) used before the first feedback. Paper: 50.
	InitialTDF int
	// Step is the TDF change per interval, in percentage points. Paper: 10.
	Step int
	// MinTDF and MaxTDF bound the controller. The paper notes TDF must stay
	// non-zero so distribution keeps load-balancing the cores.
	MinTDF, MaxTDF int
	// SampleInterval is the number of tasks a core processes between
	// reports to the master core (Algorithm 3's send_threshold). The paper
	// uses 2000 on billion-task runs; the default here is 200 so that a
	// reduced-scale run still gives the controller a comparable number of
	// feedback updates (Fig. 13A sweeps this parameter).
	SampleInterval int
	// OnImprove selects the adjustment applied when drift improves.
	// Algorithm 2's pseudocode and its prose contradict each other here
	// (see the Controller comment); the default, Increase, follows the
	// prose and keeps distribution load-balancing the cores.
	OnImprove Decision
}

// DefaultConfig returns the paper's tuned parameters.
func DefaultConfig() Config {
	return Config{
		InitialTDF: 50, Step: 10, MinTDF: 5, MaxTDF: 95,
		SampleInterval: 200, OnImprove: Increase,
	}
}

// sanitized fills zero fields with defaults so a partially specified Config
// behaves sensibly.
func (c Config) sanitized() Config {
	d := DefaultConfig()
	if c.InitialTDF <= 0 {
		c.InitialTDF = d.InitialTDF
	}
	if c.Step <= 0 {
		c.Step = d.Step
	}
	if c.MaxTDF <= 0 {
		c.MaxTDF = d.MaxTDF
	}
	if c.MinTDF <= 0 {
		c.MinTDF = d.MinTDF
	}
	if c.MinTDF > c.MaxTDF {
		c.MinTDF = c.MaxTDF
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = d.SampleInterval
	}
	return c
}

// Controller is the feedback TDF heuristic of Algorithm 2. Each sampling
// interval the master core feeds it the cores' priority reports; the
// controller compares the interval's drift with the previous one and nudges
// the TDF one step up or down.
//
// Note on Algorithm 2: the paper's prose for the improving-drift case
// contradicts its pseudocode (the prose says the TDF "is always increased",
// the pseudocode decreases it). Config.OnImprove selects the reading; the
// default follows the prose — improving drift raises the TDF — because the
// paper also stresses that distribution must keep load-balancing the cores,
// and the pseudocode reading starves concentrated workloads by walking the
// TDF to its floor. The worsening-drift cases steer it back either way.
//
// Controller is not safe for concurrent use; in HD-CPS only the master core
// updates it (the heuristic is non-blocking for all other cores, which keep
// using the previous TDF until the new value propagates).
type Controller struct {
	cfg      Config
	tdf      int
	pdPrev   float64
	havePrev bool
	prev     Decision
	history  []Record
	invalid  int64
}

// Record is one interval's controller state, kept for drift traces and the
// oracle comparison. Ref is the reference priority (Equation 1's P0) the
// interval's drift was computed against; callers that feed UpdateDrift a
// precomputed drift leave it zero.
type Record struct {
	Drift float64
	Ref   int64
	TDF   int
}

// NewController returns a controller with cfg (zero fields take defaults).
func NewController(cfg Config) *Controller {
	c := cfg.sanitized()
	return &Controller{cfg: c, tdf: clamp(c.InitialTDF, c.MinTDF, c.MaxTDF), prev: Increase}
}

// Config returns the sanitized configuration in effect.
func (c *Controller) Config() Config { return c.cfg }

// TDF returns the current task distribution factor in percent.
func (c *Controller) TDF() int { return c.tdf }

// History returns a copy of the per-interval drift and TDF records
// accumulated so far. Returning a copy keeps the controller's internal
// trace safe from callers that append to or mutate the result.
func (c *Controller) History() []Record {
	return append([]Record(nil), c.history...)
}

// Update runs one Algorithm 2 step from the cores' priority reports and
// returns the TDF for the next interval.
func (c *Controller) Update(reports []int64) int {
	ref := MinReference(reports)
	return c.UpdateWithRef(Drift(reports, ref), ref)
}

// UpdateDrift is Update for callers that have already computed the drift
// (the interval record's Ref stays zero).
func (c *Controller) UpdateDrift(pd float64) int { return c.UpdateWithRef(pd, 0) }

// InvalidSamples reports how many drift samples were rejected and clamped
// (NaN, infinite, or negative) since the controller was built. A task
// handler that emits garbage priorities corrupts Equation 1's signal; the
// controller sanitizes at the boundary instead of walking its TDF off a
// poisoned comparison.
func (c *Controller) InvalidSamples() int64 { return c.invalid }

// sanitizeDrift clamps an invalid drift sample. NaN and -Inf fall back to
// the previous interval's drift (no signal → hold the comparison steady);
// +Inf and negative values clamp to the nearest representable valid value.
func (c *Controller) sanitizeDrift(pd float64) float64 {
	switch {
	case math.IsNaN(pd), math.IsInf(pd, -1):
		c.invalid++
		if c.havePrev {
			return c.pdPrev
		}
		return 0
	case math.IsInf(pd, +1):
		c.invalid++
		return math.MaxFloat64
	case pd < 0:
		c.invalid++
		return 0
	}
	return pd
}

// UpdateWithRef runs one controller step from a precomputed drift and the
// reference priority it was measured against, keeping both in the interval
// record so time-series consumers can reconstruct the feedback loop.
// Invalid drifts (NaN/Inf/negative) are clamped first; see InvalidSamples.
func (c *Controller) UpdateWithRef(pd float64, ref int64) int {
	pd = c.sanitizeDrift(pd)
	defer func() {
		c.history = append(c.history, Record{Drift: pd, Ref: ref, TDF: c.tdf})
		c.pdPrev = pd
		c.havePrev = true
	}()
	if !c.havePrev {
		return c.tdf // first interval: nothing to compare against
	}
	switch {
	case pd >= c.pdPrev && c.prev == Increase:
		// Drift worsened after raising TDF: more communication did not
		// help, back off (Alg. 2 lines 5-7).
		c.setTDF(c.tdf - c.cfg.Step)
		c.prev = Decrease
	case pd >= c.pdPrev && c.prev == Decrease:
		// Drift worsened after lowering TDF: restore communication
		// (Alg. 2 lines 8-10).
		c.setTDF(c.tdf + c.cfg.Step)
		c.prev = Increase
	default: // pd < pdPrev
		// Drift improving: apply the configured reading of Alg. 2
		// lines 11-13 (see the type comment).
		if c.cfg.OnImprove == Increase {
			c.setTDF(c.tdf + c.cfg.Step)
			c.prev = Increase
		} else {
			c.setTDF(c.tdf - c.cfg.Step)
			c.prev = Decrease
		}
	}
	return c.tdf
}

func (c *Controller) setTDF(v int) {
	c.tdf = clamp(v, c.cfg.MinTDF, c.cfg.MaxTDF)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
