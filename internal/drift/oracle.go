package drift

// Oracle implements the paper's dynamic-oracle TDF search (§III-C): for each
// sampling interval in turn it sweeps all candidate TDF values while keeping
// the already-decided prefix fixed, keeps the best, and moves on. The result
// is a per-interval TDF schedule that the adaptive heuristic is compared
// against (Fig. 12). Eval runs the whole workload with the given schedule
// (intervals beyond the schedule keep its last value) and returns completion
// time; lower is better.
func Oracle(intervals int, candidates []int, eval func(schedule []int) float64) []int {
	if intervals <= 0 || len(candidates) == 0 {
		return nil
	}
	schedule := make([]int, 0, intervals)
	for i := 0; i < intervals; i++ {
		best := candidates[0]
		bestTime := 0.0
		haveBest := false
		for _, cand := range candidates {
			trial := append(append([]int(nil), schedule...), cand)
			t := eval(trial)
			if !haveBest || t < bestTime {
				best, bestTime, haveBest = cand, t, true
			}
		}
		schedule = append(schedule, best)
	}
	return schedule
}

// FixedSchedule returns a Provider that replays a per-interval schedule,
// holding the last value once the schedule is exhausted. It is how a
// scheduler runs under oracle control instead of the adaptive controller.
func FixedSchedule(schedule []int, fallback int) func(interval int) int {
	return func(interval int) int {
		if len(schedule) == 0 {
			return fallback
		}
		if interval < len(schedule) {
			return schedule[interval]
		}
		return schedule[len(schedule)-1]
	}
}
