package drift

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDriftEquation(t *testing.T) {
	// Eq. 1: mean absolute difference to the reference.
	reports := []int64{10, 12, 10, 18}
	ref := MinReference(reports)
	if ref != 10 {
		t.Fatalf("ref = %d", ref)
	}
	got := Drift(reports, ref)
	want := (0.0 + 2 + 0 + 8) / 4
	if got != want {
		t.Fatalf("drift = %v, want %v", got, want)
	}
}

func TestDriftEdgeCases(t *testing.T) {
	if Drift(nil, 0) != 0 {
		t.Fatal("empty drift should be 0")
	}
	if MinReference(nil) != 0 {
		t.Fatal("empty reference should be 0")
	}
	if d := Drift([]int64{7, 7, 7}, 7); d != 0 {
		t.Fatalf("uniform reports drift = %v", d)
	}
	// Reference below all reports still yields non-negative drift.
	if d := Drift([]int64{5, 9}, 3); d != 4 {
		t.Fatalf("drift = %v, want 4", d)
	}
}

func TestDriftNonNegativeProperty(t *testing.T) {
	err := quick.Check(func(raw []int32) bool {
		reports := make([]int64, len(raw))
		for i, r := range raw {
			reports[i] = int64(r)
		}
		return Drift(reports, MinReference(reports)) >= 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestControllerDefaults(t *testing.T) {
	c := NewController(Config{})
	cfg := c.Config()
	if cfg.InitialTDF != 50 || cfg.Step != 10 || cfg.SampleInterval != 200 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if c.TDF() != 50 {
		t.Fatalf("initial TDF = %d", c.TDF())
	}
}

func TestControllerFirstIntervalHolds(t *testing.T) {
	c := NewController(Config{InitialTDF: 40})
	if got := c.UpdateDrift(100); got != 40 {
		t.Fatalf("first interval changed TDF to %d", got)
	}
}

// TestControllerAlgorithm2 walks the three branches of Algorithm 2 under
// the pseudocode reading (OnImprove: Decrease).
func TestControllerAlgorithm2(t *testing.T) {
	c := NewController(Config{InitialTDF: 50, Step: 10, OnImprove: Decrease})
	c.UpdateDrift(100) // prime pd_prev; TDF stays 50, prev=Increase

	// Branch lines 5-7: drift worsened after an increase -> decrease.
	if got := c.UpdateDrift(120); got != 40 {
		t.Fatalf("worsen-after-increase: TDF = %d, want 40", got)
	}
	// Branch lines 8-10: drift worsened after a decrease -> increase.
	if got := c.UpdateDrift(140); got != 50 {
		t.Fatalf("worsen-after-decrease: TDF = %d, want 50", got)
	}
	// Branch lines 11-13: drift improving -> decrease.
	if got := c.UpdateDrift(90); got != 40 {
		t.Fatalf("improving: TDF = %d, want 40", got)
	}
	// Improving again -> keep decreasing.
	if got := c.UpdateDrift(80); got != 30 {
		t.Fatalf("improving again: TDF = %d, want 30", got)
	}
}

func TestControllerImproveIncreases(t *testing.T) {
	// Default (prose) reading: improving drift raises the TDF.
	c := NewController(Config{InitialTDF: 50, Step: 10})
	c.UpdateDrift(100)
	if got := c.UpdateDrift(50); got != 60 {
		t.Fatalf("improving drift: TDF = %d, want 60", got)
	}
	if got := c.UpdateDrift(20); got != 70 {
		t.Fatalf("improving again: TDF = %d, want 70", got)
	}
	// Worsening after the increases backs off.
	if got := c.UpdateDrift(90); got != 60 {
		t.Fatalf("worsening: TDF = %d, want 60", got)
	}
}

func TestControllerClamping(t *testing.T) {
	c := NewController(Config{InitialTDF: 10, Step: 30, MinTDF: 5, MaxTDF: 95, OnImprove: Decrease})
	c.UpdateDrift(10)
	// Improving drift repeatedly: TDF must not go below MinTDF.
	for d := 9.0; d > 0; d-- {
		c.UpdateDrift(d)
	}
	if c.TDF() != 5 {
		t.Fatalf("TDF = %d, want clamp at 5", c.TDF())
	}
	// Oscillate worsening: must not exceed MaxTDF.
	c2 := NewController(Config{InitialTDF: 90, Step: 50, MinTDF: 5, MaxTDF: 95})
	c2.UpdateDrift(1)
	c2.UpdateDrift(2) // worsen after (implicit) increase -> decrease to 40
	c2.UpdateDrift(3) // worsen after decrease -> increase to 90
	c2.UpdateDrift(4) // worsen after increase -> decrease
	c2.UpdateDrift(5) // worsen after decrease -> increase, clamped
	if c2.TDF() > 95 {
		t.Fatalf("TDF = %d exceeds max", c2.TDF())
	}
}

func TestControllerBoundsProperty(t *testing.T) {
	err := quick.Check(func(drifts []float64, init, step uint8) bool {
		cfg := Config{InitialTDF: int(init%100) + 1, Step: int(step%30) + 1}
		c := NewController(cfg)
		for _, d := range drifts {
			if d < 0 {
				d = -d
			}
			tdf := c.UpdateDrift(d)
			if tdf < c.Config().MinTDF || tdf > c.Config().MaxTDF {
				return false
			}
		}
		return len(c.History()) == len(drifts)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestControllerHistory(t *testing.T) {
	c := NewController(Config{})
	c.UpdateDrift(5)
	c.UpdateDrift(7)
	h := c.History()
	if len(h) != 2 || h[0].Drift != 5 || h[1].Drift != 7 {
		t.Fatalf("history = %+v", h)
	}
	if h[0].TDF != 50 {
		t.Fatalf("first record TDF = %d", h[0].TDF)
	}
}

func TestUpdateUsesEquation1(t *testing.T) {
	c := NewController(Config{})
	c.Update([]int64{3, 5, 7}) // drift (0+2+4)/3 = 2
	if h := c.History(); len(h) != 1 || h[0].Drift != 2 {
		t.Fatalf("history = %+v", h)
	}
}

func TestOracleFindsBestConstant(t *testing.T) {
	// Completion time is minimized at TDF 30 in every interval.
	eval := func(schedule []int) float64 {
		var cost float64
		for _, tdf := range schedule {
			d := float64(tdf - 30)
			cost += d * d
		}
		return cost
	}
	got := Oracle(4, []int{10, 30, 50, 70, 90}, eval)
	if len(got) != 4 {
		t.Fatalf("schedule length %d", len(got))
	}
	for i, tdf := range got {
		if tdf != 30 {
			t.Fatalf("interval %d chose %d, want 30", i, tdf)
		}
	}
}

func TestOraclePhaseChange(t *testing.T) {
	// Intervals 0-1 favor high TDF, 2-3 favor low: the oracle must adapt
	// per interval, which is exactly its advantage over one static TDF.
	eval := func(schedule []int) float64 {
		var cost float64
		for i, tdf := range schedule {
			want := 90
			if i >= 2 {
				want = 10
			}
			d := float64(tdf - want)
			cost += d * d
		}
		return cost
	}
	got := Oracle(4, []int{10, 50, 90}, eval)
	want := []int{90, 90, 10, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule = %v, want %v", got, want)
		}
	}
}

func TestOracleEdgeCases(t *testing.T) {
	if Oracle(0, []int{1}, func([]int) float64 { return 0 }) != nil {
		t.Fatal("zero intervals should return nil")
	}
	if Oracle(3, nil, func([]int) float64 { return 0 }) != nil {
		t.Fatal("no candidates should return nil")
	}
}

func TestFixedSchedule(t *testing.T) {
	f := FixedSchedule([]int{10, 20, 30}, 99)
	for i, want := range []int{10, 20, 30, 30, 30} {
		if got := f(i); got != want {
			t.Fatalf("f(%d) = %d, want %d", i, got, want)
		}
	}
	empty := FixedSchedule(nil, 42)
	if empty(0) != 42 || empty(7) != 42 {
		t.Fatal("empty schedule should use fallback")
	}
}

// A poisoned task handler can feed the controller NaN, infinite, or
// negative drift samples; before sanitizeDrift, one NaN made every
// subsequent pd >= pdPrev comparison false and pinned the controller in
// the "improving" branch forever. Each invalid sample must be clamped at
// the boundary and counted, and the controller must keep stepping sanely.
func TestControllerSanitizesInvalidDrift(t *testing.T) {
	c := NewController(Config{InitialTDF: 50, Step: 10})
	c.UpdateDrift(100) // baseline; prev=Increase

	// NaN holds the previous drift: same-drift-after-increase worsens,
	// so the controller backs off rather than comparing against NaN.
	if got := c.UpdateDrift(math.NaN()); got != 40 {
		t.Fatalf("NaN sample: TDF = %d, want 40", got)
	}
	if c.InvalidSamples() != 1 {
		t.Fatalf("invalid samples = %d, want 1", c.InvalidSamples())
	}
	// The recorded history must hold the sanitized value, not NaN.
	h := c.History()
	if math.IsNaN(h[len(h)-1].Drift) {
		t.Fatal("NaN leaked into the controller history")
	}
	if h[len(h)-1].Drift != 100 {
		t.Fatalf("NaN sanitized to %v, want previous drift 100", h[len(h)-1].Drift)
	}

	// -Inf likewise falls back to the previous interval's drift.
	c.UpdateDrift(math.Inf(-1))
	if c.InvalidSamples() != 2 {
		t.Fatalf("invalid samples = %d, want 2", c.InvalidSamples())
	}
	// +Inf clamps to MaxFloat64: maximal worsening, a real comparison.
	c.UpdateDrift(math.Inf(+1))
	if c.InvalidSamples() != 3 {
		t.Fatalf("invalid samples = %d, want 3", c.InvalidSamples())
	}
	h = c.History()
	if v := h[len(h)-1].Drift; v != math.MaxFloat64 {
		t.Fatalf("+Inf sanitized to %v, want MaxFloat64", v)
	}
	// Negative drift clamps to zero (Equation 1 cannot go negative).
	c.UpdateDrift(-42)
	if c.InvalidSamples() != 4 {
		t.Fatalf("invalid samples = %d, want 4", c.InvalidSamples())
	}
	h = c.History()
	if v := h[len(h)-1].Drift; v != 0 {
		t.Fatalf("negative drift sanitized to %v, want 0", v)
	}
	// The controller still works after the garbage: a normal worsening
	// sample moves the TDF and stays within bounds.
	tdf := c.UpdateDrift(500)
	if tdf < c.Config().MinTDF || tdf > c.Config().MaxTDF {
		t.Fatalf("TDF %d escaped [%d, %d] after invalid samples",
			tdf, c.Config().MinTDF, c.Config().MaxTDF)
	}
	// Valid samples never bump the counter.
	if c.InvalidSamples() != 4 {
		t.Fatalf("valid sample counted as invalid: %d", c.InvalidSamples())
	}
}

// A NaN in the very first interval (no previous drift to fall back to)
// must sanitize to zero, not poison the stored baseline.
func TestControllerNaNFirstInterval(t *testing.T) {
	c := NewController(Config{InitialTDF: 50, Step: 10})
	c.UpdateDrift(math.NaN())
	if h := c.History(); h[0].Drift != 0 {
		t.Fatalf("first-interval NaN stored as %v, want 0", h[0].Drift)
	}
	if c.InvalidSamples() != 1 {
		t.Fatalf("invalid samples = %d, want 1", c.InvalidSamples())
	}
	// The baseline is usable: an improving second interval steps the TDF.
	if got := c.UpdateDrift(0); got < c.Config().MinTDF {
		t.Fatalf("TDF %d below floor after NaN baseline", got)
	}
}

// Property: no stream of arbitrary float64 drifts (including NaN and ±Inf
// from bit patterns) can drive the TDF out of bounds or poison the history.
func TestControllerInvalidDriftProperty(t *testing.T) {
	err := quick.Check(func(bits []uint64) bool {
		c := NewController(Config{})
		for _, b := range bits {
			tdf := c.UpdateWithRef(math.Float64frombits(b), 0)
			if tdf < c.Config().MinTDF || tdf > c.Config().MaxTDF {
				return false
			}
		}
		for _, rec := range c.History() {
			if math.IsNaN(rec.Drift) || rec.Drift < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// History hands back a copy: callers appending to or mutating the returned
// slice must not corrupt the controller's internal trace.
func TestHistoryReturnsCopy(t *testing.T) {
	c := NewController(Config{})
	c.UpdateDrift(5)
	c.UpdateDrift(3)
	h := c.History()
	if len(h) != 2 || h[0].Drift != 5 || h[1].Drift != 3 {
		t.Fatalf("history = %v", h)
	}
	h[0].Drift = -99
	h = append(h, Record{Drift: 123})
	_ = h
	c.UpdateDrift(1)
	h2 := c.History()
	if len(h2) != 3 {
		t.Fatalf("internal trace length %d, want 3", len(h2))
	}
	if h2[0].Drift != 5 || h2[2].Drift != 1 {
		t.Fatalf("internal trace corrupted by caller mutation: %v", h2)
	}
}
