// Package rq implements the per-core software receive queue of HD-CPS
// (§III-A): a fixed-size circular buffer that decouples inter-core task
// transfer from task processing. Multiple sender cores claim slots with an
// atomic increment of the write pointer and then publish their task by
// setting the slot flag; the single owning core drains published slots into
// its private priority queue. This keeps the priority queue free of remote
// atomic operations.
package rq

import (
	"sync/atomic"

	"hdcps/internal/task"
)

// Ring is a bounded multi-producer single-consumer queue of tasks. Producers
// may call TryPush concurrently; only the owning core may call Pop/Drain.
// Capacities are rounded up to a power of two. The zero value is not usable;
// construct with NewRing.
type Ring struct {
	mask uint64
	// head is the consumer cursor, tail the producer claim cursor.
	head  atomic.Uint64
	tail  atomic.Uint64
	slots []slot
}

type slot struct {
	// seq implements the Vyukov sequence protocol: a slot is writable for
	// ticket t when seq == t, and readable when seq == t+1. This is the
	// "flag" of the paper's receive queue, generalized so the ring can wrap
	// without the ABA problem.
	seq  atomic.Uint64
	task task.Task
}

// NewRing returns an empty ring with capacity rounded up to a power of two
// (minimum 2).
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns a snapshot of the number of published-but-unconsumed tasks.
// With concurrent producers it is approximate, as for any concurrent queue.
//
// The load order matters: head (the consumer cursor) is read before tail
// (the producer claim cursor). Both cursors only advance, so reading head
// first makes the window [h, t] a superset of some state that actually
// existed — a stale h can only overcount. Reading tail first would allow a
// concurrent push+pop between the two loads to produce a window that never
// existed and undercount (t_stale < h_fresh clamping to 0 on a non-empty
// ring).
func (r *Ring) Len() int {
	h := r.head.Load()
	t := r.tail.Load()
	if t < h {
		return 0
	}
	n := int(t - h)
	if n > len(r.slots) {
		n = len(r.slots)
	}
	return n
}

// TryPush attempts to enqueue t. It returns false when the ring is full,
// which in HD-CPS triggers the sender's flow-control fallback (pick another
// core, or spill to the destination's overflow list).
func (r *Ring) TryPush(t task.Task) bool {
	for {
		pos := r.tail.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			// Slot free for this ticket: claim it.
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.task = t
				s.seq.Store(pos + 1) // publish (the paper's flag set)
				return true
			}
		case seq < pos:
			// Slot still holds an unconsumed task a full lap behind: full.
			return false
		default:
			// Another producer claimed this ticket; retry with a new one.
		}
	}
}

// TryPushBatch enqueues a prefix of ts and returns how many tasks were
// enqueued (0 when the ring is full). The whole run of tickets is claimed
// with a single CAS on the producer cursor — the batching lever that
// "Engineering MultiQueues" shows dominates throughput in this scheduler
// shape — instead of one CAS per task.
//
// Correctness of the single availability probe: the run [pos, pos+n) is
// claimable when the slot that will hold ticket pos+n-1 has been recycled
// for it (seq == pos+n-1). The single consumer recycles slots in strict
// ticket order, so observing the last slot of the run recycled implies every
// earlier slot of the run was recycled first (and those recycles are visible
// here because sync/atomic operations are sequentially consistent).
func (r *Ring) TryPushBatch(ts []task.Task) int {
	if len(ts) == 0 {
		return 0
	}
retry:
	for {
		pos := r.tail.Load()
		n := uint64(len(ts))
		if c := uint64(len(r.slots)); n > c {
			n = c
		}
		// Shrink n until the run's last ticket is claimable.
		for {
			if n == 0 {
				return 0 // ring full
			}
			ticket := pos + n - 1
			seq := r.slots[ticket&r.mask].seq.Load()
			if seq == ticket {
				break // run [pos, pos+n) is free
			}
			if seq > ticket {
				continue retry // tail moved under us; pos is stale
			}
			n-- // that depth still holds an unconsumed task a lap behind
		}
		if !r.tail.CompareAndSwap(pos, pos+n) {
			continue // another producer claimed tickets; retry
		}
		for i := uint64(0); i < n; i++ {
			s := &r.slots[(pos+i)&r.mask]
			s.task = ts[i]
			s.seq.Store(pos + i + 1) // publish, in ticket order
		}
		return int(n)
	}
}

// Pop removes and returns the oldest published task. It must be called only
// by the ring's owning consumer.
func (r *Ring) Pop() (task.Task, bool) {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return task.Task{}, false // nothing published at the cursor
	}
	t := s.task
	s.seq.Store(pos + uint64(len(r.slots))) // recycle slot for the next lap
	r.head.Store(pos + 1)
	return t, true
}

// Drain pops up to max tasks (all published tasks if max <= 0), appending
// them to dst, and returns the extended slice. Draining in batches is what
// the paper's ISR does when moving tasks to the priority queue.
func (r *Ring) Drain(dst []task.Task, max int) []task.Task {
	for n := 0; max <= 0 || n < max; n++ {
		t, ok := r.Pop()
		if !ok {
			break
		}
		dst = append(dst, t)
	}
	return dst
}
