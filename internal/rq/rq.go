// Package rq implements the per-core software receive queue of HD-CPS
// (§III-A): a fixed-size circular buffer that decouples inter-core task
// transfer from task processing. Multiple sender cores claim slots with an
// atomic increment of the write pointer and then publish their task by
// setting the slot flag; the single owning core drains published slots into
// its private priority queue. This keeps the priority queue free of remote
// atomic operations.
package rq

import (
	"sync/atomic"

	"hdcps/internal/task"
)

// Ring is a bounded multi-producer single-consumer queue of tasks. Producers
// may call TryPush concurrently; only the owning core may call Pop/Drain.
// Capacities are rounded up to a power of two. The zero value is not usable;
// construct with NewRing.
type Ring struct {
	mask uint64
	// head is the consumer cursor, tail the producer claim cursor.
	head  atomic.Uint64
	tail  atomic.Uint64
	slots []slot
}

type slot struct {
	// seq implements the Vyukov sequence protocol: a slot is writable for
	// ticket t when seq == t, and readable when seq == t+1. This is the
	// "flag" of the paper's receive queue, generalized so the ring can wrap
	// without the ABA problem.
	seq  atomic.Uint64
	task task.Task
}

// NewRing returns an empty ring with capacity rounded up to a power of two
// (minimum 2).
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns a snapshot of the number of published-but-unconsumed tasks.
// With concurrent producers it is approximate, as for any concurrent queue.
func (r *Ring) Len() int {
	t := r.tail.Load()
	h := r.head.Load()
	if t < h {
		return 0
	}
	n := int(t - h)
	if n > len(r.slots) {
		n = len(r.slots)
	}
	return n
}

// TryPush attempts to enqueue t. It returns false when the ring is full,
// which in HD-CPS triggers the sender's flow-control fallback (pick another
// core, or spill to the destination's overflow list).
func (r *Ring) TryPush(t task.Task) bool {
	for {
		pos := r.tail.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			// Slot free for this ticket: claim it.
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.task = t
				s.seq.Store(pos + 1) // publish (the paper's flag set)
				return true
			}
		case seq < pos:
			// Slot still holds an unconsumed task a full lap behind: full.
			return false
		default:
			// Another producer claimed this ticket; retry with a new one.
		}
	}
}

// Pop removes and returns the oldest published task. It must be called only
// by the ring's owning consumer.
func (r *Ring) Pop() (task.Task, bool) {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return task.Task{}, false // nothing published at the cursor
	}
	t := s.task
	s.seq.Store(pos + uint64(len(r.slots))) // recycle slot for the next lap
	r.head.Store(pos + 1)
	return t, true
}

// Drain pops up to max tasks (all published tasks if max <= 0), appending
// them to dst, and returns the extended slice. Draining in batches is what
// the paper's ISR does when moving tasks to the priority queue.
func (r *Ring) Drain(dst []task.Task, max int) []task.Task {
	for n := 0; max <= 0 || n < max; n++ {
		t, ok := r.Pop()
		if !ok {
			break
		}
		dst = append(dst, t)
	}
	return dst
}
