package rq

import (
	"runtime"
	"sync"
	"testing"

	"hdcps/internal/task"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 8; i++ {
		if !r.TryPush(task.Task{Node: uint32(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.TryPush(task.Task{Node: 99}) {
		t.Fatal("push into full ring succeeded")
	}
	for i := 0; i < 8; i++ {
		got, ok := r.Pop()
		if !ok || got.Node != uint32(i) {
			t.Fatalf("pop %d = %v/%v", i, got, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {32, 32},
	} {
		if got := NewRing(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing(4)
	// Many laps with interleaved push/pop.
	for lap := 0; lap < 1000; lap++ {
		for i := 0; i < 3; i++ {
			if !r.TryPush(task.Task{Node: uint32(lap*3 + i)}) {
				t.Fatalf("lap %d push %d failed (len=%d)", lap, i, r.Len())
			}
		}
		for i := 0; i < 3; i++ {
			got, ok := r.Pop()
			if !ok || got.Node != uint32(lap*3+i) {
				t.Fatalf("lap %d pop %d = %v/%v", lap, i, got, ok)
			}
		}
	}
}

func TestRingLen(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 5; i++ {
		r.TryPush(task.Task{})
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	r.Pop()
	r.Pop()
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}

func TestRingDrain(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 10; i++ {
		r.TryPush(task.Task{Node: uint32(i)})
	}
	buf := make([]task.Task, 0, 16)
	buf = r.Drain(buf, 4)
	if len(buf) != 4 {
		t.Fatalf("partial drain got %d, want 4", len(buf))
	}
	buf = r.Drain(buf, 0) // drain the rest
	if len(buf) != 10 {
		t.Fatalf("full drain got %d, want 10", len(buf))
	}
	for i, tk := range buf {
		if tk.Node != uint32(i) {
			t.Fatalf("drain order broken at %d: %v", i, tk)
		}
	}
}

// TestRingConcurrentProducers is the MPSC stress test: P producers push
// disjoint task streams while one consumer drains; every task must arrive
// exactly once and each producer's stream must stay in order.
func TestRingConcurrentProducers(t *testing.T) {
	const (
		producers = 8
		perProd   = 500
	)
	r := NewRing(64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				tk := task.Task{Node: uint32(p), Data: uint64(i)}
				for !r.TryPush(tk) {
					// Full: yield and retry, as a flow-controlled sender
					// would. The yield keeps this test fast on GOMAXPROCS=1.
					runtime.Gosched()
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()

	got := make([]int, producers)     // count per producer
	lastSeq := make([]int, producers) // last sequence per producer
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	total := 0
	for total < producers*perProd {
		tk, ok := r.Pop()
		if !ok {
			select {
			case <-done:
				// producers finished; drain what remains then re-check
				if tk, ok = r.Pop(); !ok {
					if total != producers*perProd {
						t.Fatalf("consumed %d, want %d", total, producers*perProd)
					}
					break
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		p := int(tk.Node)
		seq := int(tk.Data)
		if seq <= lastSeq[p] {
			t.Fatalf("producer %d out of order: %d after %d", p, seq, lastSeq[p])
		}
		lastSeq[p] = seq
		got[p]++
		total++
	}
	for p, c := range got {
		if c != perProd {
			t.Fatalf("producer %d delivered %d, want %d", p, c, perProd)
		}
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.TryPush(task.Task{Node: uint32(i)})
		r.Pop()
	}
}
