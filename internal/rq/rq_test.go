package rq

import (
	"runtime"
	"sync"
	"testing"

	"hdcps/internal/task"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 8; i++ {
		if !r.TryPush(task.Task{Node: uint32(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.TryPush(task.Task{Node: 99}) {
		t.Fatal("push into full ring succeeded")
	}
	for i := 0; i < 8; i++ {
		got, ok := r.Pop()
		if !ok || got.Node != uint32(i) {
			t.Fatalf("pop %d = %v/%v", i, got, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {32, 32},
	} {
		if got := NewRing(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing(4)
	// Many laps with interleaved push/pop.
	for lap := 0; lap < 1000; lap++ {
		for i := 0; i < 3; i++ {
			if !r.TryPush(task.Task{Node: uint32(lap*3 + i)}) {
				t.Fatalf("lap %d push %d failed (len=%d)", lap, i, r.Len())
			}
		}
		for i := 0; i < 3; i++ {
			got, ok := r.Pop()
			if !ok || got.Node != uint32(lap*3+i) {
				t.Fatalf("lap %d pop %d = %v/%v", lap, i, got, ok)
			}
		}
	}
}

func TestRingLen(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 5; i++ {
		r.TryPush(task.Task{})
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	r.Pop()
	r.Pop()
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}

func TestRingDrain(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 10; i++ {
		r.TryPush(task.Task{Node: uint32(i)})
	}
	buf := make([]task.Task, 0, 16)
	buf = r.Drain(buf, 4)
	if len(buf) != 4 {
		t.Fatalf("partial drain got %d, want 4", len(buf))
	}
	buf = r.Drain(buf, 0) // drain the rest
	if len(buf) != 10 {
		t.Fatalf("full drain got %d, want 10", len(buf))
	}
	for i, tk := range buf {
		if tk.Node != uint32(i) {
			t.Fatalf("drain order broken at %d: %v", i, tk)
		}
	}
}

// TestRingConcurrentProducers is the MPSC stress test: P producers push
// disjoint task streams while one consumer drains; every task must arrive
// exactly once and each producer's stream must stay in order.
func TestRingConcurrentProducers(t *testing.T) {
	const (
		producers = 8
		perProd   = 500
	)
	r := NewRing(64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				tk := task.Task{Node: uint32(p), Data: uint64(i)}
				for !r.TryPush(tk) {
					// Full: yield and retry, as a flow-controlled sender
					// would. The yield keeps this test fast on GOMAXPROCS=1.
					runtime.Gosched()
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()

	got := make([]int, producers)     // count per producer
	lastSeq := make([]int, producers) // last sequence per producer
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	total := 0
	for total < producers*perProd {
		tk, ok := r.Pop()
		if !ok {
			select {
			case <-done:
				// producers finished; drain what remains then re-check
				if tk, ok = r.Pop(); !ok {
					if total != producers*perProd {
						t.Fatalf("consumed %d, want %d", total, producers*perProd)
					}
					break
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		p := int(tk.Node)
		seq := int(tk.Data)
		if seq <= lastSeq[p] {
			t.Fatalf("producer %d out of order: %d after %d", p, seq, lastSeq[p])
		}
		lastSeq[p] = seq
		got[p]++
		total++
	}
	for p, c := range got {
		if c != perProd {
			t.Fatalf("producer %d delivered %d, want %d", p, c, perProd)
		}
	}
}

func TestRingPushBatch(t *testing.T) {
	r := NewRing(8)
	batch := func(lo, n int) []task.Task {
		ts := make([]task.Task, n)
		for i := range ts {
			ts[i] = task.Task{Node: uint32(lo + i)}
		}
		return ts
	}
	if got := r.TryPushBatch(nil); got != 0 {
		t.Fatalf("empty batch pushed %d", got)
	}
	if got := r.TryPushBatch(batch(0, 5)); got != 5 {
		t.Fatalf("pushed %d, want 5", got)
	}
	// Only 3 slots remain: the push must be partial.
	if got := r.TryPushBatch(batch(5, 6)); got != 3 {
		t.Fatalf("partial push got %d, want 3", got)
	}
	if got := r.TryPushBatch(batch(99, 2)); got != 0 {
		t.Fatalf("push into full ring got %d, want 0", got)
	}
	for i := 0; i < 8; i++ {
		tk, ok := r.Pop()
		if !ok || tk.Node != uint32(i) {
			t.Fatalf("pop %d = %v/%v", i, tk, ok)
		}
	}
	// A batch longer than the capacity clamps to the capacity.
	if got := r.TryPushBatch(batch(0, 20)); got != 8 {
		t.Fatalf("oversized batch pushed %d, want 8", got)
	}
}

func TestRingPushBatchWrapAround(t *testing.T) {
	r := NewRing(4)
	next := uint32(0)
	want := uint32(0)
	for lap := 0; lap < 1000; lap++ {
		ts := make([]task.Task, 3)
		for i := range ts {
			ts[i] = task.Task{Node: next}
			next++
		}
		if got := r.TryPushBatch(ts); got != 3 {
			t.Fatalf("lap %d pushed %d, want 3", lap, got)
		}
		for i := 0; i < 3; i++ {
			tk, ok := r.Pop()
			if !ok || tk.Node != want {
				t.Fatalf("lap %d pop = %v/%v, want node %d", lap, tk, ok, want)
			}
			want++
		}
	}
}

// TestRingConcurrentBatchProducers stresses TryPushBatch from several
// producers against one consumer: exactly-once delivery with per-producer
// order, mixing batch sizes (including single-task batches so the one-CAS
// claim interleaves with the per-task protocol).
func TestRingConcurrentBatchProducers(t *testing.T) {
	const (
		producers = 6
		perProd   = 900
	)
	r := NewRing(32)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sent := 0
			batch := make([]task.Task, 0, 8)
			for sent < perProd {
				n := 1 + (sent+p)%7 // varying batch sizes 1..7
				if n > perProd-sent {
					n = perProd - sent
				}
				batch = batch[:0]
				for i := 0; i < n; i++ {
					batch = append(batch, task.Task{Node: uint32(p), Data: uint64(sent + i)})
				}
				for len(batch) > 0 {
					k := r.TryPushBatch(batch)
					if k == 0 {
						runtime.Gosched()
						continue
					}
					sent += k
					batch = batch[k:]
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
	}()

	lastSeq := make([]int, producers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	for total := 0; total < producers*perProd; {
		tk, ok := r.Pop()
		if !ok {
			runtime.Gosched()
			continue
		}
		p, seq := int(tk.Node), int(tk.Data)
		if seq != lastSeq[p]+1 {
			t.Fatalf("producer %d out of order: %d after %d", p, seq, lastSeq[p])
		}
		lastSeq[p] = seq
		total++
	}
}

// TestRingLenConcurrent verifies the Len snapshot invariants under
// concurrent push/pop: with head loaded before tail, Len can never report
// an impossible value (negative window clamped from a stale tail) and stays
// within [0, cap]. The consumer additionally checks a lower bound it knows:
// after it pushes and before it pops, the ring holds at least the
// difference it created itself — but with remote producers only an upper
// bound is exact, so the test pins the [0, cap] envelope and that an
// all-quiesced ring reports the true count.
func TestRingLenConcurrent(t *testing.T) {
	const producers = 4
	r := NewRing(16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.TryPush(task.Task{})
				if n := r.Len(); n < 0 || n > r.Cap() {
					panic("Len out of range") // t.Fatal not allowed off the test goroutine
				}
			}
		}()
	}
	deadline := 200000
	for i := 0; i < deadline; i++ {
		if n := r.Len(); n < 0 || n > r.Cap() {
			t.Fatalf("Len = %d out of [0, %d]", n, r.Cap())
		}
		r.Pop()
	}
	close(stop)
	wg.Wait()
	// Quiesced: Len must be exact.
	n := 0
	for {
		if _, ok := r.Pop(); !ok {
			break
		}
		n++
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("drained ring Len = %d", got)
	}
	_ = n
}

// benchProducers runs the push side on p goroutines against one draining
// consumer; push reports per-task cost including the consumer keeping up.
func benchProducers(b *testing.B, p int, push func(r *Ring, id int, n int)) {
	r := NewRing(256)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]task.Task, 0, 256)
		for {
			buf = r.Drain(buf[:0], 0)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	per := b.N / p
	if per == 0 {
		per = 1
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for id := 0; id < p; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			push(r, id, per)
		}(id)
	}
	wg.Wait()
	b.StopTimer()
	close(stop)
	<-done
}

func BenchmarkRingPush(b *testing.B) {
	for _, p := range []int{1, 4, 8} {
		b.Run(fmtProducers(p), func(b *testing.B) {
			b.ReportAllocs()
			benchProducers(b, p, func(r *Ring, id, n int) {
				for i := 0; i < n; i++ {
					for !r.TryPush(task.Task{Node: uint32(id), Data: uint64(i)}) {
						runtime.Gosched()
					}
				}
			})
		})
	}
}

func BenchmarkRingPushBatch(b *testing.B) {
	const batch = 16
	for _, p := range []int{1, 4, 8} {
		b.Run(fmtProducers(p), func(b *testing.B) {
			b.ReportAllocs()
			benchProducers(b, p, func(r *Ring, id, n int) {
				ts := make([]task.Task, batch)
				for i := range ts {
					ts[i] = task.Task{Node: uint32(id)}
				}
				for sent := 0; sent < n; {
					want := n - sent
					if want > batch {
						want = batch
					}
					k := r.TryPushBatch(ts[:want])
					if k == 0 {
						runtime.Gosched()
						continue
					}
					sent += k
				}
			})
		})
	}
}

func fmtProducers(p int) string {
	return "producers=" + string(rune('0'+p))
}

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.TryPush(task.Task{Node: uint32(i)})
		r.Pop()
	}
}
