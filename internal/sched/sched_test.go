package sched

import (
	"testing"

	"hdcps/internal/bag"

	"hdcps/internal/drift"
	"hdcps/internal/graph"
	"hdcps/internal/sim"
	"hdcps/internal/stats"
	"hdcps/internal/workload"
)

func smallGraphs() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"road": graph.Road(16, 16, 5),
		"cage": graph.Cage(300, 10, 24, 5),
	}
}

// TestAllSchedulersAllWorkloads is the master correctness matrix: every
// scheduler must drive every workload to a verifiably correct result on the
// simulator, in both software and hardware machine modes.
func TestAllSchedulersAllWorkloads(t *testing.T) {
	cfgs := map[string]sim.Config{
		"sw8":  sim.DefaultSW(8),
		"hw16": func() sim.Config { c := sim.DefaultHW(); c.Cores = 16; return c }(),
	}
	for gname, g := range smallGraphs() {
		for _, wname := range []string{"sssp", "bfs", "color", "pagerank"} {
			for _, sname := range Names() {
				for cname, cfg := range cfgs {
					s, err := ByName(sname)
					if err != nil {
						t.Fatal(err)
					}
					w, err := workload.New(wname, g)
					if err != nil {
						t.Fatal(err)
					}
					r := s.Run(w, cfg, 42)
					if r.CompletionTime <= 0 {
						t.Errorf("%s/%s/%s/%s: no time elapsed", sname, wname, gname, cname)
					}
					if r.TasksProcessed <= 0 {
						t.Errorf("%s/%s/%s/%s: no tasks processed", sname, wname, gname, cname)
					}
					if err := w.Verify(); err != nil {
						t.Errorf("%s/%s/%s/%s: %v", sname, wname, gname, cname, err)
					}
				}
			}
		}
	}
}

func TestHeavyWorkloadsOnKeySchedulers(t *testing.T) {
	// MST and A* are slower; run them against a representative subset.
	g := graph.Road(16, 16, 7)
	for _, wname := range []string{"mst", "astar"} {
		for _, sname := range []string{"seq", "reld", "hdcps-sw", "hdcps-hw", "obim", "pmod", "swminnow", "hwminnow", "swarm"} {
			s, _ := ByName(sname)
			w, _ := workload.New(wname, g)
			r := s.Run(w, sim.DefaultSW(8), 1)
			if r.TasksProcessed <= 0 {
				t.Errorf("%s/%s: no tasks", sname, wname)
			}
			if err := w.Verify(); err != nil {
				t.Errorf("%s/%s: %v", sname, wname, err)
			}
		}
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	g := graph.Road(16, 16, 3)
	for _, sname := range Names() {
		s, _ := ByName(sname)
		run := func() stats.Run {
			w, _ := workload.New("sssp", g)
			return s.Run(w, sim.DefaultSW(8), 7)
		}
		a, b := run(), run()
		if a.CompletionTime != b.CompletionTime || a.TasksProcessed != b.TasksProcessed {
			t.Errorf("%s not deterministic: %d/%d vs %d/%d",
				sname, a.CompletionTime, a.TasksProcessed, b.CompletionTime, b.TasksProcessed)
		}
	}
}

func TestBreakdownAccountsTime(t *testing.T) {
	// The summed per-core breakdown must roughly cover cores * completion
	// time (every core is always busy or idle-in-comm). Allow slack for
	// final-event bookkeeping.
	g := graph.Road(16, 16, 3)
	for _, sname := range []string{"reld", "hdcps-sw", "obim", "swarm"} {
		s, _ := ByName(sname)
		w, _ := workload.New("sssp", g)
		cfg := sim.DefaultSW(8)
		r := s.Run(w, cfg, 11)
		covered := r.Breakdown.Total()
		budget := r.CompletionTime * int64(cfg.Cores)
		if covered > budget*11/10 {
			t.Errorf("%s: breakdown %d exceeds time budget %d", sname, covered, budget)
		}
		if covered < budget/3 {
			t.Errorf("%s: breakdown %d covers under a third of budget %d (accounting hole)",
				sname, covered, budget)
		}
	}
}

func TestParallelismHelps(t *testing.T) {
	// More cores must reduce completion time on a parallel-friendly input
	// for the headline schedulers.
	g := graph.Cage(1500, 12, 30, 9)
	for _, sname := range []string{"hdcps-sw", "pmod"} {
		s, _ := ByName(sname)
		w1, _ := workload.New("sssp", g)
		t1 := s.Run(w1, sim.DefaultSW(1), 3).CompletionTime
		w16, _ := workload.New("sssp", g)
		t16 := s.Run(w16, sim.DefaultSW(16), 3).CompletionTime
		if t16 >= t1 {
			t.Errorf("%s: 16 cores (%d) not faster than 1 core (%d)", sname, t16, t1)
		}
	}
}

func TestHardwareAssistHelps(t *testing.T) {
	// hRQ+hPQ must beat the software-only configuration (Fig. 6's ~20%).
	g := graph.Cage(1500, 12, 30, 9)
	sw, _ := ByName("hdcps-sw")
	hw, _ := ByName("hdcps-hw")
	cfg := sim.DefaultHW()
	cfg.Cores = 16
	cfg.HRQSize, cfg.HPQSize = 0, 0
	wsw, _ := workload.New("sssp", g)
	tsw := sw.Run(wsw, cfg, 3).CompletionTime
	whw, _ := workload.New("sssp", g)
	thw := hw.Run(whw, cfg, 3).CompletionTime
	if thw >= tsw {
		t.Errorf("hardware assist slower: hw %d vs sw %d", thw, tsw)
	}
}

func TestRELDDriftWorseThanHDCPS(t *testing.T) {
	// The paper's central claim: HD-CPS:SW tracks and improves priority
	// drift relative to RELD on a divergent-priority (road) input.
	g := graph.Road(28, 28, 13)
	reld, _ := ByName("reld")
	hd, _ := ByName("hdcps-sw")
	wr, _ := workload.New("sssp", g)
	rr := reld.Run(wr, sim.DefaultSW(16), 5)
	wh, _ := workload.New("sssp", g)
	rh := hd.Run(wh, sim.DefaultSW(16), 5)
	if rh.CompletionTime >= rr.CompletionTime {
		t.Errorf("hdcps-sw (%d) not faster than reld (%d)", rh.CompletionTime, rr.CompletionTime)
	}
}

func TestSwarmWorkEfficiency(t *testing.T) {
	// Swarm's near-ordered execution should process no more tasks than
	// RELD's relaxed execution on a drift-prone input.
	g := graph.Road(24, 24, 17)
	swarm, _ := ByName("swarm")
	reld, _ := ByName("reld")
	cfg := sim.DefaultHW()
	cfg.Cores = 16
	ws, _ := workload.New("sssp", g)
	rs := swarm.Run(ws, cfg, 5)
	wr, _ := workload.New("sssp", g)
	rr := reld.Run(wr, cfg, 5)
	if rs.TasksProcessed > rr.TasksProcessed {
		t.Errorf("swarm processed more tasks (%d) than reld (%d)", rs.TasksProcessed, rr.TasksProcessed)
	}
}

func TestTDFTraceRecorded(t *testing.T) {
	g := graph.Cage(2000, 12, 30, 3)
	s := NewCPS(CPSConfig{
		Label: "tdf-test", UseRQ: true, UseTDF: true,
		Drift: driftSmallInterval(),
	})
	w, _ := workload.New("sssp", g)
	r := s.Run(w, sim.DefaultSW(8), 3)
	if len(r.TDFTrace) == 0 {
		t.Fatal("no TDF updates recorded; controller never ran")
	}
	for _, tdf := range r.TDFTrace {
		if tdf < 1 || tdf > 100 {
			t.Fatalf("TDF %d out of range", tdf)
		}
	}
}

func TestOracleScheduleOverride(t *testing.T) {
	g := graph.Cage(800, 10, 24, 3)
	fixed := 0
	s := NewCPS(CPSConfig{
		Label: "oracle-test", UseRQ: true,
		Drift:       driftSmallInterval(),
		TDFSchedule: func(i int) int { fixed++; return 25 },
	})
	w, _ := workload.New("sssp", g)
	r := s.Run(w, sim.DefaultSW(8), 3)
	if fixed == 0 {
		t.Fatal("TDF schedule never consulted")
	}
	for _, tdf := range r.TDFTrace {
		if tdf != 25 {
			t.Fatalf("schedule override ignored: TDF %d", tdf)
		}
	}
}

func driftSmallInterval() drift.Config {
	return drift.Config{SampleInterval: 20}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown scheduler should error")
	}
	for _, n := range Names() {
		s, err := ByName(n)
		if err != nil {
			t.Fatalf("registered name %q failed: %v", n, err)
		}
		if s.Name() == "" {
			t.Fatalf("%q has empty display name", n)
		}
	}
}

func TestSWMinnowConfigs(t *testing.T) {
	// Different worker/minnow splits must all complete correctly (Fig. 11).
	g := graph.Road(14, 14, 3)
	for _, minnows := range []int{1, 2, 4} {
		s := SWMinnow(minnows)
		w, _ := workload.New("bfs", g)
		r := s.Run(w, sim.DefaultSW(10), 3)
		if err := w.Verify(); err != nil {
			t.Errorf("swminnow-%d: %v", minnows, err)
		}
		if r.CompletionTime <= 0 {
			t.Errorf("swminnow-%d: no time", minnows)
		}
	}
}

func TestDriftTraceNonEmpty(t *testing.T) {
	g := graph.Cage(1500, 12, 30, 3)
	for _, sname := range []string{"reld", "obim", "hdcps-sw", "swarm"} {
		s, _ := ByName(sname)
		w, _ := workload.New("sssp", g)
		r := s.Run(w, sim.DefaultSW(8), 3)
		if len(r.DriftTrace) == 0 {
			t.Errorf("%s: no drift samples (run too short for probe or probe broken)", sname)
		}
	}
}

func TestFlowControlRedirects(t *testing.T) {
	// With a tiny hRQ, senders must hit full destinations and re-pick
	// (§III-D capacity counters). Observe it directly via the handler.
	g := graph.Cage(800, 16, 40, 3)
	w, _ := workload.New("sssp", g)
	cfg := sim.DefaultHW()
	cfg.Cores = 8
	cfg.HRQSize = 2
	m := sim.New(cfg)
	h := newCPSHandler(CPSConfig{Label: "fc", UseRQ: true, FixedTDF: 100,
		Bags: bagNeverPolicy()}, w, m.Config(), 3)
	w.Reset()
	m.Run(h)
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if h.flowRedirects == 0 {
		t.Fatal("no flow-control redirects despite a 2-entry hRQ")
	}
	// A large hRQ should need (almost) none.
	w2, _ := workload.New("sssp", g)
	cfg.HRQSize = 1024
	m2 := sim.New(cfg)
	h2 := newCPSHandler(CPSConfig{Label: "fc", UseRQ: true, FixedTDF: 100,
		Bags: bagNeverPolicy()}, w2, m2.Config(), 3)
	w2.Reset()
	m2.Run(h2)
	if h2.flowRedirects > h.flowRedirects/10 {
		t.Fatalf("large hRQ still redirects heavily: %d vs %d", h2.flowRedirects, h.flowRedirects)
	}
}

func bagNeverPolicy() bag.Policy { return bag.Policy{Mode: bag.Never} }
