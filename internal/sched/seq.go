package sched

import (
	"hdcps/internal/pq"
	"hdcps/internal/sim"
	"hdcps/internal/stats"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// Sequential is the single-core, strict-priority-order baseline every
// speedup in the paper is measured against (its "optimized sequential
// implementation"). It uses one software priority queue and processes tasks
// in exact priority order, so it also defines the work-efficiency
// denominator (SeqTasks).
type Sequential struct{}

// Name implements Scheduler.
func (Sequential) Name() string { return "seq" }

// Run implements Scheduler.
func (Sequential) Run(w workload.Workload, cfg sim.Config, seed uint64) stats.Run {
	cfg.Cores = 1
	m := sim.New(cfg)
	h := &seqHandler{
		cm: costModel{cfg: m.Config(), g: w.Graph()},
		w:  w,
		q:  pq.NewBinaryHeap(1024),
	}
	w.Reset()
	total, bds := m.Run(h)
	r := newRun("seq", w, m.Config())
	finishRun(&r, total, bds, m)
	r.TasksProcessed = h.processed
	r.SeqTasks = h.processed
	return r
}

type seqHandler struct {
	cm        costModel
	w         workload.Workload
	q         *pq.BinaryHeap
	processed int64
	children  []task.Task
}

func (h *seqHandler) Start(m *sim.Machine) {
	for _, t := range h.w.InitialTasks() {
		h.q.Push(t)
	}
	m.Wake(0)
}

func (h *seqHandler) Ready(m *sim.Machine, core int) (int64, bool) {
	t, ok := h.q.Pop()
	if !ok {
		return 0, true
	}
	var cost int64
	deq := h.cm.swPQCost(h.q.Len() + 1)
	m.Charge(core, sim.Dequeue, deq)
	cost += deq

	h.children = h.children[:0]
	edges := h.w.Process(t, func(c task.Task) { h.children = append(h.children, c) })
	h.processed++
	comp := h.cm.taskCost(m, core, t, edges)
	m.Charge(core, sim.Compute, comp)
	cost += comp

	for _, c := range h.children {
		h.q.Push(c)
		enq := h.cm.swPQCost(h.q.Len())
		m.Charge(core, sim.Enqueue, enq)
		cost += enq
	}
	return cost, false
}

func (h *seqHandler) Receive(m *sim.Machine, core int, msg sim.Message) int64 { return 0 }
