package sched

import (
	"hdcps/internal/pq"
	"hdcps/internal/sim"
	"hdcps/internal/stats"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// Swarm models the speculative strictly-ordered architecture of [14] at the
// abstraction level the paper compares against (§IV-B): dedicated hardware
// task queues give every core access to the *globally* highest-priority
// available task at hardware latency, tasks execute speculatively out of
// order across cores, and ordering violations cost rollbacks that are
// charged to compute (as the paper does, §IV-C).
//
// Abstraction notes (see DESIGN.md): the per-core task/commit queues are
// collapsed into one zero-software-cost global queue — exactly the best
// schedule those queues plus speculation converge to — and a mis-speculation
// is detected when a task improves (writes) a node that a higher-timestamp
// task consumed within the speculation window; the squashed task's work is
// re-charged as rollback, and its re-execution is the duplicate task the
// workload's relaxed-tolerance already generates. This keeps the two traits
// the paper's comparison rests on: near-sequential work efficiency and a
// visible rollback cost on conflict-heavy inputs.
type swarmScheduler struct{}

// Swarm returns the speculative ordered-execution scheduler.
func Swarm() Scheduler { return swarmScheduler{} }

func (swarmScheduler) Name() string { return "swarm" }

// swarmWindow is the speculation depth in cycles: writes landing within
// this window of a later-priority read are treated as ordering violations.
const swarmWindow = 4096

// swarmXferCycles approximates the NoC cost of steering a task to the core
// that executes it (a few hops of hardware messaging).
const swarmXferCycles = 8

func (swarmScheduler) Run(w workload.Workload, cfg sim.Config, seed uint64) stats.Run {
	m := sim.New(cfg)
	n := w.Graph().NumNodes()
	h := &swarmHandler{
		cm:       costModel{cfg: m.Config(), g: w.Graph()},
		w:        w,
		gq:       pq.NewBinaryHeap(1024),
		curPrio:  make([]int64, m.Config().Cores),
		doneAt:   make([]int64, n),
		donePrio: make([]int64, n),
		idle:     make([]bool, m.Config().Cores),
	}
	for i := range h.curPrio {
		h.curPrio[i] = idlePrio
	}
	for i := range h.doneAt {
		h.doneAt[i] = -swarmWindow - 1
		h.donePrio[i] = int64(1) << 62
	}
	w.Reset()
	m.SetDriftProbe(h.activePriorities, driftProbeInterval, 0)
	total, bds := m.Run(h)
	r := newRun("swarm", w, m.Config())
	finishRun(&r, total, bds, m)
	r.TasksProcessed = h.processed
	r.Aborts = h.aborts
	return r
}

type swarmHandler struct {
	cm costModel
	w  workload.Workload
	gq *pq.BinaryHeap // idealized hardware global task queue

	curPrio  []int64
	doneAt   []int64 // per node: cycle its task last executed
	donePrio []int64 // per node: priority of that task

	idle      []bool
	processed int64
	aborts    int64
	children  []task.Task
}

func (h *swarmHandler) activePriorities() []int64 {
	out := make([]int64, 0, len(h.curPrio))
	for _, p := range h.curPrio {
		if p != idlePrio {
			out = append(out, p)
		}
	}
	return out
}

func (h *swarmHandler) Start(m *sim.Machine) {
	for _, t := range h.w.InitialTasks() {
		h.gq.Push(t)
	}
	for i := 0; i < len(h.idle); i++ {
		m.Wake(i)
	}
}

func (h *swarmHandler) Ready(m *sim.Machine, core int) (int64, bool) {
	t, ok := h.gq.Pop()
	if !ok {
		h.curPrio[core] = idlePrio
		h.idle[core] = true
		return 0, true
	}
	h.curPrio[core] = t.Prio
	// Hardware dequeue + task steering across the NoC.
	cost := h.cm.cfg.HWQueueCycles + swarmXferCycles
	m.Charge(core, sim.Dequeue, h.cm.cfg.HWQueueCycles)
	m.Charge(core, sim.Comm, swarmXferCycles)

	h.children = h.children[:0]
	edges := h.w.Process(t, func(c task.Task) { h.children = append(h.children, c) })
	h.processed++
	comp := h.cm.taskCost(m, core, t, edges)
	m.Charge(core, sim.Compute, comp)
	cost += comp

	now := m.Now()
	for _, c := range h.children {
		// A child task is a write to c.Node. If a higher-timestamp task
		// consumed that node within the speculation window, it executed on
		// stale state: squash it (the child is its re-execution) and charge
		// the wasted work as rollback.
		if now-h.doneAt[c.Node] <= swarmWindow && h.donePrio[c.Node] > t.Prio {
			h.aborts++
			rb := h.cm.cfg.TaskBaseCycles +
				int64(h.cm.g.OutDegree(c.Node))*h.cm.cfg.EdgeCycles
			m.Charge(core, sim.Compute, rb)
			cost += rb
		}
		h.gq.Push(c)
		m.Charge(core, sim.Enqueue, h.cm.cfg.HWQueueCycles)
		cost += h.cm.cfg.HWQueueCycles
	}
	h.doneAt[t.Node] = now
	h.donePrio[t.Node] = t.Prio
	if len(h.children) > 0 {
		h.wakeIdle(m, len(h.children))
	}
	return cost, false
}

// wakeIdle re-arms up to n parked cores to pick up freshly pushed tasks.
func (h *swarmHandler) wakeIdle(m *sim.Machine, n int) {
	for i := 0; i < len(h.idle) && n > 0; i++ {
		if h.idle[i] {
			h.idle[i] = false
			m.Wake(i)
			n--
		}
	}
}

func (h *swarmHandler) Receive(m *sim.Machine, core int, msg sim.Message) int64 { return 0 }
