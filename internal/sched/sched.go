// Package sched implements every concurrent priority scheduler the paper
// evaluates, all running on the deterministic simulator in package sim:
//
//   - Sequential: the single-core baseline speedups are measured against.
//   - RELD: push-style per-core locked priority queues, random distribution.
//   - OBIM: pull-style global bag map with fixed priority quantization.
//   - PMOD: OBIM with runtime bag merge/split.
//   - Software Minnow: OBIM with dedicated prefetch (minnow) cores.
//   - Hardware Minnow: per-worker offload engines for worklist operations.
//   - HD-CPS: the paper's contribution, §III, in all its configurations
//     (sRQ, +TDF, +AC, +SC, hRQ, hRQ+hPQ) — RELD is its degenerate preset.
//   - Swarm: idealized speculative ordered execution with conflict aborts.
//
// Each scheduler charges the simulator for every operation it models; the
// cost constants live in sim.Config so software mode (Xeon-like) and
// hardware mode (Table I) share one fabric.
package sched

import (
	"fmt"

	"hdcps/internal/graph"
	"hdcps/internal/sim"
	"hdcps/internal/stats"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// Scheduler runs a workload on a simulated machine and reports the
// paper's metrics.
type Scheduler interface {
	// Name returns the label used in figures.
	Name() string
	// Run executes w to completion on a fresh machine with cfg and returns
	// the run's metrics. It resets w first. Implementations must be
	// deterministic for a fixed (w, cfg, seed).
	Run(w workload.Workload, cfg sim.Config, seed uint64) stats.Run
}

// idlePrio is the per-core "no current task" sentinel excluded from drift
// sampling.
const idlePrio = int64(1) << 62

// driftProbeInterval is the machine-cycle spacing of the figure-level drift
// sampler (the fixed sampling interval of Fig. 3's drift metric).
const driftProbeInterval = 50_000

// costModel bundles the cycle accounting shared by all schedulers.
type costModel struct {
	cfg sim.Config
	g   *graph.CSR
}

// Synthetic address space for the cache model: workload node state, the CSR
// adjacency arrays, and per-core scheduler structures live in disjoint
// regions so the private caches see realistic reuse patterns.
const (
	addrNodeBase  = uint64(0x1000_0000)
	addrEdgeBase  = uint64(0x4000_0000)
	addrSchedBase = uint64(0x8000_0000)
	schedStride   = uint64(1) << 24 // per-core scheduler heap region
)

func nodeAddr(u graph.NodeID) uint64 { return addrNodeBase + uint64(u)*8 }
func edgeAddr(off uint32) uint64     { return addrEdgeBase + uint64(off)*8 }

// taskCost charges the memory system for processing task t on core (reading
// the node's state, streaming its adjacency list, touching each neighbor's
// state) and returns the total compute cycles: fixed base + per-edge work +
// memory latency.
// taskCostAt is taskCost issued `at` cycles into the core's current step.
func (c *costModel) taskCostAt(m *sim.Machine, core int, t task.Task, edges int, at int64) int64 {
	u := t.Node
	cost := c.cfg.TaskBaseCycles + int64(edges)*c.cfg.EdgeCycles
	cost += m.MemAccessAt(core, nodeAddr(u), 8, at+cost)
	if edges > 0 {
		lo := c.g.Off[u]
		cost += m.MemAccessAt(core, edgeAddr(lo), 8*edges, at+cost) // sequential stream
		dsts, _ := c.g.Neighbors(u)
		for i := 0; i < edges && i < len(dsts); i++ {
			cost += m.MemAccessAt(core, nodeAddr(dsts[i]), 8, at+cost)
		}
	}
	return cost
}

func (c *costModel) taskCost(m *sim.Machine, core int, t task.Task, edges int) int64 {
	return c.taskCostAt(m, core, t, edges, 0)
}

// swPQCost returns the software priority-queue operation cost for a queue
// of length n: base + per-log2(n) rebalancing, the O(log n) the paper
// identifies as a dominant overhead.
func (c *costModel) swPQCost(n int) int64 {
	cost := c.cfg.SWPQBase
	for n > 1 {
		cost += c.cfg.SWPQPerLog
		n >>= 1
	}
	return cost
}

// lockModel serializes a shared software lock: acquire at time t returns
// the wait (contention) cycles; the lock is then held for hold cycles.
type lockModel struct{ free int64 }

func (l *lockModel) acquire(t, hold int64) (wait int64) {
	if l.free > t {
		wait = l.free - t
	}
	l.free = t + wait + hold
	return wait
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// runResult assembles the common stats.Run fields.
func newRun(schedName string, w workload.Workload, cfg sim.Config) stats.Run {
	return stats.Run{
		Scheduler: schedName,
		Workload:  w.Name(),
		Input:     w.Graph().Name,
		Cores:     cfg.Cores,
	}
}

// finishRun folds the machine's outputs into r.
func finishRun(r *stats.Run, total int64, bds []stats.Breakdown, m *sim.Machine) {
	r.CompletionTime = total
	for _, b := range bds {
		r.Breakdown.Add(b)
	}
	r.MessagesSent = m.MessagesSent()
	r.L1Hits, r.L2Hits, r.MemMisses = m.MemStats()
	r.DriftTrace = m.DriftTrace()
}

// ByName returns the scheduler registered under name. Available names:
// seq, reld, obim, pmod, swminnow, hwminnow, hdcps-sw, hdcps-hw, swarm, the
// HD-CPS ablation variants (srq, srq+tdf, srq+tdf+ac, hrq), and the §II
// motivation baselines (steal, ordered, multiq).
func ByName(name string) (Scheduler, error) {
	switch name {
	case "seq":
		return Sequential{}, nil
	case "reld":
		return RELD(), nil
	case "srq":
		return VariantSRQ(), nil
	case "srq+tdf":
		return VariantSRQTDF(), nil
	case "srq+tdf+ac":
		return VariantSRQTDFAC(), nil
	case "hdcps-sw":
		return HDCPSSW(), nil
	case "hrq":
		return VariantHRQ(), nil
	case "hdcps-hw":
		return HDCPSHW(), nil
	case "obim":
		return OBIM(), nil
	case "pmod":
		return PMOD(), nil
	case "swminnow":
		return SWMinnow(4), nil
	case "hwminnow":
		return HWMinnow(), nil
	case "swarm":
		return Swarm(), nil
	case "steal":
		return Steal(), nil
	case "ordered":
		return Ordered(), nil
	case "multiq":
		return MultiQ(), nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q", name)
	}
}

// Names lists the registered scheduler names.
func Names() []string {
	return []string{
		"seq", "reld", "srq", "srq+tdf", "srq+tdf+ac", "hdcps-sw",
		"hrq", "hdcps-hw", "obim", "pmod", "swminnow", "hwminnow", "swarm",
		"steal", "ordered", "multiq",
	}
}
