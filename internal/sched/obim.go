package sched

import (
	"hdcps/internal/graph"
	"hdcps/internal/pq"
	"hdcps/internal/sim"
	"hdcps/internal/stats"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// The OBIM family (§II-A, §IV-A): pull-style schedulers built around a
// globally shared map of priority-quantized buckets ("bags") of tasks.
//
//   - OBIM quantizes priorities with a fixed shift; a core out of work takes
//     a chunk of tasks from the globally best (lowest) non-empty bucket and
//     processes it without further global traffic, publishing the bags its
//     children fill.
//   - PMOD adds runtime adaptation: it widens the quantization when bags
//     come back underutilized and narrows it when they are always full.
//   - Software Minnow splits the cores into workers and minnow (helper)
//     cores; minnows do all global-map traffic and keep per-worker prefetch
//     buffers full, at the cost of cores lost to task processing.
//   - Hardware Minnow gives every worker an offload engine: global-map
//     operations cost the worker no cycles but still serialize on the map
//     and pay NoC latency for prefetch delivery.
//
// The global map is guarded by one software lock — the "high
// synchronization among cores" the paper attributes to OBIM's work-list.

// obimChunkSize is the bag-chunk capacity (tasks per grab). Galois uses a
// manually tuned value; 16 fits the reduced-scale inputs the experiments run
// (DESIGN.md). PMOD additionally adapts its effective chunk size at runtime.
const obimChunkSize = 16

// minnowDepth is the per-worker prefetch buffer target: one bag ahead of
// the one being processed. Deeper buffers hoard the frontier into private
// buffers and starve other workers.
const minnowDepth = 1

// obimAppendCycles is the cost of appending a child to a local pending
// chunk: a pointer bump, not a priority-queue operation.
const obimAppendCycles = 8

// obimKind selects the family member.
type obimKind int

const (
	kindOBIM obimKind = iota
	kindPMOD
	kindSWMinnow
	kindHWMinnow
)

type obimScheduler struct {
	kind    obimKind
	label   string
	minnows int // SW Minnow only
}

// OBIM returns the fixed-quantization global-bag scheduler.
func OBIM() Scheduler { return obimScheduler{kind: kindOBIM, label: "obim"} }

// PMOD returns OBIM with runtime bag merge/split.
func PMOD() Scheduler { return obimScheduler{kind: kindPMOD, label: "pmod"} }

// SWMinnow returns Software Minnow with the given number of dedicated
// minnow cores (the paper's best split on 40 cores is 4).
func SWMinnow(minnows int) Scheduler {
	return obimScheduler{kind: kindSWMinnow, label: "swminnow", minnows: minnows}
}

// HWMinnow returns Minnow with per-worker hardware offload engines.
func HWMinnow() Scheduler { return obimScheduler{kind: kindHWMinnow, label: "hwminnow"} }

func (s obimScheduler) Name() string { return s.label }

func (s obimScheduler) Run(w workload.Workload, cfg sim.Config, seed uint64) stats.Run {
	m := sim.New(cfg)
	h := newOBIMHandler(s, w, m.Config(), seed)
	w.Reset()
	m.SetDriftProbe(h.activePriorities, driftProbeInterval, 0)
	total, bds := m.Run(h)
	r := newRun(s.label, w, m.Config())
	finishRun(&r, total, bds, m)
	r.TasksProcessed = h.processed
	r.BagsCreated = h.chunksTaken
	r.BaggedTasks = h.processed
	return r
}

// globalMap is the shared bucket map: tasks grouped by quantized priority,
// served best-bucket-first in chunks.
type globalMap struct {
	buckets map[int64][]task.Task
	order   *pq.BinaryHeap // min-heap over bucket keys currently present
	size    int
	lock    lockModel

	shift int // priority quantization (bucket = prio >> shift)
	cores int // consumers, for the fair-share grab bound

	// PMOD bag-utilization feedback: adapts both the quantization (merge/
	// split priority ranges) and the effective bag-chunk size.
	adapt      bool
	chunkCap   int
	popSizeSum int64
	popReqSum  int64
	popCount   int64
	fetchSeq   uint64
}

const (
	pmodWindow   = 32 // pops between adaptation decisions
	pmodLowFill  = obimChunkSize / 4
	obimShift    = 2 // OBIM's fixed quantization (needs manual tuning)
	pmodMaxShift = 6
)

func (g *globalMap) bucketOf(prio int64) int64 { return prio >> uint(g.shift) }

// push appends tasks to their bucket.
func (g *globalMap) push(bucket int64, ts []task.Task) {
	if len(ts) == 0 {
		return
	}
	if len(g.buckets[bucket]) == 0 {
		g.order.Push(task.Task{Node: bagTaskNode, Prio: bucket})
	}
	g.buckets[bucket] = append(g.buckets[bucket], ts...)
	g.size += len(ts)
}

// popChunk removes up to max tasks from the best non-empty bucket.
func (g *globalMap) popChunk(max int) (int64, []task.Task, bool) {
	for {
		top, ok := g.order.Peek()
		if !ok {
			return 0, nil, false
		}
		b := top.Prio
		ts := g.buckets[b]
		if len(ts) == 0 {
			g.order.Pop()
			delete(g.buckets, b)
			continue
		}
		n := len(ts)
		if g.adapt {
			max = g.chunkCap // PMOD: the adaptive bag size replaces the default
		}
		// Fair-share bound: never grab more than 1/cores of the available
		// work, so a shallow frontier is not hoarded by whoever asks first.
		if g.cores > 0 {
			if fair := g.size / g.cores; fair < max {
				max = fair
			}
		}
		if max < 4 {
			max = 4 // floor: amortize the locked grab over a few tasks
		}
		if n > max {
			n = max
		}
		out := ts[:n:n]
		g.buckets[b] = ts[n:]
		g.size -= n
		if len(g.buckets[b]) == 0 {
			g.order.Pop()
			delete(g.buckets, b)
		}
		if g.adapt {
			// Utilization is judged against what was actually requested
			// (after the fair-share bound), so a shallow frontier is not
			// mistaken for bag under-utilization.
			g.popSizeSum += int64(n)
			g.popReqSum += int64(max)
			g.popCount++
			if g.popCount >= pmodWindow {
				switch {
				case g.popSizeSum*4 < g.popReqSum:
					// Bags underutilized: shrink the over-commit and merge
					// priority ranges so bags refill.
					if g.chunkCap > 4 {
						g.chunkCap /= 2
					}
					if g.shift < pmodMaxShift {
						g.shift++
					}
				case g.popSizeSum >= g.popReqSum:
					// Bags always full: grow them and split priority
					// ranges for tighter ordering.
					if g.chunkCap < 64 {
						g.chunkCap *= 2
					}
					if g.shift > 0 {
						g.shift--
					}
				}
				g.popSizeSum, g.popReqSum, g.popCount = 0, 0, 0
			}
		}
		return b, out, true
	}
}

// opCost is the software cost of one locked map operation given its size.
func (h *obimHandler) opCost() int64 {
	return h.cm.swPQCost(len(h.g.buckets) + 1)
}

// chunkRec is a delivered chunk in a Minnow buffer.
type chunkRec struct {
	id     uint64
	tasks  []task.Task
	bucket int64
}

// obimCore is per-core scheduler state.
type obimCore struct {
	cur       []task.Task           // chunk being processed
	curBucket int64                 // bucket of the current chunk
	pending   map[int64][]task.Task // children grouped by bucket
	keys      []int64               // deterministic pending iteration order
	buffer    []chunkRec            // Minnow prefetch buffer
	outbox    []chunkRec            // SW Minnow: chunks awaiting global push
	curPrio   int64
	inflight  int  // chunk deliveries in flight
	requested bool // a prefetch request was sent and not yet answered
}

type obimHandler struct {
	sch   obimScheduler
	mcfg  sim.Config
	cm    costModel
	w     workload.Workload
	g     globalMap
	cores []obimCore
	rng   *graph.RNG

	workers int // cores that process tasks (rest are minnows)

	processed   int64
	chunksTaken int64

	children []task.Task
	idle     []bool
}

// Message kinds.
const (
	obimMsgDeliver = iota // chunk delivered to a worker's buffer
	obimMsgNotify         // worker -> minnow: outbox/prefetch attention
)

func newOBIMHandler(s obimScheduler, w workload.Workload, mcfg sim.Config, seed uint64) *obimHandler {
	h := &obimHandler{
		sch:  s,
		mcfg: mcfg,
		cm:   costModel{cfg: mcfg, g: w.Graph()},
		w:    w,
		g: globalMap{
			buckets:  make(map[int64][]task.Task),
			order:    pq.NewBinaryHeap(64),
			shift:    obimShift,
			adapt:    s.kind == kindPMOD,
			chunkCap: obimChunkSize,
			cores:    mcfg.Cores,
		},
		cores: make([]obimCore, mcfg.Cores),
		rng:   graph.NewRNG(seed ^ 0x0b14),
		idle:  make([]bool, mcfg.Cores),
	}
	h.workers = mcfg.Cores
	if s.kind == kindSWMinnow {
		h.workers = mcfg.Cores - s.minnows
		if h.workers < 1 {
			h.workers = 1
		}
	}
	for i := range h.cores {
		h.cores[i] = obimCore{pending: make(map[int64][]task.Task), curPrio: idlePrio}
	}
	return h
}

// minnowOf maps a worker to its serving minnow core.
func (h *obimHandler) minnowOf(worker int) int {
	return h.workers + worker%(h.mcfg.Cores-h.workers)
}

func (h *obimHandler) isMinnow(core int) bool {
	return h.sch.kind == kindSWMinnow && core >= h.workers
}

func (h *obimHandler) activePriorities() []int64 {
	out := make([]int64, 0, h.workers)
	for i := 0; i < h.workers; i++ {
		if p := h.cores[i].curPrio; p != idlePrio {
			out = append(out, p)
		}
	}
	return out
}

func (h *obimHandler) Start(m *sim.Machine) {
	byBucket := make(map[int64][]task.Task)
	var order []int64
	for _, t := range h.w.InitialTasks() {
		b := h.g.bucketOf(t.Prio)
		if _, ok := byBucket[b]; !ok {
			order = append(order, b)
		}
		byBucket[b] = append(byBucket[b], t)
	}
	for _, b := range order {
		h.g.push(b, byBucket[b])
	}
	for i := 0; i < h.mcfg.Cores; i++ {
		m.Wake(i)
	}
}

// wakeAll re-arms every parked core; pushers call it so idle pullers
// re-check the global map (their polling loop).
func (h *obimHandler) wakeAll(m *sim.Machine) {
	for i := 0; i < h.mcfg.Cores; i++ {
		if h.idle[i] {
			h.idle[i] = false
			m.Wake(i)
		}
	}
}

func (h *obimHandler) Ready(m *sim.Machine, core int) (int64, bool) {
	if h.isMinnow(core) {
		return h.minnowReady(m, core)
	}
	c := &h.cores[core]
	var cost int64

	// Refill the current chunk.
	if len(c.cur) == 0 {
		cost += h.flush(m, core)
		refill, _ := h.refill(m, core)
		cost += refill
		if len(c.cur) == 0 {
			// Park. Either the map is empty (a global push re-arms us via
			// wakeAll) or a prefetch delivery is in flight (its message
			// re-arms us); mark idle so wakeAll covers both.
			c.curPrio = idlePrio
			h.idle[core] = true
			return cost, true
		}
	}

	// Process the whole chunk (OBIM executes one bag at a time).
	chunk := c.cur
	c.cur = nil
	for _, t := range chunk {
		cost += h.processOne(m, core, t, cost)
	}
	return cost, false
}

// refill obtains the next chunk for a worker. wait reports that a prefetch
// delivery is in flight (the core parks but stays marked non-idle so only
// the delivery re-arms it).
func (h *obimHandler) refill(m *sim.Machine, core int) (cost int64, wait bool) {
	c := &h.cores[core]
	switch h.sch.kind {
	case kindOBIM, kindPMOD:
		// The map is a concurrent structure: the serialized hand-off is
		// shorter than the full operation, whose cost the core still pays.
		op := h.opCost()
		hold := h.mcfg.SWLockCost / 2
		waitc := h.g.lock.acquire(m.Now(), hold)
		m.Charge(core, sim.Comm, waitc)
		m.Charge(core, sim.Dequeue, hold+op)
		cost = waitc + hold + op
		bucket, ts, ok := h.g.popChunk(obimChunkSize)
		if !ok {
			h.idle[core] = true
			return cost, false
		}
		h.chunksTaken++
		h.g.fetchSeq++
		fetch := m.MemAccess(core, bagPayloadAddr(core%8, h.g.fetchSeq), 16*len(ts))
		m.Charge(core, sim.Dequeue, fetch)
		c.cur, c.curBucket = ts, bucket
		return cost + fetch, false

	case kindSWMinnow:
		if len(c.buffer) > 0 {
			rec := c.buffer[0]
			c.buffer = c.buffer[1:]
			fetch := m.MemAccess(core, bagPayloadAddr(core%8, rec.id), 16*len(rec.tasks))
			m.Charge(core, sim.Dequeue, fetch+h.mcfg.SWPQBase/2)
			c.cur, c.curBucket = rec.tasks, rec.bucket
			if len(c.buffer) < minnowDepth && c.inflight == 0 && !c.requested {
				// Low water: overlap the next prefetch with processing.
				c.requested = true
				h.notifyMinnow(m, core, fetch)
			}
			return fetch + h.mcfg.SWPQBase/2, false
		}
		if c.inflight == 0 && !c.requested {
			c.requested = true
			h.notifyMinnow(m, core, 0)
		}
		return h.mcfg.AtomicRMW, true // park until the delivery arrives

	default: // kindHWMinnow
		if len(c.buffer) > 0 {
			rec := c.buffer[0]
			c.buffer = c.buffer[1:]
			m.Charge(core, sim.Dequeue, h.mcfg.HWQueueCycles)
			c.cur, c.curBucket = rec.tasks, rec.bucket
			h.enginePrefetch(m, core) // keep the buffer ahead
			return h.mcfg.HWQueueCycles, false
		}
		h.enginePrefetch(m, core)
		if c.inflight == 0 {
			h.idle[core] = true
			return 0, false // nothing in flight and the map is empty
		}
		return 0, true
	}
}

// notifyMinnow pings the worker's minnow core (a software flag write, so it
// propagates with coherence latency).
func (h *obimHandler) notifyMinnow(m *sim.Machine, core int, delay int64) {
	m.Charge(core, sim.Comm, h.mcfg.AtomicRMW)
	// The minnow spins on its service flags, so the notify is visible after
	// roughly one coherence transfer, already part of the atomic's cost.
	m.Send(sim.Message{From: core, To: h.minnowOf(core), Kind: obimMsgNotify, Aux: int64(core)},
		64, delay+h.mcfg.AtomicRMW)
}

// enginePrefetch models the HW Minnow engine pulling a chunk from the
// global map on the worker's behalf: zero worker cycles, but the engine
// serializes on the map lock and the delivery crosses the NoC.
func (h *obimHandler) enginePrefetch(m *sim.Machine, core int) {
	c := &h.cores[core]
	if c.inflight > 0 || len(c.buffer) >= minnowDepth {
		return
	}
	op := h.mcfg.SWLockCost/4 + h.opCost()/4 // hardware-assisted map access
	wait := h.g.lock.acquire(m.Now(), op)
	bucket, ts, ok := h.g.popChunk(obimChunkSize)
	if !ok {
		return
	}
	h.chunksTaken++
	h.g.fetchSeq++
	c.inflight++
	m.Send(sim.Message{From: core, To: core, Kind: obimMsgDeliver, Tasks: ts,
		Aux: bucket, Task: task.Task{Data: h.g.fetchSeq}},
		h.mcfg.EntryBits*len(ts), wait+op)
}

// minnowReady runs one helper-core step: push its workers' outboxes to the
// global map and refill their low buffers.
func (h *obimHandler) minnowReady(m *sim.Machine, core int) (int64, bool) {
	var cost int64
	pushed := false
	for w := 0; w < h.workers; w++ {
		if h.minnowOf(w) != core {
			continue
		}
		wc := &h.cores[w]
		for _, rec := range wc.outbox {
			op := h.opCost()
			hold := h.mcfg.SWLockCost / 2
			wait := h.g.lock.acquire(m.Now()+cost, hold)
			m.Charge(core, sim.Comm, wait)
			m.Charge(core, sim.Enqueue, hold+op)
			cost += wait + hold + op
			h.g.push(rec.bucket, rec.tasks)
			pushed = true
		}
		wc.outbox = wc.outbox[:0]
		for len(wc.buffer)+wc.inflight < minnowDepth {
			op := h.opCost()
			hold := h.mcfg.SWLockCost / 2
			wait := h.g.lock.acquire(m.Now()+cost, hold)
			bucket, ts, ok := h.g.popChunk(obimChunkSize)
			if !ok {
				break
			}
			h.chunksTaken++
			h.g.fetchSeq++
			m.Charge(core, sim.Comm, wait)
			m.Charge(core, sim.Dequeue, hold+op)
			cost += wait + hold + op
			wc.inflight++
			m.Send(sim.Message{From: core, To: w, Kind: obimMsgDeliver, Tasks: ts,
				Aux: bucket, Task: task.Task{Data: h.g.fetchSeq}},
				h.mcfg.EntryBits, cost)
		}
	}
	if pushed {
		h.wakeAll(m)
	}
	if cost > 0 {
		// Did work: run again right away; more may have arrived meanwhile
		// (a real minnow core spins on its service loop).
		return cost, false
	}
	h.idle[core] = true
	return cost, true // re-armed by worker notifications or map pushes
}

// processOne executes one task, groups its children into pending buckets,
// and publishes buckets that are full or better than the current chunk.
func (h *obimHandler) processOne(m *sim.Machine, core int, t task.Task, at int64) int64 {
	c := &h.cores[core]
	c.curPrio = t.Prio
	h.children = h.children[:0]
	edges := h.w.Process(t, func(ch task.Task) { h.children = append(h.children, ch) })
	h.processed++
	cost := h.cm.taskCostAt(m, core, t, edges, at)
	m.Charge(core, sim.Compute, cost)

	for _, ch := range h.children {
		b := h.g.bucketOf(ch.Prio)
		if _, ok := c.pending[b]; !ok {
			c.keys = append(c.keys, b)
		}
		c.pending[b] = append(c.pending[b], ch)
		m.Charge(core, sim.Enqueue, obimAppendCycles)
		cost += obimAppendCycles
		// Publish a bucket when it fills, or immediately when it holds
		// higher-priority work than what this core is processing — other
		// cores must see it (OBIM's fast propagation through the map).
		if len(c.pending[b]) >= obimChunkSize || b < c.curBucket {
			cost += h.emitBucket(m, core, b)
		}
	}
	return cost
}

// emitBucket publishes one pending bucket to the global map (or the
// worker's outbox under SW Minnow).
func (h *obimHandler) emitBucket(m *sim.Machine, core int, bucket int64) int64 {
	c := &h.cores[core]
	ts := c.pending[bucket]
	delete(c.pending, bucket)
	for i, k := range c.keys {
		if k == bucket {
			c.keys = append(c.keys[:i], c.keys[i+1:]...)
			break
		}
	}
	if len(ts) == 0 {
		return 0
	}
	switch h.sch.kind {
	case kindSWMinnow:
		// Hand the chunk to the minnow through the shared store buffer: the
		// worker pays one flag write; the minnow publishes it to the map.
		c.outbox = append(c.outbox, chunkRec{tasks: ts, bucket: bucket})
		notify := h.mcfg.AtomicRMW
		m.Charge(core, sim.Enqueue, notify)
		m.Send(sim.Message{From: core, To: h.minnowOf(core), Kind: obimMsgNotify}, 64, notify)
		return notify
	case kindHWMinnow:
		// The engine pushes in the background: worker pays only the inject.
		op := h.mcfg.SWLockCost/4 + h.opCost()/4
		h.g.lock.acquire(m.Now(), op)
		h.g.push(bucket, ts)
		m.Charge(core, sim.Enqueue, h.mcfg.HWQueueCycles)
		h.wakeAll(m)
		return h.mcfg.HWQueueCycles
	default:
		op := h.opCost()
		hold := h.mcfg.SWLockCost / 2
		wait := h.g.lock.acquire(m.Now(), hold)
		m.Charge(core, sim.Comm, wait)
		m.Charge(core, sim.Enqueue, hold+op)
		h.g.push(bucket, ts)
		h.wakeAll(m)
		return wait + hold + op
	}
}

// flush publishes every pending bucket; called before refilling so no
// tasks are stranded while the core looks for new work.
func (h *obimHandler) flush(m *sim.Machine, core int) int64 {
	c := &h.cores[core]
	if len(c.keys) == 0 {
		return 0
	}
	var cost int64
	keys := append([]int64(nil), c.keys...)
	for _, b := range keys {
		cost += h.emitBucket(m, core, b)
	}
	return cost
}

func (h *obimHandler) Receive(m *sim.Machine, core int, msg sim.Message) int64 {
	c := &h.cores[core]
	switch msg.Kind {
	case obimMsgDeliver:
		c.buffer = append(c.buffer, chunkRec{id: msg.Task.Data, tasks: msg.Tasks, bucket: msg.Aux})
		if c.inflight > 0 {
			c.inflight--
		}
		c.requested = false
		h.idle[core] = false
		return 0
	case obimMsgNotify:
		h.idle[core] = false
		return 0
	}
	return 0
}
