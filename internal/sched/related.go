package sched

import (
	"hdcps/internal/graph"
	"hdcps/internal/pq"
	"hdcps/internal/sim"
	"hdcps/internal/stats"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// Related-work baselines from the paper's motivation (§II): the two ends of
// the ordering spectrum and the best-known relaxed concurrent priority
// queue.
//
//   - Steal: *unordered* execution — per-core LIFO deques with work
//     stealing. Maximum parallelism, no priority awareness; the paper's §II
//     argument is that the resulting extra iterations destroy work
//     efficiency.
//   - Ordered: *strictly ordered* execution — one global software priority
//     queue under a lock, the execution model whose synchronization KDG
//     [12] showed outweighs its work-efficiency gains.
//   - MultiQ: the MultiQueue relaxed priority queue [5] — c·P sub-queues;
//     push to a random queue, pop the better head of two random queues.
//
// None of these is in the paper's evaluation figures; the "motivation"
// experiment uses them to quantify §II's ordering-spectrum argument on the
// same simulator.

// stealBackoff is the poll interval of an empty deque looking for victims.
const stealBackoff = 400

// Steal returns the unordered work-stealing baseline.
func Steal() Scheduler { return relatedScheduler{kind: relSteal, label: "steal"} }

// Ordered returns the strict-global-order baseline.
func Ordered() Scheduler { return relatedScheduler{kind: relOrdered, label: "ordered"} }

// MultiQ returns the MultiQueue relaxed scheduler with c = 2 queues per
// core.
func MultiQ() Scheduler { return relatedScheduler{kind: relMultiQ, label: "multiq"} }

type relKind int

const (
	relSteal relKind = iota
	relOrdered
	relMultiQ
)

type relatedScheduler struct {
	kind  relKind
	label string
}

func (s relatedScheduler) Name() string { return s.label }

func (s relatedScheduler) Run(w workload.Workload, cfg sim.Config, seed uint64) stats.Run {
	m := sim.New(cfg)
	h := newRelatedHandler(s, w, m.Config(), seed)
	w.Reset()
	m.SetDriftProbe(h.activePriorities, driftProbeInterval, 0)
	total, bds := m.Run(h)
	r := newRun(s.label, w, m.Config())
	finishRun(&r, total, bds, m)
	r.TasksProcessed = h.processed
	return r
}

type relatedHandler struct {
	kind relKind
	mcfg sim.Config
	cm   costModel
	w    workload.Workload

	// Steal: per-core LIFO deques with a lock each (victims contend).
	deques []([]task.Task)
	locks  []lockModel

	// Ordered: one global heap behind one lock.
	global     *pq.BinaryHeap
	globalLock lockModel

	// MultiQ: c*P sub-queues, each behind its own lock.
	queues []*pq.BinaryHeap
	qlocks []lockModel

	curPrio     []int64
	rngs        []*graph.RNG
	outstanding int64
	processed   int64
	children    []task.Task
}

// multiQFactor is MultiQueue's c: queues per core.
const multiQFactor = 2

func newRelatedHandler(s relatedScheduler, w workload.Workload, mcfg sim.Config, seed uint64) *relatedHandler {
	h := &relatedHandler{
		kind:    s.kind,
		mcfg:    mcfg,
		cm:      costModel{cfg: mcfg, g: w.Graph()},
		w:       w,
		curPrio: make([]int64, mcfg.Cores),
		rngs:    make([]*graph.RNG, mcfg.Cores),
	}
	for i := range h.curPrio {
		h.curPrio[i] = idlePrio
		h.rngs[i] = graph.NewRNG(seed + uint64(i)*0x51ed)
	}
	switch s.kind {
	case relSteal:
		h.deques = make([][]task.Task, mcfg.Cores)
		h.locks = make([]lockModel, mcfg.Cores)
	case relOrdered:
		h.global = pq.NewBinaryHeap(1024)
	case relMultiQ:
		n := multiQFactor * mcfg.Cores
		h.queues = make([]*pq.BinaryHeap, n)
		h.qlocks = make([]lockModel, n)
		for i := range h.queues {
			h.queues[i] = pq.NewBinaryHeap(64)
		}
	}
	return h
}

func (h *relatedHandler) activePriorities() []int64 {
	out := make([]int64, 0, len(h.curPrio))
	for _, p := range h.curPrio {
		if p != idlePrio {
			out = append(out, p)
		}
	}
	return out
}

func (h *relatedHandler) Start(m *sim.Machine) {
	initial := h.w.InitialTasks()
	h.outstanding = int64(len(initial))
	for i, t := range initial {
		switch h.kind {
		case relSteal:
			h.deques[i%m.Cores()] = append(h.deques[i%m.Cores()], t)
		case relOrdered:
			h.global.Push(t)
		case relMultiQ:
			h.queues[i%len(h.queues)].Push(t)
		}
	}
	for i := 0; i < m.Cores(); i++ {
		m.Wake(i)
	}
}

func (h *relatedHandler) Ready(m *sim.Machine, core int) (int64, bool) {
	t, acquireCost, ok := h.acquire(m, core)
	if !ok {
		h.curPrio[core] = idlePrio
		if h.outstanding == 0 {
			return acquireCost, true // real termination
		}
		// Work exists somewhere (another core holds it or it is in a
		// queue we missed): poll again after a backoff, charging it as
		// communication/idle time.
		m.Charge(core, sim.Comm, stealBackoff)
		return acquireCost + stealBackoff, false
	}
	h.curPrio[core] = t.Prio
	cost := acquireCost

	h.children = h.children[:0]
	edges := h.w.Process(t, func(c task.Task) { h.children = append(h.children, c) })
	h.processed++
	h.outstanding += int64(len(h.children)) - 1
	comp := h.cm.taskCostAt(m, core, t, edges, cost)
	m.Charge(core, sim.Compute, comp)
	cost += comp

	cost += h.release(m, core, cost)
	return cost, false
}

// acquire obtains the next task according to the discipline.
func (h *relatedHandler) acquire(m *sim.Machine, core int) (task.Task, int64, bool) {
	switch h.kind {
	case relSteal:
		d := h.deques[core]
		if n := len(d); n > 0 {
			t := d[n-1] // LIFO
			h.deques[core] = d[:n-1]
			m.Charge(core, sim.Dequeue, h.mcfg.AtomicRMW)
			return t, h.mcfg.AtomicRMW, true
		}
		// Steal half from a random victim.
		var cost int64
		for attempt := 0; attempt < 4; attempt++ {
			v := int(h.rngs[core].Uint32n(uint32(len(h.deques))))
			if v == core {
				continue
			}
			wait := h.locks[v].acquire(m.Now()+cost, h.mcfg.SWLockCost)
			cost += wait + h.mcfg.SWLockCost
			m.Charge(core, sim.Comm, wait+h.mcfg.SWLockCost)
			vd := h.deques[v]
			if len(vd) == 0 {
				continue
			}
			half := (len(vd) + 1) / 2
			stolen := append([]task.Task(nil), vd[:half]...) // steal the old end
			h.deques[v] = vd[half:]
			// Transferring the stolen tasks' cache lines.
			xfer := m.MemAccessAt(core, bagPayloadAddr(v, uint64(m.Now())), 16*len(stolen), cost)
			m.Charge(core, sim.Comm, xfer)
			cost += xfer
			t := stolen[len(stolen)-1]
			h.deques[core] = append(h.deques[core], stolen[:len(stolen)-1]...)
			return t, cost, true
		}
		return task.Task{}, cost, false

	case relOrdered:
		op := h.cm.swPQCost(h.global.Len() + 1)
		hold := h.mcfg.SWLockCost + op
		wait := h.globalLock.acquire(m.Now(), hold)
		m.Charge(core, sim.Comm, wait)
		m.Charge(core, sim.Dequeue, hold)
		t, ok := h.global.Pop()
		return t, wait + hold, ok

	default: // relMultiQ: pop the better head of two random queues.
		var cost int64
		for attempt := 0; attempt < 4; attempt++ {
			a := int(h.rngs[core].Uint32n(uint32(len(h.queues))))
			b := int(h.rngs[core].Uint32n(uint32(len(h.queues))))
			qa, qb := h.queues[a], h.queues[b]
			ta, oka := qa.Peek()
			tb, okb := qb.Peek()
			pick := a
			switch {
			case !oka && !okb:
				cost += h.mcfg.AtomicRMW
				m.Charge(core, sim.Dequeue, h.mcfg.AtomicRMW)
				continue
			case oka && okb && tb.Less(ta):
				pick = b
			case !oka:
				pick = b
			}
			op := h.cm.swPQCost(h.queues[pick].Len() + 1)
			hold := h.mcfg.SWLockCost/2 + op
			wait := h.qlocks[pick].acquire(m.Now()+cost, hold)
			m.Charge(core, sim.Comm, wait)
			m.Charge(core, sim.Dequeue, hold)
			cost += wait + hold
			t, ok := h.queues[pick].Pop()
			if ok {
				return t, cost, true
			}
		}
		return task.Task{}, cost, false
	}
}

// release distributes the children produced by the current task.
func (h *relatedHandler) release(m *sim.Machine, core int, at int64) int64 {
	var cost int64
	for _, c := range h.children {
		switch h.kind {
		case relSteal:
			// Local LIFO push: cheap, no communication — the whole point
			// of unordered execution.
			h.deques[core] = append(h.deques[core], c)
			m.Charge(core, sim.Enqueue, 4)
			cost += 4
		case relOrdered:
			op := h.cm.swPQCost(h.global.Len() + 1)
			hold := h.mcfg.SWLockCost + op
			wait := h.globalLock.acquire(m.Now()+at+cost, hold)
			m.Charge(core, sim.Comm, wait)
			m.Charge(core, sim.Enqueue, hold)
			cost += wait + hold
			h.global.Push(c)
			h.wakeAll(m)
		default: // relMultiQ: push to a random queue.
			q := int(h.rngs[core].Uint32n(uint32(len(h.queues))))
			op := h.cm.swPQCost(h.queues[q].Len() + 1)
			hold := h.mcfg.SWLockCost/2 + op
			wait := h.qlocks[q].acquire(m.Now()+at+cost, hold)
			m.Charge(core, sim.Comm, wait)
			m.Charge(core, sim.Enqueue, hold)
			cost += wait + hold
			h.queues[q].Push(c)
			h.wakeAll(m)
		}
	}
	if h.kind == relSteal && len(h.children) > 0 {
		h.wakeAll(m)
	}
	return cost
}

// wakeAll re-arms parked cores; cheap because Wake is a no-op for armed
// cores. Pollers re-park if they find nothing.
func (h *relatedHandler) wakeAll(m *sim.Machine) {
	for i := 0; i < m.Cores(); i++ {
		m.Wake(i)
	}
}

func (h *relatedHandler) Receive(m *sim.Machine, core int, msg sim.Message) int64 { return 0 }
