package sched

import (
	"hdcps/internal/bag"
	"hdcps/internal/drift"
	"hdcps/internal/graph"
	"hdcps/internal/pq"
	"hdcps/internal/sim"
	"hdcps/internal/stats"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// CPSConfig parameterizes the distributed push-style CPS family. RELD and
// every HD-CPS configuration in the paper are points in this space (§IV-A):
//
//	RELD         = {UseRQ: false, FixedTDF: 100, Bags: Never}
//	sRQ          = {UseRQ: true,  FixedTDF: 100, Bags: Never}
//	sRQ+TDF      = {UseRQ: true,  UseTDF: true,  Bags: Never}
//	sRQ+TDF+AC   = {UseRQ: true,  UseTDF: true,  Bags: Always}
//	HD-CPS:SW    = {UseRQ: true,  UseTDF: true,  Bags: Selective}
//	hRQ / +hPQ   = HD-CPS:SW on a machine with HRQSize/HPQSize > 0
type CPSConfig struct {
	// Label is the scheduler name shown in figures.
	Label string
	// UseRQ enables the per-core receive queue decoupling of §III-A;
	// without it remote enqueues lock the destination's priority queue
	// (RELD's behaviour).
	UseRQ bool
	// UseTDF enables the adaptive drift-feedback controller of §III-C.
	UseTDF bool
	// FixedTDF is the task distribution factor (percent) when UseTDF is
	// false. RELD's continuous random distribution is 100.
	FixedTDF int
	// Bags selects the bag-creation policy of §III-B.
	Bags bag.Policy
	// Drift configures the TDF controller (zero fields take the paper's
	// defaults).
	Drift drift.Config
	// TDFSchedule, when non-nil, overrides the controller with a fixed
	// per-interval schedule — the dynamic-oracle hook (§III-C).
	TDFSchedule func(interval int) int
}

// cpsScheduler is the Scheduler for a CPSConfig.
type cpsScheduler struct{ cfg CPSConfig }

// NewCPS returns a scheduler for an arbitrary point in the CPS design
// space. The named constructors below cover the paper's configurations.
func NewCPS(cfg CPSConfig) Scheduler { return cpsScheduler{cfg} }

// RELD returns the paper's RELD baseline.
func RELD() Scheduler {
	return NewCPS(CPSConfig{Label: "reld", FixedTDF: 100, Bags: bag.Policy{Mode: bag.Never}})
}

// VariantSRQ returns the sRQ configuration (receive-queue decoupling only).
func VariantSRQ() Scheduler {
	return NewCPS(CPSConfig{Label: "srq", UseRQ: true, FixedTDF: 100, Bags: bag.Policy{Mode: bag.Never}})
}

// VariantSRQTDF returns sRQ + the adaptive TDF heuristic.
func VariantSRQTDF() Scheduler {
	return NewCPS(CPSConfig{Label: "srq+tdf", UseRQ: true, UseTDF: true, Bags: bag.Policy{Mode: bag.Never}})
}

// VariantSRQTDFAC returns sRQ + TDF + always-create bags.
func VariantSRQTDFAC() Scheduler {
	p := bag.DefaultPolicy()
	p.Mode = bag.Always
	return NewCPS(CPSConfig{Label: "srq+tdf+ac", UseRQ: true, UseTDF: true, Bags: p})
}

// HDCPSSW returns the full software design (sRQ + TDF + selective bags),
// the configuration the paper calls HD-CPS:SW.
func HDCPSSW() Scheduler {
	return NewCPS(CPSConfig{Label: "hdcps-sw", UseRQ: true, UseTDF: true, Bags: bag.DefaultPolicy()})
}

// VariantHRQ is HD-CPS:SW run on a machine with only the hardware receive
// queue enabled; HDCPSHW adds the hardware priority queue. Both adjust the
// machine config rather than the scheduler.
func VariantHRQ() Scheduler {
	return hwVariant{inner: HDCPSSW().(cpsScheduler), label: "hrq", hpq: false}
}

// HDCPSHW returns the full hardware design (hRQ + hPQ on Table I sizes).
func HDCPSHW() Scheduler {
	return hwVariant{inner: HDCPSSW().(cpsScheduler), label: "hdcps-hw", hpq: true}
}

type hwVariant struct {
	inner cpsScheduler
	label string
	hpq   bool
}

func (v hwVariant) Name() string { return v.label }

func (v hwVariant) Run(w workload.Workload, cfg sim.Config, seed uint64) stats.Run {
	if cfg.HRQSize == 0 {
		cfg.HRQSize = 32
	}
	if v.hpq {
		if cfg.HPQSize == 0 {
			cfg.HPQSize = 48
		}
	} else {
		cfg.HPQSize = 0
	}
	inner := v.inner
	inner.cfg.Label = v.label
	return inner.Run(w, cfg, seed)
}

func (s cpsScheduler) Name() string { return s.cfg.Label }

func (s cpsScheduler) Run(w workload.Workload, cfg sim.Config, seed uint64) stats.Run {
	m := sim.New(cfg)
	h := newCPSHandler(s.cfg, w, m.Config(), seed)
	w.Reset()
	m.SetDriftProbe(h.activePriorities, driftProbeInterval, 0)
	total, bds := m.Run(h)
	r := newRun(s.cfg.Label, w, m.Config())
	finishRun(&r, total, bds, m)
	r.TasksProcessed = h.processed
	r.BagsCreated = h.bagsCreated
	r.BaggedTasks = h.baggedTasks
	r.TDFTrace = h.tdfTrace
	return r
}

// Message kinds of the CPS family.
const (
	cpsMsgTask = iota
	cpsMsgBag
	cpsMsgReport
)

// inEntry is one receive-queue element: a single task or bag metadata.
type inEntry struct {
	t        task.Task
	payloadN int  // extra queue entries consumed by a pushed bag's payload
	hw       bool // arrived into the hardware receive queue
}

// bagTaskNode marks a priority-queue item as bag metadata.
const bagTaskNode = ^graph.NodeID(0)

// bagPayloadAddr synthesizes the memory address of a bag's payload inside
// its owner core's scheduler region.
func bagPayloadAddr(owner int, id uint64) uint64 {
	return addrSchedBase + uint64(owner)*schedStride + (id*128)%schedStride
}

type cpsCore struct {
	// Exactly one of swq/tl backs the core's priority queue: swq when the
	// machine has no hPQ, tl (the two-level hot-buffer + cold-store shape,
	// hot capacity = HPQSize) when it does. The two-level hot buffer
	// reproduces pq.Bounded's residency semantics, so tl replaces the old
	// hpq+swq composition with identical task ordering; the cost model
	// still charges the hPQ access for hot traffic and the software PQ for
	// cold traffic.
	swq    *pq.BinaryHeap
	tl     *pq.TwoLevel
	in     []inEntry // software receive queue (unbounded backing store)
	hrqLen int       // entries currently resident in the hardware RQ

	curPrio   int64
	processed int64
	sinceRep  int64
	lock      lockModel // PQ lock (RELD-style remote enqueues)
	rng       *graph.RNG
}

// pushSW inserts into the software side of the core's queue: the cold store
// when two-level (bypassing the hot buffer, like the old spill heap), the
// plain heap otherwise.
func (c *cpsCore) pushSW(t task.Task) {
	if c.tl != nil {
		c.tl.PushCold(t)
		return
	}
	c.swq.Push(t)
}

// swLen is the software-resident queue depth (the size the software PQ cost
// model scales with).
func (c *cpsCore) swLen() int {
	if c.tl != nil {
		return c.tl.ColdLen()
	}
	return c.swq.Len()
}

// qLen is the total queued work on this core.
func (c *cpsCore) qLen() int {
	if c.tl != nil {
		return c.tl.Len()
	}
	return c.swq.Len()
}

type bagRecord struct {
	tasks []task.Task
	owner int
}

type cpsHandler struct {
	cfg    CPSConfig
	mcfg   sim.Config
	cm     costModel
	w      workload.Workload
	cores  []cpsCore
	master int

	// Bag payload store for pull transport (payload stays at the sender;
	// the consumer fetches it on dequeue with coherent loads).
	bags      map[uint64]bagRecord
	bagIDs    bag.Counter
	transport bag.Transport

	// TDF state (owned by the master core).
	ctrl     *drift.Controller
	tdf      int
	interval int
	reports  []int64
	tdfTrace []int

	processed     int64
	bagsCreated   int64
	baggedTasks   int64
	flowRedirects int64 // capacity-counter re-picks (§III-D flow control)

	children []task.Task // scratch
}

func newCPSHandler(cfg CPSConfig, w workload.Workload, mcfg sim.Config, seed uint64) *cpsHandler {
	h := &cpsHandler{
		cfg:       cfg,
		mcfg:      mcfg,
		cm:        costModel{cfg: mcfg, g: w.Graph()},
		w:         w,
		cores:     make([]cpsCore, mcfg.Cores),
		bags:      make(map[uint64]bagRecord),
		transport: cfg.Bags.Transport,
		ctrl:      drift.NewController(cfg.Drift),
	}
	if cfg.UseTDF {
		h.tdf = h.ctrl.TDF()
	} else {
		h.tdf = cfg.FixedTDF
	}
	if cfg.TDFSchedule != nil {
		h.tdf = cfg.TDFSchedule(0)
	}
	for i := range h.cores {
		h.cores[i] = cpsCore{
			curPrio: idlePrio,
			rng:     graph.NewRNG(seed + uint64(i)*0x9e37),
		}
		if mcfg.HPQSize > 0 {
			// Binary-heap buckets keep the cold store's pop order identical
			// to the old spill heap's.
			h.cores[i].tl = pq.NewTwoLevel(pq.TwoLevelConfig{HotCap: mcfg.HPQSize, Arity: 2})
		} else {
			h.cores[i].swq = pq.NewBinaryHeap(64)
		}
	}
	return h
}

// activePriorities reports each busy core's current task priority for the
// machine-level drift probe.
func (h *cpsHandler) activePriorities() []int64 {
	out := make([]int64, 0, len(h.cores))
	for i := range h.cores {
		if p := h.cores[i].curPrio; p != idlePrio {
			out = append(out, p)
		}
	}
	return out
}

func (h *cpsHandler) Start(m *sim.Machine) {
	// Seed initial tasks across cores in contiguous slices, as a parallel
	// loop kick-off would, applying the same bag policy the scheduler uses
	// for children (Alg. 1): large seeded workloads (coloring, PageRank)
	// otherwise pay a priority-queue operation per initial task.
	initial := h.w.InitialTasks()
	var slice []task.Task
	for core := 0; core < len(h.cores); core++ {
		// Strided assignment balances degree-correlated work the way a
		// parallel loop's round-robin chunking does.
		slice = slice[:0]
		for i := core; i < len(initial); i += len(h.cores) {
			slice = append(slice, initial[i])
		}
		if len(slice) == 0 {
			continue
		}
		c := &h.cores[core]
		bags, singles := bag.Partition(slice, h.cfg.Bags, h.bagIDs.Next)
		for _, b := range bags {
			h.bags[b.ID] = bagRecord{tasks: b.Tasks, owner: core}
			c.pushSW(task.Task{Node: bagTaskNode, Prio: b.Prio, Data: b.ID})
		}
		for _, s := range singles {
			c.pushSW(s)
		}
	}
	for i := range h.cores {
		if h.cores[i].qLen() > 0 {
			m.Wake(i)
		}
	}
}

// sampleInterval returns the drift-report spacing in processed tasks.
func (h *cpsHandler) sampleInterval() int64 {
	return int64(h.ctrl.Config().SampleInterval)
}

func (h *cpsHandler) Ready(m *sim.Machine, core int) (int64, bool) {
	c := &h.cores[core]
	var cost int64

	// 1. Drain the receive queue into the priority queue (the ISR + task
	// state machine of §III-D; in software mode the core does it inline).
	cost += h.drain(m, core)

	// 2. Dequeue the highest-priority task or bag.
	t, fromHW, ok := h.dequeue(c)
	if !ok {
		c.curPrio = idlePrio
		return cost, true
	}
	cost += h.chargeDequeue(m, core, c, fromHW)
	c.curPrio = t.Prio

	// 3. Process: a bag unpacks into its payload tasks; a single task runs
	// alone. Children are partitioned and distributed per task (Alg. 1).
	if t.Node == bagTaskNode {
		rec := h.bags[t.Data]
		delete(h.bags, t.Data)
		if h.transport == bag.Pull {
			// Coherent loads fetch the payload on demand from the owner's
			// cache, where it was just written: a cache-to-cache transfer
			// per line (round trip across the mesh), not a DRAM access —
			// this on-demand locality is why the paper prefers pull.
			lines := int64(16*len(rec.tasks)+63) / 64
			perLine := 2*m.Hops(core, rec.owner)*h.mcfg.HopCycles + h.mcfg.L2Hit
			fetch := lines * perLine
			m.Charge(core, sim.Dequeue, fetch)
			cost += fetch
		}
		for _, tk := range rec.tasks {
			cost += h.processOne(m, core, tk, cost)
		}
	} else {
		cost += h.processOne(m, core, t, cost)
	}
	return cost, false
}

// dequeue pops the best task across the hardware and software queues.
func (h *cpsHandler) dequeue(c *cpsCore) (task.Task, bool, bool) {
	if c.tl != nil {
		// PopEx compares the hot front against the cold minimum without
		// refilling, preserving each pop's hardware/software provenance for
		// chargeDequeue — exactly the old hpq-vs-swq peek race.
		return c.tl.PopEx()
	}
	t, ok := c.swq.Pop()
	return t, false, ok
}

func (h *cpsHandler) chargeDequeue(m *sim.Machine, core int, c *cpsCore, fromHW bool) int64 {
	var cost int64
	if c.tl != nil {
		// Parallel constant-latency check of both queues; the software
		// rebalance happens in the background (§III-D), so a software-side
		// pop costs only a fraction of the full software operation.
		cost = h.mcfg.HWQueueCycles
		if !fromHW {
			cost += h.cm.swPQCost(c.swLen()+1) / 4
		}
	} else {
		cost = h.cm.swPQCost(c.swLen() + 1)
		if !h.cfg.UseRQ {
			// RELD: the dequeue must take the core's own PQ lock, which
			// remote enqueuers contend on.
			cost += h.mcfg.SWLockCost + c.lock.acquire(m.Now(), h.mcfg.SWLockCost+cost)
		}
	}
	m.Charge(core, sim.Dequeue, cost)
	return cost
}

// drain moves received entries into the core's priority queue.
func (h *cpsHandler) drain(m *sim.Machine, core int) int64 {
	c := &h.cores[core]
	if len(c.in) == 0 {
		return 0
	}
	var cost int64
	for _, e := range c.in {
		switch {
		case e.hw:
			// Read the metadata entry plus any pushed payload entries.
			cost += h.mcfg.HWQueueCycles * int64(1+e.payloadN)
			c.hrqLen -= 1 + e.payloadN
			cost += h.insertLocal(c, e.t)
		case h.cfg.UseRQ:
			// Local ring pops: one cheap atomic per entry.
			cost += h.mcfg.SWRQCost / 3 * int64(1+e.payloadN)
			cost += h.insertLocal(c, e.t)
		default:
			// RELD: the sender already paid the locked remote insert; the
			// task simply appears in this core's priority queue.
			c.pushSW(e.t)
		}
	}
	c.in = c.in[:0]
	m.Charge(core, sim.Enqueue, cost)
	return cost
}

// insertLocal pushes a task (or bag metadata) into the core's priority
// queue, preferring the hardware queue when present, and returns the cost.
func (h *cpsHandler) insertLocal(c *cpsCore, t task.Task) int64 {
	if c.tl != nil {
		// PushEx applies Bounded's residency rule (insert into the hot
		// buffer, demoting its worst to the cold store when full); the
		// rebalance is asynchronous (§III-D), so only the hPQ access is
		// charged.
		c.tl.PushEx(t)
		return h.mcfg.HWQueueCycles
	}
	c.swq.Push(t)
	return h.cm.swPQCost(c.swq.Len())
}

// processOne executes a single workload task on core, partitions its
// children into bags and singles (Alg. 1), distributes them according to
// the current TDF, and handles drift reporting (Alg. 3). It returns the
// cycles consumed.
func (h *cpsHandler) processOne(m *sim.Machine, core int, t task.Task, at int64) int64 {
	c := &h.cores[core]
	c.curPrio = t.Prio
	h.children = h.children[:0]
	edges := h.w.Process(t, func(ch task.Task) { h.children = append(h.children, ch) })
	h.processed++
	c.processed++
	cost := h.cm.taskCostAt(m, core, t, edges, at)
	m.Charge(core, sim.Compute, cost)

	// Partition children into bags and singles (Alg. 1 lines 4-10).
	bags, singles := bag.Partition(h.children, h.cfg.Bags, h.bagIDs.Next)
	for _, b := range bags {
		h.bagsCreated++
		h.baggedTasks += int64(len(b.Tasks))
		create := h.mcfg.BagBaseCycles + int64(len(b.Tasks))*h.mcfg.BagPerTaskCycles
		// Writing the payload warms the creator's cache, so a local (or
		// pushed) consumer hits while a remote pull pays the transfer.
		create += m.MemAccess(core, bagPayloadAddr(core, uint64(b.ID)), 16*len(b.Tasks))
		m.Charge(core, sim.Enqueue, create)
		cost += create
		cost += h.dispatchBag(m, core, b)
	}
	for _, s := range singles {
		cost += h.dispatchTask(m, core, s)
	}

	// Drift reporting (Alg. 3): after send_threshold tasks, report the
	// latest processed priority to the master core.
	c.sinceRep++
	if c.sinceRep >= h.sampleInterval() && (h.cfg.UseTDF || h.cfg.TDFSchedule != nil) {
		c.sinceRep = 0
		if core == h.master {
			h.recordReport(m, t.Prio)
		} else {
			rep := h.reportSendCost()
			m.Charge(core, sim.Comm, rep)
			cost += rep
			m.Send(sim.Message{From: core, To: h.master, Kind: cpsMsgReport, Aux: t.Prio},
				h.mcfg.EntryBits, cost)
		}
	}
	return cost
}

// pickDestination chooses where a task or bag goes: with probability
// TDF% a random *other* core, otherwise the local queue.
func (h *cpsHandler) pickDestination(core int) int {
	c := &h.cores[core]
	if len(h.cores) == 1 {
		return core
	}
	if int(c.rng.Uint32n(100)) >= h.tdf {
		return core
	}
	pick := func() int {
		dst := int(c.rng.Uint32n(uint32(len(h.cores) - 1)))
		if dst >= core {
			dst++
		}
		return dst
	}
	dst := pick()
	// Flow control (§III-D): with hardware messaging, the sender checks the
	// destination's capacity counter and re-picks when the hRQ is full, so
	// bursts spread instead of spilling to the slower software ring.
	if h.mcfg.HRQSize > 0 {
		for try := 0; try < 3 && h.cores[dst].hrqLen >= h.mcfg.HRQSize; try++ {
			h.flowRedirects++
			dst = pick()
		}
	}
	return dst
}

// reportSendCost returns the core cycles a sender pays to inject a drift
// report: a hardware message when available, otherwise one remote atomic.
func (h *cpsHandler) reportSendCost() int64 {
	if h.mcfg.HRQSize > 0 {
		return h.mcfg.HWQueueCycles
	}
	return h.mcfg.AtomicRMW
}

// dispatchTask sends one task to its destination, charging the sender.
func (h *cpsHandler) dispatchTask(m *sim.Machine, core int, t task.Task) int64 {
	dst := h.pickDestination(core)
	if dst == core {
		cost := h.insertLocal(&h.cores[core], t)
		m.Charge(core, sim.Enqueue, cost)
		return cost
	}
	return h.transfer(m, core, dst, sim.Message{From: core, To: dst, Kind: cpsMsgTask, Task: t},
		h.mcfg.EntryBits, 1)
}

// dispatchBag sends a bag's metadata (and, for push transport, its payload)
// to its destination.
func (h *cpsHandler) dispatchBag(m *sim.Machine, core int, b bag.Bag) int64 {
	dst := h.pickDestination(core)
	meta := task.Task{Node: bagTaskNode, Prio: b.Prio, Data: b.ID}
	bits, entries := h.mcfg.EntryBits, 1
	if h.transport == bag.Push {
		// The payload travels with the metadata and is stored entry by
		// entry at the destination.
		bits += h.mcfg.EntryBits * len(b.Tasks)
		entries += len(b.Tasks)
	}
	h.bags[b.ID] = bagRecord{tasks: b.Tasks, owner: core}
	if dst == core {
		cost := h.insertLocal(&h.cores[core], meta)
		m.Charge(core, sim.Enqueue, cost)
		return cost
	}
	return h.transfer(m, core, dst, sim.Message{From: core, To: dst, Kind: cpsMsgBag, Task: meta}, bits, entries)
}

// transfer models one remote enqueue: hardware message, software receive
// ring, or RELD-style remote locked insert, charging the sender. entries is
// the number of queue entries the payload occupies (1 for a single task or
// pull-transport bag metadata; 1+len(payload) for a pushed bag, which is
// what makes the push scheme pay for preemptive payload transport, §III-B).
func (h *cpsHandler) transfer(m *sim.Machine, core, dst int, msg sim.Message, bits, entries int) int64 {
	if entries < 1 {
		entries = 1
	}
	var cost int64
	switch {
	case h.mcfg.HRQSize > 0:
		// Asynchronous hardware message: the sender pays one inject per
		// queue entry.
		cost = h.mcfg.HWQueueCycles * int64(entries)
		m.Charge(core, sim.Comm, cost)
		m.Send(msg, bits, cost)
	case h.cfg.UseRQ:
		// Software receive ring: remote atomic claim + payload stores. The
		// sender stalls for the claim's round trip and pays a store per
		// entry; the data becomes visible at the destination only after the
		// coherence propagation latency (SWTransferCycles).
		lat := m.Send(msg, bits, h.mcfg.SWTransferCycles)
		cost = h.mcfg.SWRQCost + int64(entries-1)*h.mcfg.SWRQCost/2 + lat/4
		m.Charge(core, sim.Comm, cost)
	default:
		// RELD: lock the destination's priority queue and insert remotely.
		// The sender serializes on the victim's lock; every rebalancing
		// step of the remote insert is a coherence miss (RemoteOpPenalty),
		// and the task reaches the destination only after the propagation
		// latency.
		dc := &h.cores[dst]
		insert := h.cm.swPQCost(dc.swLen()+1) * max64(1, h.mcfg.RemoteOpPenalty)
		hold := h.mcfg.SWLockCost + insert
		wait := dc.lock.acquire(m.Now(), hold)
		lat := m.Send(msg, bits, wait+hold+h.mcfg.SWTransferCycles)
		cost = wait + hold + lat/4
		m.Charge(core, sim.Comm, wait+lat/4)
		m.Charge(core, sim.Enqueue, hold)
	}
	return cost
}

// recordReport accumulates a drift report at the master and runs one
// Algorithm 2 update when every core has reported.
func (h *cpsHandler) recordReport(m *sim.Machine, prio int64) {
	h.reports = append(h.reports, prio)
	if len(h.reports) < len(h.cores) {
		return
	}
	if h.cfg.TDFSchedule != nil {
		h.interval++
		h.tdf = h.cfg.TDFSchedule(h.interval)
	} else if h.cfg.UseTDF {
		h.tdf = h.ctrl.Update(h.reports)
	}
	h.tdfTrace = append(h.tdfTrace, h.tdf)
	h.reports = h.reports[:0]
	// The TDF computation runs on the master core (Alg. 2); charge it.
	m.Charge(h.master, sim.Compute, int64(len(h.cores))*2)
}

func (h *cpsHandler) Receive(m *sim.Machine, core int, msg sim.Message) int64 {
	c := &h.cores[core]
	switch msg.Kind {
	case cpsMsgReport:
		h.recordReport(m, msg.Aux)
		return h.mcfg.AtomicRMW / 5 // master-side accumulation (Alg. 2 line 2)
	case cpsMsgTask, cpsMsgBag:
		// A pushed bag's payload rides with the metadata and occupies its
		// own receive-queue entries.
		payloadN := 0
		if msg.Kind == cpsMsgBag && h.transport == bag.Push {
			if rec, ok := h.bags[msg.Task.Data]; ok {
				payloadN = len(rec.tasks)
			}
		}
		hw := false
		if h.mcfg.HRQSize > 0 && c.hrqLen+1+payloadN <= h.mcfg.HRQSize {
			hw = true
			c.hrqLen += 1 + payloadN
		}
		c.in = append(c.in, inEntry{t: msg.Task, payloadN: payloadN, hw: hw})
		// Hardware receive consumes no core cycles (the hRQ absorbs it);
		// a software ring write was already paid for by the sender.
		return 0
	}
	return 0
}
