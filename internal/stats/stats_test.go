package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBreakdownTotalAdd(t *testing.T) {
	a := Breakdown{Enqueue: 1, Dequeue: 2, Compute: 3, Comm: 4}
	if a.Total() != 10 {
		t.Fatalf("Total = %d", a.Total())
	}
	b := Breakdown{Enqueue: 10, Dequeue: 20, Compute: 30, Comm: 40}
	a.Add(b)
	if a.Total() != 110 || a.Enqueue != 11 || a.Comm != 44 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestBreakdownNormalized(t *testing.T) {
	b := Breakdown{Enqueue: 10, Dequeue: 20, Compute: 30, Comm: 40}
	n := b.Normalized(200)
	want := [4]float64{0.05, 0.10, 0.15, 0.20}
	if n != want {
		t.Fatalf("Normalized = %v, want %v", n, want)
	}
	if b.Normalized(0) != ([4]float64{}) {
		t.Fatal("zero base should return zeros")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Enqueue: 25, Dequeue: 25, Compute: 25, Comm: 25}
	s := b.String()
	if !strings.Contains(s, "25%") {
		t.Fatalf("String = %q", s)
	}
	if (Breakdown{}).String() != "breakdown{empty}" {
		t.Fatal("empty breakdown string wrong")
	}
}

func TestWorkEfficiency(t *testing.T) {
	r := Run{TasksProcessed: 200, SeqTasks: 100}
	if r.WorkEfficiency() != 0.5 {
		t.Fatalf("we = %v", r.WorkEfficiency())
	}
	if (Run{}).WorkEfficiency() != 0 {
		t.Fatal("zero-task run should have we 0")
	}
}

func TestSpeedup(t *testing.T) {
	base := Run{CompletionTime: 1000}
	fast := Run{CompletionTime: 500}
	if fast.Speedup(base) != 2 {
		t.Fatalf("speedup = %v", fast.Speedup(base))
	}
	if (Run{}).Speedup(base) != 0 {
		t.Fatal("zero-time run speedup should be 0")
	}
}

func TestMeanGeomean(t *testing.T) {
	if Mean(nil) != 0 || Geomean(nil) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatalf("mean = %v", Mean([]float64{1, 2, 3}))
	}
	g := Geomean([]float64{1, 4})
	if math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", g)
	}
	// Non-positive entries are ignored.
	g = Geomean([]float64{0, -3, 8, 2})
	if math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean = %v, want 4", g)
	}
}

func TestGeomeanBounds(t *testing.T) {
	// Property: min <= geomean <= max for positive inputs.
	err := quick.Check(func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := float64(r) + 1
			xs = append(xs, x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRunString(t *testing.T) {
	r := Run{
		Scheduler: "hdcps", Workload: "sssp", Input: "road", Cores: 40,
		CompletionTime: 123, TasksProcessed: 10, SeqTasks: 10,
		DriftTrace: []float64{2, 4},
	}
	s := r.String()
	for _, want := range []string{"hdcps", "sssp", "road", "drift=3.0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String = %q missing %q", s, want)
		}
	}
}
