// Package stats defines the measurement vocabulary of the evaluation: the
// completion-time breakdown of §IV-C (enqueue / dequeue / compute / comm),
// per-run counters (tasks processed, messages, bags, work efficiency), drift
// traces, and the aggregation helpers (normalization, geomean) used by every
// figure.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Breakdown splits a run's cycles the way §IV-C does. Comm includes both
// task-transfer time and idle time, as in the paper.
type Breakdown struct {
	Enqueue int64 // enqueue ops + bag creation
	Dequeue int64 // dequeue ops (incl. unpacking bag payloads)
	Compute int64 // task processing (incl. Swarm rollback cost)
	Comm    int64 // task transfer + idle
}

// Total returns the summed cycles.
func (b Breakdown) Total() int64 { return b.Enqueue + b.Dequeue + b.Compute + b.Comm }

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Enqueue += o.Enqueue
	b.Dequeue += o.Dequeue
	b.Compute += o.Compute
	b.Comm += o.Comm
}

// Normalized returns the breakdown as fractions of base (typically another
// run's Total), so stacked-bar figures can be printed directly.
func (b Breakdown) Normalized(base int64) [4]float64 {
	if base == 0 {
		return [4]float64{}
	}
	f := float64(base)
	return [4]float64{
		float64(b.Enqueue) / f,
		float64(b.Dequeue) / f,
		float64(b.Compute) / f,
		float64(b.Comm) / f,
	}
}

// String formats the breakdown with component percentages.
func (b Breakdown) String() string {
	t := b.Total()
	if t == 0 {
		return "breakdown{empty}"
	}
	p := func(v int64) float64 { return 100 * float64(v) / float64(t) }
	return fmt.Sprintf("enq %.0f%% deq %.0f%% comp %.0f%% comm %.0f%%",
		p(b.Enqueue), p(b.Dequeue), p(b.Compute), p(b.Comm))
}

// Run captures everything one (scheduler, workload, input) execution
// produces.
type Run struct {
	Scheduler string
	Workload  string
	Input     string
	Cores     int

	// CompletionTime is the parallel completion time: cycles in the
	// simulator, nanoseconds in the native runtime.
	CompletionTime int64
	Breakdown      Breakdown

	TasksProcessed int64 // total tasks executed (incl. redundant work)
	SeqTasks       int64 // tasks the sequential baseline needs
	EdgesExamined  int64 // edges touched while processing (work-efficiency detail)
	MessagesSent   int64
	L1Hits         int64
	L2Hits         int64
	MemMisses      int64
	BagsCreated    int64
	BaggedTasks    int64
	Aborts         int64 // Swarm only: rolled-back tasks

	DriftTrace []float64 // per-interval priority drift (Eq. 1)
	RefTrace   []int64   // per-interval reference priority (Eq. 1's P0; native runtime)
	TDFTrace   []int     // per-interval TDF (HD-CPS only)
}

// WorkEfficiency returns SeqTasks / TasksProcessed: 1.0 is perfectly
// work-efficient, smaller means redundant work (the paper's definition from
// [10] inverted so that bigger is better and bounded by 1).
func (r Run) WorkEfficiency() float64 {
	if r.TasksProcessed == 0 {
		return 0
	}
	return float64(r.SeqTasks) / float64(r.TasksProcessed)
}

// AvgDrift returns the mean of the drift trace.
func (r Run) AvgDrift() float64 { return Mean(r.DriftTrace) }

// Speedup returns base's completion time divided by r's: >1 means r is
// faster than base.
func (r Run) Speedup(base Run) float64 {
	if r.CompletionTime == 0 {
		return 0
	}
	return float64(base.CompletionTime) / float64(r.CompletionTime)
}

// String gives a one-line summary of the run.
func (r Run) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s/%s/%s p=%d: time=%d tasks=%d we=%.2f",
		r.Scheduler, r.Workload, r.Input, r.Cores,
		r.CompletionTime, r.TasksProcessed, r.WorkEfficiency())
	if len(r.DriftTrace) > 0 {
		fmt.Fprintf(&sb, " drift=%.1f", r.AvgDrift())
	}
	return sb.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of xs, ignoring non-positive entries
// the way figure aggregation in architecture papers does (0 for no valid
// entries).
func Geomean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
