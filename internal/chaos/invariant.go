package chaos

import (
	"fmt"

	"hdcps/internal/runtime"
)

// Checker asserts the engine's no-task-loss and progress invariants across a
// sequence of snapshots. Call Live on mid-run snapshots (race-safe subset:
// monotonicity and a non-negative outstanding count) and Quiescent after
// every successful Drain, where the conservation ledger must balance
// exactly:
//
//	Submitted + Spawned == TasksProcessed + BagsRetired + Quarantined
//
// with Outstanding == 0. The exactness at quiescence is guaranteed by the
// engine's publication ordering (every ledger term is stored before the
// outstanding-count transition that makes it observable — see
// internal/runtime/fault.go); mid-run, both sides can legitimately lead or
// lag by in-flight work, which is why Live only checks the race-safe
// subset.
//
// A Checker is not safe for concurrent use; drive it from the goroutine
// orchestrating Submit/Drain rounds.
type Checker struct {
	prev runtime.Snapshot
	have bool
}

// Live checks the invariants that hold at any instant on a running engine.
func (c *Checker) Live(s runtime.Snapshot) error {
	if s.Outstanding < 0 {
		return fmt.Errorf("chaos: outstanding went negative (%d): double retirement", s.Outstanding)
	}
	if err := c.monotone(s); err != nil {
		return err
	}
	c.prev, c.have = s, true
	return nil
}

// Quiescent checks the full conservation ledger. Call it only after a
// successful Drain with no concurrent Submit.
func (c *Checker) Quiescent(s runtime.Snapshot) error {
	if s.Outstanding != 0 {
		return fmt.Errorf("chaos: quiescent snapshot has outstanding %d", s.Outstanding)
	}
	if err := c.monotone(s); err != nil {
		return err
	}
	in := s.Submitted + s.Spawned
	out := s.TasksProcessed + s.BagsRetired + s.Quarantined
	if in != out {
		return fmt.Errorf(
			"chaos: conservation violated: submitted %d + spawned %d = %d != processed %d + bagsRetired %d + quarantined %d = %d (lost %d)",
			s.Submitted, s.Spawned, in,
			s.TasksProcessed, s.BagsRetired, s.Quarantined, out, in-out)
	}
	c.prev, c.have = s, true
	return nil
}

// monotone rejects any counter that moved backwards between checkpoints.
func (c *Checker) monotone(s runtime.Snapshot) error {
	if !c.have {
		return nil
	}
	type pair struct {
		name      string
		prev, cur int64
	}
	for _, p := range []pair{
		{"submitted", c.prev.Submitted, s.Submitted},
		{"spawned", c.prev.Spawned, s.Spawned},
		{"processed", c.prev.TasksProcessed, s.TasksProcessed},
		{"bagsRetired", c.prev.BagsRetired, s.BagsRetired},
		{"quarantined", c.prev.Quarantined, s.Quarantined},
		{"redirects", c.prev.Redirects, s.Redirects},
	} {
		if p.cur < p.prev {
			return fmt.Errorf("chaos: counter %s moved backwards: %d -> %d", p.name, p.prev, p.cur)
		}
	}
	return nil
}
