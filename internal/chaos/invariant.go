package chaos

import (
	"fmt"

	"hdcps/internal/runtime"
)

// Checker asserts the engine's no-task-loss and progress invariants across a
// sequence of snapshots. Call Live on mid-run snapshots (race-safe subset:
// monotonicity and a non-negative outstanding count) and Quiescent after
// every successful Drain, where the conservation ledger must balance
// exactly:
//
//	Submitted + Spawned == TasksProcessed + BagsRetired + Quarantined + Cancelled
//
// with Outstanding == 0 — globally and for every job row the snapshot
// carries, and the job rows must sum to the global ledger (identity is a
// partition: every task belongs to exactly one tenant). The exactness at
// quiescence is guaranteed by the engine's publication ordering (every
// ledger term is stored before the outstanding-count transition that makes
// it observable — see internal/runtime/fault.go); mid-run, both sides can
// legitimately lead or lag by in-flight work, which is why Live only checks
// the race-safe subset.
//
// A Checker is not safe for concurrent use; drive it from the goroutine
// orchestrating Submit/Drain rounds.
type Checker struct {
	prev runtime.Snapshot
	have bool
}

// Live checks the invariants that hold at any instant on a running engine.
func (c *Checker) Live(s runtime.Snapshot) error {
	if s.Outstanding < 0 {
		return fmt.Errorf("chaos: outstanding went negative (%d): double retirement", s.Outstanding)
	}
	for _, j := range s.Jobs {
		if j.Outstanding < 0 {
			return fmt.Errorf("chaos: job %d (%s) outstanding went negative (%d): double retirement",
				j.Job, j.Name, j.Outstanding)
		}
	}
	if err := c.monotone(s); err != nil {
		return err
	}
	c.prev, c.have = s, true
	return nil
}

// Quiescent checks the full conservation ledger — the global equation, every
// per-job equation, and that the job rows partition the global totals. Call
// it only after a successful Drain with no concurrent Submit.
func (c *Checker) Quiescent(s runtime.Snapshot) error {
	if s.Outstanding != 0 {
		return fmt.Errorf("chaos: quiescent snapshot has outstanding %d", s.Outstanding)
	}
	if err := c.monotone(s); err != nil {
		return err
	}
	in := s.Submitted + s.Spawned
	out := s.TasksProcessed + s.BagsRetired + s.Quarantined + s.Cancelled
	if in != out {
		return fmt.Errorf(
			"chaos: conservation violated: submitted %d + spawned %d = %d != processed %d + bagsRetired %d + quarantined %d + cancelled %d = %d (lost %d)",
			s.Submitted, s.Spawned, in,
			s.TasksProcessed, s.BagsRetired, s.Quarantined, s.Cancelled, out, in-out)
	}
	var sums runtime.JobStats
	for _, j := range s.Jobs {
		if j.Outstanding != 0 {
			return fmt.Errorf("chaos: quiescent job %d (%s) has outstanding %d", j.Job, j.Name, j.Outstanding)
		}
		jin := j.Submitted + j.Spawned
		jout := j.Processed + j.BagsRetired + j.Quarantined + j.CancelledTasks
		if jin != jout {
			return fmt.Errorf(
				"chaos: job %d (%s) conservation violated: submitted %d + spawned %d = %d != processed %d + bagsRetired %d + quarantined %d + cancelled %d = %d (lost %d)",
				j.Job, j.Name, j.Submitted, j.Spawned, jin,
				j.Processed, j.BagsRetired, j.Quarantined, j.CancelledTasks, jout, jin-jout)
		}
		sums.Submitted += j.Submitted
		sums.Spawned += j.Spawned
		sums.Processed += j.Processed
		sums.BagsRetired += j.BagsRetired
		sums.Quarantined += j.Quarantined
		sums.CancelledTasks += j.CancelledTasks
	}
	if len(s.Jobs) > 0 {
		type pair struct {
			name        string
			jobs, total int64
		}
		for _, p := range []pair{
			{"submitted", sums.Submitted, s.Submitted},
			{"spawned", sums.Spawned, s.Spawned},
			{"processed", sums.Processed, s.TasksProcessed},
			{"bagsRetired", sums.BagsRetired, s.BagsRetired},
			{"quarantined", sums.Quarantined, s.Quarantined},
			{"cancelled", sums.CancelledTasks, s.Cancelled},
		} {
			if p.jobs != p.total {
				return fmt.Errorf("chaos: job rows don't partition the global ledger: sum(%s) %d != global %d",
					p.name, p.jobs, p.total)
			}
		}
	}
	c.prev, c.have = s, true
	return nil
}

// monotone rejects any counter that moved backwards between checkpoints.
func (c *Checker) monotone(s runtime.Snapshot) error {
	if !c.have {
		return nil
	}
	type pair struct {
		name      string
		prev, cur int64
	}
	for _, p := range []pair{
		{"submitted", c.prev.Submitted, s.Submitted},
		{"spawned", c.prev.Spawned, s.Spawned},
		{"processed", c.prev.TasksProcessed, s.TasksProcessed},
		{"bagsRetired", c.prev.BagsRetired, s.BagsRetired},
		{"quarantined", c.prev.Quarantined, s.Quarantined},
		{"cancelled", c.prev.Cancelled, s.Cancelled},
		{"redirects", c.prev.Redirects, s.Redirects},
	} {
		if p.cur < p.prev {
			return fmt.Errorf("chaos: counter %s moved backwards: %d -> %d", p.name, p.prev, p.cur)
		}
	}
	return nil
}
