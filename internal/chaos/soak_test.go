package chaos

// Soak tests: repeated Submit→Drain rounds under every fault mix, with the
// invariant checker asserting the conservation ledger at each quiescent
// checkpoint and race-safe liveness checks while the fleet runs. These run
// under -race in CI (`make chaos`); setting CHAOS_SOAK=1 (the nightly knob)
// lengthens every soak.

import (
	"os"
	"testing"
	"time"

	"hdcps/internal/graph"
	"hdcps/internal/runtime"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// soakRounds is the number of Submit→Drain rounds per mix: short and
// deterministic for CI, longer when CHAOS_SOAK=1 (nightly).
func soakRounds() int {
	if os.Getenv("CHAOS_SOAK") != "" {
		return 16
	}
	return 4
}

func soakGraph() *graph.CSR {
	if os.Getenv("CHAOS_SOAK") != "" {
		return graph.Road(48, 48, 3)
	}
	return graph.Road(20, 20, 3)
}

// soak drives one workload through rounds of Submit→Drain under the mix,
// checking liveness invariants mid-drain and the conservation ledger at
// every checkpoint. Returns the engine for mix-specific assertions.
func soak(t *testing.T, w workload.Workload, rcfg runtime.Config, ccfg Config) (*runtime.Engine, *Transport) {
	t.Helper()
	if rcfg.StallTimeout == 0 {
		rcfg.StallTimeout = 30 * time.Second
	}
	e, ct := Engine(w, rcfg, ccfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var chk Checker
	for round := 0; round < soakRounds(); round++ {
		if err := e.Submit(w.InitialTasks()...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		done := make(chan error, 1)
		go func() { done <- e.Drain(testCtx(t)) }()
	poll:
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("round %d: Drain = %v", round, err)
				}
				break poll
			default:
				if err := chk.Live(e.Snapshot()); err != nil {
					t.Fatalf("round %d (live): %v", round, err)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
		if err := chk.Quiescent(e.Snapshot()); err != nil {
			t.Fatalf("round %d (quiescent): %v", round, err)
		}
	}
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	return e, ct
}

func soakWorkload(t *testing.T) workload.Workload {
	t.Helper()
	w, err := workload.New("sssp", soakGraph())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSoakDelay(t *testing.T) {
	w := soakWorkload(t)
	_, ct := soak(t, w, runtime.Config{Workers: 4}, Config{Seed: 1, Delay: 0.2, DelayTurns: 4})
	if ct.Stats().DelayedBatches.Load() == 0 {
		t.Fatal("delay mix injected nothing")
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSoakDuplicate(t *testing.T) {
	w := soakWorkload(t)
	_, ct := soak(t, w, runtime.Config{Workers: 4}, Config{Seed: 2, Duplicate: 0.1})
	if ct.Stats().Duplicates.Load() == 0 {
		t.Fatal("duplicate mix injected nothing")
	}
	// Workloads tolerate duplicated tasks by contract; the answer must hold.
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSoakReorder(t *testing.T) {
	w := soakWorkload(t)
	_, ct := soak(t, w, runtime.Config{Workers: 4}, Config{Seed: 3, Reorder: 0.5})
	if ct.Stats().Reordered.Load() == 0 {
		t.Fatal("reorder mix injected nothing")
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSoakRingFull(t *testing.T) {
	w := soakWorkload(t)
	_, ct := soak(t, w, runtime.Config{Workers: 4, RingSize: 16, OverflowCap: 32},
		Config{Seed: 4, RingFull: 0.2})
	if ct.Stats().Rejected.Load() == 0 {
		t.Fatal("ringfull mix injected nothing")
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSoakStall(t *testing.T) {
	w := soakWorkload(t)
	_, ct := soak(t, w, runtime.Config{Workers: 4}, Config{Seed: 5, Stall: 0.05, StallFor: 16})
	if ct.Stats().Stalls.Load() == 0 {
		t.Fatal("stall mix injected nothing")
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Everything at once: transport faults plus transient handler panics, with
// retries absorbing the panics so the run still converges and verifies.
func TestSoakCombined(t *testing.T) {
	w := NewFaulty(soakWorkload(t), FaultyConfig{PanicEvery: 13, FailAttempts: 1})
	e, ct := soak(t, w,
		runtime.Config{Workers: 4, Retry: runtime.RetryPolicy{MaxAttempts: 3}},
		DefaultMix(6))
	st := ct.Stats()
	if st.DelayedBatches.Load()+st.Duplicates.Load()+st.Reordered.Load()+
		st.Rejected.Load()+st.Stalls.Load() == 0 {
		t.Fatal("combined mix injected nothing")
	}
	if w.Panics() == 0 {
		t.Fatal("no handler panics injected")
	}
	if q := e.Quarantined(); len(q) != 0 {
		t.Fatalf("transient faults quarantined %d tasks", len(q))
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

// The PR-5 queue matrix: the full fault mix over each local-queue shape
// with a tiny hot buffer and batched dequeue, so delayed/duplicated/
// reordered deliveries hammer the two-level spill, refill, and fallback
// paths while the ledger is checked at every quiescent point.
func TestSoakQueueKinds(t *testing.T) {
	for _, kind := range runtime.QueueKinds() {
		t.Run(kind, func(t *testing.T) {
			w := soakWorkload(t)
			_, ct := soak(t, w, runtime.Config{
				Workers:      4,
				QueueKind:    kind,
				HotBufferCap: 6,
				BatchK:       4,
			}, DefaultMix(7))
			st := ct.Stats()
			if st.DelayedBatches.Load()+st.Duplicates.Load()+st.Reordered.Load()+
				st.Rejected.Load()+st.Stalls.Load() == 0 {
				t.Fatal("mix injected nothing")
			}
			if err := w.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Poison mix: faults outlive the retry budget, so tasks quarantine — the
// run is lossy by design, but the ledger must account for every loss and
// Drain must still terminate.
func TestSoakQuarantine(t *testing.T) {
	w := NewFaulty(soakWorkload(t), FaultyConfig{PanicEvery: 29, FailAttempts: 1 << 30})
	e, _ := soak(t, w,
		runtime.Config{Workers: 4, Retry: runtime.RetryPolicy{MaxAttempts: 2}},
		DefaultMix(7))
	if len(e.Quarantined()) == 0 {
		t.Fatal("poison mix quarantined nothing")
	}
	// No Verify: quarantined relaxations may legitimately change the answer.
	// The soak's Quiescent checks already proved no task left the ledger.
}

// pauseMarker tags the task that blocks its worker mid-drain.
const pauseMarker = ^uint64(0)

// pausing intercepts marker tasks to block the processing worker on a gate;
// everything else delegates to the embedded workload.
type pausing struct {
	workload.Workload
	gate    chan struct{}
	started chan struct{}
}

func (p *pausing) Process(t task.Task, emit func(task.Task)) int {
	if t.Data == pauseMarker {
		p.started <- struct{}{}
		<-p.gate
		return 0
	}
	return p.Workload.Process(t, emit)
}

// Satellite regression soak: pause a random worker mid-drain (a task that
// blocks inside its handler) while new work races the park/wake handshake,
// then release it. Drain must always return — no lost wakeup, no stranded
// outstanding count — and the ledger must balance every round.
func TestSoakWorkerPauseMidDrain(t *testing.T) {
	inner := soakWorkload(t)
	p := &pausing{Workload: inner, started: make(chan struct{}, 1)}
	e, _ := Engine(p, runtime.Config{Workers: 4, StallTimeout: 30 * time.Second},
		Config{Seed: 8, Stall: 0.02, StallFor: 8})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var chk Checker
	for round := 0; round < soakRounds(); round++ {
		p.gate = make(chan struct{})
		// The pause task's node varies per round so the blocked worker does.
		pause := task.Task{Node: graph.NodeID(round), Prio: 0, Data: pauseMarker}
		if err := e.Submit(append(inner.InitialTasks(), pause)...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		<-p.started // a worker is now wedged mid-drain
		done := make(chan error, 1)
		go func() { done <- e.Drain(testCtx(t)) }()
		// Race fresh submissions against parking workers while one worker is
		// paused: the lost-wakeup window, if it existed, is here.
		for i := 0; i < 8; i++ {
			if err := e.Submit(inner.InitialTasks()...); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			time.Sleep(time.Millisecond)
		}
		close(p.gate)
		if err := <-done; err != nil {
			t.Fatalf("round %d: Drain = %v (lost wakeup?)", round, err)
		}
		if err := chk.Quiescent(e.Snapshot()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if err := inner.Verify(); err != nil {
		t.Fatal(err)
	}
}
