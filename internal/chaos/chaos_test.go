package chaos

import (
	"context"
	"strings"
	"testing"
	"time"

	"hdcps/internal/graph"
	"hdcps/internal/runtime"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42,delay=0.1,dup=0.02,reorder=0.2,ringfull=0.05,stall=0.01,delayturns=4,stallfor=6")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 42, Delay: 0.1, Duplicate: 0.02, Reorder: 0.2,
		RingFull: 0.05, Stall: 0.01, DelayTurns: 4, StallFor: 6}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if _, err := ParseSpec("delay=2"); err == nil {
		t.Fatal("probability > 1 must be rejected")
	}
	if _, err := ParseSpec("bogus=1"); err == nil {
		t.Fatal("unknown key must be rejected")
	}
	if _, err := ParseSpec("delay"); err == nil {
		t.Fatal("missing value must be rejected")
	}
	// "default" selects the stock mix, preserving an earlier seed.
	cfg, err = ParseSpec("seed=7,default")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Reorder == 0 {
		t.Fatalf("seed=7,default = %+v, want DefaultMix with seed 7", cfg)
	}
	if s := cfg.String(); !strings.Contains(s, "seed=7") {
		t.Fatalf("String() lost the seed: %s", s)
	}
}

// The wrapper with a zero mix is transparent: same results as the bare
// transport, nothing counted.
func TestTransportZeroMixTransparent(t *testing.T) {
	g := graph.Road(12, 12, 3)
	w, err := workload.New("bfs", g)
	if err != nil {
		t.Fatal(err)
	}
	e, ct := Engine(w, runtime.Config{Workers: 4}, Config{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(w.InitialTasks()...); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	st := ct.Stats()
	if st.DelayedBatches.Load()+st.Duplicates.Load()+st.Reordered.Load()+
		st.Rejected.Load()+st.Stalls.Load() != 0 {
		t.Fatalf("zero mix injected faults: %s", st)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	var chk Checker
	if err := chk.Quiescent(e.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

// Same seed, same fault decision stream: the per-endpoint RNG makes the
// injected fault pattern a pure function of (seed, call sequence).
func TestTransportDeterministicDecisions(t *testing.T) {
	run := func(seed uint64) []int64 {
		inner := runtime.NewDefaultTransport(runtime.Config{Workers: 2, RingSize: 8})
		ct := Wrap(inner, 2, Config{Seed: seed, RingFull: 0.3, Reorder: 0.5})
		var rejected int64
		for i := 0; i < 200; i++ {
			if rej := ct.Send(0, 1, task.Task{Node: graph.NodeID(i)}); len(rej) > 0 {
				rejected++
			}
			ct.Recv(1, nil)
		}
		return []int64{rejected, ct.Stats().Reordered.Load()}
	}
	a, b := run(11), run(11)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	c := run(12)
	if a[0] == c[0] && a[1] == c[1] {
		t.Fatalf("different seeds produced identical streams: %v", a)
	}
	if a[0] == 0 {
		t.Fatal("ringfull=0.3 over 200 sends injected nothing")
	}
}

// Checker.Quiescent flags a fabricated ledger hole, and Live flags
// backwards counters — the harness can actually detect violations.
func TestCheckerDetectsViolations(t *testing.T) {
	var chk Checker
	good := runtime.Snapshot{Submitted: 10, Spawned: 5, TasksProcessed: 14, BagsRetired: 0, Quarantined: 1}
	if err := chk.Quiescent(good); err != nil {
		t.Fatalf("balanced ledger rejected: %v", err)
	}
	bad := good
	bad.TasksProcessed = 13 // one task vanished
	if err := new(Checker).Quiescent(bad); err == nil {
		t.Fatal("lost task not detected")
	} else if !strings.Contains(err.Error(), "conservation violated") {
		t.Fatalf("wrong error: %v", err)
	}
	// The original checker sees the same snapshot as a backwards counter.
	if err := chk.Quiescent(bad); err == nil {
		t.Fatal("backwards processed counter not detected")
	}
	if err := (&Checker{}).Quiescent(runtime.Snapshot{Outstanding: 3}); err == nil {
		t.Fatal("non-zero outstanding not detected")
	}
	if err := (&Checker{}).Live(runtime.Snapshot{Outstanding: -1}); err == nil {
		t.Fatal("negative outstanding not detected")
	}
	var mono Checker
	if err := mono.Live(runtime.Snapshot{TasksProcessed: 5}); err != nil {
		t.Fatal(err)
	}
	if err := mono.Live(runtime.Snapshot{TasksProcessed: 4}); err == nil {
		t.Fatal("backwards counter not detected")
	}
}

// Faulty injects deterministic panics and stops after FailAttempts, so a
// retry budget above it converges with no quarantine.
func TestFaultyWorkloadTransient(t *testing.T) {
	g := graph.Road(12, 12, 3)
	inner, err := workload.New("sssp", g)
	if err != nil {
		t.Fatal(err)
	}
	w := NewFaulty(inner, FaultyConfig{PanicEvery: 7, FailAttempts: 1})
	e, _ := Engine(w, runtime.Config{
		Workers: 4,
		Retry:   runtime.RetryPolicy{MaxAttempts: 3},
	}, Config{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(w.InitialTasks()...); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if w.Panics() == 0 {
		t.Fatal("no faults injected (PanicEvery=7 over a 144-node graph)")
	}
	if q := e.Quarantined(); len(q) != 0 {
		t.Fatalf("transient faults quarantined %d tasks, want 0", len(q))
	}
	var chk Checker
	if err := chk.Quiescent(e.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("transient faults must not change the answer: %v", err)
	}
}
