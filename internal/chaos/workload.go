package chaos

import (
	"fmt"
	"sync"

	"hdcps/internal/graph"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// FaultyConfig selects which tasks a Faulty wrapper poisons and for how
// long. Selection is by node ID, so the fault set is deterministic and
// independent of scheduling.
type FaultyConfig struct {
	// PanicEvery poisons tasks whose Node is a multiple of this value
	// (0 disables injection entirely).
	PanicEvery int
	// FailAttempts is how many times a poisoned task panics before it
	// succeeds. Keep it below the engine's Retry.MaxAttempts for transient
	// faults (the run converges and Verify passes); at or above the budget
	// the task is quarantined instead (a lossy run by design).
	FailAttempts int
}

// Faulty wraps a workload with deterministic handler-panic injection, the
// workload-side half of a chaos run (the Transport wrapper perturbs
// transfer; this perturbs execution).
type Faulty struct {
	inner workload.Workload
	cfg   FaultyConfig

	mu       sync.Mutex
	attempts map[task.Task]int
	panics   int
}

// NewFaulty wraps w with cfg's panic injection.
func NewFaulty(w workload.Workload, cfg FaultyConfig) *Faulty {
	return &Faulty{inner: w, cfg: cfg, attempts: make(map[task.Task]int)}
}

// Panics reports how many injected panics have fired so far.
func (f *Faulty) Panics() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.panics
}

func (f *Faulty) Name() string              { return f.inner.Name() }
func (f *Faulty) Graph() *graph.CSR         { return f.inner.Graph() }
func (f *Faulty) InitialTasks() []task.Task { return f.inner.InitialTasks() }
func (f *Faulty) Verify() error             { return f.inner.Verify() }

func (f *Faulty) Reset() {
	f.mu.Lock()
	f.attempts = make(map[task.Task]int)
	f.panics = 0
	f.mu.Unlock()
	f.inner.Reset()
}

func (f *Faulty) Clone() workload.Workload {
	return NewFaulty(f.inner.Clone(), f.cfg)
}

func (f *Faulty) Process(t task.Task, emit func(task.Task)) int {
	if f.cfg.PanicEvery > 0 && int(t.Node)%f.cfg.PanicEvery == 0 {
		f.mu.Lock()
		n := f.attempts[t]
		if n < f.cfg.FailAttempts {
			f.attempts[t] = n + 1
			f.panics++
			f.mu.Unlock()
			panic(fmt.Sprintf("chaos: injected fault (node %d, attempt %d)", t.Node, n+1))
		}
		f.mu.Unlock()
	}
	return f.inner.Process(t, emit)
}
