package chaos

import (
	"testing"
	"time"

	"hdcps/internal/runtime"
)

func TestProbeDupSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		w := soakWorkload(t)
		rcfg := runtime.Config{Workers: 4, StallTimeout: 5 * time.Second}
		e, _ := Engine(w, rcfg, Config{Seed: seed, Duplicate: 0.3})
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		var chk Checker
		for round := 0; round < 3; round++ {
			if err := e.Submit(w.InitialTasks()...); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			if err := e.Drain(testCtx(t)); err != nil {
				t.Fatalf("seed %d round %d: Drain = %v", seed, round, err)
			}
			if err := chk.Quiescent(e.Snapshot()); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
		}
		if err := e.Stop(testCtx(t)); err != nil {
			t.Fatal(err)
		}
		if err := w.Verify(); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		chk = Checker{}
	}
}
