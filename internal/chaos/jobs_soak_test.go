package chaos

// Multi-tenant soaks: several jobs share one engine while the transport
// injects faults, and one tenant is cancelled mid-drain (or starved by its
// admission quota). The invariant checker must keep every surviving
// tenant's ledger exact — cancellation and quota rejection are per-job
// events that must never leak into a neighbour's accounting.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hdcps/internal/runtime"
)

// TestSoakMultiJobCancelUnderChaos cancels one tenant mid-drain every round
// while delayed, duplicated, and reordered deliveries are in flight, with
// two keeper tenants running throughout. Cancelled tasks land in the
// victim's Cancelled sink (never a keeper's), the global + per-job ledgers
// balance at every quiescent point, and both keepers' answers verify after
// all rounds — the victim's teardown must not cost a neighbour one task.
func TestSoakMultiJobCancelUnderChaos(t *testing.T) {
	keeperA := soakWorkload(t)
	keeperB := soakWorkload(t)
	rcfg := runtime.Config{
		Workers:      4,
		StallTimeout: 30 * time.Second,
		DefaultJob:   runtime.JobConfig{Name: "keeper-a", Weight: 2},
	}
	e, ct := Engine(keeperA, rcfg, Config{Seed: 11, Delay: 0.2, DelayTurns: 4, Duplicate: 0.1, Reorder: 0.5})
	ja := e.DefaultJob()
	jb, err := e.NewJob(keeperB, runtime.JobConfig{Name: "keeper-b", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var chk Checker
	var cancelledTotal int64
	for round := 0; round < soakRounds(); round++ {
		// A fresh victim per round: jobs are terminal once cancelled, and
		// NewJob while the fleet runs is part of the contract under test.
		victimW := soakWorkload(t)
		victim, err := e.NewJob(victimW, runtime.JobConfig{Name: fmt.Sprintf("victim-%d", round), Weight: 4})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := ja.Submit(keeperA.InitialTasks()...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := jb.Submit(keeperB.InitialTasks()...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := victim.Submit(victimW.InitialTasks()...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		done := make(chan error, 1)
		go func() { done <- e.Drain(testCtx(t)) }()
		// Cancel once the victim has visibly started, so its frontier (and
		// the transport's delayed batches) hold in-flight victim tasks.
		for victim.Snapshot().Processed == 0 {
			if err := chk.Live(e.Snapshot()); err != nil {
				t.Fatalf("round %d (live): %v", round, err)
			}
			time.Sleep(100 * time.Microsecond)
		}
		if err := victim.Cancel(testCtx(t)); err != nil {
			t.Fatalf("round %d: Cancel = %v", round, err)
		}
		if err := victim.Submit(victimW.InitialTasks()...); !errors.Is(err, runtime.ErrJobCancelled) {
			t.Fatalf("round %d: post-cancel Submit = %v, want ErrJobCancelled", round, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("round %d: Drain = %v", round, err)
		}
		if err := chk.Quiescent(e.Snapshot()); err != nil {
			t.Fatalf("round %d (quiescent): %v", round, err)
		}
		vs := victim.Snapshot()
		if !vs.Cancelled {
			t.Fatalf("round %d: victim not marked cancelled", round)
		}
		cancelledTotal += vs.CancelledTasks
		for name, js := range map[string]runtime.JobStats{"keeper-a": ja.Snapshot(), "keeper-b": jb.Snapshot()} {
			if js.CancelledTasks != 0 {
				t.Fatalf("round %d: %s lost %d tasks to a neighbour's cancel", round, name, js.CancelledTasks)
			}
			if js.Outstanding != 0 {
				t.Fatalf("round %d: %s still has %d outstanding after Drain", round, name, js.Outstanding)
			}
		}
	}
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	st := ct.Stats()
	if st.DelayedBatches.Load()+st.Duplicates.Load()+st.Reordered.Load() == 0 {
		t.Fatal("fault mix injected nothing")
	}
	if cancelledTotal == 0 {
		t.Fatal("no victim task was ever discarded mid-flight; cancel raced nothing")
	}
	if err := keeperA.Verify(); err != nil {
		t.Fatalf("keeper-a: %v", err)
	}
	if err := keeperB.Verify(); err != nil {
		t.Fatalf("keeper-b: %v", err)
	}
}

// TestSoakMultiJobQuota runs a bulk tenant against a quota-capped tenant
// under the full fault mix with skewed weights. Submissions past the cap
// are refused whole with a *QuotaError and stay out of the ledger (the
// QuotaRejected counter is bookkeeping, not a conservation term), admitted
// work drains exactly, and both tenants verify.
func TestSoakMultiJobQuota(t *testing.T) {
	bulk := soakWorkload(t)
	rcfg := runtime.Config{
		Workers:      4,
		StallTimeout: 30 * time.Second,
		DefaultJob:   runtime.JobConfig{Name: "bulk", Weight: 4},
	}
	e, ct := Engine(bulk, rcfg, DefaultMix(12))
	jBulk := e.DefaultJob()
	capped := soakWorkload(t)
	jCap, err := e.NewJob(capped, runtime.JobConfig{Name: "capped", Weight: 1, MaxOutstanding: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var chk Checker
	var rejections int
	for round := 0; round < soakRounds(); round++ {
		if err := jBulk.Submit(bulk.InitialTasks()...); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Hammer the capped job's admission gate: the first Submit seeds its
		// frontier, whose spawned children (quota-exempt by design) push
		// Outstanding past the cap, so later Submits in the same burst must
		// bounce with *QuotaError until the frontier drains back under it.
		for i := 0; i < 200; i++ {
			err := jCap.Submit(capped.InitialTasks()...)
			if err == nil {
				continue
			}
			var qe *runtime.QuotaError
			if !errors.As(err, &qe) {
				t.Fatalf("round %d: Submit = %v, want *QuotaError", round, err)
			}
			if qe.Limit != 8 || qe.Name != "capped" {
				t.Fatalf("round %d: QuotaError %+v, want limit 8 on capped", round, qe)
			}
			rejections++
		}
		done := make(chan error, 1)
		go func() { done <- e.Drain(testCtx(t)) }()
	poll:
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("round %d: Drain = %v", round, err)
				}
				break poll
			default:
				if err := chk.Live(e.Snapshot()); err != nil {
					t.Fatalf("round %d (live): %v", round, err)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
		if err := chk.Quiescent(e.Snapshot()); err != nil {
			t.Fatalf("round %d (quiescent): %v", round, err)
		}
	}
	if err := e.Stop(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if rejections == 0 {
		t.Fatal("quota never rejected a burst; admission control untested")
	}
	cs := jCap.Snapshot()
	if cs.QuotaRejected == 0 {
		t.Fatal("QuotaRejected counter stayed zero despite rejections")
	}
	if got := jBulk.Snapshot().QuotaRejected; got != 0 {
		t.Fatalf("unlimited bulk job recorded %d quota rejections", got)
	}
	st := ct.Stats()
	if st.DelayedBatches.Load()+st.Duplicates.Load()+st.Reordered.Load()+
		st.Rejected.Load()+st.Stalls.Load() == 0 {
		t.Fatal("fault mix injected nothing")
	}
	if err := bulk.Verify(); err != nil {
		t.Fatalf("bulk: %v", err)
	}
	if err := capped.Verify(); err != nil {
		t.Fatalf("capped: %v", err)
	}
}
