// Package chaos is the fault-injection harness for the native runtime: a
// Transport wrapper that perturbs inter-worker task transfer with seeded,
// deterministic faults — delivery delay, duplication, reordering, transient
// ring-full rejections, and worker stalls — plus an invariant checker that
// asserts the engine's conservation ledger and termination guarantees hold
// under every mix.
//
// The harness exists to *prove* the fault layer's two claims rather than
// assume them:
//
//   - no task loss: Submitted + Spawned == Processed + BagsRetired +
//     Quarantined at every quiescent checkpoint (runtime's conservation
//     ledger, see internal/runtime/fault.go);
//   - termination: Drain always returns — quiescence or a *StallError —
//     no matter which faults fire.
//
// Determinism: every fault decision comes from a per-endpoint seeded RNG
// (the same splitmix/xorshift generator the engine uses for destination
// selection), so a seed reproduces the same fault *decision stream*. The OS
// scheduler still interleaves workers differently run to run — the harness
// makes the faults reproducible, not the whole execution.
//
// Faults are measured in transport turns (Recv rounds), not wall-clock
// time: a held batch is released after a fixed number of owner polls, and a
// stalled endpoint wakes after a fixed number of rounds. Since workers keep
// polling while work is outstanding, every held task is eventually
// delivered and termination is preserved by construction.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"hdcps/internal/graph"
	"hdcps/internal/runtime"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// Config is one fault mix. Probabilities are per-opportunity in [0, 1]; the
// zero value injects nothing (a transparent wrapper).
type Config struct {
	// Seed drives every fault decision (per-endpoint streams derive from it).
	Seed uint64
	// Delay is the probability that a drained Recv batch is held back and
	// redelivered DelayTurns polls later (message delay).
	Delay float64
	// DelayTurns is how many Recv rounds a held batch waits. 0 defaults to 3.
	DelayTurns int
	// Duplicate is the probability, per non-empty Recv batch, that one task
	// from the batch is re-submitted through the engine (message
	// duplication). Duplicates enter the conservation ledger as submissions,
	// so the no-loss invariant stays exact; workloads tolerate duplicated
	// tasks by contract. Requires BindResubmit (chaos.Engine wires it).
	Duplicate float64
	// Reorder is the probability that a drained Recv batch is shuffled
	// before delivery (priority-order perturbation).
	Reorder float64
	// RingFull is the probability that a Send is bounced as if the
	// destination were saturated, exercising the engine's spill-to-local
	// flow-control path.
	RingFull float64
	// Stall is the probability, per Recv round, that the endpoint goes deaf
	// for StallFor rounds (a stalled/descheduled worker: its ring keeps
	// filling, nothing drains).
	Stall float64
	// StallFor is how many Recv rounds a stall lasts. 0 defaults to 8.
	StallFor int
}

func (c Config) withDefaults() Config {
	if c.DelayTurns <= 0 {
		c.DelayTurns = 3
	}
	if c.StallFor <= 0 {
		c.StallFor = 8
	}
	return c
}

// DefaultMix is a moderate everything-on mix: every fault class fires often
// enough to be exercised in a short run without drowning the workload.
func DefaultMix(seed uint64) Config {
	return Config{
		Seed:      seed,
		Delay:     0.05,
		Duplicate: 0.02,
		Reorder:   0.10,
		RingFull:  0.05,
		Stall:     0.01,
	}
}

// ParseSpec parses a "key=value,key=value" fault-mix spec, e.g.
//
//	seed=42,delay=0.1,dup=0.02,reorder=0.2,ringfull=0.05,stall=0.01
//
// Keys: seed, delay, delayturns, dup (alias duplicate), reorder, ringfull,
// stall, stallfor. The spec "default" (or "seed=N" alone with "default")
// is not special — an empty spec returns DefaultMix(1).
func ParseSpec(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "default" {
		return DefaultMix(1), nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		if kv == "default" {
			base := DefaultMix(cfg.Seed)
			base.Seed = cfg.Seed
			cfg = base
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: bad spec element %q (want key=value)", kv)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		switch k {
		case "seed", "delayturns", "stallfor":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: bad %s %q: %v", k, v, err)
			}
			switch k {
			case "seed":
				cfg.Seed = n
			case "delayturns":
				cfg.DelayTurns = int(n)
			case "stallfor":
				cfg.StallFor = int(n)
			}
		case "delay", "dup", "duplicate", "reorder", "ringfull", "stall":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return Config{}, fmt.Errorf("chaos: bad probability %s=%q (want [0,1])", k, v)
			}
			switch k {
			case "delay":
				cfg.Delay = p
			case "dup", "duplicate":
				cfg.Duplicate = p
			case "reorder":
				cfg.Reorder = p
			case "ringfull":
				cfg.RingFull = p
			case "stall":
				cfg.Stall = p
			}
		default:
			return Config{}, fmt.Errorf("chaos: unknown spec key %q", k)
		}
	}
	return cfg, nil
}

// String renders the mix back in ParseSpec's syntax.
func (c Config) String() string {
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	add := func(k string, p float64) {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, p))
		}
	}
	add("delay", c.Delay)
	add("dup", c.Duplicate)
	add("reorder", c.Reorder)
	add("ringfull", c.RingFull)
	add("stall", c.Stall)
	return strings.Join(parts, ",")
}

// Stats counts injected faults (atomics: read them while the fleet runs).
type Stats struct {
	DelayedBatches atomic.Int64 // Recv batches held back
	DelayedTasks   atomic.Int64 // tasks inside held batches
	Duplicates     atomic.Int64 // tasks re-submitted as duplicates
	Reordered      atomic.Int64 // Recv batches shuffled
	Rejected       atomic.Int64 // sends bounced as transient ring-full
	Stalls         atomic.Int64 // stall episodes started
}

func (s *Stats) String() string {
	return fmt.Sprintf(
		"delayed %d batches (%d tasks), duplicated %d, reordered %d, rejected %d, stalls %d",
		s.DelayedBatches.Load(), s.DelayedTasks.Load(), s.Duplicates.Load(),
		s.Reordered.Load(), s.Rejected.Load(), s.Stalls.Load())
}

// heldBatch is a delayed delivery parked at its destination endpoint.
type heldBatch struct {
	release uint64 // Recv round at which the batch is delivered
	tasks   []task.Task
}

// endpoint is one worker's chaos state. Recv and Send for a given id are
// called only by that worker's goroutine (the Transport contract), so the
// RNG and the held/stall state need no locks.
type endpoint struct {
	rng        *graph.RNG
	round      uint64 // Recv polls so far (the endpoint's clock)
	stallUntil uint64 // deaf until this round
	held       []heldBatch
}

// Transport wraps an inner runtime.Transport with fault injection. Build
// one with Wrap (or let chaos.Engine do the wiring) and pass it to the
// engine via runtime.Config.NewTransport.
type Transport struct {
	cfg   Config
	inner runtime.Transport
	eps   []endpoint
	stats Stats

	// resubmit re-enters duplicated tasks through Engine.Submit so they are
	// ledger-counted submissions, not phantom deliveries. Set by
	// BindResubmit before Start; nil disables duplication.
	resubmit func(...task.Task) error
}

// Wrap layers fault injection over inner for a fleet of `workers` endpoints.
func Wrap(inner runtime.Transport, workers int, cfg Config) *Transport {
	cfg = cfg.withDefaults()
	ct := &Transport{cfg: cfg, inner: inner, eps: make([]endpoint, workers)}
	for i := range ct.eps {
		// Distinct decision stream per endpoint, derived from the mix seed
		// with the same odd-constant stride the engine uses per worker.
		ct.eps[i].rng = graph.NewRNG((cfg.Seed ^ 0xc2b2ae3d27d4eb4f) + uint64(i)*0x9e3779b97f4a7c15)
	}
	return ct
}

// BindResubmit wires the duplication path to the engine's Submit. Must be
// called before the engine starts (chaos.Engine does this); without it the
// Duplicate probability is ignored.
func (ct *Transport) BindResubmit(fn func(...task.Task) error) { ct.resubmit = fn }

// Stats exposes the live fault counters.
func (ct *Transport) Stats() *Stats { return &ct.stats }

func (ct *Transport) Send(src, dst int, t task.Task) []task.Task {
	ep := &ct.eps[src]
	if ct.cfg.RingFull > 0 && ep.rng.Float64() < ct.cfg.RingFull {
		// Transient saturation: bounce the task exactly as a full
		// destination would, driving the sender's spill-to-local path.
		ct.stats.Rejected.Add(1)
		return []task.Task{t}
	}
	return ct.inner.Send(src, dst, t)
}

func (ct *Transport) Pending(src int) int { return ct.inner.Pending(src) }

func (ct *Transport) Flush(src int) []task.Task { return ct.inner.Flush(src) }

func (ct *Transport) Recv(id int, dst []task.Task) []task.Task {
	ep := &ct.eps[id]
	ep.round++

	// A stalled endpoint is deaf: nothing drains, its ring keeps filling.
	// Bounded in rounds, so the stall always ends while work remains.
	if ep.round < ep.stallUntil {
		return dst
	}
	if ct.cfg.Stall > 0 && ep.rng.Float64() < ct.cfg.Stall {
		ep.stallUntil = ep.round + uint64(ct.cfg.StallFor)
		ct.stats.Stalls.Add(1)
		return dst
	}

	// Release held batches that have served their delay.
	if len(ep.held) > 0 {
		kept := ep.held[:0]
		for _, h := range ep.held {
			if h.release <= ep.round {
				dst = append(dst, h.tasks...)
			} else {
				kept = append(kept, h)
			}
		}
		ep.held = kept
	}

	base := len(dst)
	dst = ct.inner.Recv(id, dst)
	fresh := dst[base:]
	if len(fresh) == 0 {
		return dst
	}

	if ct.cfg.Delay > 0 && ep.rng.Float64() < ct.cfg.Delay {
		// Hold the freshly drained batch; it re-emerges DelayTurns polls
		// from now. The tasks stay outstanding the whole time, so no park.
		ep.held = append(ep.held, heldBatch{
			release: ep.round + uint64(ct.cfg.DelayTurns),
			tasks:   append([]task.Task(nil), fresh...),
		})
		ct.stats.DelayedBatches.Add(1)
		ct.stats.DelayedTasks.Add(int64(len(fresh)))
		return dst[:base]
	}

	if ct.cfg.Reorder > 0 && len(fresh) > 1 && ep.rng.Float64() < ct.cfg.Reorder {
		for i := len(fresh) - 1; i > 0; i-- {
			j := ep.rng.Intn(i + 1)
			fresh[i], fresh[j] = fresh[j], fresh[i]
		}
		ct.stats.Reordered.Add(1)
	}

	if ct.cfg.Duplicate > 0 && ct.resubmit != nil && ep.rng.Float64() < ct.cfg.Duplicate {
		dup := fresh[ep.rng.Intn(len(fresh))]
		// Through Submit, not the ring: the duplicate becomes a counted
		// submission, keeping the conservation ledger exact. A duplicate
		// racing Stop may be refused (ErrStopped) — that is fine, it never
		// entered the ledger.
		if err := ct.resubmit(dup); err == nil {
			ct.stats.Duplicates.Add(1)
		}
	}
	return dst
}

func (ct *Transport) Inject(id int, ts []task.Task) { ct.inner.Inject(id, ts) }

func (ct *Transport) Spills(id int) int64 { return ct.inner.Spills(id) }

// Engine builds a native engine whose transport is wrapped with the fault
// mix, wiring the duplication path back into Submit. The returned Transport
// exposes the fault counters. Call Start on the engine as usual.
func Engine(w workload.Workload, rcfg runtime.Config, ccfg Config) (*runtime.Engine, *Transport) {
	var ct *Transport
	rcfg.NewTransport = func(fc runtime.Config) runtime.Transport {
		ct = Wrap(runtime.NewDefaultTransport(fc), fc.Workers, ccfg)
		return ct
	}
	e := runtime.NewEngine(w, rcfg)
	ct.BindResubmit(func(ts ...task.Task) error { return e.Submit(ts...) })
	return e, ct
}
