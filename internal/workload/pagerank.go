package workload

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"hdcps/internal/graph"
	"hdcps/internal/task"
)

// PageRank is push-style residual PageRank (§IV-D, the push-pull
// formulation of [27] restricted to its push phase, which is the
// task-parallel part): every vertex holds a residual; a task drains its
// vertex's residual into the rank and pushes the damped share to the
// out-neighbors, queueing a neighbor when its residual crosses the
// convergence threshold. Tasks are prioritized by residual magnitude using
// an integer metric (larger residual = higher priority), as the paper
// requires for OBIM compatibility. Processing large residuals first
// converges in fewer tasks, which is why priority order matters.
//
// Arithmetic is 2^30 fixed point so the workload is deterministic and
// atomically updatable.
type PageRank struct {
	g   *graph.CSR
	eps int64

	rank     []int64 // atomic
	residual []int64 // atomic

	ref []int64
}

// pagerank constants: standard damping 0.85 in fixed point.
const (
	prScale   = int64(1) << 30
	prDampNum = 85
	prDampDen = 100
)

// NewPageRank returns a residual PageRank over g. eps <= 0 selects the
// default threshold of 5e-4 of a unit rank (the task count scales roughly
// with 1/eps, so tighter thresholds mostly add work, not insight).
func NewPageRank(g *graph.CSR, eps int64) *PageRank {
	if eps <= 0 {
		eps = prScale / 2000
	}
	w := &PageRank{
		g:        g,
		eps:      eps,
		rank:     make([]int64, g.NumNodes()),
		residual: make([]int64, g.NumNodes()),
	}
	w.Reset()
	return w
}

// Name implements Workload.
func (w *PageRank) Name() string { return "pagerank" }

// Graph implements Workload.
func (w *PageRank) Graph() *graph.CSR { return w.g }

// Rank returns the fixed-point rank array (divide by 2^30 for real values).
func (w *PageRank) Rank() []int64 { return w.rank }

// Reset implements Workload.
func (w *PageRank) Reset() {
	init := prScale * (prDampDen - prDampNum) / prDampDen // (1-d)
	for i := range w.rank {
		w.rank[i] = 0
		w.residual[i] = init
	}
}

// prPrio maps a residual to an integer priority: larger residuals get
// numerically smaller (= higher) priorities. The metric is logarithmic with
// 4 sub-levels per octave — coarse enough that same-priority tasks still
// form bags (§III-B groups by exact priority), fine enough that
// bucket-merging schedulers retain useful order.
func prPrio(res int64) int64 {
	if res <= 0 {
		return 1 << 12
	}
	b := int64(bits.Len64(uint64(res)))
	var frac int64
	if b > 3 {
		frac = (res >> uint(b-3)) & 3
	}
	return -(b<<2 | frac)
}

// InitialTasks implements Workload: one task per node at the initial
// residual's priority.
func (w *PageRank) InitialTasks() []task.Task {
	ts := make([]task.Task, w.g.NumNodes())
	p := prPrio(w.residual[0])
	for i := range ts {
		ts[i] = task.Task{Node: graph.NodeID(i), Prio: p}
	}
	return ts
}

// Process implements Workload: drain the vertex's residual and push the
// damped share to its out-neighbors.
func (w *PageRank) Process(t task.Task, emit func(task.Task)) int {
	u := t.Node
	res := atomic.SwapInt64(&w.residual[u], 0)
	if res < w.eps {
		// Stale or already-drained task; put the residual back (it may
		// still accumulate past eps later).
		if res > 0 {
			atomic.AddInt64(&w.residual[u], res)
		}
		return 0
	}
	atomic.AddInt64(&w.rank[u], res)
	dsts, _ := w.g.Neighbors(u)
	if len(dsts) == 0 {
		return 0
	}
	share := res * prDampNum / prDampDen / int64(len(dsts))
	if share == 0 {
		return len(dsts)
	}
	for _, v := range dsts {
		old := atomic.AddInt64(&w.residual[v], share) - share
		if old < w.eps && old+share >= w.eps {
			emit(task.Task{Node: v, Prio: prPrio(old + share)})
		}
	}
	return len(dsts)
}

// Clone implements Workload.
func (w *PageRank) Clone() Workload { return NewPageRank(w.g, w.eps) }

// Verify implements Workload. Residual PageRank is an anytime algorithm:
// any execution order converges to the exact ranks up to the mass still
// parked in sub-threshold residuals. We check (a) every residual is below
// the threshold, and (b) each rank matches a strict-priority sequential
// run within the worst-case parked-mass bound.
func (w *PageRank) Verify() error {
	for i := range w.residual {
		if r := atomic.LoadInt64(&w.residual[i]); r >= w.eps {
			return fmt.Errorf("pagerank: node %d residual %d >= eps %d (not converged)", i, r, w.eps)
		}
	}
	if w.ref == nil {
		c := w.Clone().(*PageRank)
		RunSequential(c)
		w.ref = c.rank
	}
	// Bound: at convergence each node parks < eps of undelivered residual;
	// damping amplifies parked mass along paths by at most 1/(1-d). Two
	// converged runs therefore differ by at most ~2*n*eps/(1-d) in L1 norm
	// (plus negligible fixed-point truncation), so we allow twice that.
	var l1 int64
	for i := range w.rank {
		diff := w.rank[i] - w.ref[i]
		if diff < 0 {
			diff = -diff
		}
		l1 += diff
	}
	n := int64(w.g.NumNodes())
	tol := 4 * n * w.eps * prDampDen / (prDampDen - prDampNum)
	if l1 > tol {
		return fmt.Errorf("pagerank: L1 distance to sequential reference %d > tol %d", l1, tol)
	}
	return nil
}
