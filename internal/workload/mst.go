package workload

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hdcps/internal/graph"
	"hdcps/internal/task"
)

// MST is Boruvka's minimum-spanning-forest algorithm as tasks (§IV-D). Each
// task owns one component: it scans the component's surviving edge list for
// the lightest edge leaving the component, contracts it (union), and emits a
// new task for the merged component prioritized by its degree (the paper's
// priority), so small components merge first. Tasks for components that were
// merged away in the meantime are the workload's redundant work.
//
// The input is treated as an undirected graph (each directed edge is a
// connection); the total forest weight is compared against Kruskal.
type MST struct {
	g *graph.CSR

	mu     sync.Mutex // guards parent unions and adjacency merging
	parent []uint32
	adj    [][]mstEdge // per-root surviving candidate edges
	weight int64       // accumulated forest weight (atomic)
	merges int64       // number of contractions performed (atomic)

	refWeight int64
	refEdges  int64
	haveRef   bool
}

type mstEdge struct {
	to graph.NodeID
	wt uint32
}

// NewMST returns a Boruvka MST over g. The graph is symmetrized first: a
// component must see *every* edge crossing its cut (including the input's
// in-edges) or the cut property that makes Boruvka correct does not hold.
func NewMST(g *graph.CSR) *MST {
	w := &MST{g: g.Symmetrize()}
	w.Reset()
	return w
}

// Name implements Workload.
func (w *MST) Name() string { return "mst" }

// Graph implements Workload.
func (w *MST) Graph() *graph.CSR { return w.g }

// Weight returns the forest weight accumulated so far.
func (w *MST) Weight() int64 { return atomic.LoadInt64(&w.weight) }

// Merges returns the number of contractions performed.
func (w *MST) Merges() int64 { return atomic.LoadInt64(&w.merges) }

// Reset implements Workload.
func (w *MST) Reset() {
	n := w.g.NumNodes()
	w.parent = make([]uint32, n)
	w.adj = make([][]mstEdge, n)
	for i := 0; i < n; i++ {
		w.parent[i] = uint32(i)
		dsts, wts := w.g.Neighbors(graph.NodeID(i))
		edges := make([]mstEdge, 0, len(dsts))
		for k, v := range dsts {
			if v != graph.NodeID(i) {
				edges = append(edges, mstEdge{to: v, wt: wts[k]})
			}
		}
		w.adj[i] = edges
	}
	atomic.StoreInt64(&w.weight, 0)
	atomic.StoreInt64(&w.merges, 0)
}

// find follows parent pointers with path halving. Safe under the workload
// mutex; reads outside the mutex are only used as a staleness fast-path.
func (w *MST) find(u uint32) uint32 {
	for w.parent[u] != u {
		w.parent[u] = w.parent[w.parent[u]]
		u = w.parent[u]
	}
	return u
}

// InitialTasks implements Workload: one task per node, prioritized by its
// degree so low-degree components contract first.
func (w *MST) InitialTasks() []task.Task {
	ts := make([]task.Task, w.g.NumNodes())
	for i := range ts {
		ts[i] = task.Task{Node: graph.NodeID(i), Prio: int64(len(w.adj[i]))}
	}
	return ts
}

// Process implements Workload: contract the lightest edge leaving the
// task's component, if the component still exists.
func (w *MST) Process(t task.Task, emit func(task.Task)) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	root := w.find(uint32(t.Node))
	if root != uint32(t.Node) {
		return 1 // stale: this component was merged into another
	}
	// Scan the component's candidate edges for the lightest one leaving it,
	// compacting dead (internal) edges as we go — Boruvka's lazy filtering.
	edges := w.adj[root]
	live := edges[:0]
	bestIdx := -1
	var best mstEdge
	for _, e := range edges {
		to := w.find(uint32(e.to))
		if to == root {
			continue // internal edge: drop it
		}
		e.to = graph.NodeID(to)
		live = append(live, e)
		if bestIdx == -1 || e.wt < best.wt || (e.wt == best.wt && e.to < best.to) {
			best = e
			bestIdx = len(live) - 1
		}
	}
	scanned := len(edges)
	w.adj[root] = live
	if bestIdx == -1 {
		return scanned + 1 // isolated component: done
	}
	// Contract: merge the smaller adjacency into the larger (weighted
	// union keeps list concatenation cheap).
	other := uint32(best.to)
	a, b := root, other
	if len(w.adj[a]) < len(w.adj[b]) {
		a, b = b, a
	}
	w.parent[b] = a
	w.adj[a] = append(w.adj[a], w.adj[b]...)
	w.adj[b] = nil
	atomic.AddInt64(&w.weight, int64(best.wt))
	atomic.AddInt64(&w.merges, 1)
	emit(task.Task{Node: graph.NodeID(a), Prio: int64(len(w.adj[a]))})
	return scanned + 1
}

// Clone implements Workload. It reuses the already-symmetrized graph.
func (w *MST) Clone() Workload {
	c := &MST{g: w.g}
	c.Reset()
	c.refWeight, c.refEdges, c.haveRef = w.refWeight, w.refEdges, w.haveRef
	return c
}

// Verify implements Workload: forest weight and edge count must match
// Kruskal's (the minimum forest weight is unique even when the forest
// itself is not).
func (w *MST) Verify() error {
	if !w.haveRef {
		w.refWeight, w.refEdges = kruskal(w.g)
		w.haveRef = true
	}
	if got := w.Merges(); got != w.refEdges {
		return fmt.Errorf("mst: %d merges, want %d", got, w.refEdges)
	}
	if got := w.Weight(); got != w.refWeight {
		return fmt.Errorf("mst: weight %d, want %d", got, w.refWeight)
	}
	return nil
}

// kruskal is the independent reference: sort-and-union over the undirected
// edge set, returning (forest weight, forest edge count).
func kruskal(g *graph.CSR) (int64, int64) {
	type edge struct {
		u, v graph.NodeID
		wt   uint32
	}
	edges := make([]edge, 0, g.NumEdges())
	for u := 0; u < g.NumNodes(); u++ {
		dsts, wts := g.Neighbors(graph.NodeID(u))
		for i, v := range dsts {
			if graph.NodeID(u) != v {
				edges = append(edges, edge{graph.NodeID(u), v, wts[i]})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].wt < edges[b].wt })
	parent := make([]uint32, g.NumNodes())
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(uint32) uint32
	find = func(u uint32) uint32 {
		for parent[u] != u {
			parent[u] = parent[parent[u]]
			u = parent[u]
		}
		return u
	}
	var weight, count int64
	for _, e := range edges {
		ru, rv := find(uint32(e.u)), find(uint32(e.v))
		if ru != rv {
			parent[ru] = rv
			weight += int64(e.wt)
			count++
		}
	}
	return weight, count
}
