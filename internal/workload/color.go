package workload

import (
	"fmt"
	"sync/atomic"

	"hdcps/internal/graph"
	"hdcps/internal/task"
)

// Color is priority graph coloring (§IV-D): vertices are prioritized by
// degree (highest degree first, the saturation-style order of [26]) and
// colored speculatively — a task colors its vertex with the smallest color
// unused by currently-colored neighbors, then re-colors (and re-queues)
// itself if a concurrent higher-priority neighbor took the same color.
// Scheduling order does not affect correctness, only the number of colors
// and the conflict-retry count; within any conflict set the globally
// highest-priority vertex never re-colors, so the process terminates under
// every schedule.
//
// The workload runs on the symmetrized input (coloring is an undirected
// constraint).
type Color struct {
	g     *graph.CSR // symmetrized
	color []int32    // -1 = uncolored; atomic
}

const uncolored = int32(-1)

// NewColor returns a coloring workload over the symmetrized g.
func NewColor(g *graph.CSR) *Color {
	w := &Color{g: g.Symmetrize()}
	w.color = make([]int32, w.g.NumNodes())
	w.Reset()
	return w
}

// Name implements Workload.
func (w *Color) Name() string { return "color" }

// Graph implements Workload.
func (w *Color) Graph() *graph.CSR { return w.g }

// Colors returns the per-node color assignment.
func (w *Color) Colors() []int32 { return w.color }

// NumColors returns the number of distinct colors used so far.
func (w *Color) NumColors() int {
	max := int32(-1)
	for i := range w.color {
		if c := atomic.LoadInt32(&w.color[i]); c > max {
			max = c
		}
	}
	return int(max + 1)
}

// Reset implements Workload.
func (w *Color) Reset() {
	for i := range w.color {
		w.color[i] = uncolored
	}
}

// prio returns the scheduling priority of node u: higher degree first,
// ties broken by ID so the priority order is total (required for
// Jones–Plassmann to terminate).
func (w *Color) prio(u graph.NodeID) int64 {
	return -int64(w.g.OutDegree(u))
}

// higherPriority reports whether v precedes u in the coloring order.
func (w *Color) higherPriority(v, u graph.NodeID) bool {
	dv, du := w.g.OutDegree(v), w.g.OutDegree(u)
	if dv != du {
		return dv > du
	}
	return v < u
}

// InitialTasks implements Workload.
func (w *Color) InitialTasks() []task.Task {
	ts := make([]task.Task, w.g.NumNodes())
	for i := range ts {
		u := graph.NodeID(i)
		ts[i] = task.Task{Node: u, Prio: w.prio(u)}
	}
	return ts
}

// Process implements Workload: speculative greedy coloring with
// conflict-driven retry.
func (w *Color) Process(t task.Task, emit func(task.Task)) int {
	u := t.Node
	dsts, _ := w.g.Neighbors(u)
	cu := atomic.LoadInt32(&w.color[u])
	if cu != uncolored {
		// Already colored: this is a conflict-check pass (or a duplicate).
		// Re-color only if a higher-priority neighbor holds our color.
		conflict := false
		for _, v := range dsts {
			if v != u && w.higherPriority(v, u) && atomic.LoadInt32(&w.color[v]) == cu {
				conflict = true
				break
			}
		}
		if !conflict {
			return len(dsts)
		}
		atomic.StoreInt32(&w.color[u], uncolored)
	}
	// Take the smallest color unused by currently colored neighbors.
	used := make(map[int32]bool, len(dsts))
	for _, v := range dsts {
		if c := atomic.LoadInt32(&w.color[v]); v != u && c != uncolored {
			used[c] = true
		}
	}
	c := int32(0)
	for used[c] {
		c++
	}
	atomic.StoreInt32(&w.color[u], c)
	// Validate against neighbors that raced us. The later writer of a
	// conflicting pair is guaranteed to observe the earlier write here, and
	// it queues a retry for the pair's *lower-priority* vertex — so every
	// race is detected by at least one side and the highest-priority vertex
	// of a conflict never re-colors (termination).
	retriedSelf := false
	for _, v := range dsts {
		if v == u || atomic.LoadInt32(&w.color[v]) != c {
			continue
		}
		if w.higherPriority(v, u) {
			if !retriedSelf {
				retriedSelf = true
				emit(task.Task{Node: u, Prio: t.Prio})
			}
		} else {
			emit(task.Task{Node: v, Prio: w.prio(v)})
		}
	}
	return len(dsts)
}

// Clone implements Workload. It reuses the already-symmetrized graph.
func (w *Color) Clone() Workload {
	c := &Color{g: w.g, color: make([]int32, w.g.NumNodes())}
	c.Reset()
	return c
}

// Verify implements Workload: every node colored, no edge monochromatic.
func (w *Color) Verify() error {
	for u := 0; u < w.g.NumNodes(); u++ {
		cu := w.color[u]
		if cu == uncolored {
			return fmt.Errorf("color: node %d left uncolored", u)
		}
		dsts, _ := w.g.Neighbors(graph.NodeID(u))
		for _, v := range dsts {
			if graph.NodeID(u) != v && w.color[v] == cu {
				return fmt.Errorf("color: edge %d-%d monochromatic (color %d)", u, v, cu)
			}
		}
	}
	return nil
}
