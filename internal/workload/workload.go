// Package workload implements the paper's six task-parallel graph benchmarks
// (§IV-D): delta-stepping SSSP, A*, BFS, Boruvka MST, saturation/priority
// graph coloring, and push-style residual PageRank. Every workload exposes
// the same task interface so it can run unchanged under any scheduler — the
// deterministic simulator or the native goroutine runtime — and carries an
// independent sequential reference used to verify results and to measure
// work efficiency.
package workload

import (
	"fmt"

	"hdcps/internal/graph"
	"hdcps/internal/pq"
	"hdcps/internal/task"
)

// Workload is a task-parallel algorithm instance over a fixed graph.
//
// Process must tolerate relaxed priority order and duplicated/stale tasks:
// schedulers may execute tasks in any order, and a correct workload
// converges to the same answer regardless (possibly doing redundant work,
// which is exactly what the paper's work-efficiency metric captures).
//
// Implementations use atomic operations on their state so Process may be
// called concurrently by the native runtime; the simulator calls it from a
// single goroutine.
type Workload interface {
	// Name returns the benchmark's short name (e.g. "sssp").
	Name() string
	// Graph returns the input graph the workload runs over.
	Graph() *graph.CSR
	// Reset re-initializes all algorithm state for a fresh run.
	Reset()
	// InitialTasks returns the tasks that seed the computation.
	InitialTasks() []task.Task
	// Process executes one task, calling emit for every child task it
	// creates, and returns the number of edges examined (the simulator's
	// compute-cost input).
	Process(t task.Task, emit func(task.Task)) int
	// Clone returns a fresh instance with identical parameters and
	// independent state, used to run the sequential baseline.
	Clone() Workload
	// Verify checks the converged state against an independent sequential
	// reference and returns a descriptive error on mismatch.
	Verify() error
}

// RunSequential drains w's task graph in strict priority order with a
// single priority queue and returns the number of tasks processed. It is
// the sequential baseline of the paper's work-efficiency and speedup
// metrics. Call it on a Clone, not on the instance a scheduler will run.
func RunSequential(w Workload) int64 {
	w.Reset()
	q := pq.NewBinaryHeap(1024)
	for _, t := range w.InitialTasks() {
		q.Push(t)
	}
	var n int64
	for {
		t, ok := q.Pop()
		if !ok {
			break
		}
		n++
		w.Process(t, q.Push)
	}
	return n
}

// New constructs a workload by name with default parameters. Recognized
// names: sssp, astar, bfs, mst, color, pagerank (alias pr).
func New(name string, g *graph.CSR) (Workload, error) {
	switch name {
	case "sssp":
		return NewSSSP(g, graph.LargestComponentSeed(g), 0), nil
	case "astar":
		src := graph.LargestComponentSeed(g)
		// Deterministic far-away target: the node at the opposite corner of
		// the ID space, which for lattice-coordinate graphs is geometrically
		// far from the default source.
		dst := graph.NodeID(g.NumNodes() - 1 - int(src))
		return NewAStar(g, src, dst, 0), nil
	case "bfs":
		return NewBFS(g, graph.LargestComponentSeed(g)), nil
	case "mst":
		return NewMST(g), nil
	case "color":
		return NewColor(g), nil
	case "pagerank", "pr":
		return NewPageRank(g, 0), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
}

// Names lists the available workload names in the paper's order.
func Names() []string {
	return []string{"sssp", "astar", "bfs", "mst", "color", "pagerank"}
}

const inf = int64(1) << 60
