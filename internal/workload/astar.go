package workload

import (
	"fmt"
	"math"
	"sync/atomic"

	"hdcps/internal/graph"
	"hdcps/internal/pq"
	"hdcps/internal/task"
)

// AStar is A* shortest path to a single target (§IV-D): like SSSP, a task
// relaxes one vertex, but its priority is g + h where h is an admissible
// geometric heuristic, and expansions whose f-value cannot beat the current
// best target distance are pruned.
//
// For graphs with coordinates the heuristic is Euclidean distance scaled by
// the largest factor that keeps it admissible on the given graph (the
// minimum weight-per-unit-length over all edges); for graphs without
// coordinates the heuristic is zero and A* degenerates to Dijkstra, which
// keeps it correct everywhere.
type AStar struct {
	g      *graph.CSR
	src    graph.NodeID
	target graph.NodeID
	delta  int64
	hscale float64
	dist   []int64

	refTarget int64
	haveRef   bool
}

// NewAStar returns an A* search from src to target. delta <= 0 picks the
// same default bucket width as SSSP.
func NewAStar(g *graph.CSR, src, target graph.NodeID, delta int64) *AStar {
	if delta <= 0 {
		delta = defaultDelta(g)
	}
	w := &AStar{
		g: g, src: src, target: target, delta: delta,
		hscale: admissibleScale(g),
		dist:   make([]int64, g.NumNodes()),
	}
	w.Reset()
	return w
}

// admissibleScale returns the largest s such that s * euclid(u, v) <= wt for
// every edge, making h(v) = s * euclid(v, target) an admissible heuristic.
// It returns 0 (heuristic disabled) for graphs without coordinates.
func admissibleScale(g *graph.CSR) float64 {
	if !g.HasCoords() {
		return 0
	}
	scale := math.Inf(1)
	for u := 0; u < g.NumNodes(); u++ {
		dsts, wts := g.Neighbors(graph.NodeID(u))
		for i, v := range dsts {
			d := euclid(g, graph.NodeID(u), v)
			if d <= 0 {
				continue
			}
			if s := float64(wts[i]) / d; s < scale {
				scale = s
			}
		}
	}
	if math.IsInf(scale, 1) {
		return 0
	}
	return scale
}

func euclid(g *graph.CSR, u, v graph.NodeID) float64 {
	dx := float64(g.X[u] - g.X[v])
	dy := float64(g.Y[u] - g.Y[v])
	return math.Sqrt(dx*dx + dy*dy)
}

// h returns the admissible heuristic estimate from u to the target.
func (w *AStar) h(u graph.NodeID) int64 {
	if w.hscale == 0 {
		return 0
	}
	return int64(w.hscale * euclid(w.g, u, w.target))
}

// Name implements Workload.
func (w *AStar) Name() string { return "astar" }

// Graph implements Workload.
func (w *AStar) Graph() *graph.CSR { return w.g }

// TargetDist returns the best distance to the target found so far.
func (w *AStar) TargetDist() int64 { return atomic.LoadInt64(&w.dist[w.target]) }

// Reset implements Workload.
func (w *AStar) Reset() {
	for i := range w.dist {
		w.dist[i] = inf
	}
	w.dist[w.src] = 0
}

// InitialTasks implements Workload.
func (w *AStar) InitialTasks() []task.Task {
	return []task.Task{{Node: w.src, Prio: w.h(w.src) / w.delta, Data: 0}}
}

// Process implements Workload.
func (w *AStar) Process(t task.Task, emit func(task.Task)) int {
	u := t.Node
	d := int64(t.Data)
	if d > atomic.LoadInt64(&w.dist[u]) {
		return 0 // stale
	}
	// Prune: with an admissible heuristic, d + h(u) is a lower bound on any
	// target distance through u.
	best := atomic.LoadInt64(&w.dist[w.target])
	if d+w.h(u) >= best {
		return 0
	}
	dsts, wts := w.g.Neighbors(u)
	for i, v := range dsts {
		nd := d + int64(wts[i])
		if nd+w.h(v) >= atomic.LoadInt64(&w.dist[w.target]) {
			continue // cannot improve the target
		}
		for {
			cur := atomic.LoadInt64(&w.dist[v])
			if nd >= cur {
				break
			}
			if atomic.CompareAndSwapInt64(&w.dist[v], cur, nd) {
				emit(task.Task{Node: v, Prio: (nd + w.h(v)) / w.delta, Data: uint64(nd)})
				break
			}
		}
	}
	return len(dsts)
}

// Clone implements Workload.
func (w *AStar) Clone() Workload { return NewAStar(w.g, w.src, w.target, w.delta) }

// Verify implements Workload: the target distance must equal Dijkstra's.
// (Non-target distances legitimately differ because of pruning.)
func (w *AStar) Verify() error {
	if !w.haveRef {
		ref := seqAStar(w.g, w.src, w.target, w.hscale)
		w.refTarget = ref
		w.haveRef = true
	}
	if got := w.dist[w.target]; got != w.refTarget {
		return fmt.Errorf("astar: target dist = %d, want %d", got, w.refTarget)
	}
	return nil
}

// seqAStar is the independent reference: textbook sequential A* (admissible
// heuristic, so the result equals the true shortest distance).
func seqAStar(g *graph.CSR, src, target graph.NodeID, hscale float64) int64 {
	h := func(u graph.NodeID) int64 {
		if hscale == 0 {
			return 0
		}
		return int64(hscale * euclid(g, u, target))
	}
	dist := make([]int64, g.NumNodes())
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	q := pq.NewBinaryHeap(1024)
	q.Push(task.Task{Node: src, Prio: h(src), Data: 0})
	for {
		t, ok := q.Pop()
		if !ok {
			return dist[target]
		}
		if t.Node == target {
			return dist[target]
		}
		d := int64(t.Data)
		if d > dist[t.Node] {
			continue
		}
		dsts, wts := g.Neighbors(t.Node)
		for i, v := range dsts {
			nd := d + int64(wts[i])
			if nd < dist[v] {
				dist[v] = nd
				q.Push(task.Task{Node: v, Prio: nd + h(v), Data: uint64(nd)})
			}
		}
	}
}
