package workload

import (
	"testing"

	"hdcps/internal/graph"
	"hdcps/internal/task"
)

// runLIFO drains a workload in deliberately bad (stack) order. Correct
// workloads must converge to the right answer anyway, just with more tasks;
// this is the relaxed-order tolerance contract every scheduler relies on.
func runLIFO(w Workload) int64 {
	w.Reset()
	stack := append([]task.Task(nil), w.InitialTasks()...)
	var n int64
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n++
		if n > 100_000_000 {
			panic("workload did not terminate under LIFO order")
		}
		w.Process(t, func(c task.Task) { stack = append(stack, c) })
	}
	return n
}

// runRandomized drains a workload popping pseudo-random queue positions.
func runRandomized(w Workload, seed uint64) int64 {
	w.Reset()
	r := graph.NewRNG(seed)
	queue := append([]task.Task(nil), w.InitialTasks()...)
	var n int64
	for len(queue) > 0 {
		i := r.Intn(len(queue))
		t := queue[i]
		queue[i] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		n++
		if n > 100_000_000 {
			panic("workload did not terminate under random order")
		}
		w.Process(t, func(c task.Task) { queue = append(queue, c) })
	}
	return n
}

// e builds a keyed edge literal.
func e(u, v graph.NodeID, w uint32) graph.Edge {
	return graph.Edge{Src: u, Dst: v, Wt: w}
}

func testGraphs() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"road": graph.Road(20, 20, 3),
		"cage": graph.Cage(400, 10, 24, 3),
		"web":  graph.Web(400, 3),
		"grid": graph.Grid(16, 16, 50, 3),
	}
}

func TestAllWorkloadsSequential(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, wname := range Names() {
			w, err := New(wname, g)
			if err != nil {
				t.Fatalf("New(%s): %v", wname, err)
			}
			n := RunSequential(w)
			if n <= 0 {
				t.Fatalf("%s/%s: sequential run processed %d tasks", wname, gname, n)
			}
			if err := w.Verify(); err != nil {
				t.Errorf("%s/%s: %v", wname, gname, err)
			}
		}
	}
}

func TestAllWorkloadsRelaxedOrders(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, wname := range Names() {
			w, err := New(wname, g)
			if err != nil {
				t.Fatal(err)
			}
			seq := RunSequential(w.Clone())
			lifo := runLIFO(w)
			if err := w.Verify(); err != nil {
				t.Errorf("%s/%s LIFO: %v", wname, gname, err)
			}
			if lifo < seq {
				// Relaxed order can only add work, never remove it, except
				// for A* where pruning makes comparisons input-dependent.
				if wname != "astar" {
					t.Errorf("%s/%s: LIFO did %d tasks < sequential %d", wname, gname, lifo, seq)
				}
			}
			rnd := runRandomized(w, 99)
			if err := w.Verify(); err != nil {
				t.Errorf("%s/%s random: %v", wname, gname, err)
			}
			if rnd <= 0 {
				t.Errorf("%s/%s: empty random run", wname, gname)
			}
		}
	}
}

func TestWorkloadResetIsClean(t *testing.T) {
	g := graph.Road(15, 15, 1)
	for _, wname := range Names() {
		w, _ := New(wname, g)
		first := RunSequential(w)
		second := RunSequential(w) // RunSequential resets internally
		if first != second {
			t.Errorf("%s: reset not clean: %d vs %d tasks", wname, first, second)
		}
		if err := w.Verify(); err != nil {
			t.Errorf("%s after reset: %v", wname, err)
		}
	}
}

func TestNewUnknownWorkload(t *testing.T) {
	if _, err := New("nope", graph.Grid(3, 3, 1, 1)); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestSSSPMatchesDijkstraExactly(t *testing.T) {
	g := graph.Road(30, 30, 7)
	w := NewSSSP(g, 0, 0)
	runRandomized(w, 1)
	want := dijkstra(g, 0)
	for i, d := range w.Dist() {
		if d != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, d, want[i])
		}
	}
}

func TestSSSPStaleTaskIsNoop(t *testing.T) {
	g := graph.Grid(4, 4, 5, 1)
	w := NewSSSP(g, 0, 1)
	RunSequential(w)
	emitted := 0
	// A task whose proposal is worse than the settled distance must do
	// nothing.
	edges := w.Process(task.Task{Node: 5, Prio: 999, Data: 1 << 40}, func(task.Task) { emitted++ })
	if edges != 0 || emitted != 0 {
		t.Fatalf("stale task did work: edges=%d emitted=%d", edges, emitted)
	}
}

func TestSSSPDefaultDelta(t *testing.T) {
	g := graph.Grid(5, 5, 100, 2)
	w := NewSSSP(g, 0, 0)
	if w.Delta() < 1 {
		t.Fatalf("delta = %d", w.Delta())
	}
	empty, _ := graph.FromEdges("e", 3, nil)
	if NewSSSP(empty, 0, 0).Delta() != 1 {
		t.Fatal("edgeless graph delta should be 1")
	}
}

func TestBFSLevels(t *testing.T) {
	// Path graph 0-1-2-3.
	g, _ := graph.FromEdges("path", 4, []graph.Edge{
		e(0, 1, 1), e(1, 0, 1), e(1, 2, 1), e(2, 1, 1), e(2, 3, 1), e(3, 2, 1),
	})
	w := NewBFS(g, 0)
	runLIFO(w)
	for i, want := range []int64{0, 1, 2, 3} {
		if w.Level()[i] != want {
			t.Fatalf("level[%d] = %d, want %d", i, w.Level()[i], want)
		}
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g, _ := graph.FromEdges("2cc", 3, []graph.Edge{e(0, 1, 1)})
	w := NewBFS(g, 0)
	RunSequential(w)
	if w.Level()[2] != inf {
		t.Fatalf("unreachable node level = %d", w.Level()[2])
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAStarFindsShortestPath(t *testing.T) {
	g := graph.Grid(20, 20, 9, 5)
	src, dst := graph.NodeID(0), graph.NodeID(399)
	w := NewAStar(g, src, dst, 1)
	runRandomized(w, 5)
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	// Cross-check against plain Dijkstra.
	want := dijkstra(g, src)[dst]
	if got := w.TargetDist(); got != want {
		t.Fatalf("target dist = %d, want %d", got, want)
	}
}

func TestAStarPrunesWork(t *testing.T) {
	// With a strong heuristic, A* to a nearby target should process far
	// fewer tasks than full SSSP on the same graph.
	g := graph.Grid(40, 40, 1, 5) // uniform weights: heuristic is exact
	src, dst := graph.NodeID(0), graph.NodeID(41)
	astarTasks := RunSequential(NewAStar(g, src, dst, 1))
	ssspTasks := RunSequential(NewSSSP(g, src, 1))
	if astarTasks*4 > ssspTasks {
		t.Fatalf("A* did not prune: %d tasks vs SSSP %d", astarTasks, ssspTasks)
	}
}

func TestAStarNoCoordsFallsBack(t *testing.T) {
	// Graph without coordinates: heuristic 0, still correct.
	g, _ := graph.FromEdges("nocoord", 4, []graph.Edge{
		e(0, 1, 5), e(1, 2, 5), e(0, 2, 20), e(2, 3, 1),
	})
	w := NewAStar(g, 0, 3, 1)
	RunSequential(w)
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if w.TargetDist() != 11 {
		t.Fatalf("target dist = %d, want 11", w.TargetDist())
	}
}

func TestMSTWeight(t *testing.T) {
	// Hand-checkable square with diagonal: nodes 0..3,
	// edges (0-1:1) (1-2:2) (2-3:3) (3-0:4) (0-2:5). MST = 1+2+3 = 6.
	edges := []graph.Edge{}
	und := func(u, v graph.NodeID, w uint32) {
		edges = append(edges, graph.Edge{Src: u, Dst: v, Wt: w}, graph.Edge{Src: v, Dst: u, Wt: w})
	}
	und(0, 1, 1)
	und(1, 2, 2)
	und(2, 3, 3)
	und(3, 0, 4)
	und(0, 2, 5)
	g, _ := graph.FromEdges("sq", 4, edges)
	w := NewMST(g)
	RunSequential(w)
	if w.Weight() != 6 || w.Merges() != 3 {
		t.Fatalf("MST weight=%d merges=%d, want 6/3", w.Weight(), w.Merges())
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMSTForest(t *testing.T) {
	// Two disconnected components: result is a forest.
	g, _ := graph.FromEdges("forest", 5, []graph.Edge{
		e(0, 1, 2), e(1, 0, 2), e(2, 3, 7), e(3, 2, 7), e(3, 4, 1), e(4, 3, 1),
	})
	w := NewMST(g)
	runLIFO(w)
	if w.Weight() != 10 || w.Merges() != 3 {
		t.Fatalf("forest weight=%d merges=%d, want 10/3", w.Weight(), w.Merges())
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestColorProper(t *testing.T) {
	g := graph.Web(300, 9)
	w := NewColor(g)
	runRandomized(w, 17)
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if w.NumColors() < 1 {
		t.Fatal("no colors used")
	}
}

func TestColorPriorityOrderUsesFewColors(t *testing.T) {
	// On a star graph, degree-priority coloring uses exactly 2 colors.
	n := 10
	edges := []graph.Edge{}
	for i := 1; i < n; i++ {
		edges = append(edges,
			graph.Edge{Src: 0, Dst: graph.NodeID(i), Wt: 1},
			graph.Edge{Src: graph.NodeID(i), Dst: 0, Wt: 1})
	}
	g, _ := graph.FromEdges("star", n, edges)
	w := NewColor(g)
	RunSequential(w)
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if w.NumColors() != 2 {
		t.Fatalf("star colored with %d colors, want 2", w.NumColors())
	}
	// Hub (highest degree) gets color 0.
	if w.Colors()[0] != 0 {
		t.Fatalf("hub color = %d, want 0", w.Colors()[0])
	}
}

func TestColorBadOrderStillProper(t *testing.T) {
	// Speculative coloring must stay proper under any order; bad orders can
	// only cost extra colors, never correctness.
	n := 50
	edges := []graph.Edge{}
	for i := 1; i < n; i++ {
		edges = append(edges,
			graph.Edge{Src: 0, Dst: graph.NodeID(i), Wt: 1},
			graph.Edge{Src: graph.NodeID(i), Dst: 0, Wt: 1})
	}
	g, _ := graph.FromEdges("star", n, edges)
	w := NewColor(g)
	if tasks := runLIFO(w); tasks < int64(n) {
		t.Fatalf("LIFO processed %d tasks for %d nodes", tasks, n)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	ordered := RunSequential(w.Clone().(*Color))
	if ordered < int64(n) {
		t.Fatalf("sequential processed %d tasks", ordered)
	}
}

func TestPageRankConverges(t *testing.T) {
	g := graph.Web(300, 4)
	w := NewPageRank(g, 0)
	RunSequential(w)
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	// Total mass: sum of ranks should approach n * scale (what full
	// convergence would deliver), and must be positive and below it.
	var sum int64
	for _, r := range w.Rank() {
		sum += r
	}
	n := int64(g.NumNodes())
	if sum <= 0 || sum > n*prScale {
		t.Fatalf("rank mass %d out of range (n*scale = %d)", sum, n*prScale)
	}
	if sum < n*prScale/2 {
		t.Fatalf("rank mass %d too low; not converged (n*scale = %d)", sum, n*prScale)
	}
}

func TestPageRankPriorityHelps(t *testing.T) {
	// Priority order (big residuals first) should not process more tasks
	// than a LIFO order on a power-law graph.
	g := graph.LJ(400, 8)
	seq := RunSequential(NewPageRank(g, 0))
	w := NewPageRank(g, 0)
	lifo := runLIFO(w)
	if seq > lifo {
		t.Fatalf("priority order did more work: %d vs LIFO %d", seq, lifo)
	}
}

func TestPRPrioMonotone(t *testing.T) {
	// Bigger residual must never get a numerically larger (worse) priority.
	last := prPrio(1)
	for shift := 1; shift < 40; shift++ {
		p := prPrio(1 << shift)
		if p > last {
			t.Fatalf("prPrio not monotone at 1<<%d", shift)
		}
		last = p
	}
	// Sub-octave resolution: residuals in the same octave but different
	// top bits must differ in priority (4 sub-levels per octave).
	if prPrio(1<<20) == prPrio(1<<20|1<<19) {
		t.Fatal("prPrio lacks sub-octave resolution")
	}
	if prPrio(0) <= 0 || prPrio(-5) <= 0 {
		t.Fatal("non-positive residuals must map to lowest priority")
	}
}

func TestWorkEfficiencyDegradesWithBadOrder(t *testing.T) {
	// The premise of the whole paper: for SSSP on a road-like graph,
	// processing in priority order does less work than bad orders.
	g := graph.Road(30, 30, 11)
	src := graph.LargestComponentSeed(g)
	seq := RunSequential(NewSSSP(g, src, 0))
	lifo := runLIFO(NewSSSP(g, src, 0))
	if lifo <= seq {
		t.Fatalf("LIFO (%d tasks) not worse than priority order (%d)", lifo, seq)
	}
}
