package workload

import (
	"fmt"
	"sync/atomic"

	"hdcps/internal/graph"
	"hdcps/internal/pq"
	"hdcps/internal/task"
)

// SSSP is delta-stepping single-source shortest paths (§IV-D): each task
// relaxes one vertex, its priority is the vertex's tentative distance
// quantized by delta (lower distance = higher priority), and stale tasks
// (whose distance proposal has been beaten) are cheap no-ops that count as
// redundant work.
type SSSP struct {
	g     *graph.CSR
	src   graph.NodeID
	delta int64
	dist  []int64 // atomic tentative distances

	ref []int64 // sequential Dijkstra distances, computed on first Verify
}

// NewSSSP returns a delta-stepping SSSP from src. delta <= 0 selects a
// heuristic bucket width of about the average edge weight, the standard
// delta-stepping choice.
func NewSSSP(g *graph.CSR, src graph.NodeID, delta int64) *SSSP {
	if delta <= 0 {
		delta = defaultDelta(g)
	}
	w := &SSSP{g: g, src: src, delta: delta, dist: make([]int64, g.NumNodes())}
	w.Reset()
	return w
}

// defaultDelta picks a bucket width near the average edge weight, clamped
// to at least 1.
func defaultDelta(g *graph.CSR) int64 {
	if g.NumEdges() == 0 {
		return 1
	}
	var sum int64
	for _, w := range g.Wt {
		sum += int64(w)
	}
	d := sum / int64(g.NumEdges())
	if d < 1 {
		d = 1
	}
	return d
}

// Name implements Workload.
func (w *SSSP) Name() string { return "sssp" }

// Graph implements Workload.
func (w *SSSP) Graph() *graph.CSR { return w.g }

// Delta returns the bucket width in use.
func (w *SSSP) Delta() int64 { return w.delta }

// Dist returns the tentative-distance array (inf for unreachable nodes).
// Valid after a scheduler has drained all tasks.
func (w *SSSP) Dist() []int64 { return w.dist }

// Reset implements Workload.
func (w *SSSP) Reset() {
	for i := range w.dist {
		w.dist[i] = inf
	}
	w.dist[w.src] = 0
}

// InitialTasks implements Workload.
func (w *SSSP) InitialTasks() []task.Task {
	return []task.Task{{Node: w.src, Prio: 0, Data: 0}}
}

// Process implements Workload: relax u's out-edges if the task's distance
// proposal is still current.
func (w *SSSP) Process(t task.Task, emit func(task.Task)) int {
	u := t.Node
	d := int64(t.Data)
	if d > atomic.LoadInt64(&w.dist[u]) {
		return 0 // stale: a better distance already settled u
	}
	dsts, wts := w.g.Neighbors(u)
	for i, v := range dsts {
		nd := d + int64(wts[i])
		for {
			cur := atomic.LoadInt64(&w.dist[v])
			if nd >= cur {
				break
			}
			if atomic.CompareAndSwapInt64(&w.dist[v], cur, nd) {
				emit(task.Task{Node: v, Prio: nd / w.delta, Data: uint64(nd)})
				break
			}
		}
	}
	return len(dsts)
}

// Clone implements Workload.
func (w *SSSP) Clone() Workload { return NewSSSP(w.g, w.src, w.delta) }

// Verify implements Workload: compares against sequential Dijkstra.
func (w *SSSP) Verify() error {
	if w.ref == nil {
		w.ref = dijkstra(w.g, w.src)
	}
	for i, want := range w.ref {
		if w.dist[i] != want {
			return fmt.Errorf("sssp: dist[%d] = %d, want %d", i, w.dist[i], want)
		}
	}
	return nil
}

// dijkstra is the independent reference: a textbook binary-heap Dijkstra.
func dijkstra(g *graph.CSR, src graph.NodeID) []int64 {
	dist := make([]int64, g.NumNodes())
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	q := pq.NewBinaryHeap(1024)
	q.Push(task.Task{Node: src, Prio: 0, Data: 0})
	for {
		t, ok := q.Pop()
		if !ok {
			return dist
		}
		d := int64(t.Data)
		if d > dist[t.Node] {
			continue
		}
		dsts, wts := g.Neighbors(t.Node)
		for i, v := range dsts {
			nd := d + int64(wts[i])
			if nd < dist[v] {
				dist[v] = nd
				q.Push(task.Task{Node: v, Prio: nd, Data: uint64(nd)})
			}
		}
	}
}
