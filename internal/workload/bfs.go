package workload

import (
	"fmt"
	"sync/atomic"

	"hdcps/internal/graph"
	"hdcps/internal/task"
)

// BFS is breadth-first search expressed as tasks (§IV-D): SSSP with every
// edge weight treated as one, so a task's priority is its depth from the
// source. Relaxed order makes depths settle out of order and produces the
// redundant re-visits the paper's work-efficiency metric measures.
type BFS struct {
	g     *graph.CSR
	src   graph.NodeID
	level []int64

	ref []int64
}

// NewBFS returns a BFS from src.
func NewBFS(g *graph.CSR, src graph.NodeID) *BFS {
	w := &BFS{g: g, src: src, level: make([]int64, g.NumNodes())}
	w.Reset()
	return w
}

// Name implements Workload.
func (w *BFS) Name() string { return "bfs" }

// Graph implements Workload.
func (w *BFS) Graph() *graph.CSR { return w.g }

// Level returns the per-node depth array (inf for unreachable).
func (w *BFS) Level() []int64 { return w.level }

// Reset implements Workload.
func (w *BFS) Reset() {
	for i := range w.level {
		w.level[i] = inf
	}
	w.level[w.src] = 0
}

// InitialTasks implements Workload.
func (w *BFS) InitialTasks() []task.Task {
	return []task.Task{{Node: w.src, Prio: 0, Data: 0}}
}

// Process implements Workload.
func (w *BFS) Process(t task.Task, emit func(task.Task)) int {
	u := t.Node
	d := int64(t.Data)
	if d > atomic.LoadInt64(&w.level[u]) {
		return 0
	}
	dsts, _ := w.g.Neighbors(u)
	for _, v := range dsts {
		nd := d + 1
		for {
			cur := atomic.LoadInt64(&w.level[v])
			if nd >= cur {
				break
			}
			if atomic.CompareAndSwapInt64(&w.level[v], cur, nd) {
				emit(task.Task{Node: v, Prio: nd, Data: uint64(nd)})
				break
			}
		}
	}
	return len(dsts)
}

// Clone implements Workload.
func (w *BFS) Clone() Workload { return NewBFS(w.g, w.src) }

// Verify implements Workload: compares against an array-queue BFS.
func (w *BFS) Verify() error {
	if w.ref == nil {
		w.ref = refBFS(w.g, w.src)
	}
	for i, want := range w.ref {
		if w.level[i] != want {
			return fmt.Errorf("bfs: level[%d] = %d, want %d", i, w.level[i], want)
		}
	}
	return nil
}

func refBFS(g *graph.CSR, src graph.NodeID) []int64 {
	level := make([]int64, g.NumNodes())
	for i := range level {
		level[i] = inf
	}
	level[src] = 0
	queue := []graph.NodeID{src}
	for i := 0; i < len(queue); i++ {
		u := queue[i]
		dsts, _ := g.Neighbors(u)
		for _, v := range dsts {
			if level[v] == inf {
				level[v] = level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return level
}
