package netchaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "seed=7,latency=0.1,latms=3,throttle=4096,rst=0.02,shortread=0.25,partialwrite=0.05,stall=0.01,stallms=20"
	cfg, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Latency != 0.1 || cfg.LatencyDur != 3*time.Millisecond ||
		cfg.Throttle != 4096 || cfg.RST != 0.02 || cfg.ShortRead != 0.25 ||
		cfg.PartialWrite != 0.05 || cfg.Stall != 0.01 || cfg.StallDur != 20*time.Millisecond {
		t.Fatalf("parsed %+v", cfg)
	}
	re, err := ParseSpec(cfg.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", cfg.String(), err)
	}
	if re.Seed != cfg.Seed || re.RST != cfg.RST || re.ShortRead != cfg.ShortRead ||
		re.Throttle != cfg.Throttle {
		t.Fatalf("round trip lost fields: %+v vs %+v", re, cfg)
	}
	if !cfg.Enabled() || (Config{}).Enabled() {
		t.Fatal("Enabled misclassifies")
	}
}

func TestParseSpecDefaultAndErrors(t *testing.T) {
	def, err := ParseSpec("")
	if err != nil || def != DefaultMix(1) {
		t.Fatalf("empty spec: %+v, %v", def, err)
	}
	seeded, err := ParseSpec("seed=9,default")
	if err != nil || seeded.Seed != 9 || seeded.RST != DefaultMix(9).RST {
		t.Fatalf("seed+default: %+v, %v", seeded, err)
	}
	for _, bad := range []string{"nope", "rst=2", "rst=x", "wat=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q should fail", bad)
		}
	}
}

// pair dials one wrapped loopback connection and returns both ends.
func pair(t *testing.T, cfg Config) (server net.Conn, client net.Conn, lis *Listener) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis = Wrap(inner, cfg)
	t.Cleanup(func() { lis.Close() })
	type acc struct {
		c   net.Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := lis.Accept()
		ch <- acc{c, err}
	}()
	client, err = net.Dial("tcp", inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	got := <-ch
	if got.err != nil {
		t.Fatal(got.err)
	}
	t.Cleanup(func() { got.c.Close() })
	return got.c, client, lis
}

// TestTransparentWhenZero: the zero mix must be a byte-exact pass-through.
func TestTransparentWhenZero(t *testing.T) {
	server, client, lis := pair(t, Config{Seed: 1})
	msg := bytes.Repeat([]byte("abcdefgh"), 1024)
	go func() {
		_, _ = client.Write(msg)
		client.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("zero mix corrupted the stream: %d bytes vs %d", len(got), len(msg))
	}
	st := lis.Stats()
	if st.Resets.Load()+st.ShortReads.Load()+st.PartialWrites.Load()+
		st.Latencies.Load()+st.Stalls.Load() != 0 {
		t.Fatalf("zero mix injected faults: %s", st)
	}
	if st.Conns.Load() != 1 {
		t.Fatalf("conns %d, want 1", st.Conns.Load())
	}
}

// TestShortReadLosesNothing: truncated reads fragment delivery but every
// byte still arrives, in order.
func TestShortReadLosesNothing(t *testing.T) {
	server, client, lis := pair(t, Config{Seed: 3, ShortRead: 0.9})
	msg := bytes.Repeat([]byte("0123456789abcdef"), 512)
	go func() {
		_, _ = client.Write(msg)
		client.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("short reads corrupted the stream (%d bytes vs %d)", len(got), len(msg))
	}
	if lis.Stats().ShortReads.Load() == 0 {
		t.Fatal("shortread mix injected nothing")
	}
}

// TestRSTResetsBothEnds: an injected reset errors locally and cuts the peer.
func TestRSTResetsBothEnds(t *testing.T) {
	server, client, lis := pair(t, Config{Seed: 5, RST: 1})
	if _, err := server.Write([]byte("doomed")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write on rst=1 conn: %v, want ErrInjectedReset", err)
	}
	if lis.Stats().Resets.Load() == 0 {
		t.Fatal("no reset counted")
	}
	// The peer sees the cut on read: RST (connection reset) or EOF depending
	// on what the kernel delivered first — never a clean payload.
	_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if n, err := client.Read(buf); err == nil && n > 0 {
		t.Fatalf("peer read %d bytes (%q) from a reset conn", n, buf[:n])
	}
}

// TestPartialWriteDeliversStrictPrefix: the peer receives some prefix, never
// the full buffer, and the writer learns the stream died.
func TestPartialWriteDeliversStrictPrefix(t *testing.T) {
	server, client, lis := pair(t, Config{Seed: 11, PartialWrite: 1})
	msg := bytes.Repeat([]byte("x"), 8192)
	n, err := server.Write(msg)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("partial write err %v, want ErrInjectedReset", err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("partial write delivered %d of %d, want a strict prefix", n, len(msg))
	}
	if lis.Stats().PartialWrites.Load() == 0 {
		t.Fatal("no partial write counted")
	}
	_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(client)
	if len(got) > n {
		t.Fatalf("peer got %d bytes, writer reported %d", len(got), n)
	}
}

// TestThrottlePacesWrites: a throttled stream takes at least size/bps.
func TestThrottlePacesWrites(t *testing.T) {
	server, client, lis := pair(t, Config{Seed: 13, Throttle: 64 << 10})
	msg := bytes.Repeat([]byte("y"), 32<<10)
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := server.Write(msg)
		server.Close()
		done <- err
	}()
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatal(werr)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("throttle corrupted the stream (%d vs %d bytes)", len(got), len(msg))
	}
	// 32KiB at 64KiB/s ≈ 500ms minus the unthrottled first chunk; generous
	// floor to dodge scheduler noise.
	if el := time.Since(start); el < 200*time.Millisecond {
		t.Fatalf("throttled 32KiB at 64KiB/s finished in %s", el)
	}
	_ = lis
}

// TestDeterministicDecisionStream: same seed, same per-connection faults.
// Non-fatal faults only, so the op count (and thus the decision stream
// consumed) is identical across runs.
func TestDeterministicDecisionStream(t *testing.T) {
	run := func() (lat int64, short int64) {
		server, client, lis := pair(t, Config{Seed: 17, ShortRead: 0.3, Latency: 0.2, LatencyDur: time.Microsecond})
		go func() {
			for {
				if _, err := client.Write(bytes.Repeat([]byte("z"), 256)); err != nil {
					return
				}
			}
		}()
		buf := make([]byte, 256)
		for i := 0; i < 200; i++ {
			if _, err := server.Read(buf); err != nil {
				break
			}
		}
		server.Close()
		return lis.Stats().Latencies.Load(), lis.Stats().ShortReads.Load()
	}
	l1, s1 := run()
	l2, s2 := run()
	if l1 != l2 || s1 != s2 {
		t.Fatalf("decision stream not deterministic: (%d,%d) vs (%d,%d)", l1, s1, l2, s2)
	}
	if s1 == 0 || l1 == 0 {
		t.Fatal("mix injected nothing")
	}
}

func TestStatsString(t *testing.T) {
	var s Stats
	s.Conns.Store(2)
	s.Resets.Store(1)
	if got := s.String(); !strings.Contains(got, "conns 2") || !strings.Contains(got, "reset 1") {
		t.Fatalf("stats string %q", got)
	}
}
