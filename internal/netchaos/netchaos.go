// Package netchaos is the network-boundary sibling of internal/chaos: a
// seeded, deterministic fault-injecting net.Listener / net.Conn wrapper that
// perturbs the byte streams a serving front-end actually fails on — injected
// latency, bandwidth throttling, mid-stream connection resets, short reads,
// partial writes, and stalls (transient blackholes). Where chaos.Transport
// exercises the engine's inter-worker transfer, netchaos exercises the HTTP
// layer above it: half-written NDJSON submit streams, responses that never
// arrive, clients that trickle bytes, connections cut between request and
// response. Wrapping hdcps-serve's listener with both layers active (the
// engine behind a chaos.Transport, the socket behind a netchaos.Listener) is
// how one soak drives faults at the transport boundary and the network
// boundary at once.
//
// Determinism follows the chaos package's contract: every fault decision
// comes from a per-connection seeded RNG (connection index striding the mix
// seed), so a seed reproduces the same fault decision stream per connection
// in accept order. The OS still schedules goroutines and segments TCP
// differently run to run — the faults are reproducible, not the whole
// execution.
//
// Faults are bounded by construction so a retrying client always makes
// progress: latency and stall injections sleep for a fixed configured
// duration (never forever), resets kill one connection (a redial gets a
// fresh decision stream), and the throttle paces bytes without dropping any.
// The termination story therefore lives with the client's retry budget, not
// with wall-clock luck — which is exactly what the serve netchaos soak
// asserts.
package netchaos

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hdcps/internal/graph"
)

// Config is one connection-fault mix. Probabilities are per I/O operation
// (one Read or Write call) in [0, 1]; the zero value injects nothing.
type Config struct {
	// Seed drives every fault decision; each accepted connection derives its
	// own stream from it.
	Seed uint64
	// Latency is the probability that an I/O op is delayed by LatencyDur
	// before touching the socket (network propagation delay).
	Latency float64
	// LatencyDur is the injected delay. 0 defaults to 2ms.
	LatencyDur time.Duration
	// Throttle caps write bandwidth in bytes/second by chunking and pacing
	// large writes (a slow client or congested path). 0 disables.
	Throttle int64
	// RST is the probability that an op hard-resets the connection instead
	// of performing the I/O: the peer sees a TCP RST (SetLinger(0) close),
	// the local caller an immediate error — a mid-stream connection cut.
	RST float64
	// ShortRead is the probability that a Read is truncated to a random
	// prefix of the caller's buffer (fragmented delivery; no data is lost,
	// the rest arrives on later reads).
	ShortRead float64
	// PartialWrite is the probability that a Write delivers only a random
	// prefix and then resets the connection — a half-written stream whose
	// tail never arrives.
	PartialWrite float64
	// Stall is the probability that an op blackholes for StallDur before
	// proceeding (a dead NAT entry, a paused VM: bytes neither flow nor
	// fail).
	Stall float64
	// StallDur is how long a stall lasts. 0 defaults to 100ms.
	StallDur time.Duration
}

func (c Config) withDefaults() Config {
	if c.LatencyDur <= 0 {
		c.LatencyDur = 2 * time.Millisecond
	}
	if c.StallDur <= 0 {
		c.StallDur = 100 * time.Millisecond
	}
	return c
}

// Enabled reports whether the mix injects anything at all.
func (c Config) Enabled() bool {
	return c.Latency > 0 || c.Throttle > 0 || c.RST > 0 ||
		c.ShortRead > 0 || c.PartialWrite > 0 || c.Stall > 0
}

// DefaultMix is a moderate everything-on mix: every connection fault class
// fires often enough to be exercised by a short soak without making
// progress hopeless for a retrying client.
func DefaultMix(seed uint64) Config {
	return Config{
		Seed:         seed,
		Latency:      0.05,
		LatencyDur:   2 * time.Millisecond,
		RST:          0.01,
		ShortRead:    0.10,
		PartialWrite: 0.01,
		Stall:        0.005,
		StallDur:     50 * time.Millisecond,
	}
}

// ParseSpec parses a "key=value,key=value" connection-fault spec, e.g.
//
//	seed=42,rst=0.01,shortread=0.1,latency=0.05,latms=2,stall=0.005,stallms=50
//
// Keys: seed, latency, latms, throttle (bytes/second), rst, shortread,
// partialwrite, stall, stallms. The spec "default" applies DefaultMix
// (an explicit seed=N element survives it); an empty spec returns
// DefaultMix(1).
func ParseSpec(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "default" {
		return DefaultMix(1), nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		if kv == "default" {
			base := DefaultMix(cfg.Seed)
			base.Seed = cfg.Seed
			cfg = base
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Config{}, fmt.Errorf("netchaos: bad spec element %q (want key=value)", kv)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		switch k {
		case "seed", "latms", "stallms", "throttle":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("netchaos: bad %s %q: %v", k, v, err)
			}
			switch k {
			case "seed":
				cfg.Seed = n
			case "latms":
				cfg.LatencyDur = time.Duration(n) * time.Millisecond
			case "stallms":
				cfg.StallDur = time.Duration(n) * time.Millisecond
			case "throttle":
				cfg.Throttle = int64(n)
			}
		case "latency", "rst", "shortread", "partialwrite", "stall":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return Config{}, fmt.Errorf("netchaos: bad probability %s=%q (want [0,1])", k, v)
			}
			switch k {
			case "latency":
				cfg.Latency = p
			case "rst":
				cfg.RST = p
			case "shortread":
				cfg.ShortRead = p
			case "partialwrite":
				cfg.PartialWrite = p
			case "stall":
				cfg.Stall = p
			}
		default:
			return Config{}, fmt.Errorf("netchaos: unknown spec key %q", k)
		}
	}
	return cfg, nil
}

// String renders the mix back in ParseSpec's syntax.
func (c Config) String() string {
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	add := func(k string, p float64) {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, p))
		}
	}
	add("latency", c.Latency)
	add("rst", c.RST)
	add("shortread", c.ShortRead)
	add("partialwrite", c.PartialWrite)
	add("stall", c.Stall)
	if c.Throttle > 0 {
		parts = append(parts, fmt.Sprintf("throttle=%d", c.Throttle))
	}
	return strings.Join(parts, ",")
}

// Stats counts injected connection faults (atomics: read while serving).
type Stats struct {
	Conns         atomic.Int64 // connections accepted through the wrapper
	Latencies     atomic.Int64 // ops delayed
	Resets        atomic.Int64 // injected hard resets
	ShortReads    atomic.Int64 // reads truncated
	PartialWrites atomic.Int64 // writes cut mid-buffer (then reset)
	Stalls        atomic.Int64 // ops blackholed for StallDur
}

func (s *Stats) String() string {
	return fmt.Sprintf(
		"conns %d, delayed %d ops, reset %d, short-read %d, partial-write %d, stalled %d",
		s.Conns.Load(), s.Latencies.Load(), s.Resets.Load(),
		s.ShortReads.Load(), s.PartialWrites.Load(), s.Stalls.Load())
}

// ErrInjectedReset is returned by a Conn whose operation was converted into
// a connection reset (the peer sees a TCP RST).
var ErrInjectedReset = errors.New("netchaos: injected connection reset")

// Listener wraps an inner net.Listener so every accepted connection carries
// the fault mix. Each connection derives its own decision stream from the
// mix seed and its accept index.
type Listener struct {
	net.Listener
	cfg   Config
	stats Stats
	nconn atomic.Uint64
}

// Wrap layers the fault mix over lis.
func Wrap(lis net.Listener, cfg Config) *Listener {
	return &Listener{Listener: lis, cfg: cfg.withDefaults()}
}

// Stats exposes the live fault counters.
func (l *Listener) Stats() *Stats { return &l.stats }

// Accept wraps the next inner connection with a per-connection fault stream.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	idx := l.nconn.Add(1)
	l.stats.Conns.Add(1)
	return &Conn{
		Conn:  c,
		cfg:   &l.cfg,
		stats: &l.stats,
		// Same odd-constant stride per connection the chaos package uses per
		// endpoint: nearby indices get unrelated decision streams.
		rng: graph.NewRNG((l.cfg.Seed ^ 0x9e3779b97f4a7c15) + idx*0xc2b2ae3d27d4eb4f),
	}, nil
}

// Conn is one fault-injected connection. Read and Write may be called
// concurrently (the HTTP server does); the RNG is mutex-guarded and sleeps
// happen outside the lock so a read stall cannot serialize writes.
type Conn struct {
	net.Conn
	cfg   *Config
	stats *Stats
	mu    sync.Mutex
	rng   *graph.RNG
}

// decide draws every probability for one op under the lock, returning the
// injected sleep (0 for none), whether to reset, and the fraction in (0,1)
// to truncate to (0 for whole buffer).
func (c *Conn) decide(truncP float64) (sleep time.Duration, reset bool, frac float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.cfg.Stall; p > 0 && c.rng.Float64() < p {
		sleep += c.cfg.StallDur
		c.stats.Stalls.Add(1)
	}
	if p := c.cfg.Latency; p > 0 && c.rng.Float64() < p {
		sleep += c.cfg.LatencyDur
		c.stats.Latencies.Add(1)
	}
	if p := c.cfg.RST; p > 0 && c.rng.Float64() < p {
		return sleep, true, 0
	}
	if truncP > 0 && c.rng.Float64() < truncP {
		// At least one byte so callers still progress; Float64 < 1 keeps the
		// fraction a strict prefix for len >= 2.
		frac = c.rng.Float64()
	}
	return sleep, false, frac
}

// reset force-closes the connection so the peer observes a hard RST rather
// than a graceful FIN (SetLinger(0) on TCP; plain Close otherwise).
func (c *Conn) reset() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Conn.Close()
	c.stats.Resets.Add(1)
}

func truncate(n int, frac float64) int {
	if n <= 1 || frac <= 0 {
		return n
	}
	k := 1 + int(frac*float64(n-1))
	if k >= n {
		k = n - 1
	}
	return k
}

func (c *Conn) Read(p []byte) (int, error) {
	sleep, reset, frac := c.decide(c.cfg.ShortRead)
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if reset {
		c.reset()
		return 0, ErrInjectedReset
	}
	if k := truncate(len(p), frac); k < len(p) {
		c.stats.ShortReads.Add(1)
		p = p[:k]
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	sleep, reset, frac := c.decide(c.cfg.PartialWrite)
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if reset {
		c.reset()
		return 0, ErrInjectedReset
	}
	if k := truncate(len(p), frac); k < len(p) {
		// Deliver a strict prefix, then cut the stream: the peer gets a
		// half-written payload it can never complete.
		c.stats.PartialWrites.Add(1)
		n, _ := c.write(p[:k])
		c.reset()
		return n, ErrInjectedReset
	}
	return c.write(p)
}

// write paces p at cfg.Throttle bytes/second in bounded chunks (plain write
// when unthrottled).
func (c *Conn) write(p []byte) (int, error) {
	bps := c.cfg.Throttle
	if bps <= 0 {
		return c.Conn.Write(p)
	}
	const chunk = 4 << 10
	var total int
	for len(p) > 0 {
		n := len(p)
		if n > chunk {
			n = chunk
		}
		w, err := c.Conn.Write(p[:n])
		total += w
		if err != nil {
			return total, err
		}
		p = p[n:]
		if len(p) > 0 {
			time.Sleep(time.Duration(float64(n) / float64(bps) * float64(time.Second)))
		}
	}
	return total, nil
}
