package pq

import (
	"math"
	"sync/atomic"

	"hdcps/internal/task"
)

// MultiQueue is the relaxed concurrent priority queue of Williams & Sanders
// ("Engineering MultiQueues") and Postnikova et al. ("Multi-Queues Can Be
// State-of-the-Art Priority Schedulers"): c·P sequential priority queues
// (shards), each guarded by a try-lock, with delete-min choosing the better
// of two randomly sampled shards (power-of-two-choices) by comparing their
// cached top priorities. The structure trades a *bounded expected* amount of
// priority inversion — with pick-2 the expected rank of a popped element is
// O(c·P), and the rank tail decays geometrically — for near-linear insert
// and delete-min scalability: no operation ever contends on more than one
// shard lock, and a failed try-lock simply re-randomizes instead of waiting.
//
// Two of the paper's engineering levers are built in:
//
//   - Stickiness: a handle reuses its chosen shard (for inserts) or shard
//     pair (for delete-min) for S consecutive operations before
//     re-randomizing, amortizing the random-number draws and keeping a
//     worker's traffic on cache-warm shards. Stickiness multiplies the
//     expected rank error by at most O(S) while cutting the per-op
//     coordination cost; a try-lock failure ends the sticky run early.
//   - Per-shard insertion/deletion batch buffers: each shard fronts its
//     binary heap with a small sorted deletion buffer (delete-min is "read
//     the front", refilled in bulk from the heap) and an unsorted insertion
//     buffer (inserts are an append, flushed into the heap BatchCap at a
//     time), so the amortized per-op heap work is O(log n / BatchCap).
//
// The shard invariant that keeps relaxation *bounded* rather than sloppy:
// a shard's deletion buffer always holds the shard's true minima (an insert
// below the buffer's back lands in the buffer, displacing its back when
// full), so the cached top is the shard's exact minimum and the only
// priority inversion is the cross-shard one pick-2 is designed to bound.
//
// Concurrency contract: the MultiQueue itself is shared; each worker
// operates through its own *MQHandle (Handle), which carries the RNG,
// stickiness state, and stats and implements pq.Queue. Handles are
// single-owner; the shards they touch are protected by the per-shard
// try-locks. Under contention Pop/Peek may spuriously report empty while
// another handle holds the last nonempty shard's lock — callers that need
// global emptiness (the native engine) must track element counts
// externally, which the engine's outstanding ledger already does.
type MultiQueue struct {
	shards []mqShard
	cfg    MultiQueueConfig
	seeds  atomic.Uint64
}

// MultiQueueConfig sizes a MultiQueue. The zero value gives the literature
// defaults: 4 queues per worker, stickiness 8, 16-entry batch buffers.
type MultiQueueConfig struct {
	// Workers is the number of handles expected to operate concurrently
	// (P). <=0 selects 1.
	Workers int
	// Factor is c in the c·P shard count (<=0 selects 4). The total shard
	// count is clamped to at least 2 so pick-2 always has two choices.
	Factor int
	// Stickiness is how many consecutive operations reuse the same shard
	// choice before re-randomizing (<=0 selects 8; 1 disables stickiness).
	Stickiness int
	// BatchCap sizes the per-shard insertion and deletion buffers
	// (<=0 selects 16).
	BatchCap int
	// Seed makes every handle's shard-choice sequence deterministic.
	Seed uint64
}

func (c MultiQueueConfig) withDefaults() MultiQueueConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Factor <= 0 {
		c.Factor = 4
	}
	if c.Stickiness <= 0 {
		c.Stickiness = 8
	}
	if c.BatchCap <= 0 {
		c.BatchCap = 16
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	return c
}

// mqEmptyTop is the cached-top sentinel for an empty shard. Real priorities
// never reach it: task.Task.Prio is workload data, and a task carrying
// MaxInt64 would compare equal, costing one wasted lock, not correctness.
const mqEmptyTop = math.MaxInt64

// mqShard is one sequential priority queue: a try-lock, the atomically
// readable cached top, and the buffered binary heap it guards. The hot
// fields lead and the struct is padded so neighboring shards don't share a
// cache line under concurrent lock traffic.
type mqShard struct {
	lock atomic.Uint32
	top  atomic.Int64 // dbuf front's Prio, or mqEmptyTop
	size atomic.Int64

	// dbuf[dpos:] is the sorted deletion buffer: the shard's true minima,
	// ascending. ibuf is the unsorted insertion buffer; heap the binary
	// min-heap backing store. Invariant while the shard is nonempty:
	// every task in ibuf and heap is >= the deletion buffer's back, so
	// dbuf[dpos] is the exact shard minimum and top mirrors it.
	dbuf []task.Task
	dpos int
	ibuf []task.Task
	heap []task.Task

	_ [3]int64 // pad shards apart
}

func (s *mqShard) tryLock() bool { return s.lock.CompareAndSwap(0, 1) }
func (s *mqShard) unlock()       { s.lock.Store(0) }

func (s *mqShard) updateTop() {
	if s.dpos < len(s.dbuf) {
		s.top.Store(s.dbuf[s.dpos].Prio)
	} else {
		s.top.Store(mqEmptyTop)
	}
}

// push inserts t. Caller holds the lock.
func (s *mqShard) push(t task.Task, batchCap int) {
	live := s.dbuf[s.dpos:]
	switch {
	case len(live) == 0:
		// Empty shard (the nonempty-implies-dbuf invariant makes an empty
		// dbuf mean an empty shard): seed the deletion buffer.
		s.dbuf = append(s.dbuf[:0], t)
		s.dpos = 0
	case t.Less(live[len(live)-1]):
		// Below the deletion buffer's back: this task belongs among the
		// shard minima. Sorted insert; displace the back if over capacity.
		// Compact the popped prefix away first when the backing array is
		// full, so interleaved push/pop traffic reuses the same storage
		// instead of growing the append tail forever.
		if len(s.dbuf) == cap(s.dbuf) && s.dpos > 0 {
			copy(s.dbuf, live)
			s.dbuf = s.dbuf[:len(live)]
			s.dpos = 0
			live = s.dbuf
		}
		lo, hi := 0, len(live)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if t.Less(live[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		s.dbuf = append(s.dbuf, task.Task{})
		live = s.dbuf[s.dpos:]
		copy(live[lo+1:], live[lo:])
		live[lo] = t
		if len(live) > 2*batchCap {
			ev := live[len(live)-1]
			s.dbuf = s.dbuf[:len(s.dbuf)-1]
			s.stage(ev, batchCap)
		}
	default:
		s.stage(t, batchCap)
	}
	s.size.Add(1)
	s.updateTop()
}

// stage appends t to the insertion buffer, flushing the buffer into the
// heap when it reaches capacity — one O(log n) sift per task only every
// batchCap inserts.
func (s *mqShard) stage(t task.Task, batchCap int) {
	s.ibuf = append(s.ibuf, t)
	if len(s.ibuf) >= batchCap {
		s.flushIbuf()
	}
}

func (s *mqShard) flushIbuf() {
	for _, t := range s.ibuf {
		s.heap = append(s.heap, t)
		siftUpTasks(s.heap)
	}
	s.ibuf = s.ibuf[:0]
}

// pop removes and returns the shard minimum. Caller holds the lock and
// guarantees the shard is nonempty.
func (s *mqShard) pop(batchCap int) task.Task {
	t := s.dbuf[s.dpos]
	s.dpos++
	if s.dpos == len(s.dbuf) {
		s.refill(batchCap)
	}
	s.size.Add(-1)
	s.updateTop()
	return t
}

// refill repopulates an exhausted deletion buffer with the batchCap smallest
// remaining tasks: the insertion buffer is flushed into the heap first, so
// the heap's ascending pops restore the sorted-minima invariant.
func (s *mqShard) refill(batchCap int) {
	s.dbuf = s.dbuf[:0]
	s.dpos = 0
	if len(s.ibuf) > 0 {
		s.flushIbuf()
	}
	for i := 0; i < batchCap && len(s.heap) > 0; i++ {
		s.dbuf = append(s.dbuf, s.heap[0])
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		if last > 1 {
			siftDownTasks(s.heap)
		}
	}
}

// NewMultiQueue builds the shared shard array. Handles are created per
// worker with Handle.
func NewMultiQueue(cfg MultiQueueConfig) *MultiQueue {
	cfg = cfg.withDefaults()
	n := cfg.Factor * cfg.Workers
	if n < 2 {
		n = 2
	}
	m := &MultiQueue{shards: make([]mqShard, n), cfg: cfg}
	for i := range m.shards {
		m.shards[i].top.Store(mqEmptyTop)
	}
	return m
}

// Shards returns the shard count (c·P).
func (m *MultiQueue) Shards() int { return len(m.shards) }

// Len sums the shard sizes. The total is a consistent lower/upper bound
// only at quiescence; mid-flight it may miss or double-count in-transit
// tasks by at most the number of concurrent operations.
func (m *MultiQueue) Len() int {
	var n int64
	for i := range m.shards {
		n += m.shards[i].size.Load()
	}
	return int(n)
}

// WitnessMin returns the sharded min witness: the minimum cached top across
// all shards (mqEmptyTop when everything is empty). One atomic load per
// shard, no locks — the cheap global-minimum estimate the rank-error
// instrumentation compares popped priorities against.
func (m *MultiQueue) WitnessMin() int64 {
	min := int64(mqEmptyTop)
	for i := range m.shards {
		if t := m.shards[i].top.Load(); t < min {
			min = t
		}
	}
	return min
}

// RankEstimate reports how many shards currently hold a task strictly
// better than prio, and the witness minimum. Each counted shard contributes
// at least one better-ranked task, so the count is a cheap lower bound on
// the popped task's true rank error (0 means no observable inversion).
func (m *MultiQueue) RankEstimate(prio int64) (rank int, min int64) {
	min = mqEmptyTop
	for i := range m.shards {
		t := m.shards[i].top.Load()
		if t < prio {
			rank++
		}
		if t < min {
			min = t
		}
	}
	return rank, min
}

// MQStats counts one handle's coordination behavior.
type MQStats struct {
	Pushes    int64 // Push calls
	Pops      int64 // successful Pop calls
	LockFails int64 // try-lock failures that forced a shard re-pick
	Scans     int64 // full-shard scans after pick-2 found both shards empty
}

// Handle returns a new single-owner view of the MultiQueue, seeded
// deterministically from the queue's seed and the handle creation order.
// Each concurrent worker must use its own handle.
func (m *MultiQueue) Handle() *MQHandle {
	n := m.seeds.Add(1)
	return &MQHandle{
		mq:  m,
		rng: (m.cfg.Seed + n*0x9e3779b97f4a7c15) | 1,
	}
}

// MQHandle is one worker's port into a shared MultiQueue: it carries the
// shard-choice RNG, the stickiness state, and per-handle stats, and
// implements pq.Queue. Single-owner, like every pq.Queue.
type MQHandle struct {
	mq  *MultiQueue
	rng uint64

	pushShard int
	pushLeft  int
	popA      int
	popB      int
	popLeft   int

	stats MQStats
}

// Queue returns the shared MultiQueue behind the handle.
func (h *MQHandle) Queue() *MultiQueue { return h.mq }

// Stats returns the handle's coordination counters so far.
func (h *MQHandle) Stats() MQStats { return h.stats }

// next is xorshift64*: cheap, and deterministic per handle.
func (h *MQHandle) next() uint64 {
	x := h.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	h.rng = x
	return x * 0x2545f4914f6cdd1d
}

func (h *MQHandle) randShard() int {
	return int(h.next() % uint64(len(h.mq.shards)))
}

// Push inserts t into the sticky shard, re-randomizing when the sticky run
// expires or the shard's lock is contended.
func (h *MQHandle) Push(t task.Task) {
	h.stats.Pushes++
	for {
		if h.pushLeft <= 0 {
			h.pushShard = h.randShard()
			h.pushLeft = h.mq.cfg.Stickiness
		}
		s := &h.mq.shards[h.pushShard]
		if s.tryLock() {
			s.push(t, h.mq.cfg.BatchCap)
			s.unlock()
			h.pushLeft--
			return
		}
		h.stats.LockFails++
		h.pushLeft = 0
	}
}

// Pop removes the better of two sampled shards' minima (pick-2 over the
// cached tops). When both sampled shards are empty it degrades to a full
// scan, so a sequential caller never gets a false empty; under concurrent
// lock contention Pop may spuriously report empty (see the type comment).
func (h *MQHandle) Pop() (task.Task, bool) {
	for attempts := 0; attempts < 2*len(h.mq.shards); attempts++ {
		s, ok := h.pickPop()
		if !ok {
			break // both sampled shards empty: scan
		}
		if !s.tryLock() {
			h.stats.LockFails++
			h.popLeft = 0
			continue
		}
		if s.dpos == len(s.dbuf) {
			// Emptied between the top read and the lock.
			s.unlock()
			h.popLeft = 0
			continue
		}
		t := s.pop(h.mq.cfg.BatchCap)
		s.unlock()
		h.popLeft--
		h.stats.Pops++
		return t, true
	}
	return h.scanPop()
}

// pickPop chooses the shard to pop under the sticky pick-2 policy. False
// means both sampled shards look empty.
func (h *MQHandle) pickPop() (*mqShard, bool) {
	if h.popLeft <= 0 {
		h.popA = h.randShard()
		h.popB = h.randShard()
		h.popLeft = h.mq.cfg.Stickiness
	}
	ta := h.mq.shards[h.popA].top.Load()
	tb := h.mq.shards[h.popB].top.Load()
	if ta == mqEmptyTop && tb == mqEmptyTop {
		h.popLeft = 0
		return nil, false
	}
	if tb < ta {
		return &h.mq.shards[h.popB], true
	}
	return &h.mq.shards[h.popA], true
}

// scanPop walks every shard from a random offset and pops the first
// nonempty one it can lock. Reaching it means pick-2 saw only empty shards,
// so this is the slow path of an almost-drained queue.
func (h *MQHandle) scanPop() (task.Task, bool) {
	h.stats.Scans++
	n := len(h.mq.shards)
	start := h.randShard()
	for i := 0; i < n; i++ {
		s := &h.mq.shards[(start+i)%n]
		if s.top.Load() == mqEmptyTop {
			continue
		}
		if !s.tryLock() {
			h.stats.LockFails++
			continue
		}
		if s.dpos == len(s.dbuf) {
			s.unlock()
			continue
		}
		t := s.pop(h.mq.cfg.BatchCap)
		s.unlock()
		h.stats.Pops++
		return t, true
	}
	return task.Task{}, false
}

// Peek returns the better sampled shard's minimum without removing it —
// approximate by construction (another shard may hold a better task), and
// subject to the same spurious-empty caveat as Pop.
func (h *MQHandle) Peek() (task.Task, bool) {
	for attempts := 0; attempts < 2*len(h.mq.shards); attempts++ {
		s, ok := h.pickPop()
		if !ok {
			break
		}
		if !s.tryLock() {
			h.stats.LockFails++
			h.popLeft = 0
			continue
		}
		if s.dpos == len(s.dbuf) {
			s.unlock()
			h.popLeft = 0
			continue
		}
		t := s.dbuf[s.dpos]
		s.unlock()
		return t, true
	}
	n := len(h.mq.shards)
	start := h.randShard()
	for i := 0; i < n; i++ {
		s := &h.mq.shards[(start+i)%n]
		if s.top.Load() == mqEmptyTop || !s.tryLock() {
			continue
		}
		if s.dpos == len(s.dbuf) {
			s.unlock()
			continue
		}
		t := s.dbuf[s.dpos]
		s.unlock()
		return t, true
	}
	return task.Task{}, false
}

// Len reports the shared queue's total size (see MultiQueue.Len).
func (h *MQHandle) Len() int { return h.mq.Len() }
