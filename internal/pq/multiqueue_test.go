package pq

import (
	"math/rand"
	"sync"
	"testing"

	"hdcps/internal/task"
)

// mqRef is an exact-rank oracle: a plain multiset of resident tasks.
// rankOf counts tasks strictly better than t (t's true rank error when t is
// popped), and remove asserts multiset membership — conservation.
type mqRef struct {
	items []task.Task
}

func (r *mqRef) push(t task.Task) { r.items = append(r.items, t) }

func (r *mqRef) rankOf(t task.Task) int {
	n := 0
	for _, o := range r.items {
		if o.Less(t) {
			n++
		}
	}
	return n
}

func (r *mqRef) remove(tb *testing.T, t task.Task) {
	tb.Helper()
	for i, o := range r.items {
		if o == t {
			r.items[i] = r.items[len(r.items)-1]
			r.items = r.items[:len(r.items)-1]
			return
		}
	}
	tb.Fatalf("popped task %+v was never pushed (or popped twice)", t)
}

// TestMultiQueueRankBound is the tentpole property test: under a seeded
// adversarial rewind-storm stream (every wave pushes strictly below
// everything already resident — the worst case for any structure exploiting
// monotonicity), the pick-2 pop sequence must respect the theoretical
// expected-rank bound. With c·P shards and stickiness S the expected rank
// error of a pop is O(S · c·P); we assert the empirical mean stays under
// 2·S·shards and the max under 32·S·shards — generous constants, but tight
// enough that a broken pick-2 (popping a random shard's max, ignoring the
// cached tops, buffer minima leaking past the witness) blows through them
// immediately.
func TestMultiQueueRankBound(t *testing.T) {
	for _, tc := range []struct {
		name       string
		stickiness int
	}{
		{"sticky-1", 1},
		{"sticky-8", 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := MultiQueueConfig{Workers: 2, Factor: 4, Stickiness: tc.stickiness, Seed: 99}
			m := NewMultiQueue(cfg)
			h := m.Handle()
			ref := &mqRef{}
			rng := rand.New(rand.NewSource(7))

			var pops, rankSum, rankMax int
			pop := func() {
				tk, ok := h.Pop()
				if !ok {
					t.Fatal("sequential Pop reported empty on a nonempty queue")
				}
				r := ref.rankOf(tk)
				ref.remove(t, tk)
				pops++
				rankSum += r
				if r > rankMax {
					rankMax = r
				}
			}

			// Rewind storm: wave w pushes priorities in (-(w+1)·1000, -w·1000]
			// — strictly below every task earlier waves left behind — with
			// pops interleaved so the shards churn through their buffers.
			node := uint32(0)
			for w := 0; w < 48; w++ {
				base := int64(-w) * 1000
				for i := 0; i < 256; i++ {
					tk := task.Task{Node: node, Prio: base - int64(rng.Intn(999))}
					h.Push(tk)
					ref.push(tk)
					node++
					if i%2 == 1 {
						pop() // drain half the wave while the storm rages
					}
				}
			}
			for len(ref.items) > 0 {
				pop()
			}
			if tk, ok := h.Pop(); ok {
				t.Fatalf("queue still held %+v after the oracle drained", tk)
			}

			shards := m.Shards()
			mean := float64(rankSum) / float64(pops)
			meanBound := 2.0 * float64(tc.stickiness*shards)
			maxBound := 32 * tc.stickiness * shards
			t.Logf("%d pops over %d shards: mean rank %.2f (bound %.0f), max %d (bound %d)",
				pops, shards, mean, meanBound, rankMax, maxBound)
			if mean > meanBound {
				t.Errorf("mean rank error %.2f exceeds the expected-rank bound %.0f", mean, meanBound)
			}
			if rankMax > maxBound {
				t.Errorf("max rank error %d exceeds the tail bound %d", rankMax, maxBound)
			}
		})
	}
}

// TestMultiQueueConservationSequential interleaves pushes and pops from a
// fuzzed schedule and requires exact conservation: every pop returns a task
// that is resident in the oracle multiset, and draining empties both.
func TestMultiQueueConservationSequential(t *testing.T) {
	cfgs := map[string]MultiQueueConfig{
		"default":    {},
		"one-shard":  {Workers: 1, Factor: 1}, // clamped to 2 shards
		"tiny-batch": {Workers: 1, Factor: 2, BatchCap: 2},
		"sticky-big": {Workers: 4, Factor: 2, Stickiness: 64},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			cfg.Seed = 5
			m := NewMultiQueue(cfg)
			h := m.Handle()
			ref := &mqRef{}
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 20000; i++ {
				if len(ref.items) == 0 || rng.Intn(3) != 0 {
					tk := task.Task{Node: uint32(i), Prio: int64(rng.Intn(512) - 256)}
					h.Push(tk)
					ref.push(tk)
				} else {
					tk, ok := h.Pop()
					if !ok {
						t.Fatal("Pop reported empty with tasks resident")
					}
					ref.remove(t, tk)
				}
				if h.Len() != len(ref.items) {
					t.Fatalf("Len = %d, oracle %d", h.Len(), len(ref.items))
				}
			}
			for len(ref.items) > 0 {
				tk, ok := h.Pop()
				if !ok {
					t.Fatal("drain Pop reported empty with tasks resident")
				}
				ref.remove(t, tk)
			}
			if m.Len() != 0 {
				t.Fatalf("Len = %d after full drain", m.Len())
			}
			if min := m.WitnessMin(); min != mqEmptyTop {
				t.Fatalf("WitnessMin = %d on an empty queue", min)
			}
		})
	}
}

// TestMultiQueueHammer is the -race concurrent push/pop soak mirroring
// twolevel's engine-level coverage: P goroutines share one MultiQueue
// through private handles, each pushing a disjoint node range and popping
// whatever pick-2 hands it. Afterwards every pushed node must have been
// popped exactly once — no loss, no duplication — across the shard locks,
// cached tops, and batch buffers.
func TestMultiQueueHammer(t *testing.T) {
	const (
		workers   = 4
		perWorker = 20000
	)
	m := NewMultiQueue(MultiQueueConfig{Workers: workers, Seed: 17})
	var seen [workers * perWorker]int32
	var wg sync.WaitGroup
	var popped [workers]int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := m.Handle()
			rng := rand.New(rand.NewSource(int64(w) + 101))
			base := w * perWorker
			pushed := 0
			for pushed < perWorker {
				// Bursty, partly descending priorities: the adversarial shape.
				burst := 1 + rng.Intn(64)
				for i := 0; i < burst && pushed < perWorker; i++ {
					h.Push(task.Task{
						Node: uint32(base + pushed),
						Prio: int64(rng.Intn(4096)) - int64(pushed),
					})
					pushed++
				}
				for i := 0; i < burst/2; i++ {
					if tk, ok := h.Pop(); ok {
						seen[tk.Node]++
						popped[w]++
					}
				}
			}
			// Drain cooperatively until the whole queue is empty. A spurious
			// empty from lock contention just loops again; the loop exits
			// only when the shared size says everything was claimed.
			for m.Len() > 0 {
				if tk, ok := h.Pop(); ok {
					seen[tk.Node]++
					popped[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for w := range popped {
		total += popped[w]
	}
	if total != workers*perWorker {
		t.Fatalf("popped %d tasks, pushed %d", total, workers*perWorker)
	}
	for n, c := range seen {
		if c != 1 {
			t.Fatalf("node %d popped %d times", n, c)
		}
	}
}

// TestMultiQueueHandleBasics pins the pq.Queue surface of a handle: empty
// behavior, Peek/Pop agreement on a quiet queue, and the Queue() accessor.
func TestMultiQueueHandleBasics(t *testing.T) {
	m := NewMultiQueue(MultiQueueConfig{Workers: 1, Seed: 3})
	h := m.Handle()
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on an empty queue reported a task")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on an empty queue reported a task")
	}
	h.Push(task.Task{Node: 1, Prio: 10})
	h.Push(task.Task{Node: 2, Prio: 5})
	if got, ok := h.Peek(); !ok || got.Prio > 10 {
		t.Fatalf("Peek = %+v/%v, want a resident task", got, ok)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	if h.Queue() != m {
		t.Fatal("Queue() does not return the shared MultiQueue")
	}
	a, _ := h.Pop()
	b, _ := h.Pop()
	if a.Node == b.Node {
		t.Fatalf("duplicate pop: %+v then %+v", a, b)
	}
	if st := h.Stats(); st.Pushes != 2 || st.Pops != 2 {
		t.Fatalf("stats = %+v, want 2 pushes / 2 pops", st)
	}
}

// TestMultiQueueRankEstimate pins the sharded min witness: after pushing a
// known spread, RankEstimate of a large priority must count every nonempty
// shard and WitnessMin must be the global minimum.
func TestMultiQueueRankEstimate(t *testing.T) {
	m := NewMultiQueue(MultiQueueConfig{Workers: 1, Factor: 4, Seed: 9})
	h := m.Handle()
	for i := 0; i < 256; i++ {
		h.Push(task.Task{Node: uint32(i), Prio: int64(i)})
	}
	if min := m.WitnessMin(); min != 0 {
		t.Fatalf("WitnessMin = %d, want 0", min)
	}
	rank, min := m.RankEstimate(1 << 30)
	if min != 0 {
		t.Fatalf("RankEstimate min = %d, want 0", min)
	}
	nonempty := 0
	for i := range m.shards {
		if m.shards[i].size.Load() > 0 {
			nonempty++
		}
	}
	if rank != nonempty {
		t.Fatalf("RankEstimate = %d, want %d nonempty shards", rank, nonempty)
	}
	if r, _ := m.RankEstimate(-1); r != 0 {
		t.Fatalf("RankEstimate below the global min = %d, want 0", r)
	}
}
