// Package pq provides the priority-queue substrates used by the schedulers:
// a binary heap (the per-core software PQ of RELD and HD-CPS), a bucket
// queue (the bag-map index of OBIM/PMOD and sequential delta-stepping), a
// pairing heap (meldable alternative, used by ablation benches), and a small
// bounded heap modeling the paper's hardware priority queue (hPQ).
//
// All queues are min-queues over task.Task: Pop returns the task with the
// numerically smallest Prio. None of them is safe for concurrent use; the
// schedulers add their own synchronization, exactly as the paper's software
// designs do.
package pq

import "hdcps/internal/task"

// Queue is the common interface of all priority-queue implementations.
type Queue interface {
	// Push inserts a task.
	Push(t task.Task)
	// Pop removes and returns the highest-priority (minimum Prio) task.
	// The second result is false if the queue is empty.
	Pop() (task.Task, bool)
	// Peek returns the highest-priority task without removing it.
	Peek() (task.Task, bool)
	// Len returns the number of queued tasks.
	Len() int
}
