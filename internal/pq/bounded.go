package pq

import "hdcps/internal/task"

// Bounded is a fixed-capacity min-heap modeling the paper's per-core
// hardware priority queue (hPQ, §III-D): a small associative structure (48
// entries by default) with constant-latency access. When full, pushing a new
// task evicts the *lowest-priority* (maximum Prio) resident so the hardware
// always keeps the best tasks; the evicted task spills to the software PQ.
//
// Eviction scans the heap's leaf half linearly — realistic for a hardware
// CAM of a few dozen entries and O(capacity) in the worst case, which the
// simulator charges as a single queue access.
type Bounded struct {
	items []task.Task
	cap   int
}

// NewBounded returns an empty bounded heap with the given capacity.
// A capacity of 0 models a machine without the hardware queue: every Push
// immediately "evicts" its argument.
func NewBounded(capacity int) *Bounded {
	if capacity < 0 {
		capacity = 0
	}
	return &Bounded{items: make([]task.Task, 0, capacity), cap: capacity}
}

// Cap returns the fixed capacity.
func (b *Bounded) Cap() int { return b.cap }

// Len returns the number of resident tasks.
func (b *Bounded) Len() int { return len(b.items) }

// Full reports whether the queue is at capacity.
func (b *Bounded) Full() bool { return len(b.items) >= b.cap }

// Push inserts t if there is room, or if t beats the current worst resident.
// It returns the task displaced to software (the zero Task and false when
// everything fit).
func (b *Bounded) Push(t task.Task) (evicted task.Task, didEvict bool) {
	if b.cap == 0 {
		return t, true
	}
	if len(b.items) < b.cap {
		b.items = append(b.items, t)
		b.siftUp(len(b.items) - 1)
		return task.Task{}, false
	}
	// Full: find the worst resident. In a min-heap the maximum lives among
	// the leaves (the last half of the array).
	worst := len(b.items) / 2
	for i := worst + 1; i < len(b.items); i++ {
		if b.items[worst].Less(b.items[i]) {
			worst = i
		}
	}
	if !t.Less(b.items[worst]) {
		return t, true // incoming task is the worst; spill it directly
	}
	evicted = b.items[worst]
	b.items[worst] = t
	b.siftUp(worst)
	return evicted, true
}

// Pop removes and returns the minimum task.
func (b *Bounded) Pop() (task.Task, bool) {
	if len(b.items) == 0 {
		return task.Task{}, false
	}
	top := b.items[0]
	last := len(b.items) - 1
	b.items[0] = b.items[last]
	b.items = b.items[:last]
	if last > 0 {
		b.siftDown(0)
	}
	return top, true
}

// Peek returns the minimum task without removing it.
func (b *Bounded) Peek() (task.Task, bool) {
	if len(b.items) == 0 {
		return task.Task{}, false
	}
	return b.items[0], true
}

func (b *Bounded) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !b.items[i].Less(b.items[parent]) {
			return
		}
		b.items[i], b.items[parent] = b.items[parent], b.items[i]
		i = parent
	}
}

func (b *Bounded) siftDown(i int) {
	n := len(b.items)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && b.items[l].Less(b.items[least]) {
			least = l
		}
		if r < n && b.items[r].Less(b.items[least]) {
			least = r
		}
		if least == i {
			return
		}
		b.items[i], b.items[least] = b.items[least], b.items[i]
		i = least
	}
}
