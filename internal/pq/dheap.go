package pq

import "hdcps/internal/task"

// DHeap is an array-backed d-ary min-heap. Wider nodes trade more sibling
// comparisons per level for a shallower tree and fewer cache-line misses on
// the sift-down path; Wimmer et al. ("Data Structures for Task-based
// Priority Scheduling") and the MultiQueue line of work both land on d=4 as
// the sweet spot for task-sized payloads, and that is the native runtime's
// default private queue. The simulator keeps the binary heap so its charged
// O(log2 n) cost model is unchanged.
//
// With d=4 the four children of node i occupy indices 4i+1..4i+4 — adjacent
// elements that usually share one or two cache lines — so a sift-down level
// costs one memory fetch instead of two scattered ones.
type DHeap struct {
	arity int
	items []task.Task
}

// NewDHeap returns an empty d-ary heap with the given arity (clamped to at
// least 2) and initial capacity.
func NewDHeap(arity, capacity int) *DHeap {
	if arity < 2 {
		arity = 2
	}
	return &DHeap{arity: arity, items: make([]task.Task, 0, capacity)}
}

// NewQuadHeap returns an empty 4-ary heap, the native runtime's default.
func NewQuadHeap(capacity int) *DHeap { return NewDHeap(4, capacity) }

// Arity returns the heap's branching factor.
func (h *DHeap) Arity() int { return h.arity }

// Len returns the number of queued tasks.
func (h *DHeap) Len() int { return len(h.items) }

// Push inserts t.
func (h *DHeap) Push(t task.Task) {
	h.items = append(h.items, t)
	h.siftUp(len(h.items) - 1)
}

// Pop removes and returns the minimum task.
func (h *DHeap) Pop() (task.Task, bool) {
	if len(h.items) == 0 {
		return task.Task{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top, true
}

// Peek returns the minimum task without removing it.
func (h *DHeap) Peek() (task.Task, bool) {
	if len(h.items) == 0 {
		return task.Task{}, false
	}
	return h.items[0], true
}

func (h *DHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / h.arity
		if !h.items[i].Less(h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *DHeap) siftDown(i int) {
	n := len(h.items)
	d := h.arity
	for {
		first := d*i + 1
		if first >= n {
			return
		}
		least := i
		end := first + d
		if end > n {
			end = n
		}
		for c := first; c < end; c++ {
			if h.items[c].Less(h.items[least]) {
				least = c
			}
		}
		if least == i {
			return
		}
		h.items[i], h.items[least] = h.items[least], h.items[i]
		i = least
	}
}
