package pq

import "hdcps/internal/task"

// PairingHeap is a meldable min-heap with O(1) amortized Push and Meld and
// O(log n) amortized Pop. The ablation benches use it to quantify how much
// of HD-CPS's gain is independent of the underlying heap flavor.
type PairingHeap struct {
	root *pairNode
	size int
}

type pairNode struct {
	t       task.Task
	child   *pairNode // leftmost child
	sibling *pairNode // next sibling
}

// NewPairingHeap returns an empty pairing heap.
func NewPairingHeap() *PairingHeap { return &PairingHeap{} }

// Len returns the number of queued tasks.
func (h *PairingHeap) Len() int { return h.size }

// Push inserts t.
func (h *PairingHeap) Push(t task.Task) {
	h.root = merge(h.root, &pairNode{t: t})
	h.size++
}

// Peek returns the minimum task without removing it.
func (h *PairingHeap) Peek() (task.Task, bool) {
	if h.root == nil {
		return task.Task{}, false
	}
	return h.root.t, true
}

// Pop removes and returns the minimum task.
func (h *PairingHeap) Pop() (task.Task, bool) {
	if h.root == nil {
		return task.Task{}, false
	}
	top := h.root.t
	h.root = mergePairs(h.root.child)
	h.size--
	return top, true
}

// Meld merges other into h, leaving other empty. This is the operation that
// makes pairing heaps attractive for bag hand-off: an entire remote bag can
// be adopted in O(1).
func (h *PairingHeap) Meld(other *PairingHeap) {
	if other == nil || other.root == nil {
		return
	}
	h.root = merge(h.root, other.root)
	h.size += other.size
	other.root, other.size = nil, 0
}

func merge(a, b *pairNode) *pairNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.t.Less(a.t) {
		a, b = b, a
	}
	b.sibling = a.child
	a.child = b
	return a
}

// mergePairs combines a sibling list using the standard two-pass pairing.
// It is iterative to avoid deep recursion on adversarial shapes.
func mergePairs(n *pairNode) *pairNode {
	if n == nil {
		return nil
	}
	// First pass: merge siblings in pairs.
	var pairs []*pairNode
	for n != nil {
		a := n
		b := n.sibling
		n = nil
		if b != nil {
			n = b.sibling
			b.sibling = nil
		}
		a.sibling = nil
		pairs = append(pairs, merge(a, b))
	}
	// Second pass: fold right to left.
	root := pairs[len(pairs)-1]
	for i := len(pairs) - 2; i >= 0; i-- {
		root = merge(pairs[i], root)
	}
	return root
}
