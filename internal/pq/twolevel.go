package pq

import (
	"math/bits"

	"hdcps/internal/task"
)

// TwoLevel is the paper-faithful per-worker queue shape (§III-D): a small
// fixed-capacity sorted **hot buffer** modeling the 48-entry hPQ — Pop is
// O(1) off the front, Push is a binary search plus a memmove of at most
// HotCap entries, all within one or two cache lines' worth of tasks — in
// front of a **monotone bucket cold store** keyed on quantized priority
// (Prio >> QuantShift), which absorbs spills in O(1) amortized instead of
// the O(log n) sifts a comparison heap pays.
//
// The bucket store is a power-of-two ring of per-priority mini-heaps with an
// occupancy bitmap and a scan cursor. It is built for the monotone traffic
// integer-priority graph workloads emit (pops never decrease, pushes land at
// or above the cursor): a push below the cursor simply rewinds it — cheap,
// but counted — and a workload that keeps doing that (PageRank's residual
// priorities, coloring's static negative degrees) trips the runtime
// monotonicity detector, which migrates the cold store into the existing
// d-ary heap once and for all (Stats.Fallbacks). The hot buffer keeps
// serving either way.
//
// Ordering is EXACT, not relaxed: every bucket is itself a min-heap under
// task.Less and Pop compares the hot front against the cold minimum, so the
// pop sequence equals a global heap's regardless of quantization, spills, or
// fallback. That is what lets the simulator charge its hPQ cost model
// against this same structure with bit-identical task ordering, and what
// keeps every workload Verify() exact under the native runtime.
//
// Like every pq.Queue, a TwoLevel is single-owner: no internal locking.
type TwoLevel struct {
	// hot[head:] is the resident window, ascending in task.Less order.
	hot   []task.Task
	head  int
	cap   int
	shift uint
	arity int

	cold coldBuckets
	// heap is non-nil once the monotonicity detector has fired: the cold
	// store's contents migrate here and all later spills follow.
	heap *DHeap

	rewindScore int
	size        int
	stats       TwoLevelStats
}

// TwoLevelConfig sizes a TwoLevel. The zero value gives the paper's shape:
// a 48-entry hot buffer, no priority quantization, a cold ring growing to
// 64Ki buckets, and a 4-ary fallback heap.
type TwoLevelConfig struct {
	// HotCap is the hot-buffer capacity (<=0 selects 48, §III-D's hPQ size).
	HotCap int
	// QuantShift right-shifts priorities into bucket keys; 0 keeps one
	// bucket per distinct priority. Ordering stays exact at any shift —
	// quantization only trades bucket count against per-bucket heap depth.
	QuantShift uint
	// MaxBuckets caps the cold ring's growth (rounded up to a power of two,
	// minimum 64; <=0 selects 1<<16). A resident priority span that cannot
	// fit triggers the heap fallback instead of further growth.
	MaxBuckets int
	// Arity is the fallback d-ary heap's branching factor (<=0 selects 4).
	Arity int
}

// TwoLevelStats are the queue's behavior counters, surfaced through the
// runtime's obs layer (hot_spills, queue_fallbacks).
type TwoLevelStats struct {
	Spills    int64 // tasks demoted or bounced from the hot buffer to cold
	Refills   int64 // bulk cold→hot promotions when the hot buffer ran dry
	Rewinds   int64 // cold pushes below the scan cursor (non-monotone events)
	Fallbacks int64 // monotonicity-detector trips (0 or 1 per queue)
}

// Rewind-storm detector: a leaky-bucket score over the cold-push stream.
// Every rewind adds rewindPenalty, every in-order push drains rewindForgive,
// and the cold store migrates to the comparison heap when the score reaches
// rewindStormScore. A sustained rewind rate above 1 in (1+rewindPenalty)
// trips it; transient turbulence (SSSP/BFS relaxation fronts early in a run)
// decays away instead of accumulating toward a trip the way a cumulative
// ratio would.
const (
	rewindPenalty    = 3
	rewindForgive    = 1
	rewindStormScore = 96
)

// twoLevelStartW is the cold ring's initial bucket count.
const twoLevelStartW = 256

// Bucket-storage slab parameters: fresh mini-heaps start with
// bucketSeedCap entries of capacity carved from a bucketSlabLen-entry
// arena chunk. A drained bucket that grew to bucketBigCap or beyond moves
// to the freelist (up to bucketFreeMax entries) so the capacity follows
// the deep frontier — BFS drains one level's bucket as the next fills —
// while smaller ones stay parked at their ring index for the next
// priority that wraps onto it.
const (
	bucketSeedCap = 8
	bucketSlabLen = 1024
	bucketBigCap  = 16
	bucketFreeMax = 256
)

// NewTwoLevel returns an empty two-level queue.
func NewTwoLevel(cfg TwoLevelConfig) *TwoLevel {
	if cfg.HotCap <= 0 {
		cfg.HotCap = 48
	}
	if cfg.MaxBuckets <= 0 {
		cfg.MaxBuckets = 1 << 16
	}
	maxW := 64
	for maxW < cfg.MaxBuckets {
		maxW *= 2
	}
	if cfg.Arity <= 0 {
		cfg.Arity = 4
	}
	q := &TwoLevel{
		hot:   make([]task.Task, 0, 2*cfg.HotCap),
		cap:   cfg.HotCap,
		shift: cfg.QuantShift,
		arity: cfg.Arity,
	}
	w := twoLevelStartW
	if w > maxW {
		w = maxW
	}
	q.cold.init(w, maxW)
	return q
}

// Len returns the number of queued tasks across both levels.
func (q *TwoLevel) Len() int { return q.size }

// HotLen returns the number of tasks resident in the hot buffer.
func (q *TwoLevel) HotLen() int { return len(q.hot) - q.head }

// ColdLen returns the number of tasks in the cold store (bucket ring or
// fallback heap) — the "software PQ" side of the simulator's cost model.
func (q *TwoLevel) ColdLen() int {
	n := q.cold.size
	if q.heap != nil {
		n += q.heap.Len()
	}
	return n
}

// Cap returns the hot buffer's fixed capacity.
func (q *TwoLevel) Cap() int { return q.cap }

// Stats returns the queue's behavior counters so far.
func (q *TwoLevel) Stats() TwoLevelStats { return q.stats }

// Push inserts t.
func (q *TwoLevel) Push(t task.Task) { q.PushEx(t) }

// PushEx inserts t and reports whether the insert spilled a task into the
// cold store (t itself, or the hot resident it displaced) — the hPQ-evict
// signal the simulator's §III-D composition observes.
func (q *TwoLevel) PushEx(t task.Task) (spilled bool) {
	q.size++
	if len(q.hot)-q.head < q.cap {
		q.hotInsert(t)
		return false
	}
	// Hot buffer full: keep the best HotCap tasks resident, exactly like
	// the hardware queue — a task beating the current worst displaces it,
	// anything else spills directly.
	q.stats.Spills++
	last := len(q.hot) - 1
	if t.Less(q.hot[last]) {
		ev := q.hot[last]
		q.hot = q.hot[:last]
		q.hotInsert(t)
		q.coldPush(ev)
		return true
	}
	q.coldPush(t)
	return true
}

// PushCold inserts t directly into the cold store, bypassing the hot
// buffer — the simulator's seeding and RELD remote-insert paths, which the
// paper routes around the hPQ.
func (q *TwoLevel) PushCold(t task.Task) {
	q.size++
	q.coldPush(t)
}

// Pop removes and returns the global minimum. An empty hot buffer refills
// in bulk from the cold store (up to HotCap tasks, arriving sorted), so
// steady-state pops are O(1) loads off the hot front.
func (q *TwoLevel) Pop() (task.Task, bool) {
	if q.size == 0 {
		return task.Task{}, false
	}
	if q.head == len(q.hot) {
		q.refill()
	}
	hf := q.hot[q.head]
	if c, ok := q.coldPeek(); ok && c.Less(hf) {
		q.size--
		return q.coldPop(), true
	}
	q.head++
	if q.head == len(q.hot) {
		q.hot = q.hot[:0]
		q.head = 0
	}
	q.size--
	return hf, true
}

// PopEx pops the global minimum and reports whether the hot buffer served
// it. Unlike Pop it never promotes cold tasks into the hot buffer, so each
// task's hot/cold provenance — what the simulator charges hardware vs
// software cycles for — matches the paper's hPQ+spill composition exactly.
func (q *TwoLevel) PopEx() (t task.Task, fromHot, ok bool) {
	if q.size == 0 {
		return task.Task{}, false, false
	}
	if q.head < len(q.hot) {
		hf := q.hot[q.head]
		if c, cok := q.coldPeek(); !cok || hf.Less(c) {
			q.head++
			if q.head == len(q.hot) {
				q.hot = q.hot[:0]
				q.head = 0
			}
			q.size--
			return hf, true, true
		}
	}
	q.size--
	return q.coldPop(), false, true
}

// Peek returns the global minimum without removing it.
func (q *TwoLevel) Peek() (task.Task, bool) {
	if q.size == 0 {
		return task.Task{}, false
	}
	c, cok := q.coldPeek()
	if q.head < len(q.hot) {
		hf := q.hot[q.head]
		if !cok || hf.Less(c) {
			return hf, true
		}
	}
	return c, cok
}

// hotInsert places t into the sorted hot window. Caller guarantees the
// window is below capacity. The backing array is twice HotCap, so the
// pop-front/push-back traffic graph workloads emit — head advances, new
// children land at the end — runs as plain appends with one bulk
// compaction per HotCap-ish inserts, instead of a per-insert memmove the
// moment the append slack runs out. Middle inserts shift whichever side
// is cheaper: the prefix into the head gap left by pops, the suffix into
// the append slack.
func (q *TwoLevel) hotInsert(t task.Task) {
	live := q.hot[q.head:]
	n := len(live)
	if n == 0 || !t.Less(live[n-1]) {
		// End insert: the hot case for monotone priority streams.
		if len(q.hot) == cap(q.hot) {
			copy(q.hot, live)
			q.hot = q.hot[:n]
			q.head = 0
		}
		q.hot = append(q.hot, t)
		return
	}
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.Less(live[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// A full backing array implies head > 0 (the live window is under
	// HotCap), so the prefix branch always absorbs that case and the append
	// below never reallocates.
	if q.head > 0 && (lo <= n-lo || len(q.hot) == cap(q.hot)) {
		copy(q.hot[q.head-1:], q.hot[q.head:q.head+lo])
		q.head--
		q.hot[q.head+lo] = t
		return
	}
	q.hot = append(q.hot, task.Task{})
	copy(q.hot[q.head+lo+1:], q.hot[q.head+lo:])
	q.hot[q.head+lo] = t
}

// refill bulk-promotes up to HotCap cold minima into the empty hot buffer;
// they pop off the cold store already sorted.
func (q *TwoLevel) refill() {
	q.stats.Refills++
	q.hot = q.hot[:0]
	q.head = 0
	for i := 0; i < q.cap && q.ColdLen() > 0; i++ {
		q.hot = append(q.hot, q.coldPop())
	}
}

// coldPush routes a task to the cold store: the bucket ring while the
// priority stream looks monotone, the fallback heap after the detector
// fires (span overflow or a rewind storm).
func (q *TwoLevel) coldPush(t task.Task) {
	if q.heap != nil {
		q.heap.Push(t)
		return
	}
	qp := t.Prio >> q.shift
	if q.cold.size > 0 && qp < q.cold.curQ {
		q.stats.Rewinds++
		q.rewindScore += rewindPenalty
	} else if q.rewindScore > 0 {
		q.rewindScore -= rewindForgive
	}
	if q.cold.push(t, qp) {
		if q.rewindScore >= rewindStormScore {
			q.fallBack()
		}
		return
	}
	// The resident span cannot fit even at MaxBuckets: this priority
	// distribution is not bucketable, migrate and insert into the heap.
	q.fallBack()
	q.heap.Push(t)
}

func (q *TwoLevel) coldPeek() (task.Task, bool) {
	if q.cold.size > 0 {
		return q.cold.peek(), true
	}
	if q.heap != nil {
		return q.heap.Peek()
	}
	return task.Task{}, false
}

func (q *TwoLevel) coldPop() task.Task {
	if q.cold.size > 0 {
		return q.cold.pop()
	}
	t, _ := q.heap.Pop()
	return t
}

// fallBack migrates the bucket ring's contents into a fresh d-ary heap and
// retires the ring. One-way: a stream that proved non-monotone once is
// assumed to stay that way (the hot buffer still serves the cache-resident
// front either way).
func (q *TwoLevel) fallBack() {
	q.stats.Fallbacks++
	h := NewDHeap(q.arity, q.cold.size+64)
	for i := range q.cold.buckets {
		for _, t := range q.cold.buckets[i] {
			h.Push(t)
		}
	}
	q.cold.size = 0
	q.cold.buckets = nil
	q.cold.occ = nil
	q.cold.free = nil
	q.cold.arena = nil
	q.heap = h
}

// coldBuckets is the monotone radix level: a power-of-two ring of
// per-quantized-priority buckets, each kept as a binary mini-heap under
// task.Less, plus an occupancy bitmap the scan cursor advances over.
//
// Invariant: while size > 0, every resident quantized priority lies in
// [curQ, curQ+W) with curQ <= the resident minimum and hiQ an upper bound
// on the resident maximum — ring index q & (W-1) is then collision-free
// (two's-complement AND handles negative priorities). A push stretching the
// span doubles W up to maxW; beyond that push reports false and the caller
// falls back to a comparison heap.
type coldBuckets struct {
	buckets [][]task.Task
	occ     []uint64
	// free recycles the storage of emptied buckets, and arena seeds fresh
	// ones: new mini-heaps are carved bucketSeedCap entries at a time out of
	// a shared slab, so filling the ring costs one allocation per
	// slab-worth of buckets instead of one per bucket. Only a bucket that
	// outgrows its seed capacity pays an append-grow of its own, which the
	// freelist then keeps recycling. Together they take the bucket store's
	// allocation count from O(distinct resident priorities) to O(slabs).
	free  [][]task.Task
	arena []task.Task
	curQ  int64 // scan cursor: lower bound on the resident minimum
	hiQ   int64 // upper bound on the resident maximum
	size  int
	maxW  int
}

func (c *coldBuckets) init(w, maxW int) {
	c.buckets = make([][]task.Task, w)
	c.occ = make([]uint64, w/64)
	c.maxW = maxW
}

// push inserts t under quantized priority qp, growing the ring if the
// resident span demands it. False means the span cannot fit at maxW.
func (c *coldBuckets) push(t task.Task, qp int64) bool {
	if c.size == 0 {
		c.curQ, c.hiQ = qp, qp
	} else {
		lo, hi := c.curQ, c.hiQ
		if qp < lo {
			lo = qp
		}
		if qp > hi {
			hi = qp
		}
		for uint64(hi-lo) >= uint64(len(c.buckets)) {
			if len(c.buckets)*2 > c.maxW {
				return false
			}
			c.grow()
		}
		c.curQ, c.hiQ = lo, hi
	}
	w := len(c.buckets)
	idx := int(qp & int64(w-1))
	b := c.buckets[idx]
	if b == nil {
		if n := len(c.free); n > 0 {
			b = c.free[n-1]
			c.free = c.free[:n-1]
		} else {
			if len(c.arena) < bucketSeedCap {
				c.arena = make([]task.Task, bucketSlabLen)
			}
			b = c.arena[:0:bucketSeedCap]
			c.arena = c.arena[bucketSeedCap:]
		}
	}
	b = append(b, t)
	siftUpTasks(b)
	c.buckets[idx] = b
	c.occ[idx>>6] |= 1 << uint(idx&63)
	c.size++
	return true
}

// grow doubles the ring, re-placing occupied buckets under the wider mask.
// Bucket indices are reconstructed from the cursor: every resident q is
// curQ + (its ring distance from curQ's slot), unique because the old span
// fit the old width.
func (c *coldBuckets) grow() {
	oldW := len(c.buckets)
	newW := oldW * 2
	nb := make([][]task.Task, newW)
	nocc := make([]uint64, newW/64)
	if c.size > 0 {
		baseIdx := int(c.curQ & int64(oldW-1))
		for step := 0; step < oldW; step++ {
			idx := (baseIdx + step) & (oldW - 1)
			b := c.buckets[idx]
			if len(b) == 0 {
				// Parked capacity has no index in the wider ring yet;
				// salvage it through the freelist.
				if cap(b) > 0 && len(c.free) < bucketFreeMax {
					c.free = append(c.free, b)
				}
				continue
			}
			q := c.curQ + int64(step)
			nidx := int(q & int64(newW-1))
			nb[nidx] = b
			nocc[nidx>>6] |= 1 << uint(nidx&63)
		}
	}
	c.buckets = nb
	c.occ = nocc
}

// advance moves the cursor to the first occupied bucket at or above it,
// scanning the occupancy bitmap a word at a time. Caller guarantees
// size > 0, so an occupied bucket exists within one lap of the ring.
func (c *coldBuckets) advance() {
	w := len(c.buckets)
	idx := int(c.curQ & int64(w-1))
	for steps := 0; steps < w; {
		word := c.occ[idx>>6] >> uint(idx&63)
		if word != 0 {
			c.curQ += int64(steps + bits.TrailingZeros64(word))
			return
		}
		adv := 64 - (idx & 63)
		steps += adv
		idx = (idx + adv) & (w - 1)
	}
}

// peek returns the minimum resident task. Caller guarantees size > 0.
func (c *coldBuckets) peek() task.Task {
	c.advance()
	return c.buckets[int(c.curQ&int64(len(c.buckets)-1))][0]
}

// pop removes and returns the minimum resident task. Caller guarantees
// size > 0.
func (c *coldBuckets) pop() task.Task {
	c.advance()
	idx := int(c.curQ & int64(len(c.buckets)-1))
	b := c.buckets[idx]
	t := b[0]
	n := len(b) - 1
	b[0] = b[n]
	b = b[:n]
	if n > 0 {
		if n > 1 {
			siftDownTasks(b)
		}
		c.buckets[idx] = b
	} else {
		// Drained: big slices chase the frontier via the freelist, small
		// ones wait in place for a priority to wrap back onto this index.
		if cap(b) >= bucketBigCap && len(c.free) < bucketFreeMax {
			c.buckets[idx] = nil
			c.free = append(c.free, b)
		} else {
			c.buckets[idx] = b
		}
		c.occ[idx>>6] &^= 1 << uint(idx&63)
	}
	c.size--
	return t
}

// siftUpTasks restores the binary-min-heap property of b after its last
// element was appended.
func siftUpTasks(b []task.Task) {
	i := len(b) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !b[i].Less(b[p]) {
			return
		}
		b[i], b[p] = b[p], b[i]
		i = p
	}
}

// siftDownTasks restores the binary-min-heap property of b after its root
// was replaced.
func siftDownTasks(b []task.Task) {
	n := len(b)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && b[l].Less(b[least]) {
			least = l
		}
		if r < n && b[r].Less(b[least]) {
			least = r
		}
		if least == i {
			return
		}
		b[i], b[least] = b[least], b[i]
		i = least
	}
}
