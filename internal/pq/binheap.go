package pq

import "hdcps/internal/task"

// BinaryHeap is a classic array-backed binary min-heap. It is the software
// priority queue the paper's RELD and HD-CPS:SW designs pay O(log n)
// rebalancing for on every enqueue/dequeue; the simulator charges exactly
// that cost. The zero value is an empty heap ready to use.
type BinaryHeap struct {
	items []task.Task
}

// NewBinaryHeap returns an empty heap with the given initial capacity.
func NewBinaryHeap(capacity int) *BinaryHeap {
	return &BinaryHeap{items: make([]task.Task, 0, capacity)}
}

// Len returns the number of queued tasks.
func (h *BinaryHeap) Len() int { return len(h.items) }

// Push inserts t.
func (h *BinaryHeap) Push(t task.Task) {
	h.items = append(h.items, t)
	h.siftUp(len(h.items) - 1)
}

// Pop removes and returns the minimum task.
func (h *BinaryHeap) Pop() (task.Task, bool) {
	if len(h.items) == 0 {
		return task.Task{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top, true
}

// Peek returns the minimum task without removing it.
func (h *BinaryHeap) Peek() (task.Task, bool) {
	if len(h.items) == 0 {
		return task.Task{}, false
	}
	return h.items[0], true
}

func (h *BinaryHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].Less(h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *BinaryHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.items[l].Less(h.items[least]) {
			least = l
		}
		if r < n && h.items[r].Less(h.items[least]) {
			least = r
		}
		if least == i {
			return
		}
		h.items[i], h.items[least] = h.items[least], h.items[i]
		i = least
	}
}
