package pq

import "hdcps/internal/task"

// BucketQueue is a monotone bucket queue: tasks are grouped by priority into
// FIFO buckets and served lowest-priority-bucket first. It is the structure
// behind OBIM's global bag map (priorities quantized to buckets) and the
// sequential delta-stepping baseline. Unlike the heaps it supports only
// priorities >= the current scan cursor efficiently; pushing below the
// cursor rewinds it (an O(1) pointer move, as in delta-stepping).
type BucketQueue struct {
	buckets map[int64][]task.Task
	cursor  int64 // lowest priority that may be non-empty
	size    int
	known   bool // cursor initialized
}

// NewBucketQueue returns an empty bucket queue.
func NewBucketQueue() *BucketQueue {
	return &BucketQueue{buckets: make(map[int64][]task.Task)}
}

// Len returns the number of queued tasks.
func (q *BucketQueue) Len() int { return q.size }

// Push inserts t into its priority bucket.
func (q *BucketQueue) Push(t task.Task) {
	q.buckets[t.Prio] = append(q.buckets[t.Prio], t)
	if !q.known || t.Prio < q.cursor {
		q.cursor = t.Prio
		q.known = true
	}
	q.size++
}

// Pop removes and returns a task from the lowest non-empty bucket (FIFO
// within a bucket, as OBIM's unordered bags are).
func (q *BucketQueue) Pop() (task.Task, bool) {
	prio, ok := q.scan()
	if !ok {
		return task.Task{}, false
	}
	b := q.buckets[prio]
	t := b[0]
	if len(b) == 1 {
		delete(q.buckets, prio)
	} else {
		q.buckets[prio] = b[1:]
	}
	q.size--
	return t, true
}

// Peek returns a task from the lowest non-empty bucket without removing it.
func (q *BucketQueue) Peek() (task.Task, bool) {
	prio, ok := q.scan()
	if !ok {
		return task.Task{}, false
	}
	return q.buckets[prio][0], true
}

// PopBucket removes and returns the entire lowest non-empty bucket along
// with its priority. OBIM-style schedulers use this to grab a whole bag.
func (q *BucketQueue) PopBucket() (int64, []task.Task, bool) {
	prio, ok := q.scan()
	if !ok {
		return 0, nil, false
	}
	b := q.buckets[prio]
	delete(q.buckets, prio)
	q.size -= len(b)
	return prio, b, true
}

// scan advances the cursor to the lowest non-empty bucket. The map fallback
// below handles the pathological case of a sparse priority space: if the
// linear scan walks too far it falls back to a full map sweep, keeping Pop
// amortized cheap for both dense (delta-stepping) and sparse priorities.
func (q *BucketQueue) scan() (int64, bool) {
	if q.size == 0 {
		return 0, false
	}
	const linearLimit = 4096
	for step := 0; step < linearLimit; step++ {
		if _, ok := q.buckets[q.cursor]; ok {
			return q.cursor, true
		}
		q.cursor++
	}
	best, found := int64(0), false
	for p := range q.buckets {
		if !found || p < best {
			best, found = p, true
		}
	}
	if found {
		q.cursor = best
	}
	return best, found
}
