package pq

import (
	"sort"
	"testing"
	"testing/quick"

	"hdcps/internal/task"
)

func impls() map[string]func() Queue {
	return map[string]func() Queue{
		"binheap":  func() Queue { return NewBinaryHeap(0) },
		"bucket":   func() Queue { return NewBucketQueue() },
		"pairing":  func() Queue { return NewPairingHeap() },
		"4-ary":    func() Queue { return NewQuadHeap(0) },
		"8-ary":    func() Queue { return NewDHeap(8, 0) },
		"twolevel": func() Queue { return NewTwoLevel(TwoLevelConfig{}) },
		// A tiny hot buffer and bucket ring force the spill, refill, grow,
		// and fallback paths through the same generic suites.
		"twolevel-tiny": func() Queue {
			return NewTwoLevel(TwoLevelConfig{HotCap: 2, MaxBuckets: 64, QuantShift: 1})
		},
	}
}

func TestEmptyQueues(t *testing.T) {
	for name, mk := range impls() {
		q := mk()
		if q.Len() != 0 {
			t.Errorf("%s: new queue Len = %d", name, q.Len())
		}
		if _, ok := q.Pop(); ok {
			t.Errorf("%s: Pop on empty returned ok", name)
		}
		if _, ok := q.Peek(); ok {
			t.Errorf("%s: Peek on empty returned ok", name)
		}
	}
}

func TestPopOrder(t *testing.T) {
	prios := []int64{5, 3, 9, 1, 7, 3, 0, 12, -4, 7}
	for name, mk := range impls() {
		q := mk()
		for i, p := range prios {
			q.Push(task.Task{Node: uint32(i), Prio: p})
		}
		want := append([]int64(nil), prios...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for i, w := range want {
			got, ok := q.Pop()
			if !ok {
				t.Fatalf("%s: queue empty after %d pops", name, i)
			}
			if got.Prio != w {
				t.Fatalf("%s: pop %d = prio %d, want %d", name, i, got.Prio, w)
			}
		}
		if _, ok := q.Pop(); ok {
			t.Fatalf("%s: queue should be drained", name)
		}
	}
}

func TestPeekMatchesPop(t *testing.T) {
	for name, mk := range impls() {
		q := mk()
		for i := 0; i < 50; i++ {
			q.Push(task.Task{Node: uint32(i), Prio: int64((i * 37) % 11)})
		}
		for q.Len() > 0 {
			p, _ := q.Peek()
			got, _ := q.Pop()
			if p.Prio != got.Prio {
				t.Fatalf("%s: Peek prio %d != Pop prio %d", name, p.Prio, got.Prio)
			}
		}
	}
}

// TestQueueEquivalence is the central property test: all implementations
// must pop the same priority sequence for any input.
func TestQueueEquivalence(t *testing.T) {
	err := quick.Check(func(raw []int16) bool {
		ref := NewBinaryHeap(len(raw))
		others := map[string]Queue{
			"bucket":  NewBucketQueue(),
			"pairing": NewPairingHeap(),
			"4-ary":   NewQuadHeap(0),
			"8-ary":   NewDHeap(8, 0),
			"twolevel": NewTwoLevel(TwoLevelConfig{
				HotCap: 4, MaxBuckets: 128, QuantShift: 2,
			}),
		}
		for i, p := range raw {
			tk := task.Task{Node: uint32(i), Prio: int64(p)}
			ref.Push(tk)
			for _, q := range others {
				q.Push(tk)
			}
		}
		for {
			want, ok := ref.Pop()
			for name, q := range others {
				got, gok := q.Pop()
				if gok != ok {
					t.Logf("%s: length mismatch", name)
					return false
				}
				if ok && got.Prio != want.Prio {
					t.Logf("%s: prio %d want %d", name, got.Prio, want.Prio)
					return false
				}
			}
			if !ok {
				return true
			}
		}
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	// Monotone-ish workload resembling delta-stepping: pops generate pushes
	// at equal-or-higher priority.
	for name, mk := range impls() {
		q := mk()
		q.Push(task.Task{Node: 0, Prio: 0})
		last := int64(-1)
		pops := 0
		for q.Len() > 0 && pops < 10000 {
			got, _ := q.Pop()
			pops++
			if got.Prio < last {
				t.Fatalf("%s: non-monotone pop %d after %d", name, got.Prio, last)
			}
			last = got.Prio
			if pops < 3000 {
				q.Push(task.Task{Node: uint32(pops), Prio: got.Prio + int64(pops%3)})
				if pops%2 == 0 {
					q.Push(task.Task{Node: uint32(pops), Prio: got.Prio})
				}
			}
		}
	}
}

func TestBucketRewind(t *testing.T) {
	// Pushing below the cursor after pops must still surface the low task.
	q := NewBucketQueue()
	q.Push(task.Task{Prio: 100})
	if got, _ := q.Pop(); got.Prio != 100 {
		t.Fatalf("got %d", got.Prio)
	}
	q.Push(task.Task{Prio: 5})
	q.Push(task.Task{Prio: 200})
	if got, _ := q.Pop(); got.Prio != 5 {
		t.Fatalf("rewind failed: got %d, want 5", got.Prio)
	}
}

func TestBucketSparsePriorities(t *testing.T) {
	// Forces the map-sweep fallback path (gap > linear scan limit).
	q := NewBucketQueue()
	q.Push(task.Task{Prio: 0})
	q.Push(task.Task{Prio: 1 << 40})
	if got, _ := q.Pop(); got.Prio != 0 {
		t.Fatalf("got %d, want 0", got.Prio)
	}
	if got, ok := q.Pop(); !ok || got.Prio != 1<<40 {
		t.Fatalf("sparse pop failed: %v %v", got, ok)
	}
}

func TestBucketPopBucket(t *testing.T) {
	q := NewBucketQueue()
	for i := 0; i < 5; i++ {
		q.Push(task.Task{Node: uint32(i), Prio: 7})
	}
	q.Push(task.Task{Node: 99, Prio: 9})
	prio, bag, ok := q.PopBucket()
	if !ok || prio != 7 || len(bag) != 5 {
		t.Fatalf("PopBucket = %d/%d/%v", prio, len(bag), ok)
	}
	// FIFO within the bag.
	for i, tk := range bag {
		if tk.Node != uint32(i) {
			t.Fatalf("bag order broken at %d: %v", i, tk)
		}
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestPairingMeld(t *testing.T) {
	a, b := NewPairingHeap(), NewPairingHeap()
	for i := 0; i < 20; i++ {
		a.Push(task.Task{Prio: int64(2 * i)})
		b.Push(task.Task{Prio: int64(2*i + 1)})
	}
	a.Meld(b)
	if b.Len() != 0 {
		t.Fatalf("melded source not empty: %d", b.Len())
	}
	if a.Len() != 40 {
		t.Fatalf("meld target Len = %d, want 40", a.Len())
	}
	for i := 0; i < 40; i++ {
		got, ok := a.Pop()
		if !ok || got.Prio != int64(i) {
			t.Fatalf("pop %d = %v/%v", i, got, ok)
		}
	}
	// Melding an empty/nil heap is a no-op.
	a.Meld(nil)
	a.Meld(NewPairingHeap())
}

func TestBoundedEviction(t *testing.T) {
	b := NewBounded(4)
	for i := 0; i < 4; i++ {
		if _, evicted := b.Push(task.Task{Prio: int64(10 + i)}); evicted {
			t.Fatalf("premature eviction at %d", i)
		}
	}
	if !b.Full() {
		t.Fatal("should be full")
	}
	// Better task displaces the worst resident (13).
	ev, did := b.Push(task.Task{Prio: 1})
	if !did || ev.Prio != 13 {
		t.Fatalf("evicted %v/%v, want prio 13", ev, did)
	}
	// Worse task bounces straight off.
	ev, did = b.Push(task.Task{Prio: 99})
	if !did || ev.Prio != 99 {
		t.Fatalf("evicted %v/%v, want the incoming 99", ev, did)
	}
	// Residents must now be {1, 10, 11, 12} in pop order.
	want := []int64{1, 10, 11, 12}
	for _, w := range want {
		got, ok := b.Pop()
		if !ok || got.Prio != w {
			t.Fatalf("pop = %v/%v, want %d", got, ok, w)
		}
	}
}

func TestBoundedZeroCapacity(t *testing.T) {
	b := NewBounded(0)
	ev, did := b.Push(task.Task{Prio: 3})
	if !did || ev.Prio != 3 {
		t.Fatalf("zero-cap queue must bounce pushes, got %v/%v", ev, did)
	}
	if _, ok := b.Pop(); ok {
		t.Fatal("zero-cap queue must stay empty")
	}
	if NewBounded(-5).Cap() != 0 {
		t.Fatal("negative capacity should clamp to 0")
	}
}

// TestBoundedKeepsBest checks the hPQ invariant the paper relies on: after
// any push sequence, the resident set is exactly the capacity best tasks.
func TestBoundedKeepsBest(t *testing.T) {
	err := quick.Check(func(raw []int16) bool {
		const capacity = 8
		b := NewBounded(capacity)
		var spilled []int64
		for i, p := range raw {
			tk := task.Task{Node: uint32(i), Prio: int64(p)}
			if ev, did := b.Push(tk); did {
				spilled = append(spilled, ev.Prio)
			}
		}
		var resident []int64
		for {
			tk, ok := b.Pop()
			if !ok {
				break
			}
			resident = append(resident, tk.Prio)
		}
		// resident ∪ spilled must equal the input multiset, and
		// max(resident) <= min over no spilled? The invariant: every
		// resident is <= every spilled task is too strong with ties; check
		// multiset equality and that resident are the k smallest.
		all := make([]int64, 0, len(raw))
		for _, p := range raw {
			all = append(all, int64(p))
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		k := len(resident)
		if k != min(capacity, len(all)) {
			return false
		}
		for i := 0; i < k; i++ {
			if resident[i] != all[i] {
				return false
			}
		}
		if len(spilled) != len(all)-k {
			return false
		}
		sort.Slice(spilled, func(a, b int) bool { return spilled[a] < spilled[b] })
		for i, p := range spilled {
			if p != all[k+i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDHeapArityClamp(t *testing.T) {
	if got := NewDHeap(0, 0).Arity(); got != 2 {
		t.Fatalf("arity clamp = %d, want 2", got)
	}
	if got := NewQuadHeap(16).Arity(); got != 4 {
		t.Fatalf("quad heap arity = %d, want 4", got)
	}
}

func BenchmarkBinaryHeap(b *testing.B) {
	benchQueue(b, NewBinaryHeap(1024))
}

// BenchmarkHeapPushPop isolates the tentpole's heap switch: the same mixed
// push/pop workload on the binary heap vs the 4-ary heap, at a queue depth
// that exercises multi-level sifts (the native runtime's steady state).
func BenchmarkHeapPushPop(b *testing.B) {
	impls := []struct {
		name string
		mk   func() Queue
	}{
		{"binary", func() Queue { return NewBinaryHeap(1024) }},
		{"4-ary", func() Queue { return NewQuadHeap(1024) }},
	}
	for _, im := range impls {
		b.Run(im.name, func(b *testing.B) {
			q := im.mk()
			// Pre-fill so sifts traverse several levels.
			for i := 0; i < 1024; i++ {
				q.Push(task.Task{Node: uint32(i), Prio: int64((i * 2654435761) % 8192)})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Push(task.Task{Node: uint32(i), Prio: int64((i * 2654435761) % 8192)})
				q.Pop()
			}
		})
	}
}

func BenchmarkBucketQueue(b *testing.B) {
	benchQueue(b, NewBucketQueue())
}

func BenchmarkPairingHeap(b *testing.B) {
	benchQueue(b, NewPairingHeap())
}

func benchQueue(b *testing.B, q Queue) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(task.Task{Node: uint32(i), Prio: int64((i * 2654435761) % 4096)})
		if i%2 == 1 {
			q.Pop()
		}
	}
}
