package pq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdcps/internal/task"
)

// drainEqual pops both queues to exhaustion and fails on the first
// divergence in (Node, Prio) — the exact-order contract, not just the
// priority sequence.
func drainEqual(t *testing.T, name string, got Queue, ref *BinaryHeap) {
	t.Helper()
	for i := 0; ; i++ {
		want, wok := ref.Pop()
		have, hok := got.Pop()
		if wok != hok {
			t.Fatalf("%s: pop %d: ok=%v, reference ok=%v", name, i, hok, wok)
		}
		if !wok {
			return
		}
		if have.Prio != want.Prio || have.Node != want.Node {
			t.Fatalf("%s: pop %d = (node %d, prio %d), want (node %d, prio %d)",
				name, i, have.Node, have.Prio, want.Node, want.Prio)
		}
	}
}

// TestTwoLevelExactOrderMonotone pins the tentpole contract on the traffic
// the bucket store is built for: a delta-stepping-like monotone stream must
// pop in exactly the order a binary heap would (same node, same priority,
// every pop), with the cold store never falling back.
func TestTwoLevelExactOrderMonotone(t *testing.T) {
	q := NewTwoLevel(TwoLevelConfig{HotCap: 8})
	ref := NewBinaryHeap(0)
	rng := rand.New(rand.NewSource(7))
	push := func(tk task.Task) { q.Push(tk); ref.Push(tk) }
	push(task.Task{Node: 0, Prio: 0})
	floor := int64(0)
	for i := 1; i <= 5000 && ref.Len() > 0; i++ {
		want, _ := ref.Peek()
		have, ok := q.Pop()
		if !ok || have != want {
			t.Fatalf("pop %d = %+v/%v, want %+v", i, have, ok, want)
		}
		ref.Pop()
		if have.Prio < floor {
			t.Fatalf("pop %d went backwards: %d after %d", i, have.Prio, floor)
		}
		floor = have.Prio
		if i < 2000 {
			// Children at or above the parent's priority: the monotone case.
			for c := 0; c < 1+rng.Intn(3); c++ {
				push(task.Task{Node: uint32(3*i + c), Prio: floor + int64(rng.Intn(64))})
			}
		}
	}
	if got := q.Stats().Fallbacks; got != 0 {
		t.Fatalf("monotone stream tripped the fallback detector (%d)", got)
	}
	if q.Stats().Spills == 0 {
		t.Fatal("an 8-entry hot buffer under thousands of pushes must spill")
	}
	drainEqual(t, "monotone-tail", q, ref)
}

// TestTwoLevelConservationRandom is the no-loss/no-duplication property
// test: under arbitrary (non-monotone, negative, colliding) priorities the
// two-level queue pops exactly the reference heap's sequence — which implies
// the multisets match — across several adversarial configurations.
func TestTwoLevelConservationRandom(t *testing.T) {
	cfgs := map[string]TwoLevelConfig{
		"default":   {},
		"tiny-hot":  {HotCap: 1},
		"quantized": {QuantShift: 3},
		"tiny-ring": {HotCap: 4, MaxBuckets: 64},
	}
	for name, cfg := range cfgs {
		cfg := cfg
		err := quick.Check(func(raw []int16, popBits []bool) bool {
			q := NewTwoLevel(cfg)
			ref := NewBinaryHeap(0)
			for i, p := range raw {
				tk := task.Task{Node: uint32(i), Prio: int64(p)}
				q.Push(tk)
				ref.Push(tk)
				// Interleave pops driven by the fuzzed schedule so the
				// cursor rewinds and refills under partial drain.
				if i < len(popBits) && popBits[i] {
					want, wok := ref.Pop()
					have, hok := q.Pop()
					if wok != hok || have != want {
						t.Logf("%s: interleaved pop %d = %+v/%v, want %+v/%v",
							name, i, have, hok, want, wok)
						return false
					}
				}
			}
			for {
				want, wok := ref.Pop()
				have, hok := q.Pop()
				if wok != hok || have != want {
					t.Logf("%s: drain pop = %+v/%v, want %+v/%v", name, have, hok, want, wok)
					return false
				}
				if !wok {
					return q.Len() == 0
				}
			}
		}, &quick.Config{MaxCount: 200})
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestTwoLevelFallback drives the two non-monotone detectors: a strictly
// decreasing stream (every cold push rewinds the cursor) and a priority
// span wider than MaxBuckets. Both must migrate to the heap exactly once
// and keep the pop order exact.
func TestTwoLevelFallback(t *testing.T) {
	t.Run("rewind-storm", func(t *testing.T) {
		q := NewTwoLevel(TwoLevelConfig{HotCap: 4})
		ref := NewBinaryHeap(0)
		for i := 0; i < 512; i++ {
			tk := task.Task{Node: uint32(i), Prio: int64(-i)}
			q.Push(tk)
			ref.Push(tk)
		}
		if got := q.Stats().Fallbacks; got != 1 {
			t.Fatalf("Fallbacks = %d, want 1 (rewinds %d)", got, q.Stats().Rewinds)
		}
		drainEqual(t, "rewind-storm", q, ref)
	})
	t.Run("span-overflow", func(t *testing.T) {
		q := NewTwoLevel(TwoLevelConfig{HotCap: 1, MaxBuckets: 64})
		ref := NewBinaryHeap(0)
		// Ascending but exponentially sparse: monotone, yet the resident
		// span blows past any bucket ring.
		for i := 0; i < 40; i++ {
			tk := task.Task{Node: uint32(i), Prio: int64(1) << uint(i)}
			q.Push(tk)
			ref.Push(tk)
		}
		if got := q.Stats().Fallbacks; got != 1 {
			t.Fatalf("Fallbacks = %d, want 1", got)
		}
		drainEqual(t, "span-overflow", q, ref)
	})
}

// TestTwoLevelHotEviction checks the hPQ residency invariant against
// pq.Bounded's semantics: with PopEx (no refill), the hot buffer always
// holds the HotCap best tasks and every pop's provenance matches.
func TestTwoLevelHotEviction(t *testing.T) {
	const capacity = 8
	q := NewTwoLevel(TwoLevelConfig{HotCap: capacity})
	b := NewBounded(capacity)
	sw := NewBinaryHeap(0)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4096; i++ {
		tk := task.Task{Node: uint32(i), Prio: int64(rng.Intn(1 << 14))}
		q.Push(tk)
		if ev, spilled := b.Push(tk); spilled {
			sw.Push(ev)
		}
		if rng.Intn(3) == 0 {
			// Reference composition: pop the better of hPQ front and
			// software heap front, like the simulator's dequeue.
			hw, hok := b.Peek()
			s, sok := sw.Peek()
			var want task.Task
			var wantHot bool
			switch {
			case hok && (!sok || hw.Less(s)):
				want, _ = b.Pop()
				wantHot = true
			case sok:
				want, _ = sw.Pop()
			}
			have, fromHot, ok := q.PopEx()
			if !ok || have != want || fromHot != wantHot {
				t.Fatalf("push %d: PopEx = %+v hot=%v, want %+v hot=%v",
					i, have, fromHot, want, wantHot)
			}
		}
	}
	if hl := q.HotLen(); hl != capacity {
		t.Fatalf("HotLen = %d, want %d", hl, capacity)
	}
	if q.Len() != q.HotLen()+q.ColdLen() {
		t.Fatalf("Len %d != HotLen %d + ColdLen %d", q.Len(), q.HotLen(), q.ColdLen())
	}
}

// TestTwoLevelPushCold pins the simulator's bypass path: cold-pushed tasks
// never enter the hot buffer, yet Pop order stays exact.
func TestTwoLevelPushCold(t *testing.T) {
	q := NewTwoLevel(TwoLevelConfig{HotCap: 4})
	ref := NewBinaryHeap(0)
	for i := 0; i < 100; i++ {
		tk := task.Task{Node: uint32(i), Prio: int64((i * 37) % 50)}
		q.PushCold(tk)
		ref.Push(tk)
	}
	if got := q.HotLen(); got != 0 {
		t.Fatalf("PushCold leaked %d tasks into the hot buffer", got)
	}
	if got := q.ColdLen(); got != 100 {
		t.Fatalf("ColdLen = %d, want 100", got)
	}
	drainEqual(t, "push-cold", q, ref)
	if q.Stats().Refills == 0 {
		t.Fatal("draining a cold-only queue via Pop must refill the hot buffer")
	}
}

// FuzzTwoLevelVsBinaryHeap feeds a byte-driven op stream (push with varied
// priority deltas, pop, cold-push) to the two-level queue and the reference
// heap and requires identical observable behavior.
func FuzzTwoLevelVsBinaryHeap(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x80, 0xff, 0x00, 0x7f})
	f.Add([]byte("monotone-ish stream 0123456789"))
	f.Add([]byte{0xff, 0xfe, 0xfd, 0x10, 0x10, 0x10, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		q := NewTwoLevel(TwoLevelConfig{HotCap: 3, MaxBuckets: 64})
		ref := NewBinaryHeap(0)
		prio := int64(0)
		for i, op := range data {
			switch op % 4 {
			case 0: // pop
				want, wok := ref.Pop()
				have, hok := q.Pop()
				if wok != hok || have != want {
					t.Fatalf("op %d: pop = %+v/%v, want %+v/%v", i, have, hok, want, wok)
				}
			case 1, 2: // push with a signed priority delta
				prio += int64(int8(op)) * int64(1+op%5)
				tk := task.Task{Node: uint32(i), Prio: prio}
				q.Push(tk)
				ref.Push(tk)
			case 3: // cold-path push
				tk := task.Task{Node: uint32(i), Prio: prio - int64(op>>2)}
				q.PushCold(tk)
				ref.Push(tk)
			}
			if q.Len() != ref.Len() {
				t.Fatalf("op %d: Len = %d, reference %d", i, q.Len(), ref.Len())
			}
		}
		drainEqual(t, "fuzz-drain", q, ref)
	})
}

// BenchmarkQueueDist measures the queue shapes under the three adversarial
// priority distributions of the tentpole: flat (every push collides into
// few buckets), power-law (skewed like web-graph residuals), and strictly
// increasing (the pure monotone case the bucket store is built for).
func BenchmarkQueueDist(b *testing.B) {
	dists := []struct {
		name string
		prio func(i int, rng *rand.Rand) int64
	}{
		{"flat", func(i int, rng *rand.Rand) int64 { return int64(rng.Intn(64)) }},
		{"powerlaw", func(i int, rng *rand.Rand) int64 {
			return int64(1<<uint(rng.Intn(14))) + int64(rng.Intn(16))
		}},
		{"increasing", func(i int, rng *rand.Rand) int64 { return int64(i) }},
	}
	shapes := []struct {
		name string
		mk   func() Queue
	}{
		{"binary", func() Queue { return NewBinaryHeap(1024) }},
		{"4-ary", func() Queue { return NewQuadHeap(1024) }},
		{"twolevel", func() Queue { return NewTwoLevel(TwoLevelConfig{}) }},
		{"multiqueue", func() Queue { return NewMultiQueue(MultiQueueConfig{Workers: 1}).Handle() }},
	}
	for _, d := range dists {
		for _, s := range shapes {
			b.Run(d.name+"/"+s.name, func(b *testing.B) {
				q := s.mk()
				rng := rand.New(rand.NewSource(42))
				// Pre-fill to the native runtime's steady-state depth.
				for i := 0; i < 1024; i++ {
					q.Push(task.Task{Node: uint32(i), Prio: d.prio(i, rng)})
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q.Push(task.Task{Node: uint32(i), Prio: d.prio(i+1024, rng)})
					q.Pop()
				}
			})
		}
	}
}
