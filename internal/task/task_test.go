package task

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestLessOrdersByPriority(t *testing.T) {
	a := Task{Node: 9, Prio: 1}
	b := Task{Node: 1, Prio: 2}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("lower Prio must sort first regardless of Node")
	}
}

func TestLessTieBreaksByNode(t *testing.T) {
	a := Task{Node: 1, Prio: 5}
	b := Task{Node: 2, Prio: 5}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("equal priorities must tie-break by Node")
	}
	if a.Less(a) {
		t.Fatal("Less must be irreflexive")
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	err := quick.Check(func(raw []uint32) bool {
		ts := make([]Task, len(raw))
		for i, r := range raw {
			ts[i] = Task{Node: r % 16, Prio: int64(r>>4) % 16}
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
		for i := 1; i < len(ts); i++ {
			if ts[i].Less(ts[i-1]) {
				return false // not totally ordered
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestNegativePriorities(t *testing.T) {
	// Coloring uses negative priorities (higher degree = more negative).
	hi := Task{Node: 0, Prio: -100}
	lo := Task{Node: 0, Prio: -1}
	if !hi.Less(lo) {
		t.Fatal("more negative priority must sort first")
	}
}
