// Package task defines the unit of scheduled work shared by every scheduler,
// workload, and queue in the repository.
package task

import "hdcps/internal/graph"

// Task is a schedulable unit of work. Following the paper (§II), a task is
// associated with a graph node and carries an algorithm-defined priority;
// lower Prio values are higher priority (processed first), matching the
// paper's workloads where priority is a distance/level to minimize.
//
// Data is a workload-defined payload (for example, the tentative distance a
// relaxation was created with). Together with the 64-bit packed ID this
// mirrors the paper's 128-bit hardware queue entries (ID + data, §III-D).
type Task struct {
	Node graph.NodeID
	Prio int64
	Data uint64
}

// Less reports whether t has strictly higher scheduling priority than o
// (numerically lower Prio, with Node as a deterministic tie-break).
func (t Task) Less(o Task) bool {
	if t.Prio != o.Prio {
		return t.Prio < o.Prio
	}
	return t.Node < o.Node
}
