// Package task defines the unit of scheduled work shared by every scheduler,
// workload, and queue in the repository.
package task

import "hdcps/internal/graph"

// Task is a schedulable unit of work. Following the paper (§II), a task is
// associated with a graph node and carries an algorithm-defined priority;
// lower Prio values are higher priority (processed first), matching the
// paper's workloads where priority is a distance/level to minimize.
//
// Data is a workload-defined payload (for example, the tentative distance a
// relaxation was created with). Together with the 64-bit packed ID this
// mirrors the paper's 128-bit hardware queue entries (ID + data, §III-D).
//
// Job identifies the tenant the task belongs to in a multi-job engine
// (runtime.Job). It sits in the 4-byte padding hole after Node, so carrying
// the identity costs no space: the struct stays 24 bytes and every queue
// kind remains zero-alloc. Scheduling order ignores Job entirely — fairness
// across jobs is the engine's job-level scheduler, not the queues'.
type Task struct {
	Node graph.NodeID
	Job  JobID
	Prio int64
	Data uint64
}

// JobID names one job (tenant) of a multi-job engine. The zero value is the
// engine's default job, so single-tenant callers never see the field.
type JobID uint32

// Less reports whether t has strictly higher scheduling priority than o
// (numerically lower Prio, with Node as a deterministic tie-break).
func (t Task) Less(o Task) bool {
	if t.Prio != o.Prio {
		return t.Prio < o.Prio
	}
	return t.Node < o.Node
}
