// Package load is the open-loop traffic harness: it offers work to a
// target at an externally clocked arrival rate — Poisson, uniform, or
// bursty schedules — regardless of how fast the target absorbs it, which
// is what separates "tasks/s in a closed-loop benchmark" from "traffic
// served under an SLO". A closed loop waits for each response before
// sending the next request, so a saturated server silently slows the
// generator and the tail latency it reports is a lie; an open loop keeps
// arriving on schedule and lets the queues (and the 429/503 backpressure)
// tell the truth.
//
// The package is transport-agnostic: a Submitter is any function that
// tries to deliver one batch of tasks and reports how many were accepted
// and how the attempt was classified (accepted / backpressure / server
// error). internal/serve provides an HTTP Submitter over hdcps-serve;
// tests drive in-process fakes.
package load

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hdcps/internal/obs"
)

// Outcome classifies one submit attempt for the generator's accounting.
type Outcome int

const (
	// Accepted: the batch (or a prefix of it) was admitted.
	Accepted Outcome = iota
	// Backpressure: the target refused with an explicit, retryable signal
	// (HTTP 429/503, quota, overload shed). Expected under saturation.
	Backpressure
	// ServerError: the target failed (HTTP 5xx, transport error). Never
	// expected; the serve gate's zero-5xx canary keys off this.
	ServerError
)

// Submitter tries to deliver one batch of n tasks to the target. It
// returns how many tasks were actually admitted (0 on rejection) and the
// outcome class. err carries detail for logging; the generator only
// counts it.
type Submitter func(n int) (accepted int, out Outcome, err error)

// Options configure one open-loop run.
type Options struct {
	// Rate is the offered task arrival rate, tasks/second. Each arrival
	// event submits one batch, so requests arrive at Rate/Batch per second.
	Rate float64
	// Batch is the number of tasks per submit (default 16).
	Batch int
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Arrivals picks the schedule: "poisson" (default), "uniform", or
	// "bursty".
	Arrivals string
	// BurstFactor is the bursty schedule's peak-to-mean ratio (default 4):
	// the on-phase offers BurstFactor×Rate, the off-phase idles, and the
	// duty cycle keeps the mean at Rate.
	BurstFactor float64
	// BurstPeriod is the bursty schedule's full on+off cycle (default 200ms).
	BurstPeriod time.Duration
	// Seed fixes the arrival randomness.
	Seed int64
	// MaxInFlight caps concurrent submit calls (default 128). An arrival
	// with no slot free is shed and counted — a truly open loop never
	// blocks the clock on the target.
	MaxInFlight int
	// Hist receives per-request latencies (ns). Nil allocates a fresh one.
	Hist *obs.Histogram
}

func (o Options) withDefaults() Options {
	if o.Batch <= 0 {
		o.Batch = 16
	}
	if o.Arrivals == "" {
		o.Arrivals = "poisson"
	}
	if o.BurstFactor <= 1 {
		o.BurstFactor = 4
	}
	if o.BurstPeriod <= 0 {
		o.BurstPeriod = 200 * time.Millisecond
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 128
	}
	if o.Hist == nil {
		o.Hist = obs.NewHistogram()
	}
	return o
}

// Result is one open-loop run's accounting. Offered counts every task the
// schedule generated (shed arrivals included); Accepted only those the
// target admitted. OfferedRate/AcceptedRate are per-second over Elapsed.
type Result struct {
	Offered      int64
	Accepted     int64
	Rejected     int64 // tasks in batches refused with backpressure
	ServerErrs   int64 // batches that hit a server error (5xx/transport)
	Shed         int64 // tasks shed because MaxInFlight was exhausted
	Requests     int64
	Elapsed      time.Duration
	Hist         *obs.Histogram
	LastErr      error
	BatchesByOut [3]int64 // batches per Outcome

	// Clock-slip accounting. The loop is open only if the generator itself
	// keeps schedule: when the arrival clock cannot keep up (scheduler
	// starvation, dispatch overhead, a rate beyond what one goroutine can
	// clock), offered rate silently degrades and a measured "knee" is a
	// property of the generator, not the target. GenLagMax is the worst
	// dispatch lag behind the scheduled arrival time; GenSlipped counts
	// arrivals dispatched more than a mean inter-arrival gap (floored at
	// 1ms) late; GeneratorBound is set when the schedule overran its
	// deadline by more than max(Duration/20, 5ms) — results from such a run
	// measure the generator and must not be read as server capacity.
	GenLagMax      time.Duration
	GenSlipped     int64
	GeneratorBound bool
}

// OfferedRate returns offered tasks/second.
func (r Result) OfferedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Offered) / r.Elapsed.Seconds()
}

// AcceptedRate returns accepted tasks/second.
func (r Result) AcceptedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Accepted) / r.Elapsed.Seconds()
}

// arrival yields successive inter-arrival gaps. Implementations are called
// from the single generator goroutine and may keep state (bursty phase).
type arrival func() time.Duration

// newArrival builds the schedule for o (already defaulted); reqRate is the
// request (batch) arrival rate.
func newArrival(o Options, reqRate float64) arrival {
	rng := rand.New(rand.NewSource(o.Seed))
	mean := time.Duration(float64(time.Second) / reqRate)
	switch o.Arrivals {
	case "uniform":
		return func() time.Duration { return mean }
	case "bursty":
		// Square-wave modulation: the on-phase runs Poisson at
		// BurstFactor×reqRate for Period/BurstFactor, then the schedule
		// idles for the rest of the period, keeping the long-run mean at
		// reqRate. State is the position within the current period.
		onDur := time.Duration(float64(o.BurstPeriod) / o.BurstFactor)
		offDur := o.BurstPeriod - onDur
		var pos time.Duration
		onRate := reqRate * o.BurstFactor
		return func() time.Duration {
			gap := time.Duration(rng.ExpFloat64() * float64(time.Second) / onRate)
			if pos+gap < onDur {
				pos += gap
				return gap
			}
			// The gap crosses one or more off-phases: pay each idle window
			// the on-time skips over.
			total := pos + gap
			skips := int64(total / onDur)
			pos = total % onDur
			return gap + time.Duration(skips)*offDur
		}
	default: // poisson
		return func() time.Duration {
			return time.Duration(rng.ExpFloat64() * float64(mean))
		}
	}
}

// Run drives one open-loop session: arrivals are generated on schedule for
// o.Duration, each dispatching a submit on its own goroutine (bounded by
// MaxInFlight), and the call returns once every in-flight submit finished.
// The schedule is clocked against absolute arrival times so a slow target
// cannot stretch it (no coordinated omission).
func Run(ctx context.Context, submit Submitter, o Options) Result {
	o = o.withDefaults()
	res := Result{Hist: o.Hist}
	if o.Rate <= 0 || o.Duration <= 0 {
		return res
	}
	reqRate := o.Rate / float64(o.Batch)
	next := newArrival(o, reqRate)

	var (
		wg       sync.WaitGroup
		inflight atomic.Int64
		accepted atomic.Int64
		rejected atomic.Int64
		serverE  atomic.Int64
		requests atomic.Int64
		byOut    [3]atomic.Int64
		lastErr  atomic.Pointer[error]
	)
	// An arrival dispatched more than a mean gap (floored at 1ms) behind its
	// scheduled time counts as slipped.
	slipTol := time.Duration(float64(time.Second) / reqRate)
	if slipTol < time.Millisecond {
		slipTol = time.Millisecond
	}
	start := time.Now()
	deadline := start.Add(o.Duration)
	at := start
	for {
		at = at.Add(next())
		if at.After(deadline) {
			break
		}
		if d := time.Until(at); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		} else if lag := -d; lag > 0 {
			if lag > res.GenLagMax {
				res.GenLagMax = lag
			}
			if lag > slipTol {
				res.GenSlipped++
			}
		}
		if ctx.Err() != nil {
			break
		}
		res.Offered += int64(o.Batch)
		if inflight.Load() >= int64(o.MaxInFlight) {
			res.Shed += int64(o.Batch)
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inflight.Add(-1)
			t0 := time.Now()
			n, out, err := submit(o.Batch)
			o.Hist.ObserveDuration(time.Since(t0))
			requests.Add(1)
			byOut[out].Add(1)
			switch out {
			case Accepted:
				accepted.Add(int64(n))
				if n < o.Batch {
					rejected.Add(int64(o.Batch - n))
				}
			case Backpressure:
				accepted.Add(int64(n))
				rejected.Add(int64(o.Batch - n))
			case ServerError:
				serverE.Add(1)
			}
			if err != nil {
				lastErr.Store(&err)
			}
		}()
	}
	// Schedule overrun is measured at arrival-loop exit, before waiting for
	// in-flight submits: a slow target stretches wg.Wait, never the clock.
	if overrun := time.Since(deadline); ctx.Err() == nil &&
		overrun > max(o.Duration/20, 5*time.Millisecond) {
		res.GeneratorBound = true
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if res.Elapsed < o.Duration && ctx.Err() == nil {
		// The schedule ran to its deadline; rates denominate over the
		// scheduled window even when the last arrival landed early (a bursty
		// run can end mid off-phase).
		res.Elapsed = o.Duration
	}
	res.Accepted = accepted.Load()
	res.Rejected = rejected.Load()
	res.ServerErrs = serverE.Load()
	res.Requests = requests.Load()
	for i := range byOut {
		res.BatchesByOut[i] = byOut[i].Load()
	}
	if p := lastErr.Load(); p != nil {
		res.LastErr = *p
	}
	return res
}
