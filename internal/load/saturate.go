package load

// The saturation sweep answers "what is the max sustainable tasks/s?" by
// probing the target with short fixed-rate open-loop runs and binary
// searching the rate axis: double from a known-good floor until a probe
// fails the sustainability policy (or the cap is hit), then bisect the
// bracket. This is the serving counterpart of the closed-loop tasks/s in
// BENCH_native.json — the number it finds is the knee of the latency/
// goodput curve, not the peak of a best-case burst.

import (
	"fmt"
	"time"
)

// Policy decides whether one probe's Result counts as sustained service.
type Policy struct {
	// MinAcceptFrac is the floor on Accepted/Offered (default 0.9): below
	// it the target is shedding or refusing too much of the offered load.
	MinAcceptFrac float64
	// MaxP99 bounds the probe's p99 request latency; 0 disables the bound.
	MaxP99 time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MinAcceptFrac <= 0 || p.MinAcceptFrac > 1 {
		p.MinAcceptFrac = 0.9
	}
	return p
}

// Sustainable reports whether r met the policy, with a reason when not.
// A server error always fails: saturation must surface as backpressure,
// never as a 5xx.
func (p Policy) Sustainable(r Result) (bool, string) {
	p = p.withDefaults()
	if r.ServerErrs > 0 {
		return false, fmt.Sprintf("%d server errors", r.ServerErrs)
	}
	if r.Offered == 0 {
		return false, "no offered load"
	}
	frac := float64(r.Accepted) / float64(r.Offered)
	if frac < p.MinAcceptFrac {
		return false, fmt.Sprintf("accepted %.1f%% < %.0f%%", 100*frac, 100*p.MinAcceptFrac)
	}
	if p.MaxP99 > 0 {
		if p99 := time.Duration(r.Hist.Quantile(0.99)); p99 > p.MaxP99 {
			return false, fmt.Sprintf("p99 %s > %s", p99, p.MaxP99)
		}
	}
	return true, ""
}

// Probe runs one fixed-rate open-loop measurement at the given task rate.
type Probe func(rate float64, d time.Duration) (Result, error)

// ProbePoint records one step of the search for diagnostics.
type ProbePoint struct {
	Rate        float64 `json:"rate_tps"`
	Accepted    float64 `json:"accepted_tps"`
	P99Ms       float64 `json:"p99_ms"`
	Sustainable bool    `json:"sustainable"`
	Reason      string  `json:"reason,omitempty"`
	// GeneratorBound marks a probe whose arrival clock overran its schedule
	// (Result.GeneratorBound): the probe measured the generator, not the
	// target, and any knee derived from it is suspect.
	GeneratorBound bool `json:"generator_bound,omitempty"`
}

// Saturate binary-searches the max sustainable task rate in
// [start, capRate]. It doubles from start until a probe fails (or capRate
// is reached), then bisects the bracket `iters` times. It returns the
// accepted rate the best sustainable probe actually achieved — the honest
// throughput — plus the probe trace. If even the starting rate is
// unsustainable, maxRate is 0 and the trace says why.
func Saturate(probe Probe, start, capRate float64, probeDur time.Duration, iters int, pol Policy) (maxRate float64, trace []ProbePoint, err error) {
	if start <= 0 || capRate < start || probeDur <= 0 {
		return 0, nil, fmt.Errorf("load: bad saturate bounds start=%g cap=%g dur=%s", start, capRate, probeDur)
	}
	if iters <= 0 {
		iters = 5
	}
	try := func(rate float64) (bool, Result, error) {
		r, err := probe(rate, probeDur)
		if err != nil {
			return false, r, err
		}
		ok, why := pol.Sustainable(r)
		trace = append(trace, ProbePoint{
			Rate:           rate,
			Accepted:       r.AcceptedRate(),
			P99Ms:          float64(r.Hist.Quantile(0.99)) / 1e6,
			Sustainable:    ok,
			Reason:         why,
			GeneratorBound: r.GeneratorBound,
		})
		return ok, r, nil
	}

	// Doubling phase: find the first unsustainable rate.
	lo, hi := 0.0, 0.0
	best := 0.0
	for rate := start; ; rate *= 2 {
		if rate > capRate {
			rate = capRate
		}
		ok, r, err := try(rate)
		if err != nil {
			return best, trace, err
		}
		if ok {
			lo = rate
			if a := r.AcceptedRate(); a > best {
				best = a
			}
			if rate >= capRate {
				return best, trace, nil // sustained at the cap
			}
			continue
		}
		hi = rate
		break
	}
	if lo == 0 {
		return 0, trace, nil // even `start` was unsustainable
	}
	// Bisection phase.
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		ok, r, err := try(mid)
		if err != nil {
			return best, trace, err
		}
		if ok {
			lo = mid
			if a := r.AcceptedRate(); a > best {
				best = a
			}
		} else {
			hi = mid
		}
	}
	return best, trace, nil
}
