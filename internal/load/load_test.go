package load

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"hdcps/internal/obs"
)

// fastSubmitter accepts everything instantly.
func fastSubmitter(calls *atomic.Int64) Submitter {
	return func(n int) (int, Outcome, error) {
		calls.Add(1)
		return n, Accepted, nil
	}
}

func TestOpenLoopHitsTargetRate(t *testing.T) {
	var calls atomic.Int64
	res := Run(context.Background(), fastSubmitter(&calls), Options{
		Rate: 8000, Batch: 8, Duration: 300 * time.Millisecond, Seed: 1,
	})
	if res.Accepted != res.Offered || res.Offered == 0 {
		t.Fatalf("fast target must accept all offers: %+v", res)
	}
	// Offered rate within 30% of target (short window, Poisson noise,
	// loaded CI box).
	if r := res.OfferedRate(); math.Abs(r-8000)/8000 > 0.30 {
		t.Fatalf("offered rate %.0f strays too far from 8000", r)
	}
	if res.Hist.Count() != res.Requests {
		t.Fatalf("one latency sample per request: %d != %d", res.Hist.Count(), res.Requests)
	}
}

func TestOpenLoopUniformAndBurstyMeanRate(t *testing.T) {
	for _, kind := range []string{"uniform", "bursty"} {
		var calls atomic.Int64
		res := Run(context.Background(), fastSubmitter(&calls), Options{
			Rate: 6000, Batch: 6, Duration: 400 * time.Millisecond,
			Arrivals: kind, Seed: 2,
		})
		if res.Offered == 0 {
			t.Fatalf("%s: no arrivals", kind)
		}
		if r := res.OfferedRate(); math.Abs(r-6000)/6000 > 0.35 {
			t.Fatalf("%s: mean offered rate %.0f strays too far from 6000", kind, r)
		}
	}
}

func TestOpenLoopDoesNotBlockOnSlowTarget(t *testing.T) {
	// A submitter slower than the arrival rate: the open loop must keep
	// offering (shedding beyond MaxInFlight) instead of slowing the clock.
	slow := func(n int) (int, Outcome, error) {
		time.Sleep(50 * time.Millisecond)
		return n, Accepted, nil
	}
	res := Run(context.Background(), slow, Options{
		Rate: 4000, Batch: 4, Duration: 250 * time.Millisecond,
		Seed: 3, MaxInFlight: 2,
	})
	if res.Shed == 0 {
		t.Fatalf("slow target with MaxInFlight=2 must shed: %+v", res)
	}
	if r := res.OfferedRate(); r < 4000*0.6 {
		t.Fatalf("offered rate %.0f collapsed: the loop blocked on the target", r)
	}
}

func TestSlowTargetIsNotGeneratorBound(t *testing.T) {
	// A target far slower than the arrival rate must not trip the clock-slip
	// detector: submits run off the generator goroutine, so only the
	// generator's own clock matters.
	slow := func(n int) (int, Outcome, error) {
		time.Sleep(50 * time.Millisecond)
		return n, Accepted, nil
	}
	res := Run(context.Background(), slow, Options{
		Rate: 2000, Batch: 16, Duration: 250 * time.Millisecond,
		Seed: 6, MaxInFlight: 2,
	})
	if res.GeneratorBound {
		t.Fatalf("slow target flagged generator-bound: lagMax %s slipped %d",
			res.GenLagMax, res.GenSlipped)
	}
}

func TestOverdrivenScheduleIsGeneratorBound(t *testing.T) {
	// A schedule the generator goroutine cannot possibly clock (one arrival
	// every 200ns) must be flagged: its offered rate measures the generator,
	// not the target.
	// MaxInFlight is uncapped so every arrival pays the dispatch cost instead
	// of taking the cheap shed path.
	var calls atomic.Int64
	res := Run(context.Background(), fastSubmitter(&calls), Options{
		Rate: 5e6, Batch: 1, Duration: 20 * time.Millisecond, Seed: 7,
		MaxInFlight: 1 << 30,
	})
	if !res.GeneratorBound {
		t.Fatalf("overdriven schedule not flagged generator-bound: %+v", res)
	}
	if res.GenSlipped == 0 || res.GenLagMax <= 0 {
		t.Fatalf("slip accounting empty on an overdriven run: lagMax %s slipped %d",
			res.GenLagMax, res.GenSlipped)
	}
}

func TestOutcomeAccounting(t *testing.T) {
	var i atomic.Int64
	mixed := func(n int) (int, Outcome, error) {
		switch i.Add(1) % 3 {
		case 0:
			return 0, ServerError, errors.New("boom")
		case 1:
			return 0, Backpressure, nil
		default:
			return n, Accepted, nil
		}
	}
	res := Run(context.Background(), mixed, Options{
		Rate: 3000, Batch: 3, Duration: 300 * time.Millisecond, Seed: 4,
	})
	if res.ServerErrs == 0 || res.Rejected == 0 || res.Accepted == 0 {
		t.Fatalf("all three outcomes must be counted: %+v", res)
	}
	if res.LastErr == nil {
		t.Fatal("server-error detail must be retained")
	}
	sum := res.BatchesByOut[Accepted] + res.BatchesByOut[Backpressure] + res.BatchesByOut[ServerError]
	if sum != res.Requests {
		t.Fatalf("outcome batches %d != requests %d", sum, res.Requests)
	}
}

func TestRunRespectsContextCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	var calls atomic.Int64
	start := time.Now()
	Run(ctx, fastSubmitter(&calls), Options{Rate: 100, Batch: 1, Duration: 10 * time.Second, Seed: 5})
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancelled run did not stop promptly")
	}
}

// stepTarget models a target with a hard capacity knee: rates at or below
// cap are fully accepted with low latency; above it the excess is refused.
func stepTarget(cap float64) Probe {
	return func(rate float64, d time.Duration) (Result, error) {
		res := Result{Hist: newTestHist(2 * time.Millisecond)}
		res.Elapsed = d
		res.Offered = int64(rate * d.Seconds())
		acc := res.Offered
		if rate > cap {
			acc = int64(cap * d.Seconds())
			res.Rejected = res.Offered - acc
		}
		res.Accepted = acc
		return res, nil
	}
}

func newTestHist(lat time.Duration) *obs.Histogram {
	h := obs.NewHistogram()
	for i := 0; i < 100; i++ {
		h.ObserveDuration(lat)
	}
	return h
}

func TestSaturateFindsTheKnee(t *testing.T) {
	max, trace, err := Saturate(stepTarget(10000), 1000, 1e6, 100*time.Millisecond, 8, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	// The knee is 10k: everything <= 10k accepts 100%, above it the
	// accept fraction falls below 0.9 once offered > cap/0.9 ≈ 11.1k.
	if max < 9000 || max > 11200 {
		t.Fatalf("knee estimate %.0f outside [9000, 11200] (trace %+v)", max, trace)
	}
	if len(trace) < 4 {
		t.Fatalf("expected doubling + bisection probes, got %d", len(trace))
	}
}

func TestSaturateUnsustainableStart(t *testing.T) {
	max, trace, err := Saturate(stepTarget(10), 1000, 1e6, 50*time.Millisecond, 4, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if max != 0 {
		t.Fatalf("unsustainable floor must report 0, got %.0f", max)
	}
	if len(trace) == 0 || trace[0].Sustainable {
		t.Fatalf("trace must record the failed floor probe: %+v", trace)
	}
}

func TestSaturateSustainedAtCap(t *testing.T) {
	max, _, err := Saturate(stepTarget(1e9), 1000, 8000, 50*time.Millisecond, 4, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(max-8000) > 1 {
		t.Fatalf("cap-sustained search must return the cap's accepted rate, got %.0f", max)
	}
}

func TestPolicyServerErrorAlwaysFails(t *testing.T) {
	r := Result{Offered: 100, Accepted: 100, ServerErrs: 1, Hist: obs.NewHistogram(), Elapsed: time.Second}
	if ok, why := (Policy{}).Sustainable(r); ok || why == "" {
		t.Fatal("a server error must make the probe unsustainable")
	}
}
