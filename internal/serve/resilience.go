package serve

// Network-boundary resilience: the pieces that let a submit stream survive a
// flaky network without losing or duplicating accepted work.
//
// The contract is built on the admitted-prefix rule the error envelope
// already carries: every submit response — success or failure — reports
// exactly how many NDJSON lines of *this request* are durably admitted. A
// retrying client resends only the unconfirmed suffix, tagged with a stream
// identity and the count it believes is admitted. The tracker below closes
// the one remaining hole: a response lost in flight *after* the server
// admitted work. On retry the server compares the client's believed offset
// against its own recorded absolute count for the stream and silently skips
// the lines it already admitted — counting them in the response's accepted
// total so the client's accounting converges — instead of re-submitting
// them. Exactly-once admission, proven end to end by the netchaos soak:
// client-side admitted totals, the server's accepted counter, and the
// engine's conservation ledger must all agree at quiescence.

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"

	"hdcps/internal/obs"
)

// Resume-protocol headers. A client that wants exactly-once resubmission
// sends HeaderStreamID (any non-empty token unique per logical stream and
// job) and HeaderStreamOffset (how many lines of the stream it believes the
// server has admitted). HeaderDeadlineMs bounds one request's server-side
// processing; expiry returns 503 with the admitted prefix, so deadlines and
// resume compose.
const (
	HeaderStreamID     = "X-Stream-Id"
	HeaderStreamOffset = "X-Stream-Offset"
	HeaderDeadlineMs   = "X-Request-Deadline-Ms"
	// HeaderAckFlush opts a submit request into the progress-ack protocol:
	// the server commits 200 immediately, emits one NDJSON ack line per
	// flush ({"accepted":N}, cumulative for the request), and delivers any
	// later failure in-band as a terminal ack line. The persistent-stream
	// client keys off it to confirm batches without closing the request.
	HeaderAckFlush = "X-Ack-Flush"
)

// streamKey identifies one resumable stream: stream IDs are scoped per job,
// so independent clients cannot collide across tenants.
type streamKey struct {
	job uint32
	id  string
}

// streamTracker remembers, per stream, the absolute number of lines admitted
// into the engine. Bounded: when the map reaches its cap the oldest streams
// are evicted in insertion order. An evicted stream degrades gracefully — the
// server simply trusts the client's offset, which is safe because the client
// only advances its offset on responses it actually received; eviction can
// only forget admissions whose responses were lost, the same exposure an
// untracked server has on every request.
type streamTracker struct {
	mu       sync.Mutex
	max      int
	byKey    map[streamKey]int64
	order    []streamKey // insertion order, for eviction
	inflight map[streamKey]chan struct{}
}

func newStreamTracker(max int) *streamTracker {
	if max <= 0 {
		max = 4096
	}
	return &streamTracker{
		max:      max,
		byKey:    make(map[streamKey]int64, max/4),
		inflight: make(map[streamKey]chan struct{}),
	}
}

// acquire serializes attempts of one stream. Without it a fast retry could
// race the prior attempt's handler, which may still be admitting lines
// buffered from the dead connection: the retry would read a stale tracker
// count and re-admit the overlap. Bounded wait — the prior handler is cut by
// the stall detector or its own deadline — and false means ctx died first.
func (t *streamTracker) acquire(ctx context.Context, k streamKey) bool {
	for {
		t.mu.Lock()
		ch, busy := t.inflight[k]
		if !busy {
			t.inflight[k] = make(chan struct{})
			t.mu.Unlock()
			return true
		}
		t.mu.Unlock()
		select {
		case <-ctx.Done():
			return false
		case <-ch:
		}
	}
}

// release unblocks the stream's next waiting attempt.
func (t *streamTracker) release(k streamKey) {
	t.mu.Lock()
	close(t.inflight[k])
	delete(t.inflight, k)
	t.mu.Unlock()
}

// admitted returns the absolute line count recorded for the stream (0 if
// unknown — a fresh stream and an evicted one look the same by design).
func (t *streamTracker) admitted(k streamKey) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byKey[k]
}

// record stores the stream's new absolute admitted count. Counts only move
// forward: a stale retry racing a newer one can never roll the record back.
func (t *streamTracker) record(k streamKey, admitted int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.byKey[k]; ok {
		if admitted > cur {
			t.byKey[k] = admitted
		}
		return
	}
	for len(t.byKey) >= t.max && len(t.order) > 0 {
		old := t.order[0]
		t.order = t.order[1:]
		delete(t.byKey, old)
	}
	t.byKey[k] = admitted
	t.order = append(t.order, k)
}

// resilStats are the server's network-boundary decision counters, mirrored
// onto the obs recorder's external row when one is attached (HTTP handlers
// run outside the worker fleet).
type resilStats struct {
	shed         atomic.Int64 // submits/creates refused: draining or global overload
	deadlineHits atomic.Int64 // requests cut by their propagated deadline
	connAborts   atomic.Int64 // submit bodies that died mid-stream (stall, reset)
	resumes      atomic.Int64 // submit requests that resumed a tracked stream
}

func (s *Server) countShed() {
	s.resil.shed.Add(1)
	if s.rec != nil {
		s.rec.Add(obs.External, obs.CServeShed, 1)
	}
}

func (s *Server) countDeadlineHit() {
	s.resil.deadlineHits.Add(1)
	if s.rec != nil {
		s.rec.Add(obs.External, obs.CServeDeadlineHits, 1)
	}
}

func (s *Server) countConnAbort() {
	s.resil.connAborts.Add(1)
	if s.rec != nil {
		s.rec.Add(obs.External, obs.CServeConnAborts, 1)
	}
}

func (s *Server) countResume() {
	s.resil.resumes.Add(1)
	if s.rec != nil {
		s.rec.Add(obs.External, obs.CServeResumes, 1)
	}
}

// parseDeadlineMs reads HeaderDeadlineMs; 0 means no deadline. Malformed or
// non-positive values are treated as absent rather than rejected — a clock
// header should never turn a valid submit into a 400.
func parseDeadlineMs(v string) int64 {
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return ms
}

// parseStreamOffset reads HeaderStreamOffset; absent or malformed is 0.
func parseStreamOffset(v string) int64 {
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}
