package serve

// The zero-allocation submit ingest path. The serving knee used to sit ~60×
// below the native engine's throughput because every NDJSON line paid a
// bufio.Scanner copy, a reflective json.Unmarshal, and a handful of
// per-flush heap allocations. This file removes all of it, applying the
// same amortize-every-shared-touch idiom the MultiQueue uses internally:
//
//   - lineFramer frames newline-delimited lines straight out of a pooled
//     read buffer without copying; a returned line is a sub-slice of the
//     buffer, valid until the next call.
//   - parseTaskSpecFast decodes the restricted NDJSON grammar the clients
//     actually emit ({"node":N,"prio":N,"data":N}, any key order, JSON
//     whitespace) with zero allocations. Anything outside that grammar —
//     escapes, floats, unknown keys, overflow, malformed bytes — falls back
//     to encoding/json on that line, so the accept/reject decision and the
//     decoded fields (and even the error text) stay bit-identical with the
//     old per-line json.Unmarshal. FuzzTaskSpecParser holds that contract.
//   - sync.Pools recycle the framer (with its 64KB buffer), the
//     []task.Task flush batches, and the response/error body buffers, so a
//     steady-state submit stream allocates nothing per line.
//
// The same hand-rolled encoder is shared with the client side
// (appendTaskSpecLine), so both halves of the boundary stay allocation-free.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"

	"hdcps/internal/graph"
	"hdcps/internal/task"
)

// taskFromSpec is the wire→engine conversion shared by the handler and the
// ingest benchmarks.
func taskFromSpec(sp TaskSpec) task.Task {
	return task.Task{Node: graph.NodeID(sp.Node), Prio: sp.Prio, Data: sp.Data}
}

// maxLineBytes caps one NDJSON line, matching the 1MB bufio.Scanner buffer
// the previous implementation used. Beyond it the framer reports
// errLineTooLong so the handler can name the offending line instead of
// returning a generic read error.
const maxLineBytes = 1 << 20

// errLineTooLong marks a single NDJSON line that exceeded maxLineBytes. The
// handler maps it to a 400 naming the line number and the admitted prefix,
// so the client can repair the line instead of blind-retrying the stream.
var errLineTooLong = errors.New("line too long")

// lineFramer yields newline-delimited lines from an io.Reader without
// copying: each returned line is a sub-slice of the framer's buffer, valid
// until the next call. Framing matches bufio.ScanLines exactly — the
// trailing '\n' is consumed, one trailing '\r' is stripped, and a final
// unterminated line is returned at EOF.
type lineFramer struct {
	r     io.Reader
	buf   []byte
	start int // window start: first unconsumed byte
	end   int // window end: one past the last buffered byte
	scan  int // no '\n' exists in buf[start:scan) — resume searches here
	eof   bool
	err   error // deferred read error (data buffered before it drains first)
}

// framerPool recycles framers with their grown buffers; a steady-state
// server frames every stream out of a handful of warm 64KB buffers.
var framerPool = sync.Pool{
	New: func() any {
		return &lineFramer{buf: make([]byte, 64*1024)}
	},
}

func newLineFramer(r io.Reader) *lineFramer {
	fr := framerPool.Get().(*lineFramer)
	fr.r = r
	fr.start, fr.end, fr.scan = 0, 0, 0
	fr.eof = false
	fr.err = nil
	return fr
}

// release returns the framer to the pool. The caller must not use any line
// slice it obtained from this framer afterwards.
func (fr *lineFramer) release() {
	fr.r = nil
	framerPool.Put(fr)
}

// dropCR strips one trailing '\r', mirroring bufio.ScanLines.
func dropCR(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\r' {
		return b[:n-1]
	}
	return b
}

// buffered reports whether next() can return a line without touching the
// underlying reader — a complete line is framed, a deferred EOF tail or
// read error is pending. The handler uses it to flush batched work before
// blocking on the network (the flush-on-idle policy for acked streams).
func (fr *lineFramer) buffered() bool {
	if i := bytes.IndexByte(fr.buf[fr.scan:fr.end], '\n'); i >= 0 {
		return true
	}
	fr.scan = fr.end
	return fr.eof || fr.err != nil
}

// next returns the next line. io.EOF signals a clean end of stream;
// errLineTooLong a line beyond maxLineBytes; any other error is the
// underlying reader's. Lines framed before a read error surface first,
// exactly like bufio.Scanner.
func (fr *lineFramer) next() ([]byte, error) {
	for {
		// A complete line already in the window?
		if i := bytes.IndexByte(fr.buf[fr.scan:fr.end], '\n'); i >= 0 {
			nl := fr.scan + i
			line := dropCR(fr.buf[fr.start:nl])
			fr.start = nl + 1
			fr.scan = fr.start
			return line, nil
		}
		fr.scan = fr.end
		if fr.eof || fr.err != nil {
			if fr.start < fr.end {
				// Final unterminated line (EOF) or the data framed ahead of a
				// deferred error.
				if fr.eof && fr.err == nil {
					line := dropCR(fr.buf[fr.start:fr.end])
					fr.start = fr.end
					fr.scan = fr.start
					return line, nil
				}
			}
			if fr.err != nil {
				return nil, fr.err
			}
			return nil, io.EOF
		}
		// Need more bytes: make room, then read.
		if fr.end == len(fr.buf) {
			if fr.start > 0 {
				copy(fr.buf, fr.buf[fr.start:fr.end])
				fr.end -= fr.start
				fr.scan -= fr.start
				fr.start = 0
			} else if len(fr.buf) < maxLineBytes+1 {
				grown := make([]byte, min(2*len(fr.buf), maxLineBytes+1))
				copy(grown, fr.buf[:fr.end])
				fr.buf = grown
			} else {
				return nil, errLineTooLong
			}
		}
		n, err := fr.r.Read(fr.buf[fr.end:])
		fr.end += n
		if err != nil {
			if err == io.EOF {
				fr.eof = true
			} else {
				fr.err = err
			}
		}
	}
}

// parseTaskSpecFast decodes one NDJSON task line with zero allocations. It
// accepts exactly the restricted grammar the clients emit — an object with
// integer-valued "node"/"prio"/"data" members in any order, separated by
// JSON whitespace — and reports ok=false for anything else, telling the
// caller to fall back to encoding/json so the observable accept/reject
// decision, decoded fields, and error text stay bit-identical with a plain
// json.Unmarshal. Notably it falls back (rather than deciding) on overflow,
// leading zeros, floats, escapes, duplicate-with-garbage, and trailing
// content: encoding/json is the single source of truth for every edge.
func parseTaskSpecFast(b []byte) (TaskSpec, bool) {
	var spec TaskSpec
	i, n := 0, len(b)
	skipWS := func() {
		for i < n && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r' || b[i] == '\n') {
			i++
		}
	}
	skipWS()
	if i >= n || b[i] != '{' {
		return spec, false
	}
	i++
	skipWS()
	if i < n && b[i] == '}' {
		i++
		skipWS()
		return spec, i == n
	}
	for {
		// Key: a plain, unescaped "node" / "prio" / "data".
		if i >= n || b[i] != '"' || i+5 >= n || b[i+5] != '"' {
			return spec, false
		}
		var field int // 0 node, 1 prio, 2 data
		switch {
		case b[i+1] == 'n' && b[i+2] == 'o' && b[i+3] == 'd' && b[i+4] == 'e':
			field = 0
		case b[i+1] == 'p' && b[i+2] == 'r' && b[i+3] == 'i' && b[i+4] == 'o':
			field = 1
		case b[i+1] == 'd' && b[i+2] == 'a' && b[i+3] == 't' && b[i+4] == 'a':
			field = 2
		default:
			return spec, false
		}
		i += 6
		skipWS()
		if i >= n || b[i] != ':' {
			return spec, false
		}
		i++
		skipWS()
		// Value: a plain JSON integer. '-' is only meaningful for prio —
		// for the unsigned fields encoding/json errors, so fall back.
		neg := false
		if i < n && b[i] == '-' {
			if field != 1 {
				return spec, false
			}
			neg = true
			i++
		}
		ds := i
		var v uint64
		for i < n && b[i] >= '0' && b[i] <= '9' {
			d := uint64(b[i] - '0')
			if v > (1<<64-1-d)/10 {
				return spec, false // overflow: let encoding/json phrase the error
			}
			v = v*10 + d
			i++
		}
		switch {
		case i == ds:
			return spec, false // no digits
		case b[ds] == '0' && i-ds > 1:
			return spec, false // leading zero: invalid JSON number
		}
		switch field {
		case 0:
			if v > 1<<32-1 {
				return spec, false
			}
			spec.Node = uint32(v)
		case 1:
			if neg {
				if v > 1<<63 {
					return spec, false
				}
				spec.Prio = -int64(v)
			} else {
				if v > 1<<63-1 {
					return spec, false
				}
				spec.Prio = int64(v)
			}
		case 2:
			spec.Data = v
		}
		skipWS()
		if i >= n {
			return spec, false
		}
		switch b[i] {
		case ',':
			i++
			skipWS()
			continue
		case '}':
			i++
			skipWS()
			return spec, i == n
		default:
			return spec, false
		}
	}
}

// parseTaskSpecLine is the full ingest decode: the zero-alloc fast path,
// with encoding/json as the semantic authority for every line the fast
// grammar does not cover.
func parseTaskSpecLine(b []byte) (TaskSpec, error) {
	if spec, ok := parseTaskSpecFast(b); ok {
		return spec, nil
	}
	var spec TaskSpec
	err := json.Unmarshal(b, &spec)
	return spec, err
}

// appendTaskSpecLine appends sp encoded as one NDJSON line, byte-identical
// to json.Encoder's output for TaskSpec ({"node":N,"prio":N,"data":N} plus
// a trailing newline) without the per-call encoder state.
func appendTaskSpecLine(dst []byte, sp TaskSpec) []byte {
	dst = append(dst, `{"node":`...)
	dst = strconv.AppendUint(dst, uint64(sp.Node), 10)
	dst = append(dst, `,"prio":`...)
	dst = strconv.AppendInt(dst, sp.Prio, 10)
	dst = append(dst, `,"data":`...)
	dst = strconv.AppendUint(dst, sp.Data, 10)
	dst = append(dst, '}', '\n')
	return dst
}

// batchPool recycles the per-request []task.Task flush batches. Safe
// because the engine's transport copies tasks out of the submitted slice
// before Submit returns.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]task.Task, 0, submitFlush)
		return &b
	},
}

// bodyBuf is a pooled response/request body builder: a byte buffer plus a
// lazily attached json.Encoder for the structured (error) bodies. The hot
// 200 path appends bytes directly.
type bodyBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var bodyPool = sync.Pool{
	New: func() any {
		b := &bodyBuf{}
		b.enc = json.NewEncoder(&b.buf)
		return b
	},
}

func getBody() *bodyBuf {
	b := bodyPool.Get().(*bodyBuf)
	b.buf.Reset()
	return b
}

func putBody(b *bodyBuf) { bodyPool.Put(b) }

// IngestBenchBody builds an n-line NDJSON submit body cycling nodes over
// [0, nodes) — the corpus the ingest benchmarks and the allocs/line
// measurement share.
func IngestBenchBody(n, nodes int) []byte {
	var buf []byte
	for i := 0; i < n; i++ {
		buf = appendTaskSpecLine(buf, TaskSpec{
			Node: uint32(i % nodes),
			Prio: int64(i % 7),
			Data: uint64(i),
		})
	}
	return buf
}

// IngestBenchLoop runs the server's parse half of the ingest hot path —
// framing, decoding, batch building, pool recycling — over one NDJSON body,
// exactly as handleSubmit does but with the engine swapped out. It returns
// the number of lines decoded. cmd/hdcps-bench measures allocs/line over
// this loop for BENCH_serve.json's ingest_allocs_per_line; the
// BenchmarkSubmitIngest family wraps it too.
func IngestBenchLoop(body []byte) (int, error) {
	fr := newLineFramer(bytes.NewReader(body))
	defer fr.release()
	bb := batchPool.Get().(*[]task.Task)
	batch := (*bb)[:0]
	defer func() {
		*bb = batch[:0]
		batchPool.Put(bb)
	}()
	lines := 0
	for {
		raw, err := fr.next()
		if err == io.EOF {
			return lines, nil
		}
		if err != nil {
			return lines, err
		}
		if len(raw) == 0 {
			continue
		}
		lines++
		spec, err := parseTaskSpecLine(raw)
		if err != nil {
			return lines, fmt.Errorf("line %d: bad task spec: %w", lines, err)
		}
		batch = append(batch, taskFromSpec(spec))
		if len(batch) >= submitFlush {
			batch = batch[:0]
		}
	}
}

// EncodeBenchLoop runs the client's encode half of the boundary — the
// pooled pre-encoded line writer — over specs, returning bytes produced.
// cmd/hdcps-bench measures allocs/line over it for encode_allocs_per_line.
func EncodeBenchLoop(specs []TaskSpec) int {
	b := getBody()
	defer putBody(b)
	buf := b.buf.AvailableBuffer()
	for _, sp := range specs {
		buf = appendTaskSpecLine(buf, sp)
	}
	b.buf.Write(buf)
	return b.buf.Len()
}
