package serve

// The resilient side of the client: SubmitStream retries one logical NDJSON
// stream across transport faults and backpressure until every task is
// admitted exactly once, the stream hits a terminal error, or the retry
// policy runs out.
//
// The loop leans on two server contracts (resilience.go):
//
//   - Every response — success, shed, deadline cut, stall abort — reports the
//     admitted prefix of the request, so the client resends only the
//     unconfirmed suffix.
//   - The stream tracker closes the lost-response hole: each attempt carries
//     X-Stream-Id and X-Stream-Offset, and a server that already admitted
//     more than the client knows skips the overlap instead of re-admitting
//     it. A transport error therefore never forces a choice between
//     possible loss and possible duplication — the retry reconciles.
//
// Backoff is capped exponential with full jitter, seeded so tests are
// reproducible, and honors the server's Retry-After / retry_after_ms hints
// as a floor. A per-stream attempt cap and cumulative backoff budget bound
// how long one stream can stay in flight.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"hdcps/internal/load"
)

// RetryPolicy bounds one stream's retry loop. The zero value means
// "defaults", not "no retries" — use MaxAttempts: 1 for a single shot.
type RetryPolicy struct {
	// MaxAttempts caps total attempts per stream (first try included).
	// 0 defaults to 8.
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff window (full jitter:
	// sleep ~ hint + U[0, min(MaxBackoff, Base*2^n))). 0 defaults to 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the jitter window. 0 defaults to 2s.
	MaxBackoff time.Duration
	// Budget caps cumulative backoff sleep per stream; once spent, the next
	// retryable failure is terminal. 0 defaults to 30s.
	Budget time.Duration
	// RequestTimeout bounds each attempt and is propagated to the server as
	// X-Request-Deadline-Ms, so both sides give up together. 0 disables.
	RequestTimeout time.Duration
	// Seed drives the jitter RNG (reproducible backoff in tests). 0
	// defaults to 1.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Budget <= 0 {
		p.Budget = 30 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// RetryStats aggregates the retry loop's decisions across streams (atomics:
// share one across concurrent submitters and read it live).
type RetryStats struct {
	Attempts  atomic.Int64 // HTTP attempts, first tries included
	Retries   atomic.Int64 // attempts beyond each stream's first
	Resumes   atomic.Int64 // attempts that resumed a partially-admitted stream
	GiveUps   atomic.Int64 // streams abandoned with work unadmitted
	BackoffNs atomic.Int64 // cumulative backoff slept
}

func (s *RetryStats) String() string {
	return fmt.Sprintf("attempts %d, retries %d, resumes %d, giveups %d, backoff %s",
		s.Attempts.Load(), s.Retries.Load(), s.Resumes.Load(), s.GiveUps.Load(),
		time.Duration(s.BackoffNs.Load()).Round(time.Millisecond))
}

// ErrRetriesExhausted marks a stream abandoned for a bounded-policy reason
// (attempt cap or backoff budget) while its last failure was retryable. The
// load adapter maps it to Backpressure: the work was shed, not broken.
var ErrRetriesExhausted = errors.New("serve client: retries exhausted")

// streamIDs must be unique per logical stream (a collision would make the
// server skip another stream's lines): process-local sequence plus the
// process start time.
var (
	streamSeq   atomic.Uint64
	streamEpoch = time.Now().UnixNano()
)

func newStreamID() string {
	return fmt.Sprintf("%x-%x", streamEpoch, streamSeq.Add(1))
}

// retryable reports whether an attempt outcome is worth another try:
// transport errors (no response at all) and the server's explicit
// backpressure/timeout answers.
func retryable(status int, err error) bool {
	if err != nil && status == 0 {
		return true
	}
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusRequestTimeout:
		return true
	}
	return false
}

// submitResumable posts one attempt of a resumable stream: the unconfirmed
// suffix, tagged with the stream identity and believed-admitted offset.
// Returns the admitted count of this attempt, the status (0 on transport
// error), and the server's retry hint if any.
func (c *Client) submitResumable(ctx context.Context, jobID uint32, streamID string,
	offset int64, specs []TaskSpec, reqTimeout time.Duration) (int64, int, time.Duration, error) {
	body := encodeNDJSON(specs)
	defer ndjsonPool.Put(body)
	if reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, reqTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.submitURL(jobID), bytes.NewReader(*body))
	if err != nil {
		return 0, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(HeaderStreamID, streamID)
	req.Header.Set(HeaderStreamOffset, strconv.FormatInt(offset, 10))
	if reqTimeout > 0 {
		req.Header.Set(HeaderDeadlineMs, strconv.FormatInt(reqTimeout.Milliseconds(), 10))
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	hint := retryHint(resp.Header)
	if resp.StatusCode == http.StatusOK {
		var res submitResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			// The admissions landed but the response died mid-body: the next
			// attempt reconciles through the stream tracker.
			return 0, 0, hint, err
		}
		return res.Accepted, resp.StatusCode, hint, nil
	}
	var eb errorBody
	_ = json.NewDecoder(io.LimitReader(resp.Body, 64*1024)).Decode(&eb)
	if ms := time.Duration(eb.RetryAfterMs) * time.Millisecond; ms > hint {
		hint = ms
	}
	return eb.Accepted, resp.StatusCode, hint, nil
}

// retryHint parses a Retry-After header (delay-seconds form only).
func retryHint(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	sec, err := strconv.Atoi(v)
	if err != nil || sec < 0 {
		return 0
	}
	return time.Duration(sec) * time.Second
}

// SubmitStream submits specs as one exactly-once resumable stream, retrying
// per pol until everything is admitted or the stream dies. It returns how
// many tasks were durably admitted — on error, the admitted prefix is still
// accurate, proven by the netchaos soak's three-way ledger agreement.
func (c *Client) SubmitStream(ctx context.Context, jobID uint32, specs []TaskSpec,
	pol RetryPolicy, st *RetryStats) (int64, error) {
	return c.submitStreamID(ctx, jobID, newStreamID(), specs, pol, st)
}

func (c *Client) submitStreamID(ctx context.Context, jobID uint32, streamID string,
	specs []TaskSpec, pol RetryPolicy, st *RetryStats) (int64, error) {
	pol = pol.withDefaults()
	rng := rand.New(rand.NewSource(int64(pol.Seed ^ streamSeq.Add(1))))
	var (
		admitted   int64
		budgetLeft = pol.Budget
		lastStatus int
		lastErr    error
	)
	total := int64(len(specs))
	for attempt := 1; ; attempt++ {
		if st != nil {
			st.Attempts.Add(1)
			if attempt > 1 {
				st.Retries.Add(1)
			}
			if admitted > 0 {
				st.Resumes.Add(1)
			}
		}
		acc, status, hint, err := c.submitResumable(ctx, jobID, streamID, admitted, specs[admitted:], pol.RequestTimeout)
		admitted += acc
		if status == http.StatusOK && err == nil && admitted >= total {
			return admitted, nil
		}
		lastStatus, lastErr = status, err
		if err == nil {
			lastErr = fmt.Errorf("status %d", status)
		}
		if err != nil && status == 0 && ctx.Err() != nil {
			// The caller's context died, not the attempt's: stop retrying.
			if st != nil {
				st.GiveUps.Add(1)
			}
			return admitted, fmt.Errorf("serve client: stream %s: %w", streamID, ctx.Err())
		}
		if !retryable(status, err) {
			if st != nil {
				st.GiveUps.Add(1)
			}
			return admitted, fmt.Errorf("serve client: stream %s: terminal after %d attempts: %w", streamID, attempt, lastErr)
		}
		if attempt >= pol.MaxAttempts {
			break
		}
		// Full-jitter capped exponential window, floored at the server hint.
		window := pol.BaseBackoff << min(attempt-1, 20)
		if window > pol.MaxBackoff || window <= 0 {
			window = pol.MaxBackoff
		}
		sleep := hint + time.Duration(rng.Int63n(int64(window)+1))
		if sleep > budgetLeft {
			break
		}
		budgetLeft -= sleep
		if st != nil {
			st.BackoffNs.Add(int64(sleep))
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			if st != nil {
				st.GiveUps.Add(1)
			}
			return admitted, fmt.Errorf("serve client: stream %s: %w", streamID, ctx.Err())
		case <-timer.C:
		}
	}
	if st != nil {
		st.GiveUps.Add(1)
	}
	return admitted, fmt.Errorf("%w: stream %s: %d/%d admitted, last status %d: %v",
		ErrRetriesExhausted, streamID, admitted, total, lastStatus, lastErr)
}

// RetrySubmitter adapts SubmitStream to the open-loop harness. A stream
// that exhausts its retry policy on backpressure counts as shed
// (Backpressure), matching the harness's view that refused work under
// overload is expected; only terminal server answers become ServerError.
// gen must be safe for concurrent use; st may be nil.
func (c *Client) RetrySubmitter(ctx context.Context, jobID uint32, gen func(n int) []TaskSpec,
	pol RetryPolicy, st *RetryStats) load.Submitter {
	return func(n int) (int, load.Outcome, error) {
		acc, err := c.SubmitStream(ctx, jobID, gen(n), pol, st)
		switch {
		case err == nil:
			return int(acc), load.Accepted, nil
		case errors.Is(err, ErrRetriesExhausted):
			return int(acc), load.Backpressure, nil
		default:
			return int(acc), load.ServerError, err
		}
	}
}

// WaitReady polls /readyz until the server reports ready, ctx expires, or
// the deadline passes. Transport errors are retried (the server may still
// be binding its listener) — the smoke scripts' startup gate.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var lastErr error
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := c.hc().Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("readyz: %s", resp.Status)
		} else {
			lastErr = err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve client: server not ready: %w (last: %v)", ctx.Err(), lastErr)
		case <-time.After(50 * time.Millisecond):
		}
	}
}
