package serve

// PersistentStream is the client half of the progress-ack protocol (ack.go):
// one long-lived NDJSON POST per (connection, job) held open across batches
// via an io.Pipe, so the per-batch cost is an encode and a pipe write —
// not a bytes.Buffer + json.Encoder + http.NewRequest + URL Sprintf + full
// HTTP round-trip. Batches are confirmed by the server's per-flush ack
// lines; Submit blocks until its lines are covered, so accepted counts and
// per-batch latency stay truthful in the open-loop harness.
//
// Faults do not weaken the exactly-once contract — they route through the
// same admitted-prefix resume protocol the one-shot retrying client uses:
// every attempt of a stream carries the same X-Stream-Id, the reconnect
// offset names the first line being resent, and the server-side tracker
// skips (but still confirms) lines a prior attempt already admitted. The
// netchaos soak drives this client through every fault mix and proves
// client-confirmed == server-accepted == engine-submitted.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hdcps/internal/load"
)

// errStreamClosed reports a Submit after Close.
var errStreamClosed = errors.New("serve client: persistent stream closed")

// streamBatch is one Submit's lines, pre-encoded: start is the absolute
// line index of the first line in the stream's numbering.
type streamBatch struct {
	start int64
	lines int64
	buf   []byte
}

// lineBufPool recycles the pre-encoded batch blobs.
var lineBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// streamWaiter blocks one Submit until the stream's confirmed count covers
// its batch (or the stream dies).
type streamWaiter struct {
	end int64 // absolute line index one past the batch
	ch  chan struct{}
}

// PersistentStream submits batches over one logical resumable stream.
// Safe for concurrent Submit calls; lines are confirmed in submission
// order. Construct with Client.PersistentStream, finish with Close.
type PersistentStream struct {
	c     *Client
	hc    *http.Client // no overall timeout: the request is open-ended
	url   string
	jobID uint32
	pol   RetryPolicy
	st    *RetryStats
	id    string

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []streamBatch // unconfirmed batches, oldest first
	written   int64         // absolute lines queued
	confirmed int64         // absolute lines the server has acked
	waiters   []streamWaiter
	gen       int64 // attempt generation: bumped to kill a stale pump
	closed    bool
	err       error // terminal stream error

	done chan struct{}
}

// PersistentStream opens a stream against jobID. The manager goroutine
// connects lazily — no request is made until the first Submit — and
// reconnects across faults per pol. The attempt and backoff-budget counters
// reset whenever the server confirms progress, so a long-lived stream is
// bounded per outage, not per lifetime. pol.RequestTimeout acts as the
// ack-progress watchdog: an attempt whose unconfirmed lines see no ack for
// that long is cut and retried (0 disables).
func (c *Client) PersistentStream(jobID uint32, pol RetryPolicy, st *RetryStats) *PersistentStream {
	base := c.hc()
	ps := &PersistentStream{
		c: c,
		// Same transport, but never the wrapping client's overall Timeout —
		// that clock would sever every stream that outlives it.
		hc:    &http.Client{Transport: base.Transport, CheckRedirect: base.CheckRedirect, Jar: base.Jar},
		url:   fmt.Sprintf("%s/v1/jobs/%d/submit", c.Base, jobID),
		jobID: jobID,
		pol:   pol.withDefaults(),
		st:    st,
		id:    newStreamID(),
		done:  make(chan struct{}),
	}
	ps.cond = sync.NewCond(&ps.mu)
	go ps.run()
	return ps
}

// Submit queues specs on the stream and blocks until the server confirms
// them (or the stream dies). It returns how many of THIS batch's lines were
// durably admitted — on error the count is the confirmed overlap, so the
// caller's accounting still converges with the server's ledger. A ctx cut
// abandons the wait, not the lines: they may still be admitted by a later
// reconnect, so prefer stream Close over ctx cancellation for accounting.
func (ps *PersistentStream) Submit(ctx context.Context, specs []TaskSpec) (int64, error) {
	if len(specs) == 0 {
		return 0, nil
	}
	bp := lineBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for _, sp := range specs {
		buf = appendTaskSpecLine(buf, sp)
	}
	*bp = buf

	ps.mu.Lock()
	if ps.err != nil {
		err := ps.err
		ps.mu.Unlock()
		lineBufPool.Put(bp)
		return 0, err
	}
	if ps.closed {
		ps.mu.Unlock()
		lineBufPool.Put(bp)
		return 0, errStreamClosed
	}
	start := ps.written
	n := int64(len(specs))
	ps.pending = append(ps.pending, streamBatch{start: start, lines: n, buf: buf})
	ps.written += n
	w := streamWaiter{end: start + n, ch: make(chan struct{})}
	ps.waiters = append(ps.waiters, w)
	ps.cond.Broadcast()
	ps.mu.Unlock()

	select {
	case <-w.ch:
	case <-ctx.Done():
		ps.mu.Lock()
		confirmed := ps.confirmed
		ps.mu.Unlock()
		return clampOverlap(confirmed, start, n), ctx.Err()
	}
	ps.mu.Lock()
	confirmed, err := ps.confirmed, ps.err
	ps.mu.Unlock()
	admitted := clampOverlap(confirmed, start, n)
	if admitted < n && err == nil {
		err = errStreamClosed
	}
	if admitted == n {
		err = nil
	}
	return admitted, err
}

// clampOverlap is how many of [start, start+n) lie below confirmed.
func clampOverlap(confirmed, start, n int64) int64 {
	o := confirmed - start
	if o < 0 {
		return 0
	}
	if o > n {
		return n
	}
	return o
}

// Confirmed returns the stream's durably admitted line count.
func (ps *PersistentStream) Confirmed() int64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.confirmed
}

// Close flushes queued lines, closes the request cleanly, and waits for the
// manager to finish. It returns the stream's terminal error if unconfirmed
// lines were abandoned.
func (ps *PersistentStream) Close() error {
	ps.mu.Lock()
	ps.closed = true
	ps.cond.Broadcast()
	ps.mu.Unlock()
	<-ps.done
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.err != nil && ps.confirmed < ps.written {
		return ps.err
	}
	return nil
}

// advance moves the confirmed watermark to abs: waiters covered by it are
// released and fully confirmed batches recycled.
func (ps *PersistentStream) advance(abs int64) {
	ps.mu.Lock()
	if abs > ps.confirmed {
		ps.confirmed = abs
	}
	for len(ps.waiters) > 0 && ps.waiters[0].end <= ps.confirmed {
		close(ps.waiters[0].ch)
		ps.waiters = ps.waiters[1:]
	}
	for len(ps.pending) > 0 {
		b := ps.pending[0]
		if b.start+b.lines > ps.confirmed {
			break
		}
		buf := b.buf
		ps.pending = ps.pending[1:]
		lineBufPool.Put(&buf)
	}
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// fail marks the stream dead and releases everything.
func (ps *PersistentStream) fail(err error) {
	ps.mu.Lock()
	if ps.err == nil {
		ps.err = err
	}
	for _, w := range ps.waiters {
		close(w.ch)
	}
	ps.waiters = nil
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// run is the manager: open an attempt whenever unconfirmed work exists,
// reconcile and back off across failures, exit on Close (after the flush)
// or on a terminal error.
func (ps *PersistentStream) run() {
	defer close(ps.done)
	rng := rand.New(rand.NewSource(int64(ps.pol.Seed ^ streamSeq.Add(1))))
	attempt := 0 // consecutive failures this outage (reset on progress)
	totalAttempts := 0
	budgetLeft := ps.pol.Budget
	for {
		ps.mu.Lock()
		for ps.err == nil && !ps.closed && ps.confirmed == ps.written {
			ps.cond.Wait()
		}
		if ps.err != nil || (ps.closed && ps.confirmed == ps.written) {
			ps.mu.Unlock()
			return
		}
		before := ps.confirmed
		ps.mu.Unlock()

		attempt++
		totalAttempts++
		if ps.st != nil {
			ps.st.Attempts.Add(1)
			if totalAttempts > 1 {
				ps.st.Retries.Add(1)
			}
			if totalAttempts > 1 && before > 0 {
				ps.st.Resumes.Add(1)
			}
		}
		status, hint, err := ps.attempt()

		ps.mu.Lock()
		// An attempt that confirmed new lines — or left nothing unconfirmed
		// (e.g. the server's idle-stall 408 after all work landed) — ends
		// the outage: the policy bounds each outage, not the lifetime.
		progressed := ps.confirmed > before || ps.confirmed == ps.written
		closedAndDone := ps.closed && ps.confirmed == ps.written
		ps.mu.Unlock()
		if progressed {
			attempt = 0
			budgetLeft = ps.pol.Budget
		}
		if closedAndDone {
			return
		}
		if err == nil && status == http.StatusOK {
			// Clean terminal ack with work left (server cut the stream in an
			// orderly way, e.g. stall 408 would carry its own status — a 200
			// final with pending lines means our Close raced; loop re-opens).
			continue
		}
		if err != nil && !retryable(status, err) {
			ps.giveUp(fmt.Errorf("serve client: stream %s: terminal: %w", ps.id, err))
			return
		}
		if attempt >= ps.pol.MaxAttempts {
			ps.giveUp(fmt.Errorf("%w: stream %s: status %d: %v", ErrRetriesExhausted, ps.id, status, err))
			return
		}
		// attempt may have just been reset to 0 by the progress check above:
		// a failure that still confirmed lines backs off at the base window.
		window := ps.pol.BaseBackoff << min(max(attempt-1, 0), 20)
		if window > ps.pol.MaxBackoff || window <= 0 {
			window = ps.pol.MaxBackoff
		}
		sleep := hint + time.Duration(rng.Int63n(int64(window)+1))
		if sleep > budgetLeft {
			ps.giveUp(fmt.Errorf("%w: stream %s: backoff budget spent: status %d: %v", ErrRetriesExhausted, ps.id, status, err))
			return
		}
		budgetLeft -= sleep
		if ps.st != nil {
			ps.st.BackoffNs.Add(int64(sleep))
		}
		time.Sleep(sleep)
	}
}

func (ps *PersistentStream) giveUp(err error) {
	if ps.st != nil {
		ps.st.GiveUps.Add(1)
	}
	ps.fail(err)
}

// attempt opens one request and runs it until the stream is done, the
// connection dies, or the watchdog cuts a stalled attempt. Returns the
// terminal status (0 if none reached), the server's retry hint, and the
// attempt error (nil on a clean final ack).
func (ps *PersistentStream) attempt() (int, time.Duration, error) {
	ps.mu.Lock()
	// Resend from the first batch not fully confirmed. Its start may lie
	// below the confirmed watermark (a partially confirmed batch): the
	// offset header names it and the server-side tracker skips the overlap.
	start := ps.confirmed
	if len(ps.pending) > 0 && ps.pending[0].start < start {
		start = ps.pending[0].start
	}
	ps.gen++
	gen := ps.gen
	ps.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	defer pr.CloseWithError(errStreamClosed) // unblock a pump mid-Write
	go ps.pump(pw, start, gen)
	defer func() {
		// Retire this attempt's pump before the next attempt starts.
		ps.mu.Lock()
		if ps.gen == gen {
			ps.gen++
		}
		ps.cond.Broadcast()
		ps.mu.Unlock()
	}()

	// Ack-progress watchdog, armed for the WHOLE attempt including Do: when
	// unconfirmed lines see no ack for pol.RequestTimeout, it cancels the
	// request AND severs the pipe's read side. The second half matters: on a
	// broken connection the transport's Do does not return until its write
	// loop finishes, and the write loop sits in pr.Read — only closing the
	// pipe unblocks that chain.
	stopWD := make(chan struct{})
	defer close(stopWD)
	if wd := ps.pol.RequestTimeout; wd > 0 {
		go ps.watchdog(wd, func() {
			cancel()
			pr.CloseWithError(context.DeadlineExceeded)
		}, stopWD)
	}

	// Heartbeat: an empty NDJSON line (a protocol no-op the server skips
	// without counting) written periodically. It does two jobs: it keeps the
	// server's stall detector fed while the stream idles, and — the load-
	// bearing one — it forces a real TCP write, so a silently dead
	// connection fails the transport's write loop promptly instead of
	// wedging Do until the watchdog's full window expires.
	hb := time.Second
	if wd := ps.pol.RequestTimeout; wd > 0 && wd/4 < hb {
		hb = wd / 4
	}
	go func() {
		tick := time.NewTicker(hb)
		defer tick.Stop()
		nl := []byte("\n")
		for {
			select {
			case <-stopWD:
				return
			case <-tick.C:
			}
			if _, err := pw.Write(nl); err != nil {
				return
			}
		}
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ps.url, pr)
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(HeaderStreamID, ps.id)
	req.Header.Set(HeaderStreamOffset, strconv.FormatInt(start, 10))
	req.Header.Set(HeaderAckFlush, "1")
	resp, err := ps.hc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 64*1024)).Decode(&eb)
		ps.advance(start + eb.Accepted)
		hint := retryHint(resp.Header)
		if ms := time.Duration(eb.RetryAfterMs) * time.Millisecond; ms > hint {
			hint = ms
		}
		return resp.StatusCode, hint, fmt.Errorf("serve client: stream %s: status %d: %s", ps.id, resp.StatusCode, eb.Error)
	}
	if resp.Header.Get(HeaderAckFlush) == "" {
		return resp.StatusCode, 0, fmt.Errorf("serve client: stream %s: server does not speak the progress-ack protocol", ps.id)
	}

	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var al ackLine
		if err := json.Unmarshal(raw, &al); err != nil {
			return 0, 0, fmt.Errorf("serve client: stream %s: bad ack line %q: %w", ps.id, raw, err)
		}
		ps.advance(start + al.Accepted)
		if !al.Final {
			continue
		}
		if al.Status == http.StatusOK {
			return al.Status, 0, nil
		}
		err := fmt.Errorf("serve client: stream %s: in-band status %d: %s", ps.id, al.Status, al.Error)
		return al.Status, time.Duration(al.RetryAfterMs) * time.Millisecond, err
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	return 0, 0, fmt.Errorf("serve client: stream %s: ack stream ended without a final line", ps.id)
}

// pump writes pending batches from cursor into the request body, in order,
// as they arrive; on Close with everything written it closes the body so
// the server runs its final flush. A generation bump retires it.
func (ps *PersistentStream) pump(pw *io.PipeWriter, cursor int64, gen int64) {
	for {
		ps.mu.Lock()
		var buf []byte
		for ps.gen == gen && ps.err == nil {
			if next, ok := ps.batchAt(cursor); ok {
				cursor = next.start + next.lines
				buf = next.buf
				break
			}
			if ps.closed && cursor >= ps.written {
				ps.mu.Unlock()
				pw.Close()
				return
			}
			ps.cond.Wait()
		}
		if buf == nil {
			ps.mu.Unlock()
			pw.CloseWithError(errStreamClosed)
			return
		}
		ps.mu.Unlock()
		// Write outside the lock: the pipe blocks until the transport's
		// write loop consumes the chunk. The buf stays valid — batches are
		// recycled only after the server confirms them, and a confirmed
		// batch is never resent.
		if _, err := pw.Write(buf); err != nil {
			return // attempt died; the manager reconciles
		}
	}
}

// batchAt finds the first pending batch covering or after cursor. Callers
// hold ps.mu.
func (ps *PersistentStream) batchAt(cursor int64) (streamBatch, bool) {
	for _, b := range ps.pending {
		if b.start+b.lines > cursor {
			return b, true
		}
	}
	return streamBatch{}, false
}

// watchdog invokes cut when unconfirmed lines make no ack progress for wd.
// An idle stream (nothing unconfirmed) is never cut.
func (ps *PersistentStream) watchdog(wd time.Duration, cut func(), stop <-chan struct{}) {
	tick := time.NewTicker(wd / 4)
	defer tick.Stop()
	last := ps.Confirmed()
	lastProgress := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		ps.mu.Lock()
		confirmed, written := ps.confirmed, ps.written
		ps.mu.Unlock()
		if confirmed != last || confirmed == written {
			last = confirmed
			lastProgress = time.Now()
			continue
		}
		if time.Since(lastProgress) > wd {
			cut()
			return
		}
	}
}

// StreamSubmitter adapts a fan-out of n persistent streams to the open-loop
// harness: each batch round-robins onto a stream and blocks until the
// server's ack covers it, so accepted counts and per-batch latency reflect
// durable admission, not buffered writes. Close the returned closer after
// the run to flush and release the streams.
func (c *Client) StreamSubmitter(ctx context.Context, jobID uint32, gen func(n int) []TaskSpec,
	n int, pol RetryPolicy, st *RetryStats) (load.Submitter, io.Closer) {
	if n <= 0 {
		n = 1
	}
	streams := make([]*PersistentStream, n)
	for i := range streams {
		streams[i] = c.PersistentStream(jobID, pol, st)
	}
	var rr atomic.Uint64
	sub := func(want int) (int, load.Outcome, error) {
		ps := streams[(rr.Add(1)-1)%uint64(n)]
		acc, err := ps.Submit(ctx, gen(want))
		switch {
		case err == nil:
			return int(acc), load.Accepted, nil
		case errors.Is(err, ErrRetriesExhausted):
			return int(acc), load.Backpressure, nil
		default:
			return int(acc), load.ServerError, err
		}
	}
	return sub, streamsCloser(streams)
}

// streamsCloser closes every stream, returning the first error.
type streamsCloser []*PersistentStream

func (sc streamsCloser) Close() error {
	var first error
	for _, ps := range sc {
		if err := ps.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
