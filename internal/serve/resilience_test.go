package serve

// Tests for the network-boundary hardening: readiness vs liveness, the
// exactly-once stream-resume protocol, deadline propagation, the slow-client
// stall detector, an abrupt client disconnect mid-stream, and the retrying
// client's backoff/resume loop against a scripted server.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hdcps/internal/chaos"
)

func TestReadyzAndHealthzSplit(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s on a live ready server: %d, want 200", path, resp.StatusCode)
		}
	}
}

// postStream posts NDJSON with the resume headers and decodes the response.
func postStream(t *testing.T, url, streamID string, offset int64, body io.Reader) (*http.Response, errorBody, submitResult) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(HeaderStreamID, streamID)
	req.Header.Set(HeaderStreamOffset, fmt.Sprint(offset))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var eb errorBody
	var sr submitResult
	if resp.StatusCode == http.StatusOK {
		_ = json.Unmarshal(raw, &sr)
	} else {
		_ = json.Unmarshal(raw, &eb)
	}
	return resp, eb, sr
}

// TestStreamResumeSkipsAdmitted replays the lost-response scenario by hand:
// the same request body re-sent with an unchanged offset must not re-admit
// the lines the server already took, but must still confirm them.
func TestStreamResumeSkipsAdmitted(t *testing.T) {
	s, ts := newTestServer(t, nil)
	url := ts.URL + "/v1/jobs/0/submit"
	specs := []TaskSpec{{Node: 1}, {Node: 2}, {Node: 3}}

	resp, _, sr := postStream(t, url, "resume-test", 0, ndjson(specs...))
	if resp.StatusCode != http.StatusOK || sr.Accepted != 3 {
		t.Fatalf("first attempt: status %d accepted %d, want 200/3", resp.StatusCode, sr.Accepted)
	}
	base := s.accepted.Load()

	// The "response was lost" retry: identical body, identical offset. The
	// tracker knows 3 lines are admitted; the server must confirm 3 without
	// submitting anything new.
	resp, _, sr = postStream(t, url, "resume-test", 0, ndjson(specs...))
	if resp.StatusCode != http.StatusOK || sr.Accepted != 3 {
		t.Fatalf("replay: status %d accepted %d, want 200/3", resp.StatusCode, sr.Accepted)
	}
	if got := s.accepted.Load(); got != base {
		t.Fatalf("replay re-admitted work: server accepted %d -> %d", base, got)
	}
	if s.resil.resumes.Load() == 0 {
		t.Fatal("replay did not count as a resume")
	}

	// The client advances and sends the genuine suffix.
	resp, _, sr = postStream(t, url, "resume-test", 3, ndjson(TaskSpec{Node: 4}, TaskSpec{Node: 5}))
	if resp.StatusCode != http.StatusOK || sr.Accepted != 2 {
		t.Fatalf("suffix: status %d accepted %d, want 200/2", resp.StatusCode, sr.Accepted)
	}
	if got := s.accepted.Load(); got != base+2 {
		t.Fatalf("suffix admitted %d new tasks, want 2", got-base)
	}
}

// TestSubmitDeadlineCutsPrefix: a mid-stream deadline expiry returns 503
// with the admitted prefix — retryable backpressure, not a dropped stream.
func TestSubmitDeadlineCutsPrefix(t *testing.T) {
	s, ts := newTestServer(t, nil)
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/0/submit", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(HeaderDeadlineMs, "50")
	go func() {
		// One full flush quickly, then outlive the deadline, then force a
		// second flush that must see the expired context.
		_, _ = pw.Write(ndjson(make([]TaskSpec, submitFlush)...).Bytes())
		time.Sleep(150 * time.Millisecond)
		_, _ = pw.Write(ndjson(make([]TaskSpec, submitFlush)...).Bytes())
		pw.Close()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 on deadline expiry", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Accepted%submitFlush != 0 || eb.Accepted >= 2*submitFlush {
		t.Fatalf("admitted prefix %d, want a flush multiple below %d", eb.Accepted, 2*submitFlush)
	}
	if s.resil.deadlineHits.Load() == 0 {
		t.Fatal("deadline hit not counted")
	}
}

// TestSubmitStallDetectorAborts: a client that stops sending mid-body is cut
// with 408 + Connection: close, and the admitted prefix is reported.
func TestSubmitStallDetectorAborts(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.SubmitStallTimeout = 100 * time.Millisecond })
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/0/submit", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	done := make(chan struct{})
	go func() {
		defer close(done)
		// submitFlush+44 lines: one flush lands, 44 sit in the scanner, then
		// the body goes silent while the connection stays open.
		_, _ = pw.Write(ndjson(make([]TaskSpec, submitFlush+44)...).Bytes())
		<-done // hold the pipe open until the response arrives
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("expected a 408 response, got transport error %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408 from the stall detector", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Accepted != submitFlush {
		t.Fatalf("stall abort reported %d admitted, want the flushed prefix %d", eb.Accepted, submitFlush)
	}
	if s.resil.connAborts.Load() == 0 {
		t.Fatal("stall abort not counted")
	}
	pw.Close()
}

// TestClientDisconnectMidStream kills a raw TCP connection partway through
// an NDJSON stream, then proves the server accounted exactly the admitted
// prefix: a resume of the same stream admits only the remainder, and the
// ledger is exact at quiescence.
func TestClientDisconnectMidStream(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.SubmitStallTimeout = 200 * time.Millisecond })
	const total = 600

	var body strings.Builder
	for i := 0; i < total; i++ {
		fmt.Fprintf(&body, `{"node":%d}`+"\n", i%100)
	}
	payload := body.String()
	half := len(payload) / 2

	addr := strings.TrimPrefix(ts.URL, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Chunked so the abort happens mid-body with no Content-Length promise.
	fmt.Fprintf(conn, "POST /v1/jobs/0/submit HTTP/1.1\r\nHost: %s\r\n%s: disconnect-test\r\n%s: 0\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\n\r\n",
		addr, HeaderStreamID, HeaderStreamOffset)
	fmt.Fprintf(conn, "%x\r\n%s\r\n", half, payload[:half])
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0) // RST, not FIN: the body just vanishes
	}
	conn.Close()

	// The handler dies on the reset (or the stall detector); the resume
	// below serializes behind it via the stream tracker, so no extra sync is
	// needed — just replay the full stream with offset 0.
	resp, _, sr := postStream(t, ts.URL+"/v1/jobs/0/submit", "disconnect-test", 0, strings.NewReader(payload))
	if resp.StatusCode != http.StatusOK || sr.Accepted != total {
		t.Fatalf("resume: status %d accepted %d, want 200/%d", resp.StatusCode, sr.Accepted, total)
	}

	// Exactly-once: the seed task + exactly `total` admissions, never more,
	// no matter how much of the half-stream the first handler consumed.
	if got := s.accepted.Load(); got != total+1 {
		t.Fatalf("server accepted %d tasks, want %d (exactly-once across the disconnect)", got-1, total)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.eng.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	var ck chaos.Checker
	if err := ck.Quiescent(s.eng.Snapshot()); err != nil {
		t.Fatalf("ledger after disconnect: %v", err)
	}
	if sub := s.eng.Snapshot().Submitted; sub != total+1 {
		t.Fatalf("ledger submitted %d, want %d", sub, total+1)
	}
}

// TestRetryClientResumesAfterLostWork scripts the server side: attempt one
// sheds mid-stream with an admitted prefix, attempt two must arrive with the
// advanced offset and only then succeed.
func TestRetryClientResumesAfterLostWork(t *testing.T) {
	var attempts atomic.Int64
	var gotOffset atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs/5/submit", func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		lines := int64(0)
		sc := bufio.NewScanner(r.Body)
		for sc.Scan() {
			if len(sc.Bytes()) > 0 {
				lines++
			}
		}
		switch n {
		case 1:
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{
				Error: "shed", Accepted: 7, RetryAfterMs: 1,
			})
		default:
			gotOffset.Store(parseStreamOffset(r.Header.Get(HeaderStreamOffset)))
			writeJSON(w, http.StatusOK, submitResult{Accepted: lines})
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := &Client{Base: ts.URL}
	var st RetryStats
	specs := make([]TaskSpec, 20)
	pol := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 7}
	admitted, err := cl.SubmitStream(context.Background(), 5, specs, pol, &st)
	if err != nil {
		t.Fatal(err)
	}
	if admitted != 20 {
		t.Fatalf("admitted %d, want 20", admitted)
	}
	if attempts.Load() != 2 {
		t.Fatalf("attempts %d, want 2", attempts.Load())
	}
	if gotOffset.Load() != 7 {
		t.Fatalf("retry carried offset %d, want the admitted prefix 7", gotOffset.Load())
	}
	if st.Retries.Load() != 1 || st.Resumes.Load() != 1 {
		t.Fatalf("stats %s, want 1 retry / 1 resume", st.String())
	}
}

// TestRetryClientTerminalAndExhaustion: terminal answers stop immediately;
// persistent backpressure burns the attempt cap and reports exhaustion.
func TestRetryClientTerminalAndExhaustion(t *testing.T) {
	var status atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs/1/submit", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		writeJSON(w, int(status.Load()), errorBody{Error: "scripted"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	cl := &Client{Base: ts.URL}
	pol := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 3}

	status.Store(http.StatusBadRequest)
	var st RetryStats
	if _, err := cl.SubmitStream(context.Background(), 1, make([]TaskSpec, 4), pol, &st); err == nil ||
		errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("400 should be terminal, got %v", err)
	}
	if st.Attempts.Load() != 1 {
		t.Fatalf("terminal status retried: %s", st.String())
	}

	status.Store(http.StatusServiceUnavailable)
	var st2 RetryStats
	_, err := cl.SubmitStream(context.Background(), 1, make([]TaskSpec, 4), pol, &st2)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("persistent 503 should exhaust retries, got %v", err)
	}
	if st2.Attempts.Load() != 3 {
		t.Fatalf("attempts %d, want the MaxAttempts cap 3", st2.Attempts.Load())
	}
}

// TestWaitReady: not ready while nothing listens, ready once the server is up.
func TestWaitReady(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cl := &Client{Base: ts.URL}
	if err := cl.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	dead := &Client{Base: "http://127.0.0.1:1", HC: &http.Client{Timeout: 200 * time.Millisecond}}
	if err := dead.WaitReady(context.Background(), 300*time.Millisecond); err == nil {
		t.Fatal("WaitReady succeeded against nothing")
	}
}
