package serve

// Client is the typed HTTP client over the /v1 API: what hdcps-load and the
// saturation bench speak. It also adapts the API to the open-loop
// harness's Submitter contract, including the status → Outcome mapping
// (200 accepted, 429/503 backpressure, anything else a server error).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hdcps/internal/load"
	"hdcps/internal/runtime"
)

// Client talks to one hdcps-serve instance.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HC is the underlying HTTP client (nil: a 30s-timeout default).
	HC *http.Client
}

// ndjsonPool recycles request-body buffers across submit attempts. Buffers
// are returned only after the response has been read, when the transport is
// done with the request body.
var ndjsonPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 16<<10); return &b },
}

// encodeNDJSON renders specs as NDJSON into a pooled buffer with the same
// hand-rolled encoder the persistent stream uses (appendTaskSpecLine), so
// batch submission costs zero allocations per line instead of one
// json.Encoder pass per batch.
func encodeNDJSON(specs []TaskSpec) *[]byte {
	bp := ndjsonPool.Get().(*[]byte)
	b := (*bp)[:0]
	for _, sp := range specs {
		b = appendTaskSpecLine(b, sp)
	}
	*bp = b
	return bp
}

func (c *Client) submitURL(jobID uint32) string {
	return c.Base + "/v1/jobs/" + strconv.FormatUint(uint64(jobID), 10) + "/submit"
}

func (c *Client) hc() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("serve client: GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, body)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, fmt.Errorf("serve client: POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(raw))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// Info fetches /v1/info.
func (c *Client) Info(ctx context.Context) (Info, error) {
	var info Info
	err := c.getJSON(ctx, "/v1/info", &info)
	return info, err
}

// Snapshot fetches the engine-wide /v1/snapshot.
func (c *Client) Snapshot(ctx context.Context) (runtime.Snapshot, error) {
	var snap runtime.Snapshot
	err := c.getJSON(ctx, "/v1/snapshot", &snap)
	return snap, err
}

// CreateJob registers a new tenant and returns its ID.
func (c *Client) CreateJob(ctx context.Context, spec JobSpec) (uint32, error) {
	var out struct {
		ID uint32 `json:"id"`
	}
	if _, err := c.postJSON(ctx, "/v1/jobs", spec, &out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

// SubmitBatch posts one NDJSON batch to a job. It returns how many tasks
// the server admitted and the HTTP status; err is non-nil only for
// transport failures or undecodable bodies — a 429/503/409 is reported
// through the status (with the partial accepted count), since backpressure
// is an expected answer, not an error.
func (c *Client) SubmitBatch(ctx context.Context, jobID uint32, specs []TaskSpec) (int64, int, error) {
	body := encodeNDJSON(specs)
	defer ndjsonPool.Put(body)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.submitURL(jobID), bytes.NewReader(*body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc().Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var res submitResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return 0, resp.StatusCode, err
		}
		return res.Accepted, resp.StatusCode, nil
	}
	var eb errorBody
	_ = json.NewDecoder(io.LimitReader(resp.Body, 64*1024)).Decode(&eb)
	return eb.Accepted, resp.StatusCode, nil
}

// Drain blocks until the job quiesces server-side (or the server's drain
// deadline passes) and returns the job's ledger row.
func (c *Client) Drain(ctx context.Context, jobID uint32, timeout time.Duration) (runtime.JobStats, error) {
	path := fmt.Sprintf("/v1/jobs/%d/drain", jobID)
	if timeout > 0 {
		path += "?timeout=" + timeout.String()
	}
	var st runtime.JobStats
	_, err := c.postJSON(ctx, path, nil, &st)
	return st, err
}

// Cancel cancels the job and returns its final ledger row.
func (c *Client) Cancel(ctx context.Context, jobID uint32) (runtime.JobStats, error) {
	var st runtime.JobStats
	_, err := c.postJSON(ctx, fmt.Sprintf("/v1/jobs/%d/cancel", jobID), nil, &st)
	return st, err
}

// Submitter adapts the API to the open-loop harness: each call submits one
// batch of gen-generated tasks to jobID and classifies the reply. gen is
// called from many generator goroutines and must be safe for concurrent use.
func (c *Client) Submitter(ctx context.Context, jobID uint32, gen func(n int) []TaskSpec) load.Submitter {
	return func(n int) (int, load.Outcome, error) {
		acc, status, err := c.SubmitBatch(ctx, jobID, gen(n))
		if err != nil {
			return int(acc), load.ServerError, err
		}
		switch {
		case status == http.StatusOK:
			return int(acc), load.Accepted, nil
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			return int(acc), load.Backpressure, nil
		default:
			return int(acc), load.ServerError, fmt.Errorf("serve client: submit status %d", status)
		}
	}
}

// RefreshGen returns a concurrency-safe task generator for the serving
// load shape: "refresh" tasks at uniformly random nodes with priority and
// distance 0. For SSSP-style workloads the first wave re-relaxes from the
// touched nodes and then settles, so steady-state service cost is bounded
// (examine the node's edges, rarely emit) — the right shape for measuring
// the serving knee rather than algorithm convergence. The rand source is
// mutex-guarded; contention is negligible next to the HTTP round-trip.
func RefreshGen(nodes int, seed int64) func(n int) []TaskSpec {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(n int) []TaskSpec {
		specs := make([]TaskSpec, n)
		mu.Lock()
		for i := range specs {
			specs[i] = TaskSpec{Node: uint32(rng.Intn(nodes))}
		}
		mu.Unlock()
		return specs
	}
}
