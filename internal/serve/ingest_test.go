package serve

// Differential tests for the zero-alloc ingest path. The framer is checked
// line-for-line against bufio.Scanner with the exact buffer configuration
// the old handler used; the fast parser is checked decision-for-decision
// (and byte-for-byte on error text) against encoding/json. FuzzTaskSpecParser
// extends the parser contract to adversarial inputs.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

// scanRef frames body with the old implementation's exact configuration.
func scanRef(body []byte) (lines []string, err error) {
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		lines = append(lines, string(sc.Bytes()))
	}
	return lines, sc.Err()
}

func frameAll(r io.Reader) (lines []string, err error) {
	fr := newLineFramer(r)
	defer fr.release()
	for {
		raw, err := fr.next()
		if err == io.EOF {
			return lines, nil
		}
		if err != nil {
			return lines, err
		}
		lines = append(lines, string(raw))
	}
}

func TestLineFramerMatchesScanner(t *testing.T) {
	long := strings.Repeat("x", 200*1024) // forces buffer growth past 64KB
	bodies := map[string]string{
		"empty":            "",
		"one":              "a\n",
		"unterminated":     "a\nbc",
		"crlf":             "a\r\nb\r\n",
		"bare-cr-tail":     "a\r",
		"blank-lines":      "\n\na\n\n\nb\n",
		"inner-cr":         "a\rb\nc\n",
		"long-line":        long + "\nshort\n",
		"long-tail":        "short\n" + long,
		"many":             strings.Repeat("line\n", 10000),
		"exact-buf":        strings.Repeat("y", 64*1024-1) + "\nz\n",
		"newline-only":     "\n",
		"cr-newline-only":  "\r\n",
		"two-unterminated": "ab\ncd",
	}
	for name, body := range bodies {
		t.Run(name, func(t *testing.T) {
			want, werr := scanRef([]byte(body))
			got, gerr := frameAll(strings.NewReader(body))
			if werr != nil || gerr != nil {
				t.Fatalf("unexpected errors: scanner %v framer %v", werr, gerr)
			}
			if len(got) != len(want) {
				t.Fatalf("framer yielded %d lines, scanner %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("line %d: framer %q, scanner %q", i, got[i], want[i])
				}
			}
		})
	}
}

// oneByteReader delivers one byte per Read, shaking out window bookkeeping
// across read boundaries.
type oneByteReader struct{ b []byte }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	p[0] = r.b[0]
	r.b = r.b[1:]
	return 1, nil
}

func TestLineFramerOneBytReads(t *testing.T) {
	body := "alpha\r\nbeta\n\ngamma"
	want, _ := scanRef([]byte(body))
	got, err := frameAll(&oneByteReader{b: []byte(body)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d: got %q want %q", i, got[i], want[i])
		}
	}
}

// dataThenErrReader returns its payload together with the error in the final
// Read call — the n>0-with-err case io.Reader permits.
type dataThenErrReader struct {
	b    []byte
	err  error
	done bool
}

func (r *dataThenErrReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, r.err
	}
	r.done = true
	n := copy(p, r.b)
	return n, r.err
}

func TestLineFramerDataWithError(t *testing.T) {
	boom := errors.New("boom")
	// Complete lines delivered alongside the error must surface before it;
	// the unterminated tail is discarded, as bufio.Scanner does.
	got, err := frameAll(&dataThenErrReader{b: []byte("a\nb\npartial"), err: boom})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("lines before error = %q, want [a b]", got)
	}
	// n>0 with err == io.EOF: the tail is a valid final line.
	got, err = frameAll(&dataThenErrReader{b: []byte("x\ny"), err: io.EOF})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != "y" {
		t.Fatalf("lines = %q, want [x y]", got)
	}
}

func TestLineFramerTooLong(t *testing.T) {
	// Exactly maxLineBytes: fine (parity with the old Scanner buffer cap).
	ok := strings.Repeat("a", maxLineBytes) + "\nnext\n"
	lines, err := frameAll(strings.NewReader(ok))
	if err != nil || len(lines) != 2 || len(lines[0]) != maxLineBytes {
		t.Fatalf("maxLineBytes line: lines=%d err=%v", len(lines), err)
	}
	// One byte over: errLineTooLong, after yielding the preceding lines.
	over := "first\n" + strings.Repeat("b", maxLineBytes+1) + "\n"
	lines, err = frameAll(strings.NewReader(over))
	if !errors.Is(err, errLineTooLong) {
		t.Fatalf("err = %v, want errLineTooLong", err)
	}
	if len(lines) != 1 || lines[0] != "first" {
		t.Fatalf("lines before too-long = %q, want [first]", lines)
	}
}

func TestLineFramerBuffered(t *testing.T) {
	pr, pw := io.Pipe()
	fr := newLineFramer(pr)
	defer fr.release()
	defer pw.Close()
	if fr.buffered() {
		t.Fatal("fresh framer claims buffered data")
	}
	go pw.Write([]byte("a\nb"))
	if _, err := fr.next(); err != nil {
		t.Fatal(err)
	}
	if fr.buffered() {
		t.Fatal("partial line 'b' reported as a buffered complete line")
	}
	go pw.Write([]byte("\n"))
	if raw, err := fr.next(); err != nil || string(raw) != "b" {
		t.Fatalf("next = %q, %v", raw, err)
	}
}

// checkParserParity asserts parseTaskSpecLine is observably identical to a
// plain json.Unmarshal on b: same accept/reject decision, same decoded
// fields, same error text.
func checkParserParity(t *testing.T, b []byte) {
	t.Helper()
	var want TaskSpec
	werr := json.Unmarshal(b, &want)
	got, gerr := parseTaskSpecLine(b)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("input %q: decision diverged: json err %v, parser err %v", b, werr, gerr)
	}
	if werr != nil {
		if werr.Error() != gerr.Error() {
			t.Fatalf("input %q: error text diverged: json %q, parser %q", b, werr, gerr)
		}
		return
	}
	if got != want {
		t.Fatalf("input %q: fields diverged: json %+v, parser %+v", b, want, got)
	}
}

func TestParseTaskSpecParity(t *testing.T) {
	cases := []string{
		// Canonical encoder output and key-order permutations.
		`{"node":1,"prio":2,"data":3}`,
		`{"prio":-5,"node":0,"data":18446744073709551615}`,
		`{"data":7,"node":4294967295,"prio":9223372036854775807}`,
		`{"prio":-9223372036854775808}`,
		`{}`,
		`  { "node" : 12 , "prio" : -1 , "data" : 0 }  `,
		"\t{\"node\":1}\r",
		// Duplicate keys: last wins, both paths.
		`{"node":1,"node":2}`,
		`{"prio":3,"prio":-3}`,
		// Fallback-and-reject territory.
		`{not json}`,
		``,
		`null`,
		`true`,
		`[1,2]`,
		`"str"`,
		`{"node":-1}`,
		`{"node":4294967296}`,
		`{"prio":9223372036854775808}`,
		`{"prio":-9223372036854775809}`,
		`{"data":18446744073709551616}`,
		`{"node":1.5}`,
		`{"node":1e3}`,
		`{"node":01}`,
		`{"prio":-01}`,
		`{"node":+1}`,
		`{"node":"1"}`,
		`{"node":null}`,
		`{"unknown":1}`,
		`{"node":1,"extra":2}`,
		`{"Node":1}`,
		`{"NODE":1}`,
		`{"node":1}`,
		`{"node":1}{"node":2}`,
		`{"node":1} x`,
		`{"node":1,}`,
		`{"node"}`,
		`{"node":}`,
		`{"node":1`,
		`{"node":`,
		`{"node"`,
		`{"`,
		`{`,
		`{"node": 007}`,
		`{"data":-1}`,
		`{"prio":- 1}`,
		`{"prio":--1}`,
	}
	for _, c := range cases {
		checkParserParity(t, []byte(c))
	}
}

// TestParseTaskSpecFastPath pins that the canonical client encoding — and
// its whitespace/key-order variants — really take the zero-alloc path.
// Without this, a parser regression would silently fall back to
// encoding/json everywhere and the tests would still pass.
func TestParseTaskSpecFastPath(t *testing.T) {
	hot := []string{
		`{"node":1,"prio":2,"data":3}`,
		`{"data":3,"prio":-2,"node":1}`,
		`{"node":0,"prio":0,"data":0}`,
		`{"node":4294967295,"prio":-9223372036854775808,"data":18446744073709551615}`,
		`{}`,
		` {"node":9} `,
	}
	for _, c := range hot {
		if _, ok := parseTaskSpecFast([]byte(c)); !ok {
			t.Errorf("fast parser fell back on canonical input %q", c)
		}
	}
	// And the encoder's own output round-trips through the fast path.
	line := appendTaskSpecLine(nil, TaskSpec{Node: 7, Prio: -3, Data: 42})
	sp, ok := parseTaskSpecFast(bytes.TrimSuffix(line, []byte("\n")))
	if !ok || sp != (TaskSpec{Node: 7, Prio: -3, Data: 42}) {
		t.Fatalf("encoder output %q: fast parse = %+v, ok=%v", line, sp, ok)
	}
}

func TestAppendTaskSpecLineMatchesEncoder(t *testing.T) {
	specs := []TaskSpec{
		{},
		{Node: 1, Prio: 2, Data: 3},
		{Node: 4294967295, Prio: -9223372036854775808, Data: 18446744073709551615},
		{Node: 42, Prio: 9223372036854775807, Data: 1},
	}
	for _, sp := range specs {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(sp); err != nil {
			t.Fatal(err)
		}
		if got := string(appendTaskSpecLine(nil, sp)); got != buf.String() {
			t.Fatalf("spec %+v: appendTaskSpecLine %q, json.Encoder %q", sp, got, buf.String())
		}
	}
}

// FuzzTaskSpecParser differentially fuzzes the zero-alloc parser against
// encoding/json: whenever the fast path claims a line, json must agree on
// both acceptance and every decoded field; and with the fallback composed
// in, the full parseTaskSpecLine must be observably identical to a plain
// json.Unmarshal on arbitrary bytes.
func FuzzTaskSpecParser(f *testing.F) {
	seeds := []string{
		`{"node":1,"prio":2,"data":3}`,
		`{"data":18446744073709551615,"node":4294967295,"prio":-9223372036854775808}`,
		`{}`,
		`{"node":01}`,
		`{"node":1e2}`,
		`{"prio":-}`,
		`{"node":1,"node":2}`,
		`{not json}`,
		`null`,
		` { "node" : 5 } `,
		`{"node":1}`,
		`{"node":4294967296}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		var want TaskSpec
		werr := json.Unmarshal(b, &want)
		if fast, ok := parseTaskSpecFast(b); ok {
			if werr != nil {
				t.Fatalf("fast path accepted %q that encoding/json rejects: %v", b, werr)
			}
			if fast != want {
				t.Fatalf("fast path decoded %q as %+v, encoding/json %+v", b, fast, want)
			}
		}
		got, gerr := parseTaskSpecLine(b)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("input %q: decision diverged: json err %v, parser err %v", b, werr, gerr)
		}
		if werr != nil {
			if werr.Error() != gerr.Error() {
				t.Fatalf("input %q: error text diverged: json %q, parser %q", b, werr, gerr)
			}
		} else if got != want {
			t.Fatalf("input %q: fields diverged: json %+v, parser %+v", b, want, got)
		}
	})
}

// TestIngestAllocsPerLine pins the tentpole number: the server-side parse
// loop (framer + fast parser + pooled batches) allocates less than one
// allocation per line in steady state.
func TestIngestAllocsPerLine(t *testing.T) {
	const lines = 4096
	body := IngestBenchBody(lines, 1024)
	// Warm the pools so the measured runs see steady state.
	if n, err := IngestBenchLoop(body); err != nil || n != lines {
		t.Fatalf("warmup: n=%d err=%v", n, err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := IngestBenchLoop(body); err != nil {
			t.Fatal(err)
		}
	})
	if perLine := avg / lines; perLine > 1 {
		t.Fatalf("ingest allocs/line = %.3f (%.0f allocs / %d lines), want <= 1", perLine, avg, lines)
	}
}

func TestEncodeAllocsPerLine(t *testing.T) {
	const lines = 4096
	specs := make([]TaskSpec, lines)
	for i := range specs {
		specs[i] = TaskSpec{Node: uint32(i), Prio: int64(i % 5), Data: uint64(i)}
	}
	EncodeBenchLoop(specs) // warm the body pool
	avg := testing.AllocsPerRun(10, func() { EncodeBenchLoop(specs) })
	if perLine := avg / lines; perLine > 1 {
		t.Fatalf("encode allocs/line = %.3f, want <= 1", perLine)
	}
}
