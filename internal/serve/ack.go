package serve

// The progress-ack half of the persistent-stream protocol (the client half
// lives in stream.go). A submit request carrying HeaderAckFlush gets its 200
// committed before the body is read — HTTP/1.1 full duplex — and then one
// NDJSON ack line per flush, so a client can hold the request open across
// batches and still learn its admitted prefix with RTT latency. Failures
// after the 200 are delivered in-band as a terminal ack line carrying the
// same status / error text / retry_after_ms the buffered protocol would have
// put on the wire.

import (
	"errors"
	"net/http"
	"strconv"

	"hdcps/internal/runtime"
)

// ackLine is one NDJSON line of a progress-ack response. Progress lines
// carry only the cumulative accepted count; the terminal line adds the
// status the legacy protocol would have returned, plus error text and a
// retry hint when the stream failed.
type ackLine struct {
	Accepted     int64  `json:"accepted"`
	Status       int    `json:"status,omitempty"`
	Error        string `json:"error,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
	Final        bool   `json:"final,omitempty"`
}

// ackWriter emits the server side of the protocol. All methods run on the
// handler goroutine; the pooled body buffer keeps the per-ack hot path
// allocation-free.
type ackWriter struct {
	w     http.ResponseWriter
	rc    *http.ResponseController
	body  *bodyBuf
	acked int64 // last accepted count put on the wire
	done  bool  // terminal line written
}

// startAckStream commits the 200 and flushes headers before any body byte
// is read — without this the client (whose Do returns only on response
// headers) and the server (blocked reading the body) deadlock. The request
// header is echoed so a client can verify the server actually speaks the
// protocol rather than buffering the response to EOF.
func startAckStream(w http.ResponseWriter) *ackWriter {
	rc := http.NewResponseController(w)
	// Best-effort: recorders used in tests support neither full duplex nor
	// flush, and need neither — their body reads are never gated on writes.
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(HeaderAckFlush, "1")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()
	return &ackWriter{w: w, rc: rc, body: getBody()}
}

func (a *ackWriter) close() {
	if a.body != nil {
		putBody(a.body)
		a.body = nil
	}
}

// progress acks the cumulative accepted count. Zero-allocation: the line is
// built in the pooled buffer with strconv.
func (a *ackWriter) progress(accepted int64) {
	if a.done || accepted == a.acked {
		return
	}
	a.acked = accepted
	a.body.buf.Reset()
	buf := a.body.buf.AvailableBuffer()
	buf = append(buf, `{"accepted":`...)
	buf = strconv.AppendInt(buf, accepted, 10)
	buf = append(buf, '}', '\n')
	a.body.buf.Write(buf)
	_, _ = a.w.Write(a.body.buf.Bytes())
	_ = a.rc.Flush()
}

// fail writes the terminal line for an explicit (status, message) failure —
// the in-band equivalent of a legacy error response.
func (a *ackWriter) fail(status int, msg string, retryMs, accepted int64) {
	if a.done {
		return
	}
	a.done = true
	a.acked = accepted
	a.body.buf.Reset()
	_ = a.body.enc.Encode(ackLine{
		Accepted: accepted, Status: status, Error: msg, RetryAfterMs: retryMs, Final: true,
	})
	_, _ = a.w.Write(a.body.buf.Bytes())
	_ = a.rc.Flush()
}

// terminal maps a submit error onto its terminal line, mirroring
// submitFailure's status mapping exactly.
func (a *ackWriter) terminal(err error, accepted int64) {
	status, retryMs := submitErrShape(err)
	a.fail(status, err.Error(), retryMs, accepted)
}

// final writes the success terminal line.
func (a *ackWriter) final(accepted int64) {
	if a.done {
		return
	}
	a.done = true
	a.acked = accepted
	a.body.buf.Reset()
	_ = a.body.enc.Encode(ackLine{Accepted: accepted, Status: http.StatusOK, Final: true})
	_, _ = a.w.Write(a.body.buf.Bytes())
	_ = a.rc.Flush()
}

// submitErrShape is the pure (status, retry hint) mapping shared by the
// buffered error responses and the in-band terminal lines.
func submitErrShape(err error) (status int, retryMs int64) {
	var qe *runtime.QuotaError
	switch {
	case errors.Is(err, errDraining) || errors.Is(err, errOverload) ||
		errors.Is(err, errDeadline) || errors.Is(err, runtime.ErrStopped):
		return http.StatusServiceUnavailable, 200
	case errors.Is(err, errAborted):
		return http.StatusBadRequest, 0
	case errors.As(err, &qe):
		return http.StatusTooManyRequests, 50
	case errors.Is(err, runtime.ErrJobCancelled):
		return http.StatusConflict, 0
	default:
		return http.StatusInternalServerError, 0
	}
}

// countSubmitFailure mirrors submitFailure's counter bumps for failures
// delivered in-band.
func (s *Server) countSubmitFailure(err error) {
	switch {
	case errors.Is(err, errDraining) || errors.Is(err, errOverload):
		s.countShed()
	case errors.Is(err, errDeadline):
		s.countDeadlineHit()
	case errors.Is(err, errAborted):
		s.countConnAbort()
	}
}

// writeInBand routes a line-level or read-level failure to the right
// protocol: the terminal ack line when the request is in progress-ack mode,
// the legacy buffered error response otherwise.
func writeInBand(w http.ResponseWriter, ack *ackWriter, status int, msg string, accepted, retryMs int64) {
	if ack != nil {
		ack.fail(status, msg, retryMs, accepted)
		return
	}
	writeJSON(w, status, errorBody{Error: msg, Accepted: accepted, RetryAfterMs: retryMs})
}

// writeSubmitOK is the legacy 200, byte-identical to
// writeJSON(w, 200, submitResult{...}) but built in a pooled buffer.
func writeSubmitOK(w http.ResponseWriter, accepted int64) {
	b := getBody()
	buf := b.buf.AvailableBuffer()
	buf = append(buf, `{"accepted":`...)
	buf = strconv.AppendInt(buf, accepted, 10)
	buf = append(buf, '}', '\n')
	b.buf.Write(buf)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b.buf.Bytes())
	putBody(b)
}
