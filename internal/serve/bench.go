package serve

// The serving bench answers the question BENCH_native.json cannot: not "how
// fast does the engine chew a fixed task graph" but "how much open-loop
// traffic can the whole front-end sustain" — HTTP parsing, admission,
// submission, scheduling, and backpressure included. Per local-queue kind it
// boots a real server on a loopback listener, finds the saturation knee with
// the doubling/bisection search (internal/load.Saturate), then holds a
// fixed rate below the knee to read the latency quantiles, and finally
// proves the graceful-shutdown ledger. Results feed BENCH_serve.json and
// the serve-gate collapse detector.

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"hdcps/internal/load"
	"hdcps/internal/runtime"
)

// BenchOptions parameterize one serving sweep.
type BenchOptions struct {
	// Graph, Scale, Seed pick the builtin input (defaults road/tiny/42).
	Graph string
	Scale string
	Seed  uint64
	// Workers is the engine fleet size per server (0: 4).
	Workers int
	// Kinds are the queue kinds to sweep (nil: runtime.QueueKinds()).
	Kinds []string
	// Batch is tasks per submit request (0: 32).
	Batch int
	// ProbeDur is each saturation probe's length (0: 400ms); FixedDur the
	// fixed-rate latency run's (0: 2×ProbeDur).
	ProbeDur time.Duration
	FixedDur time.Duration
	// StartRate and CapRate bound the knee search in tasks/s
	// (0: 2000 and 2e6).
	StartRate float64
	CapRate   float64
	// Iters is the bisection depth after the doubling phase (0: 5).
	Iters int
	// Quota is the job-0 admission quota that converts saturation into
	// 429s (0: 16384).
	Quota int64
	// Streams is the persistent-stream fan-out the probes submit over
	// (0: 4). Negative selects the legacy one-POST-per-batch submitter —
	// the pr8 protocol, kept for apples-to-apples comparison runs.
	Streams int
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.Graph == "" {
		o.Graph = "road"
	}
	if o.Scale == "" {
		o.Scale = "tiny"
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if len(o.Kinds) == 0 {
		o.Kinds = runtime.QueueKinds()
	}
	if o.Batch <= 0 {
		o.Batch = 32
	}
	if o.ProbeDur <= 0 {
		o.ProbeDur = 400 * time.Millisecond
	}
	if o.FixedDur <= 0 {
		o.FixedDur = 2 * o.ProbeDur
	}
	if o.StartRate <= 0 {
		o.StartRate = 2000
	}
	if o.CapRate <= 0 {
		o.CapRate = 2e6
	}
	if o.Iters <= 0 {
		o.Iters = 5
	}
	if o.Quota <= 0 {
		o.Quota = 16384
	}
	if o.Streams == 0 {
		o.Streams = 4
	}
	return o
}

// SweepMeasure is one queue kind's row of the sweep: the knee, the probe
// trace that found it, and the fixed-rate run's latency/outcome profile.
type SweepMeasure struct {
	Queue       string            `json:"queue"`
	MaxRate     float64           `json:"max_rate_tps"`
	Probes      []load.ProbePoint `json:"probes"`
	FixedRate   float64           `json:"fixed_rate_tps"`
	AcceptedTPS float64           `json:"accepted_tps"`
	P50Ms       float64           `json:"p50_ms"`
	P99Ms       float64           `json:"p99_ms"`
	P999Ms      float64           `json:"p999_ms"`
	Accepted    int64             `json:"accepted"`
	Rejected    int64             `json:"rejected"`
	ServerErrs  int64             `json:"server_5xx"`
	// GeneratorBound marks a sweep any of whose probes overran the arrival
	// schedule (load.Result.GeneratorBound): the knee is then a lower bound
	// set by the generator, not the server.
	GeneratorBound bool `json:"generator_bound,omitempty"`
}

// RunBench sweeps every requested queue kind. logf (nil allowed) receives
// progress lines.
func RunBench(o BenchOptions, logf func(format string, args ...any)) ([]SweepMeasure, error) {
	o = o.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	out := make([]SweepMeasure, 0, len(o.Kinds))
	for _, kind := range o.Kinds {
		m, err := benchKind(o, kind, logf)
		if err != nil {
			return out, fmt.Errorf("serve bench %s: %w", kind, err)
		}
		out = append(out, m)
	}
	return out, nil
}

func benchKind(o BenchOptions, kind string, logf func(string, ...any)) (SweepMeasure, error) {
	m := SweepMeasure{Queue: kind}
	srv, err := New(Config{
		Workload:       "sssp",
		Input:          o.Graph,
		Scale:          o.Scale,
		Seed:           o.Seed,
		Workers:        o.Workers,
		QueueKind:      kind,
		DefaultQuota:   o.Quota,
		MaxOutstanding: -1, // the quota is the backpressure source under test
		DrainTimeout:   60 * time.Second,
		SeedInitial:    true,
	})
	if err != nil {
		return m, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return m, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	ctx := context.Background()
	// Converge the seeded workload before measuring: the first refresh wave
	// re-relaxes from injected nodes, and the knee should reflect the
	// steady state, not algorithm convergence.
	if err := srv.Engine().Drain(ctx); err != nil {
		return m, fmt.Errorf("initial drain: %w", err)
	}

	cl := &Client{Base: "http://" + lis.Addr().String()}
	info, err := cl.Info(ctx)
	if err != nil {
		return m, err
	}
	gen := RefreshGen(info.Nodes, int64(o.Seed))
	var submit load.Submitter
	closeStreams := func() error { return nil }
	if o.Streams > 0 {
		// The measured protocol: batches ride a fan-out of long-lived NDJSON
		// streams with per-flush acks, so a batch's latency is time to durable
		// admission. The policy rides out transient faults without masking a
		// collapse (the budget is far below a probe's duration).
		var closer io.Closer
		submit, closer = cl.StreamSubmitter(ctx, 0, gen, o.Streams, RetryPolicy{
			MaxAttempts:    10,
			BaseBackoff:    2 * time.Millisecond,
			MaxBackoff:     100 * time.Millisecond,
			Budget:         10 * time.Second,
			RequestTimeout: 10 * time.Second,
			Seed:           o.Seed,
		}, nil)
		closeStreams = closer.Close
		defer closer.Close() // idempotent: safety net for early error returns
	} else {
		submit = cl.Submitter(ctx, 0, gen)
	}

	probe := func(rate float64, d time.Duration) (load.Result, error) {
		res := load.Run(ctx, submit, load.Options{
			Rate: rate, Batch: o.Batch, Duration: d,
			Seed: int64(o.Seed), MaxInFlight: 256,
		})
		// Settle the backlog so the next probe starts from a clean engine;
		// a probe that left work the engine cannot finish is itself a
		// failure worth surfacing.
		dctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		defer cancel()
		if err := srv.Engine().Drain(dctx); err != nil {
			return res, fmt.Errorf("inter-probe drain: %w", err)
		}
		return res, nil
	}
	maxRate, trace, err := load.Saturate(probe, o.StartRate, o.CapRate, o.ProbeDur, o.Iters, load.Policy{})
	if err != nil {
		return m, err
	}
	m.MaxRate = maxRate
	m.Probes = trace
	for _, p := range trace {
		if p.GeneratorBound {
			m.GeneratorBound = true
			logf("serve-bench %-10s WARNING: probe at %.0f tasks/s was generator-bound", kind, p.Rate)
		}
	}
	logf("serve-bench %-10s knee %.0f tasks/s (%d probes)", kind, maxRate, len(trace))
	if maxRate <= 0 {
		return m, fmt.Errorf("no sustainable rate found (floor %.0f tasks/s failed: %+v)", o.StartRate, trace)
	}

	// Fixed-rate run at 60% of the knee: comfortably sustainable, so the
	// quantiles describe service latency rather than overload queueing.
	m.FixedRate = 0.6 * maxRate
	fixed := load.Run(ctx, submit, load.Options{
		Rate: m.FixedRate, Batch: o.Batch, Duration: o.FixedDur,
		Seed: int64(o.Seed) + 1, MaxInFlight: 256,
	})
	sum := fixed.Hist.Summary()
	m.AcceptedTPS = fixed.AcceptedRate()
	m.P50Ms, m.P99Ms, m.P999Ms = sum.P50Ms, sum.P99Ms, sum.P999Ms
	m.Accepted = fixed.Accepted
	m.Rejected = fixed.Rejected
	m.ServerErrs = fixed.ServerErrs
	logf("serve-bench %-10s fixed %.0f tasks/s: p50 %.2fms p99 %.2fms p99.9 %.2fms (%d accepted, %d rejected, %d 5xx)",
		kind, m.FixedRate, m.P50Ms, m.P99Ms, m.P999Ms, m.Accepted, m.Rejected, m.ServerErrs)
	if fixed.LastErr != nil && m.ServerErrs > 0 {
		logf("serve-bench %-10s last server error: %v", kind, fixed.LastErr)
	}

	// Streams must close before Shutdown: an open idle stream is an active
	// request the HTTP layer would otherwise wait out to its stall timeout.
	if err := closeStreams(); err != nil {
		return m, fmt.Errorf("closing streams: %w", err)
	}
	sctx, cancel := context.WithTimeout(ctx, 90*time.Second)
	defer cancel()
	rep, err := srv.Shutdown(sctx)
	if err != nil {
		return m, fmt.Errorf("graceful shutdown: %w", err)
	}
	if !rep.LedgerExact {
		return m, fmt.Errorf("shutdown ledger not exact: %+v", rep)
	}
	if err := <-serveErr; err != nil {
		return m, fmt.Errorf("http serve: %w", err)
	}
	return m, nil
}
