package serve

// Tests for the progress-ack protocol and the persistent-stream client.
// These need a real HTTP server (full duplex does not exist on recorders),
// so they run against httptest.NewServer, and the fault tests wrap the
// listener in netchaos exactly like the soak.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hdcps/internal/load"
	"hdcps/internal/netchaos"
)

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return lis
}

func streamPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    30,
		BaseBackoff:    2 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Budget:         60 * time.Second,
		RequestTimeout: 5 * time.Second,
		Seed:           7,
	}
}

// TestProgressAckProtocol drives the wire protocol by hand: one request
// holding the body open, asserting a flush ack arrives while the request is
// still streaming and the terminal line closes it out.
func TestProgressAckProtocol(t *testing.T) {
	s, ts := newTestServer(t, nil)
	_ = s
	pr, pw := newBlockingBody()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/0/submit", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(HeaderAckFlush, "1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want immediate 200", resp.StatusCode)
	}
	if resp.Header.Get(HeaderAckFlush) == "" {
		t.Fatal("server did not echo the ack protocol header")
	}

	// First batch: 3 lines, then idle → the server must flush and ack
	// without seeing EOF.
	body := appendTaskSpecLine(nil, TaskSpec{Node: 1})
	body = appendTaskSpecLine(body, TaskSpec{Node: 2})
	body = appendTaskSpecLine(body, TaskSpec{Node: 3})
	if _, err := pw.Write(body); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	readAck := func() ackLine {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("ack stream ended early: %v", sc.Err())
		}
		var al ackLine
		if err := json.Unmarshal(sc.Bytes(), &al); err != nil {
			t.Fatalf("bad ack line %q: %v", sc.Bytes(), err)
		}
		return al
	}
	if al := readAck(); al.Accepted != 3 || al.Final {
		t.Fatalf("first ack = %+v, want accepted 3, not final", al)
	}
	// Second batch on the same request.
	if _, err := pw.Write(appendTaskSpecLine(nil, TaskSpec{Node: 4})); err != nil {
		t.Fatal(err)
	}
	if al := readAck(); al.Accepted != 4 || al.Final {
		t.Fatalf("second ack = %+v, want accepted 4, not final", al)
	}
	pw.Close()
	if al := readAck(); !al.Final || al.Status != http.StatusOK || al.Accepted != 4 {
		t.Fatalf("terminal ack = %+v, want final status 200 accepted 4", al)
	}
}

// TestProgressAckInBandError: a bad line after the 200 commits must arrive
// as a terminal ack line carrying the legacy status and error text.
func TestProgressAckInBandError(t *testing.T) {
	_, ts := newTestServer(t, nil)
	pr, pw := newBlockingBody()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/0/submit", pr)
	req.Header.Set(HeaderAckFlush, "1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go func() {
		pw.Write([]byte("{not json}\n"))
		pw.Close()
	}()
	sc := bufio.NewScanner(resp.Body)
	var last ackLine
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad ack line %q: %v", sc.Bytes(), err)
		}
		if last.Final {
			break
		}
	}
	if last.Status != http.StatusBadRequest || !strings.Contains(last.Error, "line 1") {
		t.Fatalf("terminal = %+v, want in-band 400 naming line 1", last)
	}
}

// blockingBody is an io.Pipe wrapper usable as a request body from tests.
func newBlockingBody() (*blockingBody, *blockingBody) {
	pr, pw := newPipePair()
	return pr, pw
}

type blockingBody struct {
	read  func(p []byte) (int, error)
	write func(p []byte) (int, error)
	close func() error
}

func (b *blockingBody) Read(p []byte) (int, error)  { return b.read(p) }
func (b *blockingBody) Write(p []byte) (int, error) { return b.write(p) }
func (b *blockingBody) Close() error                { return b.close() }

func newPipePair() (*blockingBody, *blockingBody) {
	type pipe struct {
		mu     sync.Mutex
		cond   *sync.Cond
		buf    []byte
		closed bool
	}
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	r := &blockingBody{
		read: func(out []byte) (int, error) {
			p.mu.Lock()
			defer p.mu.Unlock()
			for len(p.buf) == 0 && !p.closed {
				p.cond.Wait()
			}
			if len(p.buf) == 0 {
				return 0, io.EOF
			}
			n := copy(out, p.buf)
			p.buf = p.buf[n:]
			return n, nil
		},
		close: func() error { return nil },
	}
	w := &blockingBody{
		write: func(in []byte) (int, error) {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.buf = append(p.buf, in...)
			p.cond.Broadcast()
			return len(in), nil
		},
		close: func() error {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.closed = true
			p.cond.Broadcast()
			return nil
		},
	}
	return r, w
}

func TestPersistentStreamSubmits(t *testing.T) {
	s, ts := newTestServer(t, nil)
	cl := &Client{Base: ts.URL, HC: ts.Client()}
	var st RetryStats
	ps := cl.PersistentStream(0, streamPolicy(), &st)
	ctx := context.Background()
	nodes := s.g.NumNodes()
	base := s.accepted.Load() // initial seeds

	var total int64
	for round := 0; round < 40; round++ {
		specs := make([]TaskSpec, 97) // not a multiple of submitFlush
		for i := range specs {
			specs[i] = TaskSpec{Node: uint32((round*97 + i) % nodes)}
		}
		acc, err := ps.Submit(ctx, specs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if acc != 97 {
			t.Fatalf("round %d: admitted %d, want 97", round, acc)
		}
		total += acc
	}
	if got := ps.Confirmed(); got != total {
		t.Fatalf("confirmed %d, want %d", got, total)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.accepted.Load() - base; got != total {
		t.Fatalf("server accepted %d, client confirmed %d", got, total)
	}
	// The whole run must ride ONE request: that is the point.
	if a := st.Attempts.Load(); a != 1 {
		t.Fatalf("run used %d attempts, want 1 persistent request (stats %s)", a, st.String())
	}
}

func TestPersistentStreamConcurrentSubmits(t *testing.T) {
	s, ts := newTestServer(t, nil)
	cl := &Client{Base: ts.URL, HC: ts.Client()}
	ps := cl.PersistentStream(0, streamPolicy(), nil)
	ctx := context.Background()
	nodes := s.g.NumNodes()
	base := s.accepted.Load()

	const (
		goroutines = 8
		perG       = 20
		batch      = 33
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < perG; r++ {
				specs := make([]TaskSpec, batch)
				for i := range specs {
					specs[i] = TaskSpec{Node: uint32((g + r + i) % nodes)}
				}
				if acc, err := ps.Submit(ctx, specs); err != nil || acc != batch {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := int64(goroutines * perG * batch)
	if got := ps.Confirmed(); got != want {
		t.Fatalf("confirmed %d, want %d", got, want)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.accepted.Load() - base; got != want {
		t.Fatalf("server accepted %d, want %d", got, want)
	}
}

// TestPersistentStreamReconnects: mid-stream RSTs must be healed by the
// reconnect/resume path with exactly-once accounting.
func TestPersistentStreamReconnects(t *testing.T) {
	if testing.Short() {
		t.Skip("fault test skipped in -short")
	}
	s, err := New(Config{
		Workload: "sssp", Input: "road", Scale: "tiny", Seed: 42,
		Workers: 2, SubmitStallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	inner := newLocalListener(t)
	lis := netchaos.Wrap(inner, netchaos.Config{Seed: 211, RST: 0.25})
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(lis) }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := &Client{Base: "http://" + inner.Addr().String()}
	if err := cl.WaitReady(ctx, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	var st RetryStats
	ps := cl.PersistentStream(0, streamPolicy(), &st)
	nodes := s.g.NumNodes()
	var confirmed int64
	for round := 0; round < 60; round++ {
		specs := make([]TaskSpec, 256)
		for i := range specs {
			specs[i] = TaskSpec{Node: uint32((round + i) % nodes)}
		}
		acc, err := ps.Submit(ctx, specs)
		confirmed += acc
		if err != nil {
			t.Fatalf("round %d: %v (stats %s, net %s)", round, err, st.String(), lis.Stats())
		}
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if lis.Stats().Resets.Load() == 0 {
		t.Fatal("no RSTs fired — the test proved nothing")
	}
	if st.Retries.Load() == 0 {
		t.Fatalf("stream never reconnected (%s) — faults did not reach it", st.String())
	}
	rep, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.LedgerExact {
		t.Fatalf("ledger not exact: %+v", rep)
	}
	if rep.Accepted != confirmed {
		t.Fatalf("server accepted %d, client confirmed %d — exactly-once violated", rep.Accepted, confirmed)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestPersistentStreamTerminalError: a non-retryable in-band failure (bad
// node) must kill the stream and surface on Submit.
func TestPersistentStreamTerminalError(t *testing.T) {
	s, ts := newTestServer(t, nil)
	cl := &Client{Base: ts.URL, HC: ts.Client()}
	ps := cl.PersistentStream(0, streamPolicy(), nil)
	defer ps.Close()
	ctx := context.Background()
	_, err := ps.Submit(ctx, []TaskSpec{{Node: uint32(s.g.NumNodes()) + 10}})
	if err == nil {
		t.Fatal("submit of out-of-range node succeeded")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("error %v does not carry the server's line diagnosis", err)
	}
	// The stream is dead; later submits fail fast.
	if _, err := ps.Submit(ctx, []TaskSpec{{Node: 1}}); err == nil {
		t.Fatal("submit on a dead stream succeeded")
	}
}

func TestStreamSubmitterFanout(t *testing.T) {
	s, ts := newTestServer(t, nil)
	cl := &Client{Base: ts.URL, HC: ts.Client()}
	ctx := context.Background()
	gen := RefreshGen(s.g.NumNodes(), 1)
	base := s.accepted.Load()
	sub, closer := cl.StreamSubmitter(ctx, 0, gen, 4, streamPolicy(), nil)
	var total int64
	for i := 0; i < 64; i++ {
		acc, out, err := sub(50)
		if err != nil || out != load.Accepted {
			t.Fatalf("batch %d: outcome %v err %v", i, out, err)
		}
		total += int64(acc)
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.accepted.Load() - base; got != total || total != 64*50 {
		t.Fatalf("server accepted %d, client %d, want %d", got, total, 64*50)
	}
}
