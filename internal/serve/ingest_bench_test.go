package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkSubmitIngest measures the ingest hot path at two depths:
//
//   - parse: the engine-free framer+parser+batch loop over a pre-built NDJSON
//     body — the pure per-line server cost, with allocs/line reported.
//   - loopback: full client→HTTP→handler→engine admission over a loopback
//     listener via the persistent-stream submitter, with lines/s reported.
//
// bench-smoke runs the parse variant; the allocs/line figure feeds
// BENCH_serve.json's ingest_allocs_per_line canary.
func BenchmarkSubmitIngest(b *testing.B) {
	b.Run("parse", func(b *testing.B) {
		const lines = 4096
		body := IngestBenchBody(lines, 1<<20)
		// Warm the pools so steady state is measured, not pool growth.
		if _, err := IngestBenchLoop(body); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(body)))
		b.ReportAllocs()
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			n, err := IngestBenchLoop(body)
			if err != nil {
				b.Fatal(err)
			}
			total += n
		}
		b.StopTimer()
		if total != b.N*lines {
			b.Fatalf("parsed %d lines, want %d", total, b.N*lines)
		}
		b.ReportMetric(float64(b.N*lines)/b.Elapsed().Seconds(), "lines/s")
	})

	b.Run("encode", func(b *testing.B) {
		specs := make([]TaskSpec, 4096)
		for i := range specs {
			specs[i] = TaskSpec{Node: uint32(i * 2654435761), Prio: int64(i) - 2048, Data: uint64(i)}
		}
		EncodeBenchLoop(specs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			EncodeBenchLoop(specs)
		}
		b.ReportMetric(float64(b.N*len(specs))/b.Elapsed().Seconds(), "lines/s")
	})

	b.Run("loopback", func(b *testing.B) {
		srv, err := New(Config{
			Workload: "sssp", Input: "road", Scale: "tiny", Seed: 42,
			Workers: 2, MaxOutstanding: -1, DefaultQuota: 1 << 40,
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if _, err := srv.Shutdown(ctx); err != nil {
				b.Errorf("shutdown: %v", err)
			}
		}()
		cl := &Client{Base: ts.URL}
		ps := cl.PersistentStream(0, RetryPolicy{
			MaxAttempts: 4, BaseBackoff: 2 * time.Millisecond, RequestTimeout: 10 * time.Second, Seed: 1,
		}, nil)
		const batch = 256
		specs := make([]TaskSpec, batch)
		for i := range specs {
			specs[i] = TaskSpec{Node: uint32(i * 31 % srv.g.NumNodes())}
		}
		ctx := context.Background()
		if _, err := ps.Submit(ctx, specs); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ps.Submit(ctx, specs); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "lines/s")
		if err := ps.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkSubmitIngestLegacy is the pr8 wire protocol (one buffered POST per
// batch) over the same loopback, for the protocol-level before/after.
func BenchmarkSubmitIngestLegacy(b *testing.B) {
	srv, err := New(Config{
		Workload: "sssp", Input: "road", Scale: "tiny", Seed: 42,
		Workers: 2, MaxOutstanding: -1, DefaultQuota: 1 << 40,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if _, err := srv.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	}()
	cl := &Client{Base: ts.URL, HC: &http.Client{Timeout: 30 * time.Second}}
	const batch = 256
	specs := make([]TaskSpec, batch)
	for i := range specs {
		specs[i] = TaskSpec{Node: uint32(i * 31 % srv.g.NumNodes())}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, status, err := cl.SubmitBatch(ctx, 0, specs)
		if err != nil || status != http.StatusOK || acc != batch {
			b.Fatalf("submit: acc %d status %d err %v", acc, status, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "lines/s")
}

// Guard the bench-body builder itself: it must round-trip through the real
// parser, or the parse benchmark would measure fallback paths.
func TestIngestBenchBodyParses(t *testing.T) {
	body := IngestBenchBody(100, 999)
	n, err := IngestBenchLoop(body)
	if err != nil || n != 100 {
		t.Fatalf("bench body: parsed %d err %v", n, err)
	}
	for i, line := range bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n")) {
		if _, ok := parseTaskSpecFast(line); !ok {
			t.Fatalf("line %d not on the fast path: %s", i+1, line)
		}
	}
	if _, err := IngestBenchLoop([]byte(fmt.Sprintf(`{"node":%d}`+"\n", uint64(1)<<40))); err == nil {
		t.Fatal("out-of-range node must error")
	}
}
