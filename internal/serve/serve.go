// Package serve is the network front-end over the multi-tenant Engine: a
// long-lived HTTP/JSON control-and-data plane that turns the library's
// Submit/Drain/Cancel lifecycle into endpoints a remote client (or the
// open-loop load harness in internal/load) can drive. The design constraints
// mirror the engine's own invariants:
//
//   - Backpressure is explicit, never silent: a per-job admission quota
//     rejection (runtime.QuotaError) maps to 429, a global overload shed or
//     a draining/stopped engine to 503 — both with a Retry-After hint — and
//     a cancelled job to 409. A 5xx means a bug, and the serve CI gate
//     treats any 5xx as a failure.
//   - Graceful shutdown is ledger-exact: Shutdown stops admitting, lets
//     in-flight requests finish, drains the engine, and then proves with the
//     chaos Checker that every accepted task is accounted for (processed,
//     quarantined, or cancelled — never lost) before stopping the fleet.
//   - The ops plane (expvar, pprof, the obs recorder's live snapshot) hangs
//     off the same mux, so one port serves both traffic and diagnostics.
//   - The network boundary is hostile: header reads and idle connections are
//     bounded (slowloris guard), a submit body that stops making progress is
//     cut by a stall detector, per-request deadlines propagate into the
//     admission loop, and an interrupted NDJSON stream resumes exactly-once
//     via the admitted-prefix protocol in resilience.go. Liveness (/healthz)
//     and readiness (/readyz) are split so a draining instance is taken out
//     of rotation without being killed mid-drain.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hdcps/internal/chaos"
	"hdcps/internal/graph"
	"hdcps/internal/obs"
	"hdcps/internal/runtime"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// submitFlush is how many NDJSON task lines accumulate before one
// Engine.Submit call: large enough to amortize the submission path, small
// enough that a draining server bounces a streaming client promptly.
const submitFlush = 256

// Config parameterizes one serving instance.
type Config struct {
	// Workload and Input name the job-0 algorithm and builtin graph
	// (road, cage, web, lj, grid), sized by Scale (tiny, small, large)
	// and generated from Seed.
	Workload string
	Input    string
	Scale    string
	Seed     uint64
	// Workers is the engine fleet size (0: runtime default).
	Workers int
	// QueueKind selects the local-queue shape (see runtime.QueueKinds).
	QueueKind string
	// MaxOutstanding is the global overload shed: a submit that arrives
	// while the engine-wide outstanding count exceeds it is refused with
	// 503. 0 defaults to 1<<20; negative disables the shed.
	MaxOutstanding int64
	// DefaultQuota is job 0's admission quota (runtime MaxOutstanding →
	// 429 per tenant). 0 means unlimited.
	DefaultQuota int64
	// DrainTimeout bounds Shutdown's engine drain (default 30s).
	DrainTimeout time.Duration
	// Obs attaches an observability recorder (served at /debug/obs).
	Obs bool
	// SeedInitial submits the workload's InitialTasks at startup, so the
	// algorithm state converges before external traffic lands.
	SeedInitial bool
	// Chaos, when non-nil, wraps the engine's transport with the seeded
	// engine-layer fault mix (delay, duplication, reorder, ring-full, stall)
	// so the serving path can be soaked against scheduler faults together
	// with the connection-layer faults netchaos injects. Duplicated tasks
	// re-enter through Submit and are ledger-counted; Shutdown's
	// accepted==Submitted proof accounts for them via the transport's
	// duplicate counter.
	Chaos *chaos.Config
	// ReadHeaderTimeout bounds request-header reads (the slowloris guard).
	// 0 defaults to 5s; negative disables.
	ReadHeaderTimeout time.Duration
	// IdleTimeout bounds keep-alive idleness. 0 defaults to 2m; negative
	// disables.
	IdleTimeout time.Duration
	// ReadTimeout and WriteTimeout bound a whole request read / response
	// write. Disabled by default (0): submit bodies are open-ended streams
	// and drains legitimately block for their full timeout — the stall
	// detector and per-request deadlines bound those paths instead.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// SubmitStallTimeout is the slow-client guard: a submit body that makes
	// no progress for this long is aborted with 408 reporting the admitted
	// prefix (a recovered client resumes the stream). 0 defaults to 15s;
	// negative disables.
	SubmitStallTimeout time.Duration
	// StreamCacheSize caps the exactly-once stream-resume tracker; the
	// oldest streams are evicted first. 0 defaults to 4096.
	StreamCacheSize int
	// Log receives lifecycle lines (nil: standard logger).
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Workload == "" {
		c.Workload = "sssp"
	}
	if c.Input == "" {
		c.Input = "road"
	}
	if c.Scale == "" {
		c.Scale = "small"
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 1 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.SubmitStallTimeout == 0 {
		c.SubmitStallTimeout = 15 * time.Second
	}
	if c.StreamCacheSize <= 0 {
		c.StreamCacheSize = 4096
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// buildInput generates the builtin graph for (name, scale, seed), matching
// the sizes the CLI tools use.
func buildInput(name, scale string, seed uint64) (*graph.CSR, error) {
	var roadW, cageN, webN, ljN, gridW int
	switch scale {
	case "tiny":
		roadW, cageN, webN, ljN, gridW = 48, 1500, 1500, 1200, 32
	case "small":
		roadW, cageN, webN, ljN, gridW = 120, 8000, 8000, 6000, 64
	case "large":
		roadW, cageN, webN, ljN, gridW = 240, 30000, 30000, 20000, 128
	default:
		return nil, fmt.Errorf("serve: unknown scale %q (tiny, small, large)", scale)
	}
	switch name {
	case "road":
		return graph.Road(roadW, roadW, seed), nil
	case "cage":
		return graph.Cage(cageN, 34, 80, seed), nil
	case "web":
		return graph.Web(webN, seed), nil
	case "lj":
		return graph.LJ(ljN, seed), nil
	case "grid":
		return graph.Grid(gridW, gridW, 100, seed), nil
	}
	return nil, fmt.Errorf("serve: unknown input %q (road, cage, web, lj, grid)", name)
}

// Server is one serving instance: an engine, its job handles, and the HTTP
// mux. Construct with New, expose Handler (httptest) or Serve (a real
// listener), and always finish with Shutdown — that is where the
// no-accepted-task-lost proof runs.
type Server struct {
	cfg Config
	eng *runtime.Engine
	g   *graph.CSR
	wl  workload.Workload
	rec *obs.Recorder
	mux *http.ServeMux

	mu   sync.RWMutex
	jobs map[task.JobID]*runtime.Job

	// accepted counts every task this server admitted into the engine
	// (initial seeds included). Shutdown proves accepted == Submitted.
	accepted atomic.Int64
	draining atomic.Bool
	// drainCtx is cancelled the moment draining flips, so in-flight submit
	// loops observe the admission cutoff through their one-atomic flush gate
	// (context.AfterFunc) instead of re-polling draining per flush.
	drainCtx    context.Context
	drainCancel context.CancelFunc

	// Network-boundary resilience state (resilience.go): the exactly-once
	// stream tracker, the shed/deadline/abort/resume counters, and the
	// engine-layer fault transport when Config.Chaos is set.
	streams *streamTracker
	resil   resilStats
	chaosT  *chaos.Transport

	hsMu sync.Mutex
	hs   *http.Server

	started time.Time
}

// New builds the engine, seeds it if configured, and starts the fleet.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	g, err := buildInput(cfg.Input, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	wl, err := workload.New(cfg.Workload, g)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	rcfg := runtime.DefaultConfig(workers)
	rcfg.Seed = cfg.Seed
	rcfg.QueueKind = cfg.QueueKind
	rcfg.DefaultJob = runtime.JobConfig{Name: cfg.Workload, MaxOutstanding: cfg.DefaultQuota}
	var rec *obs.Recorder
	if cfg.Obs {
		rec = obs.New(obs.Config{Workers: workers})
		rcfg.Obs = rec
	}
	var ct *chaos.Transport
	if cfg.Chaos != nil {
		ccfg := *cfg.Chaos
		rcfg.NewTransport = func(fc runtime.Config) runtime.Transport {
			ct = chaos.Wrap(runtime.NewDefaultTransport(fc), fc.Workers, ccfg)
			return ct
		}
	}
	eng := runtime.NewEngine(wl, rcfg)
	if ct != nil {
		ct.BindResubmit(func(ts ...task.Task) error { return eng.Submit(ts...) })
	}
	s := &Server{
		cfg:     cfg,
		eng:     eng,
		g:       g,
		wl:      wl,
		rec:     rec,
		jobs:    map[task.JobID]*runtime.Job{0: eng.DefaultJob()},
		streams: newStreamTracker(cfg.StreamCacheSize),
		chaosT:  ct,
		started: time.Now(),
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	if cfg.SeedInitial {
		seeds := wl.InitialTasks()
		if err := eng.Submit(seeds...); err != nil {
			return nil, fmt.Errorf("serve: seeding initial tasks: %w", err)
		}
		s.accepted.Add(int64(len(seeds)))
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	s.mux = s.buildMux()
	return s, nil
}

// Engine exposes the underlying engine (in-process benches drain between
// probes without a network round-trip).
func (s *Server) Engine() *runtime.Engine { return s.eng }

// ChaosTransport returns the engine-layer fault transport, or nil when
// Config.Chaos is unset (the CLI prints its fault counters at exit).
func (s *Server) ChaosTransport() *chaos.Transport { return s.chaosT }

// Handler returns the full mux: the /v1 API, /healthz + /readyz, and the
// ops plane.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("POST /v1/jobs/{id}/submit", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs/{id}/drain", s.handleDrain)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)

	// Ops plane: expvar, pprof (explicit routes — the server never touches
	// the DefaultServeMux), and the obs recorder's live snapshot.
	publishObsVar(s.rec)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	if s.rec != nil {
		mux.Handle("GET /debug/obs", s.rec.Handler())
	}
	return mux
}

// expvar's registry is process-global and Publish panics on a duplicate
// name, so the package registers one Func that follows the most recently
// constructed recorder (tests build many servers per process).
var (
	obsVarOnce sync.Once
	obsVarRec  atomic.Pointer[obs.Recorder]
)

func publishObsVar(rec *obs.Recorder) {
	if rec != nil {
		obsVarRec.Store(rec)
	}
	obsVarOnce.Do(func() {
		expvar.Publish("hdcps_obs", expvar.Func(func() any {
			if r := obsVarRec.Load(); r != nil {
				return r.Vars()()
			}
			return nil
		}))
	})
}

// errorBody is the JSON error envelope. Accepted carries how many tasks of
// a streaming submit were admitted before the failure, so a client can
// resume without re-sending admitted work.
type errorBody struct {
	Error        string `json:"error"`
	Accepted     int64  `json:"accepted"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeSubmitErr maps an admission failure onto its HTTP shape. The mapping
// is the backpressure contract the load harness keys off: 429 and 503 are
// retryable pressure, 409 is terminal for the job, 400 is a caller bug.
func writeSubmitErr(w http.ResponseWriter, err error, accepted int64) {
	var qe *runtime.QuotaError
	switch {
	case errors.As(err, &qe):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error: err.Error(), Accepted: accepted, RetryAfterMs: 50,
		})
	case errors.Is(err, runtime.ErrJobCancelled):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Accepted: accepted})
	case errors.Is(err, runtime.ErrStopped):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{
			Error: err.Error(), Accepted: accepted, RetryAfterMs: 200,
		})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Accepted: accepted})
	}
}

// shedErr is the 503 for a draining server or a global overload shed.
func shedErr(w http.ResponseWriter, msg string, accepted int64) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorBody{
		Error: msg, Accepted: accepted, RetryAfterMs: 200,
	})
}

// handleHealth is pure liveness: the process is up and able to answer. It
// stays 200 while draining — a draining server is alive, just not ready —
// so an orchestrator keeps it running through graceful shutdown instead of
// killing it mid-drain.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "uptime_s": time.Since(s.started).Seconds()})
}

// handleReady is readiness: whether this instance should receive new work.
// 503 with a Retry-After hint while draining or while the global overload
// shed would refuse a submit; 200 otherwise. Probe refusals are not counted
// as sheds — no offered work was turned away.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		shedErr(w, "draining", 0)
		return
	}
	if max := s.cfg.MaxOutstanding; max > 0 && s.eng.Outstanding() > max {
		shedErr(w, "overloaded", 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "uptime_s": time.Since(s.started).Seconds()})
}

// Info is the /v1/info document: what the server runs and how big the node
// ID space is (the load generator samples nodes from [0, Nodes)).
type Info struct {
	Workload    string `json:"workload"`
	Input       string `json:"input"`
	Scale       string `json:"scale"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Workers     int    `json:"workers"`
	Queue       string `json:"queue"`
	Jobs        int    `json:"jobs"`
	Draining    bool   `json:"draining"`
	Accepted    int64  `json:"accepted"`
	Outstanding int64  `json:"outstanding"`

	// Resilience counters: the network boundary's decision log.
	Shed         int64 `json:"shed"`
	DeadlineHits int64 `json:"deadline_hits"`
	ConnAborts   int64 `json:"conn_aborts"`
	Resumes      int64 `json:"resumes"`
}

func (s *Server) info() Info {
	s.mu.RLock()
	jobs := len(s.jobs)
	s.mu.RUnlock()
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	queue := s.cfg.QueueKind
	if queue == "" {
		queue = runtime.QueueTwoLevel
	}
	return Info{
		Workload:    s.cfg.Workload,
		Input:       s.cfg.Input,
		Scale:       s.cfg.Scale,
		Nodes:       s.g.NumNodes(),
		Edges:       s.g.NumEdges(),
		Workers:     workers,
		Queue:       queue,
		Jobs:        jobs,
		Draining:    s.draining.Load(),
		Accepted:    s.accepted.Load(),
		Outstanding: s.eng.Outstanding(),

		Shed:         s.resil.shed.Load(),
		DeadlineHits: s.resil.deadlineHits.Load(),
		ConnAborts:   s.resil.connAborts.Load(),
		Resumes:      s.resil.resumes.Load(),
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.info())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Snapshot())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Snapshot().Jobs)
}

// JobSpec is the POST /v1/jobs body. The new tenant runs a fresh clone of
// the server's workload over the same graph.
type JobSpec struct {
	Name           string `json:"name"`
	Weight         int    `json:"weight"`
	MaxOutstanding int64  `json:"max_outstanding"`
	TDFBias        int    `json:"tdf_bias"`
}

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.countShed()
		shedErr(w, "draining", 0)
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	job, err := s.eng.NewJob(s.wl.Clone(), runtime.JobConfig{
		Name:           spec.Name,
		Weight:         spec.Weight,
		MaxOutstanding: spec.MaxOutstanding,
		TDFBias:        spec.TDFBias,
	})
	if err != nil {
		writeSubmitErr(w, err, 0)
		return
	}
	s.mu.Lock()
	s.jobs[job.ID()] = job
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{"id": job.ID(), "name": job.Name()})
}

// jobFor resolves the {id} path value to a handle; nil means the response
// was already written.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *runtime.Job {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job id"})
		return nil
	}
	s.mu.RLock()
	job := s.jobs[task.JobID(id)]
	s.mu.RUnlock()
	if job == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %d", id)})
		return nil
	}
	return job
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// TaskSpec is one NDJSON line of a submit stream.
type TaskSpec struct {
	Node uint32 `json:"node"`
	Prio int64  `json:"prio"`
	Data uint64 `json:"data"`
}

// submitResult is the 200 body of a submit.
type submitResult struct {
	Accepted int64 `json:"accepted"`
}

// handleSubmit streams NDJSON task lines into the job, flushing every
// submitFlush lines as one Engine submit. The draining flag and the global
// shed are re-checked at every flush, so a long stream cannot outlive a
// Shutdown's admission cutoff or bury an overloaded engine. Three hardening
// layers wrap the loop (resilience.go documents the protocol):
//
//   - X-Request-Deadline-Ms propagates into the flush loop as a context
//     deadline; expiry returns 503 with the admitted prefix, so a deadline
//     cut is just another retryable backpressure signal.
//   - A stall detector arms a connection read deadline and re-arms it after
//     every flush; a body that stops making progress is cut with 408 and
//     Connection: close rather than pinning a handler goroutine forever.
//   - X-Stream-Id/X-Stream-Offset resume an interrupted stream exactly-once:
//     lines the tracker knows were admitted on a prior attempt are skipped,
//     not re-submitted, but still counted in the response's accepted total
//     so the client's accounting converges.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}

	ctx := r.Context()
	hasDeadline := false
	if ms := parseDeadlineMs(r.Header.Get(HeaderDeadlineMs)); ms > 0 {
		hasDeadline = true
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	// Stall detector: a read deadline armed now and re-armed per flush,
	// capped by the request deadline so an expired request cannot hold the
	// connection for a full stall window. Not every ResponseWriter supports
	// read deadlines (httptest recorders do not) — then the detector is off.
	armStall := func() {}
	if d := s.cfg.SubmitStallTimeout; d > 0 {
		rc := http.NewResponseController(w)
		arm := func() error {
			dl := time.Now().Add(d)
			if cd, ok := ctx.Deadline(); ok && cd.Before(dl) {
				dl = cd
			}
			return rc.SetReadDeadline(dl)
		}
		if arm() == nil {
			armStall = func() { _ = arm() }
		}
	}

	// Stream-resume state: skip counts leading lines of this request that a
	// prior attempt already admitted (its response was lost in flight).
	var (
		key     streamKey
		tracked bool
		offset  int64
		skip    int64
	)
	if id := r.Header.Get(HeaderStreamID); id != "" {
		key = streamKey{job: uint32(job.ID()), id: id}
		tracked = true
		// Serialize attempts of the same stream: a retry racing its
		// predecessor's still-draining handler would read a stale admitted
		// count and duplicate the overlap.
		if !s.streams.acquire(ctx, key) {
			s.submitFailure(w, errDeadline, 0)
			return
		}
		defer s.streams.release(key)
		offset = parseStreamOffset(r.Header.Get(HeaderStreamOffset))
		if prior := s.streams.admitted(key); prior > offset {
			skip = prior - offset
		}
		if offset > 0 || skip > 0 {
			s.countResume()
		}
	}

	// Progress-ack mode (X-Ack-Flush): the response commits 200 immediately
	// and the handler emits one NDJSON ack line per flush, so a client
	// holding a long-lived stream open learns its admitted prefix without
	// closing the request. Every later failure is delivered in-band as a
	// terminal ack line. Legacy requests (no header) keep the buffered
	// single-response protocol byte for byte.
	var ack *ackWriter
	if r.Header.Get(HeaderAckFlush) != "" {
		ack = startAckStream(w)
		defer ack.close()
	}

	// The flush gate: both cancellation sources — the request context
	// (client abort, request deadline) and the server's drain cut — latch
	// one atomic, so the steady-state flush pays a single load instead of a
	// context poll plus a draining poll. Shutdown stores draining before
	// cancelling drainCtx, so a fired gate always classifies.
	var gate atomic.Bool
	stopCtxGate := context.AfterFunc(ctx, func() { gate.Store(true) })
	defer stopCtxGate()
	stopDrainGate := context.AfterFunc(s.drainCtx, func() { gate.Store(true) })
	defer stopDrainGate()
	if ctx.Err() != nil || s.drainCtx.Err() != nil {
		// AfterFunc on an already-done context fires on its own goroutine;
		// latch synchronously so a request arriving after the cutoff is
		// refused at its first flush, deterministically.
		gate.Store(true)
	}
	maxOut := s.cfg.MaxOutstanding

	nodes := uint32(s.g.NumNodes())
	var accepted int64 // lines of this request admitted (resumed skips included)
	bb := batchPool.Get().(*[]task.Task)
	batch := (*bb)[:0]
	defer func() {
		*bb = batch[:0]
		batchPool.Put(bb)
	}()
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if gate.Load() {
			if err := ctx.Err(); err != nil {
				if hasDeadline && errors.Is(err, context.DeadlineExceeded) {
					return errDeadline
				}
				// r.Context() died: the client went away mid-stream. Nothing
				// readable will be written back, but stop admitting its work.
				return errAborted
			}
			if s.draining.Load() {
				return errDraining
			}
		}
		if maxOut > 0 && s.eng.Outstanding() > maxOut {
			return errOverload
		}
		if err := job.Submit(batch...); err != nil {
			return err
		}
		n := int64(len(batch))
		accepted += n
		s.accepted.Add(n)
		if tracked {
			s.streams.record(key, offset+accepted)
		}
		batch = batch[:0]
		armStall()
		return nil
	}
	fail := func(err error) {
		if ack != nil {
			s.countSubmitFailure(err)
			ack.terminal(err, accepted)
			return
		}
		s.submitFailure(w, err, accepted)
	}
	fr := newLineFramer(r.Body)
	defer fr.release()
	line := 0
	for {
		if ack != nil && !fr.buffered() && (len(batch) > 0 || accepted > ack.acked) {
			// Flush-on-idle: the next read would block on the network, so
			// commit the batch and ack the client's admitted prefix now —
			// ack latency tracks the RTT, not the flush cadence.
			if err := flush(); err != nil {
				fail(err)
				return
			}
			ack.progress(accepted)
		}
		raw, err := fr.next()
		if err != nil {
			if err == io.EOF {
				break
			}
			if errors.Is(err, errLineTooLong) {
				// The offending line is the next one the stream would have
				// yielded. Name it, and report the admitted prefix so the
				// client can repair the line instead of blind-retrying.
				writeInBand(w, ack, http.StatusBadRequest, fmt.Sprintf(
					"line %d: line too long (limit %d bytes)", line+1, maxLineBytes), accepted, 0)
				return
			}
			s.countConnAbort()
			switch {
			case errors.Is(err, os.ErrDeadlineExceeded) && hasDeadline && ctx.Err() != nil:
				// The read deadline that fired was the request deadline, not a
				// stalled client: report it as retryable backpressure.
				fail(errDeadline)
			case errors.Is(err, os.ErrDeadlineExceeded):
				// The body stopped making progress. The connection is poisoned
				// past its read deadline, so close it — but report the admitted
				// prefix so a recovered client can resume the stream.
				if ack == nil {
					w.Header().Set("Connection", "close")
				}
				writeInBand(w, ack, http.StatusRequestTimeout, "submit body stalled: "+err.Error(), accepted, 0)
			default:
				writeInBand(w, ack, http.StatusBadRequest, "reading body: "+err.Error(), accepted, 0)
			}
			return
		}
		if len(raw) == 0 {
			// Progress-mode clients send empty-line heartbeats while idle
			// (protocol no-ops, skipped without counting): feed the stall
			// detector so a live-but-idle stream is not cut.
			if ack != nil {
				armStall()
			}
			continue
		}
		line++
		if int64(line) <= skip {
			// Already admitted by a prior attempt: confirm, don't re-submit.
			accepted++
			continue
		}
		spec, perr := parseTaskSpecLine(raw)
		if perr != nil {
			writeInBand(w, ack, http.StatusBadRequest,
				fmt.Sprintf("line %d: bad task spec: %v", line, perr), accepted, 0)
			return
		}
		if spec.Node >= nodes {
			writeInBand(w, ack, http.StatusBadRequest,
				fmt.Sprintf("line %d: node %d out of range [0,%d)", line, spec.Node, nodes), accepted, 0)
			return
		}
		batch = append(batch, taskFromSpec(spec))
		if len(batch) >= submitFlush {
			if err := flush(); err != nil {
				fail(err)
				return
			}
			if ack != nil {
				ack.progress(accepted)
			}
		}
	}
	if err := flush(); err != nil {
		fail(err)
		return
	}
	if ack != nil {
		ack.final(accepted)
		return
	}
	writeSubmitOK(w, accepted)
}

var (
	errDraining = errors.New("serve: draining, not admitting work")
	errOverload = errors.New("serve: engine over global outstanding limit")
	errDeadline = errors.New("serve: request deadline exceeded")
	errAborted  = errors.New("serve: client went away mid-stream")
)

func (s *Server) submitFailure(w http.ResponseWriter, err error, accepted int64) {
	switch {
	case errors.Is(err, errDraining) || errors.Is(err, errOverload):
		s.countShed()
		shedErr(w, err.Error(), accepted)
	case errors.Is(err, errDeadline):
		s.countDeadlineHit()
		shedErr(w, err.Error(), accepted)
	case errors.Is(err, errAborted):
		// The peer is gone; the status is for the log, not the wire.
		s.countConnAbort()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Accepted: accepted})
	default:
		writeSubmitErr(w, err, accepted)
	}
}

// handleDrain blocks until the job is quiescent or ?timeout= (default the
// server's DrainTimeout) expires — a stall returns 504 with the engine's
// diagnostics text so the client sees which tenant wedged.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}
	d := s.cfg.DrainTimeout
	if t := r.URL.Query().Get("timeout"); t != "" {
		var err error
		if d, err = time.ParseDuration(t); err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad timeout " + t})
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	if err := job.Drain(ctx); err != nil {
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DrainTimeout)
	defer cancel()
	if err := job.Cancel(ctx); err != nil {
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// timeoutOrOff maps the config convention (negative: disabled) onto
// http.Server's (zero: disabled).
func timeoutOrOff(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// Serve runs the HTTP server on lis until Shutdown. The server's own
// timeouts bound the connection phases a malicious or broken peer controls:
// header reads (slowloris) and keep-alive idleness. Whole-request timeouts
// stay off by default — submit streams and drains are legitimately long —
// and the stall detector in handleSubmit covers the body phase instead.
func (s *Server) Serve(lis net.Listener) error {
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: timeoutOrOff(s.cfg.ReadHeaderTimeout),
		IdleTimeout:       timeoutOrOff(s.cfg.IdleTimeout),
		ReadTimeout:       timeoutOrOff(s.cfg.ReadTimeout),
		WriteTimeout:      timeoutOrOff(s.cfg.WriteTimeout),
	}
	s.hsMu.Lock()
	s.hs = hs
	s.hsMu.Unlock()
	err := hs.Serve(lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ShutdownReport is the graceful-drain verdict: the ledger totals and
// whether every accepted task was accounted for.
type ShutdownReport struct {
	Accepted    int64            `json:"accepted"`
	Snapshot    runtime.Snapshot `json:"snapshot"`
	LedgerExact bool             `json:"ledger_exact"`
}

// startDraining flips the admission cutoff: the draining flag for the
// probe/list paths, then the drainCtx cancel that fires every in-flight
// submit's flush gate. The store must precede the cancel so a fired gate
// always classifies as draining.
func (s *Server) startDraining() {
	s.draining.Store(true)
	s.drainCancel()
}

// Shutdown is the graceful SIGTERM path, in the only order that makes the
// ledger provable: stop admitting (every in-flight submit's next flush sees
// the flag), let the HTTP layer finish its in-flight requests, drain the
// engine to quiescence, prove the conservation ledger (chaos.Checker) and
// that the engine's Submitted count equals every task this server accepted,
// then stop the fleet. Any violated step returns an error and a report
// showing how far the proof got.
func (s *Server) Shutdown(ctx context.Context) (ShutdownReport, error) {
	s.startDraining()
	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()
	if hs != nil {
		if err := hs.Shutdown(ctx); err != nil {
			return ShutdownReport{Accepted: s.accepted.Load()}, fmt.Errorf("serve: http shutdown: %w", err)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	if err := s.eng.Drain(dctx); err != nil {
		return ShutdownReport{Accepted: s.accepted.Load(), Snapshot: s.eng.Snapshot()},
			fmt.Errorf("serve: engine drain: %w", err)
	}
	snap := s.eng.Snapshot()
	rep := ShutdownReport{Accepted: s.accepted.Load(), Snapshot: snap}
	var ck chaos.Checker
	if err := ck.Quiescent(snap); err != nil {
		return rep, fmt.Errorf("serve: ledger: %w", err)
	}
	wantSubmitted := rep.Accepted
	if s.chaosT != nil {
		// Engine-layer chaos duplicates re-enter through Submit — ledger-
		// counted submissions that never crossed the HTTP accept path.
		wantSubmitted += s.chaosT.Stats().Duplicates.Load()
	}
	if snap.Submitted != wantSubmitted {
		return rep, fmt.Errorf("serve: accepted-task loss: server accepted %d (%d with chaos duplicates), engine ledger submitted %d",
			rep.Accepted, wantSubmitted, snap.Submitted)
	}
	rep.LedgerExact = true
	if err := s.eng.Stop(ctx); err != nil {
		return rep, fmt.Errorf("serve: engine stop: %w", err)
	}
	return rep, nil
}
