// Package serve is the network front-end over the multi-tenant Engine: a
// long-lived HTTP/JSON control-and-data plane that turns the library's
// Submit/Drain/Cancel lifecycle into endpoints a remote client (or the
// open-loop load harness in internal/load) can drive. The design constraints
// mirror the engine's own invariants:
//
//   - Backpressure is explicit, never silent: a per-job admission quota
//     rejection (runtime.QuotaError) maps to 429, a global overload shed or
//     a draining/stopped engine to 503 — both with a Retry-After hint — and
//     a cancelled job to 409. A 5xx means a bug, and the serve CI gate
//     treats any 5xx as a failure.
//   - Graceful shutdown is ledger-exact: Shutdown stops admitting, lets
//     in-flight requests finish, drains the engine, and then proves with the
//     chaos Checker that every accepted task is accounted for (processed,
//     quarantined, or cancelled — never lost) before stopping the fleet.
//   - The ops plane (expvar, pprof, the obs recorder's live snapshot) hangs
//     off the same mux, so one port serves both traffic and diagnostics.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hdcps/internal/chaos"
	"hdcps/internal/graph"
	"hdcps/internal/obs"
	"hdcps/internal/runtime"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// submitFlush is how many NDJSON task lines accumulate before one
// Engine.Submit call: large enough to amortize the submission path, small
// enough that a draining server bounces a streaming client promptly.
const submitFlush = 256

// Config parameterizes one serving instance.
type Config struct {
	// Workload and Input name the job-0 algorithm and builtin graph
	// (road, cage, web, lj, grid), sized by Scale (tiny, small, large)
	// and generated from Seed.
	Workload string
	Input    string
	Scale    string
	Seed     uint64
	// Workers is the engine fleet size (0: runtime default).
	Workers int
	// QueueKind selects the local-queue shape (see runtime.QueueKinds).
	QueueKind string
	// MaxOutstanding is the global overload shed: a submit that arrives
	// while the engine-wide outstanding count exceeds it is refused with
	// 503. 0 defaults to 1<<20; negative disables the shed.
	MaxOutstanding int64
	// DefaultQuota is job 0's admission quota (runtime MaxOutstanding →
	// 429 per tenant). 0 means unlimited.
	DefaultQuota int64
	// DrainTimeout bounds Shutdown's engine drain (default 30s).
	DrainTimeout time.Duration
	// Obs attaches an observability recorder (served at /debug/obs).
	Obs bool
	// SeedInitial submits the workload's InitialTasks at startup, so the
	// algorithm state converges before external traffic lands.
	SeedInitial bool
	// Log receives lifecycle lines (nil: standard logger).
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Workload == "" {
		c.Workload = "sssp"
	}
	if c.Input == "" {
		c.Input = "road"
	}
	if c.Scale == "" {
		c.Scale = "small"
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 1 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// buildInput generates the builtin graph for (name, scale, seed), matching
// the sizes the CLI tools use.
func buildInput(name, scale string, seed uint64) (*graph.CSR, error) {
	var roadW, cageN, webN, ljN, gridW int
	switch scale {
	case "tiny":
		roadW, cageN, webN, ljN, gridW = 48, 1500, 1500, 1200, 32
	case "small":
		roadW, cageN, webN, ljN, gridW = 120, 8000, 8000, 6000, 64
	case "large":
		roadW, cageN, webN, ljN, gridW = 240, 30000, 30000, 20000, 128
	default:
		return nil, fmt.Errorf("serve: unknown scale %q (tiny, small, large)", scale)
	}
	switch name {
	case "road":
		return graph.Road(roadW, roadW, seed), nil
	case "cage":
		return graph.Cage(cageN, 34, 80, seed), nil
	case "web":
		return graph.Web(webN, seed), nil
	case "lj":
		return graph.LJ(ljN, seed), nil
	case "grid":
		return graph.Grid(gridW, gridW, 100, seed), nil
	}
	return nil, fmt.Errorf("serve: unknown input %q (road, cage, web, lj, grid)", name)
}

// Server is one serving instance: an engine, its job handles, and the HTTP
// mux. Construct with New, expose Handler (httptest) or Serve (a real
// listener), and always finish with Shutdown — that is where the
// no-accepted-task-lost proof runs.
type Server struct {
	cfg Config
	eng *runtime.Engine
	g   *graph.CSR
	wl  workload.Workload
	rec *obs.Recorder
	mux *http.ServeMux

	mu   sync.RWMutex
	jobs map[task.JobID]*runtime.Job

	// accepted counts every task this server admitted into the engine
	// (initial seeds included). Shutdown proves accepted == Submitted.
	accepted atomic.Int64
	draining atomic.Bool

	hsMu sync.Mutex
	hs   *http.Server

	started time.Time
}

// New builds the engine, seeds it if configured, and starts the fleet.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	g, err := buildInput(cfg.Input, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	wl, err := workload.New(cfg.Workload, g)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	rcfg := runtime.DefaultConfig(workers)
	rcfg.Seed = cfg.Seed
	rcfg.QueueKind = cfg.QueueKind
	rcfg.DefaultJob = runtime.JobConfig{Name: cfg.Workload, MaxOutstanding: cfg.DefaultQuota}
	var rec *obs.Recorder
	if cfg.Obs {
		rec = obs.New(obs.Config{Workers: workers})
		rcfg.Obs = rec
	}
	eng := runtime.NewEngine(wl, rcfg)
	s := &Server{
		cfg:     cfg,
		eng:     eng,
		g:       g,
		wl:      wl,
		rec:     rec,
		jobs:    map[task.JobID]*runtime.Job{0: eng.DefaultJob()},
		started: time.Now(),
	}
	if cfg.SeedInitial {
		seeds := wl.InitialTasks()
		if err := eng.Submit(seeds...); err != nil {
			return nil, fmt.Errorf("serve: seeding initial tasks: %w", err)
		}
		s.accepted.Add(int64(len(seeds)))
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	s.mux = s.buildMux()
	return s, nil
}

// Engine exposes the underlying engine (in-process benches drain between
// probes without a network round-trip).
func (s *Server) Engine() *runtime.Engine { return s.eng }

// Handler returns the full mux: the /v1 API, /healthz, and the ops plane.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("POST /v1/jobs/{id}/submit", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs/{id}/drain", s.handleDrain)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)

	// Ops plane: expvar, pprof (explicit routes — the server never touches
	// the DefaultServeMux), and the obs recorder's live snapshot.
	publishObsVar(s.rec)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	if s.rec != nil {
		mux.Handle("GET /debug/obs", s.rec.Handler())
	}
	return mux
}

// expvar's registry is process-global and Publish panics on a duplicate
// name, so the package registers one Func that follows the most recently
// constructed recorder (tests build many servers per process).
var (
	obsVarOnce sync.Once
	obsVarRec  atomic.Pointer[obs.Recorder]
)

func publishObsVar(rec *obs.Recorder) {
	if rec != nil {
		obsVarRec.Store(rec)
	}
	obsVarOnce.Do(func() {
		expvar.Publish("hdcps_obs", expvar.Func(func() any {
			if r := obsVarRec.Load(); r != nil {
				return r.Vars()()
			}
			return nil
		}))
	})
}

// errorBody is the JSON error envelope. Accepted carries how many tasks of
// a streaming submit were admitted before the failure, so a client can
// resume without re-sending admitted work.
type errorBody struct {
	Error        string `json:"error"`
	Accepted     int64  `json:"accepted"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeSubmitErr maps an admission failure onto its HTTP shape. The mapping
// is the backpressure contract the load harness keys off: 429 and 503 are
// retryable pressure, 409 is terminal for the job, 400 is a caller bug.
func writeSubmitErr(w http.ResponseWriter, err error, accepted int64) {
	var qe *runtime.QuotaError
	switch {
	case errors.As(err, &qe):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error: err.Error(), Accepted: accepted, RetryAfterMs: 50,
		})
	case errors.Is(err, runtime.ErrJobCancelled):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Accepted: accepted})
	case errors.Is(err, runtime.ErrStopped):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{
			Error: err.Error(), Accepted: accepted, RetryAfterMs: 200,
		})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Accepted: accepted})
	}
}

// shedErr is the 503 for a draining server or a global overload shed.
func shedErr(w http.ResponseWriter, msg string, accepted int64) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorBody{
		Error: msg, Accepted: accepted, RetryAfterMs: 200,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		shedErr(w, "draining", 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "uptime_s": time.Since(s.started).Seconds()})
}

// Info is the /v1/info document: what the server runs and how big the node
// ID space is (the load generator samples nodes from [0, Nodes)).
type Info struct {
	Workload    string `json:"workload"`
	Input       string `json:"input"`
	Scale       string `json:"scale"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Workers     int    `json:"workers"`
	Queue       string `json:"queue"`
	Jobs        int    `json:"jobs"`
	Draining    bool   `json:"draining"`
	Accepted    int64  `json:"accepted"`
	Outstanding int64  `json:"outstanding"`
}

func (s *Server) info() Info {
	s.mu.RLock()
	jobs := len(s.jobs)
	s.mu.RUnlock()
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	queue := s.cfg.QueueKind
	if queue == "" {
		queue = runtime.QueueTwoLevel
	}
	return Info{
		Workload:    s.cfg.Workload,
		Input:       s.cfg.Input,
		Scale:       s.cfg.Scale,
		Nodes:       s.g.NumNodes(),
		Edges:       s.g.NumEdges(),
		Workers:     workers,
		Queue:       queue,
		Jobs:        jobs,
		Draining:    s.draining.Load(),
		Accepted:    s.accepted.Load(),
		Outstanding: s.eng.Outstanding(),
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.info())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Snapshot())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Snapshot().Jobs)
}

// JobSpec is the POST /v1/jobs body. The new tenant runs a fresh clone of
// the server's workload over the same graph.
type JobSpec struct {
	Name           string `json:"name"`
	Weight         int    `json:"weight"`
	MaxOutstanding int64  `json:"max_outstanding"`
	TDFBias        int    `json:"tdf_bias"`
}

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		shedErr(w, "draining", 0)
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	job, err := s.eng.NewJob(s.wl.Clone(), runtime.JobConfig{
		Name:           spec.Name,
		Weight:         spec.Weight,
		MaxOutstanding: spec.MaxOutstanding,
		TDFBias:        spec.TDFBias,
	})
	if err != nil {
		writeSubmitErr(w, err, 0)
		return
	}
	s.mu.Lock()
	s.jobs[job.ID()] = job
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{"id": job.ID(), "name": job.Name()})
}

// jobFor resolves the {id} path value to a handle; nil means the response
// was already written.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *runtime.Job {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job id"})
		return nil
	}
	s.mu.RLock()
	job := s.jobs[task.JobID(id)]
	s.mu.RUnlock()
	if job == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %d", id)})
		return nil
	}
	return job
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// TaskSpec is one NDJSON line of a submit stream.
type TaskSpec struct {
	Node uint32 `json:"node"`
	Prio int64  `json:"prio"`
	Data uint64 `json:"data"`
}

// submitResult is the 200 body of a submit.
type submitResult struct {
	Accepted int64 `json:"accepted"`
}

// handleSubmit streams NDJSON task lines into the job, flushing every
// submitFlush lines as one Engine submit. The draining flag and the global
// shed are re-checked at every flush, so a long stream cannot outlive a
// Shutdown's admission cutoff or bury an overloaded engine.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}
	nodes := uint32(s.g.NumNodes())
	var accepted int64
	batch := make([]task.Task, 0, submitFlush)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if s.draining.Load() {
			return errDraining
		}
		if max := s.cfg.MaxOutstanding; max > 0 && s.eng.Outstanding() > max {
			return errOverload
		}
		if err := job.Submit(batch...); err != nil {
			return err
		}
		n := int64(len(batch))
		accepted += n
		s.accepted.Add(n)
		batch = batch[:0]
		return nil
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		line++
		var spec TaskSpec
		if err := json.Unmarshal(raw, &spec); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error:    fmt.Sprintf("line %d: bad task spec: %v", line, err),
				Accepted: accepted,
			})
			return
		}
		if spec.Node >= nodes {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error:    fmt.Sprintf("line %d: node %d out of range [0,%d)", line, spec.Node, nodes),
				Accepted: accepted,
			})
			return
		}
		batch = append(batch, task.Task{Node: graph.NodeID(spec.Node), Prio: spec.Prio, Data: spec.Data})
		if len(batch) >= submitFlush {
			if err := flush(); err != nil {
				s.submitFailure(w, err, accepted)
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading body: " + err.Error(), Accepted: accepted})
		return
	}
	if err := flush(); err != nil {
		s.submitFailure(w, err, accepted)
		return
	}
	writeJSON(w, http.StatusOK, submitResult{Accepted: accepted})
}

var (
	errDraining = errors.New("serve: draining, not admitting work")
	errOverload = errors.New("serve: engine over global outstanding limit")
)

func (s *Server) submitFailure(w http.ResponseWriter, err error, accepted int64) {
	if errors.Is(err, errDraining) || errors.Is(err, errOverload) {
		shedErr(w, err.Error(), accepted)
		return
	}
	writeSubmitErr(w, err, accepted)
}

// handleDrain blocks until the job is quiescent or ?timeout= (default the
// server's DrainTimeout) expires — a stall returns 504 with the engine's
// diagnostics text so the client sees which tenant wedged.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}
	d := s.cfg.DrainTimeout
	if t := r.URL.Query().Get("timeout"); t != "" {
		var err error
		if d, err = time.ParseDuration(t); err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad timeout " + t})
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	if err := job.Drain(ctx); err != nil {
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.jobFor(w, r)
	if job == nil {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DrainTimeout)
	defer cancel()
	if err := job.Cancel(ctx); err != nil {
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// Serve runs the HTTP server on lis until Shutdown.
func (s *Server) Serve(lis net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	s.hsMu.Lock()
	s.hs = hs
	s.hsMu.Unlock()
	err := hs.Serve(lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ShutdownReport is the graceful-drain verdict: the ledger totals and
// whether every accepted task was accounted for.
type ShutdownReport struct {
	Accepted    int64            `json:"accepted"`
	Snapshot    runtime.Snapshot `json:"snapshot"`
	LedgerExact bool             `json:"ledger_exact"`
}

// Shutdown is the graceful SIGTERM path, in the only order that makes the
// ledger provable: stop admitting (every in-flight submit's next flush sees
// the flag), let the HTTP layer finish its in-flight requests, drain the
// engine to quiescence, prove the conservation ledger (chaos.Checker) and
// that the engine's Submitted count equals every task this server accepted,
// then stop the fleet. Any violated step returns an error and a report
// showing how far the proof got.
func (s *Server) Shutdown(ctx context.Context) (ShutdownReport, error) {
	s.draining.Store(true)
	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()
	if hs != nil {
		if err := hs.Shutdown(ctx); err != nil {
			return ShutdownReport{Accepted: s.accepted.Load()}, fmt.Errorf("serve: http shutdown: %w", err)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	if err := s.eng.Drain(dctx); err != nil {
		return ShutdownReport{Accepted: s.accepted.Load(), Snapshot: s.eng.Snapshot()},
			fmt.Errorf("serve: engine drain: %w", err)
	}
	snap := s.eng.Snapshot()
	rep := ShutdownReport{Accepted: s.accepted.Load(), Snapshot: snap}
	var ck chaos.Checker
	if err := ck.Quiescent(snap); err != nil {
		return rep, fmt.Errorf("serve: ledger: %w", err)
	}
	if snap.Submitted != rep.Accepted {
		return rep, fmt.Errorf("serve: accepted-task loss: server accepted %d, engine ledger submitted %d",
			rep.Accepted, snap.Submitted)
	}
	rep.LedgerExact = true
	if err := s.eng.Stop(ctx); err != nil {
		return rep, fmt.Errorf("serve: engine stop: %w", err)
	}
	return rep, nil
}
