package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdcps/internal/runtime"
)

// newTestServer boots a small server; the caller owns Shutdown.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workload: "sssp", Input: "road", Scale: "tiny", Seed: 42,
		Workers: 2, SeedInitial: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := s.Shutdown(ctx); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return s, ts
}

func ndjson(specs ...TaskSpec) *bytes.Buffer {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, sp := range specs {
		_ = enc.Encode(sp)
	}
	return &buf
}

func TestSubmitAcceptsAndCounts(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, err := http.Post(ts.URL+"/v1/jobs/0/submit", "application/x-ndjson",
		ndjson(TaskSpec{Node: 1}, TaskSpec{Node: 2}, TaskSpec{Node: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var res submitResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 {
		t.Fatalf("accepted %d, want 3", res.Accepted)
	}
	// 3 external tasks + 1 initial seed, all in the server's accepted count.
	if got := s.accepted.Load(); got != 4 {
		t.Fatalf("server accepted %d, want 4", got)
	}
}

func TestSubmitQuotaMapsTo429(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.DefaultQuota = 8 })
	specs := make([]TaskSpec, 16)
	resp, err := http.Post(ts.URL+"/v1/jobs/0/submit", "application/x-ndjson", ndjson(specs...))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After header")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.RetryAfterMs <= 0 {
		t.Fatalf("429 body must carry retry_after_ms: %+v", eb)
	}
	if !strings.Contains(eb.Error, "quota") {
		t.Fatalf("429 body should name the quota: %+v", eb)
	}
}

func TestSubmitWhileDrainingIs503(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.startDraining()
	defer s.draining.Store(false) // let cleanup Shutdown run normally
	resp, err := http.Post(ts.URL+"/v1/jobs/0/submit", "application/x-ndjson", ndjson(TaskSpec{Node: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 must carry a Retry-After header")
	}
	// Readiness flips with the same flag; liveness must not — a draining
	// server is alive, just out of rotation.
	rdy, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rdy.Body.Close()
	if rdy.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status %d, want 503", rdy.StatusCode)
	}
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz status %d, want 200 (pure liveness)", h.StatusCode)
	}
}

func TestGlobalOverloadShedIs503(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Scale = "small"
		c.Workers = 1
		c.MaxOutstanding = 1
	})
	// Quiesce the seeded initial cascade first: with it still outstanding
	// the very first flush check would shed at accepted 0, and the point
	// here is the *mid-stream* shed reporting a non-empty admitted prefix.
	if err := s.eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Each refresh wave cascades on the small road graph, so outstanding
	// exceeds the tiny global limit by the second flush. Retry a few times
	// in case the single worker somehow kept up.
	specs := make([]TaskSpec, 600)
	for i := range specs {
		specs[i] = TaskSpec{Node: uint32(i * 7 % s.g.NumNodes())}
	}
	for attempt := 0; attempt < 10; attempt++ {
		resp, err := http.Post(ts.URL+"/v1/jobs/0/submit", "application/x-ndjson", ndjson(specs...))
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(eb.Error, "outstanding") {
				t.Fatalf("503 should name the global shed: %+v", eb)
			}
			if eb.Accepted == 0 || eb.Accepted%submitFlush != 0 {
				t.Fatalf("shed mid-stream must report the admitted prefix in flush units: %+v", eb)
			}
			return
		}
		if code != http.StatusOK {
			t.Fatalf("attempt %d: status %d, want 200 or 503", attempt, code)
		}
	}
	t.Fatal("global overload shed never triggered")
}

func TestCancelledJobIs409(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body, _ := json.Marshal(JobSpec{Name: "victim", Weight: 1})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID uint32 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == 0 {
		t.Fatalf("job create: status %d id %d", resp.StatusCode, created.ID)
	}

	c, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/cancel", ts.URL, created.ID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Body.Close()
	if c.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", c.StatusCode)
	}

	sub, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/submit", ts.URL, created.ID),
		"application/x-ndjson", ndjson(TaskSpec{Node: 1}))
	if err != nil {
		t.Fatal(err)
	}
	sub.Body.Close()
	if sub.StatusCode != http.StatusConflict {
		t.Fatalf("submit to cancelled job: status %d, want 409", sub.StatusCode)
	}
}

func TestSubmitRejectsBadInput(t *testing.T) {
	s, ts := newTestServer(t, nil)
	for name, body := range map[string]string{
		"garbage":      "{not json}\n",
		"out-of-range": fmt.Sprintf(`{"node":%d}`+"\n", s.g.NumNodes()),
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs/0/submit", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
		if !strings.Contains(eb.Error, "line 1") {
			t.Fatalf("%s: error should name the offending line: %+v", name, eb)
		}
	}
}

func TestDrainEndpointReturnsQuiescentLedger(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Post(ts.URL+"/v1/jobs/0/submit", "application/x-ndjson",
		ndjson(TaskSpec{Node: 5}, TaskSpec{Node: 6}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	d, err := http.Post(ts.URL+"/v1/jobs/0/drain?timeout=20s", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Body.Close()
	if d.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", d.StatusCode)
	}
	var st runtime.JobStats
	if err := json.NewDecoder(d.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Outstanding != 0 {
		t.Fatalf("drained job still outstanding %d", st.Outstanding)
	}
	if in, out := st.Submitted+st.Spawned, st.Processed+st.BagsRetired+st.Quarantined+st.CancelledTasks; in != out {
		t.Fatalf("job ledger unbalanced after drain: in %d out %d", in, out)
	}
}

func TestUnknownJobIs404AndOpsplaneServes(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Obs = true })
	resp, err := http.Post(ts.URL+"/v1/jobs/99/submit", "application/x-ndjson", ndjson(TaskSpec{Node: 1}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
	for _, path := range []string{"/v1/info", "/v1/snapshot", "/v1/jobs", "/debug/vars", "/debug/obs"} {
		g, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		g.Body.Close()
		if g.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, g.StatusCode)
		}
	}
}

func TestInfoExposesNodeRange(t *testing.T) {
	s, ts := newTestServer(t, nil)
	var info Info
	g, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Body.Close()
	if err := json.NewDecoder(g.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Nodes != s.g.NumNodes() || info.Workload != "sssp" || info.Queue == "" {
		t.Fatalf("info incomplete: %+v", info)
	}
}
