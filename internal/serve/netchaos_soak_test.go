package serve

// The netchaos soak: a real serve.Server behind a fault-injecting listener,
// driven by both client protocols — the one-shot retrying client and the
// persistent-stream submitter — with engine-layer chaos composed in for the
// final mix. The proof obligation is three-way ledger agreement at
// quiescence under every fault mix:
//
//	client-confirmed admissions == server accepted == engine Submitted (mod
//	chaos duplicates), and the conservation ledger balances to zero.
//
// Zero loss: every task the client was told is admitted really entered the
// engine. Zero duplication: no retry re-admitted work whose response was
// lost. CHAOS_SOAK=1 (nightly CI) lengthens the run.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"hdcps/internal/chaos"
	"hdcps/internal/netchaos"
)

func soakStreams() int {
	if os.Getenv("CHAOS_SOAK") != "" {
		return 16
	}
	return 5
}

// netchaosMix is one soak scenario: connection-layer faults, optionally
// composed with engine-layer transport faults.
type netchaosMix struct {
	name   string
	net    netchaos.Config
	engine *chaos.Config
	// wantFault reads the counters that this mix must have actually fired —
	// a soak whose faults never trigger proves nothing.
	wantFault func(st *netchaos.Stats) int64
	// wantRetry requires the client to have actually retried: the mix is
	// aggressive enough that sailing through untouched means the fault layer
	// is not reaching in-flight requests.
	wantRetry bool
}

func TestNetchaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("netchaos soak skipped in -short")
	}
	mixes := []netchaosMix{
		{
			name: "rst",
			net:  netchaos.Config{Seed: 101, RST: 0.15},
			wantFault: func(st *netchaos.Stats) int64 {
				return st.Resets.Load()
			},
			wantRetry: true,
		},
		{
			name: "stall",
			net:  netchaos.Config{Seed: 103, Stall: 0.05, StallDur: 50 * time.Millisecond},
			wantFault: func(st *netchaos.Stats) int64 {
				return st.Stalls.Load()
			},
		},
		{
			name: "shortwrite",
			net:  netchaos.Config{Seed: 107, ShortRead: 0.2, PartialWrite: 0.04},
			wantFault: func(st *netchaos.Stats) int64 {
				return st.ShortReads.Load() + st.PartialWrites.Load()
			},
		},
		{
			name: "latency-throttle",
			net:  netchaos.Config{Seed: 109, Latency: 0.2, LatencyDur: 2 * time.Millisecond, Throttle: 256 << 10},
			wantFault: func(st *netchaos.Stats) int64 {
				return st.Latencies.Load()
			},
		},
		{
			name: "combined+engine",
			net:  netchaos.Config{Seed: 113, RST: 0.03, ShortRead: 0.1, Latency: 0.05, LatencyDur: time.Millisecond, Stall: 0.01, StallDur: 20 * time.Millisecond},
			engine: &chaos.Config{
				Seed: 127, Delay: 0.05, Duplicate: 0.02, Reorder: 0.10, RingFull: 0.05, Stall: 0.01,
			},
			wantFault: func(st *netchaos.Stats) int64 {
				return st.Resets.Load() + st.ShortReads.Load() + st.Latencies.Load() + st.Stalls.Load()
			},
		},
	}
	for _, mix := range mixes {
		mix := mix
		t.Run(mix.name, func(t *testing.T) { runNetchaosMix(t, mix) })
	}
}

func runNetchaosMix(t *testing.T, mix netchaosMix) {
	const (
		goroutines = 3
		// 32 flushes per stream, and a body (~115KB) bigger than the
		// server's 64KB scan buffer: faults land between flushes, so retries
		// exercise the partial-admission resume path, not just full replays.
		tasksPerStream = 8192
	)
	streams := soakStreams()

	s, err := New(Config{
		Workload: "sssp", Input: "road", Scale: "tiny", Seed: 42,
		Workers: 2, SeedInitial: false,
		SubmitStallTimeout: 2 * time.Second,
		Chaos:              mix.engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := netchaos.Wrap(inner, mix.net)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(lis) }()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cl := &Client{
		Base: "http://" + inner.Addr().String(),
		HC:   &http.Client{Timeout: 10 * time.Second},
	}
	if err := cl.WaitReady(ctx, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	pol := RetryPolicy{
		MaxAttempts:    30,
		BaseBackoff:    2 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Budget:         60 * time.Second,
		RequestTimeout: 5 * time.Second,
		Seed:           mix.net.Seed,
	}
	var st RetryStats

	// Deterministic per-goroutine task streams; no shared generator state.
	nodes := s.g.NumNodes()
	gen := func(g, round, i int) TaskSpec {
		h := uint64(g)*0x9e3779b97f4a7c15 + uint64(round)*0xc2b2ae3d27d4eb4f + uint64(i)*0x165667b19e3779f9
		return TaskSpec{Node: uint32(h % uint64(nodes))}
	}

	var wg sync.WaitGroup
	var confirmed int64
	var mu sync.Mutex
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g == 0 {
				// One goroutine drives the persistent-stream submitter: a
				// single long-lived NDJSON request held open across batches
				// (pooled pre-encoded line buffers, per-flush acks), reconnected
				// and resumed through the same exactly-once protocol when the
				// fault layer kills it. Its confirmations enter the same
				// three-way ledger proof as the one-shot retrying client's.
				const batch = 512
				ps := cl.PersistentStream(0, pol, &st)
				defer ps.Close()
				for round := 0; round < streams; round++ {
					for off := 0; off < tasksPerStream; off += batch {
						specs := make([]TaskSpec, batch)
						for i := range specs {
							specs[i] = gen(g, round, off+i)
						}
						admitted, err := ps.Submit(ctx, specs)
						mu.Lock()
						confirmed += admitted
						mu.Unlock()
						if err != nil {
							errCh <- fmt.Errorf("goroutine %d persistent stream round %d off %d: %w", g, round, off, err)
							return
						}
					}
				}
				if err := ps.Close(); err != nil {
					errCh <- fmt.Errorf("goroutine %d persistent stream close: %w", g, err)
				}
				return
			}
			for round := 0; round < streams; round++ {
				specs := make([]TaskSpec, tasksPerStream)
				for i := range specs {
					specs[i] = gen(g, round, i)
				}
				admitted, err := cl.SubmitStream(ctx, 0, specs, pol, &st)
				mu.Lock()
				confirmed += admitted
				mu.Unlock()
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d stream %d: %w", g, round, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		// A stream failure under a bounded fault mix means the retry loop or
		// the resume protocol broke — the policy is generous enough that
		// probabilistic faults cannot exhaust it.
		t.Fatal(err)
	}

	total := int64(goroutines * streams * tasksPerStream)
	if confirmed != total {
		t.Fatalf("client confirmed %d admissions, want %d", confirmed, total)
	}
	if got := mix.wantFault(lis.Stats()); got == 0 {
		t.Fatalf("mix %+v injected no faults (%s) — the soak proved nothing", mix.net, lis.Stats())
	}
	if mix.wantRetry && st.Retries.Load() == 0 {
		t.Fatalf("mix %s never forced a retry (%s) — the resume path went unexercised", mix.name, st.String())
	}
	if mix.wantRetry && s.resil.resumes.Load() == 0 {
		t.Fatalf("mix %s never resumed a partially-admitted stream server-side — exactly-once went untested", mix.name)
	}

	// Shutdown runs the full proof: HTTP quiesced, engine drained, the
	// conservation ledger balanced, and Submitted == accepted (+ chaos
	// duplicates). On top of that: the server admitted exactly what the
	// client believes — exactly-once across every fault.
	rep, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown under %s faults: %v\nclient: %s\nnet: %s", mix.name, err, st.String(), lis.Stats())
	}
	if !rep.LedgerExact {
		t.Fatalf("ledger not exact: %+v", rep)
	}
	if rep.Accepted != total {
		t.Fatalf("server accepted %d, client confirmed %d — exactly-once violated", rep.Accepted, total)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if mix.engine != nil && s.ChaosTransport() == nil {
		t.Fatal("engine chaos configured but no transport wrapped")
	}
	t.Logf("mix %-16s client[%s] net[%s] server[resumes %d aborts %d shed %d deadline %d] accepted %d",
		mix.name, st.String(), lis.Stats(),
		s.resil.resumes.Load(), s.resil.connAborts.Load(), s.resil.shed.Load(), s.resil.deadlineHits.Load(),
		rep.Accepted)
}
