package serve

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestGracefulShutdownUnderTraffic proves the tentpole invariant: a server
// torn down in the middle of live submit traffic loses no accepted task —
// every client-visible 200's tasks appear in the engine's quiescent ledger,
// and the chaos Checker's conservation equation balances exactly.
func TestGracefulShutdownUnderTraffic(t *testing.T) {
	s, err := New(Config{
		Workload: "sssp", Input: "road", Scale: "tiny", Seed: 7,
		Workers: 2, SeedInitial: true, DrainTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(lis) }()

	cl := &Client{Base: "http://" + lis.Addr().String(), HC: &http.Client{Timeout: 10 * time.Second}}
	ctx := context.Background()
	info, err := cl.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gen := RefreshGen(info.Nodes, 7)

	// Hammer submits from several goroutines while the shutdown fires.
	var clientAccepted atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				acc, status, err := cl.SubmitBatch(ctx, 0, gen(32))
				// Accepted work counts whatever the status: a shed stream
				// reports its admitted prefix, and those tasks are in the
				// engine.
				clientAccepted.Add(acc)
				if err != nil {
					return // transport cut by shutdown: expected
				}
				switch status {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
				default:
					t.Errorf("unexpected submit status %d", status)
					return
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond) // let traffic land mid-flight

	sctx, cancel := context.WithTimeout(ctx, 90*time.Second)
	defer cancel()
	rep, err := s.Shutdown(sctx)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if !rep.LedgerExact {
		t.Fatalf("shutdown ledger not exact: %+v", rep)
	}
	if rep.Snapshot.Outstanding != 0 {
		t.Fatalf("post-shutdown outstanding %d", rep.Snapshot.Outstanding)
	}
	// The server-side accepted count must cover every task a client saw
	// admitted (the server may have admitted more: responses cut by the
	// HTTP teardown still submitted their flushes).
	if got := clientAccepted.Load() + 1; rep.Accepted < got { // +1 initial seed
		t.Fatalf("accepted-task loss: clients saw %d admitted, server ledger has %d", got, rep.Accepted)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestSigtermPathDrainsExactly exercises the exact signal flow hdcps-serve
// wires: SIGTERM → Shutdown → ledger-exact report.
func TestSigtermPathDrainsExactly(t *testing.T) {
	s, err := New(Config{
		Workload: "sssp", Input: "road", Scale: "tiny", Seed: 11,
		Workers: 2, SeedInitial: true, DrainTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Land some work through the HTTP handler so the drain has something
	// to prove.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := &Client{Base: ts.URL}
	gen := RefreshGen(s.g.NumNodes(), 11)
	for i := 0; i < 4; i++ {
		if _, status, err := cl.SubmitBatch(context.Background(), 0, gen(64)); err != nil || status != http.StatusOK {
			t.Fatalf("seed submit: status %d err %v", status, err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	defer signal.Stop(sig)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sig:
	case <-time.After(10 * time.Second):
		t.Fatal("SIGTERM never delivered")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown after SIGTERM: %v", err)
	}
	if !rep.LedgerExact || rep.Snapshot.Submitted != rep.Accepted {
		t.Fatalf("SIGTERM drain not ledger-exact: %+v", rep)
	}
}
