package exec

// The chaos executor: the native runtime behind a fault-injecting transport
// (internal/chaos), registered as "native-chaos". It exists so the CLI and
// the experiment harness can run any workload under a fault mix with one
// name, and get back both the usual metrics vocabulary and a ChaosReport
// with the injected-fault counts, the quarantine list, and the conservation
// verdict.

import (
	"context"
	"time"

	"hdcps/internal/chaos"
	"hdcps/internal/runtime"
	"hdcps/internal/stats"
	"hdcps/internal/workload"
)

// ChaosName is the registry name of the fault-injected native runtime.
const ChaosName = "native-chaos"

// ChaosReport is the fault-side outcome of a chaos run, alongside the
// stats.Run metrics.
type ChaosReport struct {
	// Mix is the fault configuration the run used.
	Mix chaos.Config
	// Faults summarizes the injected-fault counters ("delayed N batches…").
	Faults string
	// Quarantined is the poison-task list (empty unless the workload's
	// handlers panic past the retry budget).
	Quarantined []runtime.QuarantinedTask
	// Snapshot is the engine's final ledger view.
	Snapshot runtime.Snapshot
	// ConservationErr is nil when the no-task-loss invariant held at the
	// final quiescent checkpoint.
	ConservationErr error
	// DrainErr is non-nil when the run did not reach quiescence (a
	// *StallError with per-worker diagnostics).
	DrainErr error
}

// chaosConfig assembles the native runtime config for a chaos run: the same
// resolution as the plain native executor, plus a default stall watchdog so
// a wedged run diagnoses itself instead of hanging the harness.
func chaosConfig(spec Spec) runtime.Config {
	var cfg runtime.Config
	if spec.Native != nil {
		cfg = *spec.Native
	} else {
		workers := spec.Cores
		if workers <= 0 {
			workers = 4
		}
		cfg = runtime.DefaultConfig(workers)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = spec.Seed
	}
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = 30 * time.Second
	}
	return cfg
}

// RunChaos executes w under spec with the fault mix from spec.Chaos
// (DefaultMix(spec.Seed) when nil) and returns the shared metrics plus the
// chaos report. The run always terminates: quiescence, or a StallError in
// the report's DrainErr.
func RunChaos(w workload.Workload, spec Spec) (stats.Run, *ChaosReport) {
	mix := chaos.DefaultMix(spec.Seed)
	if spec.Chaos != nil {
		mix = *spec.Chaos
	}
	cfg := chaosConfig(spec)

	e, ct := chaos.Engine(w, cfg, mix)
	start := time.Now()
	_ = e.Start()
	_ = e.Submit(w.InitialTasks()...)
	drainErr := e.Drain(context.Background())
	elapsed := time.Since(start)
	_ = e.Stop(context.Background())

	snap := e.Snapshot()
	rep := &ChaosReport{
		Mix:         mix,
		Faults:      ct.Stats().String(),
		Quarantined: e.Quarantined(),
		Snapshot:    snap,
		DrainErr:    drainErr,
	}
	var chk chaos.Checker
	if drainErr == nil {
		rep.ConservationErr = chk.Quiescent(snap)
	} else {
		rep.ConservationErr = chk.Live(snap)
	}

	res := e.Result()
	return stats.Run{
		Scheduler:      ChaosName,
		Workload:       w.Name(),
		Input:          w.Graph().Name,
		Cores:          cfg.Workers,
		CompletionTime: elapsed.Nanoseconds(),
		TasksProcessed: res.TasksProcessed,
		BagsCreated:    res.BagsCreated,
		EdgesExamined:  res.EdgesExamined,
		DriftTrace:     res.DriftTrace,
		RefTrace:       res.RefTrace,
		TDFTrace:       res.TDFTrace,
	}, rep
}

// chaosExecutor adapts RunChaos to the Executor contract (the report is
// dropped; use RunChaos directly when you need it).
type chaosExecutor struct{}

func (chaosExecutor) Name() string { return ChaosName }

func (chaosExecutor) Run(w workload.Workload, spec Spec) stats.Run {
	r, _ := RunChaos(w, spec)
	return r
}
