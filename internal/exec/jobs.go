package exec

// Multi-job execution: run K workloads concurrently as tenants of ONE native
// engine (runtime.Job) and report per-job ledgers plus the fairness
// measurement the job-level scheduler is accountable for — each tenant's
// share of processed tasks while every tenant still had work, against its
// weight share. cmd/hdcps-run's -jobs/-weights flags and the fairness-sweep
// experiment both drive this path.

import (
	"context"
	"fmt"
	"time"

	"hdcps/internal/chaos"
	"hdcps/internal/runtime"
	"hdcps/internal/stats"
	"hdcps/internal/workload"
)

// JobsReport is the multi-job run's outcome: the final engine snapshot, one
// JobStats row per tenant, and the contention-window fairness shares.
type JobsReport struct {
	Elapsed  time.Duration
	Snapshot runtime.Snapshot
	Jobs     []runtime.JobStats

	// WeightShares[i] is tenant i's weight divided by the weight total;
	// Shares[i] is its share of the tasks processed across the contention
	// window — the span between the first and last observed snapshots in
	// which every tenant was backlogged (outstanding work beyond one batch
	// round per worker). Deficit round robin only equalizes backlogged
	// tenants: before a workload's frontier widens, or after it drains, its
	// share is limited by its own task supply, not by the scheduler, so
	// those phases are excluded by construction. ShareSamples is the total
	// task count the window covers; shares over a tiny sample are noise,
	// not a fairness verdict.
	WeightShares []float64
	Shares       []float64
	ShareSamples int64

	// DrainErr is the engine-wide drain failure, if any; ConservationErr is
	// the chaos.Checker verdict over the quiescent snapshot (global ledger,
	// every per-job ledger, and the partition identity between them).
	DrainErr        error
	ConservationErr error
}

// ShareError returns the largest |measured - weight| share deviation across
// the tenants (0 when the fairness window saw no work).
func (r *JobsReport) ShareError() float64 {
	var worst float64
	for i := range r.Shares {
		d := r.Shares[i] - r.WeightShares[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// RunJobs executes len(ws) workloads to completion as concurrent jobs of one
// native engine. jcs[i] parameterizes tenant i (weight, quota, name...);
// len(jcs) must equal len(ws). Every job's initial tasks are submitted
// before the fleet starts, so the tenants contend from the first scheduling
// round — the window the fairness shares are measured over. The returned
// stats.Run aggregates the whole fleet (all tenants combined).
func RunJobs(ws []workload.Workload, jcs []runtime.JobConfig, spec Spec) (stats.Run, *JobsReport, error) {
	if len(ws) == 0 || len(ws) != len(jcs) {
		return stats.Run{}, nil, fmt.Errorf("exec: RunJobs needs matching workloads and job configs (%d vs %d)", len(ws), len(jcs))
	}
	var cfg runtime.Config
	if spec.Native != nil {
		cfg = *spec.Native
	} else {
		workers := spec.Cores
		if workers <= 0 {
			workers = 4
		}
		cfg = runtime.DefaultConfig(workers)
	}
	if cfg.Seed == 0 {
		cfg.Seed = spec.Seed
	}
	cfg.DefaultJob = jcs[0]

	e := runtime.NewEngine(ws[0], cfg)
	handles := make([]*runtime.Job, len(ws))
	handles[0] = e.DefaultJob()
	for i := 1; i < len(ws); i++ {
		j, err := e.NewJob(ws[i], jcs[i])
		if err != nil {
			return stats.Run{}, nil, fmt.Errorf("exec: RunJobs job %d: %w", i, err)
		}
		handles[i] = j
	}
	for i, j := range handles {
		if err := j.Submit(ws[i].InitialTasks()...); err != nil {
			return stats.Run{}, nil, fmt.Errorf("exec: RunJobs seeding job %d: %w", i, err)
		}
	}
	started := time.Now()
	if err := e.Start(); err != nil {
		return stats.Run{}, nil, err
	}

	rep := &JobsReport{WeightShares: weightShares(jcs)}

	// Fairness window: sample snapshots until the first tenant quiesces,
	// remembering the first and last samples in which every tenant was
	// backlogged. The delta between those two bounds is the contention
	// measurement. "Backlogged" scales with the tenant's weight: to be
	// service-limited rather than supply-limited, a tenant must hold
	// roughly a full round of its own entitlement (workers × the fill
	// loop's per-weight quantum × weight) in flight — a weight-4 tenant
	// with 50 queued tasks cannot absorb half a 4-worker fleet, and
	// counting such stretches would blame the scheduler for the tenant's
	// thin supply. Polling at 200µs bounds how much ramp-up or drain tail
	// can leak into the window edges.
	minBacklog := make([]int64, len(jcs))
	for i, jc := range jcs {
		w := int64(jc.Weight)
		if w <= 0 {
			w = 1
		}
		minBacklog[i] = int64(cfg.Workers) * 32 * w
	}
	var first, last runtime.Snapshot
	haveWindow := false
	for {
		snap := e.Snapshot()
		if snap.Outstanding == 0 || !allActive(snap.Jobs) {
			break
		}
		if allBacklogged(snap.Jobs, minBacklog) {
			if !haveWindow {
				first, haveWindow = snap, true
			}
			last = snap
		}
		time.Sleep(200 * time.Microsecond)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	rep.DrainErr = e.Drain(drainCtx)
	cancel()
	rep.Elapsed = time.Since(started)
	rep.Snapshot = e.Snapshot()
	rep.Jobs = rep.Snapshot.Jobs
	_ = e.Stop(context.Background())

	var ck chaos.Checker
	rep.ConservationErr = ck.Quiescent(rep.Snapshot)

	rep.Shares = make([]float64, len(rep.Jobs))
	if haveWindow {
		deltas := make([]int64, len(last.Jobs))
		var total int64
		for i := range last.Jobs {
			deltas[i] = last.Jobs[i].Processed - first.Jobs[i].Processed
			total += deltas[i]
		}
		rep.ShareSamples = total
		if total > 0 {
			for i, d := range deltas {
				rep.Shares[i] = float64(d) / float64(total)
			}
		}
	}

	s := rep.Snapshot
	r := stats.Run{
		Scheduler:      "native-hdcps-jobs",
		Workload:       ws[0].Name(),
		Input:          ws[0].Graph().Name,
		Cores:          cfg.Workers,
		CompletionTime: rep.Elapsed.Nanoseconds(),
		TasksProcessed: s.TasksProcessed,
		BagsCreated:    s.BagsCreated,
		EdgesExamined:  s.EdgesExamined,
	}
	return r, rep, nil
}

func weightShares(jcs []runtime.JobConfig) []float64 {
	shares := make([]float64, len(jcs))
	var total float64
	for i, jc := range jcs {
		w := jc.Weight
		if w <= 0 {
			w = 1
		}
		shares[i] = float64(w)
		total += float64(w)
	}
	for i := range shares {
		shares[i] /= total
	}
	return shares
}

func allActive(jobs []runtime.JobStats) bool {
	for _, j := range jobs {
		if j.Outstanding == 0 {
			return false
		}
	}
	return len(jobs) > 0
}

func allBacklogged(jobs []runtime.JobStats, min []int64) bool {
	if len(jobs) != len(min) {
		return false
	}
	for i, j := range jobs {
		if j.Outstanding < min[i] {
			return false
		}
	}
	return len(jobs) > 0
}
