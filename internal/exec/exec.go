// Package exec is the unified executor registry: every way this repository
// can execute a workload to completion — each simulated scheduler from
// internal/sched and the native goroutine runtime from internal/runtime —
// resolved by one name lookup and run through one interface. Callers
// (cmd/hdcps-run, the experiment harness, the public facade) no longer need
// to know whether a name denotes a cycle-accurate simulation or a real
// goroutine fleet.
package exec

import (
	"fmt"

	"hdcps/internal/chaos"
	"hdcps/internal/runtime"
	"hdcps/internal/sched"
	"hdcps/internal/sim"
	"hdcps/internal/stats"
	"hdcps/internal/workload"
)

// NativeName is the registry name of the goroutine-based native runtime.
const NativeName = "native"

// Spec is the executor-independent run specification. Zero values select
// each executor's defaults.
type Spec struct {
	// Cores is the simulated core count or the native worker count
	// (0 → 40 simulated cores, 4 native workers — the historical defaults).
	Cores int
	// Seed drives destination selection (native) and simulator randomness.
	Seed uint64
	// Hardware selects the Table I machine for simulated executors
	// (hRQ/hPQ enabled); ignored by the native executor.
	Hardware bool
	// Machine fully overrides the simulated machine configuration;
	// Cores/Hardware are ignored when set. Simulated executors only.
	Machine *sim.Config
	// Native fully overrides the native runtime configuration; Cores is
	// ignored when set (Seed still applies if Native.Seed is zero).
	// Native and native-chaos executors only.
	Native *runtime.Config
	// Chaos selects the fault mix for the native-chaos executor
	// (nil → chaos.DefaultMix(Seed)). Ignored by every other executor.
	Chaos *chaos.Config
}

// Executor runs a workload to completion and reports the shared metrics
// vocabulary. Implementations reset the workload before running it.
type Executor interface {
	// Name returns the registry name the executor resolves under.
	Name() string
	// Run executes w with spec and returns the run's metrics.
	Run(w workload.Workload, spec Spec) stats.Run
}

// ByName resolves an executor: NativeName for the goroutine runtime,
// ChaosName for the fault-injected runtime, or any scheduler name
// sched.ByName accepts for a simulated run.
func ByName(name string) (Executor, error) {
	switch name {
	case NativeName:
		return nativeExecutor{}, nil
	case ChaosName:
		return chaosExecutor{}, nil
	}
	s, err := sched.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("exec: unknown executor %q (simulated: %v; native: %q, %q)",
			name, sched.Names(), NativeName, ChaosName)
	}
	return simExecutor{s}, nil
}

// Names lists every registered executor: the simulated schedulers in their
// usual order, then the native runtime and its chaos variant.
func Names() []string {
	return append(sched.Names(), NativeName, ChaosName)
}

// simExecutor adapts a sched.Scheduler to the Executor contract.
type simExecutor struct{ s sched.Scheduler }

func (x simExecutor) Name() string { return x.s.Name() }

func (x simExecutor) Run(w workload.Workload, spec Spec) stats.Run {
	cfg := x.machine(spec)
	return x.s.Run(w, cfg, spec.Seed)
}

func (x simExecutor) machine(spec Spec) sim.Config {
	if spec.Machine != nil {
		return *spec.Machine
	}
	if spec.Hardware {
		cfg := sim.DefaultHW()
		if spec.Cores > 0 {
			cfg.Cores = spec.Cores
		}
		return cfg
	}
	cores := spec.Cores
	if cores <= 0 {
		cores = 40
	}
	return sim.DefaultSW(cores)
}

// nativeExecutor adapts the goroutine runtime to the Executor contract.
type nativeExecutor struct{}

func (nativeExecutor) Name() string { return NativeName }

func (nativeExecutor) Run(w workload.Workload, spec Spec) stats.Run {
	var cfg runtime.Config
	if spec.Native != nil {
		cfg = *spec.Native
	} else {
		workers := spec.Cores
		if workers <= 0 {
			workers = 4
		}
		cfg = runtime.DefaultConfig(workers)
	}
	if cfg.Seed == 0 {
		cfg.Seed = spec.Seed
	}
	return runtime.RunAsStats(w, cfg)
}
