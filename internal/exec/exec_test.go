package exec

import (
	"testing"

	"hdcps/internal/chaos"
	"hdcps/internal/graph"
	"hdcps/internal/sched"
	"hdcps/internal/sim"
	"hdcps/internal/workload"
)

func TestByNameNative(t *testing.T) {
	x, err := ByName(NativeName)
	if err != nil {
		t.Fatal(err)
	}
	if x.Name() != NativeName {
		t.Fatalf("name %q", x.Name())
	}
	g := graph.Road(12, 12, 3)
	w, err := workload.New("sssp", g)
	if err != nil {
		t.Fatal(err)
	}
	r := x.Run(w, Spec{Cores: 2, Seed: 7})
	if r.CompletionTime <= 0 || r.TasksProcessed <= 0 {
		t.Fatalf("empty native run: %+v", r)
	}
	if r.EdgesExamined <= 0 {
		t.Fatalf("native run dropped EdgesExamined: %+v", r)
	}
	if r.Cores != 2 {
		t.Fatalf("cores %d, want 2", r.Cores)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestByNameSimulated(t *testing.T) {
	x, err := ByName("hdcps-sw")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Road(12, 12, 3)
	w, err := workload.New("bfs", g)
	if err != nil {
		t.Fatal(err)
	}
	r := x.Run(w, Spec{Cores: 8, Seed: 3})
	if r.CompletionTime <= 0 || r.Cores != 8 {
		t.Fatalf("sim run wrong: %+v", r)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}

	// Hardware flag selects the Table I machine.
	hw := x.Run(w.Clone(), Spec{Seed: 3, Hardware: true})
	if want := sim.DefaultHW().Cores; hw.Cores != want {
		t.Fatalf("hardware cores %d, want %d", hw.Cores, want)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown executor must error")
	}
}

func TestNamesCoverSchedulersPlusNative(t *testing.T) {
	names := Names()
	want := len(sched.Names()) + 2 // native + native-chaos
	if len(names) != want {
		t.Fatalf("%d executors, want %d", len(names), want)
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
		if _, err := ByName(n); err != nil {
			t.Errorf("registered executor %q does not resolve: %v", n, err)
		}
	}
	if !seen[NativeName] || !seen[ChaosName] {
		t.Fatalf("registry misses %q or %q: %v", NativeName, ChaosName, names)
	}
}

func TestRunChaos(t *testing.T) {
	g := graph.Road(12, 12, 3)
	w, err := workload.New("sssp", g)
	if err != nil {
		t.Fatal(err)
	}
	mix := chaos.Config{Seed: 9, Delay: 0.1, Reorder: 0.3, RingFull: 0.1}
	r, rep := RunChaos(w, Spec{Cores: 2, Seed: 9, Chaos: &mix})
	if r.Scheduler != ChaosName || r.TasksProcessed <= 0 {
		t.Fatalf("empty chaos run: %+v", r)
	}
	if rep.DrainErr != nil {
		t.Fatalf("chaos run stalled: %v", rep.DrainErr)
	}
	if rep.ConservationErr != nil {
		t.Fatalf("conservation violated: %v", rep.ConservationErr)
	}
	if rep.Snapshot.Outstanding != 0 {
		t.Fatalf("outstanding %d after drain", rep.Snapshot.Outstanding)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("healthy workload quarantined %d tasks", len(rep.Quarantined))
	}
	if rep.Faults == "" || rep.Mix != mix {
		t.Fatalf("report incomplete: %+v", rep)
	}
	// Transport faults must not change the answer.
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}

	// The registry resolves the same path.
	x, err := ByName(ChaosName)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := x.Run(w.Clone(), Spec{Cores: 2, Seed: 9}); r2.TasksProcessed <= 0 {
		t.Fatalf("registry chaos run empty: %+v", r2)
	}
}
