// Package sim is a deterministic discrete-event multicore simulator modeled
// after the paper's evaluation vehicles: the in-house RISC-V 64-core tiled
// multicore of Table I (hardware mode) and, with a software cost model, the
// 40-core Intel Xeon used for the software CPS comparisons. Cores are
// event-driven state machines; a scheduler (package sched) implements the
// Handler interface and charges cycle costs for every operation it models.
//
// Everything is deterministic: events are ordered by (cycle, sequence
// number) and all randomness comes from seeded generators, so a given
// (config, scheduler, workload, seed) always produces identical results.
package sim

import "fmt"

// Config holds the machine parameters. The defaults mirror Table I.
type Config struct {
	// Cores is the number of cores (Table I: 64; the Xeon experiments: 40).
	Cores int
	// MeshW and MeshH are the 2-D mesh dimensions. If zero they are derived
	// as the most square factorization of Cores.
	MeshW, MeshH int

	// HopCycles is the per-hop latency (1 router + 1 link = 2 cycles).
	HopCycles int64
	// FlitBits is the link width; a message of N bits serializes into
	// ceil(N/FlitBits) flits that occupy each traversed link.
	FlitBits int

	// HWQueueCycles is the access latency of the hardware queues (5).
	HWQueueCycles int64
	// HRQSize and HPQSize are the per-core hardware receive/priority queue
	// entries (32 and 48). Zero entries disable the queue: with both zero
	// the machine is the software-only configuration (§III-D).
	HRQSize, HPQSize int
	// EntryBits is the size of a task/bag hardware entry (128).
	EntryBits int

	// Cache model: private two-level hierarchy per core.
	L1Lines int   // 32KB / 64B = 512 lines
	L2Lines int   // 256KB / 64B = 4096 lines
	L1Hit   int64 // 1 cycle
	L2Hit   int64 // ~8 cycles
	// DRAM: controllers with a 100-cycle (100ns @ 1GHz) access latency and
	// per-controller serialization modeling bounded bandwidth.
	DRAMControllers int
	DRAMLatency     int64
	DRAMServiceGap  int64 // min cycles between accesses at one controller

	// Software cost model (cycles), calibrated to the relative costs the
	// paper attributes to software CPS designs: O(log n) priority-queue
	// rebalancing, cheap receive-ring atomics, and contended lock hand-off
	// for globally shared structures.
	SWPQBase   int64 // software PQ op fixed cost
	SWPQPerLog int64 // additional cost per log2(queue length)
	SWRQCost   int64 // receive-ring claim+publish (two atomics)
	SWLockCost int64 // uncontended lock acquire+release
	AtomicRMW  int64 // single remote atomic (CAS/fetch-add)
	// SWTransferCycles is the extra latency before a software task hand-off
	// becomes visible at the destination (coherence round trips through the
	// cache hierarchy). It is what hardware messaging eliminates: with
	// HRQSize > 0 transfers ride the NoC instead and skip this cost.
	SWTransferCycles int64
	// RemoteOpPenalty multiplies the cost of a data-structure operation
	// performed on *another* core's memory (e.g. RELD's remote insert into
	// the destination's priority queue): every sift step is a remote cache
	// miss rather than a local hit.
	RemoteOpPenalty int64

	// Task cost model.
	TaskBaseCycles int64 // fixed per-task work
	EdgeCycles     int64 // per examined edge, on top of memory costs

	// Bag handling costs (§III-B): creating a bag and packing each task.
	BagBaseCycles    int64
	BagPerTaskCycles int64
}

// DefaultHW returns the Table I configuration: 64 in-order cores at 1 GHz,
// 8x8 mesh, hardware queues enabled.
func DefaultHW() Config {
	c := baseCosts()
	c.Cores = 64
	c.HRQSize = 32
	c.HPQSize = 48
	return c
}

// DefaultSW returns the software-mode machine used for the Xeon-side
// experiments: the same fabric with the hardware queues disabled (§III-D:
// "if the size of both these queues is set to zero, then the system becomes
// a software-only solution").
func DefaultSW(cores int) Config {
	c := baseCosts()
	c.Cores = cores
	c.HRQSize = 0
	c.HPQSize = 0
	return c
}

func baseCosts() Config {
	return Config{
		HopCycles:       2,
		FlitBits:        64,
		HWQueueCycles:   5,
		EntryBits:       128,
		L1Lines:         512,
		L2Lines:         4096,
		L1Hit:           1,
		L2Hit:           8,
		DRAMControllers: 8,
		DRAMLatency:     100,
		DRAMServiceGap:  2,
		// Software costs are calibrated so scheduling dominates the tiny
		// tasks of graph workloads, as the paper measures on the Xeon:
		// a contended lock hand-off and a heap rebalance each cost a few
		// hundred cycles while a task's own compute is of the same order.
		SWPQBase:         120,
		SWPQPerLog:       20,
		SWRQCost:         90,
		SWLockCost:       150,
		AtomicRMW:        80,
		SWTransferCycles: 500,
		RemoteOpPenalty:  3,
		TaskBaseCycles:   60,
		EdgeCycles:       8,
		BagBaseCycles:    25,
		BagPerTaskCycles: 4,
	}
}

// normalized fills derived fields and validates; it panics on nonsense
// configurations because these are programmer errors in experiment setup.
func (c Config) normalized() Config {
	if c.Cores <= 0 {
		panic("sim: Config.Cores must be positive")
	}
	if c.MeshW == 0 || c.MeshH == 0 {
		c.MeshW, c.MeshH = squarest(c.Cores)
	}
	if c.MeshW*c.MeshH < c.Cores {
		panic(fmt.Sprintf("sim: mesh %dx%d too small for %d cores", c.MeshW, c.MeshH, c.Cores))
	}
	if c.FlitBits <= 0 {
		c.FlitBits = 64
	}
	if c.EntryBits <= 0 {
		c.EntryBits = 128
	}
	if c.DRAMControllers <= 0 {
		c.DRAMControllers = 1
	}
	return c
}

// squarest returns the factorization of n closest to a square, padding to
// the next rectangle when n is prime-ish.
func squarest(n int) (w, h int) {
	best := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			best = f
		}
	}
	w, h = n/best, best
	// A degenerate 1-row mesh for a large core count is unrealistic; pad
	// the mesh instead (unused tiles are just never addressed).
	if h == 1 && n > 3 {
		for w = 2; w*w < n; w++ {
		}
		h = (n + w - 1) / w
	}
	return w, h
}

// Flits returns the number of flits a payload of bits occupies.
func (c Config) Flits(bits int) int64 {
	f := (bits + c.FlitBits - 1) / c.FlitBits
	if f < 1 {
		f = 1
	}
	return int64(f)
}
