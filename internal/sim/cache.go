package sim

// memory models the per-core private two-level cache hierarchy and the
// shared DRAM controllers of Table I. Caches are direct-mapped tag arrays
// over 64-byte lines — deliberately simple, but enough to expose the
// locality differences (banded CAGE vs random web accesses) the paper's
// analysis leans on. DRAM controllers serialize accesses with a minimum
// service gap, modeling bounded per-controller bandwidth.
type memory struct {
	cfg    Config
	l1, l2 [][]uint64 // per-core tag arrays; tag 0 = empty
	ctrls  []dramCtrl

	// Stats counters (exported through Machine.MemStats for diagnostics).
	hits1, hits2, misses int64
}

// dramCtrl models bounded per-controller bandwidth with a sliding window:
// accesses beyond the window's service capacity pay a queuing delay. The
// window formulation is insensitive to the issue order of accesses, which
// matters because handlers issue accesses at offsets within a macro-step.
type dramCtrl struct {
	window int64
	count  int64
}

const (
	lineShift      = 6  // 64-byte lines
	dramWindowBits = 10 // 1024-cycle bandwidth accounting windows
)

func newMemory(cfg Config) *memory {
	m := &memory{cfg: cfg, ctrls: make([]dramCtrl, cfg.DRAMControllers)}
	m.l1 = make([][]uint64, cfg.Cores)
	m.l2 = make([][]uint64, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		m.l1[i] = make([]uint64, max(cfg.L1Lines, 1))
		m.l2[i] = make([]uint64, max(cfg.L2Lines, 1))
	}
	return m
}

// access returns the latency of touching bytes at addr from core at time
// now, updating cache state. Multi-line accesses pay per line.
func (m *memory) access(core int, addr uint64, bytes int, now int64) int64 {
	if bytes <= 0 {
		bytes = 1
	}
	first := addr >> lineShift
	last := (addr + uint64(bytes) - 1) >> lineShift
	var total int64
	for line := first; line <= last; line++ {
		total += m.accessLine(core, line, now+total)
	}
	return total
}

func (m *memory) accessLine(core int, line uint64, now int64) int64 {
	tag := line + 1 // avoid the empty sentinel
	l1 := m.l1[core]
	s1 := line % uint64(len(l1))
	if l1[s1] == tag {
		m.hits1++
		return m.cfg.L1Hit
	}
	l2 := m.l2[core]
	s2 := line % uint64(len(l2))
	if l2[s2] == tag {
		m.hits2++
		l1[s1] = tag
		return m.cfg.L2Hit
	}
	// Miss: fill from DRAM through the line's home controller.
	m.misses++
	l1[s1] = tag
	l2[s2] = tag
	c := &m.ctrls[line%uint64(len(m.ctrls))]
	w := now >> dramWindowBits
	if c.window != w {
		c.window = w
		c.count = 0
	}
	c.count++
	var queue int64
	if capacity := int64(1) << dramWindowBits / max64(m.cfg.DRAMServiceGap, 1); c.count > capacity {
		queue = (c.count - capacity) * m.cfg.DRAMServiceGap
	}
	return queue + m.cfg.DRAMLatency
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
