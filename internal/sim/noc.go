package sim

// noc models the electrical 2-D mesh with X-Y dimension-order routing of
// Table I: 2 cycles per hop (1 router + 1 link), 64-bit flits, and link
// contention only (infinite input buffers), exactly the paper's contention
// model. Each directed link tracks the cycle at which it next becomes free;
// a message's flits must serialize through every link on its route.
type noc struct {
	w, h int
	hop  int64
	// linkFree[tile*4+dir] is the next free cycle of the directed link
	// leaving tile in direction dir.
	linkFree []int64
}

// link directions.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

func newNoC(cfg Config) *noc {
	return &noc{
		w:        cfg.MeshW,
		h:        cfg.MeshH,
		hop:      cfg.HopCycles,
		linkFree: make([]int64, cfg.MeshW*cfg.MeshH*4),
	}
}

// route sends flits from core src to core dst starting at cycle depart and
// returns the arrival cycle at dst. X-Y routing: move along X to the
// destination column, then along Y.
func (n *noc) route(src, dst int, flits, depart int64) int64 {
	if src == dst {
		return depart + n.hop // local loopback through the router
	}
	t := depart
	x, y := src%n.w, src/n.w
	dx, dy := dst%n.w, dst/n.w
	step := func(tile, dir int) {
		l := tile*4 + dir
		if n.linkFree[l] > t {
			t = n.linkFree[l] // wait for the link (contention)
		}
		n.linkFree[l] = t + flits // serialize our flits
		t += n.hop                // head flit advances one hop
	}
	for x != dx {
		if dx > x {
			step(y*n.w+x, dirEast)
			x++
		} else {
			step(y*n.w+x, dirWest)
			x--
		}
	}
	for y != dy {
		if dy > y {
			step(y*n.w+x, dirSouth)
			y++
		} else {
			step(y*n.w+x, dirNorth)
			y--
		}
	}
	// Tail flits drain behind the head.
	return t + flits - 1
}

// hops returns the Manhattan distance between two cores (used by cost
// heuristics and tests).
func (n *noc) hops(src, dst int) int64 {
	x, y := src%n.w, src/n.w
	dx, dy := dst%n.w, dst/n.w
	h := x - dx
	if h < 0 {
		h = -h
	}
	v := y - dy
	if v < 0 {
		v = -v
	}
	return int64(h + v)
}
