package sim

import (
	"testing"

	"hdcps/internal/stats"
)

func TestSquarest(t *testing.T) {
	for _, tc := range []struct{ n, w, h int }{
		{64, 8, 8}, {40, 8, 5}, {16, 4, 4}, {12, 4, 3}, {1, 1, 1}, {2, 2, 1},
	} {
		w, h := squarest(tc.n)
		if w*h < tc.n {
			t.Errorf("squarest(%d) = %dx%d too small", tc.n, w, h)
		}
		if tc.n >= 4 && (w == tc.n || h == tc.n) {
			t.Errorf("squarest(%d) = %dx%d degenerate", tc.n, w, h)
		}
	}
	// Prime core count pads the mesh.
	w, h := squarest(7)
	if w*h < 7 {
		t.Errorf("squarest(7) = %dx%d", w, h)
	}
}

func TestConfigFlits(t *testing.T) {
	c := DefaultHW()
	if c.Flits(128) != 2 || c.Flits(64) != 1 || c.Flits(65) != 2 || c.Flits(0) != 1 {
		t.Fatalf("flit math wrong: %d %d %d %d",
			c.Flits(128), c.Flits(64), c.Flits(65), c.Flits(0))
	}
}

func TestDefaultConfigsMatchTable1(t *testing.T) {
	hw := DefaultHW()
	if hw.Cores != 64 || hw.HRQSize != 32 || hw.HPQSize != 48 ||
		hw.HWQueueCycles != 5 || hw.HopCycles != 2 || hw.DRAMControllers != 8 ||
		hw.DRAMLatency != 100 || hw.EntryBits != 128 {
		t.Fatalf("DefaultHW diverges from Table I: %+v", hw)
	}
	sw := DefaultSW(40)
	if sw.Cores != 40 || sw.HRQSize != 0 || sw.HPQSize != 0 {
		t.Fatalf("DefaultSW wrong: %+v", sw)
	}
}

func TestNoCXYRouting(t *testing.T) {
	cfg := DefaultHW().normalized() // 8x8
	n := newNoC(cfg)
	// Same tile: loopback costs one hop.
	if got := n.route(5, 5, 1, 100) - 100; got != cfg.HopCycles {
		t.Fatalf("loopback latency = %d", got)
	}
	// Corner to corner on 8x8: 14 hops, no contention, 1 flit.
	lat := n.route(0, 63, 1, 0)
	want := 14*cfg.HopCycles + 0 // +flits-1 = 0
	if lat != want {
		t.Fatalf("corner-to-corner latency = %d, want %d", lat, want)
	}
	if n.hops(0, 63) != 14 {
		t.Fatalf("hops(0,63) = %d", n.hops(0, 63))
	}
}

func TestNoCLinkContention(t *testing.T) {
	cfg := DefaultHW().normalized()
	n := newNoC(cfg)
	// Two simultaneous 8-flit messages over the same first link: the second
	// must wait for the first's flits to serialize.
	a := n.route(0, 1, 8, 0)
	b := n.route(0, 1, 8, 0)
	if b <= a {
		t.Fatalf("no contention: first %d, second %d", a, b)
	}
	// Disjoint routes do not interfere.
	n2 := newNoC(cfg)
	c1 := n2.route(0, 1, 8, 0)
	c2 := n2.route(16, 17, 8, 0) // different row
	if c2-0 != c1-0 {
		t.Fatalf("disjoint routes interfered: %d vs %d", c1, c2)
	}
}

func TestNoCDeterminism(t *testing.T) {
	cfg := DefaultHW().normalized()
	run := func() []int64 {
		n := newNoC(cfg)
		var out []int64
		for i := 0; i < 100; i++ {
			out = append(out, n.route(i%64, (i*7)%64, int64(1+i%4), int64(i)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestCacheHierarchy(t *testing.T) {
	cfg := DefaultHW().normalized()
	mem := newMemory(cfg)
	// First touch: DRAM.
	if lat := mem.access(0, 0x1000, 8, 0); lat < cfg.DRAMLatency {
		t.Fatalf("cold access latency %d < DRAM %d", lat, cfg.DRAMLatency)
	}
	// Second touch: L1.
	if lat := mem.access(0, 0x1000, 8, 200); lat != cfg.L1Hit {
		t.Fatalf("warm access latency %d, want L1 %d", lat, cfg.L1Hit)
	}
	// Another core does not share the private cache.
	if lat := mem.access(1, 0x1000, 8, 300); lat < cfg.DRAMLatency {
		t.Fatalf("other core got a private hit: %d", lat)
	}
}

func TestCacheL2Catch(t *testing.T) {
	cfg := DefaultHW().normalized()
	mem := newMemory(cfg)
	mem.access(0, 0x2000, 8, 0)
	// Evict from L1 by touching a conflicting line (same L1 set, different
	// L2 set): L1 is 512 lines, L2 4096, so +512 lines conflicts in L1 only.
	conflict := uint64(0x2000) + uint64(cfg.L1Lines)<<lineShift
	mem.access(0, conflict, 8, 200)
	if lat := mem.access(0, 0x2000, 8, 400); lat != cfg.L2Hit {
		t.Fatalf("expected L2 hit (%d), got %d", cfg.L2Hit, lat)
	}
}

func TestCacheMultiLine(t *testing.T) {
	cfg := DefaultHW().normalized()
	mem := newMemory(cfg)
	// 128 bytes spanning two lines costs two accesses.
	cold := mem.access(0, 0, 128, 0)
	if cold < 2*cfg.DRAMLatency {
		t.Fatalf("two-line cold access %d < %d", cold, 2*cfg.DRAMLatency)
	}
	warm := mem.access(0, 0, 128, 1000)
	if warm != 2*cfg.L1Hit {
		t.Fatalf("two-line warm access %d, want %d", warm, 2*cfg.L1Hit)
	}
}

func TestDRAMQueuing(t *testing.T) {
	cfg := DefaultHW().normalized()
	mem := newMemory(cfg)
	// Hammer one controller past its per-window service capacity: lines 8
	// controllers apart map to the same one, and the window holds
	// 1024/DRAMServiceGap accesses before queuing kicks in.
	overload := int(int64(1)<<dramWindowBits/cfg.DRAMServiceGap) + 64
	var last int64
	for i := 0; i < overload; i++ {
		addr := uint64(i) * uint64(cfg.DRAMControllers) << lineShift
		last = mem.access(0, addr, 8, 0)
	}
	if last <= cfg.DRAMLatency {
		t.Fatalf("no queuing delay after %d same-window accesses: %d", overload, last)
	}
	// A fresh window resets the bandwidth accounting.
	lat := mem.access(0, uint64(overload+1)*uint64(cfg.DRAMControllers)<<lineShift, 8, 1<<20)
	if lat != cfg.DRAMLatency {
		t.Fatalf("fresh window access latency %d, want %d", lat, cfg.DRAMLatency)
	}
}

// pingPong is a minimal handler: core 0 sends a token to core 1 and back N
// times, then both idle. It exercises Ready/Receive/Wake/idle accounting.
type pingPong struct {
	remaining int
	started   bool
}

func (p *pingPong) Start(m *Machine) { m.Wake(0) }

func (p *pingPong) Ready(m *Machine, core int) (int64, bool) {
	if core == 0 && !p.started {
		p.started = true
		m.Charge(core, Compute, 10)
		m.Send(Message{From: 0, To: 1, Aux: int64(p.remaining)}, 128, 10)
		return 10, true
	}
	return 0, true
}

func (p *pingPong) Receive(m *Machine, core int, msg Message) int64 {
	m.Charge(core, Comm, 5)
	if msg.Aux > 0 {
		m.Send(Message{From: core, To: msg.From, Aux: msg.Aux - 1}, 128, 5)
	}
	return 5
}

func TestMachinePingPong(t *testing.T) {
	m := New(Config{Cores: 2, HopCycles: 2, FlitBits: 64})
	h := &pingPong{remaining: 10}
	total, bds := m.Run(h)
	if total <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if m.MessagesSent() != 11 {
		t.Fatalf("messages = %d, want 11", m.MessagesSent())
	}
	var sum stats.Breakdown
	for _, b := range bds {
		sum.Add(b)
	}
	if sum.Compute != 10 {
		t.Fatalf("compute = %d, want 10", sum.Compute)
	}
	if sum.Comm == 0 {
		t.Fatal("no comm/idle time accounted")
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() int64 {
		m := New(Config{Cores: 2, HopCycles: 2, FlitBits: 64})
		total, _ := m.Run(&pingPong{remaining: 50})
		return total
	}
	if run() != run() {
		t.Fatal("machine not deterministic")
	}
}

func TestMachineRunTwicePanics(t *testing.T) {
	m := New(Config{Cores: 1})
	m.Run(&busyLoop{steps: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("second Run should panic")
		}
	}()
	m.Run(&busyLoop{steps: 1})
}

// busyLoop runs core 0 for a fixed number of steps charging compute.
type busyLoop struct{ steps int }

func (b *busyLoop) Start(m *Machine) { m.Wake(0) }
func (b *busyLoop) Ready(m *Machine, core int) (int64, bool) {
	if b.steps == 0 {
		return 0, true
	}
	b.steps--
	m.Charge(core, Compute, 100)
	return 100, false
}
func (b *busyLoop) Receive(m *Machine, core int, msg Message) int64 { return 0 }

func TestMachineTimeAdvances(t *testing.T) {
	m := New(Config{Cores: 1})
	total, bds := m.Run(&busyLoop{steps: 7})
	if total != 700 {
		t.Fatalf("completion = %d, want 700", total)
	}
	if bds[0].Compute != 700 {
		t.Fatalf("compute = %d", bds[0].Compute)
	}
}

func TestDriftProbe(t *testing.T) {
	m := New(Config{Cores: 1})
	calls := 0
	m.SetDriftProbe(func() []int64 {
		calls++
		return []int64{10, 14}
	}, 100, 0)
	m.Run(&busyLoop{steps: 7})
	trace := m.DriftTrace()
	if len(trace) == 0 {
		t.Fatal("no drift samples")
	}
	for _, d := range trace {
		if d != 2 { // eq1 over {10, 14}: ref 10, mean |diff| = (0+4)/2
			t.Fatalf("drift sample = %v, want 2", d)
		}
	}
}

func TestEq1(t *testing.T) {
	if eq1(nil) != 0 {
		t.Fatal("empty eq1 should be 0")
	}
	if got := eq1([]int64{5, 5, 5}); got != 0 {
		t.Fatalf("uniform eq1 = %v", got)
	}
	if got := eq1([]int64{1, 3, 5}); got != 2 {
		t.Fatalf("eq1 = %v, want 2", got)
	}
}
