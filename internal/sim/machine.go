package sim

import (
	"container/heap"
	"fmt"

	"hdcps/internal/stats"
	"hdcps/internal/task"
)

// Message is an inter-core message. Kind and the payload fields are owned by
// the scheduler; the simulator only moves messages through the NoC.
type Message struct {
	From, To int
	Kind     int
	Task     task.Task
	Tasks    []task.Task // bag payload (push transport) or batches
	Aux      int64
}

// Handler is a scheduler running on the simulated machine. The machine
// calls Ready each time a core becomes free and Receive when a message
// arrives; handlers charge costs through the Machine's Charge/Busy API and
// re-arm cores with WakeAt/Idle.
type Handler interface {
	// Start seeds the computation (initial tasks, first Ready events).
	Start(m *Machine)
	// Ready performs one scheduling step on a free core. It returns the
	// number of cycles the step consumed; the machine re-invokes Ready
	// after that time. Returning idle = true parks the core instead (a
	// message or an explicit Wake re-arms it); the returned cost is still
	// charged first.
	Ready(m *Machine, core int) (cost int64, idle bool)
	// Receive handles a message arriving at a core. It returns the cycles
	// of core time the delivery consumes (0 for hardware-offloaded
	// receives). If the core is idle it is woken automatically after that
	// cost.
	Receive(m *Machine, core int, msg Message) int64
}

// Machine is the simulated multicore. Create one with New, then Run a
// Handler to completion.
type Machine struct {
	cfg  Config
	now  int64
	seq  uint64
	evq  eventQueue
	noc  *noc
	mem  *memory
	done bool

	coreFree  []int64 // cycle at which the core finishes its current step
	coreIdle  []bool
	idleSince []int64
	armed     []bool // a Ready event is queued for the core

	breakdown []stats.Breakdown
	msgsSent  int64

	driftFn       func() []int64 // per-core current priorities, for sampling
	driftEvery    int64
	driftTrace    []float64
	driftMaxTrace int
}

type event struct {
	at   int64
	seq  uint64
	core int
	kind eventKind
	msg  Message
}

type eventKind int

const (
	evReady eventKind = iota
	evMessage
	evDrift
)

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// New returns a machine with the given configuration.
func New(cfg Config) *Machine {
	cfg = cfg.normalized()
	m := &Machine{
		cfg:       cfg,
		noc:       newNoC(cfg),
		mem:       newMemory(cfg),
		coreFree:  make([]int64, cfg.Cores),
		coreIdle:  make([]bool, cfg.Cores),
		idleSince: make([]int64, cfg.Cores),
		armed:     make([]bool, cfg.Cores),
		breakdown: make([]stats.Breakdown, cfg.Cores),
	}
	// Every core starts parked: a message arriving at a core that has not
	// yet run (or a Wake from the handler's Start) brings it up, and the
	// time it spends parked is idle time accounted into Comm.
	for i := range m.coreIdle {
		m.coreIdle[i] = true
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the current simulated cycle.
func (m *Machine) Now() int64 { return m.now }

// Cores returns the core count.
func (m *Machine) Cores() int { return m.cfg.Cores }

// push enqueues an event.
func (m *Machine) push(e event) {
	e.seq = m.seq
	m.seq++
	heap.Push(&m.evq, e)
}

// Wake re-arms an idle core's Ready loop at the current time (or when the
// core's in-flight step completes, whichever is later). Safe to call for a
// busy core: it is a no-op because the core is already armed.
func (m *Machine) Wake(core int) {
	if m.armed[core] {
		return
	}
	at := m.now
	if m.coreFree[core] > at {
		at = m.coreFree[core]
	}
	m.armed[core] = true
	m.push(event{at: at, core: core, kind: evReady})
}

// Charge adds cycles to one component of a core's completion-time breakdown
// without advancing time (the time advance comes from the cost returned by
// Ready/Receive; Charge only attributes it).
func (m *Machine) Charge(core int, component Component, cycles int64) {
	if cycles <= 0 {
		return
	}
	b := &m.breakdown[core]
	switch component {
	case Enqueue:
		b.Enqueue += cycles
	case Dequeue:
		b.Dequeue += cycles
	case Compute:
		b.Compute += cycles
	case Comm:
		b.Comm += cycles
	}
}

// Component selects a breakdown bucket (§IV-C).
type Component int

// Breakdown components.
const (
	Enqueue Component = iota
	Dequeue
	Compute
	Comm
)

// Send injects a message of the given payload size into the NoC at the
// current time plus senderDelay (the point within the sender's current step
// at which the message leaves). Delivery is scheduled automatically. It
// returns the in-network latency (for senders that block on delivery, e.g.
// synchronous software transfers; asynchronous hardware senders ignore it).
func (m *Machine) Send(msg Message, bits int, senderDelay int64) int64 {
	depart := m.now + senderDelay
	arrive := m.noc.route(msg.From, msg.To, m.cfg.Flits(bits), depart)
	m.msgsSent++
	m.push(event{at: arrive, core: msg.To, kind: evMessage, msg: msg})
	return arrive - depart
}

// MessagesSent returns the total messages injected so far.
func (m *Machine) MessagesSent() int64 { return m.msgsSent }

// MemAccess models a load/store of the given byte count at an address,
// returning its latency in cycles for the core. Schedulers use synthetic
// address spaces (see the Addr helpers in package sched) so the private-
// cache model sees realistic locality.
func (m *Machine) MemAccess(core int, addr uint64, bytes int) int64 {
	return m.mem.access(core, addr, bytes, m.now)
}

// MemAccessAt is MemAccess issued delay cycles into the core's current
// step. Handlers performing many accesses within one macro-step must pass
// their accumulated cost so DRAM contention reflects the real access
// spacing instead of an artificial same-cycle burst.
func (m *Machine) MemAccessAt(core int, addr uint64, bytes int, delay int64) int64 {
	return m.mem.access(core, addr, bytes, m.now+delay)
}

// Hops returns the mesh Manhattan distance between two cores, for cost
// models of coherent cache-to-cache transfers.
func (m *Machine) Hops(a, b int) int64 { return m.noc.hops(a, b) }

// SetDriftProbe installs a sampler: every interval cycles the machine
// records Equation-1 drift over probe()'s per-core current priorities.
// maxSamples bounds the trace (0 means unlimited).
func (m *Machine) SetDriftProbe(probe func() []int64, interval int64, maxSamples int) {
	m.driftFn = probe
	m.driftEvery = interval
	m.driftMaxTrace = maxSamples
}

// DriftTrace returns the sampled machine-wide drift values.
func (m *Machine) DriftTrace() []float64 { return m.driftTrace }

// Run drives the handler to completion and returns the completion time and
// per-core breakdowns (idle time is accounted into Comm).
func (m *Machine) Run(h Handler) (int64, []stats.Breakdown) {
	if m.done {
		panic("sim: Machine.Run called twice; create a new Machine per run")
	}
	m.done = true
	h.Start(m)
	if m.driftFn != nil {
		m.push(event{at: m.driftEvery, kind: evDrift})
	}
	var lastReal int64 // completion excludes trailing drift-probe events
	for m.evq.Len() > 0 {
		e := heap.Pop(&m.evq).(event)
		m.now = e.at
		if e.kind != evDrift {
			lastReal = e.at
		}
		switch e.kind {
		case evReady:
			m.armed[e.core] = false
			m.endIdle(e.core)
			cost, idle := h.Ready(m, e.core)
			if cost < 0 {
				panic(fmt.Sprintf("sim: negative Ready cost %d", cost))
			}
			m.coreFree[e.core] = m.now + cost
			if idle {
				m.beginIdle(e.core)
			} else {
				m.armed[e.core] = true
				m.push(event{at: m.coreFree[e.core], core: e.core, kind: evReady})
			}
		case evMessage:
			cost := h.Receive(m, e.core, e.msg)
			if cost > 0 {
				// Receiving consumed core time: push the core's free time
				// out (the ISR preempts or queues behind the current step).
				if m.coreFree[e.core] < m.now {
					m.coreFree[e.core] = m.now
				}
				m.coreFree[e.core] += cost
			}
			if m.coreIdle[e.core] {
				m.endIdle(e.core)
				m.Wake(e.core)
			}
		case evDrift:
			if m.driftMaxTrace == 0 || len(m.driftTrace) < m.driftMaxTrace {
				m.driftTrace = append(m.driftTrace, eq1(m.driftFn()))
			}
			if m.evq.Len() > 0 { // keep sampling while work remains
				m.push(event{at: m.now + m.driftEvery, kind: evDrift})
			}
		}
	}
	// Account trailing idle time up to completion (the last real event,
	// not a trailing drift-probe tick).
	for c := range m.coreFree {
		if m.coreFree[c] > lastReal {
			lastReal = m.coreFree[c]
		}
	}
	m.now = lastReal
	for c := range m.coreIdle {
		if m.coreIdle[c] {
			m.endIdle(c)
		}
	}
	return lastReal, m.breakdown
}

func (m *Machine) beginIdle(core int) {
	m.coreIdle[core] = true
	m.idleSince[core] = m.coreFree[core]
}

func (m *Machine) endIdle(core int) {
	if !m.coreIdle[core] {
		return
	}
	m.coreIdle[core] = false
	if idle := m.now - m.idleSince[core]; idle > 0 {
		m.breakdown[core].Comm += idle
	}
}

// eq1 computes Equation 1 over per-core priorities, skipping cores that
// report no current task (sentinel value <<63-ish handled by caller passing
// only active priorities).
func eq1(prios []int64) float64 {
	if len(prios) == 0 {
		return 0
	}
	ref := prios[0]
	for _, p := range prios[1:] {
		if p < ref {
			ref = p
		}
	}
	var sum float64
	for _, p := range prios {
		d := p - ref
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	return sum / float64(len(prios))
}

// MemStats returns cumulative (L1 hits, L2 hits, misses) counts, for cost
// model diagnostics.
func (m *Machine) MemStats() (l1, l2, misses int64) {
	return m.mem.hits1, m.mem.hits2, m.mem.misses
}
