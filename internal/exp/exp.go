// Package exp is the experiment harness: one registered experiment per
// table and figure in the paper's evaluation (Table I, Table II, Figures
// 3-15). Each experiment re-runs the relevant schedulers on the simulator
// (or the native runtime, for Fig. 10) and prints the same rows/series the
// paper reports, normalized the same way. DESIGN.md carries the experiment
// index; EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"
	"io"
	"math"
	stdruntime "runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// Options control an experiment run.
type Options struct {
	// Scale selects input sizes: "tiny" (CI/benches), "small" (default),
	// or "large" (longer, closer separation to the paper's trends).
	Scale string
	// Seed drives every random choice; same seed, same numbers.
	Seed uint64
	// Cores overrides the software-mode core count (default 40, the Xeon).
	Cores int
	// Par bounds the worker pool that evaluates an experiment's
	// scheduler×workload grid (default GOMAXPROCS, min 1). Cells are
	// deterministic and independent, so any Par produces bit-identical
	// Results; Par only changes wall time.
	Par int
	// TracePath, when set, makes trace-producing experiments (currently
	// drift-timeline) write their full JSONL observability trace there
	// ("-" for stdout). Other experiments ignore it.
	TracePath string
}

func (o Options) normalized() Options {
	if o.Scale == "" {
		o.Scale = "small"
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Cores == 0 {
		o.Cores = 40
	}
	if o.Par <= 0 {
		o.Par = stdruntime.GOMAXPROCS(0)
	}
	return o
}

// Row is one labeled row of an experiment's output (typically a
// workload-input pair, or a parameter value for sweeps).
type Row struct {
	Label  string
	Values map[string]float64
}

// Result is an experiment's structured output.
type Result struct {
	ID     string
	Title  string
	Series []string // column order
	Rows   []Row
	Notes  []string
}

// Experiment is a registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (Result, error)
}

var registry = map[string]Experiment{}
var order []string

func register(e Experiment) {
	registry[e.ID] = e
	order = append(order, e.ID)
}

// Get returns the experiment with the given ID (e.g. "fig3", "table2").
func Get(id string) (Experiment, bool) {
	e, ok := registry[strings.ToLower(id)]
	return e, ok
}

// IDs returns the registered experiment IDs in paper order.
func IDs() []string {
	return append([]string(nil), order...)
}

// Format renders r as an aligned text table.
func (r Result) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Rows) > 0 {
		fmt.Fprintf(w, "%-22s", "")
		for _, s := range r.Series {
			fmt.Fprintf(w, " %12s", s)
		}
		fmt.Fprintln(w)
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%-22s", row.Label)
			for _, s := range r.Series {
				if v, ok := row.Values[s]; ok {
					fmt.Fprintf(w, " %12.3f", v)
				} else {
					fmt.Fprintf(w, " %12s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// FormatCSV renders r as CSV (label column first, then the series).
func (r Result) FormatCSV(w io.Writer) {
	fmt.Fprintf(w, "label")
	for _, s := range r.Series {
		fmt.Fprintf(w, ",%s", s)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s", row.Label)
		for _, s := range r.Series {
			if v, ok := row.Values[s]; ok {
				fmt.Fprintf(w, ",%g", v)
			} else {
				fmt.Fprintf(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
}

// parallelMap evaluates f(0..n-1) on a bounded pool of `workers` goroutines
// and returns the results in index order. Cells must be independent and
// deterministic; because each result lands at its own index, the output is
// bit-identical to a sequential loop regardless of pool size (the property
// TestParallelDriverBitIdentical pins down). On error it returns the
// completed results alongside the error with the smallest index — the same
// error a sequential loop would surface first.
func parallelMap[T any](n, workers int, f func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			var err error
			if out[i], err = f(i); err != nil {
				return out, err
			}
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// pairRows computes one Row per pair on the Options' worker pool,
// preserving pair order.
func pairRows(ps []Pair, o Options, f func(Pair) (Row, error)) ([]Row, error) {
	return parallelMap(len(ps), o.Par, func(i int) (Row, error) { return f(ps[i]) })
}

// geomeanRow appends a geometric-mean row over the existing rows.
func geomeanRow(res *Result) {
	g := Row{Label: "geomean", Values: map[string]float64{}}
	for _, s := range res.Series {
		var logs float64
		n := 0
		for _, row := range res.Rows {
			if v, ok := row.Values[s]; ok && v > 0 {
				logs += math.Log(v)
				n++
			}
		}
		if n > 0 {
			g.Values[s] = math.Exp(logs / float64(n))
		}
	}
	res.Rows = append(res.Rows, g)
}
