package exp

// The drift-timeline experiment is the observability layer's fig-style
// showcase: it runs the native runtime with the adaptive controller on, an
// obs.Recorder attached, and a tight sampling interval, then reports the
// control plane's time series — per-interval drift, reference priority, and
// TDF — so the paper's feedback-convergence story (Algorithm 2 steering the
// TDF away from its 0.5 starting point as measured drift moves) can be read
// off real traces instead of a single end-of-run average. With
// Options.TracePath set it also emits the full JSONL trace (recorder meta,
// per-worker counters, sampled events, control series).

import (
	"fmt"
	"os"

	"hdcps/internal/drift"
	"hdcps/internal/obs"
	"hdcps/internal/runtime"
)

// driftTimeline is registered from experiments.go's init so the registry
// keeps paper order regardless of file initialization order.

// driftTimelineRows bounds the formatted table; the JSONL trace always
// carries the full series.
const driftTimelineRows = 40

func driftTimeline(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	w, err := set.workloadFor(Pair{"sssp", "road"})
	if err != nil {
		return Result{}, err
	}
	// Always run a real fleet: drift is a cross-worker signal, and four
	// goroutine workers interleave (and disagree on priorities) even on a
	// single-CPU host, which is exactly what the controller needs to see.
	const workers = 4
	cfg := runtime.DefaultConfig(workers)
	cfg.Seed = o.Seed
	// A tight report interval gives the controller enough feedback steps to
	// show convergence even at reduced input scales (the paper's Fig. 13A
	// sweeps this; 2000-task intervals need billion-task runs).
	cfg.Drift = drift.Config{SampleInterval: 25}
	rec := obs.New(obs.Config{Workers: workers, SampleEvery: 32})
	cfg.Obs = rec

	nr := runtime.Run(w, cfg)
	if err := w.Verify(); err != nil {
		return Result{}, fmt.Errorf("exp: drift-timeline run wrong: %w", err)
	}
	pts := obs.ControlSeries(nr.DriftTrace, nr.RefTrace, nr.TDFTrace)
	if len(pts) == 0 {
		return Result{}, fmt.Errorf("exp: drift-timeline produced no controller intervals (%d tasks)", nr.TasksProcessed)
	}

	res := Result{
		ID:     "drift-timeline",
		Title:  "Native drift/TDF feedback timeline",
		Series: []string{"drift", "ref", "tdf"},
	}
	step := 1
	if len(pts) > driftTimelineRows {
		step = (len(pts) + driftTimelineRows - 1) / driftTimelineRows
		if step%2 == 0 {
			// An odd stride samples both phases of a 2-interval controller
			// oscillation instead of aliasing onto one of them.
			step++
		}
	}
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("interval-%03d", p.Interval),
			Values: map[string]float64{
				"drift": p.Drift, "ref": float64(p.Ref), "tdf": float64(p.TDF),
			},
		})
	}
	moved := false
	for _, p := range pts {
		if p.TDF != cfg.Drift.InitialTDF && p.TDF != drift.DefaultConfig().InitialTDF {
			moved = true
			break
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("controller start TDF %d%% (the paper's 0.5); %d intervals over %d tasks, %d workers",
			drift.DefaultConfig().InitialTDF, len(pts), nr.TasksProcessed, workers),
		fmt.Sprintf("recorder: %d events retained (%d recorded), spills=%d parks=%d",
			len(rec.Events()), rec.EventCount(), rec.Total(obs.COverflowSpills), rec.Total(obs.CIdleParks)))
	if !moved {
		res.Notes = append(res.Notes, "WARNING: TDF never left its initial value — interval too coarse for this scale?")
	}

	if o.TracePath != "" {
		out := os.Stdout
		if o.TracePath != "-" {
			f, err := os.Create(o.TracePath)
			if err != nil {
				return res, fmt.Errorf("exp: drift-timeline trace: %w", err)
			}
			defer f.Close()
			out = f
		}
		if err := rec.WriteJSONL(out); err != nil {
			return res, err
		}
		if err := obs.WriteControlJSONL(out, pts); err != nil {
			return res, err
		}
		res.Notes = append(res.Notes, "JSONL trace written to "+o.TracePath)
	}
	return res, nil
}
