package exp

import (
	"fmt"
	"sync"

	"hdcps/internal/graph"
	"hdcps/internal/workload"
)

// Pair is one workload-input combination from the paper's evaluation.
type Pair struct {
	Workload string
	Input    string
}

// Label returns the figure-style label, e.g. "sssp-road".
func (p Pair) Label() string { return p.Workload + "-" + p.Input }

// pairs returns the workload-input matrix of Figures 3/5/6/8/9: the paper
// pairs SSSP/A*/BFS with CAGE and the USA road network, MST/Color with the
// road network (Color also with web-Google), and PageRank with the web
// graphs.
func pairs() []Pair {
	return []Pair{
		{"sssp", "cage"}, {"sssp", "road"},
		{"astar", "cage"}, {"astar", "road"},
		{"bfs", "road"},
		{"mst", "road"},
		{"color", "road"}, {"color", "web"},
		{"pagerank", "web"}, {"pagerank", "lj"},
	}
}

// inputSizes maps scale -> per-input sizing. The paper's graphs have
// millions of nodes; the simulator reproduces the same relative behaviour
// at reduced sizes (DESIGN.md documents the substitution).
type sizing struct {
	roadW, roadH int
	cageN        int
	webN         int
	ljN          int
}

func sizes(scale string) (sizing, error) {
	// Sizes are chosen so the task frontier stays wide relative to the
	// core count, as it is for the paper's multi-million-node inputs; a
	// frontier narrower than cores*chunk starves every pull scheduler and
	// distorts the comparison.
	switch scale {
	case "tiny":
		return sizing{roadW: 48, roadH: 48, cageN: 1500, webN: 1500, ljN: 1200}, nil
	case "small":
		return sizing{roadW: 120, roadH: 120, cageN: 8000, webN: 5000, ljN: 4000}, nil
	case "large":
		return sizing{roadW: 240, roadH: 240, cageN: 30000, webN: 20000, ljN: 15000}, nil
	default:
		return sizing{}, fmt.Errorf("exp: unknown scale %q (tiny, small, large)", scale)
	}
}

// inputSet builds the four evaluation inputs at the requested scale. Graphs
// are cached per (scale, seed) because generation dominates small runs.
type inputSet struct {
	graphs map[string]*graph.CSR
}

// inputMu guards inputCache: experiments may build inputs from concurrent
// grid cells (parallelMap). Generation is deterministic per key, so a rare
// duplicated build stores an identical set; the lock only protects the map.
var (
	inputMu    sync.Mutex
	inputCache = map[string]*inputSet{}
)

func inputs(o Options) (*inputSet, error) {
	key := fmt.Sprintf("%s-%d", o.Scale, o.Seed)
	inputMu.Lock()
	s, ok := inputCache[key]
	inputMu.Unlock()
	if ok {
		return s, nil
	}
	sz, err := sizes(o.Scale)
	if err != nil {
		return nil, err
	}
	s = &inputSet{graphs: map[string]*graph.CSR{
		"road": graph.Road(sz.roadW, sz.roadH, o.Seed),
		"cage": graph.Cage(sz.cageN, 34, 80, o.Seed),
		"web":  graph.Web(sz.webN, o.Seed),
		"lj":   graph.LJ(sz.ljN, o.Seed),
	}}
	inputMu.Lock()
	if prior, ok := inputCache[key]; ok {
		s = prior // keep the first stored set so pointers stay stable
	} else {
		inputCache[key] = s
	}
	inputMu.Unlock()
	return s, nil
}

// workloadFor instantiates a fresh workload for a pair.
func (s *inputSet) workloadFor(p Pair) (workload.Workload, error) {
	g, ok := s.graphs[p.Input]
	if !ok {
		return nil, fmt.Errorf("exp: unknown input %q", p.Input)
	}
	return workload.New(p.Workload, g)
}

// seqTasks caches the sequential task count per (scale, seed, pair) for
// work-efficiency columns. The count is deterministic, so concurrent grid
// cells that miss simultaneously compute the same value; the mutex only
// protects the map itself.
var (
	seqTaskMu    sync.Mutex
	seqTaskCache = map[string]int64{}
)

func (s *inputSet) seqTasks(o Options, p Pair) (int64, error) {
	key := fmt.Sprintf("%s-%d-%s", o.Scale, o.Seed, p.Label())
	seqTaskMu.Lock()
	v, ok := seqTaskCache[key]
	seqTaskMu.Unlock()
	if ok {
		return v, nil
	}
	w, err := s.workloadFor(p)
	if err != nil {
		return 0, err
	}
	n := workload.RunSequential(w)
	seqTaskMu.Lock()
	seqTaskCache[key] = n
	seqTaskMu.Unlock()
	return n, nil
}
