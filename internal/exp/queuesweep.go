package exp

// The queue-sweep experiment measures the native runtime's local-queue
// shapes: the classic binary heap, the PR-1 4-ary heap, the two-level
// hPQ-style queue (sorted hot buffer over a monotone bucket cold store),
// and the PR-6 relaxed MultiQueue, across the paper's workload mix. It
// reports two things per (queue, workload) cell — tasks/second, and the
// scheduling-quality side of the trade: the p99 sampled rank error (how far
// pops stray from the observable global minimum). Together the two row
// families are the relaxation-vs-speed frontier: strict kinds must sit at
// rank error 0, while multiqueue buys throughput under contention with a
// bounded, measured amount of priority inversion — without ever changing
// the computed answer (every cell is verified).

import (
	"context"
	"fmt"
	"sort"
	"time"

	"hdcps/internal/obs"
	"hdcps/internal/runtime"
	"hdcps/internal/workload"
)

func queueSweep(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	pairs := []Pair{
		{"sssp", "road"}, {"bfs", "road"}, {"pagerank", "web"}, {"color", "web"},
	}
	const workers = 4
	const reps = 3
	kinds := runtime.QueueKinds()

	res := Result{
		ID:     "queue-sweep",
		Title:  "Native local-queue shapes: tasks/sec and p99 rank error by workload",
		Series: kinds,
	}
	for _, p := range pairs {
		row := Row{Label: p.Workload + "/" + p.Input, Values: map[string]float64{}}
		qrow := Row{Label: p.Workload + "/" + p.Input + " p99 rank err", Values: map[string]float64{}}
		for _, kind := range kinds {
			w, err := set.workloadFor(p)
			if err != nil {
				return Result{}, err
			}
			cfg := runtime.DefaultConfig(workers)
			cfg.Seed = o.Seed
			cfg.QueueKind = kind
			// Warm-up run absorbs first-touch page faults and heap growth.
			runtime.Run(w, cfg)
			// Throughput reps run with observability off, so the speed side
			// of the frontier is the kind's unobserved hot path.
			var tasks int64
			var total time.Duration
			for i := 0; i < reps; i++ {
				nr, snap := runEngineOnce(w, cfg)
				tasks += nr.TasksProcessed
				total += nr.Elapsed
				if kind == runtime.QueueTwoLevel && i == reps-1 {
					res.Notes = append(res.Notes, fmt.Sprintf(
						"%s twolevel: %d hot spills, %d fallbacks",
						row.Label, snap.HotSpills, snap.QueueFallbacks))
				}
			}
			if err := w.Verify(); err != nil {
				return Result{}, fmt.Errorf("exp: queue-sweep %s/%s wrong: %w", kind, p.Workload, err)
			}
			row.Values[kind] = float64(tasks) / total.Seconds()

			// Quality rep: one observed run whose pop path is rank-sampled.
			q, err := measureRankError(w, cfg)
			if err != nil {
				return Result{}, fmt.Errorf("exp: queue-sweep %s/%s: %w", kind, p.Workload, err)
			}
			qrow.Values[kind] = q.p99
			if kind == runtime.QueueMultiQueue || q.inversions > 0 {
				res.Notes = append(res.Notes, fmt.Sprintf(
					"%s %s quality: %d samples, %d inversions, mean rank %.2f, max %d",
					row.Label, kind, q.samples, q.inversions, q.mean, q.max))
			}
		}
		res.Rows = append(res.Rows, row, qrow)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d workers, %d reps per cell after warm-up; queue kinds: %v; "+
			"rank error sampled every 16th pop on a separate observed rep "+
			"(strict kinds must report 0)", workers, reps, kinds))
	return res, nil
}

// rankQuality summarizes one observed run's sampled rank errors.
type rankQuality struct {
	samples    int64
	inversions int64
	mean       float64
	p99        float64
	max        int64
}

// measureRankError runs one observed rep of cfg's engine and distills the
// retained rank-sample events into the quality summary (p99 over all
// samples, zeros included — a strict kind's p99 is exactly 0).
func measureRankError(w workload.Workload, cfg runtime.Config) (rankQuality, error) {
	rec := obs.New(obs.Config{Workers: cfg.Workers, RingSize: 1 << 14, SampleEvery: 16})
	cfg.Obs = rec
	e := runtime.NewEngine(w, cfg)
	_ = e.Submit(w.InitialTasks()...)
	_ = e.Start()
	_ = e.Drain(context.Background())
	snap := e.Snapshot()
	_ = e.Stop(context.Background())
	if err := w.Verify(); err != nil {
		return rankQuality{}, fmt.Errorf("observed rep wrong: %w", err)
	}
	q := rankQuality{
		samples:    snap.RankSamples,
		inversions: snap.PrioInversions,
		max:        snap.RankErrorMax,
	}
	if snap.RankSamples > 0 {
		q.mean = float64(snap.RankErrorSum) / float64(snap.RankSamples)
	}
	var ranks []int64
	for _, ev := range rec.Events() {
		if ev.Kind == obs.EvRankSample {
			ranks = append(ranks, ev.A)
		}
	}
	q.p99 = rankP99(ranks)
	return q, nil
}

// rankP99 returns the nearest-rank 99th percentile of the samples.
func rankP99(ranks []int64) float64 {
	if len(ranks) == 0 {
		return 0
	}
	sort.Slice(ranks, func(a, b int) bool { return ranks[a] < ranks[b] })
	return float64(ranks[int(0.99*float64(len(ranks)-1))])
}

// runEngineOnce drives one full Submit→Drain→Stop cycle on a fresh engine,
// returning the run metrics and the final snapshot (runtime.Run alone
// discards the engine, and with it the queue-health counters).
func runEngineOnce(w workload.Workload, cfg runtime.Config) (runtime.Result, runtime.Snapshot) {
	e := runtime.NewEngine(w, cfg)
	_ = e.Submit(w.InitialTasks()...)
	_ = e.Start()
	_ = e.Drain(context.Background())
	snap := e.Snapshot()
	_ = e.Stop(context.Background())
	return e.Result(), snap
}
