package exp

// The queue-sweep experiment measures the native runtime's local-queue
// shapes (PR 5): the classic binary heap, the PR-1 4-ary heap, and the
// two-level hPQ-style queue (sorted hot buffer over a monotone bucket cold
// store) across the paper's workload mix. It reports tasks/second per
// (queue, workload) cell plus the two-level health counters — hot-buffer
// spills and bucket-store→heap fallbacks — so the monotone workloads
// (sssp, bfs) can be seen riding the bucket store while the
// negative-priority ones (pagerank, color) either fall back or absorb the
// rewinds, without ever changing the computed answer.

import (
	"context"
	"fmt"
	"time"

	"hdcps/internal/runtime"
	"hdcps/internal/workload"
)

func queueSweep(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	pairs := []Pair{
		{"sssp", "road"}, {"bfs", "road"}, {"pagerank", "web"}, {"color", "web"},
	}
	const workers = 4
	const reps = 3
	kinds := runtime.QueueKinds()

	res := Result{
		ID:     "queue-sweep",
		Title:  "Native local-queue shapes: tasks/sec by workload",
		Series: kinds,
	}
	for _, p := range pairs {
		row := Row{Label: p.Workload + "/" + p.Input, Values: map[string]float64{}}
		for _, kind := range kinds {
			w, err := set.workloadFor(p)
			if err != nil {
				return Result{}, err
			}
			cfg := runtime.DefaultConfig(workers)
			cfg.Seed = o.Seed
			cfg.QueueKind = kind
			// Warm-up run absorbs first-touch page faults and heap growth.
			runtime.Run(w, cfg)
			var tasks int64
			var total time.Duration
			for i := 0; i < reps; i++ {
				nr, snap := runEngineOnce(w, cfg)
				tasks += nr.TasksProcessed
				total += nr.Elapsed
				if kind == runtime.QueueTwoLevel && i == reps-1 {
					res.Notes = append(res.Notes, fmt.Sprintf(
						"%s twolevel: %d hot spills, %d fallbacks",
						row.Label, snap.HotSpills, snap.QueueFallbacks))
				}
			}
			if err := w.Verify(); err != nil {
				return Result{}, fmt.Errorf("exp: queue-sweep %s/%s wrong: %w", kind, p.Workload, err)
			}
			row.Values[kind] = float64(tasks) / total.Seconds()
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d workers, %d reps per cell after warm-up; queue kinds: %v", workers, reps, kinds))
	return res, nil
}

// runEngineOnce drives one full Submit→Drain→Stop cycle on a fresh engine,
// returning the run metrics and the final snapshot (runtime.Run alone
// discards the engine, and with it the queue-health counters).
func runEngineOnce(w workload.Workload, cfg runtime.Config) (runtime.Result, runtime.Snapshot) {
	e := runtime.NewEngine(w, cfg)
	_ = e.Submit(w.InitialTasks()...)
	_ = e.Start()
	_ = e.Drain(context.Background())
	snap := e.Snapshot()
	_ = e.Stop(context.Background())
	return e.Result(), snap
}
