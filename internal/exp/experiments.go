package exp

import (
	"fmt"

	"hdcps/internal/bag"
	"hdcps/internal/drift"
	"hdcps/internal/exec"
	"hdcps/internal/graph"
	"hdcps/internal/sched"
	"hdcps/internal/sim"
	"hdcps/internal/stats"
)

func init() {
	register(Experiment{"table1", "Simulator parameters (Table I)", table1})
	register(Experiment{"table2", "Input graphs and statistics (Table II)", table2})
	register(Experiment{"fig3", "Software CPS completion time and drift vs PMOD (Fig. 3)", fig3})
	register(Experiment{"fig4", "Thread scaling of PMOD vs HD-CPS:SW (Fig. 4)", fig4})
	register(Experiment{"fig5", "HD-CPS:SW variants vs RELD with breakdowns (Fig. 5)", fig5})
	register(Experiment{"fig6", "HD-CPS:HW variants vs HD-CPS:SW (Fig. 6)", fig6})
	register(Experiment{"fig7", "Hardware queue sizing sweep (Fig. 7)", fig7})
	register(Experiment{"fig8", "Speedup over sequential: Minnow, HD-CPS:HW, Swarm (Fig. 8)", fig8})
	register(Experiment{"fig9", "Breakdowns vs Swarm (Fig. 9)", fig9})
	register(Experiment{"fig10", "Simulator vs native runtime correlation (Fig. 10)", fig10})
	register(Experiment{"fig11", "Software Minnow worker-minnow splits (Fig. 11)", fig11})
	register(Experiment{"fig12", "HD-CPS:HW vs Dynamic Oracle vs PMOD (Fig. 12)", fig12})
	register(Experiment{"fig13", "TDF tunables: interval, step, initial TDF (Fig. 13)", fig13})
	register(Experiment{"fig14", "Bag transport: push vs pull (Fig. 14)", fig14})
	register(Experiment{"fig15", "Bag-creation threshold sweep (Fig. 15)", fig15})
	register(Experiment{"motivation", "Ordering spectrum: unordered vs relaxed vs ordered (§II, extension)", motivation})
	register(Experiment{"drift-timeline", "Native drift/TDF feedback timeline (obs trace)", driftTimeline})
	register(Experiment{"queue-sweep", "Native local-queue shapes: heap vs dheap vs twolevel", queueSweep})
	register(Experiment{"fairness-sweep", "Multi-tenant weighted fairness: measured vs entitled shares", fairnessSweep})
	register(Experiment{"serve-sweep", "Serving saturation: max open-loop task rate through the HTTP front-end", serveSweep})
}

// runOne executes one (scheduler, pair) combination, verifies the workload
// result, and attaches the cached sequential task count.
func runOne(s sched.Scheduler, set *inputSet, p Pair, cfg sim.Config, o Options) (stats.Run, error) {
	w, err := set.workloadFor(p)
	if err != nil {
		return stats.Run{}, err
	}
	r := s.Run(w, cfg, o.Seed)
	if err := w.Verify(); err != nil {
		return r, fmt.Errorf("exp: %s on %s produced wrong result: %w", s.Name(), p.Label(), err)
	}
	if st, err := set.seqTasks(o, p); err == nil {
		r.SeqTasks = st
	}
	return r, nil
}

func table1(o Options) (Result, error) {
	cfg := sim.DefaultHW()
	res := Result{ID: "table1", Title: "Multicore simulator parameters", Series: []string{"value"}}
	add := func(label string, v float64) {
		res.Rows = append(res.Rows, Row{Label: label, Values: map[string]float64{"value": v}})
	}
	add("cores (RISC-V, in-order)", float64(cfg.Cores))
	add("hop latency (cycles)", float64(cfg.HopCycles))
	add("flit width (bits)", float64(cfg.FlitBits))
	add("hRQ entries/core", float64(cfg.HRQSize))
	add("hPQ entries/core", float64(cfg.HPQSize))
	add("hw queue latency (cycles)", float64(cfg.HWQueueCycles))
	add("entry size (bits)", float64(cfg.EntryBits))
	add("DRAM controllers", float64(cfg.DRAMControllers))
	add("DRAM latency (cycles)", float64(cfg.DRAMLatency))
	add("L1 lines/core (64B)", float64(cfg.L1Lines))
	add("L2 lines/core (64B)", float64(cfg.L2Lines))
	res.Notes = append(res.Notes,
		"matches Table I: 64 cores, 2D mesh XY routing, link contention only, 32/48 hardware queues, 1.25KB/core")
	return res, nil
}

func table2(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	res := Result{ID: "table2", Title: "Input graphs", Series: []string{"nodes", "edges", "avg_deg", "max_deg"}}
	for _, name := range []string{"cage", "road", "web", "lj"} {
		s := graph.ComputeStats(set.graphs[name])
		res.Rows = append(res.Rows, Row{Label: name, Values: map[string]float64{
			"nodes": float64(s.Nodes), "edges": float64(s.Edges),
			"avg_deg": float64(int(s.AvgDeg*10)) / 10, "max_deg": float64(s.MaxDeg),
		}})
	}
	res.Notes = append(res.Notes,
		"synthetic stand-ins for CAGE14 / rUSA / web-Google / LiveJournal at reduced scale (DESIGN.md)")
	return res, nil
}

func fig3(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultSW(o.Cores)
	names := []string{"reld", "obim", "swminnow", "hdcps-sw"}
	res := Result{ID: "fig3", Title: "Completion time (and drift) normalized to PMOD, software mode",
		Series: []string{"reld", "obim", "swminnow", "hdcps-sw", "drift-reld", "drift-hdcps"}}
	rows, err := pairRows(pairs(), o, func(p Pair) (Row, error) {
		base, err := runOne(sched.PMOD(), set, p, cfg, o)
		if err != nil {
			return Row{}, err
		}
		row := Row{Label: p.Label(), Values: map[string]float64{}}
		for _, n := range names {
			s, _ := sched.ByName(n)
			r, err := runOne(s, set, p, cfg, o)
			if err != nil {
				return Row{}, err
			}
			row.Values[n] = ratio(r.CompletionTime, base.CompletionTime)
			switch n {
			case "reld":
				row.Values["drift-reld"] = ratioF(r.AvgDrift(), base.AvgDrift())
			case "hdcps-sw":
				row.Values["drift-hdcps"] = ratioF(r.AvgDrift(), base.AvgDrift())
			}
		}
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	geomeanRow(&res)
	res.Notes = append(res.Notes, "values < 1 are faster than PMOD; paper: RELD >2.2x, HD-CPS:SW ~0.8x (1.25x speedup)")
	return res, nil
}

func fig4(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	threads := []int{1, 5, 10, 20, 40}
	subset := []Pair{{"sssp", "cage"}, {"sssp", "road"}}
	res := Result{ID: "fig4", Title: "Speedup over sequential vs thread count"}
	for _, p := range subset {
		for _, sname := range []string{"pmod", "hdcps-sw"} {
			res.Series = append(res.Series, fmt.Sprintf("%s/%s", sname, p.Label()))
		}
	}
	seqTimes := map[string]int64{}
	for _, p := range subset {
		r, err := runOne(sched.Sequential{}, set, p, sim.DefaultSW(1), o)
		if err != nil {
			return res, err
		}
		seqTimes[p.Label()] = r.CompletionTime
	}
	rows, err := parallelMap(len(threads), o.Par, func(i int) (Row, error) {
		th := threads[i]
		row := Row{Label: fmt.Sprintf("threads=%d", th), Values: map[string]float64{}}
		for _, p := range subset {
			for _, sname := range []string{"pmod", "hdcps-sw"} {
				s, _ := sched.ByName(sname)
				r, err := runOne(s, set, p, sim.DefaultSW(th), o)
				if err != nil {
					return Row{}, err
				}
				row.Values[fmt.Sprintf("%s/%s", sname, p.Label())] =
					ratio(seqTimes[p.Label()], r.CompletionTime)
			}
		}
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	res.Notes = append(res.Notes, "paper: HD-CPS:SW at or above PMOD, gap widening with cores")
	return res, nil
}

func fig5(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultSW(o.Cores)
	variants := []string{"srq", "srq+tdf", "srq+tdf+ac", "hdcps-sw"}
	res := Result{ID: "fig5", Title: "HD-CPS:SW variants normalized to RELD",
		Series: append([]string(nil), variants...)}
	res.Series = append(res.Series, "drift-sc")
	rows, err := pairRows(pairs(), o, func(p Pair) (Row, error) {
		base, err := runOne(sched.RELD(), set, p, cfg, o)
		if err != nil {
			return Row{}, err
		}
		row := Row{Label: p.Label(), Values: map[string]float64{}}
		for _, v := range variants {
			s, _ := sched.ByName(v)
			r, err := runOne(s, set, p, cfg, o)
			if err != nil {
				return Row{}, err
			}
			row.Values[v] = ratio(r.CompletionTime, base.CompletionTime)
			if v == "hdcps-sw" {
				row.Values["drift-sc"] = ratioF(r.AvgDrift(), base.AvgDrift())
			}
		}
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	geomeanRow(&res)
	res.Notes = append(res.Notes,
		"paper speedups over RELD: sRQ 1.3x, +TDF 2x, +AC 1.9x, +SC 2.4x (values here are time ratios; lower is better)")
	return res, nil
}

func fig6(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	base := sim.DefaultHW()
	base.HRQSize, base.HPQSize = 0, 0 // software-only on the Table I machine
	res := Result{ID: "fig6", Title: "HD-CPS:HW variants normalized to HD-CPS:SW (64 cores)",
		Series: []string{"hrq", "hrq+hpq", "enq", "deq", "comp", "comm"}}
	rows, err := pairRows(pairs(), o, func(p Pair) (Row, error) {
		sw, err := runOne(sched.HDCPSSW(), set, p, base, o)
		if err != nil {
			return Row{}, err
		}
		row := Row{Label: p.Label(), Values: map[string]float64{}}
		hr, err := runOne(sched.VariantHRQ(), set, p, base, o)
		if err != nil {
			return Row{}, err
		}
		row.Values["hrq"] = ratio(hr.CompletionTime, sw.CompletionTime)
		hb, err := runOne(sched.HDCPSHW(), set, p, base, o)
		if err != nil {
			return Row{}, err
		}
		row.Values["hrq+hpq"] = ratio(hb.CompletionTime, sw.CompletionTime)
		frac := hb.Breakdown.Normalized(hb.Breakdown.Total())
		row.Values["enq"], row.Values["deq"], row.Values["comp"], row.Values["comm"] =
			frac[0], frac[1], frac[2], frac[3]
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	geomeanRow(&res)
	res.Notes = append(res.Notes, "paper: hRQ ~10% faster, hRQ+hPQ ~20% faster than HD-CPS:SW")
	return res, nil
}

func fig7(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	sweeps := []struct{ hrq, hpq int }{
		{1024, 32}, {256, 32}, {64, 32}, {32, 32}, {24, 32},
		// Below the paper's range: at reduced scale the 24-32 entry regime
		// never overflows, so the overflow cliff the paper sees at 24 shows
		// up further down.
		{8, 32}, {2, 32}, {1, 32},
		{32, 48}, {32, 64}, {32, 8}, {32, 2},
	}
	// Queue sizing effects are small relative to scheduling-order noise at
	// reduced scale, so the sweep uses order-stable pairs (PageRank's task
	// count swings far more with order than any queue effect) and averages
	// each configuration over a few seeds.
	subset := []Pair{{"sssp", "cage"}, {"sssp", "road"}, {"bfs", "road"}, {"mst", "road"}}
	seeds := []uint64{o.Seed, o.Seed + 1, o.Seed + 2}
	res := Result{ID: "fig7", Title: "Queue sizing (geomean speedup vs hRQ=32,hPQ=48)",
		Series: []string{"geomean"}}
	timeFor := func(hrq, hpq int) (float64, error) {
		var times []float64
		for _, p := range subset {
			for _, seed := range seeds {
				cfg := sim.DefaultHW()
				cfg.HRQSize, cfg.HPQSize = hrq, hpq
				so := o
				so.Seed = seed
				r, err := runOne(sched.HDCPSHW(), set, p, cfg, so)
				if err != nil {
					return 0, err
				}
				times = append(times, float64(r.CompletionTime))
			}
		}
		return stats.Geomean(times), nil
	}
	base, err := timeFor(32, 48)
	if err != nil {
		return res, err
	}
	rows, err := parallelMap(len(sweeps), o.Par, func(i int) (Row, error) {
		sw := sweeps[i]
		t, err := timeFor(sw.hrq, sw.hpq)
		if err != nil {
			return Row{}, err
		}
		return Row{
			Label:  fmt.Sprintf("hRQ=%d,hPQ=%d", sw.hrq, sw.hpq),
			Values: map[string]float64{"geomean": base / t},
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	res.Notes = append(res.Notes, "paper picks (32, 48): larger sizes saturate, smaller hRQ loses performance")
	return res, nil
}

func fig8(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultHW()
	res := Result{ID: "fig8", Title: "Speedup over sequential on the 64-core simulator",
		Series: []string{"hwminnow", "hdcps-hw", "swarm"}}
	rows, err := pairRows(pairs(), o, func(p Pair) (Row, error) {
		seq, err := runOne(sched.Sequential{}, set, p, sim.DefaultSW(1), o)
		if err != nil {
			return Row{}, err
		}
		row := Row{Label: p.Label(), Values: map[string]float64{}}
		for _, n := range res.Series {
			s, _ := sched.ByName(n)
			r, err := runOne(s, set, p, cfg, o)
			if err != nil {
				return Row{}, err
			}
			row.Values[n] = ratio(seq.CompletionTime, r.CompletionTime)
		}
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	geomeanRow(&res)
	res.Notes = append(res.Notes, "paper geomeans: Minnow 48x, HD-CPS:HW 61x, Swarm 66x")
	return res, nil
}

func fig9(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultHW()
	res := Result{ID: "fig9", Title: "Completion time breakdowns normalized to Swarm",
		Series: []string{"hwminnow", "hdcps-hw", "hdcps-we", "minnow-we", "swarm-we"}}
	rows, err := pairRows(pairs(), o, func(p Pair) (Row, error) {
		sw, err := runOne(sched.Swarm(), set, p, cfg, o)
		if err != nil {
			return Row{}, err
		}
		row := Row{Label: p.Label(), Values: map[string]float64{"swarm-we": sw.WorkEfficiency()}}
		mn, err := runOne(sched.HWMinnow(), set, p, cfg, o)
		if err != nil {
			return Row{}, err
		}
		row.Values["hwminnow"] = ratio(mn.CompletionTime, sw.CompletionTime)
		row.Values["minnow-we"] = mn.WorkEfficiency()
		hd, err := runOne(sched.HDCPSHW(), set, p, cfg, o)
		if err != nil {
			return Row{}, err
		}
		row.Values["hdcps-hw"] = ratio(hd.CompletionTime, sw.CompletionTime)
		row.Values["hdcps-we"] = hd.WorkEfficiency()
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	geomeanRow(&res)
	res.Notes = append(res.Notes,
		"paper: HD-CPS:HW within ~7% of Swarm, ~8% faster than Minnow; Swarm has the best work efficiency")
	return res, nil
}

func fig10(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	// The native runtime replaces the Tilera machine: compare each
	// vehicle's per-workload times normalized by its own geomean, so the
	// two trend lines are directly comparable. The comparison runs serial
	// (one worker, one simulated core): on hosts without real parallelism
	// the native side serializes anyway, and serial-vs-serial isolates the
	// per-task cost model, which is what the correlation validates.
	workers := 1
	subset := []Pair{{"sssp", "road"}, {"bfs", "road"}, {"sssp", "cage"},
		{"astar", "road"}, {"mst", "road"}, {"color", "web"}}
	res := Result{ID: "fig10", Title: "Simulator vs native Go runtime (normalized trends)",
		Series: []string{"sim", "native", "variation"}}
	// Simulated times are deterministic cycle counts, so those cells fan out
	// on the pool. Native times are wall-clock: concurrent native runs would
	// contend for the CPU and distort Elapsed, so they stay sequential.
	simT, err := parallelMap(len(subset), o.Par, func(i int) (float64, error) {
		r, err := runOne(sched.HDCPSSW(), set, subset[i], sim.DefaultSW(workers), o)
		if err != nil {
			return 0, err
		}
		return float64(r.CompletionTime), nil
	})
	if err != nil {
		return res, err
	}
	native, err := exec.ByName(exec.NativeName)
	if err != nil {
		return res, err
	}
	var natT []float64
	for _, p := range subset {
		w, err := set.workloadFor(p)
		if err != nil {
			return res, err
		}
		nr := native.Run(w, exec.Spec{Cores: workers, Seed: o.Seed})
		if err := w.Verify(); err != nil {
			return res, fmt.Errorf("exp: native run wrong on %s: %w", p.Label(), err)
		}
		natT = append(natT, float64(nr.CompletionTime))
	}
	gs, gn := stats.Geomean(simT), stats.Geomean(natT)
	for i, p := range subset {
		s := simT[i] / gs
		n := natT[i] / gn
		v := s/n - 1
		if v < 0 {
			v = -v
		}
		res.Rows = append(res.Rows, Row{Label: p.Label(), Values: map[string]float64{
			"sim": s, "native": n, "variation": v,
		}})
	}
	res.Notes = append(res.Notes,
		"paper reports ~5% average variation between simulator and Tilera; the native Go runtime is the stand-in vehicle")
	return res, nil
}

func fig11(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	splits := []int{1, 2, 4, 8, 10}
	subset := []Pair{{"sssp", "road"}, {"sssp", "cage"}, {"pagerank", "web"}}
	res := Result{ID: "fig11", Title: "Software Minnow splits (time normalized to 36-4)"}
	for _, p := range subset {
		res.Series = append(res.Series, p.Label())
	}
	baseRuns, err := parallelMap(len(subset), o.Par, func(i int) (int64, error) {
		r, err := runOne(sched.SWMinnow(4), set, subset[i], sim.DefaultSW(o.Cores), o)
		if err != nil {
			return 0, err
		}
		return r.CompletionTime, nil
	})
	if err != nil {
		return res, err
	}
	baseTimes := map[string]int64{}
	for i, p := range subset {
		baseTimes[p.Label()] = baseRuns[i]
	}
	rows, err := parallelMap(len(splits), o.Par, func(i int) (Row, error) {
		m := splits[i]
		row := Row{Label: fmt.Sprintf("%d-%d", o.Cores-m, m), Values: map[string]float64{}}
		for _, p := range subset {
			r, err := runOne(sched.SWMinnow(m), set, p, sim.DefaultSW(o.Cores), o)
			if err != nil {
				return Row{}, err
			}
			row.Values[p.Label()] = ratio(r.CompletionTime, baseTimes[p.Label()])
		}
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	res.Notes = append(res.Notes, "paper: 36-4 is the best geomean split; sparse road likes more minnows, dense fewer")
	return res, nil
}

func fig12(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultHW()
	subset := []Pair{{"sssp", "cage"}, {"sssp", "road"}, {"pagerank", "web"}}
	candidates := []int{10, 30, 50, 70, 90}
	const intervals = 3
	res := Result{ID: "fig12", Title: "HD-CPS:HW vs Dynamic Oracle, normalized to PMOD",
		Series: []string{"hdcps-hw", "oracle"}}
	rows, err := pairRows(subset, o, func(p Pair) (Row, error) {
		base, err := runOne(sched.PMOD(), set, p, cfg, o)
		if err != nil {
			return Row{}, err
		}
		hd, err := runOne(sched.HDCPSHW(), set, p, cfg, o)
		if err != nil {
			return Row{}, err
		}
		// Oracle: greedy per-interval sweep (§III-C), then a final run with
		// the chosen schedule.
		eval := func(schedule []int) float64 {
			s := sched.NewCPS(sched.CPSConfig{
				Label: "oracle-eval", UseRQ: true, Bags: bag.DefaultPolicy(),
				TDFSchedule: drift.FixedSchedule(schedule, 50),
			})
			w, err := set.workloadFor(p)
			if err != nil {
				return 0
			}
			return float64(s.Run(w, cfg, o.Seed).CompletionTime)
		}
		schedule := drift.Oracle(intervals, candidates, eval)
		or := sched.NewCPS(sched.CPSConfig{
			Label: "oracle", UseRQ: true, Bags: bag.DefaultPolicy(),
			TDFSchedule: drift.FixedSchedule(schedule, 50),
		})
		orr, err := runOne(or, set, p, cfg, o)
		if err != nil {
			return Row{}, err
		}
		return Row{Label: p.Label(), Values: map[string]float64{
			"hdcps-hw": ratio(hd.CompletionTime, base.CompletionTime),
			"oracle":   ratio(orr.CompletionTime, base.CompletionTime),
		}}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	geomeanRow(&res)
	res.Notes = append(res.Notes, "paper: heuristic comparable to oracle; oracle slightly ahead on divergent-priority inputs")
	return res, nil
}

func fig13(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultHW()
	subset := []Pair{{"sssp", "cage"}, {"sssp", "road"}, {"pagerank", "web"}}
	baseRuns, err := parallelMap(len(subset), o.Par, func(i int) (int64, error) {
		r, err := runOne(sched.PMOD(), set, subset[i], cfg, o)
		if err != nil {
			return 0, err
		}
		return r.CompletionTime, nil
	})
	if err != nil {
		return res13(), err
	}
	base := map[string]int64{}
	for i, p := range subset {
		base[p.Label()] = baseRuns[i]
	}
	res := res13()
	type cfgCase struct {
		label string
		d     drift.Config
	}
	var cases []cfgCase
	for _, iv := range []int{100, 500, 1000, 2000, 2500} {
		cases = append(cases, cfgCase{fmt.Sprintf("A:interval=%d", iv), drift.Config{SampleInterval: iv}})
	}
	for _, st := range []int{5, 10, 20, 30} {
		cases = append(cases, cfgCase{fmt.Sprintf("B:step=%d", st), drift.Config{Step: st}})
	}
	for _, it := range []int{10, 30, 50, 70, 90} {
		cases = append(cases, cfgCase{fmt.Sprintf("C:init=%d", it), drift.Config{InitialTDF: it}})
	}
	rows, err := parallelMap(len(cases), o.Par, func(i int) (Row, error) {
		c := cases[i]
		s := sched.NewCPS(sched.CPSConfig{
			Label: c.label, UseRQ: true, UseTDF: true, Bags: bag.DefaultPolicy(), Drift: c.d,
		})
		var ratios []float64
		for _, p := range subset {
			r, err := runOne(s, set, p, cfg, o)
			if err != nil {
				return Row{}, err
			}
			ratios = append(ratios, float64(base[p.Label()])/float64(r.CompletionTime))
		}
		return Row{Label: c.label,
			Values: map[string]float64{"speedup-vs-pmod": stats.Geomean(ratios)}}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	res.Notes = append(res.Notes, "paper picks interval 2000, step 10%, initial 50%; initial TDF is insensitive")
	return res, nil
}

func res13() Result {
	return Result{ID: "fig13", Title: "Adaptive TDF tunables (geomean speedup vs PMOD)",
		Series: []string{"speedup-vs-pmod"}}
}

func fig14(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultHW()
	res := Result{ID: "fig14", Title: "Bag transport vs PMOD (speedup; higher is better)",
		Series: []string{"push", "pull"}}
	// The push/pull gap is small relative to order noise at reduced scale,
	// so every cell averages a few seeds.
	seeds := []uint64{o.Seed, o.Seed + 1, o.Seed + 2}
	rows, err := pairRows(pairs(), o, func(p Pair) (Row, error) {
		avg := func(run func(Options) (stats.Run, error)) (float64, error) {
			var times []float64
			for _, seed := range seeds {
				so := o
				so.Seed = seed
				r, err := run(so)
				if err != nil {
					return 0, err
				}
				times = append(times, float64(r.CompletionTime))
			}
			return stats.Geomean(times), nil
		}
		baseT, err := avg(func(so Options) (stats.Run, error) {
			return runOne(sched.PMOD(), set, p, cfg, so)
		})
		if err != nil {
			return Row{}, err
		}
		row := Row{Label: p.Label(), Values: map[string]float64{}}
		for _, tr := range []bag.Transport{bag.Push, bag.Pull} {
			pol := bag.DefaultPolicy()
			pol.Transport = tr
			s := sched.NewCPS(sched.CPSConfig{
				Label: "hdcps-" + tr.String(), UseRQ: true, UseTDF: true, Bags: pol,
			})
			t, err := avg(func(so Options) (stats.Run, error) {
				return runOne(s, set, p, cfg, so)
			})
			if err != nil {
				return Row{}, err
			}
			row.Values[tr.String()] = baseT / t
		}
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	geomeanRow(&res)
	res.Notes = append(res.Notes, "paper: pull ~1.5x better than push; push roughly at par with PMOD")
	return res, nil
}

func fig15(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultHW()
	subset := []Pair{{"sssp", "cage"}, {"sssp", "road"}, {"pagerank", "web"}, {"color", "web"}}
	res := Result{ID: "fig15", Title: "Bag-creation threshold (geomean speedup vs PMOD)",
		Series: []string{"speedup-vs-pmod"}}
	baseRuns, err := parallelMap(len(subset), o.Par, func(i int) (int64, error) {
		r, err := runOne(sched.PMOD(), set, subset[i], cfg, o)
		if err != nil {
			return 0, err
		}
		return r.CompletionTime, nil
	})
	if err != nil {
		return res, err
	}
	base := map[string]int64{}
	for i, p := range subset {
		base[p.Label()] = baseRuns[i]
	}
	thresholds := []int{1, 2, 3, 4, 5}
	rows, err := parallelMap(len(thresholds), o.Par, func(i int) (Row, error) {
		th := thresholds[i]
		pol := bag.DefaultPolicy()
		pol.MinSize = th
		s := sched.NewCPS(sched.CPSConfig{
			Label: fmt.Sprintf("thresh-%d", th), UseRQ: true, UseTDF: true, Bags: pol,
		})
		var ratios []float64
		for _, p := range subset {
			r, err := runOne(s, set, p, cfg, o)
			if err != nil {
				return Row{}, err
			}
			ratios = append(ratios, float64(base[p.Label()])/float64(r.CompletionTime))
		}
		return Row{Label: fmt.Sprintf("threshold=%d", th),
			Values: map[string]float64{"speedup-vs-pmod": stats.Geomean(ratios)}}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	res.Notes = append(res.Notes, "paper: threshold 3 delivers the best overall performance")
	return res, nil
}

// motivation quantifies the paper's §II argument on the same simulator:
// unordered execution (work stealing) wastes work, strictly ordered
// execution (one locked global queue) wastes synchronization, and relaxed
// priority schedulers (MultiQueue, RELD, PMOD, HD-CPS) live between. Not a
// paper figure; an extension experiment.
func motivation(o Options) (Result, error) {
	o = o.normalized()
	set, err := inputs(o)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultSW(o.Cores)
	// No sssp-road here: unordered execution of weighted SSSP on a
	// high-diameter graph does unbounded rework — the extreme form of the
	// very effect this experiment quantifies.
	subset := []Pair{{"sssp", "cage"}, {"bfs", "road"}, {"color", "road"}}
	names := []string{"steal", "ordered", "multiq", "reld", "pmod", "hdcps-sw"}
	res := Result{ID: "motivation",
		Title: "Time (vs hdcps-sw) and work efficiency across the ordering spectrum"}
	for _, n := range names {
		res.Series = append(res.Series, n, "we-"+n)
	}
	rows, err := pairRows(subset, o, func(p Pair) (Row, error) {
		base, err := runOne(sched.HDCPSSW(), set, p, cfg, o)
		if err != nil {
			return Row{}, err
		}
		row := Row{Label: p.Label(), Values: map[string]float64{
			"hdcps-sw": 1.0, "we-hdcps-sw": base.WorkEfficiency(),
		}}
		for _, n := range names {
			if n == "hdcps-sw" {
				continue
			}
			s, err := sched.ByName(n)
			if err != nil {
				return Row{}, err
			}
			r, err := runOne(s, set, p, cfg, o)
			if err != nil {
				return Row{}, err
			}
			row.Values[n] = ratio(r.CompletionTime, base.CompletionTime)
			row.Values["we-"+n] = r.WorkEfficiency()
		}
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	geomeanRow(&res)
	res.Notes = append(res.Notes,
		"expected: steal has the worst work efficiency, ordered the best but the worst time at scale, relaxed schedulers win overall (§II)")
	return res, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func ratioF(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
