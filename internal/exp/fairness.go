package exp

// The fairness-sweep experiment exercises the PR-7 multi-tenant engine: four
// jobs with weights 4:2:1:1 share one native fleet, and the experiment
// reports each tenant's measured share of processed tasks over the window
// where every tenant still had outstanding work, against the share its
// weight entitles it to. The deficit-round-robin batch fill makes the
// entitlement task-count-proportional (credit = weight pops per activation),
// so the measured shares should track the weight shares regardless of how
// expensive each tenant's tasks are. Every tenant's workload is verified
// and the quiescent snapshot must balance the global ledger, all four
// per-job ledgers, and the partition identity between them.

import (
	"fmt"

	"hdcps/internal/exec"
	"hdcps/internal/graph"
	"hdcps/internal/runtime"
	"hdcps/internal/workload"
)

// fairnessTenant is one tenant of the sweep's fixed mix: a workload-input
// pair and its fair-share weight.
type fairnessTenant struct {
	pair   Pair
	weight int
}

func fairnessSweep(o Options) (Result, error) {
	o = o.normalized()
	// Weighted fairness governs backlogged tenants, so the mix pairs
	// sssp/bfs with inputs whose frontiers explode immediately and stay
	// wide (cage's banded structure, web/lj's power-law hubs) — road-style
	// single-source ramps are supply-limited for most of their run and
	// would measure the workload's frontier width, not the scheduler. The
	// mix still crosses cheap tasks (bfs) with expensive ones (sssp) so
	// weight-proportionality is tested where per-task cost differs. Each
	// tenant's input is sized so its total work is roughly proportional to
	// its weight share: under fair shares all tenants then finish around
	// the same time, which is what makes the all-backlogged contention
	// window span most of the run instead of ending at the smallest
	// tenant's early exit.
	// The input multiplier sets how deep each tenant's frontier runs
	// relative to the fleet's service rate. Weighted fairness is an
	// asymptotic property of backlogged tenants: graph workloads are
	// closed-loop (a tenant's task supply is its own processing output),
	// so at small sizes the measurement is partly supply-limited and the
	// shares drift toward equality. Measured worst-case |share - want|:
	// ~0.12 at mult 4, ~0.05 at 16, ~0.03 at 40.
	mult := 16
	switch o.Scale {
	case "tiny":
		mult = 4
	case "large":
		mult = 40
	}
	type tenantSpec struct {
		fairnessTenant
		g *graph.CSR
	}
	specs := []tenantSpec{
		{fairnessTenant{Pair{"sssp", "cage"}, 4}, graph.Cage(2000*mult, 34, 80, o.Seed)},
		{fairnessTenant{Pair{"bfs", "cage2"}, 2}, graph.Cage(5000*mult, 34, 80, o.Seed+1)},
		{fairnessTenant{Pair{"sssp", "web"}, 1}, graph.Web(1250*mult, o.Seed)},
		{fairnessTenant{Pair{"bfs", "lj"}, 1}, graph.LJ(2000*mult, o.Seed)},
	}
	const workers = 4

	tenants := make([]fairnessTenant, len(specs))
	ws := make([]workload.Workload, len(specs))
	jcs := make([]runtime.JobConfig, len(specs))
	for i, s := range specs {
		w, err := workload.New(s.pair.Workload, s.g)
		if err != nil {
			return Result{}, fmt.Errorf("exp: fairness-sweep tenant %s: %w", s.pair.Label(), err)
		}
		tenants[i] = s.fairnessTenant
		ws[i] = w
		jcs[i] = runtime.JobConfig{Name: s.pair.Label(), Weight: s.weight}
	}
	cfg := runtime.DefaultConfig(workers)
	cfg.Seed = o.Seed
	run, rep, err := exec.RunJobs(ws, jcs, exec.Spec{Cores: workers, Seed: o.Seed, Native: &cfg})
	if err != nil {
		return Result{}, fmt.Errorf("exp: fairness-sweep: %w", err)
	}
	if rep.DrainErr != nil {
		return Result{}, fmt.Errorf("exp: fairness-sweep drain: %w", rep.DrainErr)
	}
	if rep.ConservationErr != nil {
		return Result{}, fmt.Errorf("exp: fairness-sweep ledger: %w", rep.ConservationErr)
	}
	for i, w := range ws {
		if err := w.Verify(); err != nil {
			return Result{}, fmt.Errorf("exp: fairness-sweep tenant %s wrong: %w", tenants[i].pair.Label(), err)
		}
	}
	// At small scale and up the inputs are deep enough for the fairness
	// contract to be enforceable: shares must land within 10 percentage
	// points of the weight shares at large scale, 12 at small (closed-loop
	// supply effects shrink with input depth, and a loaded box measured up
	// to ~9pp at small). Tiny inputs are run for speed (CI smoke), where
	// the measurement is supply-limited and informational.
	gate := 0.0
	switch o.Scale {
	case "small":
		gate = 0.12
	case "large":
		gate = 0.10
	}
	if gate > 0 {
		if worst := rep.ShareError(); worst > gate {
			return Result{}, fmt.Errorf(
				"exp: fairness-sweep shares out of tolerance: worst |share-want| %.4f > %.2f (shares %v, want %v, window %d tasks)",
				worst, gate, rep.Shares, rep.WeightShares, rep.ShareSamples)
		}
	}

	res := Result{
		ID:     "fairness-sweep",
		Title:  "Multi-tenant weighted fairness: measured vs entitled task shares (weights 4:2:1:1)",
		Series: []string{"weight", "want-share", "got-share", "abs-dev", "processed", "spawned"},
	}
	for i, t := range tenants {
		j := rep.Jobs[i]
		dev := rep.Shares[i] - rep.WeightShares[i]
		if dev < 0 {
			dev = -dev
		}
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("job%d %s", i, t.pair.Label()),
			Values: map[string]float64{
				"weight":     float64(t.weight),
				"want-share": rep.WeightShares[i],
				"got-share":  rep.Shares[i],
				"abs-dev":    dev,
				"processed":  float64(j.Processed),
				"spawned":    float64(j.Spawned),
			},
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d workers; shares measured at the last snapshot where all tenants had outstanding work "+
			"(%d tasks processed in window); worst |deviation| %.4f; all tenants verified; "+
			"global + per-job ledgers exact at quiescence; fleet total %d tasks in %s",
		workers, rep.ShareSamples, rep.ShareError(), run.TasksProcessed, rep.Elapsed))
	return res, nil
}
