package exp

// The serve-sweep experiment measures the network front-end end to end: per
// local-queue kind it boots a real hdcps-serve instance on a loopback
// listener, drives it with the open-loop generator, binary-searches the max
// sustainable task rate (the saturation knee), and measures submit-latency
// quantiles at a fixed rate below the knee. Unlike the in-process sweeps,
// every number here includes HTTP parsing, admission control, and the
// conservation-ledger drain — it is the serving column of the
// relaxation-vs-speed frontier, and the same measurement BENCH_serve.json's
// serve-gate pins in CI.

import (
	"fmt"
	"time"

	"hdcps/internal/serve"
)

func serveSweep(o Options) (Result, error) {
	o = o.normalized()
	bo := serve.BenchOptions{
		Graph: "road",
		Scale: o.Scale,
		Seed:  o.Seed,
	}
	// Scale the probe budget with the input: tiny is the CI shape, larger
	// scales need longer probes for the knee search to converge on a rate
	// the slower per-task work can actually express.
	switch o.Scale {
	case "small":
		bo.ProbeDur = 800 * time.Millisecond
	case "large":
		bo.ProbeDur = 2 * time.Second
	}
	sweeps, err := serve.RunBench(bo, nil)
	if err != nil {
		return Result{}, fmt.Errorf("exp: serve-sweep: %w", err)
	}

	res := Result{
		ID:     "serve-sweep",
		Title:  "Serving saturation: max sustainable open-loop task rate by queue kind",
		Series: []string{"max_rate_tps", "accepted_tps", "p50_ms", "p99_ms", "p999_ms", "rejected", "server_5xx"},
	}
	for _, s := range sweeps {
		res.Rows = append(res.Rows, Row{Label: s.Queue, Values: map[string]float64{
			"max_rate_tps": s.MaxRate,
			"accepted_tps": s.AcceptedTPS,
			"p50_ms":       s.P50Ms,
			"p99_ms":       s.P99Ms,
			"p999_ms":      s.P999Ms,
			"rejected":     float64(s.Rejected),
			"server_5xx":   float64(s.ServerErrs),
		}})
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: knee after %d probes; fixed-rate run at %.0f tasks/s accepted %d",
			s.Queue, len(s.Probes), s.FixedRate, s.Accepted))
	}
	res.Notes = append(res.Notes,
		"each cell: real HTTP server on loopback, Poisson open-loop arrivals, "+
			"knee = doubling+bisection under a 90% accept-fraction policy; "+
			"latency measured at 60% of the knee; every server proves a "+
			"ledger-exact graceful drain before its row is reported")
	return res, nil
}
