package exp

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func tinyOpts() Options { return Options{Scale: "tiny", Seed: 7, Cores: 8} }

func errAt(i int) error { return fmt.Errorf("cell %d failed", i) }

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"motivation", "drift-timeline", "queue-sweep", "fairness-sweep",
		"serve-sweep"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs()[%d] = %s, want %s", i, ids[i], id)
		}
		if _, ok := Get(id); !ok {
			t.Fatalf("Get(%q) missing", id)
		}
	}
	if _, ok := Get("fig99"); ok {
		t.Fatal("unknown experiment should be absent")
	}
}

func TestScaleValidation(t *testing.T) {
	if _, err := inputs(Options{Scale: "bogus", Seed: 1}); err == nil {
		t.Fatal("bogus scale should error")
	}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"table1", "table2"} {
		e, _ := Get(id)
		res, err := e.Run(tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
		var buf bytes.Buffer
		res.Format(&buf)
		if !strings.Contains(buf.String(), res.Title) {
			t.Fatalf("%s: Format missing title", id)
		}
	}
}

// TestEveryFigureRunsAtTinyScale executes the full figure suite at tiny
// scale — the end-to-end proof that every experiment regenerates without
// error and with verified workload results.
func TestEveryFigureRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure suite is slow; run without -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			e, _ := Get(id)
			res, err := e.Run(tinyOpts())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s: no rows", id)
			}
			for _, row := range res.Rows {
				for s, v := range row.Values {
					if v < 0 {
						t.Errorf("%s %s/%s: negative value %v", id, row.Label, s, v)
					}
				}
			}
		})
	}
}

func TestFig3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Shapes hold at the paper's design point: 40 cores with inputs big
	// enough that the task frontier does not starve pull schedulers.
	e, _ := Get("fig3")
	res, err := e.Run(Options{Scale: "small", Seed: 42, Cores: 40})
	if err != nil {
		t.Fatal(err)
	}
	gm := res.Rows[len(res.Rows)-1] // geomean row
	if gm.Label != "geomean" {
		t.Fatalf("last row is %q", gm.Label)
	}
	// Headline shape: RELD slower than PMOD (>1), HD-CPS:SW faster (<1).
	if gm.Values["reld"] <= 1.0 {
		t.Errorf("RELD geomean %v, expected > 1 (slower than PMOD)", gm.Values["reld"])
	}
	if gm.Values["hdcps-sw"] >= 1.0 {
		t.Errorf("HD-CPS:SW geomean %v, expected < 1 (faster than PMOD)", gm.Values["hdcps-sw"])
	}
	if gm.Values["hdcps-sw"] >= gm.Values["reld"] {
		t.Errorf("HD-CPS:SW (%v) not better than RELD (%v)", gm.Values["hdcps-sw"], gm.Values["reld"])
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e, _ := Get("fig6")
	res, err := e.Run(Options{Scale: "small", Seed: 42, Cores: 40})
	if err != nil {
		t.Fatal(err)
	}
	gm := res.Rows[len(res.Rows)-1]
	if gm.Values["hrq+hpq"] >= 1.0 {
		t.Errorf("hRQ+hPQ geomean %v, expected < 1 (faster than SW)", gm.Values["hrq+hpq"])
	}
	if gm.Values["hrq+hpq"] > gm.Values["hrq"] {
		t.Errorf("hRQ+hPQ (%v) not at least as good as hRQ alone (%v)",
			gm.Values["hrq+hpq"], gm.Values["hrq"])
	}
}

// TestParallelDriverBitIdentical pins the parallel grid driver's contract:
// any Par produces exactly the Result a sequential run produces — same rows,
// same labels, same float bits. Experiments whose cells are deterministic
// simulator runs must not observe the pool size. fig10 is excluded by
// design (its native column is wall-clock), so the suite here covers the
// representative shapes: pairRows (fig3), sweep-after-base (fig15), and a
// thread sweep (fig4).
func TestParallelDriverBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs each experiment twice; slow")
	}
	for _, id := range []string{"fig3", "fig4", "fig15"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, _ := Get(id)
			seq := tinyOpts()
			seq.Par = 1
			par := tinyOpts()
			par.Par = 4
			a, err := e.Run(seq)
			if err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			b, err := e.Run(par)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("Par=1 and Par=4 diverged:\nseq: %+v\npar: %+v", a, b)
			}
		})
	}
}

func TestParallelMap(t *testing.T) {
	square := func(i int) (int, error) { return i * i, nil }
	for _, workers := range []int{1, 3, 8} {
		got, err := parallelMap(5, workers, square)
		if err != nil {
			t.Fatal(err)
		}
		if want := []int{0, 1, 4, 9, 16}; !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: got %v want %v", workers, got, want)
		}
	}
	// Error surfacing: the smallest-index error wins, matching a sequential
	// loop's first failure.
	boom := func(i int) (int, error) {
		if i%2 == 1 {
			return 0, errAt(i)
		}
		return i, nil
	}
	_, err := parallelMap(6, 4, boom)
	if err == nil || err.Error() != "cell 1 failed" {
		t.Fatalf("got %v, want cell 1 failure", err)
	}
	if _, err := parallelMap(0, 4, square); err != nil {
		t.Fatalf("empty map: %v", err)
	}
}

func TestInputCaching(t *testing.T) {
	o := tinyOpts().normalized()
	a, err := inputs(o)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := inputs(o)
	if a != b {
		t.Fatal("input set not cached")
	}
	n1, err := a.seqTasks(o, Pair{"sssp", "road"})
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := a.seqTasks(o, Pair{"sssp", "road"})
	if n1 != n2 || n1 <= 0 {
		t.Fatalf("seq task caching broken: %d vs %d", n1, n2)
	}
}
