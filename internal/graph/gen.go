package graph

import (
	"fmt"
	"math"
)

// The paper evaluates four real inputs (Table II). We cannot ship those
// datasets, so each generator below produces a deterministic synthetic graph
// matching the *shape* the paper's analysis depends on: degree distribution,
// density, and diameter class. DESIGN.md documents the substitution.
//
//	CAGE14      -> Cage:  quasi-regular banded graph, avg deg ~34, max 80
//	rUSA        -> Road:  sparse planar grid+shortcuts, avg deg ~2.4, huge diameter
//	Web-Google  -> Web:   power-law, avg deg ~11, heavy tail
//	LiveJournal -> LJ:    denser power-law, avg deg ~28, heavier tail
//
// Grid additionally produces a weighted 2-D lattice with coordinates for A*.

// Road generates a road-network-like graph: a w-by-h planar lattice where
// most nodes keep 2-3 undirected street segments (emitted as directed edge
// pairs) plus sparse long "highway" shortcuts. Weights model segment lengths
// in 1..1000. The result has tiny average degree and very large diameter,
// the two properties that make rUSA stress priority schedulers.
func Road(w, h int, seed uint64) *CSR {
	r := NewRNG(seed ^ 0x0ad)
	n := w * h
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	edges := make([]Edge, 0, n*5/2)
	undirected := func(a, b NodeID, wt uint32) {
		edges = append(edges, Edge{a, b, wt}, Edge{b, a, wt})
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := id(x, y)
			// Streets: keep ~95% of lattice edges so the graph stays almost
			// connected but irregular, like a road network with dead ends.
			if x+1 < w && r.Float64() < 0.95 {
				undirected(u, id(x+1, y), 1+r.Uint32n(1000))
			}
			if y+1 < h && r.Float64() < 0.95 {
				undirected(u, id(x, y+1), 1+r.Uint32n(1000))
			}
			// Rare highways: long-range shortcut with proportionally large
			// weight, ~0.2% of nodes.
			if r.Float64() < 0.002 {
				v := NodeID(r.Intn(n))
				if v != u {
					undirected(u, v, 2000+r.Uint32n(8000))
				}
			}
		}
	}
	g, err := FromEdges(fmt.Sprintf("road-%dx%d", w, h), n, edges)
	if err != nil {
		panic(err) // generator emits only in-range edges
	}
	attachLatticeCoords(g, w, h)
	return g
}

// attachLatticeCoords assigns (x, y) positions by row-major lattice layout so
// geometric workloads (A*) have an admissible heuristic to work with.
func attachLatticeCoords(g *CSR, w, h int) {
	n := g.NumNodes()
	g.X = make([]float32, n)
	g.Y = make([]float32, n)
	for i := 0; i < n; i++ {
		g.X[i] = float32(i % w)
		g.Y[i] = float32(i / w)
	}
	_ = h
}

// Cage generates a CAGE14-like graph: node i is connected to approximately
// avgDeg neighbors drawn from a band around i (banded-matrix structure with
// strong locality), with per-node degree capped at maxDeg. Weights are small
// (1..64), as for a matrix graph. The result is dense, low-diameter, and
// quasi-regular: the regime where bags of tasks pay off.
func Cage(n, avgDeg, maxDeg int, seed uint64) *CSR {
	if avgDeg < 1 || maxDeg < avgDeg {
		panic("graph: Cage requires 1 <= avgDeg <= maxDeg")
	}
	r := NewRNG(seed ^ 0xca9e)
	band := 4 * avgDeg
	if band >= n {
		band = n - 1
	}
	edges := make([]Edge, 0, n*avgDeg)
	for i := 0; i < n; i++ {
		// Degree jitters around avgDeg within [avgDeg/2, maxDeg].
		d := avgDeg/2 + r.Intn(avgDeg)
		if r.Float64() < 0.02 { // a few heavy rows, up to maxDeg
			d = avgDeg + r.Intn(maxDeg-avgDeg+1)
		}
		for k := 0; k < d; k++ {
			var j int
			if r.Float64() < 0.9 { // banded neighbor
				j = i - band/2 + r.Intn(band+1)
			} else { // occasional long-range coupling
				j = r.Intn(n)
			}
			if j < 0 {
				j += n
			}
			if j >= n {
				j -= n
			}
			if j == i {
				continue
			}
			edges = append(edges, Edge{NodeID(i), NodeID(j), 1 + r.Uint32n(64)})
		}
	}
	g, err := FromEdges(fmt.Sprintf("cage-%d", n), n, edges)
	if err != nil {
		panic(err)
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	attachLatticeCoords(g, side, (n+side-1)/side)
	return g
}

// powerLaw generates a directed preferential-attachment graph with the given
// average out-degree and power-law exponent. Destination sampling repeats
// earlier endpoints, reproducing the rich-get-richer in-degree tail observed
// in web and social graphs.
func powerLaw(name string, n, avgDeg int, alpha float64, maxDegFrac float64, seed uint64) *CSR {
	r := NewRNG(seed)
	// Out-degree tail cap: scales with density, not graph size, so small
	// test graphs keep the target average; the extreme in-degree tail comes
	// from preferential attachment, not from this cap.
	maxDeg := 10 * avgDeg
	if frac := int(maxDegFrac * float64(n)); frac > maxDeg {
		maxDeg = frac
	}
	if maxDeg >= n {
		maxDeg = n - 1
	}
	edges := make([]Edge, 0, n*avgDeg)
	// endpoint pool for preferential attachment; seeded with a small clique
	// so early samples are valid.
	pool := make([]NodeID, 0, n*avgDeg/2)
	for i := 0; i < 8 && i < n; i++ {
		pool = append(pool, NodeID(i))
	}
	// Calibrate the Zipf draw so the mean lands near avgDeg: for bounded
	// Pareto the mean is a function of alpha, so scale samples linearly.
	sum := 0
	probe := NewRNG(seed ^ 0x5ca1e)
	const probes = 4096
	for i := 0; i < probes; i++ {
		sum += probe.Zipf(alpha, maxDeg)
	}
	scale := float64(avgDeg) * probes / float64(sum)
	for i := 0; i < n; i++ {
		d := int(float64(r.Zipf(alpha, maxDeg)) * scale)
		if d < 1 {
			d = 1
		}
		if d > maxDeg {
			d = maxDeg
		}
		for k := 0; k < d; k++ {
			var v NodeID
			if r.Float64() < 0.7 { // preferential
				v = pool[r.Intn(len(pool))]
			} else { // uniform, keeps the graph expanding
				v = NodeID(r.Intn(n))
			}
			if v == NodeID(i) {
				continue
			}
			edges = append(edges, Edge{NodeID(i), v, 1 + r.Uint32n(100)})
			pool = append(pool, v)
		}
		pool = append(pool, NodeID(i))
	}
	g, err := FromEdges(name, n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Web generates a Web-Google-like power-law graph: avg out-degree ~11 with a
// heavy in-degree tail (max in the thousands at full scale).
func Web(n int, seed uint64) *CSR {
	return powerLaw(fmt.Sprintf("web-%d", n), n, 11, 2.1, 0.008, seed^0x3eb)
}

// LJ generates a LiveJournal-like power-law graph: denser (avg deg ~28) with
// an even heavier tail.
func LJ(n int, seed uint64) *CSR {
	return powerLaw(fmt.Sprintf("lj-%d", n), n, 28, 1.9, 0.004, seed^0x17)
}

// Grid generates a fully connected w-by-h 4-neighbor lattice with Euclidean
// coordinates and weights in [1, maxWt]. It is the input for the A* workload
// (the admissible heuristic needs geometry).
func Grid(w, h int, maxWt uint32, seed uint64) *CSR {
	if maxWt == 0 {
		maxWt = 1
	}
	r := NewRNG(seed ^ 0x9a1d)
	n := w * h
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	edges := make([]Edge, 0, 4*n)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := id(x, y)
			if x+1 < w {
				wt := 1 + r.Uint32n(maxWt)
				edges = append(edges, Edge{u, id(x+1, y), wt}, Edge{id(x+1, y), u, wt})
			}
			if y+1 < h {
				wt := 1 + r.Uint32n(maxWt)
				edges = append(edges, Edge{u, id(x, y+1), wt}, Edge{id(x, y+1), u, wt})
			}
		}
	}
	g, err := FromEdges(fmt.Sprintf("grid-%dx%d", w, h), n, edges)
	if err != nil {
		panic(err)
	}
	g.X = make([]float32, n)
	g.Y = make([]float32, n)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.X[id(x, y)] = float32(x)
			g.Y[id(x, y)] = float32(y)
		}
	}
	return g
}
