package graph

import "fmt"

// Stats summarizes a graph the way the paper's Table II does.
type Stats struct {
	Name    string
	Nodes   int
	Edges   int
	AvgDeg  float64
	MaxDeg  int
	MinDeg  int
	Sources int // nodes with in-degree 0
	Sinks   int // nodes with out-degree 0
}

// ComputeStats returns degree statistics for g.
func ComputeStats(g *CSR) Stats {
	n := g.NumNodes()
	s := Stats{Name: g.Name, Nodes: n, Edges: g.NumEdges(), MinDeg: int(^uint(0) >> 1)}
	if n == 0 {
		s.MinDeg = 0
		return s
	}
	inDeg := make([]int, n)
	for _, v := range g.Dst {
		inDeg[v]++
	}
	for u := 0; u < n; u++ {
		d := g.OutDegree(NodeID(u))
		if d > s.MaxDeg {
			s.MaxDeg = d
		}
		if d < s.MinDeg {
			s.MinDeg = d
		}
		if d == 0 {
			s.Sinks++
		}
		if inDeg[u] == 0 {
			s.Sources++
		}
	}
	s.AvgDeg = float64(s.Edges) / float64(n)
	return s
}

// String formats the stats as a Table II row.
func (s Stats) String() string {
	return fmt.Sprintf("%-16s nodes=%-9d edges=%-10d avgdeg=%-6.1f maxdeg=%-6d",
		s.Name, s.Nodes, s.Edges, s.AvgDeg, s.MaxDeg)
}

// LargestComponentSeed returns a node from which a large fraction of the
// graph is reachable, found by probing a few deterministic candidates with
// truncated BFS. Workloads use it as the default source so SSSP/BFS/A* do
// meaningful work on generated graphs.
func LargestComponentSeed(g *CSR) NodeID {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	best, bestReach := NodeID(0), -1
	seen := make([]uint32, n)
	epoch := uint32(0)
	queue := make([]NodeID, 0, 1024)
	for probe := 0; probe < 8; probe++ {
		src := NodeID(probe * n / 8)
		epoch++
		queue = queue[:0]
		queue = append(queue, src)
		seen[src] = epoch
		reach := 0
		const reachLimit = 200000
		for i := 0; i < len(queue) && reach < reachLimit; i++ {
			u := queue[i]
			reach++
			dsts, _ := g.Neighbors(u)
			for _, v := range dsts {
				if seen[v] != epoch {
					seen[v] = epoch
					queue = append(queue, v)
				}
			}
		}
		if reach > bestReach {
			best, bestReach = src, reach
		}
	}
	return best
}
