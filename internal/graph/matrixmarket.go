package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses the MatrixMarket coordinate format, which is how
// the SuiteSparse collection distributes CAGE14 (the paper's dense input):
//
//	%%MatrixMarket matrix coordinate real general
//	% comments
//	<rows> <cols> <entries>
//	<row> <col> [value]
//
// Each entry (i, j, v) becomes a directed edge i->j. Values are mapped to
// positive integer weights by scaling |v| into [1, 1000] over the file's
// value range (pattern matrices get weight 1); the "symmetric" qualifier
// emits the mirrored edge too. Row/column indices are 1-based.
func ReadMatrixMarket(name string, r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	if !sc.Scan() {
		return nil, fmt.Errorf("graph: matrixmarket: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("graph: matrixmarket: bad header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("graph: matrixmarket: only coordinate format is supported, got %q", header[2])
	}
	pattern := len(header) > 3 && header[3] == "pattern"
	symmetric := false
	for _, q := range header[4:] {
		if q == "symmetric" || q == "skew-symmetric" || q == "hermitian" {
			symmetric = true
		}
	}

	// Size line: first non-comment line.
	var n, entries int
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 3 {
			return nil, fmt.Errorf("graph: matrixmarket line %d: malformed size line %q", line, text)
		}
		rows, err1 := strconv.Atoi(f[0])
		cols, err2 := strconv.Atoi(f[1])
		ents, err3 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || err3 != nil || rows <= 0 || cols <= 0 || ents < 0 {
			return nil, fmt.Errorf("graph: matrixmarket line %d: bad size line %q", line, text)
		}
		n = rows
		if cols > n {
			n = cols
		}
		entries = ents
		break
	}
	if n == 0 {
		return nil, fmt.Errorf("graph: matrixmarket: missing size line")
	}

	type rawEdge struct {
		u, v NodeID
		val  float64
	}
	raw := make([]rawEdge, 0, entries)
	minV, maxV := math.Inf(1), math.Inf(-1)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		f := strings.Fields(text)
		if len(f) < 2 {
			return nil, fmt.Errorf("graph: matrixmarket line %d: malformed entry %q", line, text)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil || i < 1 || i > n || j < 1 || j > n {
			return nil, fmt.Errorf("graph: matrixmarket line %d: bad entry %q", line, text)
		}
		v := 1.0
		if !pattern && len(f) >= 3 {
			var err error
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: matrixmarket line %d: bad value %q", line, f[2])
			}
		}
		av := math.Abs(v)
		if av < minV {
			minV = av
		}
		if av > maxV {
			maxV = av
		}
		raw = append(raw, rawEdge{NodeID(i - 1), NodeID(j - 1), av})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading matrixmarket: %w", err)
	}

	weight := func(v float64) uint32 {
		if pattern || maxV <= minV {
			return 1
		}
		return 1 + uint32(999*(v-minV)/(maxV-minV))
	}
	edges := make([]Edge, 0, len(raw)*2)
	for _, e := range raw {
		edges = append(edges, Edge{Src: e.u, Dst: e.v, Wt: weight(e.val)})
		if symmetric && e.u != e.v {
			edges = append(edges, Edge{Src: e.v, Dst: e.u, Wt: weight(e.val)})
		}
	}
	return FromEdges(name, n, edges)
}
