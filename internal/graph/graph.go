// Package graph provides the directed weighted graph substrate used by all
// workloads and schedulers: a compressed-sparse-row (CSR) representation,
// deterministic synthetic generators matching the shape statistics of the
// paper's inputs (Table II), loaders for the DIMACS and SNAP formats the
// paper's artifact uses, and graph statistics.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a vertex. The paper's inputs fit comfortably in 32 bits.
type NodeID = uint32

// Edge is a directed weighted edge used when building a graph.
type Edge struct {
	Src, Dst NodeID
	Wt       uint32
}

// CSR is a directed weighted graph in compressed-sparse-row form. Off has
// NumNodes+1 entries; the out-edges of node u are Dst[Off[u]:Off[u+1]] with
// parallel weights Wt[Off[u]:Off[u+1]].
//
// X and Y are optional per-node coordinates (set by the grid generator and
// used by the A* workload); they are nil for graphs without geometry.
type CSR struct {
	Name string
	Off  []uint32
	Dst  []NodeID
	Wt   []uint32
	X, Y []float32
}

// NumNodes returns the number of vertices.
func (g *CSR) NumNodes() int { return len(g.Off) - 1 }

// NumEdges returns the number of directed edges.
func (g *CSR) NumEdges() int { return len(g.Dst) }

// OutDegree returns the out-degree of u.
func (g *CSR) OutDegree(u NodeID) int { return int(g.Off[u+1] - g.Off[u]) }

// Neighbors returns the destination and weight slices for u's out-edges.
// The returned slices alias the graph and must not be modified.
func (g *CSR) Neighbors(u NodeID) ([]NodeID, []uint32) {
	lo, hi := g.Off[u], g.Off[u+1]
	return g.Dst[lo:hi], g.Wt[lo:hi]
}

// HasCoords reports whether per-node coordinates are available.
func (g *CSR) HasCoords() bool { return g.X != nil && g.Y != nil }

// FromEdges builds a CSR graph with n nodes from an arbitrary edge list.
// Edges are grouped by source; the relative order of a node's out-edges
// follows the input order. Duplicate edges are kept (multigraphs are legal
// inputs for all workloads). Edges referencing nodes >= n are rejected.
func FromEdges(name string, n int, edges []Edge) (*CSR, error) {
	deg := make([]uint32, n+1)
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d->%d) out of range for %d nodes", e.Src, e.Dst, n)
		}
		deg[e.Src+1]++
	}
	off := make([]uint32, n+1)
	for i := 1; i <= n; i++ {
		off[i] = off[i-1] + deg[i]
	}
	dst := make([]NodeID, len(edges))
	wt := make([]uint32, len(edges))
	next := make([]uint32, n)
	copy(next, off[:n])
	for _, e := range edges {
		i := next[e.Src]
		next[e.Src]++
		dst[i] = e.Dst
		wt[i] = e.Wt
	}
	return &CSR{Name: name, Off: off, Dst: dst, Wt: wt}, nil
}

// Reverse returns the transpose graph (every edge u->v becomes v->u). Used
// by the push-pull PageRank workload to walk incoming edges.
func (g *CSR) Reverse() *CSR {
	n := g.NumNodes()
	edges := make([]Edge, 0, g.NumEdges())
	for u := 0; u < n; u++ {
		dsts, wts := g.Neighbors(NodeID(u))
		for i, v := range dsts {
			edges = append(edges, Edge{Src: v, Dst: NodeID(u), Wt: wts[i]})
		}
	}
	rg, err := FromEdges(g.Name+"-rev", n, edges)
	if err != nil {
		// Cannot happen: edges come from a valid graph of the same size.
		panic(err)
	}
	return rg
}

// Symmetrize returns the undirected closure of g: for every edge u->v the
// result contains both u->v and v->u with the same weight, with exact
// duplicate (src, dst, wt) triples removed. Workloads that need symmetric
// adjacency (graph coloring, Boruvka MST) run on the symmetrized graph.
func (g *CSR) Symmetrize() *CSR {
	n := g.NumNodes()
	type key struct {
		u, v NodeID
		w    uint32
	}
	seen := make(map[key]bool, g.NumEdges()*2)
	edges := make([]Edge, 0, g.NumEdges()*2)
	add := func(u, v NodeID, w uint32) {
		k := key{u, v, w}
		if u == v || seen[k] {
			return
		}
		seen[k] = true
		edges = append(edges, Edge{u, v, w})
	}
	for u := 0; u < n; u++ {
		dsts, wts := g.Neighbors(NodeID(u))
		for i, v := range dsts {
			add(NodeID(u), v, wts[i])
			add(v, NodeID(u), wts[i])
		}
	}
	sg, err := FromEdges(g.Name+"-sym", n, edges)
	if err != nil {
		panic(err) // edges come from a valid graph of the same size
	}
	sg.X, sg.Y = g.X, g.Y
	return sg
}

// SortNeighbors orders every adjacency list by destination ID. Sorted
// adjacency improves the locality modeled by the simulator's cache and makes
// graph comparisons deterministic.
func (g *CSR) SortNeighbors() {
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		lo, hi := g.Off[u], g.Off[u+1]
		pairSort(g.Dst[lo:hi], g.Wt[lo:hi])
	}
}

func pairSort(dst []NodeID, wt []uint32) {
	idx := make([]int, len(dst))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return dst[idx[a]] < dst[idx[b]] })
	nd := make([]NodeID, len(dst))
	nw := make([]uint32, len(wt))
	for i, j := range idx {
		nd[i], nw[i] = dst[j], wt[j]
	}
	copy(dst, nd)
	copy(wt, nw)
}

// MaxWeight returns the largest edge weight, or 0 for an edgeless graph.
func (g *CSR) MaxWeight() uint32 {
	var m uint32
	for _, w := range g.Wt {
		if w > m {
			m = w
		}
	}
	return m
}
