package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	edges := []Edge{{0, 1, 5}, {0, 2, 7}, {2, 0, 1}, {1, 2, 3}}
	g, err := FromEdges("t", 3, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 4 {
		t.Fatalf("got %d nodes %d edges, want 3 and 4", g.NumNodes(), g.NumEdges())
	}
	dsts, wts := g.Neighbors(0)
	if len(dsts) != 2 || dsts[0] != 1 || dsts[1] != 2 || wts[0] != 5 || wts[1] != 7 {
		t.Fatalf("node 0 neighbors = %v %v", dsts, wts)
	}
	if g.OutDegree(1) != 1 || g.OutDegree(2) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.OutDegree(1), g.OutDegree(2))
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges("t", 2, []Edge{{0, 2, 1}}); err == nil {
		t.Fatal("expected error for out-of-range destination")
	}
	if _, err := FromEdges("t", 2, []Edge{{5, 0, 1}}); err == nil {
		t.Fatal("expected error for out-of-range source")
	}
}

func TestFromEdgesEmpty(t *testing.T) {
	g, err := FromEdges("empty", 4, nil)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 0 {
		t.Fatalf("got %d/%d", g.NumNodes(), g.NumEdges())
	}
	for u := 0; u < 4; u++ {
		if g.OutDegree(NodeID(u)) != 0 {
			t.Fatalf("node %d has edges", u)
		}
	}
}

func TestReversePreservesEdges(t *testing.T) {
	g := Web(500, 1)
	rg := g.Reverse()
	if rg.NumEdges() != g.NumEdges() || rg.NumNodes() != g.NumNodes() {
		t.Fatalf("reverse changed size: %d/%d vs %d/%d",
			rg.NumNodes(), rg.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	// Every edge u->v in g must appear as v->u in rg with the same weight.
	type key struct {
		u, v NodeID
		w    uint32
	}
	fwd := map[key]int{}
	for u := 0; u < g.NumNodes(); u++ {
		dsts, wts := g.Neighbors(NodeID(u))
		for i, v := range dsts {
			fwd[key{NodeID(u), v, wts[i]}]++
		}
	}
	for u := 0; u < rg.NumNodes(); u++ {
		dsts, wts := rg.Neighbors(NodeID(u))
		for i, v := range dsts {
			k := key{v, NodeID(u), wts[i]}
			fwd[k]--
			if fwd[k] < 0 {
				t.Fatalf("reverse has extra edge %v", k)
			}
		}
	}
	for k, c := range fwd {
		if c != 0 {
			t.Fatalf("edge %v lost in reverse (count %d)", k, c)
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	g := Cage(300, 8, 20, 7)
	g.SortNeighbors()
	rr := g.Reverse().Reverse()
	rr.SortNeighbors()
	if rr.NumEdges() != g.NumEdges() {
		t.Fatalf("double reverse changed edge count")
	}
	for i := range g.Dst {
		if g.Dst[i] != rr.Dst[i] || g.Wt[i] != rr.Wt[i] {
			t.Fatalf("double reverse differs at edge %d", i)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := map[string]func() *CSR{
		"road": func() *CSR { return Road(40, 40, 42) },
		"cage": func() *CSR { return Cage(1000, 12, 30, 42) },
		"web":  func() *CSR { return Web(1000, 42) },
		"lj":   func() *CSR { return LJ(1000, 42) },
		"grid": func() *CSR { return Grid(30, 30, 100, 42) },
	}
	for name, gen := range gens {
		a, b := gen(), gen()
		if a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: nondeterministic edge count %d vs %d", name, a.NumEdges(), b.NumEdges())
		}
		for i := range a.Dst {
			if a.Dst[i] != b.Dst[i] || a.Wt[i] != b.Wt[i] {
				t.Fatalf("%s: nondeterministic at edge %d", name, i)
			}
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	// Check that the synthetic graphs match the Table II shape classes they
	// substitute for (see DESIGN.md).
	road := ComputeStats(Road(100, 100, 1))
	if road.AvgDeg < 1.5 || road.AvgDeg > 4.5 {
		t.Errorf("road avg degree %.2f outside sparse range", road.AvgDeg)
	}
	cage := ComputeStats(Cage(5000, 34, 80, 1))
	if cage.AvgDeg < 20 || cage.AvgDeg > 50 {
		t.Errorf("cage avg degree %.2f, want ~34", cage.AvgDeg)
	}
	if cage.MaxDeg > 85 {
		t.Errorf("cage max degree %d, want <= ~80", cage.MaxDeg)
	}
	web := ComputeStats(Web(5000, 1))
	if web.AvgDeg < 5 || web.AvgDeg > 25 {
		t.Errorf("web avg degree %.2f, want ~11", web.AvgDeg)
	}
	lj := ComputeStats(LJ(5000, 1))
	if lj.AvgDeg < 15 || lj.AvgDeg > 45 {
		t.Errorf("lj avg degree %.2f, want ~28", lj.AvgDeg)
	}
	if lj.AvgDeg <= web.AvgDeg {
		t.Errorf("lj (%.1f) should be denser than web (%.1f)", lj.AvgDeg, web.AvgDeg)
	}
	// Power-law tail: web max in-degree should dwarf its average.
	rweb := Web(5000, 1).Reverse()
	rstats := ComputeStats(rweb)
	if float64(rstats.MaxDeg) < 5*rstats.AvgDeg {
		t.Errorf("web in-degree tail too light: max %d avg %.1f", rstats.MaxDeg, rstats.AvgDeg)
	}
}

func TestGridCoords(t *testing.T) {
	g := Grid(5, 4, 10, 3)
	if !g.HasCoords() {
		t.Fatal("grid should have coordinates")
	}
	if g.NumNodes() != 20 {
		t.Fatalf("grid nodes = %d, want 20", g.NumNodes())
	}
	// Node 7 = (2, 1).
	if g.X[7] != 2 || g.Y[7] != 1 {
		t.Fatalf("node 7 at (%v,%v), want (2,1)", g.X[7], g.Y[7])
	}
	// Every grid node has 2-4 neighbors, each one lattice step away.
	for u := 0; u < g.NumNodes(); u++ {
		d := g.OutDegree(NodeID(u))
		if d < 2 || d > 4 {
			t.Fatalf("grid node %d degree %d", u, d)
		}
		dsts, _ := g.Neighbors(NodeID(u))
		for _, v := range dsts {
			dx := g.X[u] - g.X[v]
			dy := g.Y[u] - g.Y[v]
			if dx*dx+dy*dy != 1 {
				t.Fatalf("grid edge %d->%d not unit length", u, v)
			}
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g := Road(20, 20, 9)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatalf("WriteDIMACS: %v", err)
	}
	g2, err := ReadDIMACS("rt", &buf)
	if err != nil {
		t.Fatalf("ReadDIMACS: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch")
	}
	for i := range g.Dst {
		if g.Dst[i] != g2.Dst[i] || g.Wt[i] != g2.Wt[i] {
			t.Fatalf("round trip differs at edge %d", i)
		}
	}
}

func TestDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no problem line":  "a 1 2 3\n",
		"bad problem":      "p xx 3 1\na 1 2 3\n",
		"bad arc arity":    "p sp 3 1\na 1 2\n",
		"arc out of range": "p sp 3 1\na 1 9 3\n",
		"unknown record":   "p sp 3 1\nz 1 2 3\n",
	}
	for name, input := range cases {
		if _, err := ReadDIMACS("t", strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadSNAP(t *testing.T) {
	input := "# comment\n10 20\n20 30\n10 30\n\n30 10\n"
	g, err := ReadSNAP("snap", strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadSNAP: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 4 {
		t.Fatalf("snap parsed %d nodes %d edges, want 3/4", g.NumNodes(), g.NumEdges())
	}
	// IDs compacted in first-appearance order: 10->0, 20->1, 30->2.
	dsts, _ := g.Neighbors(0)
	if len(dsts) != 2 || dsts[0] != 1 || dsts[1] != 2 {
		t.Fatalf("node 0 neighbors = %v", dsts)
	}
}

func TestReadSNAPErrors(t *testing.T) {
	if _, err := ReadSNAP("t", strings.NewReader("# only comments\n")); err == nil {
		t.Error("empty snap should error")
	}
	if _, err := ReadSNAP("t", strings.NewReader("1 x\n")); err == nil {
		t.Error("non-numeric snap should error")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(124)
	same := 0
	a = NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if z := r.Zipf(2.0, 50); z < 1 || z > 50 {
			t.Fatalf("Zipf out of range: %v", z)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Zipf(2.0, 1000) == 1 {
			ones++
		}
	}
	// A power law with alpha=2 puts most mass at 1.
	if ones < n/3 {
		t.Fatalf("Zipf(2.0) not skewed: only %d/%d ones", ones, n)
	}
}

func TestSortNeighbors(t *testing.T) {
	g := Web(300, 5)
	g.SortNeighbors()
	for u := 0; u < g.NumNodes(); u++ {
		dsts, _ := g.Neighbors(NodeID(u))
		for i := 1; i < len(dsts); i++ {
			if dsts[i-1] > dsts[i] {
				t.Fatalf("node %d neighbors unsorted", u)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	g, _ := FromEdges("s", 4, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {1, 0, 1}})
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 4 || s.MaxDeg != 3 || s.MinDeg != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Sinks != 2 { // nodes 2 and 3
		t.Fatalf("sinks = %d, want 2", s.Sinks)
	}
	if s.AvgDeg != 1.0 {
		t.Fatalf("avg = %v, want 1", s.AvgDeg)
	}
}

func TestLargestComponentSeed(t *testing.T) {
	g := Grid(30, 30, 5, 2)
	src := LargestComponentSeed(g)
	if int(src) >= g.NumNodes() {
		t.Fatalf("seed %d out of range", src)
	}
	// On a fully connected grid any seed reaches everything; just check the
	// call is deterministic.
	if src != LargestComponentSeed(g) {
		t.Fatal("seed not deterministic")
	}
}

func TestFromEdgesProperty(t *testing.T) {
	// Property: FromEdges preserves multiset of edges and per-source order.
	if err := quick.Check(func(raw []uint32) bool {
		const n = 16
		edges := make([]Edge, 0, len(raw))
		for _, v := range raw {
			edges = append(edges, Edge{
				Src: NodeID(v % n),
				Dst: NodeID((v >> 8) % n),
				Wt:  (v >> 16) % 100,
			})
		}
		g, err := FromEdges("q", n, edges)
		if err != nil {
			return false
		}
		if g.NumEdges() != len(edges) {
			return false
		}
		// Rebuild per-source sequences from input and compare.
		var want [n][]Edge
		for _, e := range edges {
			want[e.Src] = append(want[e.Src], e)
		}
		for u := 0; u < n; u++ {
			dsts, wts := g.Neighbors(NodeID(u))
			if len(dsts) != len(want[u]) {
				return false
			}
			for i := range dsts {
				if dsts[i] != want[u][i].Dst || wts[i] != want[u][i].Wt {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
