package graph

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64
// seeded xorshift*) used by the synthetic generators. It is reproducible
// across platforms and Go versions, unlike math/rand's global functions, so
// every generated graph is a pure function of (generator, parameters, seed).
type RNG struct{ s uint64 }

// NewRNG returns a generator seeded with seed (any value, including 0).
func NewRNG(seed uint64) *RNG {
	// splitmix64 step so nearby seeds produce unrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return &RNG{s: z}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("graph: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint32n returns a pseudo-random uint32 in [0, n).
func (r *RNG) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("graph: Uint32n with zero n")
	}
	return uint32(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Zipf returns a value in [1, max] following an approximate power-law
// distribution with exponent alpha (larger alpha skews toward 1). It uses
// inverse-transform sampling of the continuous Pareto distribution, which
// is accurate enough for degree-sequence generation.
func (r *RNG) Zipf(alpha float64, max int) int {
	if max <= 1 {
		return 1
	}
	u := r.Float64()
	if u == 0 {
		u = 0.5
	}
	// Inverse CDF of bounded Pareto on [1, max].
	x := math.Pow(1.0-u*(1.0-math.Pow(float64(max), 1.0-alpha)), 1.0/(1.0-alpha))
	v := int(x)
	if v < 1 {
		v = 1
	}
	if v > max {
		v = max
	}
	return v
}
