package graph

import (
	"strconv"
	"strings"
	"testing"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	input := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 2 1.0
2 3 2.0
3 1 0.5
1 3 4.0
`
	g, err := ReadMatrixMarket("mm", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 4 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	// Weights scale |v| into [1, 1000]: min 0.5 -> 1, max 4.0 -> 1000.
	dsts, wts := g.Neighbors(0) // node 1 -> {2, 3}
	if len(dsts) != 2 {
		t.Fatalf("node 0 degree %d", len(dsts))
	}
	var w13 uint32
	for i, v := range dsts {
		if v == 2 {
			w13 = wts[i]
		}
	}
	if w13 != 1000 {
		t.Fatalf("max-value edge weight %d, want 1000", w13)
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	input := `%%MatrixMarket matrix coordinate real symmetric
2 2 1
2 1 3.5
`
	g, err := ReadMatrixMarket("mm", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("symmetric entry must mirror: %d edges", g.NumEdges())
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	input := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	g, err := ReadMatrixMarket("mm", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range g.Wt {
		if w != 1 {
			t.Fatalf("pattern matrix weight %d, want 1", w)
		}
	}
}

func TestReadMatrixMarketRectangular(t *testing.T) {
	// Node count is max(rows, cols).
	input := `%%MatrixMarket matrix coordinate real general
2 5 1
1 5 1.0
`
	g, err := ReadMatrixMarket("mm", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5", g.NumNodes())
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "%%NotMM matrix coordinate real general\n1 1 0\n",
		"array format":    "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"bad size line":   "%%MatrixMarket matrix coordinate real general\n1 1\n",
		"no size line":    "%%MatrixMarket matrix coordinate real general\n% only comments\n",
		"entry oob":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"malformed entry": "%%MatrixMarket matrix coordinate real general\n2 2 1\nx\n",
		"bad value":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 zz\n",
	}
	for name, input := range cases {
		if _, err := ReadMatrixMarket("t", strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMatrixMarketWorksAsWorkloadInput(t *testing.T) {
	// A small banded matrix read via MatrixMarket must behave like any
	// other graph (this is how the real CAGE14 would enter the system).
	var sb strings.Builder
	sb.WriteString("%%MatrixMarket matrix coordinate real general\n40 40 120\n")
	r := NewRNG(5)
	for i := 1; i <= 40; i++ {
		for k := 0; k < 3; k++ {
			j := 1 + (i+int(r.Uint32n(7)))%40
			if j == i {
				j = i%40 + 1
			}
			sb.WriteString(strconv.Itoa(i) + " " + strconv.Itoa(j) + " 1.5\n")
		}
	}
	g, err := ReadMatrixMarket("band", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 40 || g.NumEdges() != 120 {
		t.Fatalf("parsed %d/%d", g.NumNodes(), g.NumEdges())
	}
}
