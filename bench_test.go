package hdcps

import (
	"testing"

	"hdcps/internal/exp"
	"hdcps/internal/graph"
	"hdcps/internal/obs"
	"hdcps/internal/runtime"
	"hdcps/internal/sched"
	"hdcps/internal/sim"
	"hdcps/internal/workload"
)

// One benchmark per table and figure of the paper's evaluation section.
// Each iteration regenerates the experiment end to end at tiny scale (the
// hdcps-bench command runs them at full scale); the custom "simcycles"
// metric reports deterministic simulated completion time where one exists,
// so changes to the schedulers show up even though wall time is noisy.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	opts := exp.Options{Scale: "tiny", Seed: 42, Cores: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }

// BenchmarkSchedulers measures one (scheduler, workload) simulation per
// iteration and reports simulated cycles — the deterministic headline
// number behind Fig. 3 — alongside host wall time.
func BenchmarkSchedulers(b *testing.B) {
	g := graph.Road(48, 48, 42)
	for _, name := range []string{"seq", "reld", "obim", "pmod", "hdcps-sw", "hdcps-hw", "swarm"} {
		b.Run(name, func(b *testing.B) {
			s, err := sched.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := workload.New("sssp", g)
				if err != nil {
					b.Fatal(err)
				}
				r := s.Run(w, sim.DefaultSW(8), 42)
				cycles = r.CompletionTime
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// BenchmarkNativeRuntime measures the goroutine-based HD-CPS runtime on the
// host: tasks per second across the paper's workloads.
func BenchmarkNativeRuntime(b *testing.B) {
	g := graph.Road(48, 48, 42)
	for _, name := range workload.Names() {
		b.Run(name, func(b *testing.B) {
			var tasks int64
			for i := 0; i < b.N; i++ {
				w, err := workload.New(name, g)
				if err != nil {
					b.Fatal(err)
				}
				res := runtime.Run(w, runtime.DefaultConfig(4))
				tasks += res.TasksProcessed
			}
			b.ReportMetric(float64(tasks)/float64(b.N), "tasks/op")
		})
	}
}

// BenchmarkNativeRuntimeObserved is BenchmarkNativeRuntime with a live
// obs.Recorder attached — the number that backs the observability layer's
// "within 3% of disabled" overhead claim. Compare:
//
//	go test -run XX -bench 'NativeRuntime(Observed)?/sssp' -count 10 .
func BenchmarkNativeRuntimeObserved(b *testing.B) {
	g := graph.Road(48, 48, 42)
	for _, name := range workload.Names() {
		b.Run(name, func(b *testing.B) {
			// One long-lived recorder across iterations, as a service would
			// run it; worker rows hold absolute per-run totals, so the
			// consistency check below stays per-iteration.
			cfg := runtime.DefaultConfig(4)
			rec := obs.New(obs.Config{Workers: cfg.Workers})
			cfg.Obs = rec
			var tasks int64
			for i := 0; i < b.N; i++ {
				w, err := workload.New(name, g)
				if err != nil {
					b.Fatal(err)
				}
				res := runtime.Run(w, cfg)
				tasks += res.TasksProcessed
				if rec.Total(obs.CTasksProcessed) != res.TasksProcessed {
					b.Fatal("recorder disagrees with runtime result")
				}
			}
			b.ReportMetric(float64(tasks)/float64(b.N), "tasks/op")
		})
	}
}

// BenchmarkNativeRuntimeRetryDisabled is the fault-tolerance layer's
// hot-path overhead guard: the same run as BenchmarkNativeRuntime/sssp with
// the retry policy explicitly at its zero value (quarantine on first panic,
// no retries), plus a variant with a retry budget configured but never
// exercised. Compare against BenchmarkNativeRuntime/sssp with benchstat —
// the panic-isolation recover, the retrying-gate load, and the ledger
// publication must cost <= 2% when no fault ever fires:
//
//	go test -run XX -bench 'NativeRuntime(RetryDisabled)?/sssp' -count 10 .
func BenchmarkNativeRuntimeRetryDisabled(b *testing.B) {
	g := graph.Road(48, 48, 42)
	for _, bc := range []struct {
		name  string
		retry runtime.RetryPolicy
	}{
		{"sssp", runtime.RetryPolicy{}},
		{"sssp-budget3", runtime.RetryPolicy{MaxAttempts: 3}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := runtime.DefaultConfig(4)
			cfg.Retry = bc.retry
			var tasks int64
			for i := 0; i < b.N; i++ {
				w, err := workload.New("sssp", g)
				if err != nil {
					b.Fatal(err)
				}
				res := runtime.Run(w, cfg)
				tasks += res.TasksProcessed
			}
			b.ReportMetric(float64(tasks)/float64(b.N), "tasks/op")
		})
	}
}

// BenchmarkWorkloadProcess isolates per-task workload cost (the simulator's
// inner loop) from scheduling: a full sequential drain per iteration.
func BenchmarkWorkloadProcess(b *testing.B) {
	g := graph.Cage(600, 12, 30, 42)
	for _, name := range workload.Names() {
		b.Run(name, func(b *testing.B) {
			w, err := workload.New(name, g)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var tasks int64
			for i := 0; i < b.N; i++ {
				tasks = workload.RunSequential(w)
			}
			b.ReportMetric(float64(tasks), "tasks/op")
		})
	}
}
