module hdcps

go 1.22
