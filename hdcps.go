// Package hdcps is a Go reproduction of "HD-CPS: Hardware-assisted
// Drift-aware Concurrent Priority Scheduler for Shared Memory Multicores"
// (Shan & Khan, HPCA 2022).
//
// It provides, as one library:
//
//   - a native goroutine-based HD-CPS runtime (per-worker receive rings,
//     adaptive bags, drift-feedback TDF) for running task-parallel graph
//     algorithms on real machines — see RunNative;
//   - a deterministic multicore simulator and every concurrent priority
//     scheduler the paper evaluates (RELD, OBIM, PMOD, Minnow in software
//     and hardware form, Swarm, and all HD-CPS configurations) — see
//     NewScheduler and RunSim;
//   - the paper's six task-parallel graph workloads (SSSP, A*, BFS, MST,
//     graph coloring, PageRank) with sequential references and verifiers —
//     see NewWorkload;
//   - graph generators and loaders — see the Road/Cage/Web/LJ/Grid
//     functions and ReadDIMACS/ReadSNAP;
//   - the full experiment harness regenerating every table and figure of
//     the paper's evaluation — see RunExperiment and Experiments.
//
// The architecture and every modeling substitution are documented in
// DESIGN.md; per-experiment paper-vs-measured results live in
// EXPERIMENTS.md.
package hdcps

import (
	"io"

	"hdcps/internal/chaos"
	"hdcps/internal/drift"
	"hdcps/internal/exec"
	"hdcps/internal/exp"
	"hdcps/internal/graph"
	"hdcps/internal/obs"
	"hdcps/internal/runtime"
	"hdcps/internal/sched"
	"hdcps/internal/sim"
	"hdcps/internal/stats"
	"hdcps/internal/task"
	"hdcps/internal/workload"
)

// Core re-exported types. The aliases make the internal packages' types part
// of the public API without duplicating their documentation.
type (
	// Graph is a directed weighted graph in CSR form.
	Graph = graph.CSR
	// Task is the unit of scheduled work: a node, a priority (lower is
	// more urgent), and a workload-defined payload.
	Task = task.Task
	// Workload is a task-parallel graph algorithm instance.
	Workload = workload.Workload
	// Scheduler executes a workload on the simulated multicore.
	Scheduler = sched.Scheduler
	// MachineConfig parameterizes the simulated multicore.
	MachineConfig = sim.Config
	// Run is the metrics record of one execution.
	Run = stats.Run
	// NativeConfig parameterizes the goroutine runtime.
	NativeConfig = runtime.Config
	// NativeResult is the goroutine runtime's metrics record.
	NativeResult = runtime.Result
	// Engine is the long-lived native runtime: a worker fleet with a
	// Start / Submit / Drain / Stop lifecycle that accepts work while
	// running and exposes Snapshot for mid-run visibility.
	Engine = runtime.Engine
	// EngineSnapshot is a point-in-time view of a running Engine.
	EngineSnapshot = runtime.Snapshot
	// Job is a tenant handle on a multi-job Engine: its own Submit / Drain /
	// Cancel / Snapshot lifecycle scoped to one workload, with weighted fair
	// scheduling against the other tenants (Engine.NewJob, Engine.DefaultJob).
	Job = runtime.Job
	// JobID is the tenant identity carried by Task.Job (0 is the engine's
	// default job).
	JobID = task.JobID
	// JobConfig parameterizes one tenant: name, fair-share weight, admission
	// quota, TDF bias, and retry override.
	JobConfig = runtime.JobConfig
	// JobStats is one job's conservation-ledger row (Job.Snapshot,
	// EngineSnapshot.Jobs).
	JobStats = runtime.JobStats
	// QuotaError is the admission-control rejection returned when a Submit
	// would push a job past JobConfig.MaxOutstanding.
	QuotaError = runtime.QuotaError
	// RetryPolicy is the per-task fault budget: how many times a panicking
	// task is retried before quarantine (NativeConfig.Retry; the zero value
	// quarantines on first panic).
	RetryPolicy = runtime.RetryPolicy
	// QuarantinedTask records a task retired after exhausting its retry
	// budget: the task, its panic value, and the attempt count
	// (Engine.Quarantined).
	QuarantinedTask = runtime.QuarantinedTask
	// StallError is the diagnostic returned when Drain or Stop gives up —
	// deadline, cancellation, or no ledger progress for
	// NativeConfig.StallTimeout — carrying the outstanding count and
	// per-worker state needed to tell a livelock from a slow handler.
	StallError = runtime.StallError
	// ChaosConfig is the fault-injection mix for the chaos transport:
	// per-turn probabilities for delay, duplication, reorder, ring-full
	// rejection, and worker stalls, under one deterministic seed.
	ChaosConfig = chaos.Config
	// Recorder is the native runtime's observability collector: per-worker
	// lock-free counters plus ring-buffered event traces. Attach one via
	// NativeConfig.Obs (see NewRecorder); a nil recorder costs the hot path
	// a single predictable branch.
	Recorder = obs.Recorder
	// RecorderConfig sizes a Recorder (workers, trace ring, task sampling).
	RecorderConfig = obs.Config
	// ObsEvent is one entry of a Recorder's trace.
	ObsEvent = obs.Event
	// ControlPoint is one interval of the control plane's time series:
	// measured drift, reference priority, and the TDF chosen next.
	ControlPoint = obs.ControlPoint
	// Executor runs a workload under any registered execution vehicle — a
	// simulated scheduler or the native runtime — behind one interface.
	Executor = exec.Executor
	// ExecutorSpec is the executor-independent run specification.
	ExecutorSpec = exec.Spec
	// DriftConfig holds the TDF controller tunables (§III-C).
	DriftConfig = drift.Config
	// ExperimentOptions control table/figure regeneration.
	ExperimentOptions = exp.Options
	// ExperimentResult is a regenerated table/figure.
	ExperimentResult = exp.Result
)

// Graph construction.
var (
	// Road generates a road-network-like graph (rUSA stand-in).
	Road = graph.Road
	// Cage generates a banded quasi-regular graph (CAGE14 stand-in).
	Cage = graph.Cage
	// Web generates a power-law web graph (web-Google stand-in).
	Web = graph.Web
	// LJ generates a denser power-law graph (LiveJournal stand-in).
	LJ = graph.LJ
	// Grid generates a weighted lattice with coordinates (A* input).
	Grid = graph.Grid
	// ReadDIMACS parses a DIMACS shortest-path ".gr" file.
	ReadDIMACS = graph.ReadDIMACS
	// ReadSNAP parses a SNAP whitespace edge list.
	ReadSNAP = graph.ReadSNAP
	// ReadMatrixMarket parses MatrixMarket coordinate matrices (the
	// SuiteSparse collection's format, used by the paper's CAGE14 input).
	ReadMatrixMarket = graph.ReadMatrixMarket
	// WriteDIMACS writes a graph in DIMACS ".gr" format.
	WriteDIMACS = graph.WriteDIMACS
)

// NewWorkload constructs one of the paper's workloads by name: "sssp",
// "astar", "bfs", "mst", "color", or "pagerank".
func NewWorkload(name string, g *Graph) (Workload, error) { return workload.New(name, g) }

// WorkloadNames lists the available workloads in the paper's order.
func WorkloadNames() []string { return workload.Names() }

// NewScheduler returns a scheduler by name: "seq", "reld", "obim", "pmod",
// "swminnow", "hwminnow", "swarm", "hdcps-sw", "hdcps-hw", or an HD-CPS
// ablation variant ("srq", "srq+tdf", "srq+tdf+ac", "hrq").
func NewScheduler(name string) (Scheduler, error) { return sched.ByName(name) }

// SchedulerNames lists the registered scheduler names.
func SchedulerNames() []string { return sched.Names() }

// SoftwareMachine returns the software-mode machine configuration (the
// paper's Xeon-side experiments) with the given core count.
func SoftwareMachine(cores int) MachineConfig { return sim.DefaultSW(cores) }

// HardwareMachine returns the Table I machine: 64 cores, hRQ=32, hPQ=48.
func HardwareMachine() MachineConfig { return sim.DefaultHW() }

// RunSim executes a workload under a scheduler on the simulated machine and
// returns its metrics. The same (workload, config, seed) always produces
// identical results.
func RunSim(s Scheduler, w Workload, cfg MachineConfig, seed uint64) Run {
	return s.Run(w, cfg, seed)
}

// SequentialTasks runs the strict-priority sequential baseline on a fresh
// clone of w and returns its task count (the work-efficiency denominator).
func SequentialTasks(w Workload) int64 { return workload.RunSequential(w.Clone()) }

// RunNative executes a workload on the goroutine-based HD-CPS runtime
// (one-shot; for a long-lived service use NewEngine).
func RunNative(w Workload, cfg NativeConfig) NativeResult { return runtime.Run(w, cfg) }

// NewEngine builds a long-lived native runtime over w. Call Start, then
// Submit work (streaming is fine), Drain to wait for quiescence, and Stop
// to shut the fleet down; Snapshot reads live counters at any point. For a
// multi-tenant fleet register further workloads with Engine.NewJob — w is
// job 0, the default tenant.
func NewEngine(w Workload, cfg NativeConfig) *Engine { return runtime.NewEngine(w, cfg) }

// ErrJobCancelled is returned by Job.Submit once the job has been cancelled.
var ErrJobCancelled = runtime.ErrJobCancelled

// DefaultNativeConfig returns the paper-tuned native configuration for the
// given worker count.
func DefaultNativeConfig(workers int) NativeConfig { return runtime.DefaultConfig(workers) }

// QueueKinds lists the valid NativeConfig.QueueKind values: the per-worker
// local-queue shapes of the native runtime ("heap", "dheap", "twolevel",
// and the relaxed shared "multiqueue").
func QueueKinds() []string { return runtime.QueueKinds() }

// NewChaosEngine builds an Engine whose transport injects faults from the
// given mix (see ChaosConfig; chaos.DefaultMix gives the stock mix). The
// returned transport exposes the injected-fault counts. Use it with
// chaos.Checker to assert the no-task-loss and termination invariants
// under fault; DESIGN.md §11 documents the failure model.
func NewChaosEngine(w Workload, cfg NativeConfig, mix ChaosConfig) (*Engine, *chaos.Transport) {
	return chaos.Engine(w, cfg, mix)
}

// NewRecorder builds an observability recorder. Set it as
// NativeConfig.Obs before constructing the engine; read it back during or
// after the run (Engine.Obs, Recorder.Counters/Events/WriteJSONL/Handler).
func NewRecorder(cfg RecorderConfig) *Recorder { return obs.New(cfg) }

// NewExecutor resolves an executor by name: every scheduler name
// NewScheduler accepts (run on the simulator) plus "native" (the goroutine
// runtime). One registry covers both execution vehicles.
func NewExecutor(name string) (Executor, error) { return exec.ByName(name) }

// ExecutorNames lists the registered executors: all simulator schedulers,
// then "native".
func ExecutorNames() []string { return exec.Names() }

// Experiments lists the regenerable tables and figures ("table1", "table2",
// "fig3" ... "fig15") plus the §II ordering-spectrum extension
// ("motivation").
func Experiments() []string { return exp.IDs() }

// RunExperiment regenerates one of the paper's tables or figures and
// writes its formatted output to w (pass nil to skip printing).
func RunExperiment(id string, opts ExperimentOptions, w io.Writer) (ExperimentResult, error) {
	e, ok := exp.Get(id)
	if !ok {
		return ExperimentResult{}, errUnknownExperiment(id)
	}
	res, err := e.Run(opts)
	if err != nil {
		return res, err
	}
	if w != nil {
		res.Format(w)
	}
	return res, nil
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "hdcps: unknown experiment " + string(e) + " (see Experiments())"
}
