GO ?= go

.PHONY: all build tier1 vet race bench bench-native ci

all: ci

build:
	$(GO) build ./...

# Tier-1: the gate every change must keep green (ROADMAP.md).
tier1: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race tier: the concurrency-heavy packages under the race detector. The
# native runtime (engine lifecycle, transport, control plane), the MPSC
# ring, the payload transport, the executor registry that fronts the
# runtime, and the parallel experiment driver are where a data race would
# actually live. The exp run is scoped to the driver tests: racing the full
# figure suite is ~10min on one core and exercises no concurrency the
# driver tests don't.
race:
	$(GO) test -race ./internal/rq/... ./internal/runtime/... ./internal/bag/... ./internal/exec/...
	$(GO) test -race -run 'TestParallel' -count=1 ./internal/exp/

# Hot-path microbenchmarks (ring push/batch, heap arity, partitioner,
# native runtime throughput). Compare runs with benchstat; see EXPERIMENTS.md.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRingPush|BenchmarkHeapPushPop|BenchmarkPartition|BenchmarkNativeRuntime' \
		-benchmem ./internal/rq/ ./internal/pq/ ./internal/bag/ ./internal/runtime/

# Refresh BENCH_native.json for the current tree (label with the short SHA).
bench-native:
	$(GO) run ./cmd/hdcps-bench -native -label $$(git rev-parse --short HEAD) -o BENCH_native.json

ci: tier1 vet race
