GO ?= go

.PHONY: all build tier1 vet lint race chaos serve-chaos bench bench-smoke bench-gate bench-native serve-smoke serve-gate serve-bench fuzz-smoke ci

all: ci

build:
	$(GO) build ./...

# Tier-1: the gate every change must keep green (ROADMAP.md).
tier1: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Lint: gofmt is a hard gate everywhere; staticcheck runs when installed
# (the CI workflow installs it, minimal containers may not have it).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi

# Race tier: the concurrency-heavy packages under the race detector. The
# native runtime (engine lifecycle, transport, control plane), the MPSC
# ring, the payload transport, the observability recorder, the executor
# registry that fronts the runtime, and the parallel experiment driver are
# where a data race would actually live. The exp run is scoped to the
# driver tests: racing the full figure suite is ~10min on one core and
# exercises no concurrency the driver tests don't.
race:
	$(GO) test -race ./internal/rq/... ./internal/runtime/... ./internal/bag/... ./internal/obs/... ./internal/exec/... ./internal/chaos/... ./internal/netchaos/...
	$(GO) test -race -run 'TestParallel' -count=1 ./internal/exp/

# Chaos tier: the fault-injection soaks (internal/chaos) under the race
# detector — every mix (delay, duplication, reorder, ring-full, stall,
# combined, quarantine), the worker-pause-mid-drain regression, and the
# multi-tenant mixes (mid-drain job cancellation and quota saturation with
# neighbours running), each asserting the global ledger, every per-job
# ledger, and the partition identity at every quiescent checkpoint. Seeds
# are fixed, so a failure reproduces. Set CHAOS_SOAK=1 (the nightly knob)
# for longer soaks on bigger graphs.
chaos:
	$(GO) test -race -count=1 -run 'TestSoak|TestEnginePanic|TestEngineRetry|TestEngineQuarantine|TestEngineDrain|TestEngineOverflow' \
		./internal/chaos/ ./internal/runtime/

# Serve-chaos tier: the network-boundary soaks under the race detector — a
# real serve.Server behind the fault-injecting netchaos listener, driven by
# the retrying client, across every connection-fault mix (RST, stall,
# short-read/partial-write, latency+throttle, combined with engine-transport
# chaos). Each mix must end with three-way ledger agreement: client-confirmed
# admissions == server accepted == engine Submitted (mod chaos duplicates),
# proving zero loss and zero duplication through the resume protocol. The
# whole serve package runs so the deadline/stall/disconnect regressions ride
# along. CHAOS_SOAK=1 (the nightly knob) lengthens the soak.
serve-chaos:
	$(GO) test -race -count=1 ./internal/serve/

# Hot-path microbenchmarks (ring push/batch, heap arity, partitioner,
# native runtime throughput with and without the obs recorder). The root
# package carries BenchmarkNativeRuntime{,Observed}; compare runs with
# benchstat, see EXPERIMENTS.md.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRingPush|BenchmarkHeapPushPop|BenchmarkPartition|BenchmarkNativeRuntime|BenchmarkQueueDist' \
		-benchmem . ./internal/rq/ ./internal/pq/ ./internal/bag/ ./internal/runtime/
	$(GO) test -run '^$$' -bench 'BenchmarkSubmitIngest' -benchmem ./internal/serve/

# Bench smoke: prove every benchmark still runs and the native bench
# harness still emits a report — a fixed tiny iteration count, not a
# measurement (CI runs this; use `make bench` + benchstat for numbers).
# The fairness-sweep run proves the multi-tenant path end to end (4 jobs,
# weights 4:2:1:1, per-job ledgers exact); at tiny scale its shares are
# informational, the ±10pp gate binds at small scale and up.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRingPush|BenchmarkHeapPushPop|BenchmarkPartition|BenchmarkNativeRuntime|BenchmarkQueueDist' \
		-benchtime 100x -benchmem . ./internal/rq/ ./internal/pq/ ./internal/bag/ ./internal/runtime/
	$(GO) test -run '^$$' -bench 'BenchmarkSubmitIngest' -benchtime 100x -benchmem ./internal/serve/
	$(GO) run ./cmd/hdcps-bench -native -label smoke -scale tiny -reps 2 -o -
	$(GO) run ./cmd/hdcps-bench -exp fairness-sweep -scale tiny

# Bench regression gate: a short native run compared against the newest
# run recorded in BENCH_native.json. Fails on throughput collapse (beyond
# 25%% of baseline) or an allocation blow-up, not on ordinary CI-runner
# drift — see cmd/hdcps-bench's -check flag.
bench-gate:
	$(GO) run ./cmd/hdcps-bench -native -label ci-gate -scale tiny -reps 3 \
		-o /tmp/hdcps-bench-gate.json -check BENCH_native.json -tol 0.25

# Refresh BENCH_native.json for the current tree (label with the short SHA).
bench-native:
	$(GO) run ./cmd/hdcps-bench -native -label $$(git rev-parse --short HEAD) -o BENCH_native.json

# Serving smoke: build hdcps-serve + hdcps-load, boot on an ephemeral port,
# drive a fixed-rate open-loop run, SIGTERM, and require the graceful drain
# to be ledger-exact (no accepted task lost). Artifacts in $$SMOKE_DIR.
serve-smoke:
	./scripts/serve_smoke.sh

# Serving regression gate: a short saturation sweep through the real HTTP
# front-end compared against the newest run in BENCH_serve.json. Fails on a
# knee collapse (beyond 25%% of baseline), a p99 blow-up, or — tolerance-
# exempt — any server 5xx; not on ordinary CI-runner drift. Knee searches
# are noisy (sub-second probes), so one failed sweep gets one fresh retry:
# a real collapse fails both, a noise spike only one.
serve-gate:
	$(GO) run ./cmd/hdcps-bench -serve -label ci-gate -scale tiny \
		-o /tmp/hdcps-serve-gate.json -check BENCH_serve.json -tol 0.25 || \
	$(GO) run ./cmd/hdcps-bench -serve -label ci-gate -scale tiny \
		-o /tmp/hdcps-serve-gate.json -check BENCH_serve.json -tol 0.25

# Refresh BENCH_serve.json for the current tree (label with the short SHA).
serve-bench:
	$(GO) run ./cmd/hdcps-bench -serve -label $$(git rev-parse --short HEAD) -o BENCH_serve.json

# Fuzz smoke: a short differential fuzz of the zero-alloc TaskSpec parser
# against encoding/json — any divergence in accept/reject decision, decoded
# fields, or fallback error text is a crash. CI runs this on every push;
# longer local runs: go test -fuzz FuzzTaskSpecParser ./internal/serve/
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzTaskSpecParser' -fuzztime 20s ./internal/serve/

ci: tier1 vet lint race chaos serve-chaos serve-smoke serve-gate fuzz-smoke
