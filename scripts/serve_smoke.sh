#!/usr/bin/env bash
# serve_smoke.sh — end-to-end serving smoke: build hdcps-serve and
# hdcps-load, boot the server on an ephemeral port, drive it with a
# fixed-rate open-loop run, then SIGTERM it and let the server's own
# conservation ledger be the verdict. hdcps-serve exits nonzero unless the
# graceful drain proves that every accepted task was processed (submitted +
# spawned == processed + retired + quarantined + cancelled, outstanding 0),
# and hdcps-load runs -strict (no retries; any 5xx or transport error exits
# nonzero) — so this script passing means: the binaries build, the API
# serves real traffic, backpressure never turns into server failure, and
# shutdown loses nothing. Readiness is gated on GET /readyz (via
# hdcps-load -wait-ready), not on liveness: the server answers /healthz the
# moment the process is up, but only reports ready once it will admit work.
#
# Env knobs (defaults are the CI shape):
#   SMOKE_DIR         artifact/work directory   (/tmp/hdcps-serve-smoke)
#   SERVE_SMOKE_RATE  offered tasks/second      (4000)
#   SERVE_SMOKE_DUR   load duration             (2s)
#   SERVE_SMOKE_SCALE input scale               (tiny)
#
# Artifacts on failure (and success): $SMOKE_DIR/serve.log, load.txt,
# hist.json, addr.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE_DIR="${SMOKE_DIR:-/tmp/hdcps-serve-smoke}"
RATE="${SERVE_SMOKE_RATE:-4000}"
DUR="${SERVE_SMOKE_DUR:-2s}"
SCALE="${SERVE_SMOKE_SCALE:-tiny}"
GO="${GO:-go}"

rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"

echo "serve-smoke: building binaries into $SMOKE_DIR"
"$GO" build -o "$SMOKE_DIR/hdcps-serve" ./cmd/hdcps-serve
"$GO" build -o "$SMOKE_DIR/hdcps-load" ./cmd/hdcps-load

echo "serve-smoke: booting hdcps-serve (scale=$SCALE) on an ephemeral port"
"$SMOKE_DIR/hdcps-serve" \
    -addr 127.0.0.1:0 -addr-file "$SMOKE_DIR/addr" \
    -workload sssp -input road -scale "$SCALE" -workers 4 \
    >"$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!

# The server writes its bound address once listening; poll briefly.
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "serve-smoke: FAIL — server died before listening" >&2
        cat "$SMOKE_DIR/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$SMOKE_DIR/addr")"
echo "serve-smoke: server up at $ADDR (pid $SERVE_PID), waiting on /readyz"

LOAD_RC=0
"$SMOKE_DIR/hdcps-load" \
    -url "http://$ADDR" -wait-ready 10s -strict \
    -rate "$RATE" -duration "$DUR" \
    -arrivals poisson -hist "$SMOKE_DIR/hist.json" \
    2>&1 | tee "$SMOKE_DIR/load.txt" || LOAD_RC=$?

echo "serve-smoke: SIGTERM — graceful drain must be ledger-exact"
kill -TERM "$SERVE_PID"
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
tail -n 3 "$SMOKE_DIR/serve.log"

if [ "$LOAD_RC" -ne 0 ]; then
    echo "serve-smoke: FAIL — hdcps-load exited $LOAD_RC (see $SMOKE_DIR/load.txt)" >&2
    exit 1
fi
if [ "$SERVE_RC" -ne 0 ]; then
    echo "serve-smoke: FAIL — graceful drain exited $SERVE_RC (see $SMOKE_DIR/serve.log)" >&2
    exit 1
fi
echo "serve-smoke: PASS — traffic served, drain ledger exact"
