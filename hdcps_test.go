package hdcps

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// The facade tests exercise the public API exactly as a downstream user
// would; the heavy lifting is covered by the internal packages' suites.

func TestFacadeSimRun(t *testing.T) {
	g := Road(24, 24, 3)
	w, err := NewWorkload("sssp", g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler("hdcps-sw")
	if err != nil {
		t.Fatal(err)
	}
	run := RunSim(s, w, SoftwareMachine(8), 3)
	if run.CompletionTime <= 0 || run.TasksProcessed <= 0 {
		t.Fatalf("empty run: %+v", run)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	run.SeqTasks = SequentialTasks(w)
	if we := run.WorkEfficiency(); we <= 0 || we > 1.5 {
		t.Fatalf("work efficiency %v out of range", we)
	}
}

func TestFacadeNativeRun(t *testing.T) {
	g := Grid(16, 16, 20, 5)
	w, err := NewWorkload("bfs", g)
	if err != nil {
		t.Fatal(err)
	}
	res := RunNative(w, DefaultNativeConfig(2))
	if res.TasksProcessed <= 0 || res.Elapsed <= 0 {
		t.Fatalf("empty native run: %+v", res)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeEngineLifecycle(t *testing.T) {
	g := Road(16, 16, 5)
	w, err := NewWorkload("sssp", g)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w, DefaultNativeConfig(2))
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Two waves through one fleet: the streaming shape RunNative cannot do.
	for i := 0; i < 2; i++ {
		if err := e.Submit(w.InitialTasks()...); err != nil {
			t.Fatalf("wave %d: %v", i, err)
		}
		if err := e.Drain(ctx); err != nil {
			t.Fatalf("wave %d: %v", i, err)
		}
	}
	snap := e.Snapshot()
	if snap.Epoch != 2 || snap.TasksProcessed <= 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeChaosEngine(t *testing.T) {
	g := Road(16, 16, 5)
	w, err := NewWorkload("sssp", g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultNativeConfig(2)
	cfg.Seed = 11
	mix := ChaosConfig{Seed: 11, Delay: 0.1, Reorder: 0.2, RingFull: 0.05}
	e, tp := NewChaosEngine(w, cfg, mix)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := e.Submit(w.InitialTasks()...); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if got := snap.Submitted + snap.Spawned -
		(snap.TasksProcessed + snap.BagsRetired + snap.Quarantined); got != 0 {
		t.Fatalf("conservation violated under fault injection (lost %d): %+v", got, snap)
	}
	if len(e.Quarantined()) != 0 {
		t.Fatalf("healthy workload quarantined: %v", e.Quarantined())
	}
	if tp.Stats().String() == "" {
		t.Fatal("chaos transport reported no stats")
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExecutors(t *testing.T) {
	for _, n := range ExecutorNames() {
		if _, err := NewExecutor(n); err != nil {
			t.Errorf("executor %q: %v", n, err)
		}
	}
	x, err := NewExecutor("native")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload("bfs", Road(12, 12, 2))
	if err != nil {
		t.Fatal(err)
	}
	run := x.Run(w, ExecutorSpec{Cores: 2, Seed: 1})
	if run.CompletionTime <= 0 || run.Cores != 2 {
		t.Fatalf("native executor run: %+v", run)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeNames(t *testing.T) {
	if len(WorkloadNames()) != 6 {
		t.Fatalf("workloads: %v", WorkloadNames())
	}
	for _, n := range SchedulerNames() {
		if _, err := NewScheduler(n); err != nil {
			t.Errorf("scheduler %q: %v", n, err)
		}
	}
	if _, err := NewScheduler("nope"); err == nil {
		t.Error("unknown scheduler must error")
	}
	if _, err := NewWorkload("nope", Road(4, 4, 1)); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestFacadeMachines(t *testing.T) {
	hw := HardwareMachine()
	if hw.Cores != 64 || hw.HRQSize != 32 || hw.HPQSize != 48 {
		t.Fatalf("hardware machine diverges from Table I: %+v", hw)
	}
	sw := SoftwareMachine(40)
	if sw.Cores != 40 || sw.HRQSize != 0 || sw.HPQSize != 0 {
		t.Fatalf("software machine wrong: %+v", sw)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := Experiments()
	if len(ids) != 20 {
		t.Fatalf("got %d experiments, want 20", len(ids))
	}
	var buf bytes.Buffer
	res, err := RunExperiment("table2", ExperimentOptions{Scale: "tiny", Seed: 1}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || !strings.Contains(buf.String(), "table2") {
		t.Fatalf("table2 output wrong: %d rows, %q", len(res.Rows), buf.String())
	}
	if _, err := RunExperiment("fig99", ExperimentOptions{}, nil); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := Cage(200, 6, 16, 2)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	if _, err := ReadSNAP("s", strings.NewReader("1 2\n2 3\n")); err != nil {
		t.Fatal(err)
	}
}
